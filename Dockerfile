# Build image for the fairsfe binaries (fairbench, fairbenchd, fairparty).
#
#   docker build -t fairsfe .
#   docker run --rm fairsfe fairbench --list
#   docker compose up            # 3-party auction, one container per party
#
# Two stages: the toolchain stage compiles everything; the runtime stage
# carries only the binaries and the scripts the deployment uses.
FROM debian:bookworm-slim AS build
RUN apt-get update && apt-get install -y --no-install-recommends \
        g++ cmake make python3 ca-certificates && \
    rm -rf /var/lib/apt/lists/*
WORKDIR /src
COPY . .
RUN cmake -B build -S . -DCMAKE_BUILD_TYPE=Release && \
    cmake --build build -j "$(nproc)" --target fairbench fairbenchd fairparty

FROM debian:bookworm-slim
RUN apt-get update && apt-get install -y --no-install-recommends \
        libstdc++6 python3 && \
    rm -rf /var/lib/apt/lists/*
COPY --from=build /src/build/fairbench /src/build/fairbenchd /src/build/fairparty /usr/local/bin/
COPY --from=build /src/scripts/loadtest.py /usr/local/bin/loadtest.py
# Default: the estimation daemon on all interfaces (compose overrides the
# command per service; fairparty containers pass --peers/--listen instead).
EXPOSE 9600
CMD ["fairbenchd", "--host", "0.0.0.0", "--port", "9600"]
