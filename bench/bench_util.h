// Shared reporting for the experiment harnesses (bench/exp*) and the
// estimator throughput harness in perf_protocols.
//
// bench::Reporter renders the historical fixed-width table on stdout — for
// each configuration the measured utility (with its 3-sigma margin), the
// empirical event distribution, and the paper's closed-form bound, then a
// PASS/DEVIATION verdict on the shape claim — and, when the harness is
// invoked with `--json <path>`, additionally writes the same data
// machine-readably so BENCH_*.json trajectories can be recorded.
//
// CLI accepted by every harness:
//   exp05_nparty_bounds [runs] [--json out.json] [--threads N]
// where [runs] overrides the Monte-Carlo runs per point, --threads feeds
// rpd::EstimatorOptions::threads (0 = one per hardware thread), and --json
// selects the machine-readable sink.
//
// JSON schema (stable; one object per file):
//   {
//     "experiment": str, "claim": str, "gamma": str|null,
//     "runs_per_point": int, "threads": int,
//     "rows": [{"name": str, "utility": num, "std_error": num, "margin": num,
//               "event_freq": [num, num, num, num],   // E00, E01, E10, E11
//               "runs": int, "wall_seconds": num, "runs_per_sec": num,
//               "paper": str}],
//     "checks": [{"ok": bool, "what": str}],
//     "deviations": int
//   }
#pragma once

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "rpd/estimator.h"

namespace fairsfe::bench {

class Reporter {
 public:
  /// Parses [runs] / --json / --threads from argv; `default_runs` applies
  /// when no positional override is given.
  Reporter(int argc, char** argv, std::size_t default_runs) : runs_(default_runs) {
    for (int i = 1; i < argc; ++i) {
      if (std::strcmp(argv[i], "--json") == 0 && i + 1 < argc) {
        json_path_ = argv[++i];
      } else if (std::strcmp(argv[i], "--threads") == 0 && i + 1 < argc) {
        threads_ = static_cast<std::size_t>(std::strtoul(argv[++i], nullptr, 10));
      } else if (argv[i][0] != '-') {
        const long v = std::strtol(argv[i], nullptr, 10);
        if (v > 0) runs_ = static_cast<std::size_t>(v);
      }
    }
  }

  [[nodiscard]] std::size_t runs() const { return runs_; }
  [[nodiscard]] std::size_t threads() const { return threads_; }

  /// EstimatorOptions for one utility point: the harness's runs/threads plus
  /// the call site's seed. Callers needing a different run count adjust the
  /// returned struct.
  [[nodiscard]] rpd::EstimatorOptions opts(std::uint64_t seed) const {
    rpd::EstimatorOptions o;
    o.runs = runs_;
    o.seed = seed;
    o.threads = threads_;
    return o;
  }

  void title(const std::string& id, const std::string& claim) {
    experiment_ = id;
    claim_ = claim;
    std::printf("\n=== %s ===\n%s\n\n", id.c_str(), claim.c_str());
  }

  void gamma(const rpd::PayoffVector& g) {
    gamma_ = g.to_string();
    std::printf("gamma = %s, runs/point = %zu\n\n", gamma_.c_str(), runs_);
  }

  void row_header() {
    std::printf("%-28s %9s %8s   %5s %5s %5s %5s   %s\n", "configuration", "utility",
                "(+/-3SE)", "E00", "E01", "E10", "E11", "paper");
    std::printf("%-28s %9s %8s   %5s %5s %5s %5s   %s\n", "-------------", "-------",
                "--------", "---", "---", "---", "---", "-----");
  }

  void row(const std::string& name, const rpd::UtilityEstimate& est,
           const std::string& paper) {
    std::printf("%-28s %9.4f %8.4f   %5.2f %5.2f %5.2f %5.2f   %s\n", name.c_str(),
                est.utility, est.margin(), est.event_freq[0], est.event_freq[1],
                est.event_freq[2], est.event_freq[3], paper.c_str());
    rows_.push_back(Row{name, est.utility, est.std_error, est.margin(), est.event_freq,
                        est.runs, est.wall_seconds, est.runs_per_sec(), paper});
  }

  void check(bool ok, const std::string& what) {
    std::printf("  [%s] %s\n", ok ? "PASS" : "DEVIATION", what.c_str());
    checks_.push_back(Check{ok, what});
    if (!ok) failures_++;
  }

  /// Prints the verdict summary and, with --json, writes the report file.
  /// Always returns 0: deviations are recorded in the output, never break
  /// the bench loop.
  int finish() {
    std::printf("\n%s (%d deviation%s)\n",
                failures_ == 0 ? "ALL CHECKS PASSED" : "DEVIATIONS", failures_,
                failures_ == 1 ? "" : "s");
    if (!json_path_.empty()) write_json();
    return 0;
  }

 private:
  struct Row {
    std::string name;
    double utility, std_error, margin;
    std::array<double, 4> event_freq;
    std::size_t runs;
    double wall_seconds, runs_per_sec;
    std::string paper;
  };
  struct Check {
    bool ok;
    std::string what;
  };

  static std::string json_escape(const std::string& s) {
    std::string out;
    out.reserve(s.size());
    for (char c : s) {
      switch (c) {
        case '"': out += "\\\""; break;
        case '\\': out += "\\\\"; break;
        case '\n': out += "\\n"; break;
        case '\t': out += "\\t"; break;
        default:
          if (static_cast<unsigned char>(c) < 0x20) {
            char buf[8];
            std::snprintf(buf, sizeof(buf), "\\u%04x", c);
            out += buf;
          } else {
            out += c;
          }
      }
    }
    return out;
  }

  void write_json() {
    std::FILE* f = std::fopen(json_path_.c_str(), "w");
    if (!f) {
      std::fprintf(stderr, "bench: cannot open %s for writing\n", json_path_.c_str());
      return;
    }
    std::fprintf(f, "{\n  \"experiment\": \"%s\",\n  \"claim\": \"%s\",\n",
                 json_escape(experiment_).c_str(), json_escape(claim_).c_str());
    if (gamma_.empty()) {
      std::fprintf(f, "  \"gamma\": null,\n");
    } else {
      std::fprintf(f, "  \"gamma\": \"%s\",\n", json_escape(gamma_).c_str());
    }
    std::fprintf(f, "  \"runs_per_point\": %zu,\n  \"threads\": %zu,\n  \"rows\": [",
                 runs_, threads_);
    for (std::size_t i = 0; i < rows_.size(); ++i) {
      const Row& r = rows_[i];
      std::fprintf(f,
                   "%s\n    {\"name\": \"%s\", \"utility\": %.17g, \"std_error\": %.17g, "
                   "\"margin\": %.17g, \"event_freq\": [%.17g, %.17g, %.17g, %.17g], "
                   "\"runs\": %zu, \"wall_seconds\": %.6g, \"runs_per_sec\": %.6g, "
                   "\"paper\": \"%s\"}",
                   i == 0 ? "" : ",", json_escape(r.name).c_str(), r.utility, r.std_error,
                   r.margin, r.event_freq[0], r.event_freq[1], r.event_freq[2],
                   r.event_freq[3], r.runs, r.wall_seconds, r.runs_per_sec,
                   json_escape(r.paper).c_str());
    }
    std::fprintf(f, "\n  ],\n  \"checks\": [");
    for (std::size_t i = 0; i < checks_.size(); ++i) {
      std::fprintf(f, "%s\n    {\"ok\": %s, \"what\": \"%s\"}", i == 0 ? "" : ",",
                   checks_[i].ok ? "true" : "false", json_escape(checks_[i].what).c_str());
    }
    std::fprintf(f, "\n  ],\n  \"deviations\": %d\n}\n", failures_);
    std::fclose(f);
    std::printf("json report written to %s\n", json_path_.c_str());
  }

  std::size_t runs_;
  std::size_t threads_ = 1;
  std::string json_path_;
  std::string experiment_, claim_, gamma_;
  std::vector<Row> rows_;
  std::vector<Check> checks_;
  int failures_ = 0;
};

}  // namespace fairsfe::bench
