// Forwarding header. bench::Args / bench::parse_args / bench::Reporter moved
// into the library (src/experiments/report.h) so the scenario translation
// units, the fairbench driver, and the test suite all link one
// implementation. The namespace is still fairsfe::bench; existing includes
// of "bench_util.h" keep compiling unchanged.
#pragma once

#include "experiments/report.h"
