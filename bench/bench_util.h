// Shared table formatting for the experiment harnesses (bench/exp*).
//
// Every harness prints, for each configuration, the measured utility (with
// its 3-sigma margin), the empirical event distribution, and the paper's
// closed-form bound — then a PASS/DEVIATION verdict on the shape claim.
// Harnesses accept an optional argv[1] = runs-per-point override.
#pragma once

#include <cstdio>
#include <cstdlib>
#include <string>

#include "rpd/estimator.h"

namespace fairsfe::bench {

inline std::size_t runs_from_argv(int argc, char** argv, std::size_t def) {
  if (argc > 1) {
    const long v = std::strtol(argv[1], nullptr, 10);
    if (v > 0) return static_cast<std::size_t>(v);
  }
  return def;
}

inline void print_title(const std::string& id, const std::string& claim) {
  std::printf("\n=== %s ===\n%s\n\n", id.c_str(), claim.c_str());
}

inline void print_gamma(const rpd::PayoffVector& g, std::size_t runs) {
  std::printf("gamma = %s, runs/point = %zu\n\n", g.to_string().c_str(), runs);
}

inline void print_row_header() {
  std::printf("%-28s %9s %8s   %5s %5s %5s %5s   %s\n", "configuration", "utility",
              "(+/-3SE)", "E00", "E01", "E10", "E11", "paper");
  std::printf("%-28s %9s %8s   %5s %5s %5s %5s   %s\n", "-------------", "-------",
              "--------", "---", "---", "---", "---", "-----");
}

inline void print_row(const std::string& name, const rpd::UtilityEstimate& est,
                      const std::string& paper) {
  std::printf("%-28s %9.4f %8.4f   %5.2f %5.2f %5.2f %5.2f   %s\n", name.c_str(),
              est.utility, est.margin(), est.event_freq[0], est.event_freq[1],
              est.event_freq[2], est.event_freq[3], paper.c_str());
}

class Verdict {
 public:
  void check(bool ok, const std::string& what) {
    std::printf("  [%s] %s\n", ok ? "PASS" : "DEVIATION", what.c_str());
    if (!ok) failures_++;
  }

  int finish() const {
    std::printf("\n%s (%d deviation%s)\n", failures_ == 0 ? "ALL CHECKS PASSED" : "DEVIATIONS",
                failures_, failures_ == 1 ? "" : "s");
    return 0;  // never break the bench loop; deviations are in the output
  }

 private:
  int failures_ = 0;
};

}  // namespace fairsfe::bench
