// E03 — Theorem 4 / Lemma 7: the lower bound. For the swap-like function
// (two-party exchange), the mixed adversary Agen earns at least
// (γ10 + γ11)/2 against *any* protocol, and the pair (A1, A2) jointly earns
// γ10 + γ11. The harness runs these adversaries against every two-party
// protocol in the library and shows none escapes the bound — while the
// unfair protocols exceed it.
#include "bench_util.h"
#include "experiments/setups.h"

using namespace fairsfe;
using namespace fairsfe::experiments;

int main(int argc, char** argv) {
  bench::Reporter rep(argc, argv, 3000);
  const rpd::PayoffVector gamma = rpd::PayoffVector::standard();

  rep.title(
            "E03: Theorem 4 / Lemma 7 — universal lower bound for the swap function",
            "Claim: u(A1) + u(A2) >= g10 + g11 for every protocol; the mixed Agen earns\n"
            ">= (g10+g11)/2. Opt2SFE meets the bound with equality (it is optimal).");
  rep.gamma(gamma);


  struct ProtocolRow {
    std::string name;
    std::function<rpd::SetupFactory(sim::PartyId)> lock_abort;
    rpd::SetupFactory agen;
  };
  const std::vector<ProtocolRow> protocols = {
      {"Opt2SFE", [](sim::PartyId c) { return opt2_lock_abort(c); }, opt2_agen()},
      {"Pi1 (naive contract)",
       [](sim::PartyId c) { return contract_attack(fair::ContractVariant::kPi1, c); },
       rpd::SetupFactory{}},
      {"Pi2 (coin-toss contract)",
       [](sim::PartyId c) { return contract_attack(fair::ContractVariant::kPi2, c); },
       rpd::SetupFactory{}},
  };

  std::uint64_t seed = 300;
  for (const auto& proto : protocols) {
    std::printf("--- protocol: %s ---\n", proto.name.c_str());
    rep.row_header();
    const auto a1 = rpd::estimate_utility(proto.lock_abort(0), gamma, rep.opts(seed++));
    const auto a2 = rpd::estimate_utility(proto.lock_abort(1), gamma, rep.opts(seed++));
    rep.row("A1 (corrupt p1)", a1, "");
    rep.row("A2 (corrupt p2)", a2, "");
    const double pair_sum = a1.utility + a2.utility;
    char buf[96];
    std::snprintf(buf, sizeof(buf), "u(A1)+u(A2) = %.4f  (Lemma 7 floor %.3f)", pair_sum,
                  gamma.g10 + gamma.g11);
    std::printf("%s\n", buf);
    rep.check(pair_sum >= gamma.g10 + gamma.g11 - a1.margin() - a2.margin() - 0.03,
              proto.name + ": Lemma 7 pair bound holds");
    if (proto.agen) {
      const auto agen = rpd::estimate_utility(proto.agen, gamma, rep.opts(seed++));
      rep.row("Agen (mix of A1, A2)", agen, "");
      rep.check(agen.utility >= gamma.two_party_opt_bound() - agen.margin() - 0.03,
                proto.name + ": Theorem 4 mixed bound holds");
    }
    std::printf("\n");
  }

  std::printf("Interpretation: no two-party protocol evades (g10+g11)/2; the optimal\n"
              "protocol achieves it exactly, the naive Pi1 does strictly worse.\n");
  return rep.finish();
}
