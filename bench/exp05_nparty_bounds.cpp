// E05 — Lemma 11 / Lemma 13: the multi-party bounds.
//
// Against ΠOptnSFE a t-adversary earns at most (t·γ10 + (n−t)·γ11)/n — the
// chance of having corrupted the value-holder p_{i*} is exactly t/n — and
// the (n−1)-coalition (or the mixed A_ī adversary) achieves the optimum
// ((n−1)γ10 + γ11)/n. The harness sweeps n and t and prints both series.
#include "bench_util.h"
#include "experiments/setups.h"

using namespace fairsfe;
using namespace fairsfe::experiments;

int main(int argc, char** argv) {
  bench::Reporter rep(argc, argv, 2500);
  const rpd::PayoffVector gamma = rpd::PayoffVector::standard();

  rep.title("E05: Lemma 11/13 — OptNSFE multi-party bounds",
            "Claim: u(t-adversary) = (t*g10 + (n-t)*g11)/n; optimum at t = n-1.");
  rep.gamma(gamma);

  std::uint64_t seed = 500;

  for (const std::size_t n : {3u, 4u, 5u, 6u, 8u}) {
    std::printf("--- n = %zu ---\n", n);
    rep.row_header();
    for (std::size_t t = 1; t < n; ++t) {
      const auto est = rpd::estimate_utility(optn_lock_abort(n, t), gamma, rep.opts(seed++));
      const double bound = gamma.nparty_bound(t, n);
      char buf[64];
      std::snprintf(buf, sizeof(buf), "(t*g10+(n-t)*g11)/n = %.3f", bound);
      rep.row("lock-abort t=" + std::to_string(t), est, buf);
      rep.check(std::abs(est.utility - bound) < est.margin() + 0.03,
                "n=" + std::to_string(n) + " t=" + std::to_string(t) +
                " matches the Lemma 11 value");
    }
    // Lemma 13: the mixed adversary achieves the optimum.
    const auto mixed = rpd::estimate_utility(optn_a_ibar_mixed(n), gamma, rep.opts(seed++));
    char buf[64];
    std::snprintf(buf, sizeof(buf), "optimum ((n-1)g10+g11)/n = %.3f",
                  gamma.nparty_opt_bound(n));
    rep.row("mixed A_ibar (Lemma 13)", mixed, buf);
    rep.check(mixed.utility >= gamma.nparty_opt_bound(n) - mixed.margin() - 0.03,
              "n=" + std::to_string(n) + " mixed A_ibar achieves the optimum");
    std::printf("\n");
  }

  std::printf("Shape: utility grows linearly in t with slope (g10-g11)/n and the\n"
              "optimum approaches g10 as n grows — exactly the paper's series.\n");
  return rep.finish();
}
