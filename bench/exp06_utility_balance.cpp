// E06 — Lemma 14 / Lemma 16: utility-balanced fairness.
//
// Σ_{t=1}^{n-1} u(best t-adversary vs ΠOptnSFE) ≤ (n−1)(γ10+γ11)/2, and the
// bound is tight (Lemma 16's coalition pairs achieve it). The harness prints
// the per-t profile φ(t) and its sum against the bound, for several n.
#include "bench_util.h"
#include "experiments/setups.h"
#include "rpd/balance.h"

using namespace fairsfe;
using namespace fairsfe::experiments;

int main(int argc, char** argv) {
  bench::Reporter rep(argc, argv, 1500);
  const rpd::PayoffVector gamma = rpd::PayoffVector::standard();

  rep.title("E06: Lemma 14/16 — utility-balanced fairness of OptNSFE",
            "Claim: sum_t phi(t) = (n-1)(g10+g11)/2, the minimal possible sum.");
  rep.gamma(gamma);

  std::uint64_t seed = 600;

  for (const std::size_t n : {3u, 4u, 5u, 6u}) {
    const auto profile = rpd::balance_profile(
        n,
        [n](std::size_t t) { return nparty_attack_family(NPartyProtocol::kOptN, n, t); },
        gamma, rep.opts(seed));
    seed += 100;

    std::printf("--- n = %zu ---\n", n);
    std::printf("%-6s %-20s %10s   %s\n", "t", "best strategy", "phi(t)", "paper phi(t)");
    for (std::size_t t = 1; t < n; ++t) {
      std::printf("%-6zu %-20s %10.4f   %.4f\n", t,
                  profile.best_per_t[t - 1].name.c_str(), profile.phi(t),
                  gamma.nparty_bound(t, n));
    }
    std::printf("sum = %.4f   bound (n-1)(g10+g11)/2 = %.4f   margin = %.4f\n\n",
                profile.sum(), gamma.balance_bound(n), profile.sum_margin());
    rep.check(rpd::is_utility_balanced(profile, gamma),
              "n=" + std::to_string(n) + ": OptNSFE is utility-balanced");
    rep.check(profile.sum() >= gamma.balance_bound(n) - profile.sum_margin() - 0.1,
              "n=" + std::to_string(n) + ": the balance bound is tight (Lemma 16)");
  }
  return rep.finish();
}
