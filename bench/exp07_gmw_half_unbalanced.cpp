// E07 — Lemma 17: the honest-majority protocol Π½GMW is fully fair below
// n/2 corruptions and fully unfair at and above — the utility staircase
//     u(t) = γ11 for t < n/2,   u(t) = γ10 for t ≥ n/2,
// which makes it NOT utility-balanced for even n (it "gives up completely"
// at n/2), while for odd n its per-t sum meets the balanced bound exactly.
#include "bench_util.h"
#include "experiments/setups.h"
#include "rpd/balance.h"

using namespace fairsfe;
using namespace fairsfe::experiments;

int main(int argc, char** argv) {
  bench::Reporter rep(argc, argv, 1200);
  const rpd::PayoffVector gamma = rpd::PayoffVector::standard();

  rep.title("E07: Lemma 17 — the Pi-1/2-GMW utility staircase",
            "Claim: u = g11 below n/2 corruptions, g10 at or above; not\n"
            "utility-balanced for even n, exactly balanced for odd n.");
  rep.gamma(gamma);

  std::uint64_t seed = 700;

  for (const std::size_t n : {4u, 5u, 6u, 7u, 8u}) {
    std::printf("--- n = %zu (threshold %zu) ---\n", n, fair::half_gmw_threshold(n));
    rep.row_header();
    double sum = 0.0;
    double sum_margin = 0.0;
    for (std::size_t t = 1; t < n; ++t) {
      const auto est = rpd::estimate_utility(half_gmw_coalition(n, t), gamma, rep.opts(seed++));
      const double paper = (t >= (n + 1) / 2) ? gamma.g10
                           : (2 * t >= n)     ? gamma.g10
                                              : gamma.g11;
      char buf[48];
      std::snprintf(buf, sizeof(buf), "%s = %.3f", (paper == gamma.g10 ? "g10" : "g11"),
                    paper);
      rep.row("coalition t=" + std::to_string(t), est, buf);
      rep.check(std::abs(est.utility - paper) < est.margin() + 0.02,
                "n=" + std::to_string(n) + " t=" + std::to_string(t) +
                " sits on the staircase");
      sum += est.utility;
      sum_margin += est.margin();
    }
    const double bound = gamma.balance_bound(n);
    std::printf("sum = %.4f   balanced bound = %.4f   -> %s\n\n", sum, bound,
                sum <= bound + sum_margin ? "balanced" : "NOT balanced");
    if (n % 2 == 0) {
      rep.check(sum > bound + 0.1,
                "n=" + std::to_string(n) + " (even): sum exceeds the balanced bound");
    } else {
      rep.check(std::abs(sum - bound) < sum_margin + 0.1,
                "n=" + std::to_string(n) + " (odd): sum meets the balanced bound");
    }
  }
  return rep.finish();
}
