// E16 (extension) — multi-party 1/p-security (Beimel–Lindell–Omri–Orlov,
// the paper's reference [3] for Section 5).
//
// The simplified multi-party GK protocol (fair/gk_multi.h) keeps every
// coalition's unfair-abort payoff under 1/p, independently of the coalition
// size t: the only unsimulatable event is withholding the round-i* summands,
// and rushing does not help guess i*. The harness sweeps n, t and p.
#include "bench_util.h"
#include "experiments/setups.h"
#include "fair/gk_multi.h"

using namespace fairsfe;
using namespace fairsfe::experiments;

int main(int argc, char** argv) {
  bench::Reporter rep(argc, argv, 1500);
  const rpd::PayoffVector pf = rpd::PayoffVector::partial_fairness();

  rep.title("E16 (extension): multi-party 1/p-security [Beimel et al.]",
            "Claim: every t-coalition's payoff stays <= 1/p under (0,0,1,0),\n"
            "for all 1 <= t <= n-1, at O(p*|Y|) broadcast rounds.");
  rep.gamma(pf);

  std::uint64_t seed = 1600;
  for (const std::size_t n : {3u, 4u, 5u}) {
    for (const std::size_t p : {2u, 4u}) {
      const fair::GkMultiParams params = fair::make_gk_multi_and_params(n, p);
      std::printf("--- n = %zu, p = %zu (cap %zu rounds, alpha %.4f) ---\n", n, p,
                  params.cap(), params.alpha());
      rep.row_header();
      for (std::size_t t = 1; t < n; ++t) {
        double best = 0.0;
        std::string best_name;
        rpd::UtilityEstimate best_est;
        for (const auto& attack : gk_multi_attack_family(n, t, p)) {
          const auto est = rpd::estimate_utility(attack.factory, pf, rep.opts(seed++));
          if (est.utility >= best) {
            best = est.utility;
            best_name = attack.name;
            best_est = est;
          }
          rep.check(est.utility <= 1.0 / static_cast<double>(p) + est.margin() + 0.02,
                    "n=" + std::to_string(n) + " t=" + std::to_string(t) + " p=" +
                    std::to_string(p) + " " + attack.name + " <= 1/p");
        }
        char buf[48];
        std::snprintf(buf, sizeof(buf), "<= 1/p = %.4f", 1.0 / static_cast<double>(p));
        rep.row("t=" + std::to_string(t) + " best: " + best_name, best_est, buf);
      }
      std::printf("\n");
    }
  }

  std::printf("Shape: unlike the all-or-nothing Pi-1/2-GMW staircase (E07), partial\n"
              "fairness degrades with p, not with t — the multi-party extension\n"
              "keeps the 1/p guarantee even against n-1 colluding parties.\n");
  return rep.finish();
}
