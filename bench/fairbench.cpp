// fairbench — the single driver for every registered experiment.
//
// Replaces the 18 one-binary-per-experiment exp* harnesses: the scenario
// table lives in experiments::Registry (src/experiments/scenarios/), and
// this binary only selects, runs, and reports. The per-scenario work itself
// lives in service::run_scenario — the same function fairbenchd serves over
// a socket, which is what makes daemon answers bit-identical to one-shot
// runs.
//
//   fairbench --list                       enumerate registered scenarios
//   fairbench --filter exp05 [runs]        run a selection (glob / substring
//                                          / tag; empty filter = everything)
//   fairbench --filter opt2 --json out.json --runs 500 --threads 0
//   fairbench --filter exp18 --json new.json --baseline BENCH_fault.json
//   fairbench --filter gmw --preproc offline_ideal
//   fairbench --filter exp01 --transport tcp --seed 7
//
// JSON: one scenario selected -> a single object, byte-compatible with the
// files the old exp* binaries wrote (BENCH_*.json); several -> an array of
// those objects. --baseline feeds the fresh JSON plus the given baseline to
// scripts/bench_diff.py (run from the repository root).
//
// --preproc moves the OT correlations of GMW-backed scenarios into an
// offline phase: for every selected scenario that declares a PreprocBudget,
// the driver mass-produces ONE timed CorrelatedRandomness batch sized for
// all of the scenario's runs (runs × triples_per_run) and hands it to the
// body via ScenarioContext, so the whole Monte-Carlo sweep amortizes a
// single offline phase. Utilities and verdicts are invariant under the mode.
//
// SIGINT/SIGTERM: the run stops at the next scenario boundary — the scenario
// in flight finishes, the JSON collected so far is flushed intact, and the
// process exits 0 (a Ctrl-C never truncates --json output mid-array).
#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "experiments/registry.h"
#include "experiments/report.h"
#include "service/runner.h"
#include "service/signals.h"

using namespace fairsfe;

namespace {

void print_usage() {
  std::printf(
      "usage: fairbench [--list] [--filter <glob|substring|tag>] [runs] [--runs N]\n"
      "                 [--threads N] [--json out.json] [--baseline old.json]\n"
      "                 [--lanes {1,64}] [--target-ci H]\n"
      "                 [--transport {inproc,tcp}] [--seed S] [--quiet]\n"
      "\n"
      "  --list       print the scenario table and exit\n"
      "  --filter     select scenarios by id glob, id substring, or tag glob\n"
      "  runs/--runs  Monte-Carlo runs per point (default: per-scenario)\n"
      "  --threads    estimator threads (0 = one per hardware thread)\n"
      "  --json       write the report(s): one object for a single scenario,\n"
      "               an array for several\n"
      "  --baseline   after --json, diff against a baseline via\n"
      "               scripts/bench_diff.py (run from the repo root)\n"
      "  --preproc    correlated-randomness phase split: inline (default),\n"
      "               offline_ideal (trusted dealer), offline_ot (real OT\n"
      "               rounds run up front); one offline batch per scenario\n"
      "  --lanes      execution lane width: 1 = scalar engine (default), 64 =\n"
      "               bit-sliced (64 runs per machine word) for scenarios that\n"
      "               register a sliced path; estimates are bit-identical\n"
      "  --target-ci  stop each estimation once its 95%% CI half-width\n"
      "               (1.96 * std_error) reaches H instead of always doing\n"
      "               the full run count; deterministic given (seed, H)\n"
      "  --transport  delivery-leg transport: inproc (native, default) or tcp\n"
      "               (framed messages over real loopback sockets); estimates\n"
      "               are bit-identical across transports\n"
      "  --seed       replay the whole run under one master seed (overrides\n"
      "               every per-point seed; what fairbenchd's \"seed\" field\n"
      "               maps to)\n"
      "  --quiet      suppress the stdout tables (JSON output only)\n");
}

void list_scenarios(const std::vector<const experiments::ScenarioSpec*>& specs) {
  std::printf("%-36s %6s %8s  %s\n", "id", "runs", "seed", "tags");
  std::printf("%-36s %6s %8s  %s\n", "--", "----", "----", "----");
  for (const auto* s : specs) {
    std::string tags;
    for (const auto& t : s->tags) {
      if (!tags.empty()) tags += ",";
      tags += t;
    }
    std::printf("%-36s %6zu %8llu  %s\n", s->id.c_str(), s->default_runs,
                static_cast<unsigned long long>(s->base_seed), tags.c_str());
    std::printf("    %s\n", s->title.c_str());
  }
  std::printf("\n%zu scenarios registered\n", specs.size());
}

int write_json(const std::string& path, const std::vector<std::string>& objects) {
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (!f) {
    std::fprintf(stderr, "fairbench: cannot open %s for writing\n", path.c_str());
    return 1;
  }
  if (objects.size() == 1) {
    // Byte-compatible with the files the standalone exp* binaries wrote.
    std::fwrite(objects[0].data(), 1, objects[0].size(), f);
    std::fputc('\n', f);
  } else {
    std::fputs("[\n", f);
    for (std::size_t i = 0; i < objects.size(); ++i) {
      std::fwrite(objects[i].data(), 1, objects[i].size(), f);
      if (i + 1 < objects.size()) std::fputc(',', f);
      std::fputc('\n', f);
    }
    std::fputs("]\n", f);
  }
  std::fclose(f);
  std::printf("json report written to %s\n", path.c_str());
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  const bench::Args args = bench::parse_args(argc, argv);
  for (const std::string& extra : args.passthrough) {
    if (extra == "--help" || extra == "-h") {
      print_usage();
      return 0;
    }
    std::fprintf(stderr, "fairbench: ignoring unrecognized argument '%s'\n",
                 extra.c_str());
  }

  experiments::Registry& reg = experiments::Registry::instance();
  if (args.list) {
    list_scenarios(reg.all());
    return 0;
  }

  const auto selected = reg.match(args.filter);
  if (selected.empty()) {
    std::fprintf(stderr, "fairbench: no scenario matches '%s'; registered ids:\n",
                 args.filter.c_str());
    for (const auto* s : reg.all()) std::fprintf(stderr, "  %s\n", s->id.c_str());
    return 2;
  }
  if (!args.baseline_path.empty() && args.json_path.empty()) {
    std::fprintf(stderr, "fairbench: --baseline requires --json <path>\n");
    return 2;
  }

  service::install_stop_handlers();

  std::vector<std::string> objects;
  int deviations = 0;
  bool interrupted = false;
  for (const experiments::ScenarioSpec* spec : selected) {
    if (service::stop_requested()) {
      // Graceful drain: the scenarios already run are reported in full; the
      // rest are skipped, never half-measured.
      interrupted = true;
      break;
    }
    const service::ScenarioRunResult res = service::run_scenario(*spec, args);
    deviations += res.deviations;
    if (!args.json_path.empty()) objects.push_back(res.json);
  }

  if (interrupted) {
    std::fprintf(stderr,
                 "fairbench: interrupted — %zu of %zu scenario(s) completed, "
                 "flushing report\n",
                 objects.empty() ? std::size_t{0} : objects.size(),
                 selected.size());
  }
  if (selected.size() > 1 && !args.quiet) {
    std::printf("\n=== fairbench: %zu scenarios, %d deviation%s total ===\n",
                selected.size(), deviations, deviations == 1 ? "" : "s");
  }
  if (!args.json_path.empty() && !objects.empty()) {
    if (const int rc = write_json(args.json_path, objects); rc != 0) return rc;
  }
  if (!args.baseline_path.empty() && !interrupted) {
    const std::string cmd =
        "python3 scripts/bench_diff.py " + args.baseline_path + " " + args.json_path;
    std::printf("\n$ %s\n", cmd.c_str());
    // When stdout is a pipe our report is still sitting in the stdio buffer;
    // flush so the child's diff doesn't interleave mid-table.
    std::fflush(stdout);
    const int rc = std::system(cmd.c_str());
    if (rc != 0) return 1;
  }
  return 0;
}
