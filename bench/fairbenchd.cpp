// fairbenchd — the long-running estimation daemon (see src/service/daemon.h
// for the NDJSON protocol).
//
//   fairbenchd --unix /tmp/fairbenchd.sock --workers 4
//   fairbenchd --port 9600 --workers 0          # TCP on 127.0.0.1:9600
//   fairbenchd --port 0                         # ephemeral port, printed
//
// One process keeps the scenario registry, the compiled circuit-plan cache,
// and the cross-request offline-batch cache warm, and shards estimate
// requests across a persistent worker pool. Answers are bit-identical to
// one-shot `fairbench` runs of the same (scenario, runs, seed, threads,
// preproc, lanes, target_ci, transport) — both go through
// service::run_scenario.
//
// SIGINT/SIGTERM (or the "shutdown" verb) drains gracefully: in-flight
// estimates finish and are answered, connections are closed cleanly, the
// unix socket file is unlinked, and the process exits 0.
#include <cstdio>
#include <cstdlib>
#include <exception>
#include <string>

#include "service/daemon.h"
#include "service/signals.h"

using namespace fairsfe;

namespace {

void print_usage() {
  std::printf(
      "usage: fairbenchd [--unix <path> | --host H --port P] [--workers N]\n"
      "                  [--quiet]\n"
      "\n"
      "  --unix       listen on a unix-domain socket at <path>\n"
      "  --host       TCP bind address (default 127.0.0.1)\n"
      "  --port       TCP port (0 = ephemeral, printed at startup); TCP is\n"
      "               the default when --unix is not given (port 9600)\n"
      "  --workers    estimate worker threads (0 = one per hardware thread;\n"
      "               default 1 — each request's own \"threads\" field\n"
      "               additionally shards its Monte-Carlo runs)\n"
      "  --quiet      suppress the stdout log\n"
      "\n"
      "protocol: newline-delimited JSON requests, e.g.\n"
      "  {\"verb\":\"estimate\",\"scenario\":\"exp01_swap_vs_opt\","
      "\"runs\":400,\"seed\":7}\n"
      "  {\"verb\":\"list\"} | {\"verb\":\"status\"} | {\"verb\":\"shutdown\"}\n");
}

}  // namespace

int main(int argc, char** argv) {
  service::DaemonConfig cfg;
  cfg.tcp_port = 9600;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    const bool has_value = i + 1 < argc;
    if (arg == "--help" || arg == "-h") {
      print_usage();
      return 0;
    } else if (arg == "--unix" && has_value) {
      cfg.unix_path = argv[++i];
    } else if (arg == "--host" && has_value) {
      cfg.tcp_host = argv[++i];
    } else if (arg == "--port" && has_value) {
      cfg.tcp_port = static_cast<std::uint16_t>(std::atoi(argv[++i]));
    } else if (arg == "--workers" && has_value) {
      cfg.workers = static_cast<std::size_t>(std::atoi(argv[++i]));
    } else if (arg == "--quiet") {
      cfg.quiet = true;
    } else {
      std::fprintf(stderr, "fairbenchd: unrecognized argument '%s'\n",
                   arg.c_str());
      print_usage();
      return 2;
    }
  }

  service::install_stop_handlers();
  try {
    service::Daemon daemon(cfg);
    daemon.serve();
  } catch (const std::exception& e) {
    std::fprintf(stderr, "fairbenchd: %s\n", e.what());
    return 1;
  }
  return 0;
}
