// fairparty — one protocol party per OS process, over a real TCP mesh.
//
// Runs party I of an n-party GMW sealed-bid auction (max of the bids,
// circuit::make_max_circuit) with every party in its own process, exchanging
// rounds through net::MeshNode: framed wire messages, per-link sequence
// numbers, lockstep round marks. The offline correlated-randomness batch is
// dealt by PreprocMode::kOfflineIdeal from the shared --seed, so every
// process derives byte-identical triples without any extra communication —
// the mesh then carries only the online phase (input shares, Beaver
// openings, output shares).
//
//   fairparty --party 0 --parties 3 --bid 140 [--bits 8] [--base-port 9100]
//             [--host 127.0.0.1] [--peers h0,h1,h2] [--listen 0.0.0.0]
//             [--seed 7] [--expect 617] [--quiet]
//
// scripts/run_parties.sh launches one process per party on localhost;
// docker-compose.yml does the same with one container per party (--peers
// names the service hostnames, --listen 0.0.0.0). Exit status: 0 iff the
// protocol completed and, when --expect is given, the opened output equals
// it.
#include <cstdio>
#include <cstdlib>
#include <exception>
#include <string>
#include <vector>

#include "circuit/builder.h"
#include "circuit/circuit.h"
#include "crypto/rng.h"
#include "mpc/gmw.h"
#include "mpc/preproc/provider.h"
#include "net/mesh.h"
#include "service/signals.h"

using namespace fairsfe;

namespace {

constexpr int kMaxRounds = 512;

void print_usage() {
  std::printf(
      "usage: fairparty --party I --parties N [--bid X] [--bits B]\n"
      "                 [--base-port P] [--host H] [--peers h0,h1,...]\n"
      "                 [--listen ADDR] [--seed S] [--expect M] [--quiet]\n"
      "\n"
      "  --party      this process's PartyId (0-based, required)\n"
      "  --parties    total party count N >= 2 (required)\n"
      "  --bid        this party's private input (default: derived from seed)\n"
      "  --bits       input width in bits (default 8)\n"
      "  --base-port  party i listens on base-port + i (default 9100)\n"
      "  --host       peer host when all parties share one machine\n"
      "  --peers      comma-separated per-party hostnames (compose mode)\n"
      "  --listen     local bind address (default 127.0.0.1; use 0.0.0.0\n"
      "               for cross-container meshes)\n"
      "  --seed       shared dealer seed; must match across all parties\n"
      "  --expect     assert the opened output equals M (exit 1 otherwise)\n");
}

std::vector<std::string> split_hosts(const std::string& csv) {
  std::vector<std::string> out;
  std::size_t start = 0;
  for (;;) {
    const std::size_t comma = csv.find(',', start);
    out.push_back(csv.substr(start, comma - start));
    if (comma == std::string::npos) return out;
    start = comma + 1;
  }
}

}  // namespace

int main(int argc, char** argv) {
  int party = -1;
  std::size_t parties = 0;
  std::uint64_t bid = 0;
  bool bid_set = false;
  std::size_t bits = 8;
  net::MeshConfig mesh_cfg;
  std::uint64_t seed = 7;
  std::uint64_t expect = 0;
  bool expect_set = false;
  bool quiet = false;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    const bool has_value = i + 1 < argc;
    if (arg == "--help" || arg == "-h") {
      print_usage();
      return 0;
    } else if (arg == "--party" && has_value) {
      party = std::atoi(argv[++i]);
    } else if (arg == "--parties" && has_value) {
      parties = static_cast<std::size_t>(std::atoi(argv[++i]));
    } else if (arg == "--bid" && has_value) {
      bid = std::strtoull(argv[++i], nullptr, 10);
      bid_set = true;
    } else if (arg == "--bits" && has_value) {
      bits = static_cast<std::size_t>(std::atoi(argv[++i]));
    } else if (arg == "--base-port" && has_value) {
      mesh_cfg.base_port = static_cast<std::uint16_t>(std::atoi(argv[++i]));
    } else if (arg == "--host" && has_value) {
      mesh_cfg.host = argv[++i];
    } else if (arg == "--peers" && has_value) {
      mesh_cfg.hosts = split_hosts(argv[++i]);
    } else if (arg == "--listen" && has_value) {
      mesh_cfg.listen_host = argv[++i];
    } else if (arg == "--seed" && has_value) {
      seed = std::strtoull(argv[++i], nullptr, 10);
    } else if (arg == "--expect" && has_value) {
      expect = std::strtoull(argv[++i], nullptr, 10);
      expect_set = true;
    } else if (arg == "--quiet") {
      quiet = true;
    } else {
      std::fprintf(stderr, "fairparty: unrecognized argument '%s'\n", arg.c_str());
      print_usage();
      return 2;
    }
  }
  if (party < 0 || parties < 2 || static_cast<std::size_t>(party) >= parties ||
      bits == 0 || bits > 32) {
    print_usage();
    return 2;
  }
  if (!bid_set) {
    // Deterministic demo bid so a bare `fairparty --party i --parties n`
    // still runs a meaningful auction.
    bid = Rng(seed ^ (0x9e3779b97f4a7c15ULL * (static_cast<std::uint64_t>(party) + 1)))
              .below((1ull << bits) - 1);
  }
  bid &= (bits >= 64) ? ~0ull : ((1ull << bits) - 1);

  service::install_stop_handlers();
  try {
    // Every process builds the same circuit and deals the same offline batch
    // from the shared seed: CorrelatedRandomness is a pure function of
    // (mode, request, seed), so no dealer communication is needed.
    const circuit::Circuit circuit = circuit::make_max_circuit(parties, bits);
    mpc::preproc::PreprocRequest req;
    req.parties = parties;
    req.triples = circuit.and_count();
    Rng dealer_rng(seed);
    auto batch = mpc::preproc::generate_batch(mpc::preproc::PreprocMode::kOfflineIdeal,
                                              req, dealer_rng);
    auto cfg = mpc::GmwConfig::for_circuit(circuit)
                   .with_preproc(mpc::preproc::PreprocMode::kOfflineIdeal, batch)
                   .build_shared();

    // Per-party protocol randomness: independent across parties (GMW needs
    // no shared randomness beyond the dealt batch).
    Rng party_rng(seed ^ (0xd1b54a32d192ed03ULL *
                          (static_cast<std::uint64_t>(party) + 1)));
    mpc::GmwParty self(party, cfg, circuit::u64_to_bits(bid, bits),
                       std::move(party_rng));
    self.bind_preproc_slice(0);

    mesh_cfg.self = party;
    mesh_cfg.parties = parties;
    net::MeshNode mesh(mesh_cfg);
    if (!quiet) {
      std::printf("fairparty %d/%zu: bid %llu, listening on %s:%u\n", party,
                  parties, static_cast<unsigned long long>(bid),
                  mesh_cfg.listen_host.c_str(), static_cast<unsigned>(mesh.port()));
    }
    mesh.connect();

    // The engine's lockstep loop, distributed: consume round r-1's inbox,
    // emit round r, exchange. A SIGINT finalizes via on_abort (output ⊥) and
    // leaves the mesh cleanly instead of stranding peers mid-round.
    std::vector<sim::Message> inbox;
    int round = 0;
    for (; round < kMaxRounds; ++round) {
      if (service::stop_requested()) {
        self.on_abort();
        break;
      }
      std::vector<sim::Message> out;
      if (!self.done()) {
        out = self.on_round(round, sim::MsgView(inbox.data(), inbox.size()));
      }
      net::MeshNode::RoundResult res = mesh.exchange(round, out, self.done());
      inbox = std::move(res.inbox);
      if (res.all_done) break;
    }
    if (!self.done()) self.on_abort();

    const auto st = mesh.stats();
    if (!quiet) {
      std::printf(
          "fairparty %d/%zu: %d round(s), %llu frame(s), %llu wire byte(s), "
          "%llu reconnect(s)\n",
          party, parties, round + 1,
          static_cast<unsigned long long>(st.frames),
          static_cast<unsigned long long>(st.wire_bytes),
          static_cast<unsigned long long>(st.reconnects));
    }
    if (!self.output().has_value()) {
      std::fprintf(stderr, "fairparty %d: protocol aborted (output ⊥)\n", party);
      return 1;
    }
    const std::uint64_t result =
        circuit::bits_to_u64(circuit::bytes_to_bits(*self.output(), bits));
    std::printf("fairparty %d/%zu: winning bid = %llu\n", party, parties,
                static_cast<unsigned long long>(result));
    if (expect_set && result != expect) {
      std::fprintf(stderr, "fairparty %d: FAIL — expected %llu, got %llu\n",
                   party, static_cast<unsigned long long>(expect),
                   static_cast<unsigned long long>(result));
      return 1;
    }
    return 0;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "fairparty %d: %s\n", party, e.what());
    return 1;
  }
}
