// P01 — crypto substrate throughput (google-benchmark).
#include <benchmark/benchmark.h>

#include <string>
#include <vector>

#include "bench_util.h"

#include "crypto/auth_share.h"
#include "crypto/chacha20.h"
#include "crypto/commitment.h"
#include "crypto/hmac.h"
#include "crypto/lamport.h"
#include "crypto/mac.h"
#include "crypto/rng.h"
#include "crypto/sha256.h"
#include "crypto/shamir.h"

namespace fairsfe {
namespace {

void BM_Sha256(benchmark::State& state) {
  const Bytes data(static_cast<std::size_t>(state.range(0)), 0xab);
  for (auto _ : state) {
    benchmark::DoNotOptimize(sha256(data));
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) * state.range(0));
}
BENCHMARK(BM_Sha256)->Arg(64)->Arg(1024)->Arg(16384);

void BM_HmacSha256(benchmark::State& state) {
  const Bytes key = bytes_of("key material");
  const Bytes data(static_cast<std::size_t>(state.range(0)), 0xcd);
  for (auto _ : state) {
    benchmark::DoNotOptimize(hmac_sha256(key, data));
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) * state.range(0));
}
BENCHMARK(BM_HmacSha256)->Arg(64)->Arg(1024);

void BM_ChaCha20Keystream(benchmark::State& state) {
  const Bytes key(32, 1);
  const Bytes nonce(12, 2);
  for (auto _ : state) {
    ChaCha20 c(key, nonce);
    benchmark::DoNotOptimize(c.keystream(static_cast<std::size_t>(state.range(0))));
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) * state.range(0));
}
BENCHMARK(BM_ChaCha20Keystream)->Arg(64)->Arg(4096);

void BM_FieldMul(benchmark::State& state) {
  Rng rng(1);
  Fp a = Fp::random(rng);
  const Fp b = Fp::random(rng);
  for (auto _ : state) {
    a *= b;
    benchmark::DoNotOptimize(a);
  }
}
BENCHMARK(BM_FieldMul);

void BM_OneTimeMac(benchmark::State& state) {
  Rng rng(2);
  const MacKey k = MacKey::random(rng);
  const Bytes msg(static_cast<std::size_t>(state.range(0)), 0x11);
  for (auto _ : state) {
    benchmark::DoNotOptimize(mac_tag(k, msg));
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) * state.range(0));
}
BENCHMARK(BM_OneTimeMac)->Arg(32)->Arg(1024);

void BM_Commitment(benchmark::State& state) {
  Rng rng(3);
  const Bytes msg(64, 0x22);
  for (auto _ : state) {
    benchmark::DoNotOptimize(commit(msg, rng));
  }
}
BENCHMARK(BM_Commitment);

void BM_AuthShare2(benchmark::State& state) {
  Rng rng(4);
  const Bytes secret(static_cast<std::size_t>(state.range(0)), 0x33);
  for (auto _ : state) {
    benchmark::DoNotOptimize(auth_share2(secret, rng));
  }
}
BENCHMARK(BM_AuthShare2)->Arg(8)->Arg(256);

void BM_AuthReconstruct2(benchmark::State& state) {
  Rng rng(5);
  const Bytes secret(64, 0x44);
  const AuthSharing2 sh = auth_share2(secret, rng);
  const Bytes opening = sh.share2.opening_to_bytes();
  for (auto _ : state) {
    benchmark::DoNotOptimize(auth_reconstruct2(sh.share1, opening));
  }
}
BENCHMARK(BM_AuthReconstruct2);

void BM_ShamirShare(benchmark::State& state) {
  Rng rng(6);
  const Bytes secret(32, 0x55);
  const auto n = static_cast<std::size_t>(state.range(0));
  for (auto _ : state) {
    benchmark::DoNotOptimize(shamir_share_bytes(secret, n / 2 + 1, n, rng));
  }
}
BENCHMARK(BM_ShamirShare)->Arg(4)->Arg(16)->Arg(64);

void BM_ShamirReconstruct(benchmark::State& state) {
  Rng rng(7);
  const Bytes secret(32, 0x66);
  const auto n = static_cast<std::size_t>(state.range(0));
  const auto shares = shamir_share_bytes(secret, n / 2 + 1, n, rng);
  for (auto _ : state) {
    benchmark::DoNotOptimize(shamir_reconstruct_bytes(shares, n / 2 + 1));
  }
}
BENCHMARK(BM_ShamirReconstruct)->Arg(4)->Arg(16);

void BM_LamportGen(benchmark::State& state) {
  Rng rng(8);
  for (auto _ : state) {
    benchmark::DoNotOptimize(lamport_gen(rng));
  }
}
BENCHMARK(BM_LamportGen);

void BM_LamportSignVerify(benchmark::State& state) {
  Rng rng(9);
  const LamportKeyPair kp = lamport_gen(rng);
  const Bytes msg = bytes_of("the output value");
  for (auto _ : state) {
    const Bytes sig = lamport_sign(kp.signing_key, msg);
    benchmark::DoNotOptimize(lamport_verify(kp.verification_key, msg, sig));
  }
}
BENCHMARK(BM_LamportSignVerify);

}  // namespace
}  // namespace fairsfe

// Same CLI surface as fairbench/perf_protocols: --json and --filter are
// translated onto google-benchmark's flags, anything unrecognized passes
// through to benchmark::Initialize untouched.
int main(int argc, char** argv) {
  const fairsfe::bench::Args args = fairsfe::bench::parse_args(argc, argv);
  std::vector<std::string> fwd;
  fwd.emplace_back(argv[0]);
  if (!args.json_path.empty()) {
    fwd.emplace_back("--benchmark_out=" + args.json_path);
    fwd.emplace_back("--benchmark_out_format=json");
  }
  if (!args.filter.empty()) {
    fwd.emplace_back("--benchmark_filter=" + args.filter);
  }
  for (const std::string& extra : args.passthrough) fwd.push_back(extra);
  std::vector<char*> fwd_argv;
  fwd_argv.reserve(fwd.size());
  for (std::string& s : fwd) fwd_argv.push_back(s.data());
  int fwd_argc = static_cast<int>(fwd_argv.size());
  benchmark::Initialize(&fwd_argc, fwd_argv.data());
  if (benchmark::ReportUnrecognizedArguments(fwd_argc, fwd_argv.data())) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
