// P02 — end-to-end protocol execution throughput: full engine runs of the
// fair protocols and the GMW substrate (gates/second).
//
// Two modes:
//   perf_protocols [google-benchmark flags]   — the microbenchmarks below
//   perf_protocols --scaling [--json <path>] [runs] [--threads N]
//     — Monte-Carlo estimator thread-scaling: runs/sec at 1/2/4/8 worker
//       threads (same seed; the estimates are bit-identical by construction)
//       rendered through bench::Reporter, so --json records the throughput
//       trajectory machine-readably.
#include <benchmark/benchmark.h>

#include "bench_util.h"
#include "circuit/builder.h"
#include "experiments/setups.h"
#include "fair/mixed.h"
#include "fair/opt2_compiled.h"
#include "fair/opt2sfe.h"
#include "mpc/gmw.h"
#include "mpc/ot.h"
#include "mpc/yao.h"

namespace fairsfe {
namespace {

using namespace experiments;

void BM_Opt2SfeHonestRun(benchmark::State& state) {
  std::uint64_t seed = 0;
  const mpc::SfeSpec spec = two_party_spec();
  for (auto _ : state) {
    Rng rng(seed++);
    const auto xs = random_inputs(2, rng);
    auto parties = fair::make_opt2_parties(spec, xs[0], xs[1], rng);
    sim::Engine e(std::move(parties), std::make_unique<fair::Opt2ShareFunc>(spec), nullptr,
                  rng.fork("engine"));
    benchmark::DoNotOptimize(e.run());
  }
}
BENCHMARK(BM_Opt2SfeHonestRun);

void BM_OptNSfeHonestRun(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  const mpc::SfeSpec spec = nparty_spec(n);
  std::uint64_t seed = 0;
  for (auto _ : state) {
    Rng rng(seed++);
    const auto xs = random_inputs(n, rng);
    auto inst = fair::make_optn_instance(spec, xs, rng);
    sim::Engine e(std::move(inst.parties), std::move(inst.functionality), nullptr,
                  rng.fork("engine"));
    benchmark::DoNotOptimize(e.run());
  }
}
BENCHMARK(BM_OptNSfeHonestRun)->Arg(3)->Arg(5)->Arg(9);

void BM_HalfGmwHonestRun(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  const mpc::SfeSpec spec = nparty_spec(n);
  std::uint64_t seed = 0;
  for (auto _ : state) {
    Rng rng(seed++);
    const auto xs = random_inputs(n, rng);
    auto inst = fair::make_half_gmw_instance(spec, xs, rng);
    sim::Engine e(std::move(inst.parties), std::move(inst.functionality), nullptr,
                  rng.fork("engine"));
    benchmark::DoNotOptimize(e.run());
  }
}
BENCHMARK(BM_HalfGmwHonestRun)->Arg(4)->Arg(8);

void BM_GmwMillionaires(benchmark::State& state) {
  const auto bits = static_cast<std::size_t>(state.range(0));
  auto cfg = std::make_shared<const mpc::GmwConfig>(
      mpc::GmwConfig::public_output(circuit::make_millionaires_circuit(bits)));
  std::uint64_t seed = 0;
  for (auto _ : state) {
    Rng rng(seed++);
    std::vector<std::vector<bool>> inputs = {
        circuit::u64_to_bits(rng.below(1u << bits), bits),
        circuit::u64_to_bits(rng.below(1u << bits), bits)};
    auto parties = mpc::make_gmw_parties(cfg, inputs, rng);
    sim::Engine e(std::move(parties), std::make_unique<mpc::OtHub>(), nullptr,
                  rng.fork("engine"));
    benchmark::DoNotOptimize(e.run());
  }
  state.counters["and_gates/s"] = benchmark::Counter(
      static_cast<double>(state.iterations() * cfg->circuit.and_count()),
      benchmark::Counter::kIsRate);
}
BENCHMARK(BM_GmwMillionaires)->Arg(8)->Arg(16)->Arg(24);

void BM_GmwMaxNParty(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  auto cfg = std::make_shared<const mpc::GmwConfig>(
      mpc::GmwConfig::public_output(circuit::make_max_circuit(n, 8)));
  std::uint64_t seed = 0;
  for (auto _ : state) {
    Rng rng(seed++);
    std::vector<std::vector<bool>> inputs;
    for (std::size_t p = 0; p < n; ++p) {
      inputs.push_back(circuit::u64_to_bits(rng.below(256), 8));
    }
    auto parties = mpc::make_gmw_parties(cfg, inputs, rng);
    sim::Engine e(std::move(parties), std::make_unique<mpc::OtHub>(), nullptr,
                  rng.fork("engine"));
    benchmark::DoNotOptimize(e.run());
  }
  state.counters["and_gates/s"] = benchmark::Counter(
      static_cast<double>(state.iterations() * cfg->circuit.and_count()),
      benchmark::Counter::kIsRate);
}
BENCHMARK(BM_GmwMaxNParty)->Arg(2)->Arg(4)->Arg(6);

void BM_YaoMillionaires(benchmark::State& state) {
  const auto bits = static_cast<std::size_t>(state.range(0));
  auto circuit = std::make_shared<const circuit::Circuit>(
      circuit::make_millionaires_circuit(bits));
  std::uint64_t seed = 0;
  for (auto _ : state) {
    Rng rng(seed++);
    std::vector<std::vector<bool>> inputs = {
        circuit::u64_to_bits(rng.below(1u << bits), bits),
        circuit::u64_to_bits(rng.below(1u << bits), bits)};
    auto parties = mpc::make_yao_parties(circuit, inputs, rng);
    sim::Engine e(std::move(parties), std::make_unique<mpc::OtHub>(), nullptr,
                  rng.fork("engine"));
    benchmark::DoNotOptimize(e.run());
  }
  state.counters["gates/s"] = benchmark::Counter(
      static_cast<double>(state.iterations() * circuit->num_wires()),
      benchmark::Counter::kIsRate);
}
BENCHMARK(BM_YaoMillionaires)->Arg(8)->Arg(16)->Arg(24);

void BM_Opt2CompiledRun(benchmark::State& state) {
  auto base = std::make_shared<const circuit::Circuit>(circuit::make_concat_circuit(2, 8));
  std::uint64_t seed = 0;
  for (auto _ : state) {
    Rng rng(seed++);
    std::vector<std::vector<bool>> inputs = {circuit::u64_to_bits(rng.below(256), 8),
                                             circuit::u64_to_bits(rng.below(256), 8)};
    auto parties = fair::make_opt2_compiled_parties(base, inputs, rng);
    sim::EngineConfig cfg;
    cfg.max_rounds = 24;
    sim::Engine e(std::move(parties), std::make_unique<mpc::OtHub>(), nullptr,
                  rng.fork("engine"), cfg);
    benchmark::DoNotOptimize(e.run());
  }
}
BENCHMARK(BM_Opt2CompiledRun);

void BM_GkProtocolRun(benchmark::State& state) {
  const auto p = static_cast<std::size_t>(state.range(0));
  const fair::GkParams params = fair::make_gk_and_params(p);
  std::uint64_t seed = 0;
  for (auto _ : state) {
    Rng rng(seed++);
    auto parties = fair::make_gk_parties(params, Bytes{1}, Bytes{1}, rng);
    sim::EngineConfig cfg;
    cfg.max_rounds = static_cast<int>(2 * params.cap() + 10);
    sim::Engine e(std::move(parties), std::make_unique<fair::ShareGenFunc>(params), nullptr,
                  rng.fork("engine"), cfg);
    benchmark::DoNotOptimize(e.run());
  }
  state.counters["rounds"] = static_cast<double>(2 * params.cap());
}
BENCHMARK(BM_GkProtocolRun)->Arg(2)->Arg(4)->Arg(8);

void BM_UtilityEstimation(benchmark::State& state) {
  // Cost of one full Monte-Carlo utility point (100 runs).
  const rpd::PayoffVector gamma = rpd::PayoffVector::standard();
  std::uint64_t seed = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        rpd::estimate_utility(opt2_lock_abort(0), gamma, 100, seed++));
  }
}
BENCHMARK(BM_UtilityEstimation)->Unit(benchmark::kMillisecond);

void BM_UtilityEstimationThreads(benchmark::State& state) {
  // The same 512-run utility point sharded over N worker threads.
  const rpd::PayoffVector gamma = rpd::PayoffVector::standard();
  rpd::EstimatorOptions opts;
  opts.runs = 512;
  opts.seed = 42;
  opts.threads = static_cast<std::size_t>(state.range(0));
  for (auto _ : state) {
    benchmark::DoNotOptimize(rpd::estimate_utility(opt2_lock_abort(0), gamma, opts));
  }
  state.counters["runs/s"] = benchmark::Counter(
      static_cast<double>(state.iterations() * opts.runs), benchmark::Counter::kIsRate);
}
BENCHMARK(BM_UtilityEstimationThreads)->Arg(1)->Arg(2)->Arg(4)->Arg(8)
    ->Unit(benchmark::kMillisecond);

// --scaling mode: estimator throughput (runs/sec) vs worker threads, with the
// bit-identical determinism guarantee checked along the way.
int run_scaling(int argc, char** argv) {
  bench::Reporter rep(argc, argv, 2000);
  const rpd::PayoffVector gamma = rpd::PayoffVector::standard();

  rep.title("P02-scaling: parallel Monte-Carlo estimator throughput",
            "estimate_utility(Opt2SFE/lock-abort) at 1/2/4/8 worker threads; same seed "
            "=> bit-identical estimates, runs/sec should scale with the hardware.");
  rep.gamma(gamma);
  rep.row_header();

  const std::vector<std::size_t> thread_counts = {1, 2, 4, 8};
  std::vector<rpd::UtilityEstimate> ests;
  for (std::size_t t : thread_counts) {
    auto opts = rep.opts(42);
    opts.threads = t;
    auto est = rpd::estimate_utility(opt2_lock_abort(0), gamma, opts);
    char buf[48];
    std::snprintf(buf, sizeof(buf), "%.0f runs/sec", est.runs_per_sec());
    rep.row("threads=" + std::to_string(t), est, buf);
    ests.push_back(std::move(est));
  }

  bool identical = true;
  for (const auto& est : ests) {
    identical = identical && est.utility == ests[0].utility &&
                est.std_error == ests[0].std_error &&
                est.event_freq == ests[0].event_freq &&
                est.run_events == ests[0].run_events;
  }
  rep.check(identical, "estimates bit-identical across all thread counts");
  const double speedup = ests.back().runs_per_sec() / ests.front().runs_per_sec();
  char buf[96];
  std::snprintf(buf, sizeof(buf),
                "8-thread throughput >= 3x single-thread (measured %.2fx; needs >= 4 "
                "hardware threads)",
                speedup);
  rep.check(speedup >= 3.0, buf);
  return rep.finish();
}

}  // namespace
}  // namespace fairsfe

int main(int argc, char** argv) {
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--scaling") == 0) {
      return fairsfe::run_scaling(argc, argv);
    }
  }
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
