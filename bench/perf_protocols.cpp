// P02 — end-to-end protocol execution throughput: full engine runs of the
// fair protocols and the GMW substrate (gates/second).
#include <benchmark/benchmark.h>

#include "circuit/builder.h"
#include "experiments/setups.h"
#include "fair/mixed.h"
#include "fair/opt2_compiled.h"
#include "fair/opt2sfe.h"
#include "mpc/gmw.h"
#include "mpc/ot.h"
#include "mpc/yao.h"

namespace fairsfe {
namespace {

using namespace experiments;

void BM_Opt2SfeHonestRun(benchmark::State& state) {
  std::uint64_t seed = 0;
  const mpc::SfeSpec spec = two_party_spec();
  for (auto _ : state) {
    Rng rng(seed++);
    const auto xs = random_inputs(2, rng);
    auto parties = fair::make_opt2_parties(spec, xs[0], xs[1], rng);
    sim::Engine e(std::move(parties), std::make_unique<fair::Opt2ShareFunc>(spec), nullptr,
                  rng.fork("engine"));
    benchmark::DoNotOptimize(e.run());
  }
}
BENCHMARK(BM_Opt2SfeHonestRun);

void BM_OptNSfeHonestRun(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  const mpc::SfeSpec spec = nparty_spec(n);
  std::uint64_t seed = 0;
  for (auto _ : state) {
    Rng rng(seed++);
    const auto xs = random_inputs(n, rng);
    auto inst = fair::make_optn_instance(spec, xs, rng);
    sim::Engine e(std::move(inst.parties), std::move(inst.functionality), nullptr,
                  rng.fork("engine"));
    benchmark::DoNotOptimize(e.run());
  }
}
BENCHMARK(BM_OptNSfeHonestRun)->Arg(3)->Arg(5)->Arg(9);

void BM_HalfGmwHonestRun(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  const mpc::SfeSpec spec = nparty_spec(n);
  std::uint64_t seed = 0;
  for (auto _ : state) {
    Rng rng(seed++);
    const auto xs = random_inputs(n, rng);
    auto inst = fair::make_half_gmw_instance(spec, xs, rng);
    sim::Engine e(std::move(inst.parties), std::move(inst.functionality), nullptr,
                  rng.fork("engine"));
    benchmark::DoNotOptimize(e.run());
  }
}
BENCHMARK(BM_HalfGmwHonestRun)->Arg(4)->Arg(8);

void BM_GmwMillionaires(benchmark::State& state) {
  const auto bits = static_cast<std::size_t>(state.range(0));
  auto cfg = std::make_shared<const mpc::GmwConfig>(
      mpc::GmwConfig::public_output(circuit::make_millionaires_circuit(bits)));
  std::uint64_t seed = 0;
  for (auto _ : state) {
    Rng rng(seed++);
    std::vector<std::vector<bool>> inputs = {
        circuit::u64_to_bits(rng.below(1u << bits), bits),
        circuit::u64_to_bits(rng.below(1u << bits), bits)};
    auto parties = mpc::make_gmw_parties(cfg, inputs, rng);
    sim::Engine e(std::move(parties), std::make_unique<mpc::OtHub>(), nullptr,
                  rng.fork("engine"));
    benchmark::DoNotOptimize(e.run());
  }
  state.counters["and_gates/s"] = benchmark::Counter(
      static_cast<double>(state.iterations() * cfg->circuit.and_count()),
      benchmark::Counter::kIsRate);
}
BENCHMARK(BM_GmwMillionaires)->Arg(8)->Arg(16)->Arg(24);

void BM_GmwMaxNParty(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  auto cfg = std::make_shared<const mpc::GmwConfig>(
      mpc::GmwConfig::public_output(circuit::make_max_circuit(n, 8)));
  std::uint64_t seed = 0;
  for (auto _ : state) {
    Rng rng(seed++);
    std::vector<std::vector<bool>> inputs;
    for (std::size_t p = 0; p < n; ++p) {
      inputs.push_back(circuit::u64_to_bits(rng.below(256), 8));
    }
    auto parties = mpc::make_gmw_parties(cfg, inputs, rng);
    sim::Engine e(std::move(parties), std::make_unique<mpc::OtHub>(), nullptr,
                  rng.fork("engine"));
    benchmark::DoNotOptimize(e.run());
  }
  state.counters["and_gates/s"] = benchmark::Counter(
      static_cast<double>(state.iterations() * cfg->circuit.and_count()),
      benchmark::Counter::kIsRate);
}
BENCHMARK(BM_GmwMaxNParty)->Arg(2)->Arg(4)->Arg(6);

void BM_YaoMillionaires(benchmark::State& state) {
  const auto bits = static_cast<std::size_t>(state.range(0));
  auto circuit = std::make_shared<const circuit::Circuit>(
      circuit::make_millionaires_circuit(bits));
  std::uint64_t seed = 0;
  for (auto _ : state) {
    Rng rng(seed++);
    std::vector<std::vector<bool>> inputs = {
        circuit::u64_to_bits(rng.below(1u << bits), bits),
        circuit::u64_to_bits(rng.below(1u << bits), bits)};
    auto parties = mpc::make_yao_parties(circuit, inputs, rng);
    sim::Engine e(std::move(parties), std::make_unique<mpc::OtHub>(), nullptr,
                  rng.fork("engine"));
    benchmark::DoNotOptimize(e.run());
  }
  state.counters["gates/s"] = benchmark::Counter(
      static_cast<double>(state.iterations() * circuit->num_wires()),
      benchmark::Counter::kIsRate);
}
BENCHMARK(BM_YaoMillionaires)->Arg(8)->Arg(16)->Arg(24);

void BM_Opt2CompiledRun(benchmark::State& state) {
  auto base = std::make_shared<const circuit::Circuit>(circuit::make_concat_circuit(2, 8));
  std::uint64_t seed = 0;
  for (auto _ : state) {
    Rng rng(seed++);
    std::vector<std::vector<bool>> inputs = {circuit::u64_to_bits(rng.below(256), 8),
                                             circuit::u64_to_bits(rng.below(256), 8)};
    auto parties = fair::make_opt2_compiled_parties(base, inputs, rng);
    sim::EngineConfig cfg;
    cfg.max_rounds = 24;
    sim::Engine e(std::move(parties), std::make_unique<mpc::OtHub>(), nullptr,
                  rng.fork("engine"), cfg);
    benchmark::DoNotOptimize(e.run());
  }
}
BENCHMARK(BM_Opt2CompiledRun);

void BM_GkProtocolRun(benchmark::State& state) {
  const auto p = static_cast<std::size_t>(state.range(0));
  const fair::GkParams params = fair::make_gk_and_params(p);
  std::uint64_t seed = 0;
  for (auto _ : state) {
    Rng rng(seed++);
    auto parties = fair::make_gk_parties(params, Bytes{1}, Bytes{1}, rng);
    sim::EngineConfig cfg;
    cfg.max_rounds = static_cast<int>(2 * params.cap() + 10);
    sim::Engine e(std::move(parties), std::make_unique<fair::ShareGenFunc>(params), nullptr,
                  rng.fork("engine"), cfg);
    benchmark::DoNotOptimize(e.run());
  }
  state.counters["rounds"] = static_cast<double>(2 * params.cap());
}
BENCHMARK(BM_GkProtocolRun)->Arg(2)->Arg(4)->Arg(8);

void BM_UtilityEstimation(benchmark::State& state) {
  // Cost of one full Monte-Carlo utility point (100 runs).
  const rpd::PayoffVector gamma = rpd::PayoffVector::standard();
  std::uint64_t seed = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        rpd::estimate_utility(opt2_lock_abort(0), gamma, 100, seed++));
  }
}
BENCHMARK(BM_UtilityEstimation)->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace fairsfe

BENCHMARK_MAIN();
