// P02 — end-to-end protocol execution throughput: full engine runs of the
// fair protocols and the GMW substrate (gates/second).
//
// Three modes:
//   perf_protocols [google-benchmark flags]   — the microbenchmarks below
//   perf_protocols --scaling [--json <path>] [runs] [--threads N]
//     — Monte-Carlo estimator thread-scaling: runs/sec at 1/2/4/8 worker
//       threads (same seed; the estimates are bit-identical by construction)
//       rendered through bench::Reporter, so --json records the throughput
//       trajectory machine-readably.
//   perf_protocols --profile [--json <path>] [iters]
//     — hot-path profile of representative full-engine runs: runs/sec plus
//       the engine's RoutingStats counters (messages/round, payload bytes and
//       copy-avoided bytes per run). --json writes BENCH_hotpath.json so the
//       trajectory of the zero-copy delivery path is recorded in-repo.
//   perf_protocols --preproc [--json <path>] [iters]
//     — offline/online phase split (DESIGN.md §10): for the GMW profile
//       cases, inline OT-hybrid runs/sec vs the online phase consuming a
//       pre-dealt CorrelatedRandomness batch, plus the offline batch cost
//       for both providers. --json writes BENCH_preproc.json.
//   perf_protocols --bitslice [--json <path>] [runs] [--threads N]
//     — bit-sliced transposed execution (DESIGN.md §11): estimator
//       throughput with the scalar engine vs 64 runs per machine word on
//       honest GMW runs, demanding bit-identical estimates and a >= 10x
//       speedup on gmw_millionaires_16, plus Beaver-path and 4-party rows
//       and the zero-variance sequential-stopping trajectory. --json writes
//       BENCH_bitslice.json.
//   perf_protocols --zoo [--json <path>] [runs] [--threads N]
//     — protocol-zoo throughput (the E21/E22 families): full estimator runs
//       of the round-sampling 1/p exchange and the escrowed penalty
//       exchange, with the structural claims (1/p saturation, the deposit
//       flip, the at_least_as_fair ordering) as checks. --json writes
//       BENCH_zoo.json.
#include <benchmark/benchmark.h>

#include <chrono>
#include <cmath>
#include <cstring>
#include <functional>

#include "bench_util.h"
#include "circuit/builder.h"
#include "experiments/setups.h"
#include "fair/mixed.h"
#include "fair/opt2_compiled.h"
#include "fair/opt2sfe.h"
#include "mpc/gmw.h"
#include "mpc/ot.h"
#include "mpc/preproc/provider.h"
#include "mpc/yao.h"

namespace fairsfe {
namespace {

using namespace experiments;

void BM_Opt2SfeHonestRun(benchmark::State& state) {
  std::uint64_t seed = 0;
  const mpc::SfeSpec spec = two_party_spec();
  for (auto _ : state) {
    Rng rng(seed++);
    const auto xs = random_inputs(2, rng);
    auto parties = fair::make_opt2_parties(spec, xs[0], xs[1], rng);
    sim::Engine e(std::move(parties), std::make_unique<fair::Opt2ShareFunc>(spec), nullptr,
                  rng.fork("engine"));
    benchmark::DoNotOptimize(e.run());
  }
}
BENCHMARK(BM_Opt2SfeHonestRun);

void BM_OptNSfeHonestRun(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  const mpc::SfeSpec spec = nparty_spec(n);
  std::uint64_t seed = 0;
  for (auto _ : state) {
    Rng rng(seed++);
    const auto xs = random_inputs(n, rng);
    auto inst = fair::make_optn_instance(spec, xs, rng);
    sim::Engine e(std::move(inst.parties), std::move(inst.functionality), nullptr,
                  rng.fork("engine"));
    benchmark::DoNotOptimize(e.run());
  }
}
BENCHMARK(BM_OptNSfeHonestRun)->Arg(3)->Arg(5)->Arg(9);

void BM_HalfGmwHonestRun(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  const mpc::SfeSpec spec = nparty_spec(n);
  std::uint64_t seed = 0;
  for (auto _ : state) {
    Rng rng(seed++);
    const auto xs = random_inputs(n, rng);
    auto inst = fair::make_half_gmw_instance(spec, xs, rng);
    sim::Engine e(std::move(inst.parties), std::move(inst.functionality), nullptr,
                  rng.fork("engine"));
    benchmark::DoNotOptimize(e.run());
  }
}
BENCHMARK(BM_HalfGmwHonestRun)->Arg(4)->Arg(8);

void BM_GmwMillionaires(benchmark::State& state) {
  const auto bits = static_cast<std::size_t>(state.range(0));
  auto cfg = std::make_shared<const mpc::GmwConfig>(
      mpc::GmwConfig::public_output(circuit::make_millionaires_circuit(bits)));
  std::uint64_t seed = 0;
  for (auto _ : state) {
    Rng rng(seed++);
    std::vector<std::vector<bool>> inputs = {
        circuit::u64_to_bits(rng.below(1u << bits), bits),
        circuit::u64_to_bits(rng.below(1u << bits), bits)};
    auto parties = mpc::make_gmw_parties(cfg, inputs, rng);
    sim::Engine e(std::move(parties), mpc::make_gmw_functionality(*cfg), nullptr,
                  rng.fork("engine"));
    benchmark::DoNotOptimize(e.run());
  }
  state.counters["and_gates/s"] = benchmark::Counter(
      static_cast<double>(state.iterations() * cfg->circuit.and_count()),
      benchmark::Counter::kIsRate);
}
BENCHMARK(BM_GmwMillionaires)->Arg(8)->Arg(16)->Arg(24);

void BM_GmwMaxNParty(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  auto cfg = std::make_shared<const mpc::GmwConfig>(
      mpc::GmwConfig::public_output(circuit::make_max_circuit(n, 8)));
  std::uint64_t seed = 0;
  for (auto _ : state) {
    Rng rng(seed++);
    std::vector<std::vector<bool>> inputs;
    for (std::size_t p = 0; p < n; ++p) {
      inputs.push_back(circuit::u64_to_bits(rng.below(256), 8));
    }
    auto parties = mpc::make_gmw_parties(cfg, inputs, rng);
    sim::Engine e(std::move(parties), mpc::make_gmw_functionality(*cfg), nullptr,
                  rng.fork("engine"));
    benchmark::DoNotOptimize(e.run());
  }
  state.counters["and_gates/s"] = benchmark::Counter(
      static_cast<double>(state.iterations() * cfg->circuit.and_count()),
      benchmark::Counter::kIsRate);
}
BENCHMARK(BM_GmwMaxNParty)->Arg(2)->Arg(4)->Arg(6);

void BM_YaoMillionaires(benchmark::State& state) {
  const auto bits = static_cast<std::size_t>(state.range(0));
  auto circuit = std::make_shared<const circuit::Circuit>(
      circuit::make_millionaires_circuit(bits));
  std::uint64_t seed = 0;
  for (auto _ : state) {
    Rng rng(seed++);
    std::vector<std::vector<bool>> inputs = {
        circuit::u64_to_bits(rng.below(1u << bits), bits),
        circuit::u64_to_bits(rng.below(1u << bits), bits)};
    auto parties = mpc::make_yao_parties(circuit, inputs, rng);
    sim::Engine e(std::move(parties), mpc::make_ot_functionality(), nullptr,
                  rng.fork("engine"));
    benchmark::DoNotOptimize(e.run());
  }
  state.counters["gates/s"] = benchmark::Counter(
      static_cast<double>(state.iterations() * circuit->num_wires()),
      benchmark::Counter::kIsRate);
}
BENCHMARK(BM_YaoMillionaires)->Arg(8)->Arg(16)->Arg(24);

void BM_Opt2CompiledRun(benchmark::State& state) {
  auto base = std::make_shared<const circuit::Circuit>(circuit::make_concat_circuit(2, 8));
  const auto plan = fair::Opt2CompiledPlan::build(base);
  std::uint64_t seed = 0;
  for (auto _ : state) {
    Rng rng(seed++);
    std::vector<std::vector<bool>> inputs = {circuit::u64_to_bits(rng.below(256), 8),
                                             circuit::u64_to_bits(rng.below(256), 8)};
    auto parties = fair::make_opt2_compiled_parties(plan, inputs, rng);
    sim::EngineConfig cfg;
    cfg.max_rounds = 24;
    sim::Engine e(std::move(parties), mpc::make_ot_functionality(), nullptr,
                  rng.fork("engine"), cfg);
    benchmark::DoNotOptimize(e.run());
  }
}
BENCHMARK(BM_Opt2CompiledRun);

void BM_GkProtocolRun(benchmark::State& state) {
  const auto p = static_cast<std::size_t>(state.range(0));
  const fair::GkParams params = fair::make_gk_and_params(p);
  std::uint64_t seed = 0;
  for (auto _ : state) {
    Rng rng(seed++);
    auto parties = fair::make_gk_parties(params, Bytes{1}, Bytes{1}, rng);
    sim::EngineConfig cfg;
    cfg.max_rounds = static_cast<int>(2 * params.cap() + 10);
    sim::Engine e(std::move(parties), std::make_unique<fair::ShareGenFunc>(params), nullptr,
                  rng.fork("engine"), cfg);
    benchmark::DoNotOptimize(e.run());
  }
  state.counters["rounds"] = static_cast<double>(2 * params.cap());
}
BENCHMARK(BM_GkProtocolRun)->Arg(2)->Arg(4)->Arg(8);

void BM_UtilityEstimation(benchmark::State& state) {
  // Cost of one full Monte-Carlo utility point (100 runs).
  const rpd::PayoffVector gamma = rpd::PayoffVector::standard();
  std::uint64_t seed = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        rpd::estimate_utility(opt2_lock_abort(0), gamma,
                              rpd::EstimatorOptions{.runs = 100, .seed = seed++}));
  }
}
BENCHMARK(BM_UtilityEstimation)->Unit(benchmark::kMillisecond);

void BM_UtilityEstimationThreads(benchmark::State& state) {
  // The same 512-run utility point sharded over N worker threads.
  const rpd::PayoffVector gamma = rpd::PayoffVector::standard();
  rpd::EstimatorOptions opts;
  opts.runs = 512;
  opts.seed = 42;
  opts.threads = static_cast<std::size_t>(state.range(0));
  for (auto _ : state) {
    benchmark::DoNotOptimize(rpd::estimate_utility(opt2_lock_abort(0), gamma, opts));
  }
  state.counters["runs/s"] = benchmark::Counter(
      static_cast<double>(state.iterations() * opts.runs), benchmark::Counter::kIsRate);
}
BENCHMARK(BM_UtilityEstimationThreads)->Arg(1)->Arg(2)->Arg(4)->Arg(8)
    ->Unit(benchmark::kMillisecond);

// --scaling mode: estimator throughput (runs/sec) vs worker threads, with the
// bit-identical determinism guarantee checked along the way.
int run_scaling(int argc, char** argv) {
  bench::Reporter rep(argc, argv, 2000);
  const rpd::PayoffVector gamma = rpd::PayoffVector::standard();

  rep.title("P02-scaling: parallel Monte-Carlo estimator throughput",
            "estimate_utility(Opt2SFE/lock-abort) at 1/2/4/8 worker threads; same seed "
            "=> bit-identical estimates, runs/sec should scale with the hardware.");
  rep.gamma(gamma);
  rep.row_header();

  const std::vector<std::size_t> thread_counts = {1, 2, 4, 8};
  std::vector<rpd::UtilityEstimate> ests;
  for (std::size_t t : thread_counts) {
    auto opts = rep.opts(42);
    opts.threads = t;
    auto est = rpd::estimate_utility(opt2_lock_abort(0), gamma, opts);
    char buf[48];
    std::snprintf(buf, sizeof(buf), "%.0f runs/sec", est.runs_per_sec());
    rep.row("threads=" + std::to_string(t), est, buf);
    ests.push_back(std::move(est));
  }

  bool identical = true;
  for (const auto& est : ests) {
    identical = identical && est.utility == ests[0].utility &&
                est.std_error == ests[0].std_error &&
                est.event_freq == ests[0].event_freq &&
                est.run_events == ests[0].run_events;
  }
  rep.check(identical, "estimates bit-identical across all thread counts");
  const double speedup = ests.back().runs_per_sec() / ests.front().runs_per_sec();
  char buf[96];
  std::snprintf(buf, sizeof(buf),
                "8-thread throughput >= 3x single-thread (measured %.2fx; needs >= 4 "
                "hardware threads)",
                speedup);
  rep.check(speedup >= 3.0, buf);
  return rep.finish();
}

// --profile mode: per-protocol hot-path profile. Each configuration is run
// `iters` times with deterministic seeds; we report wall-clock throughput and
// the engine's exact RoutingStats so regressions in the zero-copy delivery
// path show up as bytes, not just microseconds.
struct ProfileCase {
  std::string name;
  // Returns a ready-to-run engine for iteration `seed`.
  std::function<sim::Engine(std::uint64_t seed)> make;
};

struct ProfileRow {
  std::string name;
  std::size_t runs = 0;
  double wall_seconds = 0;
  double rounds = 0;            // mean rounds per run
  double messages = 0;          // mean messages per run
  double broadcasts = 0;        // mean broadcast messages per run
  double payload_bytes = 0;     // mean payload bytes per run (stored once)
  double bytes_copied = 0;      // mean bytes duplicated per run (0: no transcript)
  double bytes_copy_avoided = 0;  // mean bytes a copy-per-recipient engine pays

  [[nodiscard]] double runs_per_sec() const {
    return wall_seconds > 0 ? static_cast<double>(runs) / wall_seconds : 0;
  }
  [[nodiscard]] double messages_per_round() const {
    return rounds > 0 ? messages / rounds : 0;
  }
};

std::vector<ProfileCase> profile_cases() {
  std::vector<ProfileCase> cases;

  auto mill = std::make_shared<const mpc::GmwConfig>(
      mpc::GmwConfig::public_output(circuit::make_millionaires_circuit(16)));
  cases.push_back({"gmw_millionaires_16", [mill](std::uint64_t seed) {
    Rng rng(seed);
    std::vector<std::vector<bool>> inputs = {
        circuit::u64_to_bits(rng.below(1u << 16), 16),
        circuit::u64_to_bits(rng.below(1u << 16), 16)};
    auto parties = mpc::make_gmw_parties(mill, inputs, rng);
    return sim::Engine(std::move(parties), mpc::make_gmw_functionality(*mill), nullptr,
                       rng.fork("engine"));
  }});

  auto max4 = std::make_shared<const mpc::GmwConfig>(
      mpc::GmwConfig::public_output(circuit::make_max_circuit(4, 8)));
  cases.push_back({"gmw_max_4party_8bit", [max4](std::uint64_t seed) {
    Rng rng(seed);
    std::vector<std::vector<bool>> inputs;
    for (std::size_t p = 0; p < 4; ++p) {
      inputs.push_back(circuit::u64_to_bits(rng.below(256), 8));
    }
    auto parties = mpc::make_gmw_parties(max4, inputs, rng);
    return sim::Engine(std::move(parties), mpc::make_gmw_functionality(*max4), nullptr,
                       rng.fork("engine"));
  }});

  auto base = std::make_shared<const circuit::Circuit>(circuit::make_concat_circuit(2, 8));
  auto plan = fair::Opt2CompiledPlan::build(base);
  cases.push_back({"opt2_compiled_concat16", [plan](std::uint64_t seed) {
    Rng rng(seed);
    std::vector<std::vector<bool>> inputs = {circuit::u64_to_bits(rng.below(256), 8),
                                             circuit::u64_to_bits(rng.below(256), 8)};
    auto parties = fair::make_opt2_compiled_parties(plan, inputs, rng);
    sim::ExecutionOptions opts;
    opts.max_rounds = 24;
    return sim::Engine(std::move(parties), mpc::make_ot_functionality(), nullptr,
                       rng.fork("engine"), opts);
  }});

  return cases;
}

int run_profile(int argc, char** argv) {
  // Same shared CLI as fairbench/run_scaling ([iters] / --json); the
  // --profile selector itself lands in args.passthrough.
  const bench::Args args = bench::parse_args(argc, argv);
  const std::size_t iters = args.runs_or(2000);
  const std::string json_path = args.json_path;

  std::printf("\n=== P02-profile: zero-copy hot path ===\n");
  std::printf("%zu deterministic engine runs per configuration; RoutingStats are exact\n"
              "per-delivery counters, not samples. bytes_copied must stay 0 (transcripts\n"
              "off); copy_avoided is what a copy-per-recipient engine would duplicate.\n\n",
              iters);
  std::printf("%-24s %10s %7s %9s %11s %9s %12s\n", "configuration", "runs/sec",
              "rounds", "msgs/rnd", "payload/run", "copied", "avoided/run");
  std::printf("%-24s %10s %7s %9s %11s %9s %12s\n", "-------------", "--------",
              "------", "--------", "-----------", "------", "-----------");

  std::vector<ProfileRow> rows;
  for (const ProfileCase& c : profile_cases()) {
    ProfileRow row;
    row.name = c.name;
    row.runs = iters;
    const auto t0 = std::chrono::steady_clock::now();
    for (std::size_t i = 0; i < iters; ++i) {
      sim::Engine e = c.make(i);
      const sim::ExecutionResult r = e.run();
      row.rounds += r.rounds;
      row.messages += static_cast<double>(r.stats.messages);
      row.broadcasts += static_cast<double>(r.stats.broadcast_messages);
      row.payload_bytes += static_cast<double>(r.stats.payload_bytes);
      row.bytes_copied += static_cast<double>(r.stats.bytes_copied);
      row.bytes_copy_avoided += static_cast<double>(r.stats.bytes_copy_avoided);
    }
    row.wall_seconds =
        std::chrono::duration<double>(std::chrono::steady_clock::now() - t0).count();
    const double n = static_cast<double>(iters);
    row.rounds /= n;
    row.messages /= n;
    row.broadcasts /= n;
    row.payload_bytes /= n;
    row.bytes_copied /= n;
    row.bytes_copy_avoided /= n;
    std::printf("%-24s %10.0f %7.1f %9.1f %11.0f %9.0f %12.0f\n", row.name.c_str(),
                row.runs_per_sec(), row.rounds, row.messages_per_round(),
                row.payload_bytes, row.bytes_copied, row.bytes_copy_avoided);
    rows.push_back(std::move(row));
  }

  bool zero_copies = true;
  for (const ProfileRow& r : rows) zero_copies = zero_copies && r.bytes_copied == 0;
  std::printf("\n  [%s] bytes_copied == 0 for every configuration (transcripts off)\n",
              zero_copies ? "PASS" : "DEVIATION");

  if (!json_path.empty()) {
    std::FILE* f = std::fopen(json_path.c_str(), "w");
    if (!f) {
      std::fprintf(stderr, "bench: cannot open %s for writing\n", json_path.c_str());
      return 1;
    }
    std::fprintf(f, "{\n  \"experiment\": \"P02-profile\",\n"
                    "  \"claim\": \"zero-copy hot path: mailbox routing, lazy transcripts, "
                    "cached circuit plans\",\n  \"iters\": %zu,\n  \"rows\": [",
                 iters);
    for (std::size_t i = 0; i < rows.size(); ++i) {
      const ProfileRow& r = rows[i];
      std::fprintf(f,
                   "%s\n    {\"name\": \"%s\", \"runs\": %zu, \"wall_seconds\": %.6g, "
                   "\"runs_per_sec\": %.6g, \"rounds\": %.6g, \"messages\": %.6g, "
                   "\"broadcast_messages\": %.6g, \"messages_per_round\": %.6g, "
                   "\"payload_bytes\": %.6g, \"bytes_copied\": %.6g, "
                   "\"bytes_copy_avoided\": %.6g}",
                   i == 0 ? "" : ",", r.name.c_str(), r.runs, r.wall_seconds,
                   r.runs_per_sec(), r.rounds, r.messages, r.broadcasts,
                   r.messages_per_round(), r.payload_bytes, r.bytes_copied,
                   r.bytes_copy_avoided);
    }
    std::fprintf(f, "\n  ],\n  \"checks\": [\n    {\"ok\": %s, \"what\": \"bytes_copied "
                    "== 0 with transcripts off\"}\n  ]\n}\n",
                 zero_copies ? "true" : "false");
    std::fclose(f);
    std::printf("json report written to %s\n", json_path.c_str());
  }
  return zero_copies ? 0 : 1;
}

// --preproc mode: offline/online phase split for the GMW profile cases.
// Reports, per configuration:
//   [inline]  the classic OT-hybrid execution (BENCH_hotpath methodology),
//   [online]  the online phase only — every run spends its slice of one
//             pre-dealt CorrelatedRandomness batch (one broadcast per AND
//             layer, zero kFunc traffic),
//   offline_ideal cost for the full batch (iters × triples/run), and an
//   offline_ot probe (the real OT rounds run up front, modest batch) so both
//   providers' costs are on record.
struct PreprocPerfCase {
  std::string name;
  std::shared_ptr<const mpc::GmwConfig> inline_cfg;
  // Builds parties + inputs for iteration `seed`; shared by both phases.
  std::function<std::vector<std::unique_ptr<sim::IParty>>(
      std::shared_ptr<const mpc::GmwConfig>, Rng&)> make_parties;
};

int run_preproc(int argc, char** argv) {
  const bench::Args args = bench::parse_args(argc, argv);
  const std::size_t iters = args.runs_or(2000);
  const std::string json_path = args.json_path;

  std::printf("\n=== P02-preproc: offline/online phase split (DESIGN.md §10) ===\n");
  std::printf("%zu deterministic engine runs per configuration and phase; the online\n"
              "phase consumes run-indexed slices of one ideal-dealer batch.\n\n",
              iters);

  std::vector<PreprocPerfCase> cases;
  {
    auto mill = std::make_shared<const mpc::GmwConfig>(
        mpc::GmwConfig::public_output(circuit::make_millionaires_circuit(16)));
    cases.push_back({"gmw_millionaires_16", mill,
                     [](std::shared_ptr<const mpc::GmwConfig> cfg, Rng& rng) {
                       std::vector<std::vector<bool>> inputs = {
                           circuit::u64_to_bits(rng.below(1u << 16), 16),
                           circuit::u64_to_bits(rng.below(1u << 16), 16)};
                       return mpc::make_gmw_parties(std::move(cfg), inputs, rng);
                     }});
    auto max4 = std::make_shared<const mpc::GmwConfig>(
        mpc::GmwConfig::public_output(circuit::make_max_circuit(4, 8)));
    cases.push_back({"gmw_max_4party_8bit", max4,
                     [](std::shared_ptr<const mpc::GmwConfig> cfg, Rng& rng) {
                       std::vector<std::vector<bool>> inputs;
                       for (std::size_t p = 0; p < 4; ++p) {
                         inputs.push_back(circuit::u64_to_bits(rng.below(256), 8));
                       }
                       return mpc::make_gmw_parties(std::move(cfg), inputs, rng);
                     }});
  }

  struct PhaseRow {
    std::string name;
    std::size_t runs;
    double wall_seconds;
    [[nodiscard]] double runs_per_sec() const {
      return wall_seconds > 0 ? static_cast<double>(runs) / wall_seconds : 0;
    }
  };
  struct OfflineRow {
    std::string name;
    std::size_t triples;
    double seconds;
  };
  std::vector<PhaseRow> rows;
  std::vector<OfflineRow> offline;
  bool speedup_ok = true;

  std::printf("%-36s %12s\n", "configuration", "runs/sec");
  std::printf("%-36s %12s\n", "-------------", "--------");
  for (const PreprocPerfCase& c : cases) {
    auto timed_phase = [&](const std::string& label,
                           const std::shared_ptr<const mpc::GmwConfig>& cfg) {
      const auto t0 = std::chrono::steady_clock::now();
      for (std::size_t i = 0; i < iters; ++i) {
        Rng rng(i);
        auto parties = c.make_parties(cfg, rng);
        if (mpc::preproc::is_offline(cfg->preproc_mode)) {
          mpc::make_gmw_run_binder(parties)(i);
        }
        sim::Engine e(std::move(parties), mpc::make_gmw_functionality(*cfg), nullptr,
                      rng.fork("engine"));
        e.run();
      }
      PhaseRow row{c.name + " [" + label + "]", iters,
                   std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
                       .count()};
      std::printf("%-36s %12.0f\n", row.name.c_str(), row.runs_per_sec());
      rows.push_back(row);
      return row;
    };

    const PhaseRow inline_row = timed_phase("inline", c.inline_cfg);

    // Offline phase: one ideal-dealer batch covering every run's slice.
    const std::size_t parties = c.inline_cfg->circuit.num_parties();
    const std::size_t triples = iters * c.inline_cfg->triples_per_run();
    mpc::preproc::PreprocRequest req;
    req.parties = parties;
    req.triples = triples;
    Rng dealer_rng(1);
    auto t0 = std::chrono::steady_clock::now();
    auto batch = mpc::preproc::generate_batch(mpc::preproc::PreprocMode::kOfflineIdeal,
                                              req, dealer_rng);
    double secs =
        std::chrono::duration<double>(std::chrono::steady_clock::now() - t0).count();
    offline.push_back({c.name + " offline_ideal", triples, secs});
    std::printf("%-36s %12s   (%zu triples, %.4fs)\n",
                (c.name + " offline_ideal").c_str(), "-", triples, secs);

    auto online_cfg = mpc::GmwConfig::for_circuit(c.inline_cfg->circuit)
                          .with_plan(c.inline_cfg->plan)
                          .with_preproc(mpc::preproc::PreprocMode::kOfflineIdeal, batch)
                          .build_shared();
    const PhaseRow online_row = timed_phase("online", online_cfg);

    // The real-OT provider on a modest probe batch: its cost per triple is
    // what an implementation would pay up front instead of per layer.
    mpc::preproc::PreprocRequest probe;
    probe.parties = parties;
    probe.triples = std::min<std::size_t>(triples, 4096);
    Rng probe_rng(2);
    t0 = std::chrono::steady_clock::now();
    (void)mpc::preproc::generate_batch(mpc::preproc::PreprocMode::kOfflineOt, probe,
                                       probe_rng);
    secs = std::chrono::duration<double>(std::chrono::steady_clock::now() - t0).count();
    offline.push_back({c.name + " offline_ot_probe", probe.triples, secs});
    std::printf("%-36s %12s   (%zu triples, %.4fs)\n",
                (c.name + " offline_ot_probe").c_str(), "-", probe.triples, secs);

    const double speedup =
        inline_row.runs_per_sec() > 0
            ? online_row.runs_per_sec() / inline_row.runs_per_sec()
            : 0;
    std::printf("%-36s %11.2fx\n\n", (c.name + " online/inline").c_str(), speedup);
    if (c.name == "gmw_max_4party_8bit" && speedup < 3.0) speedup_ok = false;
  }

  std::printf("  [%s] gmw_max_4party_8bit online phase >= 3x inline throughput\n",
              speedup_ok ? "PASS" : "DEVIATION");

  if (!json_path.empty()) {
    std::FILE* f = std::fopen(json_path.c_str(), "w");
    if (!f) {
      std::fprintf(stderr, "bench: cannot open %s for writing\n", json_path.c_str());
      return 1;
    }
    std::fprintf(f, "{\n  \"experiment\": \"P02-preproc\",\n"
                    "  \"claim\": \"offline/online split: the online phase spends "
                    "pre-dealt Beaver triples, one broadcast per AND layer\",\n"
                    "  \"iters\": %zu,\n  \"rows\": [",
                 iters);
    for (std::size_t i = 0; i < rows.size(); ++i) {
      std::fprintf(f,
                   "%s\n    {\"name\": \"%s\", \"runs\": %zu, \"wall_seconds\": %.6g, "
                   "\"runs_per_sec\": %.6g}",
                   i == 0 ? "" : ",", rows[i].name.c_str(), rows[i].runs,
                   rows[i].wall_seconds, rows[i].runs_per_sec());
    }
    std::fprintf(f, "\n  ],\n  \"offline\": [");
    for (std::size_t i = 0; i < offline.size(); ++i) {
      std::fprintf(f,
                   "%s\n    {\"name\": \"%s\", \"triples\": %zu, \"seconds\": %.6g, "
                   "\"triples_per_sec\": %.6g}",
                   i == 0 ? "" : ",", offline[i].name.c_str(), offline[i].triples,
                   offline[i].seconds,
                   offline[i].seconds > 0
                       ? static_cast<double>(offline[i].triples) / offline[i].seconds
                       : 0.0);
    }
    std::fprintf(f, "\n  ],\n  \"checks\": [\n    {\"ok\": %s, \"what\": "
                    "\"gmw_max_4party_8bit online >= 3x inline runs/sec\"}\n  ]\n}\n",
                 speedup_ok ? "true" : "false");
    std::fclose(f);
    std::printf("json report written to %s\n", json_path.c_str());
  }
  return speedup_ok ? 0 : 1;
}

// --bitslice mode: scalar engine vs bit-sliced transposed execution
// (DESIGN.md §11) on honest GMW runs. Every row is a full Monte-Carlo
// estimation through rpd::estimate_utility, so the measured speedup is the
// end-to-end one an experiment sees, and bit-identity is demanded on the
// estimates themselves (utility, std_error, event_freq, per-run events).
int run_bitslice(int argc, char** argv) {
  const bench::Args args = bench::parse_args(argc, argv);
  const std::size_t iters = args.runs_or(8192);
  const std::string json_path = args.json_path;
  const rpd::PayoffVector gamma = rpd::PayoffVector::standard();

  std::printf("\n=== P02-bitslice: 64 Monte-Carlo runs per machine word ===\n");
  std::printf("%zu honest GMW runs per configuration; [sliced] packs 64 runs into the\n"
              "lanes of each wire word (one circuit walk per batch), [scalar] drives the\n"
              "engine one run at a time. Estimates must agree bit-for-bit.\n\n",
              iters);
  std::printf("%-36s %12s %10s\n", "configuration", "runs/sec", "runs");
  std::printf("%-36s %12s %10s\n", "-------------", "--------", "----");

  struct SliceRow {
    std::string name;
    std::size_t runs;
    double wall_seconds;
    [[nodiscard]] double runs_per_sec() const {
      return wall_seconds > 0 ? static_cast<double>(runs) / wall_seconds : 0;
    }
  };
  struct SliceCheck {
    bool ok;
    std::string what;
  };
  std::vector<SliceRow> rows;
  std::vector<SliceCheck> checks;

  auto measure = [&](const std::string& name, const rpd::EstimationTarget& target,
                     std::size_t lanes, const rpd::EstimatorOptions& base) {
    rpd::EstimatorOptions opts = base;
    opts.lanes = lanes;
    const auto est = rpd::estimate_utility(target, gamma, opts);
    rows.push_back({name, est.runs, est.wall_seconds});
    std::printf("%-36s %12.0f %10zu\n", name.c_str(), est.runs_per_sec(), est.runs);
    return est;
  };
  auto record = [&](bool ok, const std::string& what) {
    std::printf("  [%s] %s\n", ok ? "PASS" : "DEVIATION", what.c_str());
    checks.push_back({ok, what});
  };
  auto identical = [](const rpd::UtilityEstimate& a, const rpd::UtilityEstimate& b) {
    return a.utility == b.utility && a.std_error == b.std_error &&
           a.event_freq == b.event_freq && a.run_events == b.run_events;
  };

  rpd::EstimatorOptions base;
  base.runs = iters;
  base.seed = 42;
  base.threads = args.threads;

  double speedup = 0.0;
  {
    auto mill = std::make_shared<const mpc::GmwConfig>(
        mpc::GmwConfig::public_output(circuit::make_millionaires_circuit(16)));
    const GmwHonestPair pair = gmw_honest_pair(mill);
    const rpd::EstimationTarget target{pair.factory, pair.sliced, pair.parties};
    const auto scalar = measure("gmw_millionaires_16 [scalar]", target, 1, base);
    const auto sliced = measure("gmw_millionaires_16 [sliced]", target, 64, base);
    record(identical(scalar, sliced),
           "gmw_millionaires_16: sliced estimate bit-identical to scalar");
    speedup = rows[rows.size() - 2].runs_per_sec() > 0
                  ? rows.back().runs_per_sec() / rows[rows.size() - 2].runs_per_sec()
                  : 0.0;
    char buf[96];
    std::snprintf(buf, sizeof(buf),
                  "gmw_millionaires_16: sliced >= 10x scalar runs/sec (measured %.1fx)",
                  speedup);
    record(speedup >= 10.0, buf);

    // Zero-variance honest runs: the stopping rule fires at the earliest
    // legal point (two lane batches), a deterministic trajectory worth
    // keeping on record.
    rpd::EstimatorOptions stop_opts = base;
    stop_opts.target_ci = 0.05;
    const auto stop = measure("gmw_millionaires_16 [sliced stop]", target, 64, stop_opts);
    record(iters < 2 * 64 || (stop.stopped_early && stop.runs == 2 * 64),
           "sequential stop after two lane batches on zero-variance runs");
  }

  {
    // Beaver path: one ideal-dealer batch sized for every run's slice; the
    // sliced AND layers read 64 triples per word-op from the same offsets
    // the scalar tapes seek to.
    auto mill = mpc::GmwConfig::public_output(circuit::make_millionaires_circuit(16));
    mpc::preproc::PreprocRequest req;
    req.parties = 2;
    req.triples = iters * mill.triples_per_run();
    Rng dealer_rng(1);
    auto batch = mpc::preproc::generate_batch(mpc::preproc::PreprocMode::kOfflineIdeal,
                                              req, dealer_rng);
    auto online = mpc::GmwConfig::for_circuit(mill.circuit)
                      .with_plan(mill.plan)
                      .with_preproc(mpc::preproc::PreprocMode::kOfflineIdeal, batch)
                      .build_shared();
    const GmwHonestPair pair = gmw_honest_pair(online);
    const rpd::EstimationTarget target{pair.factory, pair.sliced, pair.parties};
    const auto scalar = measure("gmw_millionaires_16_beaver [scalar]", target, 1, base);
    const auto sliced = measure("gmw_millionaires_16_beaver [sliced]", target, 64, base);
    record(identical(scalar, sliced),
           "beaver online phase: sliced estimate bit-identical to scalar");
  }

  {
    auto max4 = std::make_shared<const mpc::GmwConfig>(
        mpc::GmwConfig::public_output(circuit::make_max_circuit(4, 8)));
    const GmwHonestPair pair = gmw_honest_pair(max4);
    const rpd::EstimationTarget target{pair.factory, pair.sliced, pair.parties};
    rpd::EstimatorOptions small = base;
    small.runs = std::max<std::size_t>(256, iters / 8);
    const auto scalar = measure("gmw_max_4party_8bit [scalar]", target, 1, small);
    const auto sliced = measure("gmw_max_4party_8bit [sliced]", target, 64, small);
    record(identical(scalar, sliced),
           "gmw_max_4party_8bit: sliced estimate bit-identical to scalar");
  }

  bool all_ok = true;
  for (const SliceCheck& c : checks) all_ok = all_ok && c.ok;

  if (!json_path.empty()) {
    std::FILE* f = std::fopen(json_path.c_str(), "w");
    if (!f) {
      std::fprintf(stderr, "bench: cannot open %s for writing\n", json_path.c_str());
      return 1;
    }
    std::fprintf(f, "{\n  \"experiment\": \"P02-bitslice\",\n"
                    "  \"claim\": \"bit-sliced transposed execution: 64 runs per machine "
                    "word, bit-identical estimates\",\n"
                    "  \"iters\": %zu,\n  \"speedup_millionaires_16\": %.3g,\n  \"rows\": [",
                 iters, speedup);
    for (std::size_t i = 0; i < rows.size(); ++i) {
      std::fprintf(f,
                   "%s\n    {\"name\": \"%s\", \"runs\": %zu, \"wall_seconds\": %.6g, "
                   "\"runs_per_sec\": %.6g}",
                   i == 0 ? "" : ",", rows[i].name.c_str(), rows[i].runs,
                   rows[i].wall_seconds, rows[i].runs_per_sec());
    }
    std::fprintf(f, "\n  ],\n  \"checks\": [");
    for (std::size_t i = 0; i < checks.size(); ++i) {
      std::fprintf(f, "%s\n    {\"ok\": %s, \"what\": \"%s\"}", i == 0 ? "" : ",",
                   checks[i].ok ? "true" : "false", checks[i].what.c_str());
    }
    std::fprintf(f, "\n  ]\n}\n");
    std::fclose(f);
    std::printf("json report written to %s\n", json_path.c_str());
  }
  return all_ok ? 0 : 1;
}

// --zoo mode: throughput of the E21/E22 protocol families through the full
// estimator — the round-sampling 1/p exchange at small and large p, the
// escrowed penalty exchange under both deposit-game strategies, and the
// CHOR-wrapped dummy protocol. Every row is an rpd::estimate_utility /
// rpd::assess_protocol call, so runs/sec is the end-to-end figure the E21 and
// E22 sweeps pay per point, and the structural claims of those experiments
// ride along as checks.
int run_zoo(int argc, char** argv) {
  const bench::Args args = bench::parse_args(argc, argv);
  const std::size_t iters = args.runs_or(4096);
  const std::string json_path = args.json_path;

  std::printf("\n=== P02-zoo: partial-1/p + penalty exchange throughput ===\n");
  std::printf("%zu Monte-Carlo runs per configuration.\n\n", iters);
  std::printf("%-36s %12s %10s\n", "configuration", "runs/sec", "runs");
  std::printf("%-36s %12s %10s\n", "-------------", "--------", "----");

  struct ZooRow {
    std::string name;
    std::size_t runs;
    double wall_seconds;
    [[nodiscard]] double runs_per_sec() const {
      return wall_seconds > 0 ? static_cast<double>(runs) / wall_seconds : 0;
    }
  };
  struct ZooCheck {
    bool ok;
    std::string what;
  };
  std::vector<ZooRow> rows;
  std::vector<ZooCheck> checks;

  rpd::EstimatorOptions base;
  base.runs = iters;
  base.seed = 42;
  base.threads = args.threads;

  auto measure = [&](const std::string& name, const rpd::SetupFactory& factory,
                     const rpd::PayoffModel& model) {
    const rpd::EstimationTarget target{factory, nullptr, 0};
    const auto est = rpd::estimate_utility(target, model, base);
    rows.push_back({name, est.runs, est.wall_seconds});
    std::printf("%-36s %12.0f %10zu\n", name.c_str(), est.runs_per_sec(), est.runs);
    return est;
  };
  auto record = [&](bool ok, const std::string& what) {
    std::printf("  [%s] %s\n", ok ? "PASS" : "DEVIATION", what.c_str());
    checks.push_back({ok, what});
  };

  const rpd::VectorModel pf(rpd::payoff::partial_fairness());
  for (const std::size_t p : {std::size_t{2}, std::size_t{8}}) {
    const fair::Partial1pParams params = fair::make_partial_1p_and_params(p);
    const auto est =
        measure("partial_1p_p" + std::to_string(p) + " [abort@1]",
                partial_1p_attack(params, Partial1pAttack::kAbortAt1), pf);
    const double bound = 1.0 / static_cast<double>(p);
    record(std::abs(est.utility - bound) <= est.margin() + 0.02,
           "partial_1p p=" + std::to_string(p) + ": abort@1 saturates g10/p");
  }

  const rpd::VectorModel standard(rpd::payoff::standard());
  rpd::CollateralTerms unit;
  unit.deposit = 1.0;
  const rpd::CollateralModel escrowed(rpd::payoff::standard(), unit);
  const auto withhold_free =
      measure("penalty_d0 [withhold-claim]",
              penalty_attack(adversary::PenaltyMode::kWithholdClaim), standard);
  const auto withhold_escrowed =
      measure("penalty_d1 [withhold-claim]",
              penalty_attack(adversary::PenaltyMode::kWithholdClaim), escrowed);
  const auto honest_escrowed = measure(
      "penalty_d1 [honest]", penalty_attack(adversary::PenaltyMode::kHonest), escrowed);
  record(withhold_free.utility > honest_escrowed.utility &&
             withhold_escrowed.utility < honest_escrowed.utility,
         "penalty: deposit d=1 flips the rational strategy to honest");

  measure("fullsec_dummy2 [lock-abort]", full_security_dummy2(0), standard);

  // The E22 zoo ordering, at bench scale: the escrowed exchange (full
  // deposit) must be at least as fair as the bare withhold game.
  const auto bare = rpd::assess_protocol(penalty_attack_family(), standard,
                                         base.with_seed(base.seed + 100));
  const auto priced = rpd::assess_protocol(penalty_attack_family(), escrowed,
                                           base.with_seed(base.seed + 200));
  record(rpd::at_least_as_fair(priced, bare),
         "at_least_as_fair: penalty(d=1) >= penalty(d=0)");

  bool all_ok = true;
  for (const ZooCheck& c : checks) all_ok = all_ok && c.ok;

  if (!json_path.empty()) {
    std::FILE* f = std::fopen(json_path.c_str(), "w");
    if (!f) {
      std::fprintf(stderr, "bench: cannot open %s for writing\n", json_path.c_str());
      return 1;
    }
    std::fprintf(f, "{\n  \"experiment\": \"P02-zoo\",\n"
                    "  \"claim\": \"protocol-zoo throughput: round-sampling 1/p and "
                    "escrowed penalty exchange\",\n"
                    "  \"iters\": %zu,\n  \"rows\": [",
                 iters);
    for (std::size_t i = 0; i < rows.size(); ++i) {
      std::fprintf(f,
                   "%s\n    {\"name\": \"%s\", \"runs\": %zu, \"wall_seconds\": %.6g, "
                   "\"runs_per_sec\": %.6g}",
                   i == 0 ? "" : ",", rows[i].name.c_str(), rows[i].runs,
                   rows[i].wall_seconds, rows[i].runs_per_sec());
    }
    std::fprintf(f, "\n  ],\n  \"checks\": [");
    for (std::size_t i = 0; i < checks.size(); ++i) {
      std::fprintf(f, "%s\n    {\"ok\": %s, \"what\": \"%s\"}", i == 0 ? "" : ",",
                   checks[i].ok ? "true" : "false", checks[i].what.c_str());
    }
    std::fprintf(f, "\n  ]\n}\n");
    std::fclose(f);
    std::printf("json report written to %s\n", json_path.c_str());
  }
  return all_ok ? 0 : 1;
}

}  // namespace
}  // namespace fairsfe

int main(int argc, char** argv) {
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--scaling") == 0) {
      return fairsfe::run_scaling(argc, argv);
    }
    if (std::strcmp(argv[i], "--profile") == 0) {
      return fairsfe::run_profile(argc, argv);
    }
    if (std::strcmp(argv[i], "--preproc") == 0) {
      return fairsfe::run_preproc(argc, argv);
    }
    if (std::strcmp(argv[i], "--bitslice") == 0) {
      return fairsfe::run_bitslice(argc, argv);
    }
    if (std::strcmp(argv[i], "--zoo") == 0) {
      return fairsfe::run_zoo(argc, argv);
    }
  }
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
