file(REMOVE_RECURSE
  "CMakeFiles/exp01_contract_fairness.dir/exp01_contract_fairness.cpp.o"
  "CMakeFiles/exp01_contract_fairness.dir/exp01_contract_fairness.cpp.o.d"
  "exp01_contract_fairness"
  "exp01_contract_fairness.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/exp01_contract_fairness.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
