# Empty compiler generated dependencies file for exp01_contract_fairness.
# This may be replaced when dependencies are built.
