file(REMOVE_RECURSE
  "CMakeFiles/exp02_opt2sfe_upper.dir/exp02_opt2sfe_upper.cpp.o"
  "CMakeFiles/exp02_opt2sfe_upper.dir/exp02_opt2sfe_upper.cpp.o.d"
  "exp02_opt2sfe_upper"
  "exp02_opt2sfe_upper.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/exp02_opt2sfe_upper.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
