# Empty compiler generated dependencies file for exp02_opt2sfe_upper.
# This may be replaced when dependencies are built.
