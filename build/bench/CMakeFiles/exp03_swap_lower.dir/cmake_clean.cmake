file(REMOVE_RECURSE
  "CMakeFiles/exp03_swap_lower.dir/exp03_swap_lower.cpp.o"
  "CMakeFiles/exp03_swap_lower.dir/exp03_swap_lower.cpp.o.d"
  "exp03_swap_lower"
  "exp03_swap_lower.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/exp03_swap_lower.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
