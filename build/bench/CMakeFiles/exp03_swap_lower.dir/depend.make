# Empty dependencies file for exp03_swap_lower.
# This may be replaced when dependencies are built.
