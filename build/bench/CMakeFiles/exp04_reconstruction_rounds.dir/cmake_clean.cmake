file(REMOVE_RECURSE
  "CMakeFiles/exp04_reconstruction_rounds.dir/exp04_reconstruction_rounds.cpp.o"
  "CMakeFiles/exp04_reconstruction_rounds.dir/exp04_reconstruction_rounds.cpp.o.d"
  "exp04_reconstruction_rounds"
  "exp04_reconstruction_rounds.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/exp04_reconstruction_rounds.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
