# Empty compiler generated dependencies file for exp04_reconstruction_rounds.
# This may be replaced when dependencies are built.
