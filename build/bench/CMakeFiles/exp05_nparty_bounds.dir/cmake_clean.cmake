file(REMOVE_RECURSE
  "CMakeFiles/exp05_nparty_bounds.dir/exp05_nparty_bounds.cpp.o"
  "CMakeFiles/exp05_nparty_bounds.dir/exp05_nparty_bounds.cpp.o.d"
  "exp05_nparty_bounds"
  "exp05_nparty_bounds.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/exp05_nparty_bounds.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
