# Empty dependencies file for exp05_nparty_bounds.
# This may be replaced when dependencies are built.
