file(REMOVE_RECURSE
  "CMakeFiles/exp06_utility_balance.dir/exp06_utility_balance.cpp.o"
  "CMakeFiles/exp06_utility_balance.dir/exp06_utility_balance.cpp.o.d"
  "exp06_utility_balance"
  "exp06_utility_balance.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/exp06_utility_balance.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
