# Empty dependencies file for exp06_utility_balance.
# This may be replaced when dependencies are built.
