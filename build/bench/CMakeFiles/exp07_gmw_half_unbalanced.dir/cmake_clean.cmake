file(REMOVE_RECURSE
  "CMakeFiles/exp07_gmw_half_unbalanced.dir/exp07_gmw_half_unbalanced.cpp.o"
  "CMakeFiles/exp07_gmw_half_unbalanced.dir/exp07_gmw_half_unbalanced.cpp.o.d"
  "exp07_gmw_half_unbalanced"
  "exp07_gmw_half_unbalanced.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/exp07_gmw_half_unbalanced.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
