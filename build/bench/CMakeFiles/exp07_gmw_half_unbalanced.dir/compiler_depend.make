# Empty compiler generated dependencies file for exp07_gmw_half_unbalanced.
# This may be replaced when dependencies are built.
