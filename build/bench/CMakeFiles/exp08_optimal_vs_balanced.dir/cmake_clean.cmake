file(REMOVE_RECURSE
  "CMakeFiles/exp08_optimal_vs_balanced.dir/exp08_optimal_vs_balanced.cpp.o"
  "CMakeFiles/exp08_optimal_vs_balanced.dir/exp08_optimal_vs_balanced.cpp.o.d"
  "exp08_optimal_vs_balanced"
  "exp08_optimal_vs_balanced.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/exp08_optimal_vs_balanced.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
