# Empty compiler generated dependencies file for exp08_optimal_vs_balanced.
# This may be replaced when dependencies are built.
