file(REMOVE_RECURSE
  "CMakeFiles/exp09_corruption_cost.dir/exp09_corruption_cost.cpp.o"
  "CMakeFiles/exp09_corruption_cost.dir/exp09_corruption_cost.cpp.o.d"
  "exp09_corruption_cost"
  "exp09_corruption_cost.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/exp09_corruption_cost.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
