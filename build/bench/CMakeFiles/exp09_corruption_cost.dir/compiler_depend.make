# Empty compiler generated dependencies file for exp09_corruption_cost.
# This may be replaced when dependencies are built.
