file(REMOVE_RECURSE
  "CMakeFiles/exp10_gk_partial_fairness.dir/exp10_gk_partial_fairness.cpp.o"
  "CMakeFiles/exp10_gk_partial_fairness.dir/exp10_gk_partial_fairness.cpp.o.d"
  "exp10_gk_partial_fairness"
  "exp10_gk_partial_fairness.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/exp10_gk_partial_fairness.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
