# Empty dependencies file for exp10_gk_partial_fairness.
# This may be replaced when dependencies are built.
