file(REMOVE_RECURSE
  "CMakeFiles/exp11_leaky_and_separation.dir/exp11_leaky_and_separation.cpp.o"
  "CMakeFiles/exp11_leaky_and_separation.dir/exp11_leaky_and_separation.cpp.o.d"
  "exp11_leaky_and_separation"
  "exp11_leaky_and_separation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/exp11_leaky_and_separation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
