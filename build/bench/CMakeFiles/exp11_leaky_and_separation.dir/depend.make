# Empty dependencies file for exp11_leaky_and_separation.
# This may be replaced when dependencies are built.
