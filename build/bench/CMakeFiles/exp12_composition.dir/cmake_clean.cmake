file(REMOVE_RECURSE
  "CMakeFiles/exp12_composition.dir/exp12_composition.cpp.o"
  "CMakeFiles/exp12_composition.dir/exp12_composition.cpp.o.d"
  "exp12_composition"
  "exp12_composition.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/exp12_composition.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
