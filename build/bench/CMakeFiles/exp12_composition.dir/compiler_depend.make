# Empty compiler generated dependencies file for exp12_composition.
# This may be replaced when dependencies are built.
