file(REMOVE_RECURSE
  "CMakeFiles/exp13_gradual_release.dir/exp13_gradual_release.cpp.o"
  "CMakeFiles/exp13_gradual_release.dir/exp13_gradual_release.cpp.o.d"
  "exp13_gradual_release"
  "exp13_gradual_release.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/exp13_gradual_release.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
