# Empty dependencies file for exp13_gradual_release.
# This may be replaced when dependencies are built.
