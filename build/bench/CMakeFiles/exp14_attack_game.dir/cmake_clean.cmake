file(REMOVE_RECURSE
  "CMakeFiles/exp14_attack_game.dir/exp14_attack_game.cpp.o"
  "CMakeFiles/exp14_attack_game.dir/exp14_attack_game.cpp.o.d"
  "exp14_attack_game"
  "exp14_attack_game.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/exp14_attack_game.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
