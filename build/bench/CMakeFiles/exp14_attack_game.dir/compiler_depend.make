# Empty compiler generated dependencies file for exp14_attack_game.
# This may be replaced when dependencies are built.
