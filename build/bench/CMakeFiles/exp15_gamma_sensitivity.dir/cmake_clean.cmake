file(REMOVE_RECURSE
  "CMakeFiles/exp15_gamma_sensitivity.dir/exp15_gamma_sensitivity.cpp.o"
  "CMakeFiles/exp15_gamma_sensitivity.dir/exp15_gamma_sensitivity.cpp.o.d"
  "exp15_gamma_sensitivity"
  "exp15_gamma_sensitivity.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/exp15_gamma_sensitivity.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
