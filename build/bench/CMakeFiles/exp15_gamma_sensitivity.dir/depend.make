# Empty dependencies file for exp15_gamma_sensitivity.
# This may be replaced when dependencies are built.
