file(REMOVE_RECURSE
  "CMakeFiles/exp16_multiparty_partial_fairness.dir/exp16_multiparty_partial_fairness.cpp.o"
  "CMakeFiles/exp16_multiparty_partial_fairness.dir/exp16_multiparty_partial_fairness.cpp.o.d"
  "exp16_multiparty_partial_fairness"
  "exp16_multiparty_partial_fairness.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/exp16_multiparty_partial_fairness.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
