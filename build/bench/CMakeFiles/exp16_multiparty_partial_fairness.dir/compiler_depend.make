# Empty compiler generated dependencies file for exp16_multiparty_partial_fairness.
# This may be replaced when dependencies are built.
