file(REMOVE_RECURSE
  "CMakeFiles/exp17_cleve_bias.dir/exp17_cleve_bias.cpp.o"
  "CMakeFiles/exp17_cleve_bias.dir/exp17_cleve_bias.cpp.o.d"
  "exp17_cleve_bias"
  "exp17_cleve_bias.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/exp17_cleve_bias.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
