# Empty compiler generated dependencies file for exp17_cleve_bias.
# This may be replaced when dependencies are built.
