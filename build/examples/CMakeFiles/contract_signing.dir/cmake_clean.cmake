file(REMOVE_RECURSE
  "CMakeFiles/contract_signing.dir/contract_signing.cpp.o"
  "CMakeFiles/contract_signing.dir/contract_signing.cpp.o.d"
  "contract_signing"
  "contract_signing.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/contract_signing.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
