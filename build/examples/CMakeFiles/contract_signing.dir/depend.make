# Empty dependencies file for contract_signing.
# This may be replaced when dependencies are built.
