file(REMOVE_RECURSE
  "CMakeFiles/fair_auction.dir/fair_auction.cpp.o"
  "CMakeFiles/fair_auction.dir/fair_auction.cpp.o.d"
  "fair_auction"
  "fair_auction.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fair_auction.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
