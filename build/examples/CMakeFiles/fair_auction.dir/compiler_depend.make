# Empty compiler generated dependencies file for fair_auction.
# This may be replaced when dependencies are built.
