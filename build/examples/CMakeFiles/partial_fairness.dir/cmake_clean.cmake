file(REMOVE_RECURSE
  "CMakeFiles/partial_fairness.dir/partial_fairness.cpp.o"
  "CMakeFiles/partial_fairness.dir/partial_fairness.cpp.o.d"
  "partial_fairness"
  "partial_fairness.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/partial_fairness.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
