# Empty compiler generated dependencies file for partial_fairness.
# This may be replaced when dependencies are built.
