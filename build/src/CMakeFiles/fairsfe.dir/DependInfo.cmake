
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/adversary/base.cpp" "src/CMakeFiles/fairsfe.dir/adversary/base.cpp.o" "gcc" "src/CMakeFiles/fairsfe.dir/adversary/base.cpp.o.d"
  "/root/repo/src/adversary/gk_adversary.cpp" "src/CMakeFiles/fairsfe.dir/adversary/gk_adversary.cpp.o" "gcc" "src/CMakeFiles/fairsfe.dir/adversary/gk_adversary.cpp.o.d"
  "/root/repo/src/adversary/lock_abort.cpp" "src/CMakeFiles/fairsfe.dir/adversary/lock_abort.cpp.o" "gcc" "src/CMakeFiles/fairsfe.dir/adversary/lock_abort.cpp.o.d"
  "/root/repo/src/adversary/mixed.cpp" "src/CMakeFiles/fairsfe.dir/adversary/mixed.cpp.o" "gcc" "src/CMakeFiles/fairsfe.dir/adversary/mixed.cpp.o.d"
  "/root/repo/src/adversary/strategies.cpp" "src/CMakeFiles/fairsfe.dir/adversary/strategies.cpp.o" "gcc" "src/CMakeFiles/fairsfe.dir/adversary/strategies.cpp.o.d"
  "/root/repo/src/circuit/builder.cpp" "src/CMakeFiles/fairsfe.dir/circuit/builder.cpp.o" "gcc" "src/CMakeFiles/fairsfe.dir/circuit/builder.cpp.o.d"
  "/root/repo/src/circuit/circuit.cpp" "src/CMakeFiles/fairsfe.dir/circuit/circuit.cpp.o" "gcc" "src/CMakeFiles/fairsfe.dir/circuit/circuit.cpp.o.d"
  "/root/repo/src/crypto/auth_share.cpp" "src/CMakeFiles/fairsfe.dir/crypto/auth_share.cpp.o" "gcc" "src/CMakeFiles/fairsfe.dir/crypto/auth_share.cpp.o.d"
  "/root/repo/src/crypto/bytes.cpp" "src/CMakeFiles/fairsfe.dir/crypto/bytes.cpp.o" "gcc" "src/CMakeFiles/fairsfe.dir/crypto/bytes.cpp.o.d"
  "/root/repo/src/crypto/chacha20.cpp" "src/CMakeFiles/fairsfe.dir/crypto/chacha20.cpp.o" "gcc" "src/CMakeFiles/fairsfe.dir/crypto/chacha20.cpp.o.d"
  "/root/repo/src/crypto/commitment.cpp" "src/CMakeFiles/fairsfe.dir/crypto/commitment.cpp.o" "gcc" "src/CMakeFiles/fairsfe.dir/crypto/commitment.cpp.o.d"
  "/root/repo/src/crypto/field.cpp" "src/CMakeFiles/fairsfe.dir/crypto/field.cpp.o" "gcc" "src/CMakeFiles/fairsfe.dir/crypto/field.cpp.o.d"
  "/root/repo/src/crypto/hmac.cpp" "src/CMakeFiles/fairsfe.dir/crypto/hmac.cpp.o" "gcc" "src/CMakeFiles/fairsfe.dir/crypto/hmac.cpp.o.d"
  "/root/repo/src/crypto/lamport.cpp" "src/CMakeFiles/fairsfe.dir/crypto/lamport.cpp.o" "gcc" "src/CMakeFiles/fairsfe.dir/crypto/lamport.cpp.o.d"
  "/root/repo/src/crypto/mac.cpp" "src/CMakeFiles/fairsfe.dir/crypto/mac.cpp.o" "gcc" "src/CMakeFiles/fairsfe.dir/crypto/mac.cpp.o.d"
  "/root/repo/src/crypto/rng.cpp" "src/CMakeFiles/fairsfe.dir/crypto/rng.cpp.o" "gcc" "src/CMakeFiles/fairsfe.dir/crypto/rng.cpp.o.d"
  "/root/repo/src/crypto/secret_sharing.cpp" "src/CMakeFiles/fairsfe.dir/crypto/secret_sharing.cpp.o" "gcc" "src/CMakeFiles/fairsfe.dir/crypto/secret_sharing.cpp.o.d"
  "/root/repo/src/crypto/sha256.cpp" "src/CMakeFiles/fairsfe.dir/crypto/sha256.cpp.o" "gcc" "src/CMakeFiles/fairsfe.dir/crypto/sha256.cpp.o.d"
  "/root/repo/src/crypto/shamir.cpp" "src/CMakeFiles/fairsfe.dir/crypto/shamir.cpp.o" "gcc" "src/CMakeFiles/fairsfe.dir/crypto/shamir.cpp.o.d"
  "/root/repo/src/experiments/setups.cpp" "src/CMakeFiles/fairsfe.dir/experiments/setups.cpp.o" "gcc" "src/CMakeFiles/fairsfe.dir/experiments/setups.cpp.o.d"
  "/root/repo/src/fair/coinflip.cpp" "src/CMakeFiles/fairsfe.dir/fair/coinflip.cpp.o" "gcc" "src/CMakeFiles/fairsfe.dir/fair/coinflip.cpp.o.d"
  "/root/repo/src/fair/contract.cpp" "src/CMakeFiles/fairsfe.dir/fair/contract.cpp.o" "gcc" "src/CMakeFiles/fairsfe.dir/fair/contract.cpp.o.d"
  "/root/repo/src/fair/dummy_ideal.cpp" "src/CMakeFiles/fairsfe.dir/fair/dummy_ideal.cpp.o" "gcc" "src/CMakeFiles/fairsfe.dir/fair/dummy_ideal.cpp.o.d"
  "/root/repo/src/fair/gk.cpp" "src/CMakeFiles/fairsfe.dir/fair/gk.cpp.o" "gcc" "src/CMakeFiles/fairsfe.dir/fair/gk.cpp.o.d"
  "/root/repo/src/fair/gk_multi.cpp" "src/CMakeFiles/fairsfe.dir/fair/gk_multi.cpp.o" "gcc" "src/CMakeFiles/fairsfe.dir/fair/gk_multi.cpp.o.d"
  "/root/repo/src/fair/gmw_half.cpp" "src/CMakeFiles/fairsfe.dir/fair/gmw_half.cpp.o" "gcc" "src/CMakeFiles/fairsfe.dir/fair/gmw_half.cpp.o.d"
  "/root/repo/src/fair/gradual.cpp" "src/CMakeFiles/fairsfe.dir/fair/gradual.cpp.o" "gcc" "src/CMakeFiles/fairsfe.dir/fair/gradual.cpp.o.d"
  "/root/repo/src/fair/leaky_and.cpp" "src/CMakeFiles/fairsfe.dir/fair/leaky_and.cpp.o" "gcc" "src/CMakeFiles/fairsfe.dir/fair/leaky_and.cpp.o.d"
  "/root/repo/src/fair/lemma18.cpp" "src/CMakeFiles/fairsfe.dir/fair/lemma18.cpp.o" "gcc" "src/CMakeFiles/fairsfe.dir/fair/lemma18.cpp.o.d"
  "/root/repo/src/fair/mixed.cpp" "src/CMakeFiles/fairsfe.dir/fair/mixed.cpp.o" "gcc" "src/CMakeFiles/fairsfe.dir/fair/mixed.cpp.o.d"
  "/root/repo/src/fair/opt2_compiled.cpp" "src/CMakeFiles/fairsfe.dir/fair/opt2_compiled.cpp.o" "gcc" "src/CMakeFiles/fairsfe.dir/fair/opt2_compiled.cpp.o.d"
  "/root/repo/src/fair/opt2sfe.cpp" "src/CMakeFiles/fairsfe.dir/fair/opt2sfe.cpp.o" "gcc" "src/CMakeFiles/fairsfe.dir/fair/opt2sfe.cpp.o.d"
  "/root/repo/src/fair/optnsfe.cpp" "src/CMakeFiles/fairsfe.dir/fair/optnsfe.cpp.o" "gcc" "src/CMakeFiles/fairsfe.dir/fair/optnsfe.cpp.o.d"
  "/root/repo/src/mpc/gmw.cpp" "src/CMakeFiles/fairsfe.dir/mpc/gmw.cpp.o" "gcc" "src/CMakeFiles/fairsfe.dir/mpc/gmw.cpp.o.d"
  "/root/repo/src/mpc/ot.cpp" "src/CMakeFiles/fairsfe.dir/mpc/ot.cpp.o" "gcc" "src/CMakeFiles/fairsfe.dir/mpc/ot.cpp.o.d"
  "/root/repo/src/mpc/sfe_functionalities.cpp" "src/CMakeFiles/fairsfe.dir/mpc/sfe_functionalities.cpp.o" "gcc" "src/CMakeFiles/fairsfe.dir/mpc/sfe_functionalities.cpp.o.d"
  "/root/repo/src/mpc/yao.cpp" "src/CMakeFiles/fairsfe.dir/mpc/yao.cpp.o" "gcc" "src/CMakeFiles/fairsfe.dir/mpc/yao.cpp.o.d"
  "/root/repo/src/rpd/balance.cpp" "src/CMakeFiles/fairsfe.dir/rpd/balance.cpp.o" "gcc" "src/CMakeFiles/fairsfe.dir/rpd/balance.cpp.o.d"
  "/root/repo/src/rpd/cost.cpp" "src/CMakeFiles/fairsfe.dir/rpd/cost.cpp.o" "gcc" "src/CMakeFiles/fairsfe.dir/rpd/cost.cpp.o.d"
  "/root/repo/src/rpd/estimator.cpp" "src/CMakeFiles/fairsfe.dir/rpd/estimator.cpp.o" "gcc" "src/CMakeFiles/fairsfe.dir/rpd/estimator.cpp.o.d"
  "/root/repo/src/rpd/events.cpp" "src/CMakeFiles/fairsfe.dir/rpd/events.cpp.o" "gcc" "src/CMakeFiles/fairsfe.dir/rpd/events.cpp.o.d"
  "/root/repo/src/rpd/fairness_relation.cpp" "src/CMakeFiles/fairsfe.dir/rpd/fairness_relation.cpp.o" "gcc" "src/CMakeFiles/fairsfe.dir/rpd/fairness_relation.cpp.o.d"
  "/root/repo/src/rpd/payoff.cpp" "src/CMakeFiles/fairsfe.dir/rpd/payoff.cpp.o" "gcc" "src/CMakeFiles/fairsfe.dir/rpd/payoff.cpp.o.d"
  "/root/repo/src/sim/engine.cpp" "src/CMakeFiles/fairsfe.dir/sim/engine.cpp.o" "gcc" "src/CMakeFiles/fairsfe.dir/sim/engine.cpp.o.d"
  "/root/repo/src/sim/functionality.cpp" "src/CMakeFiles/fairsfe.dir/sim/functionality.cpp.o" "gcc" "src/CMakeFiles/fairsfe.dir/sim/functionality.cpp.o.d"
  "/root/repo/src/sim/message.cpp" "src/CMakeFiles/fairsfe.dir/sim/message.cpp.o" "gcc" "src/CMakeFiles/fairsfe.dir/sim/message.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
