file(REMOVE_RECURSE
  "libfairsfe.a"
)
