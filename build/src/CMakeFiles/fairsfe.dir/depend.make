# Empty dependencies file for fairsfe.
# This may be replaced when dependencies are built.
