
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/test_abort_sweep.cpp" "tests/CMakeFiles/fairsfe_tests.dir/test_abort_sweep.cpp.o" "gcc" "tests/CMakeFiles/fairsfe_tests.dir/test_abort_sweep.cpp.o.d"
  "/root/repo/tests/test_adversary.cpp" "tests/CMakeFiles/fairsfe_tests.dir/test_adversary.cpp.o" "gcc" "tests/CMakeFiles/fairsfe_tests.dir/test_adversary.cpp.o.d"
  "/root/repo/tests/test_circuit.cpp" "tests/CMakeFiles/fairsfe_tests.dir/test_circuit.cpp.o" "gcc" "tests/CMakeFiles/fairsfe_tests.dir/test_circuit.cpp.o.d"
  "/root/repo/tests/test_coinflip.cpp" "tests/CMakeFiles/fairsfe_tests.dir/test_coinflip.cpp.o" "gcc" "tests/CMakeFiles/fairsfe_tests.dir/test_coinflip.cpp.o.d"
  "/root/repo/tests/test_crypto_field.cpp" "tests/CMakeFiles/fairsfe_tests.dir/test_crypto_field.cpp.o" "gcc" "tests/CMakeFiles/fairsfe_tests.dir/test_crypto_field.cpp.o.d"
  "/root/repo/tests/test_crypto_hash.cpp" "tests/CMakeFiles/fairsfe_tests.dir/test_crypto_hash.cpp.o" "gcc" "tests/CMakeFiles/fairsfe_tests.dir/test_crypto_hash.cpp.o.d"
  "/root/repo/tests/test_crypto_sharing.cpp" "tests/CMakeFiles/fairsfe_tests.dir/test_crypto_sharing.cpp.o" "gcc" "tests/CMakeFiles/fairsfe_tests.dir/test_crypto_sharing.cpp.o.d"
  "/root/repo/tests/test_engine.cpp" "tests/CMakeFiles/fairsfe_tests.dir/test_engine.cpp.o" "gcc" "tests/CMakeFiles/fairsfe_tests.dir/test_engine.cpp.o.d"
  "/root/repo/tests/test_fair_protocols.cpp" "tests/CMakeFiles/fairsfe_tests.dir/test_fair_protocols.cpp.o" "gcc" "tests/CMakeFiles/fairsfe_tests.dir/test_fair_protocols.cpp.o.d"
  "/root/repo/tests/test_functionalities.cpp" "tests/CMakeFiles/fairsfe_tests.dir/test_functionalities.cpp.o" "gcc" "tests/CMakeFiles/fairsfe_tests.dir/test_functionalities.cpp.o.d"
  "/root/repo/tests/test_gk_multi.cpp" "tests/CMakeFiles/fairsfe_tests.dir/test_gk_multi.cpp.o" "gcc" "tests/CMakeFiles/fairsfe_tests.dir/test_gk_multi.cpp.o.d"
  "/root/repo/tests/test_gmw.cpp" "tests/CMakeFiles/fairsfe_tests.dir/test_gmw.cpp.o" "gcc" "tests/CMakeFiles/fairsfe_tests.dir/test_gmw.cpp.o.d"
  "/root/repo/tests/test_gradual.cpp" "tests/CMakeFiles/fairsfe_tests.dir/test_gradual.cpp.o" "gcc" "tests/CMakeFiles/fairsfe_tests.dir/test_gradual.cpp.o.d"
  "/root/repo/tests/test_opt2_compiled.cpp" "tests/CMakeFiles/fairsfe_tests.dir/test_opt2_compiled.cpp.o" "gcc" "tests/CMakeFiles/fairsfe_tests.dir/test_opt2_compiled.cpp.o.d"
  "/root/repo/tests/test_partial_fairness.cpp" "tests/CMakeFiles/fairsfe_tests.dir/test_partial_fairness.cpp.o" "gcc" "tests/CMakeFiles/fairsfe_tests.dir/test_partial_fairness.cpp.o.d"
  "/root/repo/tests/test_robustness.cpp" "tests/CMakeFiles/fairsfe_tests.dir/test_robustness.cpp.o" "gcc" "tests/CMakeFiles/fairsfe_tests.dir/test_robustness.cpp.o.d"
  "/root/repo/tests/test_rpd.cpp" "tests/CMakeFiles/fairsfe_tests.dir/test_rpd.cpp.o" "gcc" "tests/CMakeFiles/fairsfe_tests.dir/test_rpd.cpp.o.d"
  "/root/repo/tests/test_utility_bounds.cpp" "tests/CMakeFiles/fairsfe_tests.dir/test_utility_bounds.cpp.o" "gcc" "tests/CMakeFiles/fairsfe_tests.dir/test_utility_bounds.cpp.o.d"
  "/root/repo/tests/test_yao.cpp" "tests/CMakeFiles/fairsfe_tests.dir/test_yao.cpp.o" "gcc" "tests/CMakeFiles/fairsfe_tests.dir/test_yao.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/fairsfe.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
