# Empty dependencies file for fairsfe_tests.
# This may be replaced when dependencies are built.
