// Contract signing: the paper's opening example, live.
//
// Two parties exchange signed contracts with Π₁ (naive ordered opening) and
// with Π₂ (Blum coin toss decides the order). The example shows a single
// adversarial run of each, then quantifies the fairness gap with the
// utility-based relation — Π₂ ⪰γ Π₁ and not vice versa.
//
//   build/examples/contract_signing
#include <cstdio>

#include "experiments/setups.h"
#include "fairsfe.h"

using namespace fairsfe;
using namespace fairsfe::experiments;

namespace {
void narrate_run(const char* name, fair::ContractVariant variant, std::uint64_t seed) {
  Rng rng(seed);
  const Bytes c0 = bytes_of("alice-signature");
  const Bytes c1 = bytes_of("bob-signature!!");
  auto parties = fair::make_contract_parties(variant, c0, c1, rng);
  // Bob (p2) is corrupted by the lock-abort adversary.
  auto adv = std::make_unique<adversary::LockAbortAdversary>(std::set<sim::PartyId>{1},
                                                             c0 + c1);
  sim::EngineConfig cfg;
  cfg.max_rounds = 12;
  sim::Engine engine(std::move(parties), nullptr, std::move(adv), rng.fork("engine"), cfg);
  const auto r = engine.run();
  std::printf("%s, corrupted Bob:\n", name);
  std::printf("  honest Alice got: %s\n",
              r.outputs[0] ? "both signed contracts" : "NOTHING (unfair abort)");
  std::printf("  Bob extracted:    %s\n\n",
              r.adversary_learned ? "both signed contracts" : "nothing");
}
}  // namespace

int main() {
  std::printf("== single adversarial runs ==\n\n");
  narrate_run("Pi1 (fixed opening order)", fair::ContractVariant::kPi1, 11);
  // With Pi2, whether Bob wins depends on the coin; show both outcomes.
  narrate_run("Pi2 (coin-tossed order), lucky coin", fair::ContractVariant::kPi2, 3);
  narrate_run("Pi2 (coin-tossed order), unlucky coin", fair::ContractVariant::kPi2, 5);

  std::printf("== the comparative fairness statement ==\n\n");
  const rpd::PayoffVector gamma = rpd::PayoffVector::standard();
  const auto pi1 = rpd::assess_protocol(
      two_party_attack_family([](sim::PartyId c) {
        return contract_attack(fair::ContractVariant::kPi1, c);
      }),
      gamma, rpd::EstimatorOptions{.runs = 2000, .seed = 100});
  const auto pi2 = rpd::assess_protocol(
      two_party_attack_family([](sim::PartyId c) {
        return contract_attack(fair::ContractVariant::kPi2, c);
      }),
      gamma, rpd::EstimatorOptions{.runs = 2000, .seed = 200});
  std::printf("best attacker vs Pi1: %.3f (%s)\n", pi1.best_utility(),
              pi1.best_attack_name().c_str());
  std::printf("best attacker vs Pi2: %.3f (%s)\n", pi2.best_utility(),
              pi2.best_attack_name().c_str());
  std::printf("Pi2 at-least-as-fair-as Pi1: %s;  Pi1 at-least-as-fair-as Pi2: %s\n",
              rpd::at_least_as_fair(pi2, pi1) ? "yes" : "no",
              rpd::at_least_as_fair(pi1, pi2) ? "yes" : "no");
  std::printf("\n\"One would simply say that protocol Pi2 is twice as fair as Pi1.\"\n");
  return 0;
}
