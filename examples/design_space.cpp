// Design space: which fair protocol should you deploy?
//
// The paper's answer is that it depends on the payoff vector and on what
// corruptions cost the adversary (Theorem 6). This example builds the full
// decision table for a 4-party evaluation: per coalition size it measures
// the best attacker's utility against ΠOptnSFE (utility-balanced optimal),
// Π½GMW (honest-majority all-or-nothing), and the Lemma 18 protocol, then
// applies a linear corruption-cost model c(t) = κ·t and reports which
// protocol minimizes the adversary's best *net* utility for each κ.
//
//   build/examples/design_space
#include <cstdio>

#include "experiments/setups.h"
#include "fairsfe.h"

using namespace fairsfe;
using namespace fairsfe::experiments;

int main() {
  const std::size_t n = 4;
  const std::size_t runs = 1500;
  const rpd::PayoffVector gamma = rpd::PayoffVector::standard();

  std::printf("measuring phi(t) = best attacker utility, n = %zu, gamma = %s ...\n\n", n,
              gamma.to_string().c_str());

  struct Candidate {
    const char* name;
    NPartyProtocol kind;
    std::vector<double> phi;
  };
  std::vector<Candidate> candidates = {
      {"OptNSFE (balanced optimal)", NPartyProtocol::kOptN, {}},
      {"Pi-1/2-GMW (honest majority)", NPartyProtocol::kHalfGmw, {}},
      {"Lemma-18 protocol", NPartyProtocol::kLemma18, {}},
  };

  std::uint64_t seed = 1;
  for (auto& c : candidates) {
    for (std::size_t t = 1; t < n; ++t) {
      const auto a =
          rpd::assess_protocol(nparty_attack_family(c.kind, n, t), gamma,
                               rpd::EstimatorOptions{.runs = runs, .seed = seed});
      seed += a.attacks.size();
      c.phi.push_back(a.best_utility());
    }
  }

  std::printf("%-30s", "phi(t):  t =");
  for (std::size_t t = 1; t < n; ++t) std::printf("%10zu", t);
  std::printf("\n");
  for (const auto& c : candidates) {
    std::printf("%-30s", c.name);
    for (const double v : c.phi) std::printf("%10.3f", v);
    std::printf("\n");
  }

  std::printf("\nbest adversary net utility max_t [phi(t) - kappa*t], by corruption "
              "price kappa:\n\n");
  std::printf("%-8s", "kappa");
  for (const auto& c : candidates) std::printf("%-32s", c.name);
  std::printf("recommended\n");
  for (const double kappa : {0.0, 0.05, 0.1, 0.2, 0.3, 0.5}) {
    std::printf("%-8.2f", kappa);
    double best = 1e18;
    const char* pick = "";
    for (const auto& c : candidates) {
      double worst = -1e18;
      for (std::size_t t = 1; t < n; ++t) {
        worst = std::max(worst, c.phi[t - 1] - kappa * static_cast<double>(t));
      }
      std::printf("%-32.3f", worst);
      if (worst < best) {
        best = worst;
        pick = c.name;
      }
    }
    std::printf("%s\n", pick);
  }

  std::printf("\nreading: when corruptions are free or cheap, the utility-balanced\n"
              "optimal protocol minimizes the attacker's take; once corrupting each\n"
              "extra party is expensive, the honest-majority protocol's perfect\n"
              "guarantee below n/2 becomes the better deal — Theorem 6's trade-off,\n"
              "now as a deployment table.\n");
  return 0;
}
