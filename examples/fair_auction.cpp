// Fair sealed-bid auction: n bidders learn the winning bid via the optimally
// fair multi-party protocol ΠOptnSFE, and no coalition of losers can walk
// away with the result while denying it to the others — except with the
// provably unavoidable probability t/n.
//
// The example runs the auction honestly, then sweeps coalition sizes and
// compares the measured attacker utility with the Lemma 11 bound, and
// contrasts it with the honest-majority protocol Π½GMW (fair below n/2,
// broken at n/2 — Lemma 17).
//
//   build/examples/fair_auction
#include <cstdio>

#include "experiments/setups.h"
#include "fairsfe.h"

using namespace fairsfe;

int main() {
  const std::size_t n = 6;
  Rng rng(77);

  // 1. Honest auction: max of the bids.
  const mpc::SfeSpec spec = mpc::make_max_spec(n);
  std::vector<Bytes> bids;
  std::printf("bids: ");
  for (std::size_t i = 0; i < n; ++i) {
    Writer w;
    const std::uint64_t bid = 100 + rng.below(900);
    std::printf("%llu ", static_cast<unsigned long long>(bid));
    w.u64(bid);
    bids.push_back(w.take());
  }
  auto inst = fair::make_optn_instance(spec, bids, rng);
  sim::Engine engine(std::move(inst.parties), std::move(inst.functionality), nullptr,
                     rng.fork("engine"));
  const auto honest = engine.run();
  Reader r(*honest.outputs[0]);
  std::printf("\nwinning bid (seen by every party): %llu\n\n",
              static_cast<unsigned long long>(*r.u64()));

  // 2. Coalition sweep: how unfair can t colluding bidders be?
  const rpd::PayoffVector gamma = rpd::PayoffVector::standard();
  std::printf("coalition sweep on the 8-byte exchange function (runs = 2000):\n");
  std::printf("%-4s %22s %22s %14s\n", "t", "OptNSFE (measured)", "Lemma 11 bound",
              "Pi-1/2-GMW");
  for (std::size_t t = 1; t < n; ++t) {
    const auto opt = rpd::estimate_utility(
        experiments::optn_lock_abort(n, t), gamma,
        rpd::EstimatorOptions{.runs = 2000, .seed = 10 + t});
    const auto gmw = rpd::estimate_utility(
        experiments::half_gmw_coalition(n, t), gamma,
        rpd::EstimatorOptions{.runs = 2000, .seed = 20 + t});
    std::printf("%-4zu %22.3f %22.3f %14.3f\n", t, opt.utility, gamma.nparty_bound(t, n),
                gmw.utility);
  }
  std::printf("\nreading: OptNSFE degrades gracefully (slope 1/n per corruption);\n"
              "the honest-majority protocol is perfect until t = n/2 = %zu and then\n"
              "collapses to total unfairness — which protocol is preferable depends\n"
              "on how costly corruptions are (Theorem 6).\n", n / 2);
  return 0;
}
