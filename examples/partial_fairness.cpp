// Partial fairness: trading rounds for fairness with the Gordon–Katz
// 1/p-secure protocol, and the fine print the paper exposes.
//
// The example computes a 1-bit AND with GK at increasing p, showing the
// attacker's payoff shrink as 1/p while the round count grows as O(p·|Y|).
// It then runs the "intuitively insecure" protocol Π̃ — which *passes* the
// 1/p-security definition — and watches it hand the honest party's input to
// the adversary, the separation of Section 5.
//
//   build/examples/partial_fairness
#include <cstdio>

#include "experiments/setups.h"
#include "fairsfe.h"

using namespace fairsfe;
using namespace fairsfe::experiments;

int main() {
  const rpd::PayoffVector pf = rpd::PayoffVector::partial_fairness();

  std::printf("== GK 1/p-secure AND: fairness vs rounds (runs = 2000) ==\n\n");
  std::printf("%-4s %10s %14s %12s\n", "p", "1/p", "best attack", "iterations");
  for (const std::size_t p : {2u, 3u, 4u, 6u, 8u}) {
    const fair::GkParams params = fair::make_gk_and_params(p);
    const auto assessment =
        rpd::assess_protocol(gk_attack_family(params), pf,
                             rpd::EstimatorOptions{.runs = 2000, .seed = 1000 + p});
    std::printf("%-4zu %10.4f %14.4f %12zu\n", p, 1.0 / static_cast<double>(p),
                assessment.best_utility(), params.cap());
  }

  std::printf("\n== the Section 5 separation: protocol Pi-tilde ==\n\n");
  std::size_t leaks = 0;
  const std::size_t runs = 2000;
  for (std::size_t i = 0; i < runs; ++i) {
    Rng rng(5000 + i);
    const Bytes x0{static_cast<std::uint8_t>(rng.bit())};
    const Bytes x1{static_cast<std::uint8_t>(rng.bit())};
    auto adv = std::make_unique<adversary::LeakyAndProbe>();
    auto* probe = adv.get();
    auto parties = fair::make_leaky_and_parties(x0, x1, rng);
    sim::EngineConfig cfg;
    cfg.max_rounds = 200;
    sim::Engine e(std::move(parties), fair::make_leaky_and_functionality(nullptr),
                  std::move(adv), rng.fork("engine"), cfg);
    e.run();
    if (probe->leaked() && *probe->leaked() == x0) ++leaks;
  }
  std::printf("Pi-tilde is provably 1/2-secure AND 'fully private' per [GK10]...\n");
  std::printf("...yet a deviating peer learned the honest INPUT in %.1f%% of runs.\n",
              100.0 * static_cast<double>(leaks) / static_cast<double>(runs));
  std::printf("\nThe paper's utility-based notion rejects Pi-tilde (Lemma 26) while\n"
              "implying 1/p-security for gamma = (0,0,1,0) (Lemma 25): it is the\n"
              "strictly stronger definition.\n");
  return 0;
}
