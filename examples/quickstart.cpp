// Quickstart: the fair millionaires' problem in ~60 lines.
//
// Two parties compare their fortunes with the optimally fair two-party
// protocol ΠOpt2SFE, then we unleash the paper's strongest attacker on it
// and measure how unfair it managed to be.
//
//   build/examples/quickstart
#include <cstdio>

#include "fairsfe.h"

using namespace fairsfe;

int main() {
  Rng rng(2015);  // everything is deterministic given the seed

  // 1. Describe the function: f(x1, x2) = [x1 > x2].
  const mpc::SfeSpec spec = mpc::make_millionaires_spec();

  // 2. Run the optimally fair protocol honestly.
  Writer alice, bob;
  alice.u64(1'000'000);
  bob.u64(750'000);
  auto parties = fair::make_opt2_parties(spec, alice.bytes(), bob.bytes(), rng);
  sim::ExecutionOptions opts;
  opts.record_transcript = true;  // narration wants the message log; the
                                  // Monte-Carlo estimator below leaves it off
  sim::Engine engine(std::move(parties), std::make_unique<fair::Opt2ShareFunc>(spec),
                     /*adversary=*/nullptr, rng.fork("engine"), opts);
  const sim::ExecutionResult honest = engine.run();
  std::printf("honest run: alice richer? %s (and bob agrees: %s), %d rounds\n",
              (*honest.outputs[0])[0] ? "yes" : "no",
              (*honest.outputs[1])[0] ? "yes" : "no", honest.rounds);
  const auto lines = honest.transcript_lines();
  for (std::size_t r = 0; r < lines.size(); ++r) {
    std::printf("  round %zu: %zu message(s)%s%s\n", r, lines[r].size(),
                lines[r].empty() ? "" : ", first: ",
                lines[r].empty() ? "" : lines[r][0].c_str());
  }

  // 3. How fair is this protocol? Attack it with the paper's strongest
  //    adversary (lock-abort: follow the protocol honestly, abort the moment
  //    your output is locked in) and estimate the attacker's utility. We use
  //    the 8-byte exchange function, the worst case where Theorem 4's lower
  //    bound is tight.
  const rpd::PayoffVector gamma = rpd::PayoffVector::standard();
  const mpc::SfeSpec exchange = mpc::make_concat_spec(2, 8);
  const auto factory = [&exchange](Rng& run_rng) {
    rpd::RunSetup s;
    const Bytes a = run_rng.bytes(8), b = run_rng.bytes(8);
    s.parties = fair::make_opt2_parties(exchange, a, b, run_rng);
    s.functionality = std::make_unique<fair::Opt2ShareFunc>(exchange);
    s.adversary = std::make_unique<adversary::LockAbortAdversary>(
        std::set<sim::PartyId>{1}, exchange.eval({a, b}));
    s.engine.max_rounds = 12;
    return s;
  };
  const rpd::UtilityEstimate estimate = rpd::estimate_utility(
      factory, gamma, rpd::EstimatorOptions{.runs = 2000, .seed = 7});

  std::printf("attacker utility: %.3f +/- %.3f  (theoretical optimum (g10+g11)/2 = %.3f)\n",
              estimate.utility, estimate.margin(), gamma.two_party_opt_bound());
  std::printf("event frequencies: E00=%.2f E01=%.2f E10=%.2f E11=%.2f\n",
              estimate.event_freq[0], estimate.event_freq[1], estimate.event_freq[2],
              estimate.event_freq[3]);
  std::printf("reading: the attacker snatches the output and runs (E10) only when the\n"
              "hidden coin picked it to reconstruct first — half the time. No protocol\n"
              "for general functions can do better (Theorem 4). Functions with tiny\n"
              "output ranges (like the millionaires' bit) fare strictly better: the\n"
              "attacker cannot tell the real output from the fallback — see the\n"
              "partial_fairness example.\n");
  return 0;
}
