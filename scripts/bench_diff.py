#!/usr/bin/env python3
"""Compare two BENCH_*.json reports and print per-row deltas.

Works with every report layout in this repo:
  - bench::Reporter files (rows keyed by "name" with "utility"/"runs_per_sec")
  - perf_protocols --profile files (rows keyed by "name" with throughput and
    RoutingStats counters)
  - fairbench multi-scenario files: a JSON array of Reporter objects (one per
    selected scenario); rows are then matched per (experiment, name) pair, so
    an array baseline diffs cleanly against an array rerun and a legacy
    single-object baseline still matches its scenario inside an array.

Usage: scripts/bench_diff.py [--fail-above PCT] OLD.json NEW.json

Without --fail-above the diff is purely informational — exits 0 regardless of
direction; eyeball the signs. With --fail-above PCT it exits 1 when any *perf*
key (throughput or cost counters — utility/std_error are estimates, not
performance, and are never gated) regresses by more than PCT percent, so CI
can use it as a perf smoke gate.
"""
import argparse
import json
import sys

# Higher is better for throughput; lower is better for cost counters and
# latencies.
HIGHER_IS_BETTER = {"runs_per_sec", "requests_per_sec"}
# wall_seconds is omitted: it scales with the iteration count, not the work.
NUMERIC_KEYS = [
    "runs_per_sec",
    "requests_per_sec",
    "p50_ms",
    "p95_ms",
    "p99_ms",
    "rounds",
    "messages",
    "messages_per_round",
    "payload_bytes",
    "bytes_copied",
    "bytes_copy_avoided",
    "utility",
    "std_error",
    "ci_halfwidth",
    "valid_runs",
    "stopped_at",
    "lanes",
]
# Keys eligible for --fail-above gating. Statistical estimates are excluded:
# a seed or run-count change moves them without any code regressing. The
# sliced-execution trajectory keys (lanes, valid_runs, stopped_at,
# ci_halfwidth) are configuration/estimate descriptors, not performance, so
# they are diffed but never gated either.
GATED_KEYS = set(NUMERIC_KEYS) - {
    "utility",
    "std_error",
    "ci_halfwidth",
    "valid_runs",
    "stopped_at",
    "lanes",
}


def load_rows(path):
    """Load one report file into ({(experiment, row_name): row}, [reports]).

    A single object (legacy BENCH_*.json; what fairbench still writes when
    exactly one scenario is selected) becomes a one-element report list; a
    fairbench array is taken as-is. Keying rows by (experiment, name) keeps
    row names from different scenarios apart and lets the two layouts diff
    against each other.
    """
    try:
        with open(path) as f:
            data = json.load(f)
    except OSError as e:
        sys.exit(f"bench_diff: cannot read {path}: {e.strerror or e}")
    except json.JSONDecodeError as e:
        sys.exit(f"bench_diff: {path} is not valid JSON (line {e.lineno}: {e.msg}); "
                 "was the benchmark interrupted mid-write?")
    reports = data if isinstance(data, list) else [data]
    rows = {}
    for report in reports:
        if not isinstance(report, dict):
            sys.exit(f"bench_diff: {path}: expected a report object or array of "
                     f"report objects, got {type(report).__name__}")
        exp = report.get("experiment", "?")
        for row in report.get("rows", []):
            if not isinstance(row, dict) or "name" not in row:
                sys.exit(f"bench_diff: {path}: malformed row in report {exp!r} "
                         "(every row needs a \"name\")")
            rows[(exp, row["name"])] = row
    if not rows:
        sys.exit(f"bench_diff: {path} contains no benchmark rows; "
                 "nothing to compare")
    return rows, reports


def fmt(v):
    return f"{v:,.3f}".rstrip("0").rstrip(".") if isinstance(v, float) else str(v)


def regression_pct(key, old, new):
    """How much worse `new` is than `old` for this key, in percent (>= 0)."""
    if old == 0:
        return 0.0
    if key in HIGHER_IS_BETTER:
        return max(0.0, (old - new) / old * 100.0)
    return max(0.0, (new - old) / old * 100.0)


def main():
    ap = argparse.ArgumentParser(
        description=__doc__,
        formatter_class=argparse.RawDescriptionHelpFormatter,
        allow_abbrev=False,
        epilog="examples:\n"
               "  python3 scripts/bench_diff.py BENCH_hotpath.json "
               "BENCH_hotpath.ci.json\n"
               "  python3 scripts/bench_diff.py --fail-above 35 "
               "BENCH_preproc.json BENCH_preproc.ci.json\n"
               "\n"
               "Exit status: 0 clean, 1 regression above --fail-above, "
               "2 bad usage.\n")
    ap.add_argument("--fail-above", type=float, metavar="PCT", default=None,
                    help="exit 1 if any perf key regresses by more than PCT%%")
    ap.add_argument("old", metavar="OLD.json")
    ap.add_argument("new", metavar="NEW.json")
    args = ap.parse_args()

    old_rows, old_reps = load_rows(args.old)
    new_rows, new_reps = load_rows(args.new)

    exps = ", ".join(r.get("experiment", "?") for r in new_reps)
    print(f"bench diff [{exps}]: {args.old} -> {args.new}\n")

    # Row names alone are unambiguous in a single-scenario diff; prefix the
    # experiment only when the file holds several.
    def label(key):
        exp, name = key
        return name if len(new_reps) == 1 else f"{exp} :: {name}"

    worst = (0.0, None)  # (pct, "row/key") over gated keys only
    for row_key in new_rows:
        name = label(row_key)
        new = new_rows[row_key]
        old = old_rows.get(row_key)
        if old is None:
            print(f"{name}: new row (no baseline)")
            continue
        print(f"{name}:")
        for key in NUMERIC_KEYS:
            if key not in new or key not in old:
                continue
            o, n = old[key], new[key]
            if key in GATED_KEYS:
                pct = regression_pct(key, o, n)
                if pct > worst[0]:
                    worst = (pct, f"{name}/{key}")
            if o == n:
                continue
            ratio = (n / o) if o else float("inf")
            better = (n > o) == (key in HIGHER_IS_BETTER)
            arrow = "improved" if better else "regressed"
            print(f"  {key:>20}: {fmt(o)} -> {fmt(n)}  ({ratio:.2f}x, {arrow})")
    gone = set(old_rows) - set(new_rows)
    for row_key in sorted(gone):
        print(f"{label(row_key)}: dropped from report")

    if args.fail_above is not None:
        pct, where = worst
        print(f"\nworst perf regression: {pct:.1f}%"
              + (f" ({where})" if where else "")
              + f", threshold {args.fail_above:.1f}%")
        if pct > args.fail_above:
            print("FAIL: perf regression above threshold")
            sys.exit(1)
        print("OK: within threshold")


if __name__ == "__main__":
    main()
