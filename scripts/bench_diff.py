#!/usr/bin/env python3
"""Compare two BENCH_*.json reports and print per-row deltas.

Works with both report schemas in this repo:
  - bench::Reporter files (rows keyed by "name" with "utility"/"runs_per_sec")
  - perf_protocols --profile files (rows keyed by "name" with throughput and
    RoutingStats counters)

Usage: scripts/bench_diff.py OLD.json NEW.json

Purely informational — exits 0 regardless of direction so it can run as a
non-gating CI step; eyeball the signs.
"""
import json
import sys

# Higher is better for throughput; lower is better for cost counters.
HIGHER_IS_BETTER = {"runs_per_sec"}
# wall_seconds is omitted: it scales with the iteration count, not the work.
NUMERIC_KEYS = [
    "runs_per_sec",
    "rounds",
    "messages",
    "messages_per_round",
    "payload_bytes",
    "bytes_copied",
    "bytes_copy_avoided",
    "utility",
    "std_error",
]


def load_rows(path):
    with open(path) as f:
        report = json.load(f)
    return {row["name"]: row for row in report.get("rows", [])}, report


def fmt(v):
    return f"{v:,.3f}".rstrip("0").rstrip(".") if isinstance(v, float) else str(v)


def main():
    if len(sys.argv) != 3:
        sys.exit(__doc__.strip())
    old_rows, old_rep = load_rows(sys.argv[1])
    new_rows, new_rep = load_rows(sys.argv[2])

    exp = new_rep.get("experiment", "?")
    print(f"bench diff [{exp}]: {sys.argv[1]} -> {sys.argv[2]}\n")

    for name in new_rows:
        new = new_rows[name]
        old = old_rows.get(name)
        if old is None:
            print(f"{name}: new row (no baseline)")
            continue
        print(f"{name}:")
        for key in NUMERIC_KEYS:
            if key not in new or key not in old:
                continue
            o, n = old[key], new[key]
            if o == n:
                continue
            ratio = (n / o) if o else float("inf")
            better = (n > o) == (key in HIGHER_IS_BETTER)
            arrow = "improved" if better else "regressed"
            print(f"  {key:>20}: {fmt(o)} -> {fmt(n)}  ({ratio:.2f}x, {arrow})")
    gone = set(old_rows) - set(new_rows)
    for name in sorted(gone):
        print(f"{name}: dropped from report")


if __name__ == "__main__":
    main()
