#!/usr/bin/env bash
# CI gate for the parallel Monte-Carlo estimation engine: build the tsan
# preset and run the scheduling-independence tests (test_estimator_parallel)
# under ThreadSanitizer, so data races in the estimator/thread-pool layer
# fail the build rather than silently perturbing estimates.
#
# Usage: scripts/ci.sh [extra ctest -R regex]
set -euo pipefail
cd "$(dirname "$0")/.."

FILTER="${1:-EstimatorParallel|ThreadPool|RngForkAt}"

cmake --preset tsan
cmake --build --preset tsan -j "$(nproc)" --target fairsfe_tests
ctest --test-dir build-tsan -R "${FILTER}" --output-on-failure -j "$(nproc)"

echo "tsan gate passed (${FILTER})"
