#!/usr/bin/env bash
# CI gates, in order:
#
# 1. Static analysis (gating): scripts/lint.sh runs the fairsfe-lint fixture
#    self-test plus the determinism-contract lint over the whole tree, then
#    the fairsfe-analyze fixture self-test plus the cross-TU dataflow pass
#    (Rng stream lineage, secret-flow taint, message-schema conformance —
#    DESIGN.md §14; warm facts cache keeps the analyze stage well under 10 s),
#    and clang-tidy when installed. Any finding fails the build before a
#    single TU is compiled under TSan.
#
# 2. TSan gate for the parallel Monte-Carlo estimation engine: build the tsan
# preset and run the tier1 ctest label — the scheduling-independence suites
# (estimator, thread pool, RNG forking, hot-path goldens, fault injection)
# plus the scenario-registry, wire-codec/transport/mesh, and fairbenchd
# daemon suites — under ThreadSanitizer, so data races in the estimator/
# thread-pool/plan-cache/fault/daemon layer fail the build rather than
# silently perturbing estimates. The tier labels are assigned in
# tests/CMakeLists.txt.
#
# 3. Daemon smoke (gating): start the Release fairbenchd on a unix socket,
#    drive a request mix through scripts/loadtest.py --smoke, and assert the
#    daemon drains and exits 0 on SIGTERM — the graceful-shutdown contract.
#
# Afterwards, a non-gating perf + experiment smoke against a Release build:
#   * `fairbench --list` must enumerate the registered scenario table (a
#     linker dropping scenario TUs would silently shrink it);
#   * `fairbench --filter smoke --runs 32` sweeps every smoke-tagged
#     scenario end-to-end (deviations at 32 runs are noise, never fatal);
#   * perf_protocols --profile writes BENCH_hotpath.ci.json and
#     scripts/bench_diff.py prints the delta against the committed
#     BENCH_hotpath.json, flagging any perf counter more than 35% worse.
#     Regressions are surfaced, never fatal (CI machines differ too much
#     for a hard throughput gate);
#   * perf_protocols --preproc does the same for the offline/online phase
#     split against BENCH_preproc.json — and its built-in >= 3x
#     online-vs-inline check on gmw_max_4party_8bit fails the perf step
#     itself if the online Beaver path ever degenerates to inline speed.
#   * perf_protocols --bitslice does the same for the bit-sliced execution
#     path against BENCH_bitslice.json — its built-in checks (sliced
#     bit-identical to scalar, >= 10x runs/sec on gmw_millionaires_16,
#     deterministic sequential stop) fail the perf step itself if the
#     64-runs-per-word path ever degenerates to scalar speed.
#   * perf_protocols --zoo does the same for the protocol-zoo families
#     (E21/E22: round-sampling 1/p exchange, escrowed penalty exchange)
#     against BENCH_zoo.json — its built-in checks (1/p saturation, the
#     deposit flip, the at_least_as_fair ordering) fail the perf step
#     itself if a zoo protocol's fairness story breaks at bench scale.
#   * scripts/loadtest.py replays the full fairbenchd request mix, writes
#     BENCH_service.ci.json, and scripts/bench_diff.py prints the latency/
#     throughput delta against the committed BENCH_service.json (50%
#     threshold — service latency is the noisiest counter CI measures).
#
# Usage: scripts/ci.sh [extra ctest -R regex]
set -euo pipefail
cd "$(dirname "$0")/.."

# --- gating lint + analyze stage ---------------------------------------------
scripts/lint.sh
echo "lint + analyze gate passed"

cmake --preset tsan
cmake --build --preset tsan -j "$(nproc)" --target fairsfe_tests
if [[ $# -ge 1 ]]; then
  ctest --test-dir build-tsan -R "$1" --output-on-failure -j "$(nproc)"
  echo "tsan gate passed (-R $1)"
else
  ctest --test-dir build-tsan -L tier1 --output-on-failure -j "$(nproc)"
  echo "tsan gate passed (-L tier1)"
fi

# --- non-gating perf + experiment smoke --------------------------------------
if cmake -S . -B build-perf -DCMAKE_BUILD_TYPE=Release >/dev/null 2>&1 &&
   cmake --build build-perf -j "$(nproc)" --target perf_protocols \
         --target fairbench --target fairbenchd >/dev/null 2>&1; then
  SCENARIOS=$(./build-perf/fairbench --list | tail -1)
  echo "fairbench --list: ${SCENARIOS}"
  case "${SCENARIOS}" in
    0\ scenarios*) echo "registry is empty — scenario TUs dropped?"; exit 1 ;;
  esac

  # --- gating daemon smoke ----------------------------------------------------
  # Spawn fairbenchd on a unix socket, drive a small concurrent request mix,
  # SIGTERM it, and require a clean drain (exit 0) with every request
  # answered — loadtest.py exits non-zero on any error event, missing
  # answer, or unclean shutdown. Small mix: this gates correctness of the
  # service path, not its throughput (that is the non-gating diff below).
  python3 scripts/loadtest.py --daemon build-perf/fairbenchd \
      --requests 8 --connections 2 --runs 32
  echo "daemon smoke passed"

  ./build-perf/fairbench --filter smoke --runs 32 ||
    echo "experiment smoke deviation (non-gating; 32 runs is noisy)"
  ./build-perf/bench/perf_protocols --profile --json BENCH_hotpath.ci.json 500 || true
  if [[ -f BENCH_hotpath.json && -f BENCH_hotpath.ci.json ]]; then
    python3 scripts/bench_diff.py --fail-above 35 \
        BENCH_hotpath.json BENCH_hotpath.ci.json ||
      echo "perf smoke regression (non-gating)"
  fi
  ./build-perf/bench/perf_protocols --preproc --json BENCH_preproc.ci.json 500 ||
    echo "preproc speedup check failed (online phase slower than 3x inline)"
  if [[ -f BENCH_preproc.json && -f BENCH_preproc.ci.json ]]; then
    python3 scripts/bench_diff.py --fail-above 35 \
        BENCH_preproc.json BENCH_preproc.ci.json ||
      echo "preproc perf regression (non-gating)"
  fi
  ./build-perf/bench/perf_protocols --bitslice --json BENCH_bitslice.ci.json ||
    echo "bitslice check failed (sliced != scalar, speedup < 10x, or stop drift)"
  if [[ -f BENCH_bitslice.json && -f BENCH_bitslice.ci.json ]]; then
    python3 scripts/bench_diff.py --fail-above 35 \
        BENCH_bitslice.json BENCH_bitslice.ci.json ||
      echo "bitslice perf regression (non-gating)"
  fi
  ./build-perf/bench/perf_protocols --zoo --json BENCH_zoo.ci.json ||
    echo "zoo check failed (1/p saturation, deposit flip, or ordering broke)"
  if [[ -f BENCH_zoo.json && -f BENCH_zoo.ci.json ]]; then
    python3 scripts/bench_diff.py --fail-above 35 \
        BENCH_zoo.json BENCH_zoo.ci.json ||
      echo "zoo perf regression (non-gating)"
  fi
  python3 scripts/loadtest.py --daemon build-perf/fairbenchd \
      --out BENCH_service.ci.json ||
    echo "service loadtest failed (non-gating at full mix)"
  if [[ -f BENCH_service.json && -f BENCH_service.ci.json ]]; then
    python3 scripts/bench_diff.py --fail-above 50 \
        BENCH_service.json BENCH_service.ci.json ||
      echo "service latency regression (non-gating)"
  fi
else
  echo "perf smoke skipped (Release build unavailable)"
fi
