#!/usr/bin/env bash
# CI gate for the parallel Monte-Carlo estimation engine: build the tsan
# preset and run the scheduling-independence tests (test_estimator_parallel
# plus the hot-path golden tests, which exercise the shared CompiledCircuit
# and mailbox delivery) under ThreadSanitizer, so data races in the
# estimator/thread-pool/plan-cache layer fail the build rather than silently
# perturbing estimates.
#
# Afterwards, a non-gating perf smoke: a Release build of perf_protocols
# --profile writes BENCH_hotpath.ci.json and scripts/bench_diff.py prints the
# delta against the committed BENCH_hotpath.json. Regressions are surfaced,
# never fatal (CI machines differ too much for a hard throughput gate).
#
# Usage: scripts/ci.sh [extra ctest -R regex]
set -euo pipefail
cd "$(dirname "$0")/.."

FILTER="${1:-EstimatorParallel|ThreadPool|RngForkAt|Hotpath}"

cmake --preset tsan
cmake --build --preset tsan -j "$(nproc)" --target fairsfe_tests
ctest --test-dir build-tsan -R "${FILTER}" --output-on-failure -j "$(nproc)"

echo "tsan gate passed (${FILTER})"

# --- non-gating hot-path perf smoke -----------------------------------------
if cmake -S . -B build-perf -DCMAKE_BUILD_TYPE=Release >/dev/null 2>&1 &&
   cmake --build build-perf -j "$(nproc)" --target perf_protocols >/dev/null 2>&1; then
  ./build-perf/bench/perf_protocols --profile --json BENCH_hotpath.ci.json 500 || true
  if [[ -f BENCH_hotpath.json && -f BENCH_hotpath.ci.json ]]; then
    python3 scripts/bench_diff.py BENCH_hotpath.json BENCH_hotpath.ci.json || true
  fi
else
  echo "perf smoke skipped (Release build unavailable)"
fi
