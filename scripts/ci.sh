#!/usr/bin/env bash
# CI gate for the parallel Monte-Carlo estimation engine: build the tsan
# preset and run the scheduling-independence tests (test_estimator_parallel
# plus the hot-path golden tests, which exercise the shared CompiledCircuit
# and mailbox delivery, plus the fault-injection suites, which exercise the
# injector/timeout/crash paths under the same thread-count invariance
# contract) under ThreadSanitizer, so data races in the estimator/thread-pool/
# plan-cache/fault layer fail the build rather than silently perturbing
# estimates.
#
# Afterwards, a non-gating perf smoke: a Release build of perf_protocols
# --profile writes BENCH_hotpath.ci.json and scripts/bench_diff.py prints the
# delta against the committed BENCH_hotpath.json, flagging any perf counter
# more than 35% worse. Regressions are surfaced, never fatal (CI machines
# differ too much for a hard throughput gate). The fault-tolerance experiment
# (exp18) also runs at a tiny run count as a smoke check of the sweep
# harness.
#
# Usage: scripts/ci.sh [extra ctest -R regex]
set -euo pipefail
cd "$(dirname "$0")/.."

FILTER="${1:-EstimatorParallel|ThreadPool|RngForkAt|Hotpath|Fault}"

cmake --preset tsan
cmake --build --preset tsan -j "$(nproc)" --target fairsfe_tests
ctest --test-dir build-tsan -R "${FILTER}" --output-on-failure -j "$(nproc)"

echo "tsan gate passed (${FILTER})"

# --- non-gating perf + fault smoke ------------------------------------------
if cmake -S . -B build-perf -DCMAKE_BUILD_TYPE=Release >/dev/null 2>&1 &&
   cmake --build build-perf -j "$(nproc)" --target perf_protocols \
         --target exp18_fault_tolerance >/dev/null 2>&1; then
  ./build-perf/bench/perf_protocols --profile --json BENCH_hotpath.ci.json 500 || true
  if [[ -f BENCH_hotpath.json && -f BENCH_hotpath.ci.json ]]; then
    python3 scripts/bench_diff.py --fail-above 35 \
        BENCH_hotpath.json BENCH_hotpath.ci.json ||
      echo "perf smoke regression (non-gating)"
  fi
  ./build-perf/bench/exp18_fault_tolerance 120 --json BENCH_fault.ci.json ||
    echo "fault smoke deviation (non-gating; 120 runs is noisy)"
else
  echo "perf smoke skipped (Release build unavailable)"
fi
