"""fairsfe-analyze — cross-TU dataflow static analysis for the fairsfe tree.

Where fairsfe-lint (scripts/fairsfe_lint.py) matches single lines against
regexes, this package runs a real (if lightweight) analysis pipeline:

  1. tokenizer.py   a genuine C++ tokenizer (raw strings, digit separators,
                    nested templates, comments) producing (kind, text, line,
                    col) tokens;
  2. tu.py          a per-translation-unit structural pass over the token
                    stream: function/scope tracking, statement-level flow
                    facts, Rng fork/draw events, message-kind call sites,
                    taint-source annotations, struct field tables;
  3. analyses.py    three global analyses over the merged per-TU facts:
                    Rng stream lineage, secret-flow taint, and message-schema
                    conformance;
  4. driver.py      compile_commands-aware TU collection, a content-hash
                    result cache, parallel extraction, LINT-ALLOW /
                    DECLASSIFY handling, and text/JSON/SARIF output.

The contracts enforced are the ones every number this reproduction reports
rests on: pairwise-independent forked Rng streams, secrets never reaching
transcripts/logs/wire frames unmasked, and sender/receiver agreement on
message kinds (DESIGN.md §14).
"""

ANALYZER_NAME = "fairsfe-analyze"
# Bump whenever extraction or analysis semantics change: the version is part
# of the per-TU cache key, so stale facts can never survive an upgrade.
ANALYZER_VERSION = "1.0.0"
