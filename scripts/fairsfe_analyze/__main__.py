"""Entry point: `python3 scripts/fairsfe_analyze/__main__.py` or
`python3 -m fairsfe_analyze` with scripts/ on PYTHONPATH."""

import os
import sys

sys.path.insert(0, os.path.dirname(os.path.abspath(__file__)))

from driver import main  # noqa: E402

if __name__ == "__main__":
    sys.exit(main())
