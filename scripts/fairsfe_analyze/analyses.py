"""Global analyses over merged per-TU facts.

Three analyses, each a pure function from a list of TU facts dicts
(tu.extract_facts output) to findings:

  lineage     Rng stream lineage: the global fork-label graph, duplicate
              labels under one parent, un-indexed fork() in loops, and
              parent-stream draws after a child fork (protocol layers only);
  taint       secret-flow taint: forward propagation from TAINT-SOURCE
              declarations to transcript/log/wire/check sinks, untainted by
              masking XOR or DECLASSIFY;
  schema      message-schema conformance: kinds encoded but never decoded
              (and vice versa), plus the Frame⊇Message field cross-check.

A finding is {"rule", "path", "line", "col", "message"}. LINT-ALLOW
filtering and unused-allow detection live in driver.py so both text and
SARIF output see the same post-suppression stream.
"""

# Layer scopes (relpath prefixes). The lineage draw-after-fork rule and the
# taint rules only fire in the layers whose determinism/secrecy contracts the
# estimates rest on; fixtures are mapped under src/ by the self-test harness.
PROTOCOL_DIRS = ("src/sim/", "src/mpc/", "src/fair/", "src/adversary/")
TAINT_DIRS = ("src/",)

# Hand-maintained kind aliases: encode_frame's body is split from
# decode_frame_body in src/net/wire.*, but both speak the same frame schema.
KIND_ALIASES = {"frame_body": "frame"}

# Kinds whose decode side is a Reader loop rather than a decode_<kind>()
# helper get an `// ANALYZE-HANDLES(kind)` annotation at the parse site; the
# annotation is the structured equivalent of a decode call.

RULES = [
    ("rng-label-collision",
     "two fork sites derive the same (parent, label[, index]) stream",
     "src"),
    ("rng-fork-in-loop",
     "fork() in a loop body without fork_at(label, i) indexing",
     "src"),
    ("rng-draw-after-fork",
     "draw from a parent stream after a child fork",
     "src/sim|mpc|fair|adversary"),
    ("secret-to-transcript",
     "tainted value reaches a transcript without mask/DECLASSIFY",
     "src"),
    ("secret-to-log",
     "tainted value reaches stdout/stderr/printf without mask/DECLASSIFY",
     "src"),
    ("secret-to-wire",
     "tainted value reaches a net:: frame writer without mask/DECLASSIFY",
     "src"),
    ("secret-to-check",
     "tainted value interpolated into a FAIRSFE_CHECK message",
     "src"),
    ("orphan-message-kind",
     "message kind encoded but never decoded, or decoded but never encoded",
     "src"),
    ("wire-schema-drift",
     "sim::Message field missing from net::Frame",
     "src/net + src/sim"),
    ("unused-declassify",
     "DECLASSIFY marker on a line with no tainted sink",
     "src"),
]
RULE_NAMES = {r[0] for r in RULES}


def _finding(rule, path, line, col, message):
    return {"rule": rule, "path": path, "line": line, "col": col,
            "message": message}


def _in_dirs(path, dirs):
    return any(path.startswith(d) for d in dirs)


# ---------------------------------------------------------------------------
# 1. Rng stream lineage
# ---------------------------------------------------------------------------

def build_fork_graph(facts_list):
    """Global fork-label graph.

    Nodes are streams: the root of each TU-function's parent expressions plus
    one node per fork site. Edges go parent -> child, labelled with the fork
    label and kind. Collisions: two *distinct* sites deriving the same
    (scope, parent, label) where the derivation cannot be disambiguated —
    both plain fork() (stream identity then depends on call order), or both
    fork_at() with the same literal index.
    """
    nodes = {}
    edges = []
    sites = {}  # (path, fn, parent, label) -> [fork event + path/fn]
    for facts in facts_list:
        path = facts["relpath"]
        for fn in facts["functions"]:
            for fk in fn["forks"]:
                parent_key = "%s:%s:%s" % (path, fn["name"], fk["parent"])
                child_name = fk["target"] or "%s@%d" % (fk["label"] or "?",
                                                        fk["line"])
                child_key = "%s:%s:%s" % (path, fn["name"], child_name)
                nodes.setdefault(parent_key, {"path": path, "fn": fn["name"],
                                              "var": fk["parent"]})
                nodes.setdefault(child_key, {"path": path, "fn": fn["name"],
                                             "var": child_name})
                edges.append({
                    "parent": parent_key, "child": child_key,
                    "label": fk["label"], "kind": fk["kind"],
                    "index_lit": fk["index_lit"], "line": fk["line"],
                    "col": fk["col"], "path": path,
                })
                if fk["label"] is not None:
                    # Keyed by the parent's declaration scope id, so a fresh
                    # `Rng rng(seed)` in each of several sibling blocks (or
                    # lambdas) never reads as one shared stream.
                    key = (path, fn["name"], fk["parent"],
                           fk.get("psid", -1), fk["label"])
                    sites.setdefault(key, []).append(dict(fk, path=path,
                                                          fn=fn["name"]))
    collisions = []
    for key, evts in sites.items():
        lines = {e["line"] for e in evts}
        if len(lines) < 2:
            continue
        plain = [e for e in evts if e["kind"] == "fork"]
        if len({e["line"] for e in plain}) >= 2:
            collisions.append({"key": key, "events": plain,
                               "why": "two fork() sites share the label; "
                                      "stream identity depends on call order"})
            continue
        by_index = {}
        for e in evts:
            if e["kind"] == "fork_at" and e["index_lit"] is not None and \
                    not e["index_idents"]:
                by_index.setdefault(e["index_lit"], []).append(e)
        for idx, same in by_index.items():
            if len({e["line"] for e in same}) >= 2:
                collisions.append({"key": key, "events": same,
                                   "why": "two fork_at() sites use literal "
                                          "index %s" % idx})
    return {"nodes": nodes, "edges": edges, "collisions": collisions}


def analyze_lineage(facts_list):
    findings = []
    graph = build_fork_graph(facts_list)
    for coll in graph["collisions"]:
        path, fn, parent = coll["key"][0], coll["key"][1], coll["key"][2]
        label = coll["key"][-1]
        if not path.startswith("src/"):
            continue  # tests/bench build ad-hoc streams; goldens pin src only
        evts = sorted(coll["events"], key=lambda e: e["line"])
        first = evts[0]
        others = ", ".join("line %d" % e["line"] for e in evts[1:])
        findings.append(_finding(
            "rng-label-collision", path, first["line"], first["col"],
            'duplicate stream derivation %s.fork*("%s") in %s() (also at %s): '
            "%s" % (parent, label, fn, others, coll["why"])))

    for facts in facts_list:
        path = facts["relpath"]
        if not path.startswith("src/"):
            continue
        for fn in facts["functions"]:
            # fork() in a loop whose parent survives across iterations: every
            # iteration advances the same counter, so stream identity depends
            # on iteration order/count. fork_at(label, i) states the index.
            for fk in fn["forks"]:
                if fk["kind"] == "fork" and fk["in_loop"] and \
                        not fk["parent_local_to_loop"]:
                    findings.append(_finding(
                        "rng-fork-in-loop", path, fk["line"], fk["col"],
                        '%s.fork("%s") inside a loop in %s(): use '
                        'fork_at("%s", i) so the stream index is explicit '
                        "and iteration-order independent"
                        % (fk["parent"], fk["label"], fn["name"],
                           fk["label"])))
            # Draws from a parent after a child fork (protocol layers): the
            # parent's draw stream and its children interleave, so reordering
            # the fork silently reshuffles every downstream sample.
            if not _in_dirs(path, PROTOCOL_DIRS):
                continue
            first_fork = {}
            for fk in fn["forks"]:
                p = (fk["parent"], fk.get("psid", -1))
                if p not in first_fork or fk["line"] < first_fork[p]["line"]:
                    first_fork[p] = fk
            for dr in fn["draws"]:
                fk = first_fork.get((dr["parent"], dr.get("psid", -1)))
                if fk is not None and dr["line"] > fk["line"]:
                    findings.append(_finding(
                        "rng-draw-after-fork", path, dr["line"], dr["col"],
                        "%s.%s() in %s() draws from a stream already forked "
                        'at line %d (fork "%s"): draw before forking, or '
                        "fork a dedicated child for these draws"
                        % (dr["parent"], dr["method"], fn["name"],
                           fk["line"], fk["label"])))
    return findings


# ---------------------------------------------------------------------------
# 2. Secret-flow taint
# ---------------------------------------------------------------------------

_SINK_RULE = {"transcript": "secret-to-transcript", "log": "secret-to-log",
              "wire": "secret-to-wire", "check": "secret-to-check"}


def _collect_sources(facts_list):
    types, funcs, members = {}, {}, {}
    for facts in facts_list:
        for src in facts["taint_sources"]:
            subj = src["subject"]
            if subj is None:
                continue
            dst = {"type": types, "func": funcs, "member": members}[src["kind"]]
            dst[subj] = src["category"]
    return types, funcs, members


def analyze_taint(facts_list):
    findings = []
    types, funcs, members = _collect_sources(facts_list)
    for facts in facts_list:
        path = facts["relpath"]
        if not _in_dirs(path, TAINT_DIRS):
            continue
        declassified = {d["target"]: d for d in facts["declassify"]}
        declassify_used = set()
        for fn in facts["functions"]:
            tainted = {}  # var -> category
            for typ, var in fn.get("params", []):
                if typ in types:
                    tainted[var] = types[typ]
                if var in members:
                    tainted[var] = members[var]
            # Forward propagation to fixpoint (loops feed taint backwards).
            for _round in range(4):
                changed = False
                for st in fn["stmts"]:
                    changed |= _propagate(st, tainted, types, funcs, members)
                if not changed:
                    break
            # Sink pass with fresh positional state so a taint introduced
            # *after* a sink (later loop iterations aside) does not flag it.
            state = dict((v, c) for v, c in tainted.items())
            for st in fn["stmts"]:
                for sink in st["sinks"]:
                    hot = sorted(v for v in sink["args"] if v in state)
                    if not hot or st["xor"]:
                        continue
                    if st["line"] in declassified:
                        declassify_used.add(st["line"])
                        continue
                    cat = state[hot[0]]
                    findings.append(_finding(
                        _SINK_RULE[sink["sink"]], path, sink["line"],
                        sink["col"],
                        "%s value `%s` reaches %s sink in %s() without a "
                        "masking XOR or DECLASSIFY(reason)"
                        % (cat, hot[0], sink["sink"], fn["name"])))
        for target, d in sorted(declassified.items()):
            if target not in declassify_used:
                findings.append(_finding(
                    "unused-declassify", path, d["line"], 1,
                    "DECLASSIFY(%s) marks line %d but no tainted value "
                    "reaches a sink there" % (d["reason"], target)))
    return findings


def _propagate(st, tainted, types, funcs, members):
    """One forward step over a statement; returns True if taint set grew."""
    changed = False
    decl = st["decl"]
    target = st["assign_to"]
    rhs_idents = set(st["idents"])
    if target:
        rhs_idents.discard(target)

    newly = None
    if decl and decl[0] in types:
        newly = types[decl[0]]
    if target and target in members:
        # `key_ = ...` keeps member sources tainted wherever assigned.
        newly = members[target]
    for name in st["calls"]:
        if name in funcs:
            newly = funcs[name]
    for _recv, meth, _args in st["recv_calls"]:
        if meth in funcs:
            newly = funcs[meth]
    hot = [v for v in rhs_idents if v in tainted or v in members]
    if newly is None and hot and target:
        if st["xor"]:
            return changed  # masking XOR launders the assigned value
        v = hot[0]
        newly = tainted.get(v) or members.get(v)
    # Bare member reads taint the member name itself so sink args match.
    for v in rhs_idents & set(members):
        if v not in tainted:
            tainted[v] = members[v]
            changed = True
    if newly is not None and target and tainted.get(target) != newly:
        tainted[target] = newly
        changed = True
    return changed


# ---------------------------------------------------------------------------
# 3. Message-schema conformance
# ---------------------------------------------------------------------------

def analyze_schema(facts_list):
    findings = []
    encoded = {}  # kind -> first call site (path, line, col)
    decoded = set()
    handled = set()
    for facts in facts_list:
        path = facts["relpath"]
        for site in facts["kinds"]:
            if not site["is_call"]:
                continue
            kind = KIND_ALIASES.get(site["kind"], site["kind"])
            if site["role"] == "encode":
                encoded.setdefault(kind, (path, site["line"], site["col"]))
            else:
                decoded.add(kind)
        for h in facts["handles"]:
            handled.add(KIND_ALIASES.get(h["kind"], h["kind"]))
        for e in facts.get("emits", []):
            kind = KIND_ALIASES.get(e["kind"], e["kind"])
            encoded.setdefault(kind, (path, e["line"], 1))
    decode_sites = {}
    for facts in facts_list:
        for site in facts["kinds"]:
            if site["is_call"] and site["role"] == "decode":
                kind = KIND_ALIASES.get(site["kind"], site["kind"])
                decode_sites.setdefault(
                    kind, (facts["relpath"], site["line"], site["col"]))
    for kind, (path, line, col) in sorted(encoded.items()):
        if kind not in decoded and kind not in handled:
            findings.append(_finding(
                "orphan-message-kind", path, line, col,
                'message kind "%s" is encoded here but no counterpart ever '
                "decodes it (no decode_%s() call or ANALYZE-HANDLES(%s) "
                "site)" % (kind, kind, kind)))
    for kind, (path, line, col) in sorted(decode_sites.items()):
        if kind not in encoded and kind not in handled:
            findings.append(_finding(
                "orphan-message-kind", path, line, col,
                'message kind "%s" is decoded here but nothing ever encodes '
                "it (no encode_%s() call)" % (kind, kind)))

    # Frame ⊇ Message field cross-check: every sim::Message field must have a
    # carrying Frame field, or shares ride the wire without a schema slot.
    msg_fields, msg_path = None, None
    frame_fields = None
    for facts in facts_list:
        cls = facts["classes"]
        if "Message" in cls and facts["relpath"].startswith("src/sim/"):
            msg_fields, msg_path = cls["Message"], facts["relpath"]
        if "Frame" in cls and facts["relpath"].startswith("src/net/"):
            frame_fields = {f for f, _ in cls["Frame"]}
    if msg_fields is not None and frame_fields is not None:
        for field, line in msg_fields:
            if field not in frame_fields:
                findings.append(_finding(
                    "wire-schema-drift", msg_path, line, 1,
                    "sim::Message field `%s` has no corresponding net::Frame "
                    "field: the wire schema cannot carry it" % field))
    return findings


def run_all(facts_list):
    findings = []
    findings.extend(analyze_lineage(facts_list))
    findings.extend(analyze_taint(facts_list))
    findings.extend(analyze_schema(facts_list))
    findings.sort(key=lambda f: (f["path"], f["line"], f["col"], f["rule"]))
    return findings
