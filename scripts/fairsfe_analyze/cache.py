"""Content-hash result cache for per-TU facts.

Key = sha256(relpath, analyzer version, file bytes). The analyzer version is
baked into the key (not checked at load time) so an upgraded analyzer simply
misses and re-extracts — stale facts can never be served. Values are the JSON
facts dicts from tu.extract_facts, one file per key, written atomically so a
crashed run never leaves a truncated entry behind.
"""

import hashlib
import json
import os
import tempfile

try:
    from __init__ import ANALYZER_VERSION  # flat-module layout (sys.path)
except ImportError:  # imported as a package
    from fairsfe_analyze import ANALYZER_VERSION


def key_for(relpath, text):
    h = hashlib.sha256()
    h.update(relpath.encode("utf-8"))
    h.update(b"\0")
    h.update(ANALYZER_VERSION.encode("ascii"))
    h.update(b"\0")
    h.update(text.encode("utf-8", "surrogateescape"))
    return h.hexdigest()


class FactsCache:
    def __init__(self, cache_dir):
        self.dir = cache_dir
        self.hits = 0
        self.misses = 0
        if cache_dir:
            os.makedirs(cache_dir, exist_ok=True)

    def _path(self, key):
        return os.path.join(self.dir, key[:2], key + ".json")

    def get(self, key):
        if not self.dir:
            return None
        try:
            with open(self._path(key), encoding="utf-8") as f:
                facts = json.load(f)
            self.hits += 1
            return facts
        except (OSError, ValueError):
            self.misses += 1
            return None

    def put(self, key, facts):
        if not self.dir:
            return
        path = self._path(key)
        os.makedirs(os.path.dirname(path), exist_ok=True)
        fd, tmp = tempfile.mkstemp(dir=os.path.dirname(path), suffix=".tmp")
        try:
            with os.fdopen(fd, "w", encoding="utf-8") as f:
                json.dump(facts, f, separators=(",", ":"))
            os.replace(tmp, path)
        except OSError:
            try:
                os.unlink(tmp)
            except OSError:
                pass
