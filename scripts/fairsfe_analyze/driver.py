"""fairsfe-analyze driver: TU collection, caching, parallelism, output.

Pipeline per run:

  1. collect the TU set — translation units named by compile_commands.json
     (when given) plus every header under the scan roots, so facts from
     header-only types (Frame, Message, AuthShare2) participate;
  2. extract per-TU facts, served from the content-hash cache when the file
     is unchanged, farmed out to a process pool otherwise;
  3. run the three global analyses (analyses.py) over the merged facts;
  4. apply LINT-ALLOW suppressions (analyzer rules only — fairsfe-lint owns
     its own), emit unused-allow / allow-missing-reason findings;
  5. render text / json / sarif.

Exit status: 0 clean, 1 findings, 2 usage/environment errors.
"""

import argparse
import json
import multiprocessing
import os
import subprocess
import sys

sys.path.insert(0, os.path.dirname(os.path.abspath(__file__)))

from __init__ import ANALYZER_NAME, ANALYZER_VERSION  # noqa: E402
import analyses  # noqa: E402
import sarif  # noqa: E402
import tu  # noqa: E402
from cache import FactsCache, key_for  # noqa: E402

CPP_EXTENSIONS = (".h", ".hh", ".hpp", ".cc", ".cpp", ".cxx")
SCAN_ROOTS = ("src", "bench", "examples", "tests")
FIXTURE_SUBDIR = os.path.join("scripts", "lint_fixtures", "analyze")


def collect_files(root, compile_commands):
    """TU set: compile_commands entries (if given) + walked sources/headers."""
    files = set()
    have_cc = False
    if compile_commands:
        try:
            with open(compile_commands, encoding="utf-8") as f:
                for entry in json.load(f):
                    p = os.path.normpath(
                        os.path.join(entry.get("directory", root), entry["file"]))
                    if p.endswith(CPP_EXTENSIONS) and os.path.isfile(p):
                        rel = os.path.relpath(p, root)
                        if not rel.startswith(".."):
                            files.add(rel)
            have_cc = True
        except (OSError, ValueError, KeyError) as e:
            print("fairsfe-analyze: warning: cannot read %s: %s; falling back "
                  "to a directory walk" % (compile_commands, e),
                  file=sys.stderr)
    for scan_root in SCAN_ROOTS:
        base = os.path.join(root, scan_root)
        for dirpath, dirnames, filenames in os.walk(base):
            dirnames[:] = sorted(d for d in dirnames if not d.startswith("."))
            for name in sorted(filenames):
                if have_cc and not name.endswith((".h", ".hh", ".hpp")):
                    continue  # TU set comes from compile_commands
                if name.endswith(CPP_EXTENSIONS):
                    files.add(os.path.relpath(
                        os.path.join(dirpath, name), root))
    return sorted(f.replace(os.sep, "/") for f in files)


def _extract_worker(item):
    relpath, text = item
    return tu.extract_facts(relpath, text)


def extract_all(root, rels, cache, jobs):
    """Facts for every TU, cache-first, misses in parallel."""
    facts_by_rel = {}
    misses = []
    for rel in rels:
        path = os.path.join(root, rel)
        try:
            with open(path, encoding="utf-8", errors="replace") as f:
                text = f.read()
        except OSError as e:
            print("fairsfe-analyze: warning: cannot read %s: %s" % (rel, e),
                  file=sys.stderr)
            continue
        key = key_for(rel, text)
        facts = cache.get(key)
        if facts is not None:
            facts_by_rel[rel] = facts
        else:
            misses.append((rel, text, key))
    if misses:
        items = [(rel, text) for rel, text, _ in misses]
        if jobs > 1 and len(items) > 1:
            with multiprocessing.Pool(jobs) as pool:
                results = pool.map(_extract_worker, items, chunksize=4)
        else:
            results = [_extract_worker(it) for it in items]
        for (rel, _text, key), facts in zip(misses, results):
            facts_by_rel[rel] = facts
            cache.put(key, facts)
    return [facts_by_rel[rel] for rel in sorted(facts_by_rel)]


def apply_allows(findings, facts_list):
    """Suppress findings covered by LINT-ALLOW(analyzer-rule): reason, then
    report unused/naked allows. Lint-rule allows are left to fairsfe-lint."""
    allow_map = {}  # (path, line, rule) -> entry {used, reason, line}
    entries = []
    for facts in facts_list:
        path = facts["relpath"]
        for target, lst in facts["allows"].items():
            for rule, reason, lineno in lst:
                if rule not in analyses.RULE_NAMES:
                    continue
                e = {"path": path, "target": int(target), "rule": rule,
                     "reason": reason, "line": lineno, "used": False}
                allow_map[(path, int(target), rule)] = e
                entries.append(e)
    kept = []
    for f in findings:
        e = allow_map.get((f["path"], f["line"], f["rule"]))
        if e is not None and e["reason"]:
            e["used"] = True
            continue
        kept.append(f)
    for e in entries:
        if not e["reason"]:
            kept.append({"rule": "allow-missing-reason", "path": e["path"],
                         "line": e["line"], "col": 1,
                         "message": "LINT-ALLOW(%s) must carry a reason "
                                    "after the colon" % e["rule"]})
        elif not e["used"]:
            kept.append({"rule": "unused-allow", "path": e["path"],
                         "line": e["line"], "col": 1,
                         "message": "LINT-ALLOW(%s) suppresses nothing on "
                                    "line %d — remove it"
                                    % (e["rule"], e["target"])})
    kept.sort(key=lambda f: (f["path"], f["line"], f["col"], f["rule"]))
    return kept


def run_analysis(root, compile_commands, cache, jobs, only_files=None):
    rels = collect_files(root, compile_commands)
    facts_list = extract_all(root, rels, cache, jobs)
    findings = apply_allows(analyses.run_all(facts_list), facts_list)
    if only_files is not None:
        keep = {f.replace(os.sep, "/") for f in only_files}
        findings = [f for f in findings if f["path"] in keep]
    return findings, len(facts_list)


def changed_files(root):
    """Files changed vs. the merge-base with the default branch + worktree."""
    def git(*args):
        return subprocess.run(["git", "-C", root] + list(args),
                              capture_output=True, text=True)
    base = None
    for ref in ("origin/main", "main"):
        r = git("merge-base", "HEAD", ref)
        if r.returncode == 0:
            base = r.stdout.strip()
            break
    names = set()
    if base:
        r = git("diff", "--name-only", base, "HEAD")
        if r.returncode == 0:
            names.update(r.stdout.split())
    r = git("diff", "--name-only", "HEAD")
    if r.returncode == 0:
        names.update(r.stdout.split())
    r = git("ls-files", "--others", "--exclude-standard")
    if r.returncode == 0:
        names.update(r.stdout.split())
    return sorted(n for n in names if n.endswith(CPP_EXTENSIONS))


# ---------------------------------------------------------------------------
# Fixture self-test
# ---------------------------------------------------------------------------

def run_self_test(root):
    """Each immediate subdirectory of scripts/lint_fixtures/analyze/ is one
    analysis universe; file paths inside it are mapped under src/ so layer
    scoping applies (analyze/loop_fork/mpc/a.cc analyzes as src/mpc/a.cc).
    Findings must equal the EXPECT(rule) markers exactly."""
    import re
    expect_re = re.compile(r"EXPECT\((?P<rule>[a-z-]+)\)")
    fixture_root = os.path.join(root, FIXTURE_SUBDIR)
    if not os.path.isdir(fixture_root):
        print("SELF-TEST FAIL: no fixtures under %s" % fixture_root)
        return 1
    failures = 0
    universes = 0
    for uni in sorted(os.listdir(fixture_root)):
        uni_dir = os.path.join(fixture_root, uni)
        if not os.path.isdir(uni_dir):
            continue
        facts_list = []
        expected = set()
        for dirpath, dirnames, filenames in os.walk(uni_dir):
            dirnames.sort()
            for name in sorted(filenames):
                if not name.endswith(CPP_EXTENSIONS):
                    continue
                path = os.path.join(dirpath, name)
                rel = os.path.relpath(path, uni_dir).replace(os.sep, "/")
                pretend = "src/" + rel
                with open(path, encoding="utf-8") as f:
                    text = f.read()
                for lineno, line in enumerate(text.split("\n"), start=1):
                    for m in expect_re.finditer(line):
                        expected.add((pretend, lineno, m.group("rule")))
                facts_list.append(tu.extract_facts(pretend, text))
        if not facts_list:
            continue
        universes += 1
        findings = apply_allows(analyses.run_all(facts_list), facts_list)
        got = {(f["path"], f["line"], f["rule"]) for f in findings}
        for path, lineno, rule in sorted(expected - got):
            print("SELF-TEST FAIL %s/%s:%d: expected [%s], not flagged"
                  % (uni, path, lineno, rule))
            failures += 1
        for path, lineno, rule in sorted(got - expected):
            print("SELF-TEST FAIL %s/%s:%d: unexpected [%s]"
                  % (uni, path, lineno, rule))
            failures += 1
    if universes == 0:
        print("SELF-TEST FAIL: no fixture universes under %s" % fixture_root)
        return 1
    if failures:
        print("fairsfe-analyze self-test: %d failure(s) over %d universes"
              % (failures, universes))
        return 1
    print("fairsfe-analyze self-test: OK (%d universes)" % universes)
    return 0


# ---------------------------------------------------------------------------
# CLI
# ---------------------------------------------------------------------------

def main(argv=None):
    ap = argparse.ArgumentParser(
        prog=ANALYZER_NAME,
        description=__doc__,
        formatter_class=argparse.RawDescriptionHelpFormatter,
        allow_abbrev=False,
        epilog="examples:\n"
               "  python3 scripts/fairsfe_analyze/__main__.py "
               "--compile-commands build-lint/compile_commands.json\n"
               "  python3 scripts/fairsfe_analyze/__main__.py --self-test\n"
               "  python3 scripts/fairsfe_analyze/__main__.py "
               "--changed-only --format sarif\n")
    ap.add_argument("--root", default=None,
                    help="repository root (default: grandparent of this file)")
    ap.add_argument("--compile-commands", default=None, metavar="JSON",
                    help="compile_commands.json to take the TU set from")
    ap.add_argument("--format", choices=("text", "json", "sarif"),
                    default="text", help="output format (default: text)")
    ap.add_argument("--jobs", type=int, default=0,
                    help="worker processes (default: cpu count)")
    ap.add_argument("--cache-dir", default=None,
                    help="facts cache directory "
                         "(default: <root>/build-lint/fairsfe-analyze-cache)")
    ap.add_argument("--no-cache", action="store_true",
                    help="bypass the facts cache entirely")
    ap.add_argument("--changed-only", action="store_true",
                    help="report findings only for files changed vs. the "
                         "merge-base (facts still come from the whole tree)")
    ap.add_argument("--self-test", action="store_true",
                    help="run the analyze fixture corpus")
    ap.add_argument("--list-rules", action="store_true")
    ap.add_argument("files", nargs="*",
                    help="report findings only for these files")
    args = ap.parse_args(argv)

    root = os.path.abspath(args.root or os.path.join(
        os.path.dirname(os.path.abspath(__file__)), os.pardir, os.pardir))
    if args.list_rules:
        for name, desc, scope in analyses.RULES:
            print("%-24s [%s] %s" % (name, scope, desc))
        return 0
    if args.self_test:
        return run_self_test(root)

    cache_dir = None
    if not args.no_cache:
        cache_dir = args.cache_dir or os.path.join(
            root, "build-lint", "fairsfe-analyze-cache")
    cache = FactsCache(cache_dir)
    jobs = args.jobs or (os.cpu_count() or 1)

    only = None
    if args.changed_only:
        only = changed_files(root)
        if args.files:
            only = sorted(set(only) | {os.path.relpath(
                os.path.abspath(f), root) for f in args.files})
    elif args.files:
        only = [os.path.relpath(os.path.abspath(f), root) for f in args.files]

    findings, n_tus = run_analysis(root, args.compile_commands, cache, jobs,
                                   only_files=only)
    out = sarif.render(findings, args.format, ANALYZER_NAME, ANALYZER_VERSION,
                       analyses.RULES)
    if out:
        print(out)
    if args.format == "text":
        if findings:
            print("fairsfe-analyze: %d finding(s) over %d TUs "
                  "(cache: %d hit, %d miss)"
                  % (len(findings), n_tus, cache.hits, cache.misses))
        else:
            print("fairsfe-analyze: clean (%d TUs; cache: %d hit, %d miss)"
                  % (n_tus, cache.hits, cache.misses))
    return 1 if findings else 0


if __name__ == "__main__":
    sys.exit(main())
