"""Shared machine-readable output: SARIF 2.1.0 and plain JSON.

Used by both fairsfe-analyze (driver.py) and fairsfe-lint (--format) so CI
consumers see one schema. Findings are dicts with rule/path/line/col/message
(col optional for the linter's legacy rules).
"""

import json

SARIF_VERSION = "2.1.0"
SARIF_SCHEMA = ("https://raw.githubusercontent.com/oasis-tcs/sarif-spec/"
                "master/Schemata/sarif-schema-2.1.0.json")


def to_sarif(findings, tool_name, tool_version, rules_meta=None):
    """Build a SARIF 2.1.0 log dict.

    rules_meta: optional iterable of (name, description, scope) used to fill
    the tool.driver.rules table; rules only seen in findings are synthesized.
    """
    rule_index = {}
    rules = []

    def rule_id(name, desc=""):
        if name not in rule_index:
            rule_index[name] = len(rules)
            rules.append({
                "id": name,
                "shortDescription": {"text": desc or name},
            })
        return rule_index[name]

    for name, desc, scope in (rules_meta or []):
        idx = rule_id(name, desc)
        rules[idx]["properties"] = {"scope": scope}

    results = []
    for f in findings:
        region = {"startLine": int(f["line"])}
        col = f.get("col")
        if col:
            region["startColumn"] = int(col)
        results.append({
            "ruleId": f["rule"],
            "ruleIndex": rule_id(f["rule"]),
            "level": "error",
            "message": {"text": f["message"]},
            "locations": [{
                "physicalLocation": {
                    "artifactLocation": {"uri": f["path"]},
                    "region": region,
                },
            }],
        })
    return {
        "$schema": SARIF_SCHEMA,
        "version": SARIF_VERSION,
        "runs": [{
            "tool": {"driver": {
                "name": tool_name,
                "version": tool_version,
                "rules": rules,
            }},
            "results": results,
        }],
    }


def render(findings, fmt, tool_name, tool_version, rules_meta=None):
    """Render findings in `fmt` ∈ {text, json, sarif} to a string."""
    if fmt == "sarif":
        return json.dumps(to_sarif(findings, tool_name, tool_version,
                                   rules_meta), indent=2, sort_keys=True)
    if fmt == "json":
        return json.dumps({"tool": tool_name, "version": tool_version,
                           "findings": findings}, indent=2, sort_keys=True)
    lines = []
    for f in findings:
        col = f.get("col")
        pos = "%s:%d" % (f["path"], f["line"])
        if col:
            pos += ":%d" % col
        lines.append("%s: [%s] %s" % (pos, f["rule"], f["message"]))
    return "\n".join(lines)
