#!/usr/bin/env python3
"""Unit tests for the fairsfe-analyze foundations: the C++ tokenizer and the
cross-TU fork-label graph. Pure Python — wired as a tier1 ctest that runs
without a compiler (see tests/CMakeLists.txt).

Run directly:  python3 scripts/fairsfe_analyze/test_analyzer.py
"""

import os
import sys
import unittest

sys.path.insert(0, os.path.dirname(os.path.abspath(__file__)))

import analyses  # noqa: E402
import tokenizer  # noqa: E402
import tu  # noqa: E402


def kinds_texts(tokens):
    return [(t.kind, t.text) for t in tokens]


class TokenizerTest(unittest.TestCase):
    def test_raw_string_with_delimiter(self):
        # The closing sequence is )xx" — a bare )" inside must not end it.
        src = 'auto s = R"xx(a ")" b\nc)xx";'
        toks = tokenizer.tokenize(src)
        strings = [t for t in toks if t.kind == "string"]
        self.assertEqual(len(strings), 1)
        self.assertEqual(strings[0].text, 'R"xx(a ")" b\nc)xx"')
        self.assertEqual(tokenizer.string_value(strings[0]), 'a ")" b\nc')
        # The final `;` still lexes, on the raw string's last line.
        semi = [t for t in toks if t.text == ";"]
        self.assertEqual(len(semi), 1)
        self.assertEqual(semi[0].line, 2)

    def test_prefixed_raw_string(self):
        toks = tokenizer.tokenize('auto s = u8R"(π)";')
        strings = [t for t in toks if t.kind == "string"]
        self.assertEqual(len(strings), 1)
        self.assertEqual(strings[0].text, 'u8R"(π)"')

    def test_comments_are_tokens_not_dropped(self):
        src = "int a; // trailing note\n/* block\nspans */ int b;"
        toks = tokenizer.tokenize(src)
        comments = [t for t in toks if t.kind == "comment"]
        self.assertEqual([c.text for c in comments],
                         ["// trailing note", "/* block\nspans */"])
        # code_tokens() strips them; the code stream is intact.
        code = kinds_texts(tokenizer.code_tokens(toks))
        self.assertEqual(code, [("ident", "int"), ("ident", "a"),
                                ("punct", ";"), ("ident", "int"),
                                ("ident", "b"), ("punct", ";")])

    def test_comment_lookalike_inside_string(self):
        toks = tokenizer.tokenize('log("see // not a comment");')
        self.assertEqual([t.kind for t in toks if t.kind == "comment"], [])
        strings = [t for t in toks if t.kind == "string"]
        self.assertEqual(strings[0].text, '"see // not a comment"')

    def test_digit_separators(self):
        toks = tokenizer.tokenize("x = 1'000'000 + 0xFF'FFu + 1.5e-3;")
        nums = [t.text for t in toks if t.kind == "number"]
        self.assertEqual(nums, ["1'000'000", "0xFF'FFu", "1.5e-3"])

    def test_char_literal_is_not_a_separator(self):
        # `'a'` after a number boundary must lex as a char literal, not glue.
        toks = tokenizer.tokenize("f(2, 'a');")
        chars = [t.text for t in toks if t.kind == "char"]
        self.assertEqual(chars, ["'a'"])

    def test_nested_template_closers_maximal_munch(self):
        # Like the C++ lexer itself, `>>` is one token; consumers that care
        # about template nesting split it (none of ours need to).
        toks = tokenizer.tokenize("std::vector<std::vector<int>> v;")
        puncts = [t.text for t in toks if t.kind == "punct"]
        self.assertIn(">>", puncts)
        self.assertEqual(puncts.count(">"), 0)

    def test_preprocessor_folding(self):
        src = '#include <sys/socket.h>\n#define M(a, b) \\\n  ((a) < (b))\nint x;'
        toks = tokenizer.tokenize(src)
        pps = [t for t in toks if t.kind == "pp"]
        self.assertEqual(len(pps), 2)
        self.assertIn("((a) < (b))", pps[1].text)  # continuation folded in
        # The include's angle brackets never became punctuation.
        self.assertNotIn(("punct", "<"), kinds_texts(toks)[:3])
        idents = [t.text for t in toks if t.kind == "ident"]
        self.assertEqual(idents, ["int", "x"])

    def test_positions_are_one_based(self):
        toks = tokenizer.tokenize("ab\n  cd")
        self.assertEqual((toks[0].line, toks[0].col), (1, 1))
        self.assertEqual((toks[1].line, toks[1].col), (2, 3))


def graph_for(src, relpath="src/mpc/unit.cpp"):
    facts = tu.extract_facts(relpath, src)
    return analyses.build_fork_graph([facts])


class ForkGraphTest(unittest.TestCase):
    def test_duplicate_plain_fork_collides(self):
        g = graph_for("""
            void f(Rng& rng) {
              Rng a = rng.fork("worker");
              Rng b = rng.fork("worker");
            }
        """)
        self.assertEqual(len(g["collisions"]), 1)
        self.assertIn("call order", g["collisions"][0]["why"])

    def test_distinct_labels_do_not_collide(self):
        g = graph_for("""
            void f(Rng& rng) {
              Rng a = rng.fork("left");
              Rng b = rng.fork("right");
            }
        """)
        self.assertEqual(g["collisions"], [])

    def test_fork_at_same_literal_index_collides(self):
        g = graph_for("""
            void f(Rng& rng) {
              Rng a = rng.fork_at("slot", 3);
              Rng b = rng.fork_at("slot", 3);
            }
        """)
        self.assertEqual(len(g["collisions"]), 1)
        self.assertIn("literal", g["collisions"][0]["why"])

    def test_fork_at_distinct_or_variable_index_is_fine(self):
        g = graph_for("""
            void f(Rng& rng, std::size_t i) {
              Rng a = rng.fork_at("slot", 0);
              Rng b = rng.fork_at("slot", 1);
              Rng c = rng.fork_at("slot", i);
              Rng d = rng.fork_at("slot", i + 1);
            }
        """)
        self.assertEqual(g["collisions"], [])

    def test_fresh_parents_in_sibling_scopes_are_distinct_streams(self):
        # Each block declares its own `Rng rng(seed)`; the same (fn, parent,
        # label) triple must not merge across declaration scopes.
        g = graph_for("""
            void f(std::uint64_t seed) {
              {
                Rng rng(seed);
                Rng a = rng.fork("w");
              }
              {
                Rng rng(seed + 1);
                Rng b = rng.fork("w");
              }
            }
        """)
        self.assertEqual(g["collisions"], [])

    def test_collisions_do_not_cross_functions(self):
        g = graph_for("""
            void f(Rng& rng) { Rng a = rng.fork("w"); }
            void g(Rng& rng) { Rng a = rng.fork("w"); }
        """)
        self.assertEqual(g["collisions"], [])

    def test_edges_name_parent_and_child(self):
        g = graph_for("""
            void f(Rng& rng) {
              Rng child = rng.fork("sub");
            }
        """)
        self.assertEqual(len(g["edges"]), 1)
        e = g["edges"][0]
        self.assertEqual(e["label"], "sub")
        self.assertEqual(e["kind"], "fork")
        self.assertTrue(e["parent"].endswith(":f:rng"))
        self.assertTrue(e["child"].endswith(":f:child"))
        self.assertIn(e["parent"], g["nodes"])
        self.assertIn(e["child"], g["nodes"])

    def test_gtest_bodies_stay_separate(self):
        # TEST(Suite, Name) bodies must not merge into one function scope.
        g = graph_for("""
            TEST(RngTest, ForksLeft) {
              Rng rng(7);
              Rng a = rng.fork("w");
            }
            TEST(RngTest, ForksRight) {
              Rng rng(7);
              Rng a = rng.fork("w");
            }
        """, relpath="tests/test_rng.cpp")
        self.assertEqual(g["collisions"], [])


if __name__ == "__main__":
    unittest.main()
