"""A real C++ tokenizer (the part regexes cannot fake).

Produces a flat token list with 1-based line/column positions. Handles the
lexical constructs that defeat line-regex tools:

  * raw string literals  R"delim( ... )delim"  with arbitrary delimiters and
    embedded newlines/quotes (plus u8R/uR/LR prefixes);
  * ordinary string/char literals with escape sequences;
  * line and block comments (emitted as `comment` tokens so annotation
    grammars — LINT-ALLOW, TAINT-SOURCE, DECLASSIFY, ANALYZE-HANDLES — can be
    parsed positionally);
  * pp-numbers with digit separators (1'000'000, 0xFF'FFu, 1.5e-3);
  * preprocessor directives, folded (with line continuations) into a single
    `pp` token so `#include <sys/socket.h>` never reads as template syntax;
  * maximal-munch punctuation (`>>=`, `<=>`, `::`, `->*`, ...) — template
    closers like `vector<vector<int>>` come out as `>` handling left to the
    (rare) consumer, exactly like the C++ grammar itself.

The token stream is lossless enough for scope tracking and statement
splitting, and strictly positioned so findings carry real columns.
"""

from collections import namedtuple

Token = namedtuple("Token", ["kind", "text", "line", "col"])

# Longest-match-first punctuation table (C++23 operator set).
PUNCTUATORS = [
    "...", "<=>", "->*", "<<=", ">>=",
    "::", "->", "++", "--", "<<", ">>", "<=", ">=", "==", "!=", "&&", "||",
    "+=", "-=", "*=", "/=", "%=", "&=", "|=", "^=", ".*", "##",
    "{", "}", "[", "]", "(", ")", ";", ":", "?", ".", "+", "-", "*", "/",
    "%", "&", "|", "^", "!", "~", "<", ">", "=", ",", "#",
]

_IDENT_START = set("abcdefghijklmnopqrstuvwxyzABCDEFGHIJKLMNOPQRSTUVWXYZ_")
_IDENT_CONT = _IDENT_START | set("0123456789")
_DIGITS = set("0123456789")

# String-literal prefixes, longest first ("u8R" before "u8" before "u").
_STRING_PREFIXES = ["u8R", "uR", "UR", "LR", "R", "u8", "u", "U", "L"]


class _Cursor:
    """Position-tracking scanner over the source text."""

    __slots__ = ("text", "n", "i", "line", "col")

    def __init__(self, text):
        self.text = text
        self.n = len(text)
        self.i = 0
        self.line = 1
        self.col = 1

    def peek(self, k=0):
        j = self.i + k
        return self.text[j] if j < self.n else ""

    def startswith(self, s):
        return self.text.startswith(s, self.i)

    def advance(self, k=1):
        """Move forward k chars, maintaining line/col."""
        for _ in range(k):
            if self.i >= self.n:
                return
            if self.text[self.i] == "\n":
                self.line += 1
                self.col = 1
            else:
                self.col += 1
            self.i += 1


def _scan_raw_string(cur):
    """cur sits at the opening `"` of R"delim( ... )delim". Returns end index."""
    # R"  delim  (   ...   )  delim  "
    j = cur.i + 1
    text = cur.text
    k = j
    while k < cur.n and text[k] not in "(\\ \t\n\"":
        k += 1
    if k >= cur.n or text[k] != "(":
        # Ill-formed raw string; treat as ordinary string to stay robust.
        return _scan_string_end(cur.text, cur.i, '"')
    delim = text[j:k]
    closer = ")" + delim + '"'
    end = text.find(closer, k + 1)
    return (end + len(closer)) if end != -1 else cur.n


def _scan_string_end(text, i, quote):
    """Index one past the closing quote of an ordinary string/char literal."""
    j = i + 1
    n = len(text)
    while j < n:
        c = text[j]
        if c == "\\":
            j += 2
            continue
        if c == quote or c == "\n":  # unterminated: stop at EOL, stay robust
            return j + 1
        j += 1
    return n


def _scan_number_end(text, i):
    """pp-number: digits, identifier chars, quotes-as-separators, exponents."""
    j = i
    n = len(text)
    while j < n:
        c = text[j]
        if c in _IDENT_CONT or c == ".":
            # e+/e-/p+/p- exponent signs ride along.
            if c in "eEpP" and j + 1 < n and text[j + 1] in "+-":
                j += 2
                continue
            j += 1
        elif c == "'" and j + 1 < n and text[j + 1] in _IDENT_CONT:
            j += 2  # digit separator
        else:
            break
    return j


def tokenize(text):
    """Tokenize C++ source into a list of Token."""
    tokens = []
    cur = _Cursor(text)
    at_line_start = True  # only whitespace seen since the last newline

    while cur.i < cur.n:
        c = cur.peek()
        line, col = cur.line, cur.col

        if c == "\n":
            cur.advance()
            at_line_start = True
            continue
        if c in " \t\r\f\v":
            cur.advance()
            continue

        # Comments.
        if c == "/" and cur.peek(1) == "/":
            end = cur.text.find("\n", cur.i)
            end = cur.n if end == -1 else end
            tokens.append(Token("comment", cur.text[cur.i:end], line, col))
            cur.advance(end - cur.i)
            continue
        if c == "/" and cur.peek(1) == "*":
            end = cur.text.find("*/", cur.i + 2)
            end = cur.n if end == -1 else end + 2
            tokens.append(Token("comment", cur.text[cur.i:end], line, col))
            cur.advance(end - cur.i)
            continue

        # Preprocessor directive: fold the whole logical line (with \ splices)
        # into one token.
        if c == "#" and at_line_start:
            j = cur.i
            while j < cur.n:
                e = cur.text.find("\n", j)
                e = cur.n if e == -1 else e
                stripped = cur.text[j:e].rstrip()
                if stripped.endswith("\\") and e < cur.n:
                    j = e + 1
                    continue
                j = e
                break
            tokens.append(Token("pp", cur.text[cur.i:j], line, col))
            cur.advance(j - cur.i)
            continue

        at_line_start = False

        # String/char literals, including prefixed and raw forms.
        if c in "\"'":
            quote = c
            if quote == '"':
                end = _scan_string_end(cur.text, cur.i, '"')
            else:
                end = _scan_string_end(cur.text, cur.i, "'")
            tokens.append(Token("string" if quote == '"' else "char",
                                cur.text[cur.i:end], line, col))
            cur.advance(end - cur.i)
            continue
        if c in _IDENT_START:
            # Prefixed literal?
            matched_prefix = None
            for pref in _STRING_PREFIXES:
                if cur.startswith(pref) and cur.peek(len(pref)) == '"':
                    matched_prefix = pref
                    break
            if matched_prefix is not None:
                if matched_prefix.endswith("R"):
                    save = cur.i
                    cur.advance(len(matched_prefix))  # now at the quote
                    end = _scan_raw_string(cur)
                    tokens.append(Token("string", cur.text[save:end], line, col))
                    cur.advance(end - cur.i)
                else:
                    end = _scan_string_end(cur.text,
                                           cur.i + len(matched_prefix), '"')
                    tokens.append(Token("string", cur.text[cur.i:end], line, col))
                    cur.advance(end - cur.i)
                continue
            # Ordinary identifier / keyword.
            j = cur.i + 1
            while j < cur.n and cur.text[j] in _IDENT_CONT:
                j += 1
            tokens.append(Token("ident", cur.text[cur.i:j], line, col))
            cur.advance(j - cur.i)
            continue

        # Numbers (incl. `.5` form).
        if c in _DIGITS or (c == "." and cur.peek(1) in _DIGITS):
            end = _scan_number_end(cur.text, cur.i)
            tokens.append(Token("number", cur.text[cur.i:end], line, col))
            cur.advance(end - cur.i)
            continue

        # Punctuation, maximal munch.
        for p in PUNCTUATORS:
            if cur.startswith(p):
                tokens.append(Token("punct", p, line, col))
                cur.advance(len(p))
                break
        else:
            # Unknown byte (extended charset, stray backslash): skip it.
            cur.advance()

    return tokens


def code_tokens(tokens):
    """Tokens with comments and preprocessor directives filtered out."""
    return [t for t in tokens if t.kind not in ("comment", "pp")]


def string_value(tok):
    """Best-effort literal value of a string token (no escape decoding needed
    for the label use-case: fork labels are plain ASCII)."""
    text = tok.text
    if "R" in text.split('"', 1)[0]:  # raw literal prefix
        body = text.split("(", 1)
        if len(body) == 2:
            inner = body[1]
            close = inner.rfind(")")
            return inner[:close] if close != -1 else inner
        return text
    # strip prefix and quotes
    start = text.find('"')
    end = text.rfind('"')
    if 0 <= start < end:
        return text[start + 1:end]
    return text
