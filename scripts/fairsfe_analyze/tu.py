"""Per-translation-unit symbol/flow pass.

One pass over the token stream (tokenizer.py) tracking scopes — namespaces,
classes, functions, loops, plain blocks — and splitting function bodies into
statements. From each TU it extracts a JSON-serializable *facts* dict:

  functions     per-function statement flow facts (declarations, assignments,
                receiver calls, sink shapes), Rng fork/draw event streams in
                program order, and the set of Rng-typed variables;
  kinds         encode_<kind>/decode_<kind> call sites (message-schema pass);
  classes       per-class field tables (wire/schema cross-check);
  taint_sources TAINT-SOURCE(category) annotations bound to the declaration
                they precede;
  declassify    DECLASSIFY(reason) markers with their target lines;
  handles       ANALYZE-HANDLES(kind) markers for hand-rolled decoders;
  allows        LINT-ALLOW(rule): reason markers (same grammar as fairsfe-lint).

The pass is deliberately lightweight — no templates instantiated, no
overload resolution — but it is *structural*: scopes nest correctly, raw
strings and comments never confuse it, and every fact carries a real
line/column. The analyses (analyses.py) run on the merged facts of all TUs.

Facts are pure data so driver.py can cache them by content hash and farm
extraction out to worker processes.
"""

import re

from tokenizer import tokenize, string_value

RNG_DRAW_METHODS = {"u64", "below", "bit", "bytes", "fill", "uniform"}
QUALIFIER_KEYWORDS = {
    "static", "const", "constexpr", "inline", "mutable", "thread_local",
    "volatile", "extern", "register", "unsigned", "signed", "virtual",
    "explicit", "friend", "typename",
}
CONTROL_KEYWORDS = {"if", "for", "while", "switch", "catch", "do", "else",
                    "return", "case", "default", "goto", "break", "continue",
                    "sizeof", "new", "delete", "throw", "co_return"}
LOG_CALLS = {"printf", "fprintf", "fputs", "puts", "perror"}
CHECK_MACROS = {"FAIRSFE_CHECK", "FAIRSFE_DCHECK"}
KIND_CALL_RE = re.compile(r"^(encode|decode)_([a-z0-9_]+)$")

# Variables that count as Rng streams even when their declaration is in
# another TU (class members like `rng_`, references like `run_rng`). The
# codebase's naming contract makes this sound: every such name is an Rng.
RNG_NAME_RE = re.compile(r"(?:^|_)rng_?$|^rng$|^rng_$")

ALLOW_RE = re.compile(
    r"LINT-ALLOW\((?P<rule>[a-z-]+)\)(?::\s*(?P<reason>.*?))?\s*(?:\*/)?\s*$")
TAINT_SOURCE_RE = re.compile(
    r"TAINT-SOURCE\((?P<category>[a-z-]+)\)(?::\s*(?P<reason>.*))?")
DECLASSIFY_RE = re.compile(r"DECLASSIFY\((?P<reason>[^)]*)\)")
HANDLES_RE = re.compile(r"ANALYZE-HANDLES\((?P<kind>[a-z0-9_]+)\)")
EMITS_RE = re.compile(r"ANALYZE-EMITS\((?P<kind>[a-z0-9_]+)\)")


class _Scope:
    __slots__ = ("kind", "name", "sid", "vars")

    def __init__(self, kind, name, sid):
        self.kind = kind  # namespace | class | function | loop | block
        self.name = name
        self.sid = sid
        self.vars = {}  # var -> type string


def _find_matching(tokens, i, open_t, close_t, step=1):
    """Index of the token matching tokens[i] (an open_t); -1 if unbalanced."""
    depth = 0
    n = len(tokens)
    while 0 <= i < n:
        t = tokens[i]
        if t.kind == "punct":
            if t.text == open_t:
                depth += 1
            elif t.text == close_t:
                depth -= 1
                if depth == 0:
                    return i
        i += step
    return -1


def _receiver_chain(tokens, i):
    """Canonical receiver string for a method call: tokens[i] is the method
    ident, tokens[i-1] is `.` or `->`. Walks back over ident chains and call
    results: `ctx.rng().fork` -> "ctx.rng()"."""
    j = i - 1
    if j < 0 or tokens[j].kind != "punct" or tokens[j].text not in (".", "->"):
        return None
    parts = []
    j -= 1
    while j >= 0:
        t = tokens[j]
        if t.kind == "punct" and t.text == ")":
            open_i = _find_matching(tokens, j, ")", "(", step=-1)
            if open_i <= 0:
                break
            parts.append("()")
            j = open_i - 1
            continue
        if t.kind == "ident":
            parts.append(t.text)
            j -= 1
            if j >= 0 and tokens[j].kind == "punct" and tokens[j].text in (
                    ".", "->", "::"):
                parts.append("." if tokens[j].text != "::" else "::")
                j -= 1
                continue
            break
        break
    if not parts:
        return None
    return "".join(reversed(parts))


def _call_args(tokens, open_paren):
    """Top-level comma-split args of the call whose `(` is at open_paren.
    Returns (close_index, [arg]) where arg = {"idents", "strings", "numbers"}."""
    close = _find_matching(tokens, open_paren, "(", ")")
    if close == -1:
        return -1, []
    args = []
    cur = {"idents": [], "strings": [], "numbers": []}
    depth = 0
    nonempty = False
    for k in range(open_paren + 1, close):
        t = tokens[k]
        if t.kind == "punct":
            if t.text in ("(", "[", "{"):
                depth += 1
            elif t.text in (")", "]", "}"):
                depth -= 1
            elif t.text == "," and depth == 0:
                args.append(cur)
                cur = {"idents": [], "strings": [], "numbers": []}
                continue
            nonempty = True
        elif t.kind == "ident":
            cur["idents"].append(t.text)
            nonempty = True
        elif t.kind == "string":
            cur["strings"].append(string_value(t))
            nonempty = True
        elif t.kind == "number":
            cur["numbers"].append(t.text)
            nonempty = True
        elif t.kind == "char":
            nonempty = True
    if nonempty or args:
        args.append(cur)
    return close, args


def _parse_decl(tokens):
    """Heuristic single-declarator parse: `qualifiers Type<...>&* name ...`.
    Returns (type_str, var_name) or None. `tokens` is a statement slice."""
    i = 0
    n = len(tokens)
    while i < n and tokens[i].kind == "ident" and tokens[i].text in QUALIFIER_KEYWORDS:
        i += 1
    if i >= n or tokens[i].kind != "ident" or tokens[i].text in CONTROL_KEYWORDS:
        return None
    type_parts = [tokens[i].text]
    i += 1
    while i < n:
        t = tokens[i]
        if t.kind == "punct" and t.text == "::" and i + 1 < n and tokens[i + 1].kind == "ident":
            type_parts.append(tokens[i + 1].text)
            i += 2
            continue
        if t.kind == "punct" and t.text == "<":
            close = _find_matching(tokens, i, "<", ">")
            if close == -1:
                return None
            i = close + 1
            continue
        break
    while i < n and tokens[i].kind == "punct" and tokens[i].text in ("&", "&&", "*"):
        i += 1
    if i >= n or tokens[i].kind != "ident" or tokens[i].text in CONTROL_KEYWORDS:
        return None
    var = tokens[i].text
    i += 1
    if i >= n:
        return type_parts[-1], var
    nxt = tokens[i]
    if nxt.kind == "punct" and nxt.text in ("=", "(", "{", ";", ",", ":"):
        # `Type var = ...`, `Type var(...)`, `Type var{...}`, range-for colon.
        return type_parts[-1], var
    return None


def _rng_params(header_tokens):
    """Rng-typed parameter names from a function header token slice."""
    out = {}
    for k, t in enumerate(header_tokens):
        if t.kind == "ident" and t.text == "Rng":
            j = k + 1
            while (j < len(header_tokens) and header_tokens[j].kind == "punct"
                   and header_tokens[j].text in ("&", "&&", "*")):
                j += 1
            if j < len(header_tokens) and header_tokens[j].kind == "ident":
                out[header_tokens[j].text] = "Rng"
    return out


def _is_lambda_header(header):
    """Does this header (tokens since the last statement boundary) end in a
    lambda introducer + parameter list, i.e. `...](args) [quals] [-> T]`?
    Used to give lambda bodies nested inside argument lists a real scope."""
    k = len(header) - 1
    # Strip trailing qualifiers and `-> Type`.
    while k >= 0:
        t = header[k]
        if t.kind == "ident" and (t.text in ("mutable", "noexcept", "const")
                                  or k >= 1 and header[k - 1].kind == "punct"
                                  and header[k - 1].text in ("->", "::")):
            k -= 1
            continue
        if t.kind == "punct" and t.text in ("->", "::", "<", ">", "&", "*"):
            k -= 1
            continue
        break
    if k < 0:
        return False
    t = header[k]
    if t.kind == "punct" and t.text == "]":
        return True  # `[x] { ... }`
    if t.kind == "punct" and t.text == ")":
        open_i = _find_matching(header[:k + 1], k, ")", "(", step=-1)
        if open_i > 0:
            b = header[open_i - 1]
            return b.kind == "punct" and b.text == "]"
    return False


class _Extractor:
    def __init__(self, relpath, text):
        self.relpath = relpath
        self.all_tokens = tokenize(text)
        self.tokens = [t for t in self.all_tokens if t.kind not in ("comment", "pp")]
        self.code_lines = {t.line for t in self.tokens}
        self.facts = {
            "relpath": relpath,
            "functions": [],
            "kinds": [],
            "classes": {},
            "taint_sources": [],
            "declassify": [],
            "handles": [],
            "emits": [],
            "allows": {},
        }
        self.scopes = [_Scope("file", "", 0)]
        self.next_sid = 1
        self.fn_stack = []  # indices into facts["functions"]
        self.pending_loop_decls = None

    # -- scope helpers ------------------------------------------------------

    def cur_fn(self):
        return self.facts["functions"][self.fn_stack[-1]] if self.fn_stack else None

    def lookup_var(self, name):
        """(type, scope) for a visible variable, innermost first."""
        for sc in reversed(self.scopes):
            if name in sc.vars:
                return sc.vars[name], sc
        return None, None

    def declare(self, var, typ):
        self.scopes[-1].vars[var] = typ

    def in_loop(self):
        for sc in reversed(self.scopes):
            if sc.kind == "loop":
                return sc
            if sc.kind == "function":
                break
        return None

    # -- annotations --------------------------------------------------------

    def parse_annotations(self, raw_lines):
        comments = [t for t in self.all_tokens if t.kind == "comment"]
        for t in comments:
            for lineno_off, line_text in enumerate(t.text.split("\n")):
                lineno = t.line + lineno_off
                m = ALLOW_RE.search(line_text)
                if m:
                    own_line = lineno not in self.code_lines
                    target = lineno + 1 if own_line else lineno
                    self.facts["allows"].setdefault(str(target), []).append(
                        [m.group("rule"), (m.group("reason") or "").strip(), lineno])
                m = TAINT_SOURCE_RE.search(line_text)
                if m:
                    subj = self._annotation_subject(lineno)
                    self.facts["taint_sources"].append({
                        "category": m.group("category"),
                        "reason": (m.group("reason") or "").strip(),
                        "line": lineno,
                        "subject": subj[0],
                        "kind": subj[1],
                    })
                m = DECLASSIFY_RE.search(line_text)
                if m:
                    own_line = lineno not in self.code_lines
                    target = lineno + 1 if own_line else lineno
                    self.facts["declassify"].append({
                        "line": lineno,
                        "target": target,
                        "reason": m.group("reason").strip(),
                    })
                for m in HANDLES_RE.finditer(line_text):
                    self.facts["handles"].append(
                        {"kind": m.group("kind"), "line": lineno})
                for m in EMITS_RE.finditer(line_text):
                    self.facts["emits"].append(
                        {"kind": m.group("kind"), "line": lineno})

    def _annotation_subject(self, comment_line):
        """Bind a TAINT-SOURCE annotation to the declaration it precedes (or
        shares a line with): a class/struct name, a function name (ident
        before the first `(`), or the declared variable/member name."""
        line_toks = [t for t in self.tokens if t.line == comment_line]
        if not line_toks:
            nxt = min((t.line for t in self.tokens if t.line > comment_line),
                      default=None)
            if nxt is None:
                return None, None
            line_toks = [t for t in self.tokens if t.line == nxt]
        for k, t in enumerate(line_toks):
            if t.kind == "ident" and t.text in ("class", "struct"):
                if k + 1 < len(line_toks) and line_toks[k + 1].kind == "ident":
                    return line_toks[k + 1].text, "type"
        for k, t in enumerate(line_toks):
            if (t.kind == "punct" and t.text == "(" and k > 0
                    and line_toks[k - 1].kind == "ident"):
                return line_toks[k - 1].text, "func"
        decl = _parse_decl(line_toks)
        if decl:
            return decl[1], "member"
        return None, None

    # -- main scan ----------------------------------------------------------

    def run(self):
        toks = self.tokens
        n = len(toks)
        i = 0
        stmt_start = 0
        paren_depth = 0
        # Each `{` pushes ("scope", saved_paren_depth) or ("init", None).
        # Lambda bodies nested inside argument lists get real scopes: the
        # paren depth is saved and reset so statement splitting works inside.
        brace_stack = []
        while i < n:
            t = toks[i]
            if t.kind == "punct":
                if t.text == "(":
                    paren_depth += 1
                elif t.text == ")":
                    paren_depth = max(0, paren_depth - 1)
                elif t.text == ";" and paren_depth == 0:
                    self.handle_statement(toks[stmt_start:i + 1])
                    stmt_start = i + 1
                elif t.text == "{":
                    header = toks[stmt_start:i]
                    if paren_depth == 0:
                        self.open_scope(header, i)
                        brace_stack.append(("scope", 0))
                        stmt_start = i + 1
                    elif _is_lambda_header(header):
                        self.open_scope(header, i)
                        brace_stack.append(("scope", paren_depth))
                        paren_depth = 0
                        stmt_start = i + 1
                    else:
                        brace_stack.append(("init", None))
                elif t.text == "}":
                    kind, saved = brace_stack.pop() if brace_stack else ("scope", 0)
                    if kind == "scope":
                        if stmt_start < i:
                            self.handle_statement(toks[stmt_start:i])
                        self.close_scope()
                        paren_depth = saved
                        stmt_start = i + 1
            i += 1
        if stmt_start < n:
            self.handle_statement(toks[stmt_start:])
        return self.facts

    def open_scope(self, header, brace_idx):
        kind, name = self._classify_brace(header)
        sc = _Scope(kind, name, self.next_sid)
        self.next_sid += 1
        if kind == "function":
            self.facts["functions"].append({
                "name": name,
                "line": header[0].line if header else self.tokens[brace_idx].line,
                "params": [],
                "stmts": [],
                "forks": [],
                "draws": [],
            })
            self.fn_stack.append(len(self.facts["functions"]) - 1)
            sc.vars.update(_rng_params(header))
            # Non-Rng params still matter for taint seeding by declared type.
            self._declare_params(sc, header)
            self.facts["functions"][-1]["params"] = [
                [typ, var] for var, typ in sc.vars.items()]
        elif kind == "loop" and header:
            # Header declarations (loop induction vars, range-for vars)
            # belong to the loop scope.
            self._register_header_decls(sc, header)
        if kind == "block" and any(t.kind == "punct" and t.text == "="
                                   for t in header):
            # `auto f = [..](..) {` — the lambda variable lives in the
            # *enclosing* scope (so calls to it are not mistaken for
            # free-function calls, e.g. kind-named local callables).
            decl = _parse_decl(header)
            if decl:
                self.declare(decl[1], decl[0])
        self.scopes.append(sc)

    def _declare_params(self, sc, header):
        open_i = None
        for k, t in enumerate(header):
            if t.kind == "punct" and t.text == "(":
                open_i = k
                break
        if open_i is None:
            return
        close_i = _find_matching(header, open_i, "(", ")")
        if close_i == -1:
            close_i = len(header)
        depth = 0
        start = open_i + 1
        for k in range(open_i + 1, close_i + 1):
            t = header[k] if k < close_i else None
            is_split = t is None or (t.kind == "punct" and t.text == "," and depth == 0)
            if t is not None and t.kind == "punct":
                if t.text in ("(", "<", "[", "{"):
                    depth += 1
                elif t.text in (")", ">", "]", "}"):
                    depth -= 1
            if is_split:
                decl = _parse_decl(header[start:k])
                if decl:
                    sc.vars.setdefault(decl[1], decl[0])
                start = k + 1

    def _register_header_decls(self, sc, header):
        open_i = None
        for k, t in enumerate(header):
            if t.kind == "punct" and t.text == "(":
                open_i = k
                break
        if open_i is None:
            return
        close_i = _find_matching(header, open_i, "(", ")")
        if close_i == -1:
            return
        inner = header[open_i + 1:close_i]
        piece = []
        for t in inner:
            if t.kind == "punct" and t.text in (";", ":"):
                decl = _parse_decl(piece)
                if decl:
                    sc.vars[decl[1]] = decl[0]
                piece = []
            else:
                piece.append(t)
        decl = _parse_decl(piece)
        if decl:
            sc.vars[decl[1]] = decl[0]

    def _classify_brace(self, header):
        """What scope does this `{` open? Decided by the *first* top-level
        paren group in the header — its preceding token distinguishes control
        statements, function definitions (incl. constructors with initializer
        lists, whose trailing `: member_(x)` parens would fool a backwards
        scan), lambdas, and plain braces."""
        if not header:
            return "block", ""
        idents = [t.text for t in header if t.kind == "ident"]
        texts = set(idents)
        # Headers *led* by a control keyword classify on it, so `if constexpr
        # (...)` / `return Foo{...}` never read as definitions.
        if idents:
            if idents[0] in ("for", "while", "do"):
                return "loop", ""
            if idents[0] in ("if", "switch", "else", "try", "case", "default",
                            "return", "throw", "co_return"):
                return "block", ""
        first_paren = None
        for k, t in enumerate(header):
            if t.kind == "punct" and t.text == "(":
                first_paren = k
                break
        if first_paren is None:
            if "namespace" in texts:
                return ("namespace",
                        idents[-1] if idents[-1] != "namespace" else "")
            if "enum" in texts:
                return "block", ""
            if {"class", "struct", "union"} & texts:
                for k, t in enumerate(header):
                    if t.kind == "ident" and t.text in ("class", "struct",
                                                        "union"):
                        for t2 in header[k + 1:]:
                            if t2.kind == "ident" and t2.text not in (
                                    "final", "public", "private", "protected"):
                                return "class", t2.text
                        break
                return "class", ""
            if idents and idents[0] == "do":
                return "loop", ""
            if header[-1].kind == "punct" and header[-1].text == "]":
                return "block", ""  # no-parameter lambda `[x] { ... }`
            return "block", ""
        before = header[first_paren - 1] if first_paren > 0 else None
        if before is None:
            return "block", ""
        if before.kind == "punct":
            if before.text == "]":
                # Lambda body: scoped so its locals don't leak, but unnamed —
                # statements inside attribute to the enclosing function.
                return "block", ""
            # `operator==(...)`, `operator()(...)` definitions.
            if first_paren >= 2 and header[first_paren - 2].kind == "ident" \
                    and header[first_paren - 2].text == "operator":
                return "function", "operator" + before.text
            return "block", ""
        if before.text in ("for", "while"):
            return "loop", ""
        if before.text in ("if", "switch", "catch") or \
                before.text in CONTROL_KEYWORDS:
            return "block", ""
        name = before.text
        if name in ("TEST", "TEST_F", "TEST_P", "TYPED_TEST", "TYPED_TEST_P"):
            close = _find_matching(header, first_paren, "(", ")")
            inner = [t.text for t in header[first_paren + 1:close]
                     if t.kind == "ident"] if close != -1 else []
            return "function", "%s(%s)" % (name, ".".join(inner))
        return "function", name

    def close_scope(self):
        if len(self.scopes) <= 1:
            return
        sc = self.scopes.pop()
        if sc.kind == "function" and self.fn_stack:
            self.fn_stack.pop()

    # -- statements ---------------------------------------------------------

    def handle_statement(self, stmt):
        if not stmt:
            return
        in_class = self.scopes[-1].kind == "class"
        if in_class:
            decl = _parse_decl(stmt)
            if decl:
                cls = self.scopes[-1].name
                self.facts["classes"].setdefault(cls, []).append(
                    [decl[1], stmt[0].line])
                self.scopes[-1].vars[decl[1]] = decl[0]
            return
        # Declarations register into the current scope; control headers
        # (`for (...)` bodies without braces) handled in open_scope.
        first = stmt[0]
        decl = None
        if first.kind == "ident" and first.text not in CONTROL_KEYWORDS:
            decl = _parse_decl(stmt)
            if decl:
                typ, var = decl
                if typ == "auto":
                    typ = self._infer_auto_type(stmt)
                self.declare(var, typ)
                decl = (typ, var)
        self.extract_stmt_facts(stmt, decl)

    def _infer_auto_type(self, stmt):
        for k, t in enumerate(stmt):
            if t.kind == "ident" and t.text in ("fork", "fork_at"):
                if k + 1 < len(stmt) and stmt[k + 1].kind == "punct" and \
                        stmt[k + 1].text == "(":
                    return "Rng"
        return "auto"

    def is_rng_var(self, name):
        typ, _ = self.lookup_var(name)
        if typ is not None:
            return typ.startswith("Rng")
        return bool(RNG_NAME_RE.search(name))

    def is_rng_receiver(self, chain):
        if chain is None:
            return False
        head = chain.split(".")[0].split("::")[-1].rstrip("()")
        if chain.endswith("()"):
            # `ctx.rng()`-style accessor: last call name decides.
            last = chain[:-2].split(".")[-1].split("::")[-1]
            return bool(RNG_NAME_RE.search(last)) or last == "Rng"
        return self.is_rng_var(head)

    def extract_stmt_facts(self, stmt, decl):
        fn = self.cur_fn()
        toks = stmt
        n = len(toks)
        idents = [t.text for t in toks if t.kind == "ident"]
        has_xor = any(t.kind == "punct" and t.text in ("^", "^=") for t in toks)

        # Assignment target: first ident chain followed by a plain `=`.
        assign_to = None
        assign_chain = []
        for k in range(n - 1):
            if (toks[k].kind == "ident" and toks[k + 1].kind == "punct"
                    and toks[k + 1].text in ("=", "^=")):
                assign_to = toks[k].text
                # member chain (frame.payload = ...)
                j = k
                chain = [toks[k].text]
                while j >= 2 and toks[j - 1].kind == "punct" and \
                        toks[j - 1].text in (".", "->") and toks[j - 2].kind == "ident":
                    chain.insert(0, toks[j - 2].text)
                    j -= 2
                assign_chain = chain
                if len(chain) > 1:
                    assign_to = chain[0]
                break
        if decl:
            assign_to = decl[1]
            assign_chain = [decl[1]]

        calls = []       # plain call names
        recv_calls = []  # [receiver, method, [arg idents]]
        check_msg_idents = []
        loop_sc = self.in_loop()

        k = 0
        while k < n:
            t = toks[k]
            if t.kind == "ident" and k + 1 < n and toks[k + 1].kind == "punct" \
                    and toks[k + 1].text == "(":
                name = t.text
                recv = _receiver_chain(toks, k)
                close, args = _call_args(toks, k + 1)
                arg_idents = [i for a in args for i in a["idents"]]
                if recv is None:
                    calls.append(name)
                    if name in CHECK_MACROS and len(args) > 1:
                        for a in args[1:]:
                            check_msg_idents.extend(a["idents"])
                else:
                    recv_calls.append([recv, name, arg_idents])

                if name in ("fork", "fork_at") and recv is not None and \
                        self.is_rng_receiver(recv) and fn is not None:
                    label = args[0]["strings"][0] if args and args[0]["strings"] else None
                    index_lit = None
                    index_idents = []
                    if name == "fork_at" and len(args) > 1:
                        if args[1]["numbers"] and not args[1]["idents"]:
                            index_lit = args[1]["numbers"][0]
                        index_idents = args[1]["idents"]
                    parent_typ, parent_sc = self.lookup_var(
                        recv.split(".")[0].split("::")[-1])
                    parent_local_to_loop = False
                    if loop_sc is not None and parent_sc is not None:
                        parent_local_to_loop = parent_sc.sid >= loop_sc.sid
                    fn["forks"].append({
                        "line": t.line, "col": t.col,
                        "parent": recv, "label": label, "kind": name,
                        "index_lit": index_lit, "index_idents": index_idents,
                        "target": assign_to,
                        "psid": parent_sc.sid if parent_sc else -1,
                        "in_loop": loop_sc is not None,
                        "parent_local_to_loop": parent_local_to_loop,
                    })
                elif name in RNG_DRAW_METHODS and recv is not None and \
                        self.is_rng_receiver(recv) and fn is not None:
                    _typ, dsc = self.lookup_var(
                        recv.split(".")[0].split("::")[-1])
                    fn["draws"].append({
                        "line": t.line, "col": t.col,
                        "parent": recv, "method": name,
                        "psid": dsc.sid if dsc else -1,
                    })

                m = KIND_CALL_RE.match(name)
                # Locally-declared callables (`auto encode_out = [..](..)`)
                # are not message-kind codecs.
                if m and self.lookup_var(name)[0] is None:
                    enclosing = fn["name"] if fn else None
                    self.facts["kinds"].append({
                        "kind": m.group(2),
                        "role": m.group(1),
                        "line": t.line, "col": t.col,
                        "fn": enclosing,
                        "is_call": enclosing is not None and enclosing != name,
                    })
            k += 1

        if fn is None:
            return
        sinks = self._detect_sinks(toks, idents, calls, recv_calls,
                                   assign_chain, check_msg_idents)
        fn["stmts"].append({
            "line": toks[0].line,
            "col": toks[0].col,
            "decl": list(decl) if decl else None,
            "assign_to": assign_to,
            "xor": has_xor,
            "idents": idents,
            "calls": calls,
            "recv_calls": recv_calls,
            "sinks": sinks,
        })

    def _detect_sinks(self, toks, idents, calls, recv_calls, assign_chain,
                      check_msg_idents):
        sinks = []
        line, col = toks[0].line, toks[0].col
        iset = set(idents)
        if ({"cout", "cerr", "clog"} & iset) or (set(calls) & LOG_CALLS):
            sinks.append({"sink": "log", "line": line, "col": col,
                          "args": idents})
        transcriptish = [i for i in iset if "transcript" in i.lower()]
        for rc in recv_calls:
            if "transcript" in rc[0].lower():
                transcriptish.append(rc[0])
        if transcriptish:
            sinks.append({"sink": "transcript", "line": line, "col": col,
                          "args": idents})
        if "encode_frame" in calls or any(m == "encode_frame" for _, m, _ in recv_calls):
            sinks.append({"sink": "wire", "line": line, "col": col,
                          "args": idents})
        if len(assign_chain) > 1 and assign_chain[-1] == "payload":
            head_typ, _ = self.lookup_var(assign_chain[0])
            if head_typ == "Frame":
                sinks.append({"sink": "wire", "line": line, "col": col,
                              "args": idents})
        if check_msg_idents:
            sinks.append({"sink": "check", "line": line, "col": col,
                          "args": check_msg_idents})
        return sinks


def extract_facts(relpath, text):
    """Public entry: facts dict for one TU."""
    ex = _Extractor(relpath, text)
    ex.parse_annotations(text.split("\n"))
    return ex.run()
