#!/usr/bin/env python3
"""fairsfe-lint — repo-specific determinism-contract linter.

Every guarantee this codebase makes (bit-identical utility estimates across
1/2/8 threads, golden-tested fault identity, byte-identical fairbench tables)
rests on a determinism contract. This linter makes the statically visible part
of that contract machine-checked:

  nondeterminism            Nondeterminism sources (std::random_device,
                            rand/srand, time(), clock(), system_clock,
                            high_resolution_clock) are banned everywhere.
                            All randomness must flow from a forked Rng stream;
                            wall time may only be read via steady_clock (used
                            for throughput reporting, never protocol-visible).
  pointer-keyed-order       Associative containers keyed by pointer iterate in
                            address order, which ASLR randomizes per process.
                            Banned everywhere.
  unordered-container       unordered_map/unordered_set declarations in the
                            message/transcript-producing layers (src/sim,
                            src/mpc, src/fair, src/adversary) need a
                            LINT-ALLOW with a proof that their iteration order
                            is never protocol-visible.
  unordered-iteration       Iterating an unordered container (range-for,
                            .begin()/.end()) in those same layers — hash-order
                            dependent output. The identifier table is built
                            from the file and its directly-included in-repo
                            headers.
  rng-fork-discipline       Rng streams must be derived via fork()/fork_at(),
                            never copied, re-seeded from a draw of another
                            stream, or seeded from an integer literal inside
                            src/ (seeding belongs at the estimator boundary).
  uninitialized-pod-member  In src/crypto, scalar POD class members without an
                            initializer — reading one is UB and, under
                            sanitizers, value-nondeterministic.
  bare-assert               assert()/<cassert> in src/ — invariants must go
                            through FAIRSFE_CHECK / FAIRSFE_DCHECK
                            (src/util/check.h) whose on/off status is
                            explicit, not whatever NDEBUG happens to be.
  direct-ot-access          Naming OtHub or encode_ot_send* outside src/mpc.
                            The OT hub is the substitution point of the
                            offline/online phase split (DESIGN.md §10):
                            callers must obtain the hybrid slot via
                            mpc::make_gmw_functionality(cfg) /
                            mpc::make_ot_functionality() so PreprocMode stays
                            a config switch. tests/ are exempt (they unit-test
                            the hub itself).
  lane-word-shares          Raw lane-word arithmetic (LaneWord,
                            transpose64x64, transpose_to/from_words) outside
                            src/util, src/circuit and src/mpc. The bit-sliced
                            representation (DESIGN.md §11) keeps its
                            masked-lane and rng-draw-order contracts inside
                            that boundary; estimator/scenario/bench code must
                            consume the typed SlicedBatchFn / SlicedGmwRunner
                            surface instead of slicing shares by hand. tests/
                            are exempt (they unit-test the transpose).
  gamma-literal             Raw PayoffVector{...} brace-literals outside
                            src/rpd. A γ vector spelled inline re-encodes a
                            payoff by hand, so the same logical vector can
                            silently drift between the TUs that share it;
                            call a named preset from rpd::payoff
                            (src/rpd/payoff.h) instead. tests/ are exempt
                            (they pin the presets' numeric values).
  raw-socket-access         POSIX socket API (<sys/socket.h>-family includes,
                            socket/bind/listen/accept/connect calls) outside
                            src/net. The process's entire network surface must
                            stay auditable from src/net/socket.cpp (its header
                            comment enumerates every raw call site); everything
                            above it — transports, mesh, daemon, benches,
                            tests — talks net::Stream / net::*Listener /
                            net::tcp_connect*.

Escape hatch: a finding is suppressed by `// LINT-ALLOW(rule): reason` on the
same line or on a comment line directly above it. The reason is mandatory
(`allow-missing-reason` otherwise) and an allow that suppresses nothing is
itself a finding (`unused-allow`), so stale annotations can't accumulate.
Allows naming a rule owned by fairsfe-analyze (scripts/fairsfe_analyze/) are
the analyzer's to track and are ignored here.

Output: --format text|json|sarif (SARIF/JSON share one schema with
fairsfe-analyze); findings carry line and column. --changed-only restricts
the lint set to files changed vs. the merge-base with the default branch.

The linter is compile_commands-aware: given --compile-commands (exported by
`cmake --preset lint`), the lint set is the listed translation units plus all
headers under the scan roots, so generated/excluded TUs never drift into or
out of the lint set silently. Without it, the scan roots are walked directly.

Matching runs on comment- and string-stripped text, so prose never trips a
rule. Heuristic and line-based by design: wrong in the rare multi-line
declaration, cheap enough to gate every CI run (see scripts/lint.sh).

Self-test: --self-test lints scripts/lint_fixtures/ (each fixture line
carrying `// EXPECT(rule)` must be flagged with exactly that rule; every
unmarked line must be clean; fixture paths are interpreted relative to src/
so scoped rules apply). Wired as a tier1 ctest.
"""

import argparse
import json
import os
import re
import sys

# The deeper cross-TU analyzer (scripts/fairsfe_analyze/) shares this repo's
# LINT-ALLOW grammar and the SARIF/JSON emitters; import its flat modules the
# same way its own driver does.
sys.path.insert(0, os.path.join(
    os.path.dirname(os.path.abspath(__file__)), "fairsfe_analyze"))
import analyses as _analyses  # noqa: E402
import sarif as _sarif  # noqa: E402
from driver import changed_files  # noqa: E402

# Rules owned by fairsfe-analyze. A LINT-ALLOW naming one of these is the
# analyzer's business: it tracks usage itself, so the linter must neither
# suppress with it nor flag it as unknown/unused.
ANALYZER_RULE_NAMES = frozenset(_analyses.RULE_NAMES)

LINT_VERSION = "2.0.0"  # 2.0: column numbers, --format, --changed-only
CPP_EXTENSIONS = (".h", ".hpp", ".cpp", ".cc", ".cxx")
SCAN_ROOTS = ("src", "bench", "examples", "tests")
PROTOCOL_DIRS = ("src/sim", "src/mpc", "src/fair", "src/adversary")

ALLOW_RE = re.compile(r"LINT-ALLOW\((?P<rule>[a-z-]+)\)(?::\s*(?P<reason>.*?))?\s*(?:\*/)?\s*$")
EXPECT_RE = re.compile(r"EXPECT\((?P<rule>[a-z-]+)\)")
UNORDERED_DECL_ID_RE = re.compile(r"unordered_(?:map|set)<[^;]*>\s+(\w+)\s*[;{=]")
INCLUDE_RE = re.compile(r'^\s*#\s*include\s+"([^"]+)"')


def strip_comments_and_strings(text):
    """Blank out comments and string/char literals, preserving line structure.

    Keeps the matched rules honest: a banned token in prose or a log string is
    not a finding. Raw string literals are not handled (none in this repo).
    """
    out = []
    i = 0
    n = len(text)
    state = "code"  # code | line_comment | block_comment | string | char
    while i < n:
        c = text[i]
        nxt = text[i + 1] if i + 1 < n else ""
        if state == "code":
            if c == "/" and nxt == "/":
                state = "line_comment"
                out.append("  ")
                i += 2
                continue
            if c == "/" and nxt == "*":
                state = "block_comment"
                out.append("  ")
                i += 2
                continue
            if c == '"':
                state = "string"
                out.append(" ")
                i += 1
                continue
            if c == "'":
                state = "char"
                out.append(" ")
                i += 1
                continue
            out.append(c)
        elif state == "line_comment":
            if c == "\n":
                state = "code"
                out.append("\n")
            else:
                out.append(" ")
        elif state == "block_comment":
            if c == "*" and nxt == "/":
                state = "code"
                out.append("  ")
                i += 2
                continue
            out.append("\n" if c == "\n" else " ")
        elif state in ("string", "char"):
            if c == "\\":
                out.append("  ")
                i += 2
                continue
            if (state == "string" and c == '"') or (state == "char" and c == "'"):
                state = "code"
            out.append(" " if c != "\n" else "\n")
        i += 1
    return "".join(out)


def class_body_lines(stripped):
    """Line numbers (1-based) whose start is directly inside a class/struct body.

    Tracks a brace stack; a `{` opened by a class/struct head pushes a class
    context, any other `{` (function body, initializer, lambda) pushes a
    plain block, so locals and nested function bodies are excluded.
    """
    lines = set()
    stack = []  # True = class body, False = other block
    pending_class = False
    for lineno, line in enumerate(stripped.split("\n"), start=1):
        if stack and stack[-1]:
            lines.add(lineno)
        for m in re.finditer(r"\b(class|struct|union|enum)\b|[{};)]", line):
            tok = m.group(0)
            if tok in ("class", "struct", "union"):
                pending_class = True
            elif tok == "enum":
                pending_class = False  # enum bodies hold enumerators, not members
            elif tok == ")":
                # A `{` right after a parameter list is a function body, even
                # when `class` appeared earlier on the line (template heads).
                pending_class = False
            elif tok == "{":
                stack.append(pending_class)
                pending_class = False
            elif tok == "}":
                if stack:
                    stack.pop()
            elif tok == ";":
                pending_class = False  # forward declaration
    return lines


class Rule:
    def __init__(self, name, dirs, message):
        self.name = name
        self.dirs = dirs  # path prefixes (relative, '/'-separated); None = everywhere
        self.message = message

    def in_scope(self, relpath):
        if self.dirs is None:
            return True
        return any(relpath == d or relpath.startswith(d + "/") for d in self.dirs)

    def check(self, ctx):
        raise NotImplementedError


class RegexRule(Rule):
    def __init__(self, name, dirs, message, patterns, skip_preprocessor=False):
        super().__init__(name, dirs, message)
        self.patterns = [re.compile(p) for p in patterns]
        self.skip_preprocessor = skip_preprocessor

    def check(self, ctx):
        for lineno, line in enumerate(ctx.stripped_lines, start=1):
            if self.skip_preprocessor and line.lstrip().startswith("#"):
                continue
            for pat in self.patterns:
                m = pat.search(line)
                if m:
                    yield (lineno, m.start() + 1,
                           f"{self.message} (matched `{m.group(0).strip()}`)")
                    break


class DirectOtAccessRule(RegexRule):
    """Everywhere EXCEPT src/mpc (the hub's own layer) and tests/ (which
    unit-test the hub). An exclusion list, so the rule follows new scan roots
    automatically."""

    EXEMPT = ("src/mpc", "tests")

    def __init__(self):
        super().__init__(
            "direct-ot-access", None,
            "direct OT-hybrid access outside src/mpc: obtain the slot via "
            "mpc::make_gmw_functionality()/make_ot_functionality() so the "
            "offline/online PreprocMode substitution stays a config switch",
            [r"\bOtHub\b", r"\bencode_ot_send\w*\s*\("])

    def in_scope(self, relpath):
        return not any(relpath == d or relpath.startswith(d + "/")
                       for d in self.EXEMPT)


class LaneWordSharesRule(RegexRule):
    """Everywhere EXCEPT the layers that own the bit-sliced representation —
    src/util (the transpose boundary), src/circuit (the sliced reference
    evaluator), src/mpc (the sliced GMW runner) — and tests/. Hand-rolled
    lane-word share arithmetic elsewhere would bypass the masked-lane and
    rng-draw-order contracts that keep sliced and scalar runs bit-identical
    (DESIGN.md §11); such code must go through the SlicedBatchFn /
    SlicedGmwRunner surface. An exclusion list, like direct-ot-access, so the
    rule follows new scan roots automatically."""

    EXEMPT = ("src/util", "src/circuit", "src/mpc", "tests")

    def __init__(self):
        super().__init__(
            "lane-word-shares", None,
            "raw lane-word share arithmetic outside src/util|circuit|mpc: use "
            "the SlicedBatchFn / SlicedGmwRunner surface (mpc/gmw_sliced.h) so "
            "lane masking and draw order stay inside the audited boundary",
            [r"\bLaneWord\b", r"\btranspose64x64\b",
             r"\btranspose_(?:to|from)_words\b"])

    def in_scope(self, relpath):
        return not any(relpath == d or relpath.startswith(d + "/")
                       for d in self.EXEMPT)


class GammaLiteralRule(RegexRule):
    """Everywhere EXCEPT src/rpd (the payoff presets' own definition layer)
    and tests/ (which pin the presets' numeric values). A raw
    PayoffVector{...} brace-literal anywhere else re-encodes a γ vector by
    hand, so the same logical vector can silently drift between the TUs that
    share it; experiment/bench code must call a named rpd::payoff preset
    (src/rpd/payoff.h). An exclusion list, like direct-ot-access, so the rule
    follows new scan roots automatically."""

    EXEMPT = ("src/rpd", "tests")

    def __init__(self):
        super().__init__(
            "gamma-literal", None,
            "raw PayoffVector brace-literal outside src/rpd: use a named "
            "rpd::payoff preset (src/rpd/payoff.h) so each gamma's value is "
            "defined exactly once",
            # A PayoffVector brace-init with contents, directly
            # (`PayoffVector{0.25, ...}`) or through a named declaration
            # (`PayoffVector g{g11 / 2, ...}`). Empty braces (value-init) and
            # the default constructor carry no literal and stay legal.
            [r"\bPayoffVector\s*(?:\w+\s*)?\{[^}]"])

    def in_scope(self, relpath):
        return not any(relpath == d or relpath.startswith(d + "/")
                       for d in self.EXEMPT)


class RawSocketAccessRule(RegexRule):
    """Everywhere EXCEPT src/net — the one directory allowed to touch the
    POSIX socket API. Auditing the process's network surface must mean
    auditing src/net/socket.cpp (its header comment enumerates every raw call
    site); a stray socket()/bind()/connect()/accept()/listen() or a
    <sys/socket.h>-family include elsewhere silently widens that surface.
    Everything above src/net speaks net::Stream / net::*Listener /
    net::tcp_connect*. An exclusion list, like direct-ot-access, so the rule
    follows new scan roots automatically."""

    EXEMPT = ("src/net",)

    def __init__(self):
        super().__init__(
            "raw-socket-access", None,
            "raw socket API outside src/net: use net::Stream / "
            "net::TcpListener / net::UnixListener / net::tcp_connect* "
            "(src/net/socket.h) so the process's network surface stays "
            "auditable in one place",
            [
                r"#\s*include\s*<sys/socket\.h>",
                r"#\s*include\s*<sys/un\.h>",
                r"#\s*include\s*<netinet/[\w.]+>",
                r"#\s*include\s*<arpa/inet\.h>",
                r"#\s*include\s*<netdb\.h>",
                # The call sites. The lookbehind excludes word chars (so
                # tcp_connect/unix_connect wrappers don't match), member
                # access `.`/`->` (SeqTracker::accept() callers, listener
                # methods), and a preceding `:` (so `net::...`/`std::bind`
                # qualified names only match when the `::`-prefixed
                # alternative matches from a clean position).
                r"(?<![\w.>:])(?:::\s*)?(?:socket|bind|listen|accept|connect)\s*\(",
            ])

    def in_scope(self, relpath):
        return not any(relpath == d or relpath.startswith(d + "/")
                       for d in self.EXEMPT)


class BareAssertRule(RegexRule):
    def __init__(self):
        super().__init__(
            "bare-assert", ("src",),
            "use FAIRSFE_CHECK/FAIRSFE_DCHECK from util/check.h, not assert()",
            [r"\bassert\s*\(", r"#\s*include\s*<cassert>"])

    def check(self, ctx):
        if ctx.relpath == "src/util/check.h":
            return  # the invariant layer itself
        yield from super().check(ctx)


class UnorderedIterationRule(Rule):
    """Iteration over identifiers declared with an unordered container type."""

    def __init__(self):
        super().__init__(
            "unordered-iteration", PROTOCOL_DIRS,
            "iteration order of an unordered container is hash/seed-dependent "
            "and must never reach messages or transcripts")

    def check(self, ctx):
        idents = set(UNORDERED_DECL_ID_RE.findall(ctx.stripped))
        for header in ctx.included_headers:
            idents.update(UNORDERED_DECL_ID_RE.findall(header))
        if not idents:
            return
        alt = "|".join(re.escape(i) for i in sorted(idents))
        pats = [
            re.compile(r"for\s*\([^;)]*:\s*(?:this->)?(" + alt + r")\b"),
            re.compile(r"\b(" + alt + r")\s*\.\s*(?:c?begin|c?end)\s*\("),
        ]
        for lineno, line in enumerate(ctx.stripped_lines, start=1):
            for pat in pats:
                m = pat.search(line)
                if m:
                    yield (lineno, m.start(1) + 1,
                           f"{self.message} (iterates `{m.group(1)}`)")
                    break


class UninitializedPodMemberRule(Rule):
    MEMBER_RE = re.compile(
        r"^\s*(?:mutable\s+)?"
        r"(?:std::)?(?:u?int(?:8|16|32|64|ptr)?_t|size_t|ptrdiff_t|bool|char|short"
        r"|int|long(?:\s+long)?|unsigned(?:\s+(?:char|short|int|long))?|float|double"
        r"|std::array<[^;={]*>)"
        r"\s+\w+(?:\s*\[[^\]]*\])?\s*;\s*$")
    SKIP_RE = re.compile(r"\b(?:static|constexpr|using|typedef|friend|operator)\b")

    def __init__(self):
        super().__init__(
            "uninitialized-pod-member", ("src/crypto",),
            "scalar member without initializer: reading it is UB and "
            "value-nondeterministic — default-initialize it")

    def check(self, ctx):
        member_lines = class_body_lines(ctx.stripped)
        for lineno, line in enumerate(ctx.stripped_lines, start=1):
            if lineno not in member_lines:
                continue
            if self.SKIP_RE.search(line):
                continue
            if self.MEMBER_RE.match(line):
                yield lineno, len(line) - len(line.lstrip()) + 1, self.message


RULES = [
    RegexRule(
        "nondeterminism", None,
        "nondeterminism source — all randomness must come from a forked Rng "
        "stream and wall time only from steady_clock",
        [
            r"\brandom_device\b",
            r"\bsrand\b",
            r"(?<![\w.>])rand\s*\(",
            r"(?<![\w.>])time\s*\(",
            r"(?<![\w.>])clock\s*\(",
            r"\bsystem_clock\b",
            r"\bhigh_resolution_clock\b",
        ]),
    RegexRule(
        "pointer-keyed-order", None,
        "associative container keyed by pointer iterates in address order, "
        "which ASLR randomizes per process",
        [r"\b(?:unordered_)?(?:multi)?(?:map|set)<\s*(?:const\s+)?[\w:]+(?:<[^<>]*>)?\s*\*"]),
    RegexRule(
        "unordered-container", PROTOCOL_DIRS,
        "unordered container in a message-producing layer: prove its iteration "
        "order is never protocol-visible in a LINT-ALLOW, or use an "
        "ordered/indexed structure",
        [r"\bunordered_(?:map|set)\s*<"],
        skip_preprocessor=True),
    UnorderedIterationRule(),
    RegexRule(
        "rng-fork-discipline", ("src",),
        "derive Rng streams with fork()/fork_at(); never copy a stream, "
        "re-seed from another stream's draw, or hard-code a seed in src/",
        [
            r"\bRng\s+\w+\s*=\s*\w+\s*;",                  # Rng a = rng;  (copy)
            r"\bRng(?:\s+\w+)?\s*[({][^;]*\.\s*u64\s*\(\)",  # Rng(rng.u64())
            r"\bRng(?:\s+\w+)?\s*[({]\s*\d",                 # Rng(42)  (literal seed)
        ]),
    UninitializedPodMemberRule(),
    BareAssertRule(),
    DirectOtAccessRule(),
    LaneWordSharesRule(),
    GammaLiteralRule(),
    RawSocketAccessRule(),
]

RULE_NAMES = {r.name for r in RULES} | {"unused-allow", "allow-missing-reason"}


class FileContext:
    def __init__(self, relpath, text, included_headers):
        self.relpath = relpath
        self.raw_lines = text.split("\n")
        self.stripped = strip_comments_and_strings(text)
        self.stripped_lines = self.stripped.split("\n")
        self.included_headers = included_headers  # stripped texts


def parse_allows(raw_lines):
    """Map target line -> list of [rule, reason, allow_lineno, allow_col,
    used-flag].

    A trailing allow targets its own line; an allow on a comment-only line
    targets the next line. Allows naming an analyzer-owned rule are skipped
    entirely — fairsfe-analyze tracks their usage itself.
    """
    allows = {}
    for lineno, line in enumerate(raw_lines, start=1):
        m = ALLOW_RE.search(line)
        if not m:
            continue
        if m.group("rule") in ANALYZER_RULE_NAMES:
            continue
        comment_pos = line.find("//")
        block_pos = line.find("/*")
        pos = min(p for p in (comment_pos, block_pos) if p >= 0) if max(
            comment_pos, block_pos) >= 0 else -1
        own_line = pos >= 0 and not line[:pos].strip()
        target = lineno + 1 if own_line else lineno
        allows.setdefault(target, []).append(
            [m.group("rule"), (m.group("reason") or "").strip(), lineno,
             m.start() + 1, False])
    return allows


def load_included_headers(path, root):
    """Stripped text of in-repo headers directly included by `path`."""
    texts = []
    try:
        with open(path, encoding="utf-8", errors="replace") as f:
            text = f.read()
    except OSError:
        return texts
    for m in INCLUDE_RE.finditer(text):
        inc = m.group(1)
        for cand in (os.path.join(root, "src", inc),
                     os.path.join(os.path.dirname(path), inc)):
            if os.path.isfile(cand):
                try:
                    with open(cand, encoding="utf-8", errors="replace") as f:
                        texts.append(strip_comments_and_strings(f.read()))
                except OSError:
                    pass
                break
    return texts


def lint_file(path, relpath, root, pretend_relpath=None):
    """Lint one file; returns a list of (lineno, col, rule, message) findings."""
    try:
        with open(path, encoding="utf-8", errors="replace") as f:
            text = f.read()
    except OSError as e:
        return [(0, 0, "io-error", str(e))]
    effective = pretend_relpath if pretend_relpath is not None else relpath
    ctx = FileContext(effective, text, load_included_headers(path, root))
    allows = parse_allows(ctx.raw_lines)

    findings = []
    for rule in RULES:
        if not rule.in_scope(effective):
            continue
        for lineno, col, message in rule.check(ctx):
            line_allows = allows.get(lineno, [])
            suppressed = False
            for entry in line_allows:
                if entry[0] == rule.name and entry[1]:
                    entry[4] = True
                    suppressed = True
            if not suppressed:
                findings.append((lineno, col, rule.name, message))

    for target, entries in sorted(allows.items()):
        for rule_name, reason, allow_lineno, allow_col, used in entries:
            if rule_name not in RULE_NAMES:
                findings.append((allow_lineno, allow_col, "unused-allow",
                                 f"LINT-ALLOW names unknown rule `{rule_name}`"))
            elif not reason:
                findings.append((allow_lineno, allow_col, "allow-missing-reason",
                                 f"LINT-ALLOW({rule_name}) must carry a reason "
                                 "after the colon"))
            elif not used:
                findings.append((allow_lineno, allow_col, "unused-allow",
                                 f"LINT-ALLOW({rule_name}) suppresses nothing on "
                                 f"line {target} — remove it"))
    findings.sort()
    return findings


def collect_files(root, compile_commands):
    """The lint set: TUs from compile_commands (if given) + walked sources."""
    files = set()
    if compile_commands:
        try:
            with open(compile_commands, encoding="utf-8") as f:
                for entry in json.load(f):
                    p = os.path.normpath(
                        os.path.join(entry.get("directory", root), entry["file"]))
                    if p.endswith(CPP_EXTENSIONS) and os.path.isfile(p):
                        rel = os.path.relpath(p, root)
                        if not rel.startswith(".."):
                            files.add(rel)
        except (OSError, ValueError, KeyError) as e:
            print(f"fairsfe-lint: warning: cannot read {compile_commands}: {e}; "
                  "falling back to a directory walk", file=sys.stderr)
    for scan_root in SCAN_ROOTS:
        base = os.path.join(root, scan_root)
        for dirpath, dirnames, filenames in os.walk(base):
            dirnames[:] = sorted(d for d in dirnames if not d.startswith("."))
            for name in sorted(filenames):
                if compile_commands and not name.endswith(".h"):
                    continue  # TU set comes from compile_commands
                if name.endswith(CPP_EXTENSIONS):
                    files.add(os.path.relpath(os.path.join(dirpath, name), root))
    return sorted(files)


def rules_meta():
    """(name, description, scope) triples for the SARIF rules table."""
    meta = []
    for rule in RULES:
        if rule.dirs is not None:
            scope = ", ".join(rule.dirs)
        elif getattr(rule, "EXEMPT", None):
            scope = "everywhere except " + ", ".join(rule.EXEMPT)
        else:
            scope = "everywhere"
        meta.append((rule.name, rule.message, scope))
    meta.append(("unused-allow", "LINT-ALLOW that suppresses nothing",
                 "everywhere"))
    meta.append(("allow-missing-reason", "LINT-ALLOW without a reason",
                 "everywhere"))
    return meta


def run_lint(root, compile_commands, explicit_files, fmt="text",
             changed_only=False):
    if changed_only:
        scoped = tuple(r + "/" for r in SCAN_ROOTS)
        rels = [f for f in changed_files(root)
                if f.startswith(scoped) and f.endswith(CPP_EXTENSIONS)]
        rels = sorted(set(rels) | {
            os.path.relpath(os.path.abspath(f), root) for f in explicit_files})
    elif explicit_files:
        rels = [os.path.relpath(os.path.abspath(f), root) for f in explicit_files]
    else:
        rels = collect_files(root, compile_commands)
    all_findings = []
    for rel in rels:
        rel_posix = rel.replace(os.sep, "/")
        for lineno, col, rule, message in lint_file(
                os.path.join(root, rel), rel_posix, root):
            all_findings.append({"rule": rule, "path": rel_posix,
                                 "line": lineno, "col": col,
                                 "message": message})
    out = _sarif.render(all_findings, fmt, "fairsfe-lint", LINT_VERSION,
                        rules_meta())
    if out:
        print(out)
    if fmt == "text":
        if all_findings:
            print(f"fairsfe-lint: {len(all_findings)} finding(s) in "
                  f"{len(rels)} file(s)")
        else:
            print(f"fairsfe-lint: clean ({len(rels)} files)")
    return 1 if all_findings else 0


def run_self_test(root):
    """Lint the fixture corpus; findings must equal the EXPECT(...) markers."""
    fixture_dir = os.path.join(root, "scripts", "lint_fixtures")
    failures = 0
    checked = 0
    for dirpath, dirnames, filenames in os.walk(fixture_dir):
        if dirpath == fixture_dir and "analyze" in dirnames:
            dirnames.remove("analyze")  # fairsfe-analyze's corpus, not ours
        dirnames.sort()
        for name in sorted(filenames):
            if not name.endswith(CPP_EXTENSIONS):
                continue
            path = os.path.join(dirpath, name)
            rel = os.path.relpath(path, fixture_dir).replace(os.sep, "/")
            # Fixtures pretend to live under src/ so dir-scoped rules apply
            # (e.g. lint_fixtures/crypto/x.cc lints as src/crypto/x.cc).
            pretend = "src/" + rel
            expected = set()
            with open(path, encoding="utf-8") as f:
                for lineno, line in enumerate(f, start=1):
                    for m in EXPECT_RE.finditer(line):
                        expected.add((lineno, m.group("rule")))
            got = {(lineno, rule)
                   for lineno, _col, rule, _ in lint_file(path, rel, root, pretend)}
            checked += 1
            for lineno, rule in sorted(expected - got):
                print(f"SELF-TEST FAIL {rel}:{lineno}: expected [{rule}], not flagged")
                failures += 1
            for lineno, rule in sorted(got - expected):
                print(f"SELF-TEST FAIL {rel}:{lineno}: unexpected [{rule}]")
                failures += 1
    if checked == 0:
        print(f"SELF-TEST FAIL: no fixtures found under {fixture_dir}")
        return 1
    if failures:
        print(f"fairsfe-lint self-test: {failures} failure(s) over {checked} fixtures")
        return 1
    print(f"fairsfe-lint self-test: OK ({checked} fixtures)")
    return 0


def main():
    ap = argparse.ArgumentParser(
        description=__doc__,
        formatter_class=argparse.RawDescriptionHelpFormatter,
        allow_abbrev=False,
        epilog="examples:\n"
               "  python3 scripts/fairsfe_lint.py "
               "--compile-commands build-lint/compile_commands.json\n"
               "  python3 scripts/fairsfe_lint.py --changed-only\n"
               "  python3 scripts/fairsfe_lint.py --format sarif src/mpc/gmw.cpp\n")
    ap.add_argument("--root", default=None,
                    help="repository root (default: parent of this script's dir)")
    ap.add_argument("--compile-commands", default=None, metavar="JSON",
                    help="compile_commands.json to take the TU set from")
    ap.add_argument("--format", choices=("text", "json", "sarif"),
                    default="text", help="output format (default: text)")
    ap.add_argument("--changed-only", action="store_true",
                    help="lint only files changed vs. the merge-base with the "
                         "default branch (plus any explicitly listed files)")
    ap.add_argument("--self-test", action="store_true",
                    help="run the fixture corpus under scripts/lint_fixtures/ "
                         "(the analyze/ subtree belongs to fairsfe-analyze)")
    ap.add_argument("--list-rules", action="store_true")
    ap.add_argument("files", nargs="*", help="lint only these files")
    args = ap.parse_args()

    root = os.path.abspath(args.root or
                           os.path.join(os.path.dirname(__file__), os.pardir))
    if args.list_rules:
        for name, message, scope in rules_meta():
            print(f"{name:26} [{scope}] {message}")
        return 0
    if args.self_test:
        return run_self_test(root)
    return run_lint(root, args.compile_commands, args.files,
                    fmt=args.format, changed_only=args.changed_only)


if __name__ == "__main__":
    sys.exit(main())
