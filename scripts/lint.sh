#!/usr/bin/env bash
# Static-analysis gate for the determinism contract (DESIGN.md §9).
#
#   scripts/lint.sh              # full gate: fairsfe-lint + clang-tidy (if installed)
#   scripts/lint.sh --self-test  # linter fixture corpus only
#
# Exit status is non-zero on any finding. clang-tidy is optional tooling: when
# the binary is absent the stage is skipped with a notice (the fairsfe-lint
# stage still gates), so the script works in minimal containers.
set -euo pipefail

ROOT="$(cd "$(dirname "${BASH_SOURCE[0]}")/.." && pwd)"
cd "$ROOT"

if [[ "${1:-}" == "--self-test" ]]; then
  exec python3 scripts/fairsfe_lint.py --self-test
fi

# The linter's TU set (and clang-tidy's) comes from compile_commands.json;
# configure the lint preset if it has not been exported yet.
COMPILE_DB="build-lint/compile_commands.json"
if [[ ! -f "$COMPILE_DB" ]]; then
  echo "lint.sh: exporting $COMPILE_DB via 'cmake --preset lint'"
  cmake --preset lint >/dev/null
fi

echo "lint.sh: fairsfe-lint self-test"
python3 scripts/fairsfe_lint.py --self-test

echo "lint.sh: fairsfe-lint (tree)"
python3 scripts/fairsfe_lint.py --compile-commands "$COMPILE_DB"

if command -v clang-tidy >/dev/null 2>&1; then
  echo "lint.sh: clang-tidy"
  # Lint every TU the build knows about; .clang-tidy supplies the check set.
  mapfile -t TUS < <(python3 - "$COMPILE_DB" <<'EOF'
import json, sys
for entry in json.load(open(sys.argv[1])):
    print(entry["file"])
EOF
)
  clang-tidy -p build-lint --quiet "${TUS[@]}"
else
  echo "lint.sh: clang-tidy not installed — skipping (fairsfe-lint stage still gates)"
fi

echo "lint.sh: OK"
