#!/usr/bin/env bash
# Static-analysis gate for the determinism contract (DESIGN.md §9, §14).
#
#   scripts/lint.sh                # full gate: fairsfe-lint + fairsfe-analyze
#                                  #   + clang-tidy (if installed)
#   scripts/lint.sh --self-test    # both fixture corpora only
#   scripts/lint.sh --changed-only # lint/analyze only files changed vs. the
#                                  #   merge-base (facts still span the tree)
#
# Exit status is non-zero on any finding. clang-tidy is optional tooling: when
# the binary is absent the stage is skipped with a notice (the fairsfe-lint
# and fairsfe-analyze stages still gate), so the script works in minimal
# containers.
set -euo pipefail

ROOT="$(cd "$(dirname "${BASH_SOURCE[0]}")/.." && pwd)"
cd "$ROOT"

if [[ "${1:-}" == "--self-test" ]]; then
  python3 scripts/fairsfe_lint.py --self-test
  exec python3 scripts/fairsfe_analyze/__main__.py --self-test
fi

CHANGED_ONLY=()
if [[ "${1:-}" == "--changed-only" ]]; then
  CHANGED_ONLY=(--changed-only)
fi

# The linter's TU set (and clang-tidy's) comes from compile_commands.json;
# configure the lint preset if it has not been exported yet.
COMPILE_DB="build-lint/compile_commands.json"
if [[ ! -f "$COMPILE_DB" ]]; then
  echo "lint.sh: exporting $COMPILE_DB via 'cmake --preset lint'"
  cmake --preset lint >/dev/null
fi

echo "lint.sh: fairsfe-lint self-test"
python3 scripts/fairsfe_lint.py --self-test

echo "lint.sh: fairsfe-lint (tree)"
python3 scripts/fairsfe_lint.py --compile-commands "$COMPILE_DB" \
    "${CHANGED_ONLY[@]}"

echo "lint.sh: fairsfe-analyze self-test"
python3 scripts/fairsfe_analyze/__main__.py --self-test

echo "lint.sh: fairsfe-analyze (cross-TU dataflow)"
python3 scripts/fairsfe_analyze/__main__.py --compile-commands "$COMPILE_DB" \
    "${CHANGED_ONLY[@]}"

if command -v clang-tidy >/dev/null 2>&1; then
  echo "lint.sh: clang-tidy"
  # Lint every TU the build knows about; .clang-tidy supplies the check set.
  mapfile -t TUS < <(python3 - "$COMPILE_DB" <<'EOF'
import json, sys
for entry in json.load(open(sys.argv[1])):
    print(entry["file"])
EOF
)
  clang-tidy -p build-lint --quiet "${TUS[@]}"
else
  echo "lint.sh: clang-tidy not installed — skipping (fairsfe-lint and fairsfe-analyze stages still gate)"
fi

echo "lint.sh: OK"
