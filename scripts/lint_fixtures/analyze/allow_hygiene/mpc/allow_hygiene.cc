// LINT-ALLOW hygiene for analyzer rules: a reasoned allow suppresses its
// finding; an allow that suppresses nothing, or carries no reason, is
// itself a finding.
#include "crypto/rng.h"

namespace fairsfe::mpc {

// Negative: the reasoned allow suppresses the loop-fork finding.
void suppressed(Rng& rng, std::size_t n) {
  for (std::size_t i = 0; i < n; ++i) {
    Rng child = rng.fork("w");  // LINT-ALLOW(rng-fork-in-loop): fixture proves reasoned suppression works
    use(child);
  }
}

void hygiene(Rng& rng) {
  // LINT-ALLOW(rng-fork-in-loop): there is no loop here  EXPECT(unused-allow)
  Rng a = rng.fork("x");
  /* LINT-ALLOW(rng-draw-after-fork) */  // EXPECT(allow-missing-reason)
  Rng b = rng.fork("y");
  use(a, b);
}

}  // namespace fairsfe::mpc
