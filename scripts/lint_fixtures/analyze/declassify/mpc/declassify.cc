// The declassify marker is the audited escape hatch for intentional
// disclosure; one that suppresses nothing is itself a finding.
#include "crypto/bytes.h"

namespace fairsfe::mpc {

// TAINT-SOURCE(share): fixture share type
struct FixtureShare {
  Bytes v;
};

// Negative: the declassified line may disclose the share.
void audited_disclosure(const FixtureShare& sh) {
  Bytes blob = sh.v;
  // DECLASSIFY(post-protocol audit dump; both parties already hold the opening)
  std::cout << blob;
}

// Positive: the marker targets a line where nothing tainted sinks.
void stale_marker(const FixtureShare& sh) {
  Bytes blob = sh.v;
  use(blob);
  // DECLASSIFY(stale — nothing secret on the next line)  EXPECT(unused-declassify)
  std::cout << "done";
}

}  // namespace fairsfe::mpc
