// Positive/negative pair for rng-draw-after-fork (protocol layers only):
// drawing from a parent after a child fork interleaves the parent's draw
// stream with its children, so reordering the fork reshuffles every
// downstream sample.
#include "crypto/rng.h"

namespace fairsfe::fair {

void bad_draw_after(Rng& rng) {
  Rng child = rng.fork("sub");
  bool coin = rng.bit();  // EXPECT(rng-draw-after-fork)
  use(child, coin);
}

// Negative: draw first, fork afterwards.
void good_draw_before(Rng& rng) {
  bool coin = rng.bit();
  Rng child = rng.fork("sub");
  use(child, coin);
}

// Negative: draws come from a dedicated child stream.
void good_dedicated_child(Rng& rng) {
  Rng child = rng.fork("sub");
  Rng draws = rng.fork("draws");
  bool coin = draws.bit();
  use(child, coin);
}

}  // namespace fairsfe::fair
