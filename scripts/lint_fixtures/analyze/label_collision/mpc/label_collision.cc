// Positive/negative pair for rng-label-collision: two sites deriving the
// same (parent scope, label[, index]) stream are correlated randomness.
#include "crypto/rng.h"

namespace fairsfe {

void collide_plain(Rng& rng) {
  Rng a = rng.fork("worker");  // EXPECT(rng-label-collision)
  Rng b = rng.fork("worker");
  use(a, b);
}

void collide_indexed(Rng& rng) {
  Rng a = rng.fork_at("slot", 3);  // EXPECT(rng-label-collision)
  Rng b = rng.fork_at("slot", 3);
  use(a, b);
}

// Negative: distinct labels, distinct literal indices, and variable indices
// all derive distinct streams.
void no_collision(Rng& rng, std::size_t k) {
  Rng a = rng.fork("setup");
  Rng b = rng.fork("engine");
  Rng c = rng.fork_at("slot", 0);
  Rng d = rng.fork_at("slot", 1);
  Rng e = rng.fork_at("slot", k);
  use(a, b, c, d, e);
}

// Negative: same variable name, but each block constructs a fresh parent —
// the declaration scope disambiguates them.
void fresh_parents(std::uint64_t seed) {
  {
    Rng rng(seed);
    Rng a = rng.fork("worker");
    use(a);
  }
  {
    Rng rng(seed + 1);
    Rng a = rng.fork("worker");
    use(a);
  }
}

}  // namespace fairsfe
