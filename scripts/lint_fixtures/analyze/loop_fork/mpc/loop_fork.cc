// Positive/negative pair for rng-fork-in-loop: fork() in a loop advances the
// parent's counter once per iteration, so stream identity depends on
// iteration order; fork_at(label, i) states the index explicitly.
#include "crypto/rng.h"

namespace fairsfe {

void bad_counter_fork(Rng& rng, std::size_t n) {
  for (std::size_t i = 0; i < n; ++i) {
    Rng child = rng.fork("party");  // EXPECT(rng-fork-in-loop)
    use(child);
  }
}

// Negative: indexed derivation is iteration-order independent.
void good_indexed(Rng& rng, std::size_t n) {
  for (std::size_t i = 0; i < n; ++i) {
    Rng child = rng.fork_at("party", i);
    use(child);
  }
}

// Negative: the parent itself is freshly constructed inside the loop, so
// each iteration forks a different stream family.
void good_loop_local_parent(std::uint64_t seed, std::size_t n) {
  for (std::size_t i = 0; i < n; ++i) {
    Rng run(seed + i);
    Rng child = run.fork("engine");
    use(child);
  }
}

}  // namespace fairsfe
