// Positive/negative pairs for orphan-message-kind: every kind a party
// encodes must be decoded by some counterpart, and vice versa.
#include "sim/message.h"

namespace fairsfe::sim {

Bytes encode_ping(std::uint64_t x) {
  Writer w;
  w.u64(x);
  return w.take();
}

std::optional<std::uint64_t> decode_ping(ByteView raw) {
  Reader r(raw);
  return r.u64();
}

Bytes encode_lost(std::uint64_t x) {
  Writer w;
  w.u64(x);
  return w.take();
}

Bytes encode_manual(std::uint64_t x) {
  Writer w;
  w.u64(x);
  return w.take();
}

void sender(std::vector<Message>& out) {
  Bytes a = encode_ping(1);
  Bytes b = encode_lost(2);  // EXPECT(orphan-message-kind)
  Bytes c = encode_manual(3);
  out.push_back(Message{0, 1, a});
  out.push_back(Message{0, 1, b});
  out.push_back(Message{0, 1, c});
}

void receiver(ByteView raw) {
  auto p = decode_ping(raw);
  auto q = decode_ghost(raw);  // EXPECT(orphan-message-kind)
  use(p, q);
  // The manual kind is parsed by a hand-rolled Reader loop:
  // ANALYZE-HANDLES(manual)
}

}  // namespace fairsfe::sim
