// Positive/negative pairs for secret-to-log and secret-to-check: pad bytes
// in stdout or in a FAIRSFE_CHECK message land in logs and bug reports.
#include "crypto/bytes.h"

namespace fairsfe::mpc {

// TAINT-SOURCE(pad): fixture one-time pad
struct FixturePad {
  Bytes p;
};

void log_leak(const FixturePad& pad) {
  Bytes b = pad.p;
  std::printf("pad=%s\n", b.data());  // EXPECT(secret-to-log)
}

void check_leak(const FixturePad& pad) {
  Bytes b = pad.p;
  FAIRSFE_CHECK(b.size() == 32, "bad pad", b);  // EXPECT(secret-to-check)
}

// Negative: the check condition may inspect the pad as long as the message
// carries no tainted value.
void check_ok(const FixturePad& pad) {
  Bytes b = pad.p;
  FAIRSFE_CHECK(b.size() == 32, "pad has wrong width");
}

// Negative: sizes and other derived-but-public facts... stay untainted only
// if laundered through a mask; plain logging of untainted values is fine.
void log_ok(const Bytes& digest) {
  std::printf("digest=%s\n", digest.data());
}

}  // namespace fairsfe::mpc
