// Positive/negative pair for secret-to-transcript: an annotated share value
// reaching a transcript recorder unmasked leaks exactly what the rushing
// adversary is not granted.
#include "crypto/bytes.h"

namespace fairsfe::mpc {

// TAINT-SOURCE(share): fixture share type
struct FixtureShare {
  Bytes v;
};

void leak_share(Transcript& transcript, const FixtureShare& sh) {
  Bytes blob = sh.v;
  transcript.record(blob);  // EXPECT(secret-to-transcript)
}

// Negative: a masking XOR launders the value before it is recorded.
void masked_share(Transcript& transcript, const FixtureShare& sh, const Bytes& pad) {
  Bytes blob = sh.v ^ pad;
  transcript.record(blob);
}

// Negative: untainted values may hit the transcript freely.
void plain_value(Transcript& transcript, const Bytes& commitment_digest) {
  transcript.record(commitment_digest);
}

}  // namespace fairsfe::mpc
