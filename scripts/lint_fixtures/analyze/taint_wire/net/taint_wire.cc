// Positive/negative pair for secret-to-wire: key material reaching a frame
// writer crosses the process boundary in the clear.
#include "net/wire.h"

namespace fairsfe::net {

// TAINT-SOURCE(key): fixture key type
struct FixtureKey {
  Bytes k;
};

void leak_into_payload(const FixtureKey& key, Frame& frame) {
  Bytes material = key.k;
  frame.payload = material;  // EXPECT(secret-to-wire)
}

void leak_into_encoder(const FixtureKey& key) {
  Bytes material = key.k;
  Bytes wire_bytes = encode_frame(material);  // EXPECT(secret-to-wire)
  use(wire_bytes);
}

// Negative: masked material may ride the wire.
void masked_payload(const FixtureKey& key, const Bytes& pad, Frame& frame) {
  Bytes material = key.k ^ pad;
  frame.payload = material;
}

// Keeps the frame/frame_body kind pair closed in this universe (also
// exercises the decode_frame_body -> frame alias).
void pump(ByteView raw) {
  auto body = decode_frame_body(raw);
  use(body);
}

}  // namespace fairsfe::net
