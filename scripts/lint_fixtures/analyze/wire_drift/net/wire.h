// Frame side of the positive wire-schema-drift fixture.
#pragma once

namespace fairsfe::net {

struct Frame {
  std::uint8_t kind = 0;
  std::uint64_t seq = 0;
  std::int32_t round = 0;
  PartyId from = 0;
  PartyId to = 0;
  PartyId rcpt = 0;
  Bytes payload;
};

}  // namespace fairsfe::net
