// Positive wire-schema-drift fixture: Message grows a field the Frame schema
// cannot carry.
#pragma once

namespace fairsfe::sim {

struct Message {
  PartyId from = 0;
  PartyId to = 0;
  Bytes payload;
  std::uint32_t hop_count = 0;  // EXPECT(wire-schema-drift)
};

}  // namespace fairsfe::sim
