// Negative twin of wire_drift: every Message field has a Frame slot.
#pragma once

namespace fairsfe::sim {

struct Message {
  PartyId from = 0;
  PartyId to = 0;
  Bytes payload;
};

}  // namespace fairsfe::sim
