// Known-bad corpus for `bare-assert`. In src/, invariants must go through
// FAIRSFE_CHECK / FAIRSFE_DCHECK (src/util/check.h): assert() silently
// compiles away under whatever NDEBUG a preset happens to set.
#include <cassert>  // EXPECT(bare-assert)

void checks(int n) {
  assert(n > 0);  // EXPECT(bare-assert)
  static_assert(sizeof(int) >= 4, "fine: compile-time, no NDEBUG coupling");
  (void)n;
}
