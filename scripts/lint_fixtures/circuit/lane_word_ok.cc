// lane-word-shares is scoped to everything OUTSIDE src/util, src/circuit and
// src/mpc: this fixture lints as src/circuit/lane_word_ok.cc, where the
// bit-sliced representation is the implementation domain (the sliced
// reference evaluator walks gate lists over lane words), so none of the
// lines below is a finding.

fairsfe::util::LaneWord eval_one_layer(fairsfe::util::LaneWord a,
                                       fairsfe::util::LaneWord b) {
  return a & b;
}

void repack(std::uint64_t* block, const std::vector<std::vector<bool>>& rows) {
  fairsfe::util::transpose64x64(block);
  auto words = fairsfe::util::transpose_to_words(rows);
  (void)fairsfe::util::transpose_from_words(words, 7);
}
