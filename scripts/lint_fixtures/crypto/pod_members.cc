// Known-bad corpus for `uninitialized-pod-member`. Lints as
// src/crypto/pod_members.cc: scalar members without initializers are flagged
// (reading one is UB and value-nondeterministic under sanitizers); locals and
// initialized members are not.
#include <array>
#include <cstdint>
#include <vector>

class Digest {
 public:
  void update();

 private:
  std::uint32_t state;                  // EXPECT(uninitialized-pod-member)
  std::array<std::uint8_t, 64> buf;     // EXPECT(uninitialized-pod-member)
  bool finalized;                       // EXPECT(uninitialized-pod-member)
  double scale;                         // EXPECT(uninitialized-pod-member)

  std::size_t pos = 0;                  // fine: initialized
  std::uint64_t total{0};               // fine: initialized
  std::vector<std::uint8_t> bytes;      // fine: self-initializing type
  static constexpr std::size_t kCap = 64;  // fine: constant
};

struct Header {
  std::uint8_t tag;                     // EXPECT(uninitialized-pod-member)
  std::uint32_t len = 0;                // fine: initialized
};

void locals_are_fine() {
  std::uint8_t scratch[8];  // fine: local buffer, filled before use
  std::uint32_t word;       // fine: local
  (void)scratch; (void)word;
}
