// direct-ot-access: outside src/mpc, naming the OT hub (or hand-encoding its
// wire format) bypasses the offline/online substitution point — the hybrid
// slot must come from make_gmw_functionality()/make_ot_functionality().
// Lints as src/experiments/direct_ot_access.cc, so the rule is in scope.

void bad_hub_construction() {
  auto* hub = new fairsfe::mpc::OtHub();  // EXPECT(direct-ot-access)
  (void)hub;
}

void bad_wire_encoding() {
  auto msg = fairsfe::mpc::encode_ot_send(7, true, false);  // EXPECT(direct-ot-access)
  (void)msg;
}

void good_factory_use() {
  auto slot = fairsfe::mpc::make_ot_functionality();
  (void)slot;
}
