// gamma-literal: outside src/rpd, a raw PayoffVector brace-literal re-encodes
// a gamma vector by hand — the same logical vector can silently drift between
// the TUs that share it. Experiment code must call a named rpd::payoff preset
// (src/rpd/payoff.h). Lints as src/experiments/gamma_literal.cc, so the rule
// is in scope.

fairsfe::rpd::PayoffVector bad_inline_literal() {
  return fairsfe::rpd::PayoffVector{0.25, 0.0, 1.0, 0.5};  // EXPECT(gamma-literal)
}

double bad_named_declaration(double g11) {
  const fairsfe::rpd::PayoffVector g{g11 / 2, 0.0, 1.0, g11};  // EXPECT(gamma-literal)
  return g.g10;
}

fairsfe::rpd::PayoffVector good_named_preset() {
  return fairsfe::rpd::payoff::standard();
}

fairsfe::rpd::PayoffVector good_value_init() {
  return fairsfe::rpd::PayoffVector{};  // no literal content: stays legal
}
