// direct-ot-access is scoped to everything OUTSIDE src/mpc: this fixture
// lints as src/mpc/ot_internal_use.cc, where the hub is the implementation
// domain (the OtDrivenProvider runs its rounds, the factories construct it),
// so neither line below is a finding.

void internal_hub_use() {
  auto* hub = new fairsfe::mpc::OtHub();
  auto msg = fairsfe::mpc::encode_ot_send(7, true, false);
  (void)hub;
  (void)msg;
}
