// raw-socket-access is scoped to everything OUTSIDE src/net: this fixture
// lints as src/net/raw_socket_ok.cc, the implementation domain where the
// wrappers themselves make the raw calls, so no line below is a finding.

#include <sys/socket.h>
#include <netinet/tcp.h>

int wrapper_implementation() {
  int fd = ::socket(2, 1, 0);
  sockaddr addr{};
  bind(fd, &addr, sizeof(addr));
  listen(fd, 64);
  int c = ::accept(fd, nullptr, nullptr);
  ::connect(c, &addr, sizeof(addr));
  return c;
}
