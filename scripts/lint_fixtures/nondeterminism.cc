// Known-bad corpus for the `nondeterminism` rule: every flagged line carries
// an EXPECT marker naming the rule; scripts/fairsfe_lint.py --self-test fails
// if a marked line is missed or an unmarked line is flagged.
//
// Mentioning std::random_device or srand in prose (like this line) is fine:
// rules run on comment-stripped text.
#include <chrono>
#include <cstdlib>
#include <ctime>
#include <random>

void bad_randomness() {
  std::random_device rd;                                // EXPECT(nondeterminism)
  int a = rd();                                         // fine: plain call
  std::srand(42);                                       // EXPECT(nondeterminism)
  int b = std::rand();                                  // EXPECT(nondeterminism)
  int c = rand();                                       // EXPECT(nondeterminism)
  (void)a; (void)b; (void)c;
}

void bad_wallclock() {
  auto t0 = time(nullptr);                              // EXPECT(nondeterminism)
  auto t1 = clock();                                    // EXPECT(nondeterminism)
  auto t2 = std::chrono::system_clock::now();           // EXPECT(nondeterminism)
  auto t3 = std::chrono::high_resolution_clock::now();  // EXPECT(nondeterminism)
  (void)t0; (void)t1; (void)t2; (void)t3;
}

void fine_wallclock() {
  // steady_clock is the one sanctioned clock (throughput reporting only).
  auto t = std::chrono::steady_clock::now();
  (void)t;
  // Identifiers merely containing the banned names are fine:
  int runtime_budget = 0;
  int wall_time_ms = runtime_budget;
  (void)wall_time_ms;
}

const char* fine_string = "call time() and srand() at your peril";
