// Known-bad corpus for `pointer-keyed-order`: associative containers keyed by
// pointer iterate in address order, which ASLR randomizes per process.
#include <map>
#include <set>
#include <unordered_map>
#include <vector>

struct Party;

std::map<const Party*, int> round_of;      // EXPECT(pointer-keyed-order)
std::set<Party*> active;                   // EXPECT(pointer-keyed-order)
std::multimap<Party*, int> queue_of;       // EXPECT(pointer-keyed-order)
std::unordered_map<Party*, int> seen;      // EXPECT(pointer-keyed-order)

// Value- or integer-keyed containers are fine:
std::map<int, const Party*> by_id;
std::set<long> ids;
std::vector<Party*> roster;
