// Known-bad corpus for `rng-fork-discipline`. Streams must be derived with
// fork()/fork_at(): copying a stream makes two components consume identical
// randomness, re-seeding from a draw couples the child stream to the parent's
// consumption pattern, and a literal seed in src/ bypasses the estimator's
// explicit seeding.
#include "crypto/rng.h"

void bad_stream_handling(fairsfe::Rng& rng) {
  fairsfe::Rng copy = rng;                   // EXPECT(rng-fork-discipline)
  fairsfe::Rng reseeded(rng.u64());          // EXPECT(rng-fork-discipline)
  fairsfe::Rng hardcoded(42);                // EXPECT(rng-fork-discipline)
  auto temp = fairsfe::Rng(7).u64();         // EXPECT(rng-fork-discipline)
  (void)copy; (void)reseeded; (void)hardcoded; (void)temp;
}

void good_stream_handling(fairsfe::Rng& rng) {
  fairsfe::Rng child = rng.fork("child");
  fairsfe::Rng nth = rng.fork_at("runs", 3);
  fairsfe::Rng moved = std::move(child);
  (void)nth; (void)moved;
}
