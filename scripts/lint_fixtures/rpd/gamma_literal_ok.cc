// gamma-literal is scoped to everything OUTSIDE src/rpd: this fixture lints
// as src/rpd/gamma_literal_ok.cc, the presets' own definition layer, where a
// brace-literal IS the single definition point — neither line below is a
// finding.

fairsfe::rpd::PayoffVector spiteful_preset_definition() {
  return fairsfe::rpd::PayoffVector{0.6, 0.0, 1.0, 0.5};
}

fairsfe::rpd::PayoffVector sensitivity_preset_definition(double g11) {
  const fairsfe::rpd::PayoffVector g{g11 / 2, 0.0, 1.0, g11};
  return g;
}
