// lane-word-shares: outside src/util, src/circuit and src/mpc, raw lane-word
// arithmetic on shares bypasses the masked-lane and rng-draw-order contracts
// of the bit-sliced execution path (DESIGN.md §11) — estimator/scenario/bench
// code must consume the SlicedBatchFn / SlicedGmwRunner surface instead.
// Lints as src/rpd/lane_word_shares.cc, so the rule is in scope.

void bad_hand_rolled_lane_math() {
  fairsfe::util::LaneWord x = 0;  // EXPECT(lane-word-shares)
  fairsfe::util::LaneWord y = ~x;  // EXPECT(lane-word-shares)
  (void)(x & y);
}

void bad_direct_transpose(std::uint64_t* block) {
  fairsfe::util::transpose64x64(block);  // EXPECT(lane-word-shares)
}

void bad_packing(const std::vector<std::vector<bool>>& rows) {
  auto words = fairsfe::util::transpose_to_words(rows);  // EXPECT(lane-word-shares)
  auto back = fairsfe::util::transpose_from_words(words, 5);  // EXPECT(lane-word-shares)
  (void)back;
}

void good_typed_surface(const fairsfe::rpd::EstimationTarget& target) {
  // Consuming the sliced hook through the estimator is the supported path;
  // the lane width constant is configuration, not share arithmetic.
  (void)fairsfe::util::kLaneWidth;
  (void)target.sliced;
}
