// raw-socket-access: outside src/net the POSIX socket API is off limits —
// the process's network surface must stay auditable from src/net/socket.cpp.
// Lints as src/service/raw_socket.cc, so the rule is in scope.

#include <sys/socket.h>  // EXPECT(raw-socket-access)
#include <netinet/in.h>  // EXPECT(raw-socket-access)
#include <arpa/inet.h>   // EXPECT(raw-socket-access)
#include <sys/un.h>      // EXPECT(raw-socket-access)
#include <netdb.h>       // EXPECT(raw-socket-access)

int bad_raw_calls() {
  int fd = ::socket(2, 1, 0);                // EXPECT(raw-socket-access)
  sockaddr addr{};
  if (bind(fd, &addr, sizeof(addr)) != 0) {  // EXPECT(raw-socket-access)
    return 1;
  }
  listen(fd, 8);                             // EXPECT(raw-socket-access)
  int c = ::accept(fd, nullptr, nullptr);    // EXPECT(raw-socket-access)
  ::connect(c, &addr, sizeof(addr));         // EXPECT(raw-socket-access)
  return c;
}

void good_wrapper_use() {
  // Qualified names and member calls are someone else's API, not raw
  // syscalls: none of these lines is a finding.
  auto stream = fairsfe::net::tcp_connect("127.0.0.1", 9600);
  auto retry = fairsfe::net::tcp_connect_retry("127.0.0.1", 9600, 3);
  auto lis = fairsfe::net::TcpListener::bind("127.0.0.1", 0);
  auto peer = lis.accept();
  auto fn = std::bind(&bad_raw_calls);
  (void)stream; (void)retry; (void)peer; (void)fn;
}
