// Known-good corpus: every banned pattern here carries a LINT-ALLOW with a
// reason, so the whole file must lint clean (zero findings — any finding or
// any unused-allow is a self-test failure). Lints as src/sim/allowed.cc so
// the protocol-layer rules apply.
#include <cstdint>
#include <ctime>
#include <unordered_map>

class ReplayCache {
 public:
  std::uint64_t lookup(std::uint64_t label) { return seen_[label]; }

  void sweep() {
    // Trailing-form allow:
    for (auto& kv : seen_) kv.second = 0;  // LINT-ALLOW(unordered-iteration): results are accumulated commutatively, order never reaches a message
  }

 private:
  // Preceding-comment-form allow (applies to the next line):
  // LINT-ALLOW(unordered-container): keyed lookup only; sweep() above carries its own iteration proof
  std::unordered_map<std::uint64_t, std::uint64_t> seen_;
};

std::uint64_t epoch_for_logs() {
  // LINT-ALLOW(nondeterminism): log timestamp only, never enters a transcript
  return static_cast<std::uint64_t>(time(nullptr));
}
