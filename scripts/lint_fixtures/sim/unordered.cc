// Known-bad corpus for `unordered-container` / `unordered-iteration`. This
// fixture lints as src/sim/unordered.cc (self-test prepends src/), i.e. a
// message-producing layer where hash-order must never become visible.
#include <cstdint>
#include <unordered_map>
#include <unordered_set>
#include <vector>

class Hub {
 public:
  void route() {
    for (const auto& kv : pending_) {           // EXPECT(unordered-iteration)
      (void)kv;
    }
    for (auto it = seen_.begin(); it != seen_.end(); ++it) {  // EXPECT(unordered-iteration)
      (void)*it;
    }
    // Keyed lookup (no iteration) is not flagged by the iteration rule:
    pending_[7] = 1;
    // Iterating an ordered container is fine:
    for (const auto v : order_) (void)v;
  }

 private:
  std::unordered_map<std::uint64_t, int> pending_;  // EXPECT(unordered-container)
  std::unordered_set<std::uint64_t> seen_;          // EXPECT(unordered-container)
  std::vector<std::uint64_t> order_;
};
