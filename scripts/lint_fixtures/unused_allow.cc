// Allow-hygiene corpus: a LINT-ALLOW must carry a reason, and an allow that
// suppresses nothing is itself a finding — stale annotations can't pile up.
#include <cstdlib>

int stale_allow() {
  int x = 0;  // EXPECT(unused-allow) LINT-ALLOW(nondeterminism): nothing nondeterministic here
  return x;
}

int reasonless_allow() {
  // A reasonless allow suppresses nothing: both the underlying finding and
  // the missing reason are reported.
  return std::rand();  // EXPECT(nondeterminism) EXPECT(allow-missing-reason) LINT-ALLOW(nondeterminism)
}

int unknown_rule() {
  int y = 1;  // EXPECT(unused-allow) LINT-ALLOW(no-such-rule): typo'd rule names must not silently pass
  return y;
}
