#!/usr/bin/env python3
"""Load-test client for fairbenchd: replay a request mix, report latency.

Spawns a fairbenchd on a unix socket (or connects to a running one with
--connect), fires `--requests` estimate requests from `--connections`
concurrent NDJSON connections (one request in flight per connection, so
per-request latency is honest), and writes a bench_diff.py-compatible report
with p50/p95/p99 latency and sustained throughput:

    scripts/loadtest.py --out BENCH_service.json
    scripts/bench_diff.py --fail-above 50 BENCH_service.json new.json

The request mix sweeps seeds over a cheap scenario so the committed
BENCH_service.json is quick to regenerate, and every response is checked to
be a well-formed result event (a daemon error fails the load test, not just
slows it).
"""
import argparse
import json
import os
import signal
import socket
import statistics
import subprocess
import sys
import threading
import time

DEFAULT_SCENARIO = "exp01_contract_fairness"


def run_connection(path, requests, results, errors, conn_id):
    """One worker: a dedicated connection issuing its requests sequentially."""
    try:
        s = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
        s.connect(path)
        f = s.makefile("rw")
        for i, req in enumerate(requests):
            req = dict(req, id=f"c{conn_id}r{i}")
            t0 = time.monotonic()
            f.write(json.dumps(req) + "\n")
            f.flush()
            while True:
                line = f.readline()
                if not line:
                    errors.append(f"conn {conn_id}: daemon closed mid-request")
                    return
                event = json.loads(line)
                if event.get("event") == "progress":
                    continue
                if event.get("event") == "result":
                    if event.get("id") != req["id"]:
                        errors.append(f"conn {conn_id}: response id mismatch")
                        return
                    results.append((time.monotonic() - t0) * 1000.0)
                    break
                errors.append(f"conn {conn_id}: {event}")
                return
        f.close()
        s.close()
    except OSError as e:
        errors.append(f"conn {conn_id}: {e}")


def percentile(sorted_ms, q):
    """Nearest-rank percentile over a sorted latency list."""
    idx = min(len(sorted_ms) - 1, max(0, int(round(q / 100.0 * len(sorted_ms))) - 1))
    return sorted_ms[idx]


def main():
    ap = argparse.ArgumentParser(
        description=__doc__,
        formatter_class=argparse.RawDescriptionHelpFormatter,
        allow_abbrev=False,
        epilog="examples:\n"
               "  python3 scripts/loadtest.py --daemon build-perf/fairbenchd "
               "--requests 8 --connections 2 --runs 32\n"
               "  python3 scripts/loadtest.py --connect /tmp/fairbenchd.sock "
               "--out BENCH_service.ci.json\n"
               "\n"
               "Exit status: 0 clean drain with every request answered, "
               "1 any error event or unclean shutdown, 2 bad usage.\n")
    ap.add_argument("--daemon", default="build/fairbenchd",
                    help="fairbenchd binary to spawn (ignored with --connect)")
    ap.add_argument("--connect", default=None, metavar="SOCK",
                    help="unix socket of an already-running daemon")
    ap.add_argument("--workers", type=int, default=2,
                    help="daemon worker threads when spawning")
    ap.add_argument("--scenario", default=DEFAULT_SCENARIO)
    ap.add_argument("--runs", type=int, default=100,
                    help="Monte-Carlo runs per estimate request")
    ap.add_argument("--requests", type=int, default=24)
    ap.add_argument("--connections", type=int, default=4)
    ap.add_argument("--out", default=None, metavar="OUT.json",
                    help="write the bench_diff-compatible report here")
    args = ap.parse_args()

    proc = None
    if args.connect:
        path = args.connect
    else:
        path = f"/tmp/fairbenchd-loadtest-{os.getpid()}.sock"
        proc = subprocess.Popen(
            [args.daemon, "--unix", path, "--workers", str(args.workers), "--quiet"],
            stdout=subprocess.DEVNULL)
        for _ in range(100):
            if os.path.exists(path):
                break
            time.sleep(0.05)
        else:
            proc.kill()
            sys.exit("loadtest: daemon never bound its socket")

    # The mix: same scenario, swept seeds — distinct cache-friendly requests
    # that still exercise the full estimate path per request.
    mix = [{"verb": "estimate", "scenario": args.scenario, "runs": args.runs,
            "seed": 1000 + i, "threads": 1} for i in range(args.requests)]
    shards = [mix[i::args.connections] for i in range(args.connections)]

    results, errors, threads = [], [], []
    t0 = time.monotonic()
    for cid, shard in enumerate(shards):
        t = threading.Thread(target=run_connection,
                             args=(path, shard, results, errors, cid))
        t.start()
        threads.append(t)
    for t in threads:
        t.join()
    wall = time.monotonic() - t0

    if proc is not None:
        proc.send_signal(signal.SIGTERM)
        rc = proc.wait(timeout=30)
        if rc != 0:
            sys.exit(f"loadtest: daemon exited {rc} on SIGTERM (expected 0)")

    if errors:
        for e in errors:
            print(f"loadtest: ERROR {e}", file=sys.stderr)
        sys.exit(1)
    if len(results) != args.requests:
        sys.exit(f"loadtest: {len(results)}/{args.requests} requests answered")

    lat = sorted(results)
    report = {
        "experiment": "service_loadtest",
        "claim": f"fairbenchd sustains the request mix "
                 f"({args.requests} x {args.scenario}/{args.runs} runs over "
                 f"{args.connections} connections)",
        "gamma": None,
        "runs_per_point": args.runs,
        "threads": args.workers,
        "rows": [{
            "name": f"estimate_{args.scenario}",
            "requests": args.requests,
            "connections": args.connections,
            "p50_ms": round(percentile(lat, 50), 3),
            "p95_ms": round(percentile(lat, 95), 3),
            "p99_ms": round(percentile(lat, 99), 3),
            "mean_ms": round(statistics.fmean(lat), 3),
            "requests_per_sec": round(args.requests / wall, 3),
        }],
        "checks": [{"ok": True, "what": "every request answered with a result "
                                        "event; clean daemon shutdown"}],
        "deviations": 0,
    }
    text = json.dumps(report, indent=2)
    if args.out:
        with open(args.out, "w") as f:
            f.write(text + "\n")
        print(f"loadtest: report written to {args.out}")
    row = report["rows"][0]
    print(f"loadtest: {args.requests} requests in {wall:.2f}s — "
          f"p50 {row['p50_ms']}ms p95 {row['p95_ms']}ms p99 {row['p99_ms']}ms, "
          f"{row['requests_per_sec']} req/s")


if __name__ == "__main__":
    main()
