#!/usr/bin/env bash
# Launch an n-party GMW auction with every party in its own OS process,
# exchanging rounds over the real TCP mesh (bench/fairparty.cpp).
#
#   scripts/run_parties.sh [n] [bits] [base_port]
#
# Bids are derived deterministically from the party index; the script
# computes the expected maximum and passes --expect, so a wrong protocol
# output (or a broken mesh) fails the script. Exit 0 iff every party
# completed and agreed on the winning bid.
set -euo pipefail
cd "$(dirname "$0")/.."

N="${1:-3}"
BITS="${2:-8}"
BASE_PORT="${3:-9400}"
SEED="${SEED:-7}"
BIN="${FAIRPARTY:-build/fairparty}"

if [[ ! -x "$BIN" ]]; then
  echo "run_parties: $BIN not built (cmake -B build -S . && cmake --build build -j)" >&2
  exit 1
fi

# Deterministic bids and their maximum.
expect=0
bids=()
for ((i = 0; i < N; ++i)); do
  bid=$(( (100 + 37 * i + 13 * SEED) % (1 << BITS) ))
  bids+=("$bid")
  (( bid > expect )) && expect=$bid || true
done
echo "run_parties: n=$N bits=$BITS bids=${bids[*]} expect=$expect"

pids=()
for ((i = 0; i < N; ++i)); do
  "$BIN" --party "$i" --parties "$N" --bid "${bids[$i]}" --bits "$BITS" \
         --base-port "$BASE_PORT" --seed "$SEED" --expect "$expect" &
  pids+=($!)
done

rc=0
for pid in "${pids[@]}"; do
  wait "$pid" || rc=1
done
if [[ $rc -ne 0 ]]; then
  echo "run_parties: FAIL — at least one party aborted or disagreed" >&2
  exit 1
fi
echo "run_parties: PASS — all $N parties agree the winning bid is $expect"
