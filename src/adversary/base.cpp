#include "adversary/base.h"

namespace fairsfe::adversary {

AdversaryBase::AdversaryBase(std::set<sim::PartyId> initial_corruptions)
    : initial_(std::move(initial_corruptions)) {}

void AdversaryBase::setup(sim::AdvContext& ctx) {
  for (const sim::PartyId pid : initial_) ctx.corrupt(pid);
}

std::vector<sim::Message> AdversaryBase::honest_step_all(sim::AdvContext& ctx,
                                                         sim::MsgView delivered) {
  std::vector<sim::Message> out;
  for (const sim::PartyId pid : ctx.corrupted()) {
    std::vector<sim::Message> part = ctx.honest_step(pid, addressed_to(delivered, pid));
    out.insert(out.end(), std::make_move_iterator(part.begin()),
               std::make_move_iterator(part.end()));
  }
  return out;
}

void AdversaryBase::mark_learned(Bytes y) {
  learned_ = true;
  extracted_ = std::move(y);
}

}  // namespace fairsfe::adversary
