// Common scaffolding for attack strategies.
//
// Every strategy in this library is one of the paper's constructive
// adversaries: it corrupts a fixed (or randomly chosen) set of parties, runs
// them honestly via AdvContext::honest_step, and deviates only by aborting
// (withholding messages) at a strategically chosen moment — exactly the
// power used in the lower-bound proofs (Lemma 7, Lemma 12, Lemma 15).
#pragma once

#include <set>

#include "sim/adversary.h"

namespace fairsfe::adversary {

class AdversaryBase : public sim::IAdversary {
 public:
  explicit AdversaryBase(std::set<sim::PartyId> initial_corruptions);

  void setup(sim::AdvContext& ctx) override;

  [[nodiscard]] bool learned_output() const override { return learned_; }
  [[nodiscard]] std::optional<Bytes> extracted_output() const override { return extracted_; }

 protected:
  /// Run every corrupted party honestly on its share of `delivered`.
  std::vector<sim::Message> honest_step_all(sim::AdvContext& ctx, sim::MsgView delivered);

  /// Record that the strategy extracted the output.
  void mark_learned(Bytes y);

  std::set<sim::PartyId> initial_;
  bool learned_ = false;
  std::optional<Bytes> extracted_;
};

}  // namespace fairsfe::adversary
