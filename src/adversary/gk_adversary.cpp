#include "adversary/gk_adversary.h"

#include "fair/gk.h"
#include "fair/gk_multi.h"
#include "crypto/secret_sharing.h"

namespace fairsfe::adversary {

using sim::Message;

GkAborter::GkAborter(GkAbortRule rule, mpc::NotesPtr notes)
    : AdversaryBase({0}), rule_(std::move(rule)), notes_(std::move(notes)) {}

std::vector<Message> GkAborter::on_round(sim::AdvContext& ctx, const sim::AdvView& view) {
  if (aborted_) return {};

  // An incoming stream opening marks a reconstruction opportunity for p1.
  bool has_opening = false;
  for (const Message& m : view.delivered) {
    if (m.to == 0 && fair::decode_gk_opening(m.payload)) has_opening = true;
  }

  if (has_opening) {
    // What would p1 output if it consumed this opening and the peer then
    // aborted? That is exactly a_j.
    const auto value = ctx.probe_output(0, {addressed_to(view.delivered, 0)});
    if (value) {
      ++last_iteration_;
      history_.push_back(*value);
      if (rule_(last_iteration_, history_, ctx.rng())) {
        // Take a_j and abort before opening b_j.
        honest_step_all(ctx, view.delivered);
        mark_learned(*value);
        if (notes_) notes_->vals["abort_iteration"] = last_iteration_;
        aborted_ = true;
        return {};
      }
    }
  }

  std::vector<Message> out = honest_step_all(ctx, view.delivered);
  if (!learned_) {
    const sim::IParty& p1 = ctx.party(0);
    if (p1.done() && p1.output()) mark_learned(*p1.output());
  }
  return out;
}

GkMultiAborter::GkMultiAborter(std::set<sim::PartyId> corrupt, std::size_t n,
                               GkAbortRule rule, mpc::NotesPtr notes)
    : AdversaryBase(std::move(corrupt)), n_(n), rule_(std::move(rule)),
      notes_(std::move(notes)) {}

std::vector<Message> GkMultiAborter::on_round(sim::AdvContext& ctx,
                                              const sim::AdvView& view) {
  if (aborted_) return {};
  std::vector<Message> out = honest_step_all(ctx, view.delivered);

  // Pool this round's summands: the coalition's own (about to go out) plus
  // the honest ones seen early thanks to rushing.
  std::map<std::size_t, std::map<sim::PartyId, Bytes>> by_round;
  auto absorb = [&](sim::MsgView msgs) {
    for (const Message& m : msgs) {
      const auto sh = fair::decode_gk_multi_share(m.payload);
      if (sh) by_round[sh->j][m.from] = sh->summand;
    }
  };
  absorb(out);
  absorb(view.rushed);

  for (const auto& [j, shares] : by_round) {
    if (shares.size() != n_) continue;
    std::vector<Bytes> pool;
    pool.reserve(n_);
    for (const auto& [pid, s] : shares) pool.push_back(s);
    const Bytes v = xor_reconstruct(pool);
    history_.push_back(v);
    if (rule_(j, history_, ctx.rng())) {
      mark_learned(v);
      if (notes_) notes_->vals["abort_iteration"] = j;
      aborted_ = true;
      return {};  // withhold the coalition's round-j summands
    }
  }
  if (!learned_) {
    for (const sim::PartyId pid : ctx.corrupted()) {
      const sim::IParty& p = ctx.party(pid);
      if (p.done() && p.output()) mark_learned(*p.output());
    }
  }
  return out;
}

GkAbortRule gk_rule_abort_at(std::size_t k) {
  return [k](std::size_t j, const std::vector<Bytes>&, Rng&) { return j == k; };
}

GkAbortRule gk_rule_geometric(double beta) {
  return [beta](std::size_t, const std::vector<Bytes>&, Rng& rng) {
    return rng.uniform() < beta;
  };
}

GkAbortRule gk_rule_match_target(Bytes target) {
  return [target = std::move(target)](std::size_t, const std::vector<Bytes>& history, Rng&) {
    return history.back() == target;
  };
}

GkAbortRule gk_rule_repeat_detector() {
  return [](std::size_t j, const std::vector<Bytes>& history, Rng&) {
    return j >= 2 && history[j - 1] == history[j - 2];
  };
}

}  // namespace fairsfe::adversary
