// Attack strategies against the Gordon–Katz protocols (experiment E10).
//
// All of them corrupt p1 — the party that reconstructs first in each
// iteration and therefore the only one with an unfair-abort window (aborting
// exactly at iteration i* leaves the honest p2 with the stale b_{i*-1}).
// The strategies differ only in the abort rule applied to the sequence of
// reconstructed a_j values:
//
//   abort-at-iteration k   — fixed-round abort;
//   geometric(β)           — abort each iteration with probability β;
//   match-target           — abort the first time a_j equals a target value
//                            the adversary computed from its own input
//                            (f(x1, ŷ*) for a guessed ŷ*) — the optimal
//                            shape of attack from [GK10, Lemma 2];
//   repeat-detector        — abort when a_j == a_{j-1} (the constant tail of
//                            the stream gives itself away statistically).
//
// Theorems 23/24 say none of these (nor any other strategy) earns more than
// 1/p under ~γ = (0,0,1,0).
#pragma once

#include <functional>

#include "adversary/base.h"
#include "mpc/sfe_functionalities.h"

namespace fairsfe::adversary {

/// Decision rule: called after reconstructing iteration j's value (1-based);
/// `history` holds a_1..a_j. Return true to abort before sending b_j.
using GkAbortRule = std::function<bool(std::size_t j, const std::vector<Bytes>& history, Rng&)>;

class GkAborter final : public AdversaryBase {
 public:
  /// `notes`, if given, receives vals["abort_iteration"] = j when the rule
  /// fires — the F^{f,$} accounting classifies E10 as "aborted exactly at
  /// i*" (cf. [GK10, Lemma 2]), which the harness checks against the
  /// functionality's recorded i*.
  explicit GkAborter(GkAbortRule rule, mpc::NotesPtr notes = nullptr);

  std::vector<sim::Message> on_round(sim::AdvContext& ctx,
                                     const sim::AdvView& view) override;

 private:
  GkAbortRule rule_;
  mpc::NotesPtr notes_;
  std::vector<Bytes> history_;
  std::size_t last_iteration_ = 0;
  bool aborted_ = false;
};

GkAbortRule gk_rule_abort_at(std::size_t k);
GkAbortRule gk_rule_geometric(double beta);
GkAbortRule gk_rule_match_target(Bytes target);
GkAbortRule gk_rule_repeat_detector();

/// Coalition attack on the multi-party partial-fairness protocol (E16):
/// drive the coalition honestly, rush each reconstruction round (pool the
/// coalition's summands with the honest broadcasts seen early), apply the
/// abort rule to the reconstructed v_j, and withhold on abort.
class GkMultiAborter final : public AdversaryBase {
 public:
  GkMultiAborter(std::set<sim::PartyId> corrupt, std::size_t n, GkAbortRule rule,
                 mpc::NotesPtr notes = nullptr);

  std::vector<sim::Message> on_round(sim::AdvContext& ctx,
                                     const sim::AdvView& view) override;

 private:
  std::size_t n_;
  GkAbortRule rule_;
  mpc::NotesPtr notes_;
  std::vector<Bytes> history_;
  bool aborted_ = false;
};

}  // namespace fairsfe::adversary
