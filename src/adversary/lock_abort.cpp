#include "adversary/lock_abort.h"

namespace fairsfe::adversary {

LockAbortAdversary::LockAbortAdversary(std::set<sim::PartyId> corrupt, Bytes actual_output)
    : AdversaryBase(std::move(corrupt)), actual_(std::move(actual_output)) {}

std::vector<sim::Message> LockAbortAdversary::on_round(sim::AdvContext& ctx,
                                                       const sim::AdvView& view) {
  if (aborted_) return {};

  bool locked = false;
  for (const sim::PartyId pid : ctx.corrupted()) {
    const auto probe = ctx.probe_output(
        pid, {addressed_to(view.delivered, pid), addressed_to(view.rushed, pid)});
    if (probe && *probe == actual_) {
      locked = true;
      if (!learned_) mark_learned(*probe);
    }
  }

  if (locked) {
    // Consume this round's normal deliveries so the corrupted states stay
    // consistent, but send nothing — the abort happens before this round's
    // messages go out.
    honest_step_all(ctx, view.delivered);
    aborted_ = true;
    return {};
  }
  return honest_step_all(ctx, view.delivered);
}

}  // namespace fairsfe::adversary
