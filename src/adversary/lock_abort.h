// The generic lock-detecting abort strategy — the paper's A₁/A₂ (Theorem 4)
// and A_ī (Lemma 12) adversaries.
//
// Each round the strategy probes every corrupted party: "if I consume
// everything observable so far (the normal deliveries plus this round's
// rushed traffic) and then the execution stops, would this party output the
// *actual* evaluation result?" The moment some probe says yes, the output is
// locked: the strategy records it and aborts — it withholds all of the
// corrupted parties' messages from this round on, before sending its
// round-ℓ messages, exactly as in the proofs. Until then every corrupted
// party follows the protocol honestly.
//
// Knowing the actual output for the probe comparison is legitimate adversary
// knowledge: the paper's adversary distinguishes the actual output from the
// default-input fallback, which it can compute itself from the corrupted
// inputs; the experiment factory passes that reference value in.
#pragma once

#include "adversary/base.h"

namespace fairsfe::adversary {

class LockAbortAdversary final : public AdversaryBase {
 public:
  LockAbortAdversary(std::set<sim::PartyId> corrupt, Bytes actual_output);

  std::vector<sim::Message> on_round(sim::AdvContext& ctx,
                                     const sim::AdvView& view) override;

 private:
  Bytes actual_;
  bool aborted_ = false;
};

}  // namespace fairsfe::adversary
