#include "adversary/mixed.h"

#include <stdexcept>

namespace fairsfe::adversary {

MixedAdversary::MixedAdversary(std::vector<AdversaryFactory> choices)
    : choices_(std::move(choices)) {
  if (choices_.empty()) throw std::invalid_argument("MixedAdversary: no choices");
}

void MixedAdversary::setup(sim::AdvContext& ctx) {
  const std::size_t pick = ctx.rng().below(choices_.size());
  Rng sub = ctx.rng().fork("mixed-choice");
  chosen_ = choices_[pick](sub);
  chosen_->setup(ctx);
}

std::vector<sim::Message> MixedAdversary::on_round(sim::AdvContext& ctx,
                                                   const sim::AdvView& view) {
  return chosen_->on_round(ctx, view);
}

bool MixedAdversary::abort_functionality(sim::AdvContext& ctx,
                                         const std::vector<sim::Message>& outs) {
  return chosen_->abort_functionality(ctx, outs);
}

bool MixedAdversary::learned_output() const {
  return chosen_ && chosen_->learned_output();
}

std::optional<Bytes> MixedAdversary::extracted_output() const {
  return chosen_ ? chosen_->extracted_output() : std::nullopt;
}

bool MixedAdversary::finished() const {
  return chosen_ && chosen_->finished();
}

}  // namespace fairsfe::adversary
