// Probabilistic mixtures of attack strategies — the paper's Agen (Theorem 4)
// corrupts p1 or p2 uniformly at random; Lemma 13's adversary picks one of
// the A_ī uniformly. The mixture picks a choice during setup (using the
// adversary's own randomness) and delegates everything to it.
#pragma once

#include <functional>
#include <memory>
#include <vector>

#include "sim/adversary.h"

namespace fairsfe::adversary {

using AdversaryFactory = std::function<std::unique_ptr<sim::IAdversary>(Rng&)>;

class MixedAdversary final : public sim::IAdversary {
 public:
  /// Picks one factory uniformly at setup time.
  explicit MixedAdversary(std::vector<AdversaryFactory> choices);

  void setup(sim::AdvContext& ctx) override;
  std::vector<sim::Message> on_round(sim::AdvContext& ctx,
                                     const sim::AdvView& view) override;
  bool abort_functionality(sim::AdvContext& ctx,
                           const std::vector<sim::Message>& outs) override;
  [[nodiscard]] bool learned_output() const override;
  [[nodiscard]] std::optional<Bytes> extracted_output() const override;
  [[nodiscard]] bool finished() const override;

 private:
  std::vector<AdversaryFactory> choices_;
  std::unique_ptr<sim::IAdversary> chosen_;
};

}  // namespace fairsfe::adversary
