#include "adversary/partial_1p_attack.h"

#include "fair/gk.h"

namespace fairsfe::adversary {

using sim::Message;

bool Partial1pPolicy::fires(std::size_t j, const std::vector<Bytes>& history,
                            Rng& rng) const {
  if (match_target && !history.empty() && history.back() == target) return true;
  if (geometric_beta > 0.0 && rng.uniform() < geometric_beta) return true;
  return abort_round != 0 && j == abort_round;
}

Partial1pPolicy partial_1p_policy_abort_at(std::size_t j) {
  Partial1pPolicy p;
  p.abort_round = j;
  return p;
}

Partial1pPolicy partial_1p_policy_match(Bytes target) {
  Partial1pPolicy p;
  p.match_target = true;
  p.target = std::move(target);
  return p;
}

Partial1pPolicy partial_1p_policy_geometric(double beta) {
  Partial1pPolicy p;
  p.geometric_beta = beta;
  return p;
}

Partial1pPolicy partial_1p_policy_honest() { return Partial1pPolicy{}; }

Partial1pAborter::Partial1pAborter(Partial1pPolicy policy, mpc::NotesPtr notes)
    : AdversaryBase({0}), policy_(std::move(policy)), notes_(std::move(notes)) {}

std::vector<Message> Partial1pAborter::on_round(sim::AdvContext& ctx,
                                                const sim::AdvView& view) {
  if (aborted_) return {};

  // Keep p1 in honest lockstep: it consumes last round's traffic (the peer's
  // opening j-1 or the dealer output) and emits its opening of iteration j.
  std::vector<Message> out = honest_step_all(ctx, view.delivered);

  // Rushing: the peer's opening of iteration j is in THIS round's traffic.
  // Probing p1's post-step clone with it yields v_j one round before the
  // honest schedule would reconstruct it.
  bool has_opening = false;
  for (const Message& m : view.rushed) {
    if (m.to != 0) continue;
    const auto dec = fair::decode_gk_opening(m.payload);
    if (dec && dec->first == last_iteration_ + 1) has_opening = true;
  }
  if (has_opening) {
    const auto value = ctx.probe_output(0, {addressed_to(view.rushed, 0)});
    if (value) {
      ++last_iteration_;
      history_.push_back(*value);
      if (policy_.fires(last_iteration_, history_, ctx.rng())) {
        // Take v_j and withhold p1's opening of iteration j: the honest peer
        // is left one iteration behind, at v_{j-1}.
        mark_learned(*value);
        if (notes_) notes_->vals["abort_iteration"] = last_iteration_;
        aborted_ = true;
        return {};
      }
    }
  }

  if (!learned_) {
    const sim::IParty& p1 = ctx.party(0);
    if (p1.done() && p1.output()) mark_learned(*p1.output());
  }
  return out;
}

}  // namespace fairsfe::adversary
