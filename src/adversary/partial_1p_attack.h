// Attack strategies against the round-sampling 1/p protocol (fair/partial_1p.h;
// experiment E21).
//
// The simultaneous exchange closes GK's structural asymmetry (no party
// reconstructs "first" within an iteration), so the only unfair window left
// is RUSHING: in the round where both parties release iteration j, the
// adversary sees the peer's opening before deciding whether its own goes
// out. Aborting there leaves the honest peer one iteration behind — unfair
// exactly when j = i*, which the uniform switch round hits with probability
// 1/p for EVERY abort rule. The strategies below only choose WHICH j to
// gamble on.
//
// The policy is a plain parameter vector (not hand-picked rule objects) so
// ROADMAP item 5's strategy-search layer can sweep it against the
// Monte-Carlo oracle without new adversary code.
#pragma once

#include "adversary/base.h"
#include "mpc/sfe_functionalities.h"

namespace fairsfe::adversary {

/// Searchable abort policy for the 1/p exchange. Interpretation, in
/// precedence order per iteration j:
///   1. match_target && history.back() == target  → abort;
///   2. geometric_beta > 0 and a β-coin comes up   → abort;
///   3. j == abort_round                           → abort (0 = never).
/// All-defaults (abort_round 0, no target, β = 0) is the honest policy.
struct Partial1pPolicy {
  std::size_t abort_round = 0;  ///< fixed-j abort; 0 disables
  bool match_target = false;    ///< abort when the probed value equals target
  Bytes target;                 ///< the value match_target compares against
  double geometric_beta = 0.0;  ///< per-iteration abort probability

  [[nodiscard]] bool fires(std::size_t j, const std::vector<Bytes>& history,
                           Rng& rng) const;
};

/// Ready-made policies (the E21 family).
Partial1pPolicy partial_1p_policy_abort_at(std::size_t j);
Partial1pPolicy partial_1p_policy_match(Bytes target);
Partial1pPolicy partial_1p_policy_geometric(double beta);
Partial1pPolicy partial_1p_policy_honest();

/// The rushing aborter corrupting p1 (party 0): runs p1 honestly, probes the
/// peer's rushed opening of each iteration to learn v_j one round early, and
/// on a policy hit withholds p1's own opening — the honest peer then
/// finishes with v_{j-1}. Records vals["abort_iteration"] = j in `notes` for
/// the F^{f,$} accounting (rpd::notes_switch_round_mapping).
class Partial1pAborter final : public AdversaryBase {
 public:
  explicit Partial1pAborter(Partial1pPolicy policy, mpc::NotesPtr notes = nullptr);

  std::vector<sim::Message> on_round(sim::AdvContext& ctx,
                                     const sim::AdvView& view) override;

 private:
  Partial1pPolicy policy_;
  mpc::NotesPtr notes_;
  std::vector<Bytes> history_;
  std::size_t last_iteration_ = 0;
  bool aborted_ = false;
};

}  // namespace fairsfe::adversary
