#include "adversary/penalty_attack.h"

#include "sim/functionality.h"

namespace fairsfe::adversary {

using sim::Message;

PenaltyAdversary::PenaltyAdversary(PenaltyMode mode)
    : AdversaryBase({0}), mode_(mode) {}

std::vector<Message> PenaltyAdversary::on_round(sim::AdvContext& ctx,
                                                const sim::AdvView& view) {
  if (mode_ == PenaltyMode::kNoShow || withheld_) return {};

  std::vector<Message> out = honest_step_all(ctx, view.delivered);

  if (mode_ == PenaltyMode::kWithholdClaim) {
    // The escrow's delivery of y to p1 arrives in this round's consumed
    // traffic. The payload IS the real output — take it and suppress the
    // acknowledgement p1's honest step just produced.
    for (const Message& m : view.delivered) {
      if (m.from != sim::kFunc || m.to != 0) continue;
      const auto y = sim::decode_func_output(m.payload);
      if (y) {
        mark_learned(*y);
        withheld_ = true;
        return {};
      }
    }
  }

  if (!learned_) {
    const sim::IParty& p1 = ctx.party(0);
    if (p1.done() && p1.output()) mark_learned(*p1.output());
  }
  return out;
}

}  // namespace fairsfe::adversary
