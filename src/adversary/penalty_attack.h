// Attack strategies against the deposit-based exchange (fair/penalty.h;
// experiment E22).
//
// The escrow's ordered delivery gives the corrupted p1 one real lever:
// receive y and never acknowledge, leaving the honest p2 outputless (event
// E10) at the cost of the forfeited deposit. The E22 sweep shows the payoff
// of that lever crossing below the honest strategy's as the deposit grows —
// the economic-fairness flip point d* = γ10 − γ11.
//
// Like Partial1pPolicy, the policy is a plain enum parameter so the
// ROADMAP-item-5 search layer can sweep strategies without new adversary
// code.
#pragma once

#include "adversary/base.h"
#include "mpc/sfe_functionalities.h"

namespace fairsfe::adversary {

/// What the corrupted p1 does with the escrowed exchange.
enum class PenaltyMode {
  kWithholdClaim,  ///< receive y, never acknowledge — forfeits the deposit
  kNoShow,         ///< never submit an input — money-neutral E00 abort
  kHonest,         ///< follow the protocol (deposit refunded)
};

/// The deposit-game adversary corrupting p1 (party 0).
class PenaltyAdversary final : public AdversaryBase {
 public:
  explicit PenaltyAdversary(PenaltyMode mode);

  std::vector<sim::Message> on_round(sim::AdvContext& ctx,
                                     const sim::AdvView& view) override;

 private:
  PenaltyMode mode_;
  bool withheld_ = false;
};

}  // namespace fairsfe::adversary
