#include "adversary/strategies.h"

#include "fair/gmw_half.h"
#include "fair/leaky_and.h"
#include "fair/lemma18.h"
#include "fair/optnsfe.h"

namespace fairsfe::adversary {

using sim::Message;

PassiveObserver::PassiveObserver(std::set<sim::PartyId> corrupt, Bytes actual_output)
    : AdversaryBase(std::move(corrupt)), actual_(std::move(actual_output)) {}

std::vector<Message> PassiveObserver::on_round(sim::AdvContext& ctx,
                                               const sim::AdvView& view) {
  std::vector<Message> out = honest_step_all(ctx, view.delivered);
  if (out.empty() && view.delivered.empty()) {
    ++rounds_idle_;
  } else {
    rounds_idle_ = 0;
  }
  if (!learned_) {
    // Did any corrupted party (honestly driven) end with the actual output?
    for (const sim::PartyId pid : ctx.corrupted()) {
      const sim::IParty& p = ctx.party(pid);
      if (p.done() && p.output() && *p.output() == actual_) {
        mark_learned(actual_);
        break;
      }
    }
  }
  return out;
}

AbortFunctionality::AbortFunctionality(std::set<sim::PartyId> corrupt)
    : AdversaryBase(std::move(corrupt)) {}

std::vector<Message> AbortFunctionality::on_round(sim::AdvContext& ctx,
                                                  const sim::AdvView& view) {
  // Provide inputs honestly so the functionality fires, then never speak
  // again (the gate abort does the damage).
  if (view.round == 0) return honest_step_all(ctx, view.delivered);
  return {};
}

HalfGmwCoalition::HalfGmwCoalition(std::set<sim::PartyId> corrupt, std::size_t n)
    : AdversaryBase(std::move(corrupt)), n_(n) {}

std::vector<Message> HalfGmwCoalition::on_round(sim::AdvContext& ctx,
                                                const sim::AdvView& view) {
  if (aborted_) return {};
  std::vector<Message> out = honest_step_all(ctx, view.delivered);

  // The broadcast round: the corrupted parties are about to announce their
  // shares and the honest ones already did (rushed traffic).
  std::vector<ShamirShare> pool;
  bool at_broadcast = false;
  auto absorb = [&](sim::MsgView msgs) {
    for (const Message& m : msgs) {
      const auto sb = fair::decode_share_broadcast(m.payload);
      if (!sb) continue;
      at_broadcast = true;
      pool.push_back(sb->first);
    }
  };
  absorb(out);
  absorb(view.rushed);

  if (at_broadcast) {
    const auto y = shamir_reconstruct_bytes(pool, fair::half_gmw_threshold(n_));
    if (y) mark_learned(*y);
    // Withhold the coalition's shares: honest parties keep only their own.
    aborted_ = true;
    return {};
  }
  return out;
}

void LeakyAndProbe::setup(sim::AdvContext& ctx) { ctx.corrupt(1); }

std::vector<Message> LeakyAndProbe::on_round(sim::AdvContext& ctx,
                                             const sim::AdvView& view) {
  if (view.round == 0) {
    std::vector<Message> out = ctx.honest_step(1, {});
    for (Message& m : out) {
      if (fair::decode_preamble(m.payload)) m.payload = fair::encode_preamble(1);
    }
    return out;
  }
  for (const sim::MsgView* batch : {&view.delivered, &view.rushed}) {
    for (const Message& m : *batch) {
      const auto leak = fair::decode_leak(m.payload);
      if (leak && *leak) leaked_ = **leak;
    }
  }
  return ctx.honest_step(1, addressed_to(view.delivered, 1));
}

Lemma18Deviator::Lemma18Deviator(sim::PartyId corrupt)
    : AdversaryBase({corrupt}), pid_(corrupt) {}

bool Lemma18Deviator::abort_functionality(sim::AdvContext&,
                                          const std::vector<Message>& outs) {
  for (const Message& m : outs) {
    if (m.to != pid_) continue;
    const auto body = sim::decode_func_output(m.payload);
    const auto priv = body ? fair::decode_priv_output(*body) : std::nullopt;
    if (priv && priv->has_value) {
      // Lucky draw: we are p_{i*}. Take y and kill the delivery to everyone
      // else.
      mark_learned(priv->y);
      aborted_ = true;
      return true;
    }
  }
  return false;
}

std::vector<Message> Lemma18Deviator::on_round(sim::AdvContext& ctx,
                                               const sim::AdvView& view) {
  if (aborted_) return {};
  std::vector<Message> out = honest_step_all(ctx, view.delivered);
  // Step-2 deviation: turn our "0" flags into "1"s.
  for (Message& m : out) {
    if (fair::decode_flag(m.payload)) m.payload = fair::encode_flag(1);
  }
  // Watch for the value (broadcast or the tails-branch direct send).
  if (!learned_) {
    for (const sim::MsgView* msgs : {&view.delivered, &view.rushed}) {
      for (const Message& m : *msgs) {
        const auto ann = fair::decode_announcement(m.payload);
        if (ann) mark_learned(ann->first);
      }
    }
  }
  return out;
}

}  // namespace fairsfe::adversary
