// The remaining named attack strategies used across experiments:
//
//   NoCorruption         — the empty adversary (event E01 baseline);
//   PassiveObserver      — corrupts a set, runs it honestly to the end, and
//                          records the output it sees (best strategy when
//                          aborting cannot help — earns γ11);
//   AbortFunctionality   — aborts the hybrid functionality at its gate
//                          without using the outputs (E00-style attack);
//   HalfGmwCoalition     — Lemma 17's attack on Π½GMW: rush the share
//                          broadcast, pool all n shares, reconstruct, and
//                          withhold the coalition's shares;
//   Lemma18Deviator      — Lemma 18's single-corruption attack: abort at the
//                          gate when lucky (corrupted p_{i*}), otherwise send
//                          "1" flags to bait the tails-branch direct reveal.
#pragma once

#include "adversary/base.h"
#include "crypto/shamir.h"

namespace fairsfe::adversary {

class NoCorruption final : public sim::IAdversary {
 public:
  void setup(sim::AdvContext&) override {}
  std::vector<sim::Message> on_round(sim::AdvContext&, const sim::AdvView&) override {
    return {};
  }
  [[nodiscard]] bool learned_output() const override { return false; }
};

class PassiveObserver final : public AdversaryBase {
 public:
  /// `actual_output` is the reference value used to recognize the output in
  /// the corrupted parties' final states.
  PassiveObserver(std::set<sim::PartyId> corrupt, Bytes actual_output);

  std::vector<sim::Message> on_round(sim::AdvContext& ctx,
                                     const sim::AdvView& view) override;
  [[nodiscard]] bool finished() const override { return rounds_idle_ > 3; }

 private:
  Bytes actual_;
  int rounds_idle_ = 0;
};

class AbortFunctionality final : public AdversaryBase {
 public:
  explicit AbortFunctionality(std::set<sim::PartyId> corrupt);

  std::vector<sim::Message> on_round(sim::AdvContext& ctx,
                                     const sim::AdvView& view) override;
  bool abort_functionality(sim::AdvContext&, const std::vector<sim::Message>&) override {
    return true;
  }
};

class HalfGmwCoalition final : public AdversaryBase {
 public:
  HalfGmwCoalition(std::set<sim::PartyId> corrupt, std::size_t n);

  std::vector<sim::Message> on_round(sim::AdvContext& ctx,
                                     const sim::AdvView& view) override;

 private:
  std::size_t n_;
  bool aborted_ = false;
};

/// The Section 5 attack on Π̃: corrupt p2, replace the honest 0-bit preamble
/// by a 1-bit, record the leaked input if p1's biased coin fires, and follow
/// the embedded GK protocol honestly otherwise. `leaked()` returns the
/// captured input of the honest p1.
class LeakyAndProbe final : public sim::IAdversary {
 public:
  void setup(sim::AdvContext& ctx) override;
  std::vector<sim::Message> on_round(sim::AdvContext& ctx,
                                     const sim::AdvView& view) override;
  [[nodiscard]] bool learned_output() const override { return leaked_.has_value(); }
  [[nodiscard]] std::optional<Bytes> extracted_output() const override { return leaked_; }
  [[nodiscard]] const std::optional<Bytes>& leaked() const { return leaked_; }

 private:
  std::optional<Bytes> leaked_;
};

class Lemma18Deviator final : public AdversaryBase {
 public:
  explicit Lemma18Deviator(sim::PartyId corrupt);

  std::vector<sim::Message> on_round(sim::AdvContext& ctx,
                                     const sim::AdvView& view) override;
  bool abort_functionality(sim::AdvContext& ctx,
                           const std::vector<sim::Message>& outs) override;

 private:
  sim::PartyId pid_;
  bool aborted_ = false;
};

}  // namespace fairsfe::adversary
