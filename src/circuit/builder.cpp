#include "circuit/builder.h"

#include <stdexcept>

#include "util/check.h"

namespace fairsfe::circuit {

Builder::Builder(std::size_t num_parties)
    : num_parties_(num_parties), input_widths_(num_parties, 0) {}

Wire Builder::push(Gate g) {
  gates_.push_back(g);
  return static_cast<Wire>(gates_.size() - 1);
}

Word Builder::input(std::size_t party, std::size_t width) {
  if (party >= num_parties_) throw std::invalid_argument("Builder::input: bad party");
  Word w;
  w.reserve(width);
  for (std::size_t i = 0; i < width; ++i) {
    Gate g;
    g.type = GateType::kInput;
    g.party = static_cast<std::uint32_t>(party);
    g.input_index = static_cast<std::uint32_t>(input_widths_[party]++);
    w.push_back(push(g));
  }
  return w;
}

Wire Builder::constant(bool v) {
  Gate g;
  g.type = GateType::kConst;
  g.const_value = v;
  return push(g);
}

Word Builder::constant_word(std::uint64_t v, std::size_t width) {
  Word w;
  w.reserve(width);
  for (std::size_t i = 0; i < width; ++i) w.push_back(constant(((v >> i) & 1) != 0));
  return w;
}

Wire Builder::xor_gate(Wire a, Wire b) {
  Gate g;
  g.type = GateType::kXor;
  g.a = a;
  g.b = b;
  return push(g);
}

Wire Builder::and_gate(Wire a, Wire b) {
  Gate g;
  g.type = GateType::kAnd;
  g.a = a;
  g.b = b;
  return push(g);
}

Wire Builder::not_gate(Wire a) {
  Gate g;
  g.type = GateType::kNot;
  g.a = a;
  return push(g);
}

Wire Builder::or_gate(Wire a, Wire b) {
  // a | b = (a ^ b) ^ (a & b)
  return xor_gate(xor_gate(a, b), and_gate(a, b));
}

Wire Builder::mux(Wire sel, Wire a, Wire b) {
  // b ^ sel & (a ^ b)
  return xor_gate(b, and_gate(sel, xor_gate(a, b)));
}

Word Builder::xor_word(const Word& a, const Word& b) {
  FAIRSFE_CHECK(a.size() == b.size(), "Builder: word operands must have equal width");
  Word out;
  out.reserve(a.size());
  for (std::size_t i = 0; i < a.size(); ++i) out.push_back(xor_gate(a[i], b[i]));
  return out;
}

Word Builder::and_word(const Word& a, const Word& b) {
  FAIRSFE_CHECK(a.size() == b.size(), "Builder: word operands must have equal width");
  Word out;
  out.reserve(a.size());
  for (std::size_t i = 0; i < a.size(); ++i) out.push_back(and_gate(a[i], b[i]));
  return out;
}

Word Builder::mux_word(Wire sel, const Word& a, const Word& b) {
  FAIRSFE_CHECK(a.size() == b.size(), "Builder: word operands must have equal width");
  Word out;
  out.reserve(a.size());
  for (std::size_t i = 0; i < a.size(); ++i) out.push_back(mux(sel, a[i], b[i]));
  return out;
}

Word Builder::add(const Word& a, const Word& b) {
  FAIRSFE_CHECK(a.size() == b.size(), "Builder: word operands must have equal width");
  Word out;
  out.reserve(a.size());
  Wire carry = constant(false);
  for (std::size_t i = 0; i < a.size(); ++i) {
    const Wire axb = xor_gate(a[i], b[i]);
    out.push_back(xor_gate(axb, carry));
    // carry' = (a & b) | (carry & (a ^ b)) — the two terms are disjoint, so
    // XOR composes them correctly.
    carry = xor_gate(and_gate(a[i], b[i]), and_gate(carry, axb));
  }
  return out;
}

Wire Builder::eq(const Word& a, const Word& b) {
  FAIRSFE_CHECK(a.size() == b.size(), "Builder: word operands must have equal width");
  Wire acc = constant(true);
  for (std::size_t i = 0; i < a.size(); ++i) {
    acc = and_gate(acc, not_gate(xor_gate(a[i], b[i])));
  }
  return acc;
}

Wire Builder::gt(const Word& a, const Word& b) {
  FAIRSFE_CHECK(a.size() == b.size(), "Builder: word operands must have equal width");
  // MSB-down scan: gt = a_i & ~b_i at the first differing bit.
  Wire gt_acc = constant(false);
  Wire eq_acc = constant(true);
  for (std::size_t idx = a.size(); idx-- > 0;) {
    const Wire ai = a[idx];
    const Wire bi = b[idx];
    const Wire here = and_gate(ai, not_gate(bi));
    gt_acc = or_gate(gt_acc, and_gate(eq_acc, here));
    eq_acc = and_gate(eq_acc, not_gate(xor_gate(ai, bi)));
  }
  return gt_acc;
}

void Builder::output(const Word& w) {
  outputs_.insert(outputs_.end(), w.begin(), w.end());
}

Circuit Builder::build() {
  return Circuit(num_parties_, std::move(gates_), std::move(input_widths_),
                 std::move(outputs_));
}

Circuit make_swap_circuit(std::size_t bits) {
  Builder b(2);
  const Word x1 = b.input(0, bits);
  const Word x2 = b.input(1, bits);
  b.output(x2);
  b.output(x1);
  return b.build();
}

Circuit make_and_circuit() {
  Builder b(2);
  const Word x1 = b.input(0, 1);
  const Word x2 = b.input(1, 1);
  b.output({b.and_gate(x1[0], x2[0])});
  return b.build();
}

Circuit make_millionaires_circuit(std::size_t bits) {
  Builder b(2);
  const Word x1 = b.input(0, bits);
  const Word x2 = b.input(1, bits);
  b.output({b.gt(x1, x2)});
  return b.build();
}

Circuit make_concat_circuit(std::size_t n, std::size_t bits_each) {
  Builder b(n);
  for (std::size_t p = 0; p < n; ++p) b.output(b.input(p, bits_each));
  return b.build();
}

Circuit make_max_circuit(std::size_t n, std::size_t bits) {
  Builder b(n);
  Word best = b.input(0, bits);
  for (std::size_t p = 1; p < n; ++p) {
    const Word x = b.input(p, bits);
    best = b.mux_word(b.gt(x, best), x, best);
  }
  b.output(best);
  return b.build();
}

}  // namespace fairsfe::circuit
