// Combinator-style boolean circuit builder.
//
// `Word` is a little-endian vector of wires. The builder offers the gate
// primitives plus the word-level arithmetic (ripple-carry add, comparators,
// mux) needed to express the example functions of the paper's experiments:
// swap, AND, millionaires' comparison, and concatenation.
#pragma once

#include <vector>

#include "circuit/circuit.h"

namespace fairsfe::circuit {

using Word = std::vector<Wire>;

class Builder {
 public:
  explicit Builder(std::size_t num_parties);

  /// Declare `width` fresh input bits for `party` (appended to its input).
  Word input(std::size_t party, std::size_t width);

  Wire constant(bool v);
  Word constant_word(std::uint64_t v, std::size_t width);

  Wire xor_gate(Wire a, Wire b);
  Wire and_gate(Wire a, Wire b);
  Wire not_gate(Wire a);
  Wire or_gate(Wire a, Wire b);
  /// sel ? a : b
  Wire mux(Wire sel, Wire a, Wire b);

  // Word-level operations; operands must have equal width.
  Word xor_word(const Word& a, const Word& b);
  Word and_word(const Word& a, const Word& b);
  /// sel ? a : b, bitwise.
  Word mux_word(Wire sel, const Word& a, const Word& b);
  /// Ripple-carry addition mod 2^width.
  Word add(const Word& a, const Word& b);
  /// Equality of two words (single wire).
  Wire eq(const Word& a, const Word& b);
  /// Unsigned greater-than a > b (single wire).
  Wire gt(const Word& a, const Word& b);

  /// Mark wires as (public) circuit outputs, in order.
  void output(const Word& w);

  /// Finalize. The builder must not be reused afterwards.
  Circuit build();

 private:
  Wire push(Gate g);

  std::size_t num_parties_;
  std::vector<Gate> gates_;
  std::vector<std::size_t> input_widths_;
  std::vector<Wire> outputs_;
};

// Pre-built circuits for the paper's workloads.

/// fswp(x1, x2) = x2 ‖ x1 — the swap function of Theorem 4 (both inputs
/// `bits` wide; output is x2 then x1).
Circuit make_swap_circuit(std::size_t bits);

/// Two-party logical AND of single-bit inputs (Section 5's function).
Circuit make_and_circuit();

/// Millionaires: output 1 iff x1 > x2 (both `bits` wide).
Circuit make_millionaires_circuit(std::size_t bits);

/// n-party concatenation f(x1,...,xn) = x1 ‖ ... ‖ xn (Lemma 12's function).
Circuit make_concat_circuit(std::size_t n, std::size_t bits_each);

/// n-party maximum of `bits`-wide unsigned inputs (auction example).
Circuit make_max_circuit(std::size_t n, std::size_t bits);

}  // namespace fairsfe::circuit
