#include "circuit/circuit.h"

#include <stdexcept>

#include "util/check.h"

namespace fairsfe::circuit {

Circuit::Circuit(std::size_t num_parties, std::vector<Gate> gates,
                 std::vector<std::size_t> input_widths, std::vector<Wire> outputs)
    : gates_(std::move(gates)),
      input_widths_(std::move(input_widths)),
      outputs_(std::move(outputs)) {
  FAIRSFE_CHECK(input_widths_.size() == num_parties,
                "Circuit: one input width per party");
  for (std::size_t i = 0; i < gates_.size(); ++i) {
    const Gate& g = gates_[i];
    switch (g.type) {
      case GateType::kXor:
      case GateType::kAnd:
        FAIRSFE_DCHECK(g.a < i && g.b < i, "Circuit: gate inputs must be earlier wires");
        if (g.type == GateType::kAnd) ++and_count_;
        break;
      case GateType::kNot:
        FAIRSFE_DCHECK(g.a < i, "Circuit: gate input must be an earlier wire");
        break;
      case GateType::kInput:
        FAIRSFE_DCHECK(g.party < input_widths_.size(), "Circuit: input gate party out of range");
        FAIRSFE_DCHECK(g.input_index < input_widths_[g.party],
                       "Circuit: input index exceeds declared width");
        break;
      case GateType::kConst:
        break;
    }
  }
  for (const Wire w : outputs_) {
    FAIRSFE_DCHECK(w < gates_.size(), "Circuit: output wire out of range");
    (void)w;
  }
}

std::vector<bool> Circuit::eval(const std::vector<std::vector<bool>>& inputs) const {
  if (inputs.size() != input_widths_.size()) {
    throw std::invalid_argument("Circuit::eval: wrong number of input vectors");
  }
  for (std::size_t p = 0; p < inputs.size(); ++p) {
    if (inputs[p].size() != input_widths_[p]) {
      throw std::invalid_argument("Circuit::eval: wrong input width");
    }
  }
  std::vector<bool> values(gates_.size());
  for (std::size_t i = 0; i < gates_.size(); ++i) {
    const Gate& g = gates_[i];
    switch (g.type) {
      case GateType::kInput:
        values[i] = inputs[g.party][g.input_index];
        break;
      case GateType::kConst:
        values[i] = g.const_value;
        break;
      case GateType::kXor:
        values[i] = values[g.a] != values[g.b];
        break;
      case GateType::kAnd:
        values[i] = values[g.a] && values[g.b];
        break;
      case GateType::kNot:
        values[i] = !values[g.a];
        break;
    }
  }
  std::vector<bool> out;
  out.reserve(outputs_.size());
  for (const Wire w : outputs_) out.push_back(values[w]);
  return out;
}

std::vector<bool> bytes_to_bits(ByteView data, std::size_t bit_count) {
  std::vector<bool> bits(bit_count, false);
  for (std::size_t i = 0; i < bit_count; ++i) {
    const std::size_t byte = i / 8;
    if (byte < data.size()) bits[i] = ((data[byte] >> (i % 8)) & 1) != 0;
  }
  return bits;
}

Bytes bits_to_bytes(const std::vector<bool>& bits) {
  Bytes out((bits.size() + 7) / 8, 0);
  for (std::size_t i = 0; i < bits.size(); ++i) {
    if (bits[i]) out[i / 8] = static_cast<std::uint8_t>(out[i / 8] | (1u << (i % 8)));
  }
  return out;
}

std::vector<bool> u64_to_bits(std::uint64_t value, std::size_t bit_count) {
  std::vector<bool> bits(bit_count, false);
  for (std::size_t i = 0; i < bit_count && i < 64; ++i) bits[i] = ((value >> i) & 1) != 0;
  return bits;
}

std::uint64_t bits_to_u64(const std::vector<bool>& bits) {
  std::uint64_t v = 0;
  for (std::size_t i = 0; i < bits.size() && i < 64; ++i) {
    if (bits[i]) v |= std::uint64_t{1} << i;
  }
  return v;
}

}  // namespace fairsfe::circuit
