// Boolean circuit intermediate representation.
//
// Circuits are the function description consumed by the GMW SFE substrate
// (`mpc/gmw.h`) and by the plaintext reference evaluator used for
// correctness cross-checks. Gates are stored in topological order by
// construction (a gate may only reference earlier wires).
#pragma once

#include <cstdint>
#include <vector>

#include "crypto/bytes.h"

namespace fairsfe::circuit {

using Wire = std::uint32_t;

enum class GateType : std::uint8_t {
  kInput,  ///< one bit of some party's input
  kConst,  ///< constant 0/1
  kXor,
  kAnd,
  kNot,
};

struct Gate {
  GateType type = GateType::kConst;
  Wire a = 0;                   ///< first operand (kXor/kAnd/kNot)
  Wire b = 0;                   ///< second operand (kXor/kAnd)
  std::uint32_t party = 0;      ///< kInput: owning party
  std::uint32_t input_index = 0;  ///< kInput: bit index within that party's input
  bool const_value = false;     ///< kConst: the constant
};

class Circuit {
 public:
  Circuit(std::size_t num_parties, std::vector<Gate> gates,
          std::vector<std::size_t> input_widths, std::vector<Wire> outputs);

  [[nodiscard]] std::size_t num_parties() const { return input_widths_.size(); }
  [[nodiscard]] std::size_t num_wires() const { return gates_.size(); }
  [[nodiscard]] const std::vector<Gate>& gates() const { return gates_; }
  [[nodiscard]] const std::vector<Wire>& outputs() const { return outputs_; }
  /// Number of input bits party `p` must supply.
  [[nodiscard]] std::size_t input_width(std::size_t p) const { return input_widths_[p]; }
  /// Number of AND gates (the GMW communication cost driver).
  [[nodiscard]] std::size_t and_count() const { return and_count_; }

  /// Reference plaintext evaluation. `inputs[p]` must have input_width(p) bits.
  [[nodiscard]] std::vector<bool> eval(const std::vector<std::vector<bool>>& inputs) const;

 private:
  std::vector<Gate> gates_;
  std::vector<std::size_t> input_widths_;
  std::vector<Wire> outputs_;
  std::size_t and_count_ = 0;
};

/// Pack bits (LSB-first) into bytes / unpack. Used to map protocol inputs and
/// outputs between Bytes and circuit bit vectors.
std::vector<bool> bytes_to_bits(ByteView data, std::size_t bit_count);
Bytes bits_to_bytes(const std::vector<bool>& bits);
std::vector<bool> u64_to_bits(std::uint64_t value, std::size_t bit_count);
std::uint64_t bits_to_u64(const std::vector<bool>& bits);

}  // namespace fairsfe::circuit
