#include "circuit/compiled.h"

#include <algorithm>
#include <stdexcept>

namespace fairsfe::circuit {

CompiledCircuit CompiledCircuit::build(const Circuit& c) {
  const auto& gates = c.gates();
  const std::size_t n = c.num_parties();

  // AND depth per wire; layer d collects AND gates of depth d+1.
  std::vector<std::uint32_t> depth(gates.size(), 0);
  std::uint32_t max_depth = 0;
  std::size_t and_count = 0;
  for (std::size_t i = 0; i < gates.size(); ++i) {
    const Gate& g = gates[i];
    switch (g.type) {
      case GateType::kInput:
      case GateType::kConst:
        break;
      case GateType::kNot:
        depth[i] = depth[g.a];
        break;
      case GateType::kXor:
        depth[i] = std::max(depth[g.a], depth[g.b]);
        break;
      case GateType::kAnd:
        depth[i] = std::max(depth[g.a], depth[g.b]) + 1;
        max_depth = std::max(max_depth, depth[i]);
        ++and_count;
        break;
    }
  }

  CompiledCircuit plan;
  // Counting sort by layer keeps gates ascending within each layer (stable).
  std::vector<std::uint32_t> layer_sizes(max_depth, 0);
  for (std::size_t i = 0; i < gates.size(); ++i) {
    if (gates[i].type == GateType::kAnd) ++layer_sizes[depth[i] - 1];
  }
  plan.layer_offsets_.resize(max_depth + 1, 0);
  for (std::uint32_t d = 0; d < max_depth; ++d) {
    plan.layer_offsets_[d + 1] = plan.layer_offsets_[d] + layer_sizes[d];
  }
  plan.and_gates_.resize(and_count);
  {
    std::vector<std::uint32_t> cursor(plan.layer_offsets_.begin(),
                                      plan.layer_offsets_.end() - 1);
    for (std::size_t i = 0; i < gates.size(); ++i) {
      if (gates[i].type != GateType::kAnd) continue;
      plan.and_gates_[cursor[depth[i] - 1]++] = static_cast<std::uint32_t>(i);
    }
  }

  // Resolution schedule: a gate of AND depth d is computable after d AND
  // layers are done (an AND gate of depth d *is* layer d-1's output, ready at
  // step d). Counting sort again, so each step lists wires ascending.
  {
    std::vector<std::uint32_t> step_sizes(max_depth + 1, 0);
    for (std::size_t i = 0; i < gates.size(); ++i) {
      if (gates[i].type != GateType::kInput) ++step_sizes[depth[i]];
    }
    plan.resolve_offsets_.resize(max_depth + 2, 0);
    for (std::uint32_t d = 0; d <= max_depth; ++d) {
      plan.resolve_offsets_[d + 1] = plan.resolve_offsets_[d] + step_sizes[d];
    }
    plan.resolve_gates_.resize(plan.resolve_offsets_[max_depth + 1]);
    std::vector<std::uint32_t> cursor(plan.resolve_offsets_.begin(),
                                      plan.resolve_offsets_.end() - 1);
    for (std::size_t i = 0; i < gates.size(); ++i) {
      if (gates[i].type == GateType::kInput) continue;
      plan.resolve_gates_[cursor[depth[i]]++] = static_cast<std::uint32_t>(i);
    }
  }

  // Input wire map: slot k of party p's range is the wire of input bit k.
  plan.party_offsets_.resize(n + 1, 0);
  std::size_t total_inputs = 0;
  for (std::size_t p = 0; p < n; ++p) {
    plan.party_offsets_[p] = static_cast<std::uint32_t>(total_inputs);
    total_inputs += c.input_width(p);
  }
  plan.party_offsets_[n] = static_cast<std::uint32_t>(total_inputs);
  plan.input_wires_.resize(total_inputs);
  for (std::size_t i = 0; i < gates.size(); ++i) {
    const Gate& g = gates[i];
    if (g.type != GateType::kInput) continue;
    if (g.party >= n || g.input_index >= c.input_width(g.party)) {
      throw std::invalid_argument("CompiledCircuit: input gate out of range");
    }
    plan.input_wires_[plan.party_offsets_[g.party] + g.input_index] =
        static_cast<std::uint32_t>(i);
  }
  return plan;
}

}  // namespace fairsfe::circuit
