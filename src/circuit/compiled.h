// Compiled execution plan for a boolean circuit.
//
// GMW-style evaluation repeatedly needs two derived structures: the AND-layer
// schedule (which gates can be OT-evaluated together) and the per-party input
// wire map (which wire carries bit k of party p's input). Both are pure
// functions of the circuit, yet recomputing them per party per execution is
// O(gates) work multiplied by (parties x Monte-Carlo runs). A CompiledCircuit
// is built once per circuit family, shared read-only (it is immutable after
// build) across all runs and parties, and indexed in O(1).
//
// Layout: flattened uint32 arrays + offset tables, so a plan is two cache
// friendly allocations instead of a vector-of-vectors.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "circuit/circuit.h"

namespace fairsfe::circuit {

class CompiledCircuit {
 public:
  /// Analyze `c` (topological layering of AND gates, input wire maps).
  [[nodiscard]] static CompiledCircuit build(const Circuit& c);

  /// Number of AND layers (= OT round trips a GMW evaluation needs).
  [[nodiscard]] std::size_t num_and_layers() const { return layer_offsets_.size() - 1; }

  /// Gate indices of AND layer `d` (0-based), in ascending order.
  [[nodiscard]] std::span<const std::uint32_t> and_layer(std::size_t d) const {
    return {and_gates_.data() + layer_offsets_[d],
            layer_offsets_[d + 1] - layer_offsets_[d]};
  }

  /// Total number of AND gates.
  [[nodiscard]] std::size_t num_and_gates() const { return and_gates_.size(); }

  /// Wires carrying party `p`'s input: element k is the wire of input bit k.
  [[nodiscard]] std::span<const std::uint32_t> inputs_of(std::size_t p) const {
    return {input_wires_.data() + party_offsets_[p],
            party_offsets_[p + 1] - party_offsets_[p]};
  }

  /// Resolution schedule: resolve_step(k) lists, in ascending (= topological)
  /// wire order, exactly the non-input gates that become computable once k
  /// AND layers have completed — consts and linear gates over inputs at k=0,
  /// then after each OT layer the ANDs of that layer plus the linear gates
  /// fed by them. A GMW evaluator walks step k instead of rescanning the
  /// whole gate list; every gate is visited once per execution in total.
  [[nodiscard]] std::size_t num_resolve_steps() const {
    return resolve_offsets_.size() - 1;
  }
  [[nodiscard]] std::span<const std::uint32_t> resolve_step(std::size_t k) const {
    return {resolve_gates_.data() + resolve_offsets_[k],
            resolve_offsets_[k + 1] - resolve_offsets_[k]};
  }

 private:
  std::vector<std::uint32_t> and_gates_;      ///< AND gate indices grouped by layer
  std::vector<std::uint32_t> layer_offsets_;  ///< size num_and_layers()+1
  std::vector<std::uint32_t> input_wires_;    ///< input wires grouped by party
  std::vector<std::uint32_t> party_offsets_;  ///< size num_parties+1
  std::vector<std::uint32_t> resolve_gates_;    ///< non-input gates by AND depth
  std::vector<std::uint32_t> resolve_offsets_;  ///< size num_and_layers()+2
};

}  // namespace fairsfe::circuit
