#include "circuit/sliced.h"

#include "util/check.h"

namespace fairsfe::circuit {

std::vector<util::LaneWord> eval_sliced(
    const Circuit& c, const std::vector<std::vector<util::LaneWord>>& input_words) {
  FAIRSFE_CHECK(input_words.size() == c.num_parties(),
                "eval_sliced: one input word vector per party");
  for (std::size_t p = 0; p < input_words.size(); ++p) {
    FAIRSFE_CHECK(input_words[p].size() == c.input_width(p),
                  "eval_sliced: input word count does not match the input width");
  }
  std::vector<util::LaneWord> val(c.num_wires(), 0);
  const auto& gates = c.gates();
  for (std::size_t w = 0; w < gates.size(); ++w) {
    const Gate& g = gates[w];
    switch (g.type) {
      case GateType::kInput:
        val[w] = input_words[g.party][g.input_index];
        break;
      case GateType::kConst:
        val[w] = g.const_value ? ~util::LaneWord{0} : 0;
        break;
      case GateType::kXor:
        val[w] = val[g.a] ^ val[g.b];
        break;
      case GateType::kAnd:
        val[w] = val[g.a] & val[g.b];
        break;
      case GateType::kNot:
        val[w] = ~val[g.a];
        break;
    }
  }
  std::vector<util::LaneWord> out;
  out.reserve(c.outputs().size());
  for (const Wire w : c.outputs()) out.push_back(val[w]);
  return out;
}

}  // namespace fairsfe::circuit
