// Bit-sliced plaintext circuit evaluation: 64 independent runs per pass.
//
// The sliced execution path (DESIGN.md §11) carries one Monte-Carlo run per
// bit of a LaneWord. This is the reference evaluator over that
// representation: one walk of the gate list advances up to kLaneWidth
// evaluations at once, with lane l of every wire word holding run l's value
// of that wire. Used as the correctness cross-check for the sliced GMW share
// arithmetic (mpc/gmw_sliced.h) and by the transpose round-trip tests —
// the sliced analogue of Circuit::eval.
#pragma once

#include <vector>

#include "circuit/circuit.h"
#include "util/bitmat.h"

namespace fairsfe::circuit {

/// Evaluate up to kLaneWidth runs at once. `input_words[p][k]` packs the runs'
/// bit k of party p's input (lane l = run l); the returned vector packs the
/// circuit outputs the same way, one LaneWord per output wire. Lanes beyond
/// the populated ones evaluate the all-zero inputs and can be ignored.
std::vector<util::LaneWord> eval_sliced(
    const Circuit& c, const std::vector<std::vector<util::LaneWord>>& input_words);

}  // namespace fairsfe::circuit
