#include "crypto/auth_share.h"

#include "crypto/rng.h"
#include "crypto/secret_sharing.h"
#include "util/check.h"

namespace fairsfe {

namespace {
Bytes make_payload(ByteView secret, const MacKey& k1, const MacKey& k2) {
  Writer w;
  w.blob(secret).blob(mac_tag(k1, secret)).blob(mac_tag(k2, secret));
  return w.take();
}
}  // namespace

Bytes AuthShare2::opening_to_bytes() const {
  Writer w;
  w.blob(summand).blob(summand_tag);
  return w.take();
}

Bytes AuthShare2::to_bytes() const {
  Writer w;
  w.blob(summand).blob(summand_tag).blob(key.to_bytes());
  return w.take();
}

std::optional<AuthShare2> AuthShare2::from_bytes(ByteView data) {
  Reader r(data);
  const auto summand = r.blob();
  const auto tag = r.blob();
  const auto key_bytes = r.blob();
  if (!summand || !tag || !key_bytes || !r.at_end()) return std::nullopt;
  const auto key = MacKey::from_bytes(*key_bytes);
  if (!key) return std::nullopt;
  return AuthShare2{*summand, *tag, *key};
}

AuthSharing2 auth_share2(ByteView secret, Rng& rng) {
  AuthSharing2 out;
  out.share1.key = MacKey::random(rng);
  out.share2.key = MacKey::random(rng);
  const Bytes payload = make_payload(secret, out.share1.key, out.share2.key);
  const std::vector<Bytes> summands = xor_share(payload, 2, rng);
  FAIRSFE_CHECK(summands.size() == 2, "auth_share2: sharing must yield 2 summands");
  out.share1.summand = summands[0];
  out.share2.summand = summands[1];
  // Each summand is authenticated under the *other* party's key so the
  // receiver of an opening can verify it.
  out.share1.summand_tag = mac_tag(out.share2.key, out.share1.summand);
  out.share2.summand_tag = mac_tag(out.share1.key, out.share2.summand);
  return out;
}

std::optional<Bytes> auth_reconstruct2(const AuthShare2& mine, ByteView other_opening) {
  Reader r(other_opening);
  const auto other_summand = r.blob();
  const auto other_tag = r.blob();
  if (!other_summand || !other_tag || !r.at_end()) return std::nullopt;
  if (!mac_verify(mine.key, *other_summand, *other_tag)) return std::nullopt;
  if (other_summand->size() != mine.summand.size()) return std::nullopt;

  const Bytes payload = xor_bytes(mine.summand, *other_summand);
  Reader pr(payload);
  const auto secret = pr.blob();
  const auto tag1 = pr.blob();
  const auto tag2 = pr.blob();
  if (!secret || !tag1 || !tag2 || !pr.at_end()) return std::nullopt;
  // Verify the inner tag under our own key. We do not know whether we are p₁
  // or p₂ in the sharing, so accept if our key verifies either inner tag;
  // under an honest dealer exactly one of them is ours.
  if (!mac_verify(mine.key, *secret, *tag1) && !mac_verify(mine.key, *secret, *tag2)) {
    return std::nullopt;
  }
  return *secret;
}

}  // namespace fairsfe
