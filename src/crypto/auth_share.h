// Authenticated two-out-of-two additive secret sharing — the scheme of the
// paper's Appendix A, instantiated with XOR-additive summands and the
// information-theoretic one-time MAC of `crypto/mac.h`.
//
// A sharing of secret s is a pair of summands (s₁, s₂) with
//     s₁ ⊕ s₂ = payload(s) := s ‖ tag(s, k₁) ‖ tag(s, k₂),
// where k₁, k₂ are MAC keys associated with p₁ and p₂. Party pᵢ holds
//     ⟨s⟩ᵢ = (sᵢ, tag(sᵢ, k₋ᵢ))  together with its own key kᵢ.
//
// Reconstruction towards pᵢ: p₋ᵢ sends its (summand, tag); pᵢ verifies the
// summand tag under kᵢ, recombines, and verifies the inner tag(s, kᵢ). Any
// tampering by the other party is detected except with probability ≤ ℓ/p.
#pragma once

#include <optional>

#include "crypto/bytes.h"
#include "crypto/mac.h"

namespace fairsfe {

class Rng;

/// One party's share of an authenticated 2-of-2 sharing.
// TAINT-SOURCE(share): a party's authenticated summand+tag; leaking it collapses the 2-party hiding property
struct AuthShare2 {
  Bytes summand;      ///< sᵢ
  Bytes summand_tag;  ///< tag(sᵢ, k₋ᵢ) — verifiable by the *other* party
  MacKey key;         ///< kᵢ — this party's verification key

  /// Wire format of the (summand, tag) pair sent during reconstruction.
  [[nodiscard]] Bytes opening_to_bytes() const;

  [[nodiscard]] Bytes to_bytes() const;
  static std::optional<AuthShare2> from_bytes(ByteView data);
};

// TAINT-SOURCE(share): both halves of an authenticated sharing — strictly more secret than either share
struct AuthSharing2 {
  AuthShare2 share1;  ///< held by p₁
  AuthShare2 share2;  ///< held by p₂
};

/// Create an authenticated sharing of `secret`.
// TAINT-SOURCE(share): produces the full sharing of `secret`
AuthSharing2 auth_share2(ByteView secret, Rng& rng);

/// Reconstruct towards the holder of `mine`, given the other party's opening
/// message (wire format of AuthShare2::opening_to_bytes). Returns the secret,
/// or std::nullopt if either MAC check fails (⇒ the receiver aborts).
std::optional<Bytes> auth_reconstruct2(const AuthShare2& mine, ByteView other_opening);

}  // namespace fairsfe
