#include "crypto/bytes.h"

namespace fairsfe {

std::string to_hex(ByteView data) {
  static constexpr char kDigits[] = "0123456789abcdef";
  std::string out;
  out.reserve(data.size() * 2);
  for (std::uint8_t b : data) {
    out.push_back(kDigits[b >> 4]);
    out.push_back(kDigits[b & 0x0f]);
  }
  return out;
}

namespace {
int hex_val(char c) {
  if (c >= '0' && c <= '9') return c - '0';
  if (c >= 'a' && c <= 'f') return c - 'a' + 10;
  if (c >= 'A' && c <= 'F') return c - 'A' + 10;
  return -1;
}
}  // namespace

std::optional<Bytes> from_hex(std::string_view hex) {
  if (hex.size() % 2 != 0) return std::nullopt;
  Bytes out;
  out.reserve(hex.size() / 2);
  for (std::size_t i = 0; i < hex.size(); i += 2) {
    const int hi = hex_val(hex[i]);
    const int lo = hex_val(hex[i + 1]);
    if (hi < 0 || lo < 0) return std::nullopt;
    out.push_back(static_cast<std::uint8_t>((hi << 4) | lo));
  }
  return out;
}

Bytes operator+(const Bytes& a, const Bytes& b) {
  Bytes out;
  out.reserve(a.size() + b.size());
  out.insert(out.end(), a.begin(), a.end());
  out.insert(out.end(), b.begin(), b.end());
  return out;
}

Bytes bytes_of(std::string_view s) {
  return Bytes(s.begin(), s.end());
}

Bytes xor_bytes(ByteView a, ByteView b) {
  Bytes out(a.size());
  for (std::size_t i = 0; i < a.size(); ++i) out[i] = a[i] ^ b[i];
  return out;
}

bool ct_equal(ByteView a, ByteView b) {
  if (a.size() != b.size()) return false;
  std::uint8_t acc = 0;
  for (std::size_t i = 0; i < a.size(); ++i) {
    acc = static_cast<std::uint8_t>(acc | (a[i] ^ b[i]));
  }
  return acc == 0;
}

Writer& Writer::u8(std::uint8_t v) {
  buf_.push_back(v);
  return *this;
}

Writer& Writer::u32(std::uint32_t v) {
  std::uint8_t b[4];
  for (int i = 0; i < 4; ++i) b[i] = static_cast<std::uint8_t>(v >> (8 * i));
  buf_.insert(buf_.end(), b, b + 4);
  return *this;
}

Writer& Writer::u64(std::uint64_t v) {
  std::uint8_t b[8];
  for (int i = 0; i < 8; ++i) b[i] = static_cast<std::uint8_t>(v >> (8 * i));
  buf_.insert(buf_.end(), b, b + 8);
  return *this;
}

Writer& Writer::blob(ByteView data) {
  u32(static_cast<std::uint32_t>(data.size()));
  return raw(data);
}

Writer& Writer::raw(ByteView data) {
  buf_.insert(buf_.end(), data.begin(), data.end());
  return *this;
}

Writer& Writer::str(std::string_view s) {
  u32(static_cast<std::uint32_t>(s.size()));
  buf_.insert(buf_.end(), s.begin(), s.end());
  return *this;
}

std::optional<std::uint8_t> Reader::u8() {
  if (remaining() < 1) return std::nullopt;
  return data_[pos_++];
}

std::optional<std::uint32_t> Reader::u32() {
  if (remaining() < 4) return std::nullopt;
  std::uint32_t v = 0;
  for (int i = 0; i < 4; ++i) v |= static_cast<std::uint32_t>(data_[pos_ + i]) << (8 * i);
  pos_ += 4;
  return v;
}

std::optional<std::uint64_t> Reader::u64() {
  if (remaining() < 8) return std::nullopt;
  std::uint64_t v = 0;
  for (int i = 0; i < 8; ++i) v |= static_cast<std::uint64_t>(data_[pos_ + i]) << (8 * i);
  pos_ += 8;
  return v;
}

std::optional<Bytes> Reader::blob() {
  const auto len = u32();
  if (!len) return std::nullopt;
  return raw(*len);
}

std::optional<Bytes> Reader::raw(std::size_t n) {
  if (remaining() < n) return std::nullopt;
  Bytes out(data_.begin() + static_cast<std::ptrdiff_t>(pos_),
            data_.begin() + static_cast<std::ptrdiff_t>(pos_ + n));
  pos_ += n;
  return out;
}

std::optional<std::string> Reader::str() {
  const auto b = blob();
  if (!b) return std::nullopt;
  return std::string(b->begin(), b->end());
}

}  // namespace fairsfe
