// Byte-string utilities and a small length-prefixed serialization format.
//
// Every message exchanged in the simulation framework is a `Bytes` value;
// `Writer`/`Reader` provide a canonical, self-delimiting encoding used by all
// protocol implementations. The encoding is deliberately simple (little-endian
// fixed-width integers, u32 length prefixes) so transcripts are reproducible
// across platforms.
#pragma once

#include <cstdint>
#include <cstring>
#include <optional>
#include <span>
#include <string>
#include <string_view>
#include <vector>

namespace fairsfe {

using Bytes = std::vector<std::uint8_t>;
using ByteView = std::span<const std::uint8_t>;

/// Hex-encode a byte string (lowercase).
std::string to_hex(ByteView data);

/// Decode a hex string; returns std::nullopt on malformed input.
std::optional<Bytes> from_hex(std::string_view hex);

/// Concatenate two byte strings.
Bytes operator+(const Bytes& a, const Bytes& b);

/// Byte string from a string literal / std::string contents.
Bytes bytes_of(std::string_view s);

/// XOR two equal-length byte strings. Precondition: a.size() == b.size().
Bytes xor_bytes(ByteView a, ByteView b);

/// Constant-time equality (length leak only).
bool ct_equal(ByteView a, ByteView b);

/// Append-only encoder for the canonical wire format.
class Writer {
 public:
  /// Most control messages are tag + label + a few operands; one up-front
  /// allocation replaces the doubling crawl from an empty buffer.
  Writer() { buf_.reserve(24); }

  Writer& u8(std::uint8_t v);
  Writer& u32(std::uint32_t v);
  Writer& u64(std::uint64_t v);
  /// Length-prefixed byte string (u32 length).
  Writer& blob(ByteView data);
  /// Raw bytes, no length prefix (caller knows the framing).
  Writer& raw(ByteView data);
  Writer& str(std::string_view s);

  [[nodiscard]] const Bytes& bytes() const { return buf_; }
  [[nodiscard]] Bytes take() { return std::move(buf_); }

 private:
  Bytes buf_;
};

/// Cursor-based decoder; all accessors return std::nullopt past the end or on
/// malformed framing instead of throwing, so protocol code can treat any
/// decode failure as a (detectable) adversarial deviation.
class Reader {
 public:
  explicit Reader(ByteView data) : data_(data) {}

  std::optional<std::uint8_t> u8();
  std::optional<std::uint32_t> u32();
  std::optional<std::uint64_t> u64();
  std::optional<Bytes> blob();
  std::optional<Bytes> raw(std::size_t n);
  std::optional<std::string> str();

  [[nodiscard]] bool at_end() const { return pos_ == data_.size(); }
  [[nodiscard]] std::size_t remaining() const { return data_.size() - pos_; }

 private:
  ByteView data_;
  std::size_t pos_ = 0;
};

}  // namespace fairsfe
