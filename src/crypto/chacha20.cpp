#include "crypto/chacha20.h"

#include <cstring>

#include "util/check.h"

namespace fairsfe {

namespace {

inline std::uint32_t rotl(std::uint32_t x, int n) {
  return (x << n) | (x >> (32 - n));
}

inline void quarter_round(std::uint32_t& a, std::uint32_t& b, std::uint32_t& c,
                          std::uint32_t& d) {
  a += b; d ^= a; d = rotl(d, 16);
  c += d; b ^= c; b = rotl(b, 12);
  a += b; d ^= a; d = rotl(d, 8);
  c += d; b ^= c; b = rotl(b, 7);
}

inline std::uint32_t load_le32(const std::uint8_t* p) {
  return static_cast<std::uint32_t>(p[0]) | (static_cast<std::uint32_t>(p[1]) << 8) |
         (static_cast<std::uint32_t>(p[2]) << 16) | (static_cast<std::uint32_t>(p[3]) << 24);
}

}  // namespace

ChaCha20::ChaCha20(ByteView key, ByteView nonce, std::uint32_t counter) {
  FAIRSFE_CHECK(key.size() == kKeySize, "ChaCha20 key must be 32 bytes");
  FAIRSFE_CHECK(nonce.size() == kNonceSize, "ChaCha20 nonce must be 12 bytes");
  state_[0] = 0x61707865;
  state_[1] = 0x3320646e;
  state_[2] = 0x79622d32;
  state_[3] = 0x6b206574;
  for (int i = 0; i < 8; ++i) state_[4 + i] = load_le32(key.data() + 4 * i);
  state_[12] = counter;
  for (int i = 0; i < 3; ++i) state_[13 + i] = load_le32(nonce.data() + 4 * i);
}

void ChaCha20::refill() {
  std::array<std::uint32_t, 16> x = state_;
  for (int round = 0; round < 10; ++round) {
    quarter_round(x[0], x[4], x[8], x[12]);
    quarter_round(x[1], x[5], x[9], x[13]);
    quarter_round(x[2], x[6], x[10], x[14]);
    quarter_round(x[3], x[7], x[11], x[15]);
    quarter_round(x[0], x[5], x[10], x[15]);
    quarter_round(x[1], x[6], x[11], x[12]);
    quarter_round(x[2], x[7], x[8], x[13]);
    quarter_round(x[3], x[4], x[9], x[14]);
  }
  for (int i = 0; i < 16; ++i) {
    const std::uint32_t v = x[i] + state_[i];
    block_[4 * i] = static_cast<std::uint8_t>(v);
    block_[4 * i + 1] = static_cast<std::uint8_t>(v >> 8);
    block_[4 * i + 2] = static_cast<std::uint8_t>(v >> 16);
    block_[4 * i + 3] = static_cast<std::uint8_t>(v >> 24);
  }
  state_[12] += 1;  // block counter
  block_pos_ = 0;
}

void ChaCha20::fill(std::uint8_t* out, std::size_t n) {
  std::size_t done = 0;
  while (done < n) {
    if (block_pos_ == kBlockSize) refill();
    const std::size_t take = std::min(kBlockSize - block_pos_, n - done);
    std::memcpy(out + done, block_.data() + block_pos_, take);
    block_pos_ += take;
    done += take;
  }
}

void ChaCha20::xor_into(std::span<std::uint8_t> data) {
  std::size_t done = 0;
  const std::size_t n = data.size();
  while (done < n) {
    if (block_pos_ == kBlockSize) refill();
    const std::size_t take = std::min(kBlockSize - block_pos_, n - done);
    for (std::size_t i = 0; i < take; ++i) data[done + i] ^= block_[block_pos_ + i];
    block_pos_ += take;
    done += take;
  }
}

Bytes ChaCha20::keystream(std::size_t n) {
  Bytes out(n);
  fill(out.data(), n);
  return out;
}

Bytes ChaCha20::process(ByteView data) {
  Bytes out(data.begin(), data.end());
  xor_into(out);
  return out;
}

}  // namespace fairsfe
