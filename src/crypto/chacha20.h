// ChaCha20 stream cipher (RFC 8439 block function), used as the PRG behind
// all protocol randomness. Deterministic given (key, nonce), which is what
// makes every simulated execution reproducible from a 32-byte seed.
#pragma once

#include <array>
#include <cstdint>
#include <span>

#include "crypto/bytes.h"

namespace fairsfe {

class ChaCha20 {
 public:
  static constexpr std::size_t kKeySize = 32;
  static constexpr std::size_t kNonceSize = 12;
  static constexpr std::size_t kBlockSize = 64;

  /// key must be 32 bytes; nonce 12 bytes. Counter starts at `counter`.
  ChaCha20(ByteView key, ByteView nonce, std::uint32_t counter = 0);

  /// Write the next `n` keystream bytes into `out` (no allocation). Consumes
  /// exactly the same keystream as keystream(n).
  void fill(std::uint8_t* out, std::size_t n);
  void fill(std::span<std::uint8_t> out) { fill(out.data(), out.size()); }

  /// XOR the next data.size() keystream bytes into `data` in place
  /// (encrypt == decrypt, no allocation).
  void xor_into(std::span<std::uint8_t> data);

  /// Produce the next `n` keystream bytes (allocating convenience wrapper).
  Bytes keystream(std::size_t n);

  /// XOR `data` with keystream (allocating; encrypt == decrypt).
  Bytes process(ByteView data);

 private:
  void refill();

  std::array<std::uint32_t, 16> state_{};
  std::array<std::uint8_t, kBlockSize> block_{};
  std::size_t block_pos_ = kBlockSize;  // forces refill on first use
};

}  // namespace fairsfe
