#include "crypto/commitment.h"

#include "crypto/rng.h"
#include "crypto/sha256.h"

namespace fairsfe {

namespace {
Bytes commit_hash(ByteView msg, ByteView opening) {
  Writer w;
  w.str("fairsfe-commit").blob(opening).blob(msg);
  return sha256(w.bytes());
}
}  // namespace

Commitment commit(ByteView msg, Rng& rng) {
  Commitment c;
  c.opening = rng.bytes(32);
  c.com = commit_hash(msg, c.opening);
  return c;
}

bool commit_verify(ByteView com, ByteView msg, ByteView opening) {
  return ct_equal(com, commit_hash(msg, opening));
}

}  // namespace fairsfe
