// Non-interactive hash commitments: com = H("commit" ‖ r ‖ m), r ← {0,1}^256.
//
// Hiding and binding in the random-oracle sense; used by the contract-signing
// protocols Π₁/Π₂ of the paper's introduction (commit-then-open exchange and
// Blum-style coin tossing).
#pragma once

#include <optional>

#include "crypto/bytes.h"

namespace fairsfe {

class Rng;

struct Commitment {
  Bytes com;      ///< published value
  Bytes opening;  ///< randomness r (kept secret until opening)
};

/// Commit to `msg` using fresh randomness from `rng`.
Commitment commit(ByteView msg, Rng& rng);

/// Verify an opening (msg, r) against a commitment string.
bool commit_verify(ByteView com, ByteView msg, ByteView opening);

}  // namespace fairsfe
