#include "crypto/field.h"

#include "crypto/rng.h"

namespace fairsfe {

Fp operator*(Fp a, Fp b) {
  const unsigned __int128 prod =
      static_cast<unsigned __int128>(a.v_) * static_cast<unsigned __int128>(b.v_);
  // prod < 2^122; split at bit 61 and fold (2^61 ≡ 1 mod p).
  const std::uint64_t lo = static_cast<std::uint64_t>(prod & Fp::kP);
  const std::uint64_t hi = static_cast<std::uint64_t>(prod >> 61);
  std::uint64_t s = lo + (hi & Fp::kP) + (hi >> 61);
  s = (s & Fp::kP) + (s >> 61);
  if (s >= Fp::kP) s -= Fp::kP;
  return Fp::from_reduced(s);
}

Fp Fp::pow(std::uint64_t e) const {
  Fp base = *this;
  Fp acc(1);
  while (e != 0) {
    if (e & 1) acc *= base;
    base *= base;
    e >>= 1;
  }
  return acc;
}

Fp Fp::inverse() const {
  // Fermat: a^(p-2) mod p.
  return pow(kP - 2);
}

Fp Fp::random(Rng& rng) {
  return from_reduced(rng.below(kP));
}

std::vector<Fp> bytes_to_field(ByteView data) {
  std::vector<Fp> out;
  out.push_back(Fp(static_cast<std::uint64_t>(data.size())));
  for (std::size_t off = 0; off < data.size(); off += 7) {
    std::uint64_t v = 0;
    for (std::size_t i = 0; i < 7 && off + i < data.size(); ++i) {
      v |= static_cast<std::uint64_t>(data[off + i]) << (8 * i);
    }
    out.push_back(Fp(v));
  }
  return out;
}

Bytes fp_to_bytes(Fp x) {
  Writer w;
  w.u64(x.value());
  return w.take();
}

std::optional<Fp> fp_from_bytes(ByteView data) {
  Reader r(data);
  const auto v = r.u64();
  if (!v || *v >= Fp::kP) return std::nullopt;
  return Fp(*v);
}

}  // namespace fairsfe
