// Prime field F_p with p = 2^61 - 1 (a Mersenne prime).
//
// Backs the information-theoretic one-time MAC and Shamir secret sharing.
// The Mersenne modulus admits branch-light reduction; multiplication goes
// through unsigned __int128.
#pragma once

#include <cstdint>
#include <vector>

#include "crypto/bytes.h"

namespace fairsfe {

class Rng;

/// Field element of F_p, p = 2^61 - 1. Value-semantic; always reduced.
class Fp {
 public:
  static constexpr std::uint64_t kP = (std::uint64_t{1} << 61) - 1;

  constexpr Fp() : v_(0) {}
  /// Reduces v mod p.
  explicit constexpr Fp(std::uint64_t v) : v_(reduce64(v)) {}

  [[nodiscard]] constexpr std::uint64_t value() const { return v_; }

  friend constexpr Fp operator+(Fp a, Fp b) {
    std::uint64_t s = a.v_ + b.v_;
    if (s >= kP) s -= kP;
    return from_reduced(s);
  }
  friend constexpr Fp operator-(Fp a, Fp b) {
    std::uint64_t s = a.v_ + kP - b.v_;
    if (s >= kP) s -= kP;
    return from_reduced(s);
  }
  friend Fp operator*(Fp a, Fp b);
  friend constexpr bool operator==(Fp a, Fp b) { return a.v_ == b.v_; }
  friend constexpr bool operator!=(Fp a, Fp b) { return a.v_ != b.v_; }

  Fp& operator+=(Fp o) { *this = *this + o; return *this; }
  Fp& operator-=(Fp o) { *this = *this - o; return *this; }
  Fp& operator*=(Fp o) { *this = *this * o; return *this; }

  [[nodiscard]] Fp pow(std::uint64_t e) const;
  /// Multiplicative inverse. Precondition: *this != 0.
  [[nodiscard]] Fp inverse() const;

  /// Uniformly random field element.
  static Fp random(Rng& rng);

 private:
  static constexpr std::uint64_t reduce64(std::uint64_t v) {
    // v < 2^64; fold the top bits twice.
    v = (v & kP) + (v >> 61);
    if (v >= kP) v -= kP;
    return v;
  }
  static constexpr Fp from_reduced(std::uint64_t v) {
    Fp f;
    f.v_ = v;
    return f;
  }

  std::uint64_t v_ = 0;
};

/// Split a byte string into field elements (7 bytes per element, with a
/// length-framing element first so the mapping is injective).
std::vector<Fp> bytes_to_field(ByteView data);

/// Serialize / parse a field element (8 bytes little-endian).
Bytes fp_to_bytes(Fp x);
std::optional<Fp> fp_from_bytes(ByteView data);

}  // namespace fairsfe
