#include "crypto/hmac.h"

#include "crypto/sha256.h"

namespace fairsfe {

Bytes hmac_sha256(ByteView key, ByteView msg) {
  Bytes k(key.begin(), key.end());
  if (k.size() > Sha256::kBlockSize) k = sha256(k);
  k.resize(Sha256::kBlockSize, 0x00);

  Bytes ipad(Sha256::kBlockSize), opad(Sha256::kBlockSize);
  for (std::size_t i = 0; i < Sha256::kBlockSize; ++i) {
    ipad[i] = k[i] ^ 0x36;
    opad[i] = k[i] ^ 0x5c;
  }
  const Bytes inner = Sha256().update(ipad).update(msg).finish();
  return Sha256().update(opad).update(inner).finish();
}

bool hmac_verify(ByteView key, ByteView msg, ByteView tag) {
  return ct_equal(hmac_sha256(key, msg), tag);
}

}  // namespace fairsfe
