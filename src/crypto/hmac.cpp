#include "crypto/hmac.h"

#include "crypto/sha256.h"

namespace fairsfe {

HmacSha256::HmacSha256(ByteView key) {
  Bytes k(key.begin(), key.end());
  if (k.size() > Sha256::kBlockSize) k = sha256(k);
  k.resize(Sha256::kBlockSize, 0x00);

  Bytes ipad(Sha256::kBlockSize), opad(Sha256::kBlockSize);
  for (std::size_t i = 0; i < Sha256::kBlockSize; ++i) {
    ipad[i] = k[i] ^ 0x36;
    opad[i] = k[i] ^ 0x5c;
  }
  inner_.update(ipad);
  outer_.update(opad);
}

Bytes HmacSha256::mac(ByteView msg) const {
  Sha256 inner = inner_;  // resume from the ipad midstate
  const Bytes digest = inner.update(msg).finish();
  Sha256 outer = outer_;
  return outer.update(digest).finish();
}

Bytes hmac_sha256(ByteView key, ByteView msg) {
  return HmacSha256(key).mac(msg);
}

bool hmac_verify(ByteView key, ByteView msg, ByteView tag) {
  return ct_equal(hmac_sha256(key, msg), tag);
}

}  // namespace fairsfe
