// HMAC-SHA256 (RFC 2104), built on the in-tree SHA-256.
//
// Used as the computational MAC option and for key derivation in the RNG
// forking scheme. The protocols in `src/fair` use the information-theoretic
// one-time MAC from `crypto/mac.h` by default; HMAC is provided for the
// computational instantiation and for tests comparing the two.
#pragma once

#include "crypto/bytes.h"

namespace fairsfe {

/// HMAC-SHA256(key, msg). Any key length (hashed down if > 64 bytes).
Bytes hmac_sha256(ByteView key, ByteView msg);

/// Convenience verifier with constant-time tag comparison.
bool hmac_verify(ByteView key, ByteView msg, ByteView tag);

}  // namespace fairsfe
