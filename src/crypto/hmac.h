// HMAC-SHA256 (RFC 2104), built on the in-tree SHA-256.
//
// Used as the computational MAC option and for key derivation in the RNG
// forking scheme. The protocols in `src/fair` use the information-theoretic
// one-time MAC from `crypto/mac.h` by default; HMAC is provided for the
// computational instantiation and for tests comparing the two.
#pragma once

#include "crypto/bytes.h"
#include "crypto/sha256.h"

namespace fairsfe {

/// A reusable HMAC-SHA256 key: the padded-key compressions (ipad/opad
/// midstates) are computed once at construction, so each mac() costs two
/// SHA-256 block passes instead of four. Byte-identical to hmac_sha256() —
/// this is the hot-path form for callers MACing many messages under one key
/// (the RNG forking scheme derives every child stream this way).
class HmacSha256 {
 public:
  /// Any key length (hashed down if > 64 bytes).
  explicit HmacSha256(ByteView key);

  [[nodiscard]] Bytes mac(ByteView msg) const;

 private:
  Sha256 inner_;  ///< state after the ipad block
  Sha256 outer_;  ///< state after the opad block
};

/// One-shot HMAC-SHA256(key, msg). Any key length (hashed down if > 64 bytes).
Bytes hmac_sha256(ByteView key, ByteView msg);

/// Convenience verifier with constant-time tag comparison.
bool hmac_verify(ByteView key, ByteView msg, ByteView tag);

}  // namespace fairsfe
