#include "crypto/lamport.h"

#include "crypto/rng.h"
#include "crypto/sha256.h"

namespace fairsfe {

namespace {
constexpr std::size_t kBits = 256;
constexpr std::size_t kChunk = 32;
constexpr std::size_t kKeyBytes = 2 * kBits * kChunk;

inline ByteView slice(ByteView data, std::size_t index) {
  return data.subspan(index * kChunk, kChunk);
}

inline int msg_bit(const Bytes& digest, std::size_t i) {
  return (digest[i / 8] >> (i % 8)) & 1;
}
}  // namespace

LamportKeyPair lamport_gen(Rng& rng) {
  LamportKeyPair kp;
  kp.signing_key = rng.bytes(kKeyBytes);
  kp.verification_key.reserve(kKeyBytes);
  for (std::size_t i = 0; i < 2 * kBits; ++i) {
    const Bytes h = sha256(slice(kp.signing_key, i));
    kp.verification_key.insert(kp.verification_key.end(), h.begin(), h.end());
  }
  return kp;
}

Bytes lamport_sign(const Bytes& signing_key, ByteView msg) {
  const Bytes digest = sha256(msg);
  Bytes sig;
  sig.reserve(kBits * kChunk);
  for (std::size_t i = 0; i < kBits; ++i) {
    const std::size_t idx = 2 * i + static_cast<std::size_t>(msg_bit(digest, i));
    const ByteView pre = slice(signing_key, idx);
    sig.insert(sig.end(), pre.begin(), pre.end());
  }
  return sig;
}

bool lamport_verify(const Bytes& verification_key, ByteView msg, ByteView sig) {
  if (verification_key.size() != kKeyBytes || sig.size() != kBits * kChunk) return false;
  const Bytes digest = sha256(msg);
  for (std::size_t i = 0; i < kBits; ++i) {
    const std::size_t idx = 2 * i + static_cast<std::size_t>(msg_bit(digest, i));
    const Bytes h = sha256(slice(sig, i));
    if (!ct_equal(h, slice(verification_key, idx))) return false;
  }
  return true;
}

}  // namespace fairsfe
