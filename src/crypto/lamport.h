// Lamport one-time signatures over SHA-256.
//
// The multi-party protocol ΠOptnSFE (paper §4.2 / App. B) has the SFE phase
// sign the single output value y; the broadcast phase then rejects forged
// announcements. Since exactly one message is ever signed per key pair, a
// one-time scheme gives the existential unforgeability the paper requires of
// [GMR88]-style signatures (see DESIGN.md §6).
//
// Key layout: sk = 256 pairs of 32-byte preimages, vk = their hashes.
// Sign(m): h = SHA-256(m); reveal preimage sk[i][h_i] for each bit i.
#pragma once

#include <array>
#include <optional>

#include "crypto/bytes.h"

namespace fairsfe {

class Rng;

// TAINT-SOURCE(key): signing_key preimages; disclosure forges signatures
struct LamportKeyPair {
  Bytes signing_key;       ///< 2*256*32 bytes of preimages
  Bytes verification_key;  ///< 2*256*32 bytes of hashes
};

/// Generate a fresh one-time key pair.
LamportKeyPair lamport_gen(Rng& rng);

/// Sign a message (reveals 256 preimages; 256*32 bytes).
Bytes lamport_sign(const Bytes& signing_key, ByteView msg);

/// Verify a signature against a verification key.
bool lamport_verify(const Bytes& verification_key, ByteView msg, ByteView sig);

}  // namespace fairsfe
