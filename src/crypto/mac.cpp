#include "crypto/mac.h"

#include "crypto/rng.h"

namespace fairsfe {

MacKey MacKey::random(Rng& rng) {
  return MacKey{Fp::random(rng), Fp::random(rng)};
}

Bytes MacKey::to_bytes() const {
  Writer w;
  w.u64(a.value()).u64(b.value());
  return w.take();
}

std::optional<MacKey> MacKey::from_bytes(ByteView data) {
  Reader r(data);
  const auto av = r.u64();
  const auto bv = r.u64();
  if (!av || !bv || *av >= Fp::kP || *bv >= Fp::kP) return std::nullopt;
  return MacKey{Fp(*av), Fp(*bv)};
}

Bytes mac_tag(const MacKey& key, ByteView msg) {
  const std::vector<Fp> elems = bytes_to_field(msg);
  Fp acc = key.b;
  Fp apow(1);
  for (const Fp m : elems) {
    apow *= key.a;
    acc += apow * m;
  }
  return fp_to_bytes(acc);
}

bool mac_verify(const MacKey& key, ByteView msg, ByteView tag) {
  const Bytes expect = mac_tag(key, msg);
  return ct_equal(expect, tag);
}

}  // namespace fairsfe
