// Information-theoretic one-time message authentication code.
//
// This is the `tag(·, k)` primitive of the paper's authenticated secret
// sharing (Appendix A). Key k = (a, b) ∈ F_p², message m is injectively
// mapped to field elements m_1..m_ℓ, and
//
//     tag(m, k) = b + Σ_i a^i · m_i .
//
// Forging a tag for a new message after seeing one (message, tag) pair
// succeeds with probability ≤ ℓ/p — negligible for our parameters. Being
// information-theoretic it is *stronger* than the computational MAC the
// paper assumes, which only helps the reproduction (see DESIGN.md §6).
#pragma once

#include <optional>

#include "crypto/bytes.h"
#include "crypto/field.h"

namespace fairsfe {

class Rng;

// TAINT-SOURCE(key): MAC key; disclosure forges tags
struct MacKey {
  Fp a;
  Fp b;

  static MacKey random(Rng& rng);

  /// Serialize (16 bytes).
  [[nodiscard]] Bytes to_bytes() const;
  static std::optional<MacKey> from_bytes(ByteView data);
};

/// Compute the one-time MAC tag of `msg` under `key` (8 bytes).
Bytes mac_tag(const MacKey& key, ByteView msg);

/// Verify a tag; tolerant of malformed tags (returns false).
bool mac_verify(const MacKey& key, ByteView msg, ByteView tag);

}  // namespace fairsfe
