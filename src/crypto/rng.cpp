#include "crypto/rng.h"

#include "crypto/hmac.h"
#include "crypto/sha256.h"

namespace fairsfe {

namespace {
Bytes expand_seed(std::uint64_t seed) {
  Writer w;
  w.str("fairsfe-rng-seed").u64(seed);
  return sha256(w.bytes());
}

Bytes zero_nonce() {
  return Bytes(ChaCha20::kNonceSize, 0);
}
}  // namespace

Rng::Rng(std::uint64_t seed) : Rng(expand_seed(seed)) {}

Rng::Rng(const Bytes& key) : key_(key), stream_(key, zero_nonce()) {}

Rng Rng::fork(std::string_view label) {
  return fork_at(label, fork_counter_++);
}

Rng Rng::fork_at(std::string_view label, std::uint64_t index) const {
  if (!hmac_) hmac_ = std::make_shared<const HmacSha256>(key_);
  Writer w;
  w.str(label).u64(index);
  return Rng(hmac_->mac(w.bytes()));
}

std::uint64_t Rng::u64() {
  std::uint8_t b[8];
  stream_.fill(b, 8);
  std::uint64_t v = 0;
  for (int i = 0; i < 8; ++i) v |= static_cast<std::uint64_t>(b[i]) << (8 * i);
  return v;
}

std::uint64_t Rng::below(std::uint64_t n) {
  // Rejection sampling to avoid modulo bias.
  const std::uint64_t limit = n * ((~std::uint64_t{0}) / n);
  std::uint64_t v;
  do {
    v = u64();
  } while (v >= limit);
  return v % n;
}

bool Rng::bit() {
  std::uint8_t b;
  stream_.fill(&b, 1);
  return (b & 1) != 0;
}

Bytes Rng::bytes(std::size_t n) {
  return stream_.keystream(n);
}

void Rng::fill(std::span<std::uint8_t> out) {
  stream_.fill(out);
}

double Rng::uniform() {
  // 53 random bits into the mantissa.
  return static_cast<double>(u64() >> 11) * (1.0 / 9007199254740992.0);
}

}  // namespace fairsfe
