// Deterministic, forkable randomness source for the whole simulation.
//
// Every execution of a protocol under the Monte-Carlo utility estimator is
// seeded explicitly; parties, the adversary, and hybrid functionalities each
// receive an independently forked stream so that changing one component's
// consumption pattern never perturbs another's randomness. Forking derives a
// fresh ChaCha20 key as HMAC(parent_key, label), i.e., streams are
// computationally independent.
#pragma once

#include <cstdint>
#include <memory>
#include <span>
#include <string_view>

#include "crypto/bytes.h"
#include "crypto/chacha20.h"
#include "crypto/hmac.h"

namespace fairsfe {

class Rng {
 public:
  /// Seed from a 64-bit integer (expanded to a 32-byte key).
  explicit Rng(std::uint64_t seed);
  /// Seed from a full 32-byte key.
  explicit Rng(const Bytes& key);

  /// Derive an independent stream. Distinct labels give independent streams;
  /// repeated calls with the same label also give independent streams (an
  /// internal fork counter is mixed in).
  Rng fork(std::string_view label);

  /// Counter-based stream derivation: HMAC(key, label ‖ index). Unlike
  /// fork(), this is a pure function of (key, label, index) — it neither
  /// reads nor advances the internal fork counter, so the derived stream is
  /// independent of call order and thread interleaving. For an Rng that has
  /// never forked, fork_at(label, i) equals the i-th sequential fork(label).
  [[nodiscard]] Rng fork_at(std::string_view label, std::uint64_t index) const;

  std::uint64_t u64();
  /// Uniform in [0, n). Precondition: n > 0. Rejection sampling (no bias).
  std::uint64_t below(std::uint64_t n);
  /// Uniform bit.
  bool bit();
  /// Uniform byte string of length n.
  Bytes bytes(std::size_t n);
  /// Fill `out` with uniform bytes in place (no allocation). Consumes the
  /// same keystream as bytes(out.size()).
  void fill(std::span<std::uint8_t> out);
  /// Uniform double in [0, 1).
  double uniform();

 private:
  Bytes key_;
  ChaCha20 stream_;
  std::uint64_t fork_counter_ = 0;
  /// HMAC key schedule (ipad/opad midstates), built on the first fork and
  /// reused for every later one — forking is the estimator's hot path (four
  /// derivations per Monte-Carlo run; 256 per bit-sliced batch). Lazy so
  /// leaf streams that only draw bytes never pay for it, shared so the
  /// fork-counter-free fork_at() stays const. Pure key-derived cache: it
  /// never changes any derived stream.
  mutable std::shared_ptr<const HmacSha256> hmac_;
};

}  // namespace fairsfe
