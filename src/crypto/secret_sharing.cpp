#include "crypto/secret_sharing.h"

#include "crypto/rng.h"
#include "util/check.h"

namespace fairsfe {

std::vector<Bytes> xor_share(ByteView secret, std::size_t n, Rng& rng) {
  FAIRSFE_CHECK(n >= 1, "xor_share needs at least one share");
  std::vector<Bytes> shares;
  shares.reserve(n);
  Bytes acc(secret.begin(), secret.end());
  for (std::size_t i = 0; i + 1 < n; ++i) {
    Bytes r = rng.bytes(secret.size());
    acc = xor_bytes(acc, r);
    shares.push_back(std::move(r));
  }
  shares.push_back(std::move(acc));
  return shares;
}

Bytes xor_reconstruct(const std::vector<Bytes>& shares) {
  FAIRSFE_CHECK(!shares.empty(), "xor_reconstruct over zero shares");
  Bytes acc = shares.front();
  for (std::size_t i = 1; i < shares.size(); ++i) {
    FAIRSFE_CHECK(shares[i].size() == acc.size(),
                  "xor_reconstruct: share length mismatch");
    acc = xor_bytes(acc, shares[i]);
  }
  return acc;
}

std::vector<Fp> additive_share(Fp secret, std::size_t n, Rng& rng) {
  FAIRSFE_CHECK(n >= 1, "additive_share needs at least one share");
  std::vector<Fp> shares;
  shares.reserve(n);
  Fp acc = secret;
  for (std::size_t i = 0; i + 1 < n; ++i) {
    const Fp r = Fp::random(rng);
    acc -= r;
    shares.push_back(r);
  }
  shares.push_back(acc);
  return shares;
}

Fp additive_reconstruct(const std::vector<Fp>& shares) {
  Fp acc;
  for (const Fp s : shares) acc += s;
  return acc;
}

}  // namespace fairsfe
