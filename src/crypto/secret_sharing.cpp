#include "crypto/secret_sharing.h"

#include <cassert>

#include "crypto/rng.h"

namespace fairsfe {

std::vector<Bytes> xor_share(ByteView secret, std::size_t n, Rng& rng) {
  assert(n >= 1);
  std::vector<Bytes> shares;
  shares.reserve(n);
  Bytes acc(secret.begin(), secret.end());
  for (std::size_t i = 0; i + 1 < n; ++i) {
    Bytes r = rng.bytes(secret.size());
    acc = xor_bytes(acc, r);
    shares.push_back(std::move(r));
  }
  shares.push_back(std::move(acc));
  return shares;
}

Bytes xor_reconstruct(const std::vector<Bytes>& shares) {
  assert(!shares.empty());
  Bytes acc = shares.front();
  for (std::size_t i = 1; i < shares.size(); ++i) {
    assert(shares[i].size() == acc.size());
    acc = xor_bytes(acc, shares[i]);
  }
  return acc;
}

std::vector<Fp> additive_share(Fp secret, std::size_t n, Rng& rng) {
  assert(n >= 1);
  std::vector<Fp> shares;
  shares.reserve(n);
  Fp acc = secret;
  for (std::size_t i = 0; i + 1 < n; ++i) {
    const Fp r = Fp::random(rng);
    acc -= r;
    shares.push_back(r);
  }
  shares.push_back(acc);
  return shares;
}

Fp additive_reconstruct(const std::vector<Fp>& shares) {
  Fp acc;
  for (const Fp s : shares) acc += s;
  return acc;
}

}  // namespace fairsfe
