// Additive (n-out-of-n) secret sharing over bytes (XOR) and over F_p.
//
// XOR sharing is the substrate of the GMW protocol (bit-level shares) and of
// the authenticated sharing in `auth_share.h`. Any n-1 shares are uniformly
// random and independent of the secret; all n XOR back to it.
#pragma once

#include <vector>

#include "crypto/bytes.h"
#include "crypto/field.h"

namespace fairsfe {

class Rng;

/// Split `secret` into `n` XOR-additive shares. Precondition: n >= 1.
std::vector<Bytes> xor_share(ByteView secret, std::size_t n, Rng& rng);

/// Recombine XOR-additive shares. Precondition: all same length, non-empty.
Bytes xor_reconstruct(const std::vector<Bytes>& shares);

/// Split a field element into `n` additive shares over F_p.
std::vector<Fp> additive_share(Fp secret, std::size_t n, Rng& rng);

/// Recombine additive field shares.
Fp additive_reconstruct(const std::vector<Fp>& shares);

}  // namespace fairsfe
