#include "crypto/sha256.h"

#include <cstring>

#if defined(__x86_64__) && defined(__GNUC__)
#include <immintrin.h>
#define FAIRSFE_SHA_NI 1
#endif

namespace fairsfe {

namespace {

constexpr std::array<std::uint32_t, 64> kK = {
    0x428a2f98, 0x71374491, 0xb5c0fbcf, 0xe9b5dba5, 0x3956c25b, 0x59f111f1,
    0x923f82a4, 0xab1c5ed5, 0xd807aa98, 0x12835b01, 0x243185be, 0x550c7dc3,
    0x72be5d74, 0x80deb1fe, 0x9bdc06a7, 0xc19bf174, 0xe49b69c1, 0xefbe4786,
    0x0fc19dc6, 0x240ca1cc, 0x2de92c6f, 0x4a7484aa, 0x5cb0a9dc, 0x76f988da,
    0x983e5152, 0xa831c66d, 0xb00327c8, 0xbf597fc7, 0xc6e00bf3, 0xd5a79147,
    0x06ca6351, 0x14292967, 0x27b70a85, 0x2e1b2138, 0x4d2c6dfc, 0x53380d13,
    0x650a7354, 0x766a0abb, 0x81c2c92e, 0x92722c85, 0xa2bfe8a1, 0xa81a664b,
    0xc24b8b70, 0xc76c51a3, 0xd192e819, 0xd6990624, 0xf40e3585, 0x106aa070,
    0x19a4c116, 0x1e376c08, 0x2748774c, 0x34b0bcb5, 0x391c0cb3, 0x4ed8aa4a,
    0x5b9cca4f, 0x682e6ff3, 0x748f82ee, 0x78a5636f, 0x84c87814, 0x8cc70208,
    0x90befffa, 0xa4506ceb, 0xbef9a3f7, 0xc67178f2};

inline std::uint32_t rotr(std::uint32_t x, int n) {
  return (x >> n) | (x << (32 - n));
}

#ifdef FAIRSFE_SHA_NI

// One compression using the SHA extension (sha256rnds2/sha256msg1/
// sha256msg2). Bit-identical to the portable loop — the hash itself is
// unchanged, only the block pass — and gated at runtime on cpuid, so the
// portable path below stays the behavioural reference everywhere else.
// Forking an Rng costs four compressions (two with the HMAC key schedule
// cached), and the estimator derives four streams per Monte-Carlo run, so
// this is the hottest primitive in the whole simulator.
__attribute__((target("sha,sse4.1,ssse3"))) void process_block_hw(
    std::uint32_t* state, const std::uint8_t* data) {
  const __m128i kShuffle =
      _mm_set_epi64x(0x0c0d0e0f08090a0bLL, 0x0405060700010203LL);
  const auto k = [](std::uint64_t hi, std::uint64_t lo) {
    return _mm_set_epi64x(static_cast<long long>(hi), static_cast<long long>(lo));
  };

  // state[] is {a,b,c,d,e,f,g,h}; the instruction wants (ABEF, CDGH) pairs.
  __m128i tmp = _mm_loadu_si128(reinterpret_cast<const __m128i*>(state));
  __m128i state1 = _mm_loadu_si128(reinterpret_cast<const __m128i*>(state + 4));
  tmp = _mm_shuffle_epi32(tmp, 0xB1);
  state1 = _mm_shuffle_epi32(state1, 0x1B);
  __m128i state0 = _mm_alignr_epi8(tmp, state1, 8);
  state1 = _mm_blend_epi16(state1, tmp, 0xF0);

  const __m128i abef_save = state0;
  const __m128i cdgh_save = state1;
  const __m128i* blk = reinterpret_cast<const __m128i*>(data);
  __m128i msg;

  // Rounds 0-3
  __m128i msg0 = _mm_shuffle_epi8(_mm_loadu_si128(blk + 0), kShuffle);
  msg = _mm_add_epi32(msg0, k(0xE9B5DBA5B5C0FBCFULL, 0x71374491428A2F98ULL));
  state1 = _mm_sha256rnds2_epu32(state1, state0, msg);
  msg = _mm_shuffle_epi32(msg, 0x0E);
  state0 = _mm_sha256rnds2_epu32(state0, state1, msg);

  // Rounds 4-7
  __m128i msg1 = _mm_shuffle_epi8(_mm_loadu_si128(blk + 1), kShuffle);
  msg = _mm_add_epi32(msg1, k(0xAB1C5ED5923F82A4ULL, 0x59F111F13956C25BULL));
  state1 = _mm_sha256rnds2_epu32(state1, state0, msg);
  msg = _mm_shuffle_epi32(msg, 0x0E);
  state0 = _mm_sha256rnds2_epu32(state0, state1, msg);
  msg0 = _mm_sha256msg1_epu32(msg0, msg1);

  // Rounds 8-11
  __m128i msg2 = _mm_shuffle_epi8(_mm_loadu_si128(blk + 2), kShuffle);
  msg = _mm_add_epi32(msg2, k(0x550C7DC3243185BEULL, 0x12835B01D807AA98ULL));
  state1 = _mm_sha256rnds2_epu32(state1, state0, msg);
  msg = _mm_shuffle_epi32(msg, 0x0E);
  state0 = _mm_sha256rnds2_epu32(state0, state1, msg);
  msg1 = _mm_sha256msg1_epu32(msg1, msg2);

  // Rounds 12-15
  __m128i msg3 = _mm_shuffle_epi8(_mm_loadu_si128(blk + 3), kShuffle);
  msg = _mm_add_epi32(msg3, k(0xC19BF1749BDC06A7ULL, 0x80DEB1FE72BE5D74ULL));
  state1 = _mm_sha256rnds2_epu32(state1, state0, msg);
  tmp = _mm_alignr_epi8(msg3, msg2, 4);
  msg0 = _mm_add_epi32(msg0, tmp);
  msg0 = _mm_sha256msg2_epu32(msg0, msg3);
  msg = _mm_shuffle_epi32(msg, 0x0E);
  state0 = _mm_sha256rnds2_epu32(state0, state1, msg);
  msg2 = _mm_sha256msg1_epu32(msg2, msg3);

  // Rounds 16-47: the schedule registers rotate through the same four-round
  // step — feed msgN to the round function, extend msgN+1 with msg2/msg1 ops.
  const __m128i kMid[8] = {
      k(0x240CA1CC0FC19DC6ULL, 0xEFBE4786E49B69C1ULL),
      k(0x76F988DA5CB0A9DCULL, 0x4A7484AA2DE92C6FULL),
      k(0xBF597FC7B00327C8ULL, 0xA831C66D983E5152ULL),
      k(0x1429296706CA6351ULL, 0xD5A79147C6E00BF3ULL),
      k(0x53380D134D2C6DFCULL, 0x2E1B213827B70A85ULL),
      k(0x92722C8581C2C92EULL, 0x766A0ABB650A7354ULL),
      k(0xC76C51A3C24B8B70ULL, 0xA81A664BA2BFE8A1ULL),
      k(0x106AA070F40E3585ULL, 0xD6990624D192E819ULL),
  };
  for (int step = 0; step < 8; ++step) {
    msg = _mm_add_epi32(msg0, kMid[step]);
    state1 = _mm_sha256rnds2_epu32(state1, state0, msg);
    tmp = _mm_alignr_epi8(msg0, msg3, 4);
    msg1 = _mm_add_epi32(msg1, tmp);
    msg1 = _mm_sha256msg2_epu32(msg1, msg0);
    msg = _mm_shuffle_epi32(msg, 0x0E);
    state0 = _mm_sha256rnds2_epu32(state0, state1, msg);
    msg3 = _mm_sha256msg1_epu32(msg3, msg0);
    // Rotate (msg0, msg1, msg2, msg3) <- (msg1, msg2, msg3, msg0).
    const __m128i rot = msg0;
    msg0 = msg1;
    msg1 = msg2;
    msg2 = msg3;
    msg3 = rot;
  }

  // Rounds 48-51
  msg = _mm_add_epi32(msg0, k(0x34B0BCB52748774CULL, 0x1E376C0819A4C116ULL));
  state1 = _mm_sha256rnds2_epu32(state1, state0, msg);
  tmp = _mm_alignr_epi8(msg0, msg3, 4);
  msg1 = _mm_add_epi32(msg1, tmp);
  msg1 = _mm_sha256msg2_epu32(msg1, msg0);
  msg = _mm_shuffle_epi32(msg, 0x0E);
  state0 = _mm_sha256rnds2_epu32(state0, state1, msg);
  // Last schedule-extension helper: msg3 still needs its sigma0 partials
  // (the rotation loop above only applies sha256msg1 through W56..59).
  msg3 = _mm_sha256msg1_epu32(msg3, msg0);

  // Rounds 52-55
  msg = _mm_add_epi32(msg1, k(0x682E6FF35B9CCA4FULL, 0x4ED8AA4A391C0CB3ULL));
  state1 = _mm_sha256rnds2_epu32(state1, state0, msg);
  tmp = _mm_alignr_epi8(msg1, msg0, 4);
  msg2 = _mm_add_epi32(msg2, tmp);
  msg2 = _mm_sha256msg2_epu32(msg2, msg1);
  msg = _mm_shuffle_epi32(msg, 0x0E);
  state0 = _mm_sha256rnds2_epu32(state0, state1, msg);

  // Rounds 56-59
  msg = _mm_add_epi32(msg2, k(0x8CC7020884C87814ULL, 0x78A5636F748F82EEULL));
  state1 = _mm_sha256rnds2_epu32(state1, state0, msg);
  tmp = _mm_alignr_epi8(msg2, msg1, 4);
  msg3 = _mm_add_epi32(msg3, tmp);
  msg3 = _mm_sha256msg2_epu32(msg3, msg2);
  msg = _mm_shuffle_epi32(msg, 0x0E);
  state0 = _mm_sha256rnds2_epu32(state0, state1, msg);

  // Rounds 60-63
  msg = _mm_add_epi32(msg3, k(0xC67178F2BEF9A3F7ULL, 0xA4506CEB90BEFFFAULL));
  state1 = _mm_sha256rnds2_epu32(state1, state0, msg);
  msg = _mm_shuffle_epi32(msg, 0x0E);
  state0 = _mm_sha256rnds2_epu32(state0, state1, msg);

  state0 = _mm_add_epi32(state0, abef_save);
  state1 = _mm_add_epi32(state1, cdgh_save);

  // Back to {a..d}, {e..h} memory order.
  tmp = _mm_shuffle_epi32(state0, 0x1B);
  state1 = _mm_shuffle_epi32(state1, 0xB1);
  state0 = _mm_blend_epi16(tmp, state1, 0xF0);
  state1 = _mm_alignr_epi8(state1, tmp, 8);
  _mm_storeu_si128(reinterpret_cast<__m128i*>(state), state0);
  _mm_storeu_si128(reinterpret_cast<__m128i*>(state + 4), state1);
}

bool sha_ni_available() {
  return __builtin_cpu_supports("sha") && __builtin_cpu_supports("sse4.1") &&
         __builtin_cpu_supports("ssse3");
}

#endif  // FAIRSFE_SHA_NI

}  // namespace

Sha256::Sha256()
    : state_{0x6a09e667, 0xbb67ae85, 0x3c6ef372, 0xa54ff53a,
             0x510e527f, 0x9b05688c, 0x1f83d9ab, 0x5be0cd19},
      buf_{} {}

void Sha256::process_block(const std::uint8_t* block) {
#ifdef FAIRSFE_SHA_NI
  // Function-local so the cpuid probe cannot race static initialization in
  // other translation units (scenario registration hashes at startup).
  static const bool have_sha_ni = sha_ni_available();
  if (have_sha_ni) {
    process_block_hw(state_.data(), block);
    return;
  }
#endif
  std::uint32_t w[64];
  for (int i = 0; i < 16; ++i) {
    w[i] = (static_cast<std::uint32_t>(block[4 * i]) << 24) |
           (static_cast<std::uint32_t>(block[4 * i + 1]) << 16) |
           (static_cast<std::uint32_t>(block[4 * i + 2]) << 8) |
           static_cast<std::uint32_t>(block[4 * i + 3]);
  }
  for (int i = 16; i < 64; ++i) {
    const std::uint32_t s0 = rotr(w[i - 15], 7) ^ rotr(w[i - 15], 18) ^ (w[i - 15] >> 3);
    const std::uint32_t s1 = rotr(w[i - 2], 17) ^ rotr(w[i - 2], 19) ^ (w[i - 2] >> 10);
    w[i] = w[i - 16] + s0 + w[i - 7] + s1;
  }

  std::uint32_t a = state_[0], b = state_[1], c = state_[2], d = state_[3];
  std::uint32_t e = state_[4], f = state_[5], g = state_[6], h = state_[7];

  for (int i = 0; i < 64; ++i) {
    const std::uint32_t s1 = rotr(e, 6) ^ rotr(e, 11) ^ rotr(e, 25);
    const std::uint32_t ch = (e & f) ^ (~e & g);
    const std::uint32_t t1 = h + s1 + ch + kK[i] + w[i];
    const std::uint32_t s0 = rotr(a, 2) ^ rotr(a, 13) ^ rotr(a, 22);
    const std::uint32_t maj = (a & b) ^ (a & c) ^ (b & c);
    const std::uint32_t t2 = s0 + maj;
    h = g;
    g = f;
    f = e;
    e = d + t1;
    d = c;
    c = b;
    b = a;
    a = t1 + t2;
  }

  state_[0] += a;
  state_[1] += b;
  state_[2] += c;
  state_[3] += d;
  state_[4] += e;
  state_[5] += f;
  state_[6] += g;
  state_[7] += h;
}

Sha256& Sha256::update(ByteView data) {
  total_len_ += data.size();
  std::size_t off = 0;
  if (buf_len_ > 0) {
    const std::size_t take = std::min(kBlockSize - buf_len_, data.size());
    std::memcpy(buf_.data() + buf_len_, data.data(), take);
    buf_len_ += take;
    off += take;
    if (buf_len_ == kBlockSize) {
      process_block(buf_.data());
      buf_len_ = 0;
    }
  }
  while (off + kBlockSize <= data.size()) {
    process_block(data.data() + off);
    off += kBlockSize;
  }
  if (off < data.size()) {
    std::memcpy(buf_.data(), data.data() + off, data.size() - off);
    buf_len_ = data.size() - off;
  }
  return *this;
}

Bytes Sha256::finish() {
  const std::uint64_t bit_len = total_len_ * 8;
  // One 0x80 byte, then zeros up to offset 56 of the final block (one extra
  // block when fewer than 8 bytes remain for the length field).
  static constexpr std::uint8_t kPad[kBlockSize + 1] = {0x80};
  const std::size_t pad_len =
      1 + ((kBlockSize + 56 - (buf_len_ + 1) % kBlockSize) % kBlockSize);
  update(ByteView(kPad, pad_len));
  std::uint8_t len_be[8];
  for (int i = 0; i < 8; ++i) len_be[i] = static_cast<std::uint8_t>(bit_len >> (8 * (7 - i)));
  std::memcpy(buf_.data() + 56, len_be, 8);
  process_block(buf_.data());

  Bytes out(kDigestSize);
  for (int i = 0; i < 8; ++i) {
    out[4 * i] = static_cast<std::uint8_t>(state_[i] >> 24);
    out[4 * i + 1] = static_cast<std::uint8_t>(state_[i] >> 16);
    out[4 * i + 2] = static_cast<std::uint8_t>(state_[i] >> 8);
    out[4 * i + 3] = static_cast<std::uint8_t>(state_[i]);
  }
  return out;
}

Bytes sha256(ByteView data) {
  return Sha256().update(data).finish();
}

Bytes sha256_labeled(std::string_view label, ByteView data) {
  Writer w;
  w.str(label).raw(data);
  return sha256(w.bytes());
}

}  // namespace fairsfe
