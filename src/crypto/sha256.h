// SHA-256 (FIPS 180-4), implemented from scratch.
//
// Used as the hash underlying HMAC, hash commitments, and Lamport one-time
// signatures. Incremental (`update`/`finish`) and one-shot (`sha256`) APIs.
#pragma once

#include <array>
#include <cstdint>

#include "crypto/bytes.h"

namespace fairsfe {

class Sha256 {
 public:
  static constexpr std::size_t kDigestSize = 32;
  static constexpr std::size_t kBlockSize = 64;

  Sha256();

  Sha256& update(ByteView data);
  /// Finalizes and returns the digest. The object must not be reused after.
  Bytes finish();

 private:
  void process_block(const std::uint8_t* block);

  std::array<std::uint32_t, 8> state_{};
  std::array<std::uint8_t, kBlockSize> buf_{};
  std::size_t buf_len_ = 0;
  std::uint64_t total_len_ = 0;
};

/// One-shot SHA-256.
Bytes sha256(ByteView data);

/// Domain-separated hash: SHA-256(label_len || label || data).
Bytes sha256_labeled(std::string_view label, ByteView data);

}  // namespace fairsfe
