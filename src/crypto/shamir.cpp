#include "crypto/shamir.h"

#include <set>

#include "crypto/rng.h"
#include "util/check.h"

namespace fairsfe {

Bytes ShamirShare::to_bytes() const {
  Writer w;
  w.u32(x).u32(static_cast<std::uint32_t>(y.size()));
  for (const Fp v : y) w.u64(v.value());
  return w.take();
}

std::optional<ShamirShare> ShamirShare::from_bytes(ByteView data) {
  Reader r(data);
  const auto x = r.u32();
  const auto count = r.u32();
  if (!x || !count) return std::nullopt;
  // Validate the element count against the actual remaining bytes before
  // reserving (a forged header must not drive allocation).
  if (*count > r.remaining() / 8) return std::nullopt;
  ShamirShare s;
  s.x = *x;
  s.y.reserve(*count);
  for (std::uint32_t i = 0; i < *count; ++i) {
    const auto v = r.u64();
    if (!v || *v >= Fp::kP) return std::nullopt;
    s.y.push_back(Fp(*v));
  }
  if (!r.at_end()) return std::nullopt;
  return s;
}

std::vector<ShamirShare> shamir_share(const std::vector<Fp>& secret,
                                      std::size_t threshold, std::size_t n, Rng& rng) {
  FAIRSFE_CHECK(threshold >= 1 && threshold <= n,
                "shamir_share: threshold must be in [1, n]");
  std::vector<ShamirShare> shares(n);
  for (std::size_t i = 0; i < n; ++i) {
    shares[i].x = static_cast<std::uint32_t>(i + 1);
    shares[i].y.resize(secret.size());
  }
  for (std::size_t limb = 0; limb < secret.size(); ++limb) {
    // Random polynomial of degree threshold-1 with constant term = secret.
    std::vector<Fp> coeffs(threshold);
    coeffs[0] = secret[limb];
    for (std::size_t d = 1; d < threshold; ++d) coeffs[d] = Fp::random(rng);
    for (std::size_t i = 0; i < n; ++i) {
      const Fp x(shares[i].x);
      Fp acc;
      // Horner evaluation.
      for (std::size_t d = threshold; d-- > 0;) acc = acc * x + coeffs[d];
      shares[i].y[limb] = acc;
    }
  }
  return shares;
}

std::optional<std::vector<Fp>> shamir_reconstruct(const std::vector<ShamirShare>& shares,
                                                  std::size_t threshold) {
  if (shares.size() < threshold || threshold == 0) return std::nullopt;
  // Use the first `threshold` shares with distinct x.
  std::vector<const ShamirShare*> pts;
  std::set<std::uint32_t> seen;
  for (const auto& s : shares) {
    if (s.x == 0 || seen.count(s.x)) continue;
    seen.insert(s.x);
    pts.push_back(&s);
    if (pts.size() == threshold) break;
  }
  if (pts.size() < threshold) return std::nullopt;
  const std::size_t limbs = pts[0]->y.size();
  for (const auto* p : pts) {
    if (p->y.size() != limbs) return std::nullopt;
  }
  // Lagrange coefficients at x = 0.
  std::vector<Fp> lambda(threshold);
  for (std::size_t i = 0; i < threshold; ++i) {
    Fp num(1), den(1);
    const Fp xi(pts[i]->x);
    for (std::size_t j = 0; j < threshold; ++j) {
      if (i == j) continue;
      const Fp xj(pts[j]->x);
      num *= Fp() - xj;  // (0 - x_j)
      den *= xi - xj;
    }
    lambda[i] = num * den.inverse();
  }
  std::vector<Fp> secret(limbs);
  for (std::size_t limb = 0; limb < limbs; ++limb) {
    Fp acc;
    for (std::size_t i = 0; i < threshold; ++i) acc += lambda[i] * pts[i]->y[limb];
    secret[limb] = acc;
  }
  return secret;
}

namespace {
// Inverse of bytes_to_field: recover bytes from limbs (length in limb 0).
std::optional<Bytes> field_to_bytes(const std::vector<Fp>& limbs) {
  if (limbs.empty()) return std::nullopt;
  const std::uint64_t len = limbs[0].value();
  const std::size_t need = (len + 6) / 7;
  if (limbs.size() != need + 1) return std::nullopt;
  Bytes out;
  out.reserve(len);
  for (std::size_t i = 0; i < need; ++i) {
    const std::uint64_t v = limbs[i + 1].value();
    for (std::size_t b = 0; b < 7 && out.size() < len; ++b) {
      out.push_back(static_cast<std::uint8_t>(v >> (8 * b)));
    }
  }
  return out;
}
}  // namespace

std::vector<ShamirShare> shamir_share_bytes(ByteView secret, std::size_t threshold,
                                            std::size_t n, Rng& rng) {
  return shamir_share(bytes_to_field(secret), threshold, n, rng);
}

std::optional<Bytes> shamir_reconstruct_bytes(const std::vector<ShamirShare>& shares,
                                              std::size_t threshold) {
  const auto limbs = shamir_reconstruct(shares, threshold);
  if (!limbs) return std::nullopt;
  return field_to_bytes(*limbs);
}

}  // namespace fairsfe
