// Shamir t-out-of-n threshold secret sharing over F_p.
//
// Substrate of the honest-majority GMW variant Π½GMW (Lemma 17): the dealer
// functionality hands out ⌈n/2⌉-out-of-n shares of the output, which any
// majority can reconstruct and any minority learns nothing about.
//
// Sharing of a byte string shares each of its field-element limbs with the
// same evaluation points. `threshold` is the number of shares *required* to
// reconstruct (polynomial degree threshold-1).
#pragma once

#include <optional>
#include <vector>

#include "crypto/bytes.h"
#include "crypto/field.h"

namespace fairsfe {

class Rng;

// TAINT-SOURCE(share): sub-threshold Shamir share; any minority set must stay hidden
struct ShamirShare {
  std::uint32_t x = 0;        ///< evaluation point (party index + 1, never 0)
  std::vector<Fp> y;          ///< one evaluation per secret limb

  [[nodiscard]] Bytes to_bytes() const;
  static std::optional<ShamirShare> from_bytes(ByteView data);
};

/// Share a field vector with reconstruction threshold `threshold` among `n`
/// parties. Preconditions: 1 <= threshold <= n.
std::vector<ShamirShare> shamir_share(const std::vector<Fp>& secret,
                                      std::size_t threshold, std::size_t n, Rng& rng);

/// Reconstruct from >= threshold shares with distinct x. Returns nullopt on
/// malformed input (mismatched limb counts, duplicated points, too few).
std::optional<std::vector<Fp>> shamir_reconstruct(const std::vector<ShamirShare>& shares,
                                                  std::size_t threshold);

/// Convenience wrappers for byte-string secrets (uses bytes_to_field framing).
std::vector<ShamirShare> shamir_share_bytes(ByteView secret, std::size_t threshold,
                                            std::size_t n, Rng& rng);
std::optional<Bytes> shamir_reconstruct_bytes(const std::vector<ShamirShare>& shares,
                                              std::size_t threshold);

}  // namespace fairsfe
