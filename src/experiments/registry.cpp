#include "experiments/registry.h"

#include <algorithm>
#include <cstdio>
#include <cstdlib>

namespace fairsfe::experiments {

bool ScenarioSpec::has_tag(const std::string& tag) const {
  return std::find(tags.begin(), tags.end(), tag) != tags.end();
}

Registry& Registry::instance() {
  static Registry* reg = [] {
    auto* r = new Registry();
    register_builtin_scenarios(*r);
    return r;
  }();
  return *reg;
}

void Registry::add(ScenarioSpec spec) {
  if (spec.id.empty() || !spec.run || spec.attacks.empty()) {
    std::fprintf(stderr, "registry: scenario '%s' is missing id, body, or attacks\n",
                 spec.id.c_str());
    std::abort();
  }
  if (find(spec.id) != nullptr) {
    std::fprintf(stderr, "registry: duplicate scenario id '%s'\n", spec.id.c_str());
    std::abort();
  }
  specs_.push_back(std::move(spec));
}

const ScenarioSpec* Registry::find(const std::string& id) const {
  for (const ScenarioSpec& s : specs_) {
    if (s.id == id) return &s;
  }
  return nullptr;
}

std::vector<const ScenarioSpec*> Registry::all() const {
  std::vector<const ScenarioSpec*> out;
  out.reserve(specs_.size());
  for (const ScenarioSpec& s : specs_) out.push_back(&s);
  std::sort(out.begin(), out.end(),
            [](const ScenarioSpec* a, const ScenarioSpec* b) { return a->id < b->id; });
  return out;
}

std::vector<const ScenarioSpec*> Registry::match(const std::string& filter) const {
  std::vector<const ScenarioSpec*> out;
  for (const ScenarioSpec* s : all()) {
    if (filter.empty() || glob_match(filter, s->id) ||
        s->id.find(filter) != std::string::npos) {
      out.push_back(s);
      continue;
    }
    for (const std::string& tag : s->tags) {
      if (glob_match(filter, tag)) {
        out.push_back(s);
        break;
      }
    }
  }
  return out;
}

bool Registry::glob_match(const std::string& pattern, const std::string& text) {
  // Iterative fnmatch with single-star backtracking.
  std::size_t p = 0, t = 0, star = std::string::npos, mark = 0;
  while (t < text.size()) {
    if (p < pattern.size() && (pattern[p] == '?' || pattern[p] == text[t])) {
      ++p;
      ++t;
    } else if (p < pattern.size() && pattern[p] == '*') {
      star = p++;
      mark = t;
    } else if (star != std::string::npos) {
      p = star + 1;
      t = ++mark;
    } else {
      return false;
    }
  }
  while (p < pattern.size() && pattern[p] == '*') ++p;
  return p == pattern.size();
}

}  // namespace fairsfe::experiments
