// The declarative scenario layer: the paper's result matrix — protocol ×
// adversary strategy × payoff vector Γ × closed-form bound — expressed as
// data instead of one binary per experiment.
//
// A ScenarioSpec is a value describing one experiment: its registry id,
// title/claim strings, the protocol and attack families under test, the
// default payoff vector, Monte-Carlo defaults (runs / base seed), an
// optional fault plan, the paper's closed-form bound as a callback, a
// canonical rpd::NamedAttack family (what the estimator actually measures),
// and the table-rendering body. The process-wide Registry is populated by
// experiments::setups.cpp (register_builtin_scenarios) from the scenario
// translation units in src/experiments/scenarios/, and is consumed by
//   * bench/fairbench — the single driver CLI (--list / --filter / --runs /
//     --threads / --json / --baseline) replacing the 18 exp* binaries,
//   * rpd::estimate_utility / rpd::assess_protocol ScenarioSpec overloads,
//     so tests and benches provably measure identical configurations,
//   * tests/test_registry.cpp — per-scenario smoke, determinism, and JSON
//     schema checks.
//
// Adding experiment E19 is a ~30-line registration in a new scenarios/ file
// plus one line in scenarios/scenarios.h and setups.cpp — no new binary, no
// argv parsing, no Reporter wiring.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "mpc/preproc/mode.h"
#include "rpd/fairness_relation.h"
#include "sim/fault/plan.h"

namespace fairsfe::bench {
class Reporter;
}  // namespace fairsfe::bench

namespace fairsfe::mpc::preproc {
class CorrelatedRandomness;
}  // namespace fairsfe::mpc::preproc

namespace fairsfe::experiments {

struct ScenarioSpec;

/// What one Monte-Carlo run of a scenario consumes from an offline
/// CorrelatedRandomness batch. Declared on the ScenarioSpec so the driver
/// (fairbench --preproc) can mass-produce ONE batch sized
/// runs × triples_per_run and amortize it across every run and thread of the
/// scenario, instead of each run paying its own offline phase.
struct PreprocBudget {
  std::size_t parties = 2;
  std::size_t triples_per_run = 0;  ///< Beaver triples (= AND gates) per run
  std::size_t rots_per_run = 0;     ///< ROT pairs per ordered pair per run
};

/// Everything a scenario body needs: the spec it was registered with (for
/// bounds/γ/defaults — bodies must not hard-code what the spec declares) and
/// the Reporter rendering this run.
struct ScenarioContext {
  const ScenarioSpec& spec;
  bench::Reporter& rep;
  /// Requested preprocessing mode (fairbench --preproc; default inline).
  mpc::preproc::PreprocMode preproc = mpc::preproc::PreprocMode::kInline;
  /// The driver-amortized offline batch for spec.preproc (null under kInline
  /// or when the spec declares no budget — bodies needing more material
  /// generate their own with preproc::generate_batch).
  std::shared_ptr<const mpc::preproc::CorrelatedRandomness> batch;
  /// Wall-clock cost of generating `batch` (0 when batch is null).
  double offline_seconds = 0.0;
};

/// One experiment of the paper's result matrix, as data.
struct ScenarioSpec {
  std::string id;     ///< registry id, e.g. "exp05_nparty_bounds"
  std::string title;  ///< table header, e.g. "E05: Lemma 11/13 — ..."
  std::string claim;  ///< the paper claim the verdict refers to
  std::string protocol;  ///< protocol family under test ("Opt2SFE", ...)
  std::string attack;    ///< adversary / attack family ("lock-abort", ...)
  /// Filter tags (--filter matches id substrings, ids, and tags): "smoke"
  /// marks scenarios cheap enough for the CI sweep; protocol/topic tags
  /// ("opt2", "two-party", "nparty", "gk", ...) group related experiments.
  std::vector<std::string> tags;
  /// The scenario's canonical payoff vector (bodies may sweep others).
  rpd::PayoffVector gamma = rpd::PayoffVector::standard();
  /// Optional payoff model override. When set, the estimate_utility /
  /// assess_protocol ScenarioSpec overloads score runs through
  /// model->score(RunOutcome) instead of a VectorModel over `gamma`
  /// (collateral-extended scenarios like exp22 set this; `gamma` stays the
  /// anchoring vector for bounds and table headers — keep the two
  /// consistent: model->gamma() should equal `gamma`).
  std::shared_ptr<const rpd::PayoffModel> model;
  std::size_t default_runs = 1000;  ///< Monte-Carlo runs/point default
  std::uint64_t base_seed = 0;      ///< first seed the body draws from
  /// Default fault plan (exp18-style scenarios); estimator overloads apply
  /// it when the caller's EstimatorOptions carries none.
  std::optional<sim::fault::FaultPlan> fault;
  /// Per-run correlated-randomness consumption. Set for GMW-backed scenarios
  /// so `fairbench --preproc offline_*` can pre-generate one amortized batch
  /// (see ScenarioContext::batch); scenarios without it run inline-only.
  std::optional<PreprocBudget> preproc;
  /// The paper's closed-form bound u(γ, x), where x is the scenario's sweep
  /// parameter (drop rate p for exp18, corruption budget t/n encodings, ...;
  /// pass 0 when the bound is parameter-free). Test and bench share this one
  /// formula.
  std::function<double(const rpd::PayoffVector&, double)> bound;
  std::string bound_note;  ///< human form, e.g. "(g10+g11)/2 + p(g00-g11)/2"
  /// Canonical named-attack family: what `rpd::assess_protocol(spec, ...)`
  /// sweeps, and what the registry smoke test estimates. Non-empty for every
  /// registered scenario.
  std::vector<rpd::NamedAttack> attacks;
  /// Optional bit-sliced fast path over the canonical attack's run-index
  /// space (DESIGN.md §11). Only honest-execution scenarios whose per-run
  /// results are bit-identical to attacks.front() may set this; the
  /// ScenarioSpec estimate_utility overload forwards it so
  /// `fairbench --lanes 64` advances 64 runs per machine word.
  rpd::SlicedBatchFn sliced;
  /// Party count for classifying sliced results (required with `sliced`).
  std::size_t sliced_parties = 0;
  /// Full paper-vs-measured table body (the former exp* main()).
  std::function<void(ScenarioContext&)> run;

  /// The registered Monte-Carlo defaults as estimator options.
  [[nodiscard]] rpd::EstimatorOptions default_options() const {
    rpd::EstimatorOptions o;
    o.runs = default_runs;
    o.seed = base_seed;
    if (fault) o.fault = *fault;
    return o;
  }
  [[nodiscard]] bool has_tag(const std::string& tag) const;
};

/// Process-wide scenario table. Thread-compatible: fully populated on first
/// access, immutable afterwards except through add() (which callers must
/// serialize themselves — in practice registration happens before main()
/// spawns anything).
class Registry {
 public:
  /// The singleton, populated with the built-in exp01..exp18 scenarios.
  static Registry& instance();

  /// Register a scenario. Duplicate ids and empty attack families are
  /// programming errors and abort.
  void add(ScenarioSpec spec);

  [[nodiscard]] const ScenarioSpec* find(const std::string& id) const;
  /// All scenarios, sorted by id.
  [[nodiscard]] std::vector<const ScenarioSpec*> all() const;
  /// Scenarios selected by a filter expression: a glob (*, ?) matched
  /// against the id and each tag, with bare substrings of the id also
  /// accepted ("opt2" selects every id containing "opt2" plus every
  /// scenario tagged opt2). Empty filter selects everything.
  [[nodiscard]] std::vector<const ScenarioSpec*> match(const std::string& filter) const;

  /// fnmatch-style glob: '*' any run, '?' any one char, else literal.
  static bool glob_match(const std::string& pattern, const std::string& text);

 private:
  Registry() = default;
  std::vector<ScenarioSpec> specs_;
};

/// Defined in setups.cpp: installs the built-in scenario table (the
/// translation units under src/experiments/scenarios/).
void register_builtin_scenarios(Registry& r);

}  // namespace fairsfe::experiments
