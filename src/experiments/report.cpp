#include "experiments/report.h"

#include <cstdarg>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <memory>

#include "experiments/registry.h"

namespace fairsfe::bench {

Args parse_args(int argc, char** argv) {
  Args a;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--json") == 0 && i + 1 < argc) {
      a.json_path = argv[++i];
    } else if (std::strcmp(argv[i], "--threads") == 0 && i + 1 < argc) {
      a.threads = static_cast<std::size_t>(std::strtoul(argv[++i], nullptr, 10));
    } else if (std::strcmp(argv[i], "--runs") == 0 && i + 1 < argc) {
      const long v = std::strtol(argv[++i], nullptr, 10);
      if (v > 0) {
        a.runs = static_cast<std::size_t>(v);
        a.runs_set = true;
      }
    } else if (std::strcmp(argv[i], "--filter") == 0 && i + 1 < argc) {
      a.filter = argv[++i];
    } else if (std::strcmp(argv[i], "--baseline") == 0 && i + 1 < argc) {
      a.baseline_path = argv[++i];
    } else if (std::strcmp(argv[i], "--lanes") == 0 && i + 1 < argc) {
      const long v = std::strtol(argv[++i], nullptr, 10);
      if (v > 0) a.lanes = static_cast<std::size_t>(v);
    } else if (std::strcmp(argv[i], "--target-ci") == 0 && i + 1 < argc) {
      const double v = std::strtod(argv[++i], nullptr);
      if (v > 0.0) a.target_ci = v;
    } else if (std::strcmp(argv[i], "--preproc") == 0) {
      // Only a recognized mode word is consumed: perf_protocols uses a bare
      // `--preproc` as its mode selector, so `--preproc --json x` must not
      // eat `--json` as the mode.
      if (i + 1 < argc && mpc::preproc::parse_preproc_mode(argv[i + 1])) {
        a.preproc = *mpc::preproc::parse_preproc_mode(argv[++i]);
      } else {
        a.passthrough.emplace_back(argv[i]);
      }
    } else if (std::strcmp(argv[i], "--transport") == 0) {
      // Like --preproc: only a recognized transport word is consumed.
      if (i + 1 < argc && sim::parse_transport_kind(argv[i + 1])) {
        a.transport = *sim::parse_transport_kind(argv[++i]);
      } else {
        a.passthrough.emplace_back(argv[i]);
      }
    } else if (std::strcmp(argv[i], "--seed") == 0 && i + 1 < argc) {
      a.seed = static_cast<std::uint64_t>(std::strtoull(argv[++i], nullptr, 10));
    } else if (std::strcmp(argv[i], "--quiet") == 0) {
      a.quiet = true;
    } else if (std::strcmp(argv[i], "--list") == 0) {
      a.list = true;
    } else if (argv[i][0] != '-') {
      const long v = std::strtol(argv[i], nullptr, 10);
      if (v > 0) {
        a.runs = static_cast<std::size_t>(v);
        a.runs_set = true;
      } else {
        a.passthrough.emplace_back(argv[i]);
      }
    } else {
      a.passthrough.emplace_back(argv[i]);
    }
  }
  return a;
}

Reporter::Reporter(int argc, char** argv, std::size_t default_runs)
    : Reporter(parse_args(argc, argv), default_runs) {}

Reporter::Reporter(const Args& args, std::size_t default_runs)
    : runs_(args.runs_or(default_runs)),
      threads_(args.threads),
      preproc_(args.preproc),
      lanes_(args.lanes),
      target_ci_(args.target_ci),
      transport_(args.transport),
      seed_override_(args.seed),
      quiet_(args.quiet),
      json_path_(args.json_path) {}

void Reporter::offline_batch(const std::string& provider, std::size_t triples,
                             double seconds) {
  if (!quiet_) {
    std::printf("offline batch [%s]: %zu triples in %.4fs (%.0f triples/s)\n",
                provider.c_str(), triples, seconds,
                seconds > 0 ? static_cast<double>(triples) / seconds : 0.0);
  }
  offline_.push_back(OfflineBatch{provider, triples, seconds});
}

void Reporter::title(const std::string& id, const std::string& claim) {
  experiment_ = id;
  claim_ = claim;
  if (!quiet_) std::printf("\n=== %s ===\n%s\n\n", id.c_str(), claim.c_str());
}

void Reporter::begin(const experiments::ScenarioSpec& spec) {
  title(spec.title, spec.claim);
}

void Reporter::gamma(const rpd::PayoffVector& g) {
  gamma_ = g.to_string();
  if (!quiet_) std::printf("gamma = %s, runs/point = %zu\n\n", gamma_.c_str(), runs_);
}

void Reporter::row_header() {
  if (quiet_) return;
  std::printf("%-28s %9s %8s   %5s %5s %5s %5s   %s\n", "configuration", "utility",
              "(+/-3SE)", "E00", "E01", "E10", "E11", "paper");
  std::printf("%-28s %9s %8s   %5s %5s %5s %5s   %s\n", "-------------", "-------",
              "--------", "---", "---", "---", "---", "-----");
}

void Reporter::row(const std::string& name, const rpd::UtilityEstimate& est,
                   const std::string& paper) {
  if (!quiet_) {
    std::printf("%-28s %9.4f %8.4f   %5.2f %5.2f %5.2f %5.2f   %s\n", name.c_str(),
                est.utility, est.margin(), est.event_freq[0], est.event_freq[1],
                est.event_freq[2], est.event_freq[3], paper.c_str());
    if (est.stopped_early) {
      std::printf("  (sequential stop: %zu of %zu runs, ci_halfwidth %.5f)\n",
                  est.runs, est.requested_runs, est.ci_halfwidth());
    }
  }
  rows_.push_back(Row{name, est.utility, est.std_error, est.margin(), est.event_freq,
                      est.runs, est.wall_seconds, est.runs_per_sec(), est.lanes,
                      est.valid_runs, est.runs, est.ci_halfwidth(), paper});
  if (row_sink_) row_sink_(rows_.size() - 1, name);
}

void Reporter::check(bool ok, const std::string& what) {
  if (!quiet_) std::printf("  [%s] %s\n", ok ? "PASS" : "DEVIATION", what.c_str());
  checks_.push_back(Check{ok, what});
  if (!ok) failures_++;
}

int Reporter::finish() {
  if (!quiet_) {
    std::printf("\n%s (%d deviation%s)\n",
                failures_ == 0 ? "ALL CHECKS PASSED" : "DEVIATIONS", failures_,
                failures_ == 1 ? "" : "s");
  }
  if (!json_path_.empty()) write_json();
  return 0;
}

std::string Reporter::json_escape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

namespace {
void appendf(std::string& out, const char* fmt, ...) {
  char buf[1024];
  va_list ap;
  va_start(ap, fmt);
  const int n = std::vsnprintf(buf, sizeof(buf), fmt, ap);
  va_end(ap);
  if (n < 0) return;
  if (static_cast<std::size_t>(n) < sizeof(buf)) {
    out.append(buf, static_cast<std::size_t>(n));
    return;
  }
  // Rare long row/claim: retry with an exact-size heap buffer.
  std::unique_ptr<char[]> big(new char[static_cast<std::size_t>(n) + 1]);
  va_start(ap, fmt);
  std::vsnprintf(big.get(), static_cast<std::size_t>(n) + 1, fmt, ap);
  va_end(ap);
  out.append(big.get(), static_cast<std::size_t>(n));
}
}  // namespace

std::string Reporter::json_object() const {
  std::string out;
  appendf(out, "{\n  \"experiment\": \"%s\",\n  \"claim\": \"%s\",\n",
          json_escape(experiment_).c_str(), json_escape(claim_).c_str());
  if (gamma_.empty()) {
    appendf(out, "  \"gamma\": null,\n");
  } else {
    appendf(out, "  \"gamma\": \"%s\",\n", json_escape(gamma_).c_str());
  }
  appendf(out, "  \"runs_per_point\": %zu,\n  \"threads\": %zu,\n  \"rows\": [", runs_,
          threads_);
  for (std::size_t i = 0; i < rows_.size(); ++i) {
    const Row& r = rows_[i];
    appendf(out,
            "%s\n    {\"name\": \"%s\", \"utility\": %.17g, \"std_error\": %.17g, "
            "\"margin\": %.17g, \"event_freq\": [%.17g, %.17g, %.17g, %.17g], "
            "\"runs\": %zu, \"wall_seconds\": %.6g, \"runs_per_sec\": %.6g, "
            "\"lanes\": %zu, \"valid_runs\": %zu, \"stopped_at\": %zu, "
            "\"ci_halfwidth\": %.17g, \"paper\": \"%s\"}",
            i == 0 ? "" : ",", json_escape(r.name).c_str(), r.utility, r.std_error,
            r.margin, r.event_freq[0], r.event_freq[1], r.event_freq[2],
            r.event_freq[3], r.runs, r.wall_seconds, r.runs_per_sec, r.lanes,
            r.valid_runs, r.stopped_at, r.ci_halfwidth,
            json_escape(r.paper).c_str());
  }
  appendf(out, "\n  ],\n  \"checks\": [");
  for (std::size_t i = 0; i < checks_.size(); ++i) {
    appendf(out, "%s\n    {\"ok\": %s, \"what\": \"%s\"}", i == 0 ? "" : ",",
            checks_[i].ok ? "true" : "false", json_escape(checks_[i].what).c_str());
  }
  appendf(out, "\n  ],\n  \"deviations\": %d", failures_);
  // Emitted only under an offline mode (or when a batch was recorded), so
  // the schema of inline runs — and thus every historical BENCH_*.json —
  // stays byte-stable.
  if (mpc::preproc::is_offline(preproc_) || !offline_.empty()) {
    appendf(out, ",\n  \"preproc\": {\"mode\": \"%s\", \"offline\": [",
            std::string(mpc::preproc::to_string(preproc_)).c_str());
    for (std::size_t i = 0; i < offline_.size(); ++i) {
      appendf(out,
              "%s\n    {\"provider\": \"%s\", \"triples\": %zu, \"seconds\": %.6g}",
              i == 0 ? "" : ",", json_escape(offline_[i].provider).c_str(),
              offline_[i].triples, offline_[i].seconds);
    }
    appendf(out, "%s]}", offline_.empty() ? "" : "\n  ");
  }
  // Same byte-stability pattern: the key appears only off the default path.
  if (transport_ != sim::TransportKind::kInProc) {
    appendf(out, ",\n  \"transport\": \"%s\"",
            std::string(sim::to_string(transport_)).c_str());
  }
  appendf(out, "\n}");
  return out;
}

void Reporter::write_json() {
  std::FILE* f = std::fopen(json_path_.c_str(), "w");
  if (!f) {
    std::fprintf(stderr, "bench: cannot open %s for writing\n", json_path_.c_str());
    return;
  }
  const std::string obj = json_object();
  std::fwrite(obj.data(), 1, obj.size(), f);
  std::fputc('\n', f);
  std::fclose(f);
  if (!quiet_) std::printf("json report written to %s\n", json_path_.c_str());
}

}  // namespace fairsfe::bench
