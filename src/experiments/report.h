// Shared CLI parsing and reporting for every experiment driver: the single
// `fairbench` scenario runner, the perf_* harnesses, and the test suite's
// schema checks.
//
// Historically this lived in bench/bench_util.h and every exp* binary
// re-parsed `[runs] [--json] [--threads]` by hand. The class keeps its
// `fairsfe::bench` namespace (so scenario bodies and the perf harnesses read
// unchanged) but now lives in the library, next to the scenario registry
// that drives it.
//
// bench::Reporter renders the historical fixed-width table on stdout — for
// each configuration the measured utility (with its 3-sigma margin), the
// empirical event distribution, and the paper's closed-form bound, then a
// PASS/DEVIATION verdict on the shape claim — and, when the harness is
// invoked with `--json <path>`, additionally writes the same data
// machine-readably so BENCH_*.json trajectories can be recorded.
//
// CLI accepted by every harness (see bench::parse_args):
//   fairbench [--list] [--filter <glob>] [runs] [--runs N] [--threads N]
//             [--json out.json] [--baseline old.json] [--preproc <mode>]
//             [--lanes {1,64}] [--target-ci <halfwidth>]
//             [--transport {inproc,tcp}] [--seed S] [--quiet]
// where [runs] / --runs overrides the Monte-Carlo runs per point, --threads
// feeds rpd::EstimatorOptions::threads (0 = one per hardware thread), --json
// selects the machine-readable sink, and --preproc selects the
// correlated-randomness phase split (inline | offline_ideal | offline_ot;
// see mpc/preproc/mode.h). The mode flows into every EstimatorOptions the
// Reporter hands out, and fairbench amortizes one offline batch per scenario
// that declares a PreprocBudget. --lanes 64 selects the bit-sliced execution
// path for scenarios that register one (others fall back to the scalar
// engine, bit-identically), and --target-ci enables CI-driven sequential
// stopping at the given 95% half-width (rpd::EstimatorOptions::target_ci).
//
// JSON schema (stable; fairbench emits one object per scenario, an array
// when several scenarios run):
//   {
//     "experiment": str, "claim": str, "gamma": str|null,
//     "runs_per_point": int, "threads": int,
//     "rows": [{"name": str, "utility": num, "std_error": num, "margin": num,
//               "event_freq": [num, num, num, num],   // E00, E01, E10, E11
//               "runs": int, "wall_seconds": num, "runs_per_sec": num,
//               "lanes": int,          // 1 scalar, 64 bit-sliced
//               "valid_runs": int,     // runs minus round-cap exclusions
//               "stopped_at": int,     // runs performed (< requested when
//                                      //   sequential stopping halted early)
//               "ci_halfwidth": num,   // 1.96 * std_error
//               "paper": str}],
//     "checks": [{"ok": bool, "what": str}],
//     "deviations": int
//   }
// plus, when a preprocessing mode other than inline is active (or an offline
// batch was recorded), a "preproc" section:
//     "preproc": {"mode": str,
//                 "offline": [{"provider": str, "triples": int,
//                              "seconds": num}]}
// and, when a transport other than inproc is active, a "transport" key
// (string). Both sections are conditional so the schema — and every
// historical BENCH_*.json — stays byte-stable under the defaults.
#pragma once

#include <cstdint>
#include <functional>
#include <optional>
#include <string>
#include <vector>

#include "mpc/preproc/mode.h"
#include "rpd/estimator.h"
#include "sim/transport.h"

namespace fairsfe::experiments {
struct ScenarioSpec;
}  // namespace fairsfe::experiments

namespace fairsfe::bench {

/// The common experiment-harness CLI, parsed once. Flags every harness
/// shares: positional [runs] (or --runs N), --threads N, --json <path>.
/// Driver-level flags (--list, --filter, --baseline) are carried along for
/// fairbench; anything unrecognized lands in `passthrough` so wrapper
/// binaries (perf_*) can forward google-benchmark flags.
struct Args {
  std::size_t runs = 0;  ///< valid only when runs_set
  bool runs_set = false;
  std::size_t threads = 1;
  std::string json_path;
  bool list = false;
  std::string filter;         ///< scenario glob for fairbench --filter
  std::string baseline_path;  ///< fairbench --baseline, fed to bench_diff.py
  /// --preproc <mode>: correlated-randomness phase split for every scenario.
  mpc::preproc::PreprocMode preproc = mpc::preproc::PreprocMode::kInline;
  /// --lanes {1,64}: execution lane width (rpd::EstimatorOptions::lanes).
  std::size_t lanes = 1;
  /// --target-ci <halfwidth>: sequential-stopping 95% CI half-width; 0 = off.
  double target_ci = 0.0;
  /// --transport {inproc,tcp}: delivery-leg transport for every estimation
  /// (rpd::EstimatorOptions::transport). Estimates are bit-identical across
  /// transports; tcp additionally exercises the framed wire path.
  sim::TransportKind transport = sim::TransportKind::kInProc;
  /// --seed S: replay the whole scenario under one master seed — overrides
  /// the seed of EVERY EstimatorOptions the Reporter hands out (scenario
  /// bodies hard-code per-point seeds; this replaces them all uniformly).
  /// This is how a fairbenchd request's "seed" field and a one-shot
  /// `fairbench --seed S` are guaranteed to measure the same thing.
  std::optional<std::uint64_t> seed;
  /// --quiet: suppress the stdout table (fairbenchd serves the JSON object
  /// over the socket; its stdout is a log, not a report channel).
  bool quiet = false;
  std::vector<std::string> passthrough;  ///< unrecognized argv entries

  [[nodiscard]] std::size_t runs_or(std::size_t default_runs) const {
    return runs_set ? runs : default_runs;
  }
};

/// Parses the shared harness CLI out of argv. Never fails: unknown flags are
/// collected, a non-numeric positional is passed through.
Args parse_args(int argc, char** argv);

/// Paper-vs-measured table writer; one instance per scenario run.
class Reporter {
 public:
  /// Parses [runs] / --json / --threads from argv; `default_runs` applies
  /// when no positional override is given.
  Reporter(int argc, char** argv, std::size_t default_runs);

  /// The parsed-args form used by fairbench (which parses argv once and
  /// shares the result across every selected scenario).
  Reporter(const Args& args, std::size_t default_runs);

  [[nodiscard]] std::size_t runs() const { return runs_; }
  [[nodiscard]] std::size_t threads() const { return threads_; }
  [[nodiscard]] mpc::preproc::PreprocMode preproc() const { return preproc_; }
  [[nodiscard]] std::size_t lanes() const { return lanes_; }
  [[nodiscard]] double target_ci() const { return target_ci_; }

  /// EstimatorOptions for one utility point: the harness's runs/threads/
  /// preproc/lanes/target-ci settings plus the call site's seed. Callers
  /// needing a different run count adjust the returned struct.
  [[nodiscard]] rpd::EstimatorOptions opts(std::uint64_t seed) const {
    rpd::EstimatorOptions o;
    // A harness-level --seed replays the whole scenario under one master
    // seed, overriding every per-point seed the body hard-codes (Args::seed).
    o.runs = runs_;
    o.seed = seed_override_.value_or(seed);
    o.threads = threads_;
    o.preproc = preproc_;
    o.lanes = lanes_;
    o.target_ci = target_ci_;
    o.transport = transport_;
    return o;
  }

  [[nodiscard]] sim::TransportKind transport() const { return transport_; }
  /// The scenario's effective batch/base seed: the --seed override when one
  /// is set, otherwise `fallback` (normally the spec's base_seed).
  [[nodiscard]] std::uint64_t base_seed_or(std::uint64_t fallback) const {
    return seed_override_.value_or(fallback);
  }

  /// Streaming sink invoked after each row() with (row_index, name) — the
  /// fairbenchd progress channel. Unset by default (no overhead).
  void set_row_sink(std::function<void(std::size_t, const std::string&)> sink) {
    row_sink_ = std::move(sink);
  }

  /// Record (and print) the cost of one offline correlated-randomness batch.
  /// Scenario bodies and the fairbench driver call this once per batch; the
  /// entries land in the JSON "preproc" section so offline and online cost
  /// are reported separately.
  void offline_batch(const std::string& provider, std::size_t triples,
                     double seconds);

  void title(const std::string& id, const std::string& claim);

  /// Consume a ScenarioSpec directly: prints the spec's title/claim header,
  /// so the table provably describes the registered configuration.
  void begin(const experiments::ScenarioSpec& spec);

  void gamma(const rpd::PayoffVector& g);
  void row_header();
  void row(const std::string& name, const rpd::UtilityEstimate& est,
           const std::string& paper);
  void check(bool ok, const std::string& what);

  /// Prints the verdict summary and, with --json, writes the report file.
  /// Always returns 0: deviations are recorded in the output, never break
  /// the bench loop.
  int finish();

  [[nodiscard]] int deviations() const { return failures_; }

  /// This scenario's report as one JSON object (the schema above). fairbench
  /// concatenates these into the multi-scenario array.
  [[nodiscard]] std::string json_object() const;

 private:
  struct Row {
    std::string name;
    double utility, std_error, margin;
    std::array<double, 4> event_freq;
    std::size_t runs;
    double wall_seconds, runs_per_sec;
    std::size_t lanes, valid_runs, stopped_at;
    double ci_halfwidth;
    std::string paper;
  };
  struct Check {
    bool ok;
    std::string what;
  };
  struct OfflineBatch {
    std::string provider;
    std::size_t triples;
    double seconds;
  };

  static std::string json_escape(const std::string& s);
  void write_json();

  std::size_t runs_;
  std::size_t threads_ = 1;
  mpc::preproc::PreprocMode preproc_ = mpc::preproc::PreprocMode::kInline;
  std::size_t lanes_ = 1;
  double target_ci_ = 0.0;
  sim::TransportKind transport_ = sim::TransportKind::kInProc;
  std::optional<std::uint64_t> seed_override_;
  bool quiet_ = false;
  std::function<void(std::size_t, const std::string&)> row_sink_;
  std::vector<OfflineBatch> offline_;
  std::string json_path_;
  std::string experiment_, claim_, gamma_;
  std::vector<Row> rows_;
  std::vector<Check> checks_;
  int failures_ = 0;
};

}  // namespace fairsfe::bench
