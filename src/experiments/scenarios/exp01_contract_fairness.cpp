// E01 — Section 1, the motivating example: Π₂ is "twice as fair" as Π₁.
//
// Paper claim: the best attacker against Π₁ always earns γ10 (corrupt the
// second opener, take the contract, abort); against Π₂ the Blum coin toss
// halves the window, so the best attacker earns (γ10 + γ11)/2. Hence
// Π₂ ≻γ Π₁ in the relative-fairness partial order (Definition 1).
#include <cmath>
#include <cstdio>

#include "experiments/registry.h"
#include "experiments/report.h"
#include "experiments/scenarios/scenarios.h"
#include "experiments/setups.h"

namespace fairsfe::experiments {
namespace {

void run(ScenarioContext& ctx) {
  bench::Reporter& rep = ctx.rep;
  const rpd::PayoffVector gamma = ctx.spec.gamma;

  rep.gamma(gamma);
  rep.row_header();

  const auto pi1 = rpd::assess_protocol(
      two_party_attack_family([](sim::PartyId c) {
        return contract_attack(fair::ContractVariant::kPi1, c);
      }),
      gamma, rep.opts(1));
  for (const auto& a : pi1.attacks) {
    rep.row("Pi1 / " + a.name, a.estimate, "sup = 1.000 (g10)");
  }

  const auto pi2 = rpd::assess_protocol(ctx.spec, rep.opts(10));
  for (const auto& a : pi2.attacks) {
    char buf[64];
    std::snprintf(buf, sizeof(buf), "sup = %.3f ((g10+g11)/2)",
                  ctx.spec.bound(gamma, 0.0));
    rep.row("Pi2 / " + a.name, a.estimate, buf);
  }

  std::printf("\nsup_A u(Pi1, A) = %.4f   sup_A u(Pi2, A) = %.4f\n\n", pi1.best_utility(),
              pi2.best_utility());

  rep.check(std::abs(pi1.best_utility() - gamma.g10) < 0.02,
            "Pi1 best attack reaches g10 (full unfairness)");
  rep.check(std::abs(pi2.best_utility() - ctx.spec.bound(gamma, 0.0)) <
            pi2.best_margin() + 0.02,
            "Pi2 best attack is (g10+g11)/2 (half the window)");
  rep.check(rpd::at_least_as_fair(pi2, pi1) && !rpd::at_least_as_fair(pi1, pi2),
            "Pi2 strictly precedes Pi1 in the fairness partial order");
}

}  // namespace

void register_exp01(Registry& r) {
  ScenarioSpec s;
  s.id = "exp01_contract_fairness";
  s.title = "E01: contract signing, Pi1 vs Pi2 (paper Section 1)";
  s.claim =
      "Claim: sup_A u(Pi1, A) = g10; sup_A u(Pi2, A) = (g10+g11)/2 — "
      "Pi2 is strictly fairer.";
  s.protocol = "contract signing Pi1 / Pi2";
  s.attack = "two-party lock-abort family";
  s.tags = {"smoke", "two-party", "contract"};
  s.gamma = rpd::PayoffVector::standard();
  s.default_runs = 4000;
  s.base_seed = 1;
  s.bound = [](const rpd::PayoffVector& g, double) { return g.two_party_opt_bound(); };
  s.bound_note = "(g10+g11)/2";
  s.attacks = two_party_attack_family(
      [](sim::PartyId c) { return contract_attack(fair::ContractVariant::kPi2, c); });
  s.run = run;
  r.add(std::move(s));
}

}  // namespace fairsfe::experiments
