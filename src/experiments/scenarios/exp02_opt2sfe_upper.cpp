// E02 — Theorem 3: u_A(ΠOpt2SFE, A) ≤ (γ10 + γ11)/2 for every adversary A
// and every γ ∈ Γfair. The harness throws the full strategy family at the
// protocol under several payoff vectors; no strategy may exceed the bound.
#include <algorithm>
#include <cmath>
#include <cstdio>

#include "experiments/registry.h"
#include "experiments/report.h"
#include "experiments/scenarios/scenarios.h"
#include "experiments/setups.h"

namespace fairsfe::experiments {
namespace {

std::vector<rpd::NamedAttack> opt2_attack_family() {
  return {
      {"lock-abort(p1)", opt2_lock_abort(0)},
      {"lock-abort(p2)", opt2_lock_abort(1)},
      {"Agen (random corrupt)", opt2_agen()},
      {"abort-phase1", opt2_abort_phase1()},
      {"passive", opt2_passive()},
      {"no-corruption", opt2_no_corruption()},
      {"corrupt-all", opt2_corrupt_all()},
  };
}

void run(ScenarioContext& ctx) {
  bench::Reporter& rep = ctx.rep;

  const std::vector<std::pair<std::string, rpd::PayoffVector>> gammas = {
      {"standard (0.25,0,1,0.5)", rpd::PayoffVector::standard()},
      {"partial-fairness (0,0,1,0)", rpd::PayoffVector::partial_fairness()},
      {"flat (0.5,0,1,0.5)", {0.5, 0.0, 1.0, 0.5}},
      {"scaled (0,0,2,1)", {0.0, 0.0, 2.0, 1.0}},
  };

  const std::vector<rpd::NamedAttack> attacks = opt2_attack_family();

  std::uint64_t seed = ctx.spec.base_seed;
  for (const auto& [gname, gamma] : gammas) {
    std::printf("--- gamma class: %s, bound (g10+g11)/2 = %.3f ---\n", gname.c_str(),
                ctx.spec.bound(gamma, 0.0));
    rep.gamma(gamma);
    rep.row_header();
    double best = -1e9;
    for (const auto& a : attacks) {
      const auto est = rpd::estimate_utility(a.factory, gamma, rep.opts(seed++));
      char buf[48];
      std::snprintf(buf, sizeof(buf), "<= %.3f", ctx.spec.bound(gamma, 0.0));
      rep.row(a.name, est, buf);
      best = std::max(best, est.utility - est.margin());
      rep.check(est.utility <= ctx.spec.bound(gamma, 0.0) + est.margin() + 0.02,
                a.name + " respects the Theorem 3 bound");
    }
    std::printf("\n");
  }
}

}  // namespace

void register_exp02(Registry& r) {
  ScenarioSpec s;
  s.id = "exp02_opt2sfe_upper";
  s.title = "E02: Theorem 3 — Opt2SFE utility upper bound";
  s.claim =
      "Claim: u_A(Opt2SFE, A) <= (g10 + g11)/2 for all A, gamma in "
      "Gamma_fair.";
  s.protocol = "Opt2SFE";
  s.attack = "full two-party strategy family (7 attacks)";
  s.tags = {"smoke", "two-party", "opt2"};
  s.gamma = rpd::PayoffVector::standard();
  s.default_runs = 3000;
  s.base_seed = 100;
  s.bound = [](const rpd::PayoffVector& g, double) { return g.two_party_opt_bound(); };
  s.bound_note = "(g10+g11)/2";
  s.attacks = opt2_attack_family();
  s.run = run;
  r.add(std::move(s));
}

}  // namespace fairsfe::experiments
