// E03 — Theorem 4 / Lemma 7: the lower bound. For the swap-like function
// (two-party exchange), the mixed adversary Agen earns at least
// (γ10 + γ11)/2 against *any* protocol, and the pair (A1, A2) jointly earns
// γ10 + γ11. The harness runs these adversaries against every two-party
// protocol in the library and shows none escapes the bound — while the
// unfair protocols exceed it.
#include <algorithm>
#include <cmath>
#include <cstdio>

#include "experiments/registry.h"
#include "experiments/report.h"
#include "experiments/scenarios/scenarios.h"
#include "experiments/setups.h"

namespace fairsfe::experiments {
namespace {

void run(ScenarioContext& ctx) {
  bench::Reporter& rep = ctx.rep;
  const rpd::PayoffVector gamma = ctx.spec.gamma;
  rep.gamma(gamma);

  struct ProtocolRow {
    std::string name;
    std::function<rpd::SetupFactory(sim::PartyId)> lock_abort;
    rpd::SetupFactory agen;
  };
  const std::vector<ProtocolRow> protocols = {
      {"Opt2SFE", [](sim::PartyId c) { return opt2_lock_abort(c); }, opt2_agen()},
      {"Pi1 (naive contract)",
       [](sim::PartyId c) { return contract_attack(fair::ContractVariant::kPi1, c); },
       rpd::SetupFactory{}},
      {"Pi2 (coin-toss contract)",
       [](sim::PartyId c) { return contract_attack(fair::ContractVariant::kPi2, c); },
       rpd::SetupFactory{}},
  };

  std::uint64_t seed = ctx.spec.base_seed;
  for (const auto& proto : protocols) {
    std::printf("--- protocol: %s ---\n", proto.name.c_str());
    rep.row_header();
    const auto a1 = rpd::estimate_utility(proto.lock_abort(0), gamma, rep.opts(seed++));
    const auto a2 = rpd::estimate_utility(proto.lock_abort(1), gamma, rep.opts(seed++));
    rep.row("A1 (corrupt p1)", a1, "");
    rep.row("A2 (corrupt p2)", a2, "");
    const double pair_sum = a1.utility + a2.utility;
    char buf[96];
    std::snprintf(buf, sizeof(buf), "u(A1)+u(A2) = %.4f  (Lemma 7 floor %.3f)", pair_sum,
                  gamma.g10 + gamma.g11);
    std::printf("%s\n", buf);
    rep.check(pair_sum >= gamma.g10 + gamma.g11 - a1.margin() - a2.margin() - 0.03,
              proto.name + ": Lemma 7 pair bound holds");
    if (proto.agen) {
      const auto agen = rpd::estimate_utility(proto.agen, gamma, rep.opts(seed++));
      rep.row("Agen (mix of A1, A2)", agen, "");
      rep.check(agen.utility >= gamma.two_party_opt_bound() - agen.margin() - 0.03,
                proto.name + ": Theorem 4 mixed bound holds");
    }
    std::printf("\n");
  }

  std::printf("Interpretation: no two-party protocol evades (g10+g11)/2; the optimal\n"
              "protocol achieves it exactly, the naive Pi1 does strictly worse.\n");
}

}  // namespace

void register_exp03(Registry& r) {
  ScenarioSpec s;
  s.id = "exp03_swap_lower";
  s.title = "E03: Theorem 4 / Lemma 7 — universal lower bound for the swap function";
  s.claim =
      "Claim: u(A1) + u(A2) >= g10 + g11 for every protocol; the mixed Agen earns\n"
      ">= (g10+g11)/2. Opt2SFE meets the bound with equality (it is optimal).";
  s.protocol = "Opt2SFE / Pi1 / Pi2 (every two-party design)";
  s.attack = "A1, A2, Agen (Theorem 4 adversaries)";
  s.tags = {"smoke", "two-party", "opt2", "contract"};
  s.gamma = rpd::PayoffVector::standard();
  s.default_runs = 3000;
  s.base_seed = 300;
  s.bound = [](const rpd::PayoffVector& g, double) { return g.g10 + g.g11; };
  s.bound_note = "u(A1)+u(A2) >= g10+g11";
  s.attacks = {{"A1 (corrupt p1)", opt2_lock_abort(0)},
               {"A2 (corrupt p2)", opt2_lock_abort(1)},
               {"Agen (mix of A1, A2)", opt2_agen()}};
  s.run = run;
  r.add(std::move(s));
}

}  // namespace fairsfe::experiments
