// E04 — Lemma 9 / Lemma 10: reconstruction-round optimality.
//
// ΠOpt2SFE has exactly two reconstruction rounds: an abort during phase 1 is
// harmless (the honest party's default evaluation makes the outcome
// simulatable with the *fair* functionality — event E01), and only the
// final reconstruction round is unfair. Lemma 10 says no optimally fair
// protocol can make do with ONE reconstruction round: in a single
// simultaneous exchange a rushing adversary always takes the honest opening
// and withholds its own, earning γ10 outright. The harness builds that
// one-round variant and exhibits the gap.
#include <cmath>
#include <cstdio>
#include <string>

#include "adversary/lock_abort.h"
#include "experiments/registry.h"
#include "experiments/report.h"
#include "experiments/scenarios/scenarios.h"
#include "experiments/setups.h"
#include "fair/opt2sfe.h"

namespace fairsfe::experiments {
namespace {

// The strawman: phase 1 as in ΠOpt2SFE, then ONE simultaneous opening round.
class OneRoundParty final : public sim::PartyBase<OneRoundParty> {
 public:
  OneRoundParty(sim::PartyId id, mpc::SfeSpec spec, Bytes input)
      : PartyBase(id), spec_(std::move(spec)), input_(std::move(input)) {}

  std::vector<sim::Message> on_round(int, sim::MsgView in) override {
    switch (step_) {
      case 0:
        step_ = 1;
        return {{id_, sim::kFunc, sim::encode_func_input(input_)}};
      case 1: {
        const sim::Message* fm = first_from(in, sim::kFunc);
        if (fm == nullptr) return {};
        const auto body = sim::decode_func_output(fm->payload);
        if (!body) {
          finish_default();
          return {};
        }
        Reader r(*body);
        const auto share_bytes = r.blob();
        const auto share = share_bytes ? AuthShare2::from_bytes(*share_bytes) : std::nullopt;
        if (!share) {
          finish_default();
          return {};
        }
        share_ = *share;
        step_ = 2;
        // Single simultaneous reconstruction round.
        Writer w;
        w.u8(20).blob(share_.opening_to_bytes());
        return {{id_, 1 - id_, w.take()}};
      }
      case 2: {
        for (const sim::Message& m : in) {
          if (m.from != 1 - id_) continue;
          Reader r(m.payload);
          if (r.u8() != std::optional<std::uint8_t>{20}) continue;
          const auto body = r.blob();
          const auto y = body ? auth_reconstruct2(share_, *body) : std::nullopt;
          if (y) {
            finish(*y);
            return {};
          }
        }
        finish_bot();
        return {};
      }
    }
    return {};
  }

  void on_abort() override {
    if (done()) return;
    if (step_ <= 1) {
      finish_default();
    } else {
      finish_bot();
    }
  }

 private:
  void finish_default() {
    std::vector<Bytes> xs = spec_.default_inputs;
    xs[static_cast<std::size_t>(id_)] = input_;
    finish(spec_.eval(xs));
  }

  mpc::SfeSpec spec_;
  Bytes input_;
  int step_ = 0;
  AuthShare2 share_;
};

rpd::SetupFactory one_round_lock_abort(sim::PartyId corrupt) {
  return [corrupt](Rng& rng) {
    rpd::RunSetup s;
    const mpc::SfeSpec spec = two_party_spec();
    const auto xs = random_inputs(2, rng);
    s.parties.push_back(std::make_unique<OneRoundParty>(0, spec, xs[0]));
    s.parties.push_back(std::make_unique<OneRoundParty>(1, spec, xs[1]));
    s.functionality = std::make_unique<fair::Opt2ShareFunc>(spec);
    s.adversary = std::make_unique<adversary::LockAbortAdversary>(
        std::set<sim::PartyId>{corrupt}, xs[0] + xs[1]);
    s.engine.max_rounds = 10;
    return s;
  };
}

void run(ScenarioContext& ctx) {
  bench::Reporter& rep = ctx.rep;
  const rpd::PayoffVector gamma = ctx.spec.gamma;

  rep.gamma(gamma);
  rep.row_header();

  // Phase-1 abort against Opt2SFE is fair (Lemma 9's first claim).
  const auto phase1 = rpd::estimate_utility(opt2_abort_phase1(), gamma, rep.opts(1));
  rep.row("Opt2SFE / abort-phase1", phase1, "E01 (fair, simulatable)");
  rep.check(phase1.freq(rpd::FairnessEvent::kE01) > 0.99,
            "phase-1 abort against Opt2SFE stays fair (Lemma 9)");

  // Reconstruction-phase attack: the (g10+g11)/2 optimum.
  const auto two_round = rpd::estimate_utility(opt2_lock_abort(0), gamma, rep.opts(2));
  rep.row("Opt2SFE / lock-abort", two_round, "(g10+g11)/2 = 0.750");
  rep.check(std::abs(two_round.utility - gamma.two_party_opt_bound()) <
            two_round.margin() + 0.02,
            "2-reconstruction-round protocol achieves the optimum");

  // The 1-round strawman: rushing steals the opening every time.
  for (sim::PartyId c : {0, 1}) {
    const auto one_round = rpd::estimate_utility(
        one_round_lock_abort(c), gamma, rep.opts(3 + static_cast<std::uint64_t>(c)));
    rep.row("1-round variant / corrupt p" + std::to_string(c + 1), one_round,
            "g10 = 1.000 (Lemma 10)");
    rep.check(one_round.utility > gamma.g10 - 0.02,
              "1-round variant loses everything to rushing (corrupt p" +
              std::to_string(c + 1) + ")");
  }

  std::printf("\nHonest-run round counts (engine rounds, incl. 2 hybrid rounds):\n");
  {
    Rng rng(99);  // LINT-ALLOW(rng-fork-discipline): fixed demo seed at the scenario boundary; table output is golden
    const mpc::SfeSpec spec = two_party_spec();
    const auto xs = random_inputs(2, rng);
    auto parties = fair::make_opt2_parties(spec, xs[0], xs[1], rng);
    sim::Engine e(std::move(parties), std::make_unique<fair::Opt2ShareFunc>(spec), nullptr,
                  rng.fork("engine"));
    const auto r = e.run();
    std::printf("  Opt2SFE honest execution: %d rounds (phase 2 = 2 rounds)\n\n", r.rounds);
  }
}

}  // namespace

void register_exp04(Registry& r) {
  ScenarioSpec s;
  s.id = "exp04_reconstruction_rounds";
  s.title = "E04: Lemma 9/10 — reconstruction-round optimality";
  s.claim =
      "Claim: Opt2SFE needs exactly 2 reconstruction rounds; any 1-round\n"
      "variant hands the rushing adversary g10 with probability 1.";
  s.protocol = "Opt2SFE vs 1-round strawman";
  s.attack = "abort-phase1 / lock-abort / rushing";
  s.tags = {"smoke", "two-party", "opt2"};
  s.gamma = rpd::PayoffVector::standard();
  s.default_runs = 3000;
  s.base_seed = 1;
  s.bound = [](const rpd::PayoffVector& g, double) { return g.two_party_opt_bound(); };
  s.bound_note = "(g10+g11)/2";
  s.attacks = {{"abort-phase1", opt2_abort_phase1()},
               {"lock-abort", opt2_lock_abort(0)},
               {"1-round rushing (corrupt p1)", one_round_lock_abort(0)},
               {"1-round rushing (corrupt p2)", one_round_lock_abort(1)}};
  s.run = run;
  r.add(std::move(s));
}

}  // namespace fairsfe::experiments
