// E05 — Lemma 11 / Lemma 13: the multi-party bounds.
//
// Against ΠOptnSFE a t-adversary earns at most (t·γ10 + (n−t)·γ11)/n — the
// chance of having corrupted the value-holder p_{i*} is exactly t/n — and
// the (n−1)-coalition (or the mixed A_ī adversary) achieves the optimum
// ((n−1)γ10 + γ11)/n. The harness sweeps n and t and prints both series.
#include <cmath>
#include <cstdio>
#include <string>

#include "experiments/registry.h"
#include "experiments/report.h"
#include "experiments/scenarios/scenarios.h"
#include "experiments/setups.h"

namespace fairsfe::experiments {
namespace {

void run(ScenarioContext& ctx) {
  bench::Reporter& rep = ctx.rep;
  const rpd::PayoffVector gamma = ctx.spec.gamma;
  rep.gamma(gamma);

  std::uint64_t seed = ctx.spec.base_seed;

  for (const std::size_t n : {3u, 4u, 5u, 6u, 8u}) {
    std::printf("--- n = %zu ---\n", n);
    rep.row_header();
    for (std::size_t t = 1; t < n; ++t) {
      const auto est = rpd::estimate_utility(optn_lock_abort(n, t), gamma, rep.opts(seed++));
      const double bound = gamma.nparty_bound(t, n);
      char buf[64];
      std::snprintf(buf, sizeof(buf), "(t*g10+(n-t)*g11)/n = %.3f", bound);
      rep.row("lock-abort t=" + std::to_string(t), est, buf);
      rep.check(std::abs(est.utility - bound) < est.margin() + 0.03,
                "n=" + std::to_string(n) + " t=" + std::to_string(t) +
                " matches the Lemma 11 value");
    }
    // Lemma 13: the mixed adversary achieves the optimum.
    const auto mixed = rpd::estimate_utility(optn_a_ibar_mixed(n), gamma, rep.opts(seed++));
    char buf[64];
    std::snprintf(buf, sizeof(buf), "optimum ((n-1)g10+g11)/n = %.3f",
                  gamma.nparty_opt_bound(n));
    rep.row("mixed A_ibar (Lemma 13)", mixed, buf);
    rep.check(mixed.utility >= gamma.nparty_opt_bound(n) - mixed.margin() - 0.03,
              "n=" + std::to_string(n) + " mixed A_ibar achieves the optimum");
    std::printf("\n");
  }

  std::printf("Shape: utility grows linearly in t with slope (g10-g11)/n and the\n"
              "optimum approaches g10 as n grows — exactly the paper's series.\n");
}

}  // namespace

void register_exp05(Registry& r) {
  ScenarioSpec s;
  s.id = "exp05_nparty_bounds";
  s.title = "E05: Lemma 11/13 — OptNSFE multi-party bounds";
  s.claim = "Claim: u(t-adversary) = (t*g10 + (n-t)*g11)/n; optimum at t = n-1.";
  s.protocol = "OptNSFE";
  s.attack = "t-coalition lock-abort, mixed A_ibar";
  s.tags = {"smoke", "multi-party", "optn"};
  s.gamma = rpd::PayoffVector::standard();
  s.default_runs = 2500;
  s.base_seed = 500;
  // x = t/n: the Lemma 11 line through (0, g11) and (1, g10).
  s.bound = [](const rpd::PayoffVector& g, double x) {
    return x * g.g10 + (1.0 - x) * g.g11;
  };
  s.bound_note = "(t*g10+(n-t)*g11)/n at x = t/n";
  s.attacks = {{"lock-abort n=5 t=4", optn_lock_abort(5, 4)},
               {"mixed A_ibar n=5", optn_a_ibar_mixed(5)}};
  s.run = run;
  r.add(std::move(s));
}

}  // namespace fairsfe::experiments
