// E06 — Lemma 14 / Lemma 16: utility-balanced fairness.
//
// Σ_{t=1}^{n-1} u(best t-adversary vs ΠOptnSFE) ≤ (n−1)(γ10+γ11)/2, and the
// bound is tight (Lemma 16's coalition pairs achieve it). The harness prints
// the per-t profile φ(t) and its sum against the bound, for several n.
#include <cstdio>
#include <string>

#include "experiments/registry.h"
#include "experiments/report.h"
#include "experiments/scenarios/scenarios.h"
#include "experiments/setups.h"
#include "rpd/balance.h"

namespace fairsfe::experiments {
namespace {

void run(ScenarioContext& ctx) {
  bench::Reporter& rep = ctx.rep;
  const rpd::PayoffVector gamma = ctx.spec.gamma;
  rep.gamma(gamma);

  std::uint64_t seed = ctx.spec.base_seed;

  for (const std::size_t n : {3u, 4u, 5u, 6u}) {
    const auto profile = rpd::balance_profile(
        n,
        [n](std::size_t t) { return nparty_attack_family(NPartyProtocol::kOptN, n, t); },
        gamma, rep.opts(seed));
    seed += 100;

    std::printf("--- n = %zu ---\n", n);
    std::printf("%-6s %-20s %10s   %s\n", "t", "best strategy", "phi(t)", "paper phi(t)");
    for (std::size_t t = 1; t < n; ++t) {
      std::printf("%-6zu %-20s %10.4f   %.4f\n", t,
                  profile.best_per_t[t - 1].name.c_str(), profile.phi(t),
                  gamma.nparty_bound(t, n));
    }
    std::printf("sum = %.4f   bound (n-1)(g10+g11)/2 = %.4f   margin = %.4f\n\n",
                profile.sum(), gamma.balance_bound(n), profile.sum_margin());
    rep.check(rpd::is_utility_balanced(profile, gamma),
              "n=" + std::to_string(n) + ": OptNSFE is utility-balanced");
    rep.check(profile.sum() >= gamma.balance_bound(n) - profile.sum_margin() - 0.1,
              "n=" + std::to_string(n) + ": the balance bound is tight (Lemma 16)");
  }
}

}  // namespace

void register_exp06(Registry& r) {
  ScenarioSpec s;
  s.id = "exp06_utility_balance";
  s.title = "E06: Lemma 14/16 — utility-balanced fairness of OptNSFE";
  s.claim = "Claim: sum_t phi(t) = (n-1)(g10+g11)/2, the minimal possible sum.";
  s.protocol = "OptNSFE";
  s.attack = "per-t best of the n-party attack family";
  s.tags = {"smoke", "multi-party", "optn", "balance"};
  s.gamma = rpd::PayoffVector::standard();
  s.default_runs = 1500;
  s.base_seed = 600;
  s.bound = [](const rpd::PayoffVector& g, double) { return (g.g10 + g.g11) / 2.0; };
  s.bound_note = "sum_t phi(t) = (n-1)(g10+g11)/2";
  s.attacks = nparty_attack_family(NPartyProtocol::kOptN, 4, 2);
  s.run = run;
  r.add(std::move(s));
}

}  // namespace fairsfe::experiments
