// E07 — Lemma 17: the honest-majority protocol Π½GMW is fully fair below
// n/2 corruptions and fully unfair at and above — the utility staircase
//     u(t) = γ11 for t < n/2,   u(t) = γ10 for t ≥ n/2,
// which makes it NOT utility-balanced for even n (it "gives up completely"
// at n/2), while for odd n its per-t sum meets the balanced bound exactly.
#include <cmath>
#include <cstdio>
#include <string>

#include "experiments/registry.h"
#include "experiments/report.h"
#include "experiments/scenarios/scenarios.h"
#include "experiments/setups.h"
#include "rpd/balance.h"

namespace fairsfe::experiments {
namespace {

void run(ScenarioContext& ctx) {
  bench::Reporter& rep = ctx.rep;
  const rpd::PayoffVector gamma = ctx.spec.gamma;
  rep.gamma(gamma);

  std::uint64_t seed = ctx.spec.base_seed;

  for (const std::size_t n : {4u, 5u, 6u, 7u, 8u}) {
    std::printf("--- n = %zu (threshold %zu) ---\n", n, fair::half_gmw_threshold(n));
    rep.row_header();
    double sum = 0.0;
    double sum_margin = 0.0;
    for (std::size_t t = 1; t < n; ++t) {
      const auto est = rpd::estimate_utility(half_gmw_coalition(n, t), gamma, rep.opts(seed++));
      const double paper = (t >= (n + 1) / 2) ? gamma.g10
                           : (2 * t >= n)     ? gamma.g10
                                              : gamma.g11;
      char buf[48];
      std::snprintf(buf, sizeof(buf), "%s = %.3f", (paper == gamma.g10 ? "g10" : "g11"),
                    paper);
      rep.row("coalition t=" + std::to_string(t), est, buf);
      rep.check(std::abs(est.utility - paper) < est.margin() + 0.02,
                "n=" + std::to_string(n) + " t=" + std::to_string(t) +
                " sits on the staircase");
      sum += est.utility;
      sum_margin += est.margin();
    }
    const double bound = gamma.balance_bound(n);
    std::printf("sum = %.4f   balanced bound = %.4f   -> %s\n\n", sum, bound,
                sum <= bound + sum_margin ? "balanced" : "NOT balanced");
    if (n % 2 == 0) {
      rep.check(sum > bound + 0.1,
                "n=" + std::to_string(n) + " (even): sum exceeds the balanced bound");
    } else {
      rep.check(std::abs(sum - bound) < sum_margin + 0.1,
                "n=" + std::to_string(n) + " (odd): sum meets the balanced bound");
    }
  }
}

}  // namespace

void register_exp07(Registry& r) {
  ScenarioSpec s;
  s.id = "exp07_gmw_half_unbalanced";
  s.title = "E07: Lemma 17 — the Pi-1/2-GMW utility staircase";
  s.claim =
      "Claim: u = g11 below n/2 corruptions, g10 at or above; not\n"
      "utility-balanced for even n, exactly balanced for odd n.";
  s.protocol = "Pi-1/2-GMW";
  s.attack = "t-coalition lock-abort";
  s.tags = {"smoke", "multi-party", "gmw", "balance"};
  s.gamma = rpd::PayoffVector::standard();
  s.default_runs = 1200;
  s.base_seed = 700;
  // x = t/n: the staircase jumps from g11 to g10 at x = 1/2.
  s.bound = [](const rpd::PayoffVector& g, double x) { return 2.0 * x >= 1.0 ? g.g10 : g.g11; };
  s.bound_note = "staircase g11 -> g10 at t = n/2";
  s.attacks = {{"coalition n=6 t=3", half_gmw_coalition(6, 3)},
               {"coalition n=6 t=2", half_gmw_coalition(6, 2)}};
  s.run = run;
  r.add(std::move(s));
}

}  // namespace fairsfe::experiments
