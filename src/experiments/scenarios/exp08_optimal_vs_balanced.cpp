// E08 — Appendix B.1: optimal fairness and utility-balanced fairness are
// incomparable.
//
//   * Π′ (Π½GMW for odd n, ΠOptnSFE for even n) is utility-balanced for
//     every n but NOT optimally fair: against odd n a ⌈n/2⌉-coalition earns
//     γ10 > ((n−1)γ10+γ11)/n.
//   * The Lemma 18 protocol is optimally fair (its best attacker still gets
//     only ((n−1)γ10+γ11)/n) but NOT utility-balanced: the single-corruption
//     deviator earns γ10/n + (n−1)/n·(γ10+γ11)/2, pushing the per-t sum past
//     the bound.
#include <cmath>
#include <cstdio>
#include <string>

#include "experiments/registry.h"
#include "experiments/report.h"
#include "experiments/scenarios/scenarios.h"
#include "experiments/setups.h"
#include "rpd/balance.h"

namespace fairsfe::experiments {
namespace {

void run(ScenarioContext& ctx) {
  bench::Reporter& rep = ctx.rep;
  const rpd::PayoffVector gamma = ctx.spec.gamma;
  rep.gamma(gamma);

  // ---------------- Π′ with odd n: balanced but not optimal ----------------
  {
    const std::size_t n = 5;
    std::printf("--- Pi' (mixed protocol), n = %zu (odd => Pi-1/2-GMW branch) ---\n", n);
    rep.row_header();
    const auto coalition = rpd::estimate_utility(mixed_best_attack(n, (n + 1) / 2), gamma, rep.opts(801));
    char buf[80];
    std::snprintf(buf, sizeof(buf), "g10 = %.3f > optimum %.3f", gamma.g10,
                  gamma.nparty_opt_bound(n));
    rep.row("ceil(n/2)-coalition", coalition, buf);
    rep.check(coalition.utility > gamma.nparty_opt_bound(n) + 0.05,
              "Pi' (odd n) is beaten past the optimal-fairness bound");

    const auto profile = rpd::balance_profile(
        n,
        [n](std::size_t t) { return nparty_attack_family(NPartyProtocol::kMixed, n, t); },
        gamma, rep.opts(810));
    std::printf("per-t sum = %.4f, balanced bound = %.4f\n\n", profile.sum(),
                gamma.balance_bound(n));
    rep.check(rpd::is_utility_balanced(profile, gamma),
              "Pi' (odd n) remains utility-balanced");
  }

  // ------------- Lemma 18 protocol: optimal but not balanced -------------
  {
    const std::size_t n = 4;
    std::printf("--- Lemma 18 protocol, n = %zu ---\n", n);
    rep.row_header();
    const auto big = rpd::estimate_utility(lemma18_lock_abort(n, n - 1), gamma, rep.opts(820));
    char buf[80];
    std::snprintf(buf, sizeof(buf), "optimum ((n-1)g10+g11)/n = %.3f",
                  gamma.nparty_opt_bound(n));
    rep.row("(n-1)-coalition", big, buf);
    rep.check(std::abs(big.utility - gamma.nparty_opt_bound(n)) < big.margin() + 0.03,
              "Lemma 18 protocol stays at the optimal-fairness bound");

    const auto dev = rpd::estimate_utility(lemma18_deviator(n), gamma, rep.opts(830));
    const double expect =
        gamma.g10 / n + (static_cast<double>(n - 1) / n) * (gamma.g10 + gamma.g11) / 2;
    std::snprintf(buf, sizeof(buf), "g10/n + (n-1)/n*(g10+g11)/2 = %.3f", expect);
    rep.row("1-party deviator", dev, buf);
    rep.check(std::abs(dev.utility - expect) < dev.margin() + 0.03,
              "deviator utility matches the Lemma 18 formula");

    const auto profile = rpd::balance_profile(
        n,
        [n](std::size_t t) { return nparty_attack_family(NPartyProtocol::kLemma18, n, t); },
        gamma, rep.opts(840));
    std::printf("per-t sum = %.4f, balanced bound = %.4f\n\n", profile.sum(),
                gamma.balance_bound(n));
    rep.check(!rpd::is_utility_balanced(profile, gamma),
              "Lemma 18 protocol is NOT utility-balanced");
  }
}

}  // namespace

void register_exp08(Registry& r) {
  ScenarioSpec s;
  s.id = "exp08_optimal_vs_balanced";
  s.title = "E08: Appendix B.1 — optimal vs utility-balanced separation";
  s.claim =
      "Claim: Pi' is balanced but not optimal; the Lemma 18 protocol is\n"
      "optimal but not balanced.";
  s.protocol = "Pi' (mixed) / Lemma 18 protocol";
  s.attack = "coalitions, 1-party deviator";
  s.tags = {"smoke", "multi-party", "balance", "separation"};
  s.gamma = rpd::PayoffVector::standard();
  s.default_runs = 2000;
  s.base_seed = 801;
  s.bound = [](const rpd::PayoffVector& g, double) { return g.nparty_opt_bound(5); };
  s.bound_note = "((n-1)g10+g11)/n at n=5";
  s.attacks = {{"ceil(n/2)-coalition vs Pi'", mixed_best_attack(5, 3)},
               {"1-party deviator vs Lemma 18", lemma18_deviator(4)}};
  s.run = run;
  r.add(std::move(s));
}

}  // namespace fairsfe::experiments
