// E09 — Theorem 6 / Lemma 22: utility-balanced fairness as optimal fairness
// with corruption costs.
//
// With cost c(t) = φ(t) − s(t) (φ = the protocol's per-t best utility, s =
// the dummy protocol's ideal benchmark, which is γ11 for Γ+fair), a φ-fair
// protocol becomes *ideally* γ^C-fair: its net utility never exceeds the
// ideal benchmark. Theorem 6(2): the cost function of a utility-balanced
// protocol cannot be strictly dominated by any other achievable one.
#include <cmath>
#include <cstdio>
#include <string>

#include "experiments/registry.h"
#include "experiments/report.h"
#include "experiments/scenarios/scenarios.h"
#include "experiments/setups.h"
#include "rpd/cost.h"

namespace fairsfe::experiments {
namespace {

void run(ScenarioContext& ctx) {
  bench::Reporter& rep = ctx.rep;
  const rpd::PayoffVector gamma = ctx.spec.gamma;
  const std::size_t n = 4;
  rep.gamma(gamma);

  // Measure s(t): the dummy protocol's best per-t utility.
  const auto dummy_profile = rpd::balance_profile(
      n,
      [n](std::size_t t) { return nparty_attack_family(NPartyProtocol::kDummy, n, t); },
      gamma, rep.opts(900));
  // Measure φ(t) for the balanced protocol and for Π½GMW.
  const auto opt_profile = rpd::balance_profile(
      n,
      [n](std::size_t t) { return nparty_attack_family(NPartyProtocol::kOptN, n, t); },
      gamma, rep.opts(910));
  const auto gmw_profile = rpd::balance_profile(
      n,
      [n](std::size_t t) { return nparty_attack_family(NPartyProtocol::kHalfGmw, n, t); },
      gamma, rep.opts(920));

  const auto c_opt = rpd::cost_from_profile(opt_profile, gamma);
  const auto c_gmw = rpd::cost_from_profile(gmw_profile, gamma);

  std::printf("%-4s %12s %12s %12s %12s %12s\n", "t", "s(t) dummy", "phi_opt(t)",
              "c_opt(t)", "phi_gmw(t)", "c_gmw(t)");
  for (std::size_t t = 1; t < n; ++t) {
    std::printf("%-4zu %12.4f %12.4f %12.4f %12.4f %12.4f\n", t, dummy_profile.phi(t),
                opt_profile.phi(t), c_opt.of(t), gmw_profile.phi(t), c_gmw.of(t));
    // Measured s(t) should equal the analytic ideal benchmark.
    rep.check(std::abs(dummy_profile.phi(t) - rpd::ideal_payoff(gamma, t, n)) < 0.03,
              "s(" + std::to_string(t) + ") matches max(g00, g11)");
    // Ideal γ^C-fairness: net utility = φ(t) − c(t) = s(t).
    rep.check(std::abs(rpd::net_utility(opt_profile.phi(t), c_opt, t) -
              dummy_profile.phi(t)) < 0.05,
              "net utility at t=" + std::to_string(t) + " meets the ideal benchmark");
  }

  std::printf("\ncost sums: opt = %.4f, gmw-half = %.4f (balanced sum is minimal)\n",
              [&] { double s = 0; for (std::size_t t = 1; t < n; ++t) s += c_opt.of(t); return s; }(),
              [&] { double s = 0; for (std::size_t t = 1; t < n; ++t) s += c_gmw.of(t); return s; }());

  // Theorem 6(2): neither cost function strictly dominates the other, and the
  // balanced protocol's cost sum is no larger.
  rep.check(!rpd::strictly_dominates(c_gmw, c_opt, 0.05),
            "Pi-1/2-GMW's cost does not strictly dominate the balanced cost");
  double sum_opt = 0, sum_gmw = 0;
  for (std::size_t t = 1; t < n; ++t) {
    sum_opt += c_opt.of(t);
    sum_gmw += c_gmw.of(t);
  }
  rep.check(sum_opt <= sum_gmw + 0.15,
            "the balanced protocol minimizes the total corruption cost");
}

}  // namespace

void register_exp09(Registry& r) {
  ScenarioSpec s;
  s.id = "exp09_corruption_cost";
  s.title = "E09: Theorem 6 — corruption costs and ideal gamma^C-fairness";
  s.claim =
      "Claim: with c(t) = phi(t) - s(t), the balanced protocol is ideally\n"
      "gamma^C-fair, and its cost function is undominated.";
  s.protocol = "OptNSFE / Pi-1/2-GMW / dummy (cost benchmark)";
  s.attack = "per-t best of the n-party attack family";
  s.tags = {"smoke", "multi-party", "cost"};
  s.gamma = rpd::PayoffVector::standard();
  s.default_runs = 1500;
  s.base_seed = 900;
  s.bound = [](const rpd::PayoffVector& g, double) { return g.g11; };
  s.bound_note = "ideal benchmark s(t) = max(g00, g11)";
  s.attacks = nparty_attack_family(NPartyProtocol::kOptN, 4, 2);
  s.run = run;
  r.add(std::move(s));
}

}  // namespace fairsfe::experiments
