// E10 — Theorems 23/24: the Gordon–Katz protocols bound the attacker's
// payoff by 1/p under ~γ = (0,0,1,0), at the cost of O(p·|Y|) (poly-domain)
// or O(p²·|Z|) (poly-range) reconstruction rounds. The harness sweeps p,
// fields the full attack family, and prints utility vs 1/p together with the
// round counts — who wins (the protocol), by what factor (1/p), and how the
// cost scales.
#include <algorithm>
#include <cstdio>
#include <string>

#include "experiments/registry.h"
#include "experiments/report.h"
#include "experiments/scenarios/scenarios.h"
#include "experiments/setups.h"

namespace fairsfe::experiments {
namespace {

void run(ScenarioContext& ctx) {
  bench::Reporter& rep = ctx.rep;
  const std::size_t runs = rep.runs();
  const rpd::PayoffVector gamma = ctx.spec.gamma;
  rep.gamma(gamma);

  std::uint64_t seed = ctx.spec.base_seed;
  std::printf("--- poly-size DOMAIN protocol (AND, |Y| = 2), Theorem 23 ---\n");
  for (const std::size_t p : {2u, 3u, 4u, 6u, 8u}) {
    const fair::GkParams params = fair::make_gk_and_params(p);
    std::printf("p = %zu  (round cap %zu, alpha = %.4f)\n", p, params.cap(),
                params.alpha());
    rep.row_header();
    double best = 0.0;
    for (const auto& attack : gk_attack_family(params)) {
      const auto est = rpd::estimate_utility(attack.factory, gamma, rep.opts(seed++));
      char buf[32];
      std::snprintf(buf, sizeof(buf), "<= 1/p = %.4f", 1.0 / static_cast<double>(p));
      rep.row(attack.name, est, buf);
      best = std::max(best, est.utility);
      rep.check(est.utility <= 1.0 / static_cast<double>(p) + est.margin() + 0.02,
                "p=" + std::to_string(p) + " " + attack.name + " <= 1/p");
    }
    std::printf("best attack: %.4f vs bound %.4f\n\n", best, 1.0 / static_cast<double>(p));
  }

  std::printf("--- poly-size RANGE protocol (AND output, |Z| = 2), Theorem 24 ---\n");
  for (const std::size_t p : {2u, 3u, 4u}) {
    fair::GkParams params = fair::make_gk_and_params(p);
    params.variant = fair::GkParams::Variant::kPolyRange;
    params.sample_range = [](Rng& r) { return Bytes{static_cast<std::uint8_t>(r.bit())}; };
    std::printf("p = %zu  (round cap %zu, alpha = %.5f)\n", p, params.cap(),
                params.alpha());
    rep.row_header();
    for (const auto& attack : gk_attack_family(params)) {
      const auto est = rpd::estimate_utility(attack.factory, gamma, rep.opts(seed++).with_runs(runs / 2));
      char buf[32];
      std::snprintf(buf, sizeof(buf), "<= 1/p = %.4f", 1.0 / static_cast<double>(p));
      rep.row(attack.name, est, buf);
      rep.check(est.utility <= 1.0 / static_cast<double>(p) + est.margin() + 0.02,
                "range p=" + std::to_string(p) + " " + attack.name + " <= 1/p");
    }
    std::printf("\n");
  }

  std::printf("Contrast: Theorem 3's general-function optimum is (g10+g11)/2 = 0.5\n"
              "under this gamma — the GK protocols beat it for p > 2 precisely\n"
              "because their functions have polynomial-size domains/ranges.\n");
}

}  // namespace

void register_exp10(Registry& r) {
  ScenarioSpec s;
  s.id = "exp10_gk_partial_fairness";
  s.title = "E10: Theorems 23/24 — Gordon-Katz 1/p-security";
  s.claim =
      "Claim: u_A <= 1/p for every attack; rounds grow as O(p*|Y|) /\n"
      "O(p^2*|Z|).";
  s.protocol = "Gordon-Katz poly-domain / poly-range";
  s.attack = "GK attack family";
  s.tags = {"smoke", "two-party", "gk", "partial-fairness"};
  s.gamma = rpd::PayoffVector::partial_fairness();
  s.default_runs = 2500;
  s.base_seed = 1000;
  // x = 1/p: the Theorem 23/24 cap on the attacker's payoff.
  s.bound = [](const rpd::PayoffVector&, double x) { return x; };
  s.bound_note = "u_A <= 1/p (pass x = 1/p)";
  s.attacks = gk_attack_family(fair::make_gk_and_params(4));
  s.run = run;
  r.add(std::move(s));
}

}  // namespace fairsfe::experiments
