// E11 — Lemmas 26/27: Π̃ separates 1/p-security from utility-based fairness.
//
// The harness measures three things about the leaky AND protocol:
//   1. the privacy break — a corrupted p2 sending the 1-bit preamble learns
//      the honest input x1 with probability exactly 1/4, and every leak is
//      the *true* input (a total break, impossible to simulate against
//      F^{f,$}_sfe, whose view is independent of x1 unless the output
//      reveals it);
//   2. the GK accounting that nevertheless certifies Π̃ as 1/2-secure: the
//      unfair-outcome frequency of the embedded 1/4-secure stage stays
//      below 1/2;
//   3. the Lemma 26 distinguishing gap: the real leak matches x1 with
//      probability 1, while any ideal-world simulator (which never sees x1)
//      matches with probability <= 1/2 — a constant advantage >= 1/8 for
//      the environment pair (Z1, Z2).
#include <cmath>
#include <cstdio>
#include <string>

#include "adversary/strategies.h"
#include "experiments/registry.h"
#include "experiments/report.h"
#include "experiments/scenarios/scenarios.h"
#include "experiments/setups.h"
#include "fair/leaky_and.h"

namespace fairsfe::experiments {
namespace {

void run(ScenarioContext& ctx) {
  bench::Reporter& rep = ctx.rep;
  const std::size_t runs = rep.runs();

  // 1. The privacy break.
  std::size_t leaks = 0;
  std::size_t leaks_correct = 0;
  std::size_t output_ok = 0;
  for (std::size_t i = 0; i < runs; ++i) {
    Rng rng(42000 + i);  // LINT-ALLOW(rng-fork-discipline): per-run seed at the scenario boundary; table output is golden
    const Bytes x0{static_cast<std::uint8_t>(rng.bit())};
    const Bytes x1{static_cast<std::uint8_t>(rng.bit())};
    auto adv = std::make_unique<adversary::LeakyAndProbe>();
    auto* probe = adv.get();
    auto parties = fair::make_leaky_and_parties(x0, x1, rng);
    sim::EngineConfig cfg;
    cfg.max_rounds = 200;
    sim::Engine e(std::move(parties), fair::make_leaky_and_functionality(nullptr),
                  std::move(adv), rng.fork("engine"), cfg);
    const auto r = e.run();
    if (probe->leaked()) {
      ++leaks;
      if (*probe->leaked() == x0) ++leaks_correct;
    }
    if (r.outputs[0] && (*r.outputs[0])[0] == (x0[0] & x1[0])) ++output_ok;
  }
  const double leak_rate = static_cast<double>(leaks) / static_cast<double>(runs);
  const double correct_rate =
      leaks == 0 ? 0.0 : static_cast<double>(leaks_correct) / static_cast<double>(leaks);
  std::printf("runs = %zu\n", runs);
  std::printf("  leak rate (deviating p2 receives x1):        %.4f   paper: 1/4\n",
              leak_rate);
  std::printf("  leaked value equals the true x1:             %.4f   paper: 1\n",
              correct_rate);
  std::printf("  honest p1 still computes x1 AND x2 correctly: %.4f\n\n",
              static_cast<double>(output_ok) / static_cast<double>(runs));
  rep.check(std::abs(leak_rate - 0.25) < 0.03, "leak probability is 1/4 (Lemma 26)");
  rep.check(correct_rate == 1.0, "every leak is the true honest input");

  // 2. The GK accounting that still certifies Π̃ (Lemma 27): the embedded
  //    p = 4 stage keeps the unfair-abort payoff under 1/2 for all attacks.
  const rpd::PayoffVector pf = rpd::PayoffVector::partial_fairness();
  const fair::GkParams params = fair::make_gk_and_params(4);
  std::printf("embedded 1/4-secure stage under gamma = (0,0,1,0):\n");
  rep.row_header();
  std::uint64_t seed = 43000;
  for (const auto& attack : gk_attack_family(params)) {
    const auto est = rpd::estimate_utility(attack.factory, pf, rep.opts(seed++).with_runs(runs / 2));
    rep.row(attack.name, est, "<= 1/2 (Lemma 27)");
    rep.check(est.utility <= 0.5 + est.margin() + 0.02,
              "1/2-security accounting: " + attack.name);
  }

  // 3. The distinguishing gap of Lemma 26: real leak is x1 with prob 1; an
  //    ideal-world simulator's "leak" is independent of x1 (prob <= 1/2).
  const double real_match = leak_rate * correct_rate;
  const double ideal_match_best = leak_rate * 0.5;
  std::printf("\nLemma 26 environments: Pr[leak AND matches x1]\n");
  std::printf("  real world:                %.4f\n", real_match);
  std::printf("  best F^{f,$} simulator:    %.4f (leak independent of x1)\n",
              ideal_match_best);
  std::printf("  distinguishing advantage:  %.4f  (constant >= 1/8)\n\n",
              real_match - ideal_match_best);
  rep.check(real_match - ideal_match_best > 0.09,
            "constant distinguishing gap vs any F^{f,$} simulator");

  std::printf("Conclusion: Pi-tilde passes 1/p-security + privacy as defined in\n"
              "[GK10] but fails the paper's utility-based notion — the notions are\n"
              "separated, and the utility-based one is strictly stronger (Lemma 25).\n");
}

}  // namespace

void register_exp11(Registry& r) {
  ScenarioSpec s;
  s.id = "exp11_leaky_and_separation";
  s.title = "E11: Lemmas 26/27 — the leaky-AND separation";
  s.claim =
      "Claim: Pi-tilde is 1/2-secure and 'private' per [GK10], yet leaks\n"
      "x1 w.p. 1/4 and cannot realize F^{f,$}_sfe.";
  s.protocol = "Pi-tilde (leaky AND)";
  s.attack = "LeakyAndProbe + GK attack family";
  s.tags = {"smoke", "two-party", "gk", "separation"};
  s.gamma = rpd::PayoffVector::partial_fairness();
  s.default_runs = 4000;
  s.base_seed = 42000;
  s.bound = [](const rpd::PayoffVector&, double) { return 0.5; };
  s.bound_note = "1/2-security accounting cap";
  s.attacks = gk_attack_family(fair::make_gk_and_params(4));
  s.run = run;
  r.add(std::move(s));
}

}  // namespace fairsfe::experiments
