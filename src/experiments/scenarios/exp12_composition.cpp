// E12 — RPD composition (paper §3, citing [GKMTZ13, Theorem 5]): replacing
// the ideal unfair-SFE hybrid by a protocol that securely realizes it (the
// GMW substrate) leaves the attacker's utility unchanged.
//
// Setup: the "plain unfair SFE" protocol for a function f, once in the
// F^{f,⊥}_sfe-hybrid model (one ideal call) and once compiled to GMW over
// the boolean circuit for f in the OT-hybrid model. The best attacker —
// grab-output-then-abort at the functionality gate, respectively rushing
// lock-abort at the GMW output round — earns γ10 in both worlds, and honest
// executions produce identical outputs.
#include <cmath>
#include <cstdio>
#include <string>

#include "adversary/base.h"
#include "adversary/lock_abort.h"
#include "circuit/builder.h"
#include "experiments/registry.h"
#include "experiments/report.h"
#include "experiments/scenarios/scenarios.h"
#include "experiments/setups.h"
#include "fair/opt2_compiled.h"
#include "mpc/gmw.h"
#include "mpc/ot.h"
#include "mpc/yao.h"

namespace fairsfe::experiments {
namespace {

// Hybrid-world best response: ask for the corrupted outputs, then abort.
class GrabAndAbortGate final : public adversary::AdversaryBase {
 public:
  explicit GrabAndAbortGate(std::set<sim::PartyId> corrupt)
      : AdversaryBase(std::move(corrupt)) {}

  std::vector<sim::Message> on_round(sim::AdvContext& ctx,
                                     const sim::AdvView& view) override {
    if (view.round == 0) return honest_step_all(ctx, view.delivered);
    return {};
  }

  bool abort_functionality(sim::AdvContext&, const std::vector<sim::Message>& outs) override {
    for (const sim::Message& m : outs) {
      const auto y = sim::decode_func_output(m.payload);
      if (y) mark_learned(*y);
    }
    return true;
  }
};

// "Plain unfair SFE" party in the hybrid model: forward input, adopt output.
class PlainSfeParty final : public sim::PartyBase<PlainSfeParty> {
 public:
  PlainSfeParty(sim::PartyId id, Bytes input) : PartyBase(id), input_(std::move(input)) {}

  std::vector<sim::Message> on_round(int, sim::MsgView in) override {
    if (!sent_) {
      sent_ = true;
      return {{id_, sim::kFunc, sim::encode_func_input(input_)}};
    }
    const sim::Message* fm = first_from(in, sim::kFunc);
    if (fm == nullptr) return {};
    const auto y = sim::decode_func_output(fm->payload);
    if (y) {
      finish(*y);
    } else {
      finish_bot();
    }
    return {};
  }

  void on_abort() override {
    if (!done()) finish_bot();
  }

 private:
  Bytes input_;
  bool sent_ = false;
};

rpd::SetupFactory hybrid_attack(const mpc::SfeSpec& spec) {
  return [spec](Rng& rng) {
    rpd::RunSetup s;
    const auto xs = random_inputs(spec.n, rng);
    for (std::size_t p = 0; p < spec.n; ++p) {
      s.parties.push_back(std::make_unique<PlainSfeParty>(static_cast<sim::PartyId>(p),
                                                          xs[p]));
    }
    s.functionality = std::make_unique<mpc::SfeFunc>(spec, mpc::SfeMode::kUnfairAbort);
    s.adversary = std::make_unique<GrabAndAbortGate>(std::set<sim::PartyId>{0});
    s.engine.max_rounds = 8;
    return s;
  };
}

rpd::SetupFactory compiled_attack(std::shared_ptr<const mpc::GmwConfig> cfg) {
  return [cfg](Rng& rng) {
    rpd::RunSetup s;
    std::vector<std::vector<bool>> inputs;
    Bytes all;
    for (std::size_t p = 0; p < cfg->circuit.num_parties(); ++p) {
      const Bytes x = rng.bytes((cfg->circuit.input_width(p) + 7) / 8);
      inputs.push_back(circuit::bytes_to_bits(x, cfg->circuit.input_width(p)));
      all = all + x;
    }
    const Bytes y = circuit::bits_to_bytes(cfg->circuit.eval(inputs));
    s.parties = mpc::make_gmw_parties(cfg, inputs, rng);
    s.functionality = mpc::make_gmw_functionality(*cfg);
    s.adversary =
        std::make_unique<adversary::LockAbortAdversary>(std::set<sim::PartyId>{0}, y);
    s.engine.max_rounds = 64;
    return s;
  };
}

rpd::SetupFactory yao_attack(std::shared_ptr<const circuit::Circuit> circuit) {
  return [circuit](Rng& rng) {
    rpd::RunSetup s;
    std::vector<std::vector<bool>> inputs;
    for (std::size_t p = 0; p < 2; ++p) {
      const Bytes x = rng.bytes((circuit->input_width(p) + 7) / 8);
      inputs.push_back(circuit::bytes_to_bits(x, circuit->input_width(p)));
    }
    const Bytes y = circuit::bits_to_bytes(circuit->eval(inputs));
    s.parties = mpc::make_yao_parties(circuit, inputs, rng);
    s.functionality = mpc::make_ot_functionality();
    // The evaluator learns the output first; corrupt it and lock-abort.
    s.adversary =
        std::make_unique<adversary::LockAbortAdversary>(std::set<sim::PartyId>{1}, y);
    s.engine.max_rounds = 16;
    return s;
  };
}

void run(ScenarioContext& ctx) {
  bench::Reporter& rep = ctx.rep;
  const rpd::PayoffVector gamma = ctx.spec.gamma;
  rep.gamma(gamma);

  struct Case {
    std::string name;
    mpc::SfeSpec spec;
    circuit::Circuit circuit;
  };
  const std::vector<Case> cases = {
      {"concat-16bit (swap)", mpc::make_circuit_spec(circuit::make_swap_circuit(8)),
       circuit::make_swap_circuit(8)},
      {"millionaires-8bit", mpc::make_circuit_spec(circuit::make_millionaires_circuit(8)),
       circuit::make_millionaires_circuit(8)},
      {"and-1bit", mpc::make_circuit_spec(circuit::make_and_circuit()),
       circuit::make_and_circuit()},
  };

  std::uint64_t seed = ctx.spec.base_seed;
  rep.row_header();
  for (const auto& c : cases) {
    const auto hybrid = rpd::estimate_utility(hybrid_attack(c.spec), gamma, rep.opts(seed++));
    auto cfg = std::make_shared<const mpc::GmwConfig>(mpc::GmwConfig::public_output(c.circuit));
    const auto compiled = rpd::estimate_utility(compiled_attack(cfg), gamma, rep.opts(seed++));
    auto circ = std::make_shared<const circuit::Circuit>(c.circuit);
    const auto yao = rpd::estimate_utility(yao_attack(circ), gamma, rep.opts(seed++));
    rep.row(c.name + " [hybrid]", hybrid, "g10 (grab & abort)");
    rep.row(c.name + " [GMW]", compiled, "g10 (rushing lock-abort)");
    rep.row(c.name + " [Yao]", yao, "g10 (evaluator lock-abort)");
    rep.check(std::abs(hybrid.utility - compiled.utility) <
              hybrid.margin() + compiled.margin() + 0.02,
              c.name + ": hybrid and GMW utilities coincide");
    rep.check(std::abs(hybrid.utility - yao.utility) <
              hybrid.margin() + yao.margin() + 0.02,
              c.name + ": hybrid and Yao utilities coincide");
  }

  // The capstone: the *fair* protocol itself, hybrid vs fully compiled
  // (phase 1 = Yao garbled circuit on the f' extension, phase 2 unchanged).
  std::printf("\n--- full stack: Opt2SFE hybrid vs Opt2SFE-over-Yao ---\n\n");
  rep.row_header();
  auto base = std::make_shared<const circuit::Circuit>(circuit::make_concat_circuit(2, 8));
  auto plan = fair::Opt2CompiledPlan::build(base);
  auto compiled_opt2 = [base, plan](sim::PartyId corrupt) {
    return [base, plan, corrupt](Rng& rng) {
      rpd::RunSetup s;
      const auto a = circuit::u64_to_bits(rng.below(256), 8);
      const auto b = circuit::u64_to_bits(rng.below(256), 8);
      const Bytes y = circuit::bits_to_bytes(base->eval({a, b}));
      s.parties = fair::make_opt2_compiled_parties(plan, {a, b}, rng);
      s.functionality = mpc::make_ot_functionality();
      s.adversary = std::make_unique<adversary::LockAbortAdversary>(
          std::set<sim::PartyId>{corrupt}, y);
      s.engine.max_rounds = 24;
      return s;
    };
  };
  for (sim::PartyId c : {0, 1}) {
    const auto hybrid = rpd::estimate_utility(opt2_lock_abort(c), gamma, rep.opts(seed++));
    const auto comp = rpd::estimate_utility(compiled_opt2(c), gamma, rep.opts(seed++));
    const std::string who = "corrupt p" + std::to_string(c + 1);
    rep.row("Opt2SFE [hybrid] " + who, hybrid, "(g10+g11)/2");
    rep.row("Opt2SFE [Yao-compiled] " + who, comp, "(g10+g11)/2");
    rep.check(std::abs(hybrid.utility - comp.utility) <
              hybrid.margin() + comp.margin() + 0.03,
              "Opt2SFE fairness survives compilation (" + who + ")");
  }

  std::printf("\nNote: the fair protocols in src/fair are stated in these hybrid\n"
              "models; by this composition property their measured fairness carries\n"
              "over verbatim when the hybrid is instantiated with the GMW or Yao\n"
              "substrate — demonstrated above for the complete Opt2SFE stack.\n");
}

}  // namespace

void register_exp12(Registry& r) {
  ScenarioSpec s;
  s.id = "exp12_composition";
  s.title = "E12: RPD composition — ideal hybrid vs GMW compilation";
  s.claim =
      "Claim: the attacker's utility against unfair SFE is the same whether\n"
      "the SFE is an ideal F^{f,perp} call or the compiled GMW protocol.";
  s.protocol = "plain unfair SFE (hybrid / GMW / Yao), compiled Opt2SFE";
  s.attack = "grab-and-abort, rushing lock-abort";
  s.tags = {"smoke", "two-party", "composition", "mpc", "gmw"};
  s.gamma = rpd::PayoffVector::standard();
  s.default_runs = 1500;
  s.base_seed = 1200;
  s.bound = [](const rpd::PayoffVector& g, double) { return g.g10; };
  s.bound_note = "g10 in both worlds";
  s.attacks = {{"hybrid grab-and-abort (AND)",
                hybrid_attack(mpc::make_circuit_spec(circuit::make_and_circuit()))}};
  s.run = run;
  r.add(std::move(s));
}

}  // namespace fairsfe::experiments
