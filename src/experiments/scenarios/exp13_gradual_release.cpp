// E13 (extension) — gradual release under the utility lens.
//
// The paper's introduction argues that resource-style fairness notions
// (gradual release [4, 2, 11], resource fairness [15]) and the utility-based
// notion measure different things. This ablation quantifies it: the
// bit-by-bit exchange's fairness is a knife-edge function of the
// brute-force budget gap between the adversary and the honest party —
//     u = γ10  whenever budget(adv) ≥ budget(honest) − 1  (the one-bit lead
//              always decides),
//     u = γ11  once the honest party can out-search the gap —
// whereas ΠOpt2SFE sits at the budget-independent optimum (γ10+γ11)/2.
#include <cmath>
#include <cstdio>
#include <string>

#include "adversary/lock_abort.h"
#include "experiments/registry.h"
#include "experiments/report.h"
#include "experiments/scenarios/scenarios.h"
#include "experiments/setups.h"
#include "fair/gradual.h"

namespace fairsfe::experiments {
namespace {

rpd::SetupFactory gradual_attack(std::size_t bits, std::size_t honest_budget,
                                 std::size_t adv_budget) {
  return [bits, honest_budget, adv_budget](Rng& rng) {
    rpd::RunSetup s;
    const Bytes x0 = rng.bytes(bits / 8), x1 = rng.bytes(bits / 8);
    fair::GradualConfig cfg;
    cfg.secret_bits = bits;
    cfg.budget_bits = {honest_budget, adv_budget};
    s.parties = fair::make_gradual_parties(cfg, x0, x1, rng);
    s.adversary = std::make_unique<adversary::LockAbortAdversary>(
        std::set<sim::PartyId>{1}, x0 + x1);
    s.engine.max_rounds = static_cast<int>(2 * bits + 16);
    return s;
  };
}

void run(ScenarioContext& ctx) {
  bench::Reporter& rep = ctx.rep;
  const rpd::PayoffVector gamma = ctx.spec.gamma;
  const std::size_t bits = 16;
  rep.gamma(gamma);

  std::printf("secret = %zu bits per party; lock-abort adversary corrupts p2.\n\n", bits);
  rep.row_header();
  std::uint64_t seed = ctx.spec.base_seed;

  struct Row {
    std::size_t honest, adv;
    double paper;
    const char* note;
  };
  // The aborting adversary is exactly one bit ahead, so the knife edge sits
  // at budget(honest) = budget(adv) + 1: one extra bit of search power on the
  // honest side already neutralizes the attack.
  const std::vector<Row> rows = {
      {0, 0, gamma.g10, "no budgets: 1-bit lead wins"},
      {6, 6, gamma.g10, "equal budgets: lead still wins"},
      {8, 7, gamma.g11, "honest ahead by 1: lead neutralized"},
      {8, 6, gamma.g11, "honest ahead by 2: attack futile"},
      {12, 4, gamma.g11, "honest far ahead"},
  };
  for (const Row& row : rows) {
    const auto est =
        rpd::estimate_utility(gradual_attack(bits, row.honest, row.adv), gamma,
                              rep.opts(seed++));
    char name[64];
    std::snprintf(name, sizeof(name), "budgets honest=%zu adv=%zu", row.honest, row.adv);
    char paper[64];
    std::snprintf(paper, sizeof(paper), "%.3f (%s)", row.paper, row.note);
    rep.row(name, est, paper);
    rep.check(std::abs(est.utility - row.paper) < est.margin() + 0.02, name);
  }

  const auto opt2 = rpd::estimate_utility(opt2_lock_abort(1), gamma, rep.opts(seed++));
  rep.row("Opt2SFE (any budgets)", opt2, "(g10+g11)/2 = 0.750");
  rep.check(std::abs(opt2.utility - gamma.two_party_opt_bound()) < opt2.margin() + 0.02,
            "Opt2SFE is budget-independent at the optimum");

  std::printf("\nReading: by the utility metric, gradual release is either fully unfair\n"
              "(g10) or fully fair (g11) depending on assumptions *outside* the\n"
              "protocol; the optimally fair protocol gives a guarantee that holds\n"
              "unconditionally — the paper's motivation for a protocol-intrinsic,\n"
              "comparative measure.\n");
}

}  // namespace

void register_exp13(Registry& r) {
  ScenarioSpec s;
  s.id = "exp13_gradual_release";
  s.title = "E13 (extension): gradual release vs the utility-based lens";
  s.claim =
      "Claim (paper Section 1): gradual-release fairness depends on the\n"
      "computational budget gap; the optimal protocol's does not.";
  s.protocol = "bit-by-bit gradual release vs Opt2SFE";
  s.attack = "lock-abort (corrupt p2) with brute-force budgets";
  s.tags = {"smoke", "two-party", "gradual", "extension"};
  s.gamma = rpd::PayoffVector::standard();
  s.default_runs = 1500;
  s.base_seed = 1300;
  s.bound = [](const rpd::PayoffVector& g, double) { return g.two_party_opt_bound(); };
  s.bound_note = "(g10+g11)/2 (the budget-independent optimum)";
  s.attacks = {{"budgets honest=0 adv=0", gradual_attack(16, 0, 0)},
               {"budgets honest=8 adv=6", gradual_attack(16, 8, 6)}};
  s.run = run;
  r.add(std::move(s));
}

}  // namespace fairsfe::experiments
