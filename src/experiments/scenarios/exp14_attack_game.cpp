// E14 (extension) — the RPD attack meta-game, played out.
//
// RPD frames protocol design as a zero-sum game: the designer D commits to a
// protocol, the attacker A best-responds. The paper notes (footnote 1 and
// Remark 2) that an optimally fair protocol is exactly a minimax solution of
// this game. The harness builds the payoff matrix — rows: candidate
// two-party protocols; columns: attack strategies — and verifies that
// ΠOpt2SFE is the minimax row, i.e. argmin over protocols of the best
// attacker's utility.
#include <algorithm>
#include <cmath>
#include <cstdio>
#include <string>

#include "adversary/lock_abort.h"
#include "experiments/registry.h"
#include "experiments/report.h"
#include "experiments/scenarios/scenarios.h"
#include "experiments/setups.h"
#include "fair/gradual.h"
#include "fair/opt2sfe.h"

namespace fairsfe::experiments {
namespace {

// The one-round strawman from exp04, reproduced via the library API: plain
// unfair SFE with simultaneous opening == the Pi1 contract protocol family;
// here we reuse Pi1/Pi2 and gradual release as the alternative designs.
struct ProtocolRow {
  std::string name;
  std::function<rpd::SetupFactory(sim::PartyId)> attack_for;
};

rpd::SetupFactory gradual_attack(sim::PartyId corrupt) {
  return [corrupt](Rng& rng) {
    rpd::RunSetup s;
    const Bytes x0 = rng.bytes(2), x1 = rng.bytes(2);
    fair::GradualConfig cfg;
    cfg.secret_bits = 16;
    cfg.budget_bits = {4, 4};
    s.parties = fair::make_gradual_parties(cfg, x0, x1, rng);
    s.adversary = std::make_unique<adversary::LockAbortAdversary>(
        std::set<sim::PartyId>{corrupt}, x0 + x1);
    s.engine.max_rounds = 64;
    return s;
  };
}

void run(ScenarioContext& ctx) {
  bench::Reporter& rep = ctx.rep;
  const rpd::PayoffVector gamma = ctx.spec.gamma;
  rep.gamma(gamma);

  const std::vector<ProtocolRow> designs = {
      {"Pi1 (ordered opening)",
       [](sim::PartyId c) { return contract_attack(fair::ContractVariant::kPi1, c); }},
      {"Pi2 (coin-tossed order)",
       [](sim::PartyId c) { return contract_attack(fair::ContractVariant::kPi2, c); }},
      {"gradual release (16 bits)", gradual_attack},
      {"Opt2SFE", [](sim::PartyId c) { return opt2_lock_abort(c); }},
  };

  std::printf("payoff matrix: max over {corrupt p1, corrupt p2} lock-abort attackers\n\n");
  std::printf("%-28s %14s %14s %12s\n", "design", "vs corrupt p1", "vs corrupt p2",
              "sup_A");
  std::uint64_t seed = ctx.spec.base_seed;
  double best_value = 1e9;
  std::string best_name;
  double opt2_value = 0;
  for (const auto& d : designs) {
    const auto a1 = rpd::estimate_utility(d.attack_for(0), gamma, rep.opts(seed++));
    const auto a2 = rpd::estimate_utility(d.attack_for(1), gamma, rep.opts(seed++));
    const double sup = std::max(a1.utility, a2.utility);
    std::printf("%-28s %14.4f %14.4f %12.4f\n", d.name.c_str(), a1.utility, a2.utility,
                sup);
    if (sup < best_value) {
      best_value = sup;
      best_name = d.name;
    }
    if (d.name == "Opt2SFE") opt2_value = sup;
  }
  std::printf("\nminimax design: %s (game value %.4f; theory %.4f)\n\n", best_name.c_str(),
              best_value, gamma.two_party_opt_bound());

  // Opt2SFE must sit at the game value. (Pi2 ties it on this function — the
  // coin-tossed contract exchange is itself optimally fair for swaps, so the
  // minimax row is attained by both; any nominal argmin winner among the
  // tied rows is Monte-Carlo noise.)
  rep.check(opt2_value <= best_value + 0.03,
            "Opt2SFE attains the minimax value of the attack game");
  rep.check(std::abs(opt2_value - gamma.two_party_opt_bound()) < 0.03,
            "the game value equals (g10+g11)/2 — Theorems 3+4 as a saddle point");
  std::printf("Interpretation: the designer cannot push the best attacker below\n"
              "(g10+g11)/2 (Theorem 4), and Opt2SFE attains it (Theorem 3): the pair\n"
              "(Opt2SFE, Agen) is an equilibrium of the RPD meta-game.\n");
}

}  // namespace

void register_exp14(Registry& r) {
  ScenarioSpec s;
  s.id = "exp14_attack_game";
  s.title = "E14 (extension): the RPD attack game, minimax check";
  s.claim =
      "Claim: Opt2SFE = argmin_Pi max_A u_A(Pi, A) over the two-party\n"
      "designs in this library (the optimal protocol is the game value).";
  s.protocol = "Pi1 / Pi2 / gradual release / Opt2SFE (the design rows)";
  s.attack = "lock-abort columns (corrupt p1, corrupt p2)";
  s.tags = {"smoke", "two-party", "game", "extension"};
  s.gamma = rpd::PayoffVector::standard();
  s.default_runs = 2000;
  s.base_seed = 1400;
  s.bound = [](const rpd::PayoffVector& g, double) { return g.two_party_opt_bound(); };
  s.bound_note = "game value (g10+g11)/2";
  s.attacks = {{"Opt2SFE vs corrupt p1", opt2_lock_abort(0)},
               {"Opt2SFE vs corrupt p2", opt2_lock_abort(1)}};
  s.run = run;
  r.add(std::move(s));
}

}  // namespace fairsfe::experiments
