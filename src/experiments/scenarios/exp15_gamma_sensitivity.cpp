// E15 (extension) — sensitivity of the fairness order to the payoff vector.
//
// The relative-fairness relation is defined per γ ∈ Γfair (Definition 1).
// This ablation sweeps the γ11/γ10 ratio and the γ00 level and shows that
// (i) the measured utilities track the closed forms linearly in γ, (ii) the
// ordering Π₁ ≺ Π₂ ≈ ΠOpt2SFE is invariant across all of Γ+fair, and (iii)
// utilities are invariant under the γ01-normalization shift the paper uses
// "wlog" — making the canonical γ01 = 0 choice harmless.
#include <cmath>
#include <cstdio>
#include <string>

#include "experiments/registry.h"
#include "experiments/report.h"
#include "experiments/scenarios/scenarios.h"
#include "experiments/setups.h"

namespace fairsfe::experiments {
namespace {

void run(ScenarioContext& ctx) {
  bench::Reporter& rep = ctx.rep;
  std::uint64_t seed = ctx.spec.base_seed;

  std::printf("--- sweep g11 with g10 = 1, g00 = g11/2 ---\n\n");
  std::printf("%-8s %16s %16s %16s %12s\n", "g11", "u(Pi1)", "u(Pi2)", "u(Opt2SFE)",
              "(g10+g11)/2");
  for (const double g11 : {0.0, 0.2, 0.4, 0.6, 0.8}) {
    const rpd::PayoffVector g = rpd::payoff::sensitivity(g11);
    const auto pi1 = rpd::estimate_utility(
        contract_attack(fair::ContractVariant::kPi1, 1), g, rep.opts(seed++));
    const auto pi2 = rpd::estimate_utility(
        contract_attack(fair::ContractVariant::kPi2, 1), g, rep.opts(seed++));
    const auto opt = rpd::estimate_utility(opt2_lock_abort(1), g, rep.opts(seed++));
    std::printf("%-8.2f %16.4f %16.4f %16.4f %12.4f\n", g11, pi1.utility, pi2.utility,
                opt.utility, g.two_party_opt_bound());
    rep.check(std::abs(opt.utility - g.two_party_opt_bound()) < opt.margin() + 0.02,
              "Opt2SFE tracks the closed form at g11 = " + std::to_string(g11));
    // The Pi1-Pi2 gap is (g10 - g11)/2, which narrows as g11 grows; require
    // the gap minus a noise allowance.
    rep.check(pi1.utility > pi2.utility + (1.0 - g11) / 2.0 - 0.05,
              "ordering Pi1 > Pi2 preserved at g11 = " + std::to_string(g11));
    rep.check(std::abs(pi2.utility - opt.utility) < pi2.margin() + opt.margin() + 0.03,
              "Pi2 matches the optimum at g11 = " + std::to_string(g11));
  }

  std::printf("\n--- g01-shift invariance (the paper's wlog normalization) ---\n\n");
  // Raw vector with g01 = 0.25 and its normalized form; utilities must shift
  // by exactly the mix of event frequencies, preserving order and gaps.
  const rpd::PayoffVector raw = rpd::payoff::shifted_standard();
  const rpd::PayoffVector norm = raw.normalized();
  rep.check(norm.in_gamma_fair(), "normalized vector lands in Gamma_fair");
  const auto u_raw = rpd::estimate_utility(opt2_lock_abort(0), raw, rep.opts(9100));
  const auto u_norm = rpd::estimate_utility(opt2_lock_abort(0), norm, rep.opts(9100));
  std::printf("raw gamma  %s : u = %.4f\nnormalized %s : u = %.4f (shift %.4f)\n",
              raw.to_string().c_str(), u_raw.utility, norm.to_string().c_str(),
              u_norm.utility, u_raw.utility - u_norm.utility);
  // Same seeds => same event draws; the difference must be exactly g01 = 0.25.
  rep.check(std::abs((u_raw.utility - u_norm.utility) - 0.25) < 1e-9,
            "utility shifts by exactly g01 under normalization");

  std::printf("\n--- multi-party: ordering of OptNSFE vs Pi-1/2-GMW flips with t ---\n\n");
  const std::size_t n = 4;
  const rpd::PayoffVector g = rpd::PayoffVector::standard();
  for (std::size_t t = 1; t < n; ++t) {
    const auto opt = rpd::estimate_utility(optn_lock_abort(n, t), g, rep.opts(seed++));
    const auto gmw = rpd::estimate_utility(half_gmw_coalition(n, t), g, rep.opts(seed++));
    std::printf("t=%zu: OptNSFE %.4f vs Pi-1/2-GMW %.4f -> %s is fairer here\n", t,
                opt.utility, gmw.utility, opt.utility < gmw.utility ? "OptNSFE" : "GMW");
  }
  std::printf("\nReading: per-t the two protocols are incomparable (GMW wins below\n"
              "n/2, loses at and above) — exactly why Definition 5 aggregates over t\n"
              "and why corruption costs (Theorem 6) are needed to rank them.\n");
}

}  // namespace

void register_exp15(Registry& r) {
  ScenarioSpec s;
  s.id = "exp15_gamma_sensitivity";
  s.title = "E15 (extension): payoff-vector sensitivity sweep";
  s.claim =
      "Claim: utilities are linear in gamma, the protocol ordering is\n"
      "invariant on Gamma+fair, and the g01-shift is harmless.";
  s.protocol = "Pi1 / Pi2 / Opt2SFE / OptNSFE / Pi-1/2-GMW";
  s.attack = "lock-abort under swept payoff vectors";
  s.tags = {"smoke", "two-party", "multi-party", "gamma", "extension"};
  s.gamma = rpd::PayoffVector::standard();
  s.default_runs = 1500;
  s.base_seed = 1500;
  s.bound = [](const rpd::PayoffVector& g, double) { return g.two_party_opt_bound(); };
  s.bound_note = "(g10+g11)/2 per swept gamma";
  s.attacks = {{"Opt2SFE lock-abort (corrupt p2)", opt2_lock_abort(1)}};
  s.run = run;
  r.add(std::move(s));
}

}  // namespace fairsfe::experiments
