// E16 (extension) — multi-party 1/p-security (Beimel–Lindell–Omri–Orlov,
// the paper's reference [3] for Section 5).
//
// The simplified multi-party GK protocol (fair/gk_multi.h) keeps every
// coalition's unfair-abort payoff under 1/p, independently of the coalition
// size t: the only unsimulatable event is withholding the round-i* summands,
// and rushing does not help guess i*. The harness sweeps n, t and p.
#include <cstdio>
#include <string>

#include "experiments/registry.h"
#include "experiments/report.h"
#include "experiments/scenarios/scenarios.h"
#include "experiments/setups.h"
#include "fair/gk_multi.h"

namespace fairsfe::experiments {
namespace {

void run(ScenarioContext& ctx) {
  bench::Reporter& rep = ctx.rep;
  const rpd::PayoffVector pf = ctx.spec.gamma;
  rep.gamma(pf);

  std::uint64_t seed = ctx.spec.base_seed;
  for (const std::size_t n : {3u, 4u, 5u}) {
    for (const std::size_t p : {2u, 4u}) {
      const fair::GkMultiParams params = fair::make_gk_multi_and_params(n, p);
      std::printf("--- n = %zu, p = %zu (cap %zu rounds, alpha %.4f) ---\n", n, p,
                  params.cap(), params.alpha());
      rep.row_header();
      for (std::size_t t = 1; t < n; ++t) {
        double best = 0.0;
        std::string best_name;
        rpd::UtilityEstimate best_est;
        for (const auto& attack : gk_multi_attack_family(n, t, p)) {
          const auto est = rpd::estimate_utility(attack.factory, pf, rep.opts(seed++));
          if (est.utility >= best) {
            best = est.utility;
            best_name = attack.name;
            best_est = est;
          }
          rep.check(est.utility <= 1.0 / static_cast<double>(p) + est.margin() + 0.02,
                    "n=" + std::to_string(n) + " t=" + std::to_string(t) + " p=" +
                    std::to_string(p) + " " + attack.name + " <= 1/p");
        }
        char buf[48];
        std::snprintf(buf, sizeof(buf), "<= 1/p = %.4f", 1.0 / static_cast<double>(p));
        rep.row("t=" + std::to_string(t) + " best: " + best_name, best_est, buf);
      }
      std::printf("\n");
    }
  }

  std::printf("Shape: unlike the all-or-nothing Pi-1/2-GMW staircase (E07), partial\n"
              "fairness degrades with p, not with t — the multi-party extension\n"
              "keeps the 1/p guarantee even against n-1 colluding parties.\n");
}

}  // namespace

void register_exp16(Registry& r) {
  ScenarioSpec s;
  s.id = "exp16_multiparty_partial_fairness";
  s.title = "E16 (extension): multi-party 1/p-security [Beimel et al.]";
  s.claim =
      "Claim: every t-coalition's payoff stays <= 1/p under (0,0,1,0),\n"
      "for all 1 <= t <= n-1, at O(p*|Y|) broadcast rounds.";
  s.protocol = "multi-party GK (fair/gk_multi.h)";
  s.attack = "GK multi-party coalition family";
  s.tags = {"smoke", "multi-party", "gk", "partial-fairness", "extension"};
  s.gamma = rpd::PayoffVector::partial_fairness();
  s.default_runs = 1500;
  s.base_seed = 1600;
  // x = 1/p, as in E10.
  s.bound = [](const rpd::PayoffVector&, double x) { return x; };
  s.bound_note = "u_A <= 1/p (pass x = 1/p)";
  s.attacks = gk_multi_attack_family(4, 2, 4);
  s.run = run;
  r.add(std::move(s));
}

}  // namespace fairsfe::experiments
