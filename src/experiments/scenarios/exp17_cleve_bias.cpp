// E17 (extension) — Cleve's impossibility, measured.
//
// The paper opens with Cleve [STOC'86]: no two-party coin-flipping protocol
// with guaranteed output can keep the bias negligible against a dishonest
// party; an r-round protocol is biasable by Ω(1/r). The harness runs the
// commit-and-open majority protocol for growing round counts under two
// rushing abort attacks and prints the bias series — large at r = 1 (the
// classic 1/4), decaying with r, never reaching zero. This is the
// quantitative backdrop against which the paper's utility-based relaxation
// of fairness is defined.
#include <cmath>
#include <cstdio>
#include <string>

#include "experiments/registry.h"
#include "experiments/report.h"
#include "experiments/scenarios/scenarios.h"
#include "experiments/setups.h"
#include "fair/coinflip.h"
#include "sim/engine.h"

namespace fairsfe::experiments {
namespace {

double target_rate(std::size_t rounds, bool eager, std::size_t runs, std::uint64_t seed0) {
  std::size_t hits = 0;
  for (std::size_t i = 0; i < runs; ++i) {
    Rng rng(seed0 + i);
    auto parties = fair::make_coinflip_parties(rounds, rng);
    sim::EngineConfig cfg;
    cfg.max_rounds = static_cast<int>(2 * rounds + 8);
    sim::Engine e(std::move(parties), nullptr,
                  std::make_unique<fair::CoinBiasAdversary>(0, true, eager),
                  rng.fork("engine"), cfg);
    const auto r = e.run();
    if (r.outputs[1] && (*r.outputs[1])[0] == 1) ++hits;
  }
  return static_cast<double>(hits) / static_cast<double>(runs);
}

// Estimator-compatible form of the biasing attack, so the registry's generic
// consumers (tests, fairbench smoke passes) can drive this scenario too.
rpd::SetupFactory coinflip_bias_attack(std::size_t rounds, bool eager) {
  return [rounds, eager](Rng& rng) {
    rpd::RunSetup s;
    s.parties = fair::make_coinflip_parties(rounds, rng);
    s.adversary = std::make_unique<fair::CoinBiasAdversary>(0, true, eager);
    s.engine.max_rounds = static_cast<int>(2 * rounds + 8);
    return s;
  };
}

void run(ScenarioContext& ctx) {
  bench::Reporter& rep = ctx.rep;
  const std::size_t runs = rep.runs();

  std::printf("runs/point = %zu, adversary corrupts p1, target = 1\n\n", runs);
  std::printf("%-8s %14s %14s %18s\n", "flips r", "eager bias", "tally bias",
              "1/(4*sqrt(r)) ref");
  std::uint64_t seed = ctx.spec.base_seed;
  double prev_tally = 1.0;
  double bias1 = 0.0;
  double bias_last = 0.0;
  for (const std::size_t r : {1u, 3u, 5u, 9u, 17u, 33u}) {
    const double eager = target_rate(r, true, runs, seed) - 0.5;
    seed += runs;
    const double tally = target_rate(r, false, runs, seed) - 0.5;
    seed += runs;
    std::printf("%-8zu %14.4f %14.4f %18.4f\n", r, eager, tally,
                0.25 / std::sqrt(static_cast<double>(r)));
    if (r == 1) bias1 = tally;
    bias_last = tally;
    rep.check(tally <= prev_tally + 0.02,
              "bias non-increasing at r = " + std::to_string(r));
    prev_tally = tally;
  }

  std::printf("\n");
  rep.check(std::abs(bias1 - 0.25) < 0.03, "single-flip bias is the classic 1/4");
  rep.check(bias_last > 0.01,
            "bias never vanishes (Cleve's impossibility, Omega(1/r))");

  std::printf("\nContext: this is the impossibility that motivates the whole paper —\n"
              "since no protocol can eliminate the attacker's advantage, the right\n"
              "question is the comparative one: WHICH protocol minimizes it. The\n"
              "utility-based answer for general SFE is (g10+g11)/2 (E02/E03).\n");
}

}  // namespace

void register_exp17(Registry& r) {
  ScenarioSpec s;
  s.id = "exp17_cleve_bias";
  s.title = "E17 (extension): Cleve's coin-flipping bias [10]";
  s.claim =
      "Claim: an aborting rushing party biases the r-flip majority\n"
      "protocol by 1/4 at r = 1, with decay ~1/sqrt(r) and no vanishing.";
  s.protocol = "commit-and-open majority coin flip";
  s.attack = "rushing abort (eager / tally)";
  s.tags = {"smoke", "two-party", "coinflip", "extension"};
  s.gamma = rpd::PayoffVector::standard();
  s.default_runs = 4000;
  s.base_seed = 1700;
  // x = r (flip count): Cleve's Omega(1/r) reference curve.
  s.bound = [](const rpd::PayoffVector&, double x) {
    return x > 0.0 ? 0.25 / std::sqrt(x) : 0.25;
  };
  s.bound_note = "bias reference 1/(4*sqrt(r))";
  s.attacks = {{"eager abort, r=5", coinflip_bias_attack(5, true)},
               {"tally abort, r=5", coinflip_bias_attack(5, false)}};
  s.run = run;
  r.add(std::move(s));
}

}  // namespace fairsfe::experiments
