// E18 — fairness under unreliable channels: how much adversarial utility
// does a faulty network donate to the attacker?
//
// The paper's Theorem 3 bound u_A(Opt2SFE, A) <= (g10 + g11)/2 assumes
// guaranteed delivery. Here the same lock-abort adversary attacks over a
// channel that drops each party-to-party message with probability p (the
// adversary taps the wire pre-fault, so its view never degrades), and the
// j-bit is strict: honest parties must output the *true* y, a default-input
// fallback no longer counts.
//
// Event algebra for the drop sweep (one corrupted party, î uniform):
//   * î = corrupted (prob 1/2): the adversary always sees the honest opening
//     on the wire, locks y, and aborts -> E10, independent of p.
//   * î = honest (prob 1/2): the corrupted opening must actually arrive.
//     Delivered (prob 1-p) -> both learn y -> E11. Dropped (prob p) -> the
//     honest party times out into its default evaluation and the adversary
//     never sees the closing opening -> E00.
// So u(p) = g10/2 + ((1-p) g11 + p g00)/2 = (g10+g11)/2 + p (g00 - g11)/2.
// That closed form lives in this scenario's `bound` callback (x = p), so the
// bench rows, the registry consumers, and the tests all share one formula.
//
// For gamma in Gamma+fair (g00 <= g11) drops can only *help* fairness — the
// bound is robust. The donation appears exactly for the "spiteful" vectors
// in Gamma_fair \ Gamma+fair (g00 > g11): adversarial utility rises
// monotonically above (g10+g11)/2 = 0.75 with slope p (g00-g11)/2.
// All sweep points share one seed (common random numbers): the drop draws
// nest across p, so the measured spite curve is monotone run-for-run, not
// just in expectation.
#include <cmath>
#include <cstdio>
#include <string>

#include "experiments/registry.h"
#include "experiments/report.h"
#include "experiments/scenarios/scenarios.h"
#include "experiments/setups.h"

namespace fairsfe::experiments {
namespace {

constexpr double kDropRates[] = {0.0, 0.05, 0.10, 0.15, 0.20, 0.25, 0.30};

rpd::UtilityEstimate point(const bench::Reporter& rep, const rpd::SetupFactory& factory,
                           const rpd::PayoffVector& gamma, std::uint64_t seed, double p) {
  rpd::EstimatorOptions o = rep.opts(seed);
  if (p > 0.0) o.fault = sim::fault::FaultPlan::uniform_drop(p);
  return rpd::estimate_utility(factory, gamma, o);
}

std::string pct(double p) {
  char buf[16];
  std::snprintf(buf, sizeof(buf), "p=%.2f", p);
  return buf;
}

void run(ScenarioContext& ctx) {
  bench::Reporter& rep = ctx.rep;

  std::size_t total_cap_hits = 0;
  const auto sweep = [&](const std::string& prefix, const rpd::PayoffVector& gamma,
                         std::uint64_t seed) {
    const double bound = gamma.two_party_opt_bound();
    std::printf("--- %s sweep: lock-abort(p1) on Opt2SFE, bound (g10+g11)/2 = %.3f ---\n",
                prefix.c_str(), bound);
    rep.gamma(gamma);
    rep.row_header();
    std::vector<rpd::UtilityEstimate> curve;
    for (const double p : kDropRates) {
      const auto est = point(rep, opt2_lock_abort_strict(0), gamma, seed, p);
      total_cap_hits += est.round_cap_hits;
      char paper[64];
      std::snprintf(paper, sizeof(paper), "u(p) = %.4f", ctx.spec.bound(gamma, p));
      rep.row(prefix + ":" + pct(p), est, paper);
      curve.push_back(est);
    }
    std::printf("  fault stats @ p=0.30: %s\n",
                curve.back().fault_stats.to_string().c_str());
    rep.check(std::abs(curve.front().utility - bound) <= curve.front().margin() + 0.02,
              prefix + ": p=0 reproduces the reliable-network optimum " +
                  std::to_string(bound));
    rep.check(curve.back().fault_stats.dropped > 0 &&
                  curve.back().fault_stats.timeouts_fired > 0,
              prefix + ": p=0.30 actually dropped messages and fired timeouts");
    return curve;
  };

  // Gamma+fair: g00 <= g11, so the drop term p(g00-g11)/2 <= 0 — an
  // unreliable network cannot breach the Theorem 3 bound.
  const rpd::PayoffVector standard = rpd::PayoffVector::standard();
  const auto std_curve = sweep("std(0.25,0,1,0.5)", standard, 1800);
  for (std::size_t i = 0; i < std_curve.size(); ++i) {
    if (std_curve[i].utility > standard.two_party_opt_bound() + std_curve[i].margin() + 0.02) {
      rep.check(false, "std: " + pct(kDropRates[i]) + " exceeds the Theorem 3 bound");
    }
  }
  rep.check(true, "std: every drop rate respects the Theorem 3 bound 0.75");
  std::printf("\n");

  // Gamma_fair \ Gamma+fair: a spiteful g00 > g11 (the adversary prefers
  // nobody-learns over everybody-learns). Drops now donate utility: the
  // measured curve must rise monotonically from 0.75. Common random numbers
  // (shared seed) make the monotonicity exact, not just statistical.
  const rpd::PayoffVector spite = rpd::payoff::spiteful();
  const auto spite_curve = sweep("spite(0.6,0,1,0.5)", spite, 1801);
  bool monotone = true;
  for (std::size_t i = 1; i < spite_curve.size(); ++i) {
    if (spite_curve[i].utility < spite_curve[i - 1].utility - 1e-12) monotone = false;
  }
  rep.check(monotone, "spite: utility rises monotonically in p (coupled runs)");
  // The coupled rise u(0.30) - u(0) estimates 0.30 (g00-g11)/2 = 0.015 with
  // only the binomial noise of the drop draws (the i-hat / input noise is
  // shared between the two points and cancels).
  const double rise = spite_curve.back().utility - spite_curve.front().utility;
  rep.check(rise > 0.008 && rise < 0.025,
            "spite: p=0.30 donates ~p(g00-g11)/2 = 0.015 utility above the optimum");
  std::printf("\n");

  // Contract protocols under the same drop sweep (standard gamma). Pi1's
  // best attack corrupts the *second* opener (E01's sup = g10 = 1). Under a
  // Gamma+fair vector, drops can only pull either protocol's utility down
  // toward g00 — a stalled honest party never sends the opening the
  // adversary is waiting to lock — never above the reliable-network sup.
  std::printf("--- contract protocols, standard gamma ---\n");
  rep.row_header();
  for (const double p : {0.0, 0.15, 0.30}) {
    const auto est = point(rep, contract_attack_strict(fair::ContractVariant::kPi1, 1),
                           standard, 1810, p);
    total_cap_hits += est.round_cap_hits;
    rep.row("pi1:" + pct(p), est, p == 0.0 ? "= 1.000 (g10)" : "<= 1.000");
    if (p == 0.0) {
      rep.check(std::abs(est.utility - standard.g10) <= est.margin() + 0.02,
                "pi1: p=0 reproduces the E01 sup g10 = 1 (corrupt the second opener)");
    } else {
      rep.check(est.utility <= standard.g10 + est.margin() + 0.02,
                "pi1: " + pct(p) + " never exceeds the reliable-network sup");
    }
  }
  for (const double p : {0.0, 0.15, 0.30}) {
    const auto est = point(rep, contract_attack_strict(fair::ContractVariant::kPi2, 0),
                           standard, 1811, p);
    total_cap_hits += est.round_cap_hits;
    rep.row("pi2:" + pct(p), est, p == 0.0 ? "= 0.750" : "<= 0.750");
    if (p == 0.0) {
      rep.check(std::abs(est.utility - 0.75) <= est.margin() + 0.02,
                "pi2: p=0 reproduces the 0.75 baseline");
    } else {
      rep.check(est.utility <= 0.75 + est.margin() + 0.02,
                "pi2: " + pct(p) + " never exceeds the reliable-network sup");
    }
  }
  std::printf("\n");

  // Crash schedules against Opt2SFE (standard gamma, no message faults).
  // A permanent crash of the honest party denies *both* sides the output
  // (E00): the adversary taps the wire but the closing opening is never
  // sent. A one-round outage before reconstruction is absorbed entirely —
  // the missed round only stalls the activation-driven parties.
  std::printf("--- crash schedules: honest party p2, Opt2SFE, standard gamma ---\n");
  rep.row_header();
  {
    rpd::EstimatorOptions o = rep.opts(1820);
    o.fault = sim::fault::FaultPlan{}.with_crash(1, /*at_round=*/2);
    const auto est = rpd::estimate_utility(opt2_lock_abort_strict(0), standard, o);
    total_cap_hits += est.round_cap_hits;
    rep.row("crash:p2@r2,no-restart", est, "= g00 = 0.250");
    std::printf("  fault stats: %s\n", est.fault_stats.to_string().c_str());
    rep.check(est.fault_stats.crashes == est.runs && est.fault_stats.restarts == 0,
              "crash: exactly one crash per run, no restarts");
    rep.check(std::abs(est.utility - standard.g00) <= est.margin() + 0.02,
              "crash: permanent honest crash denies both sides the output (E00)");
  }
  {
    rpd::EstimatorOptions o = rep.opts(1821);
    o.fault = sim::fault::FaultPlan{}.with_crash(1, /*at_round=*/1, /*restart_round=*/2);
    const auto est = rpd::estimate_utility(opt2_lock_abort_strict(0), standard, o);
    total_cap_hits += est.round_cap_hits;
    rep.row("crash:p2@r1,restart@r2", est, "= 0.750 (absorbed)");
    std::printf("  fault stats: %s\n", est.fault_stats.to_string().c_str());
    rep.check(est.fault_stats.crashes == est.runs && est.fault_stats.restarts == est.runs,
              "crash-restart: one crash and one restart per run");
    rep.check(std::abs(est.utility - 0.75) <= est.margin() + 0.02,
              "crash-restart: a one-round outage is absorbed, utility back at 0.75");
  }

  rep.check(total_cap_hits == 0,
            "no run hit the round cap (estimator excluded 0 runs)");
}

}  // namespace

void register_exp18(Registry& r) {
  ScenarioSpec s;
  s.id = "exp18_fault_tolerance";
  s.title = "E18: fault tolerance — utility under drop-rate and crash schedules";
  s.claim =
      "Claim: with strict correctness, u(p) = (g10+g11)/2 + p(g00-g11)/2 for "
      "Opt2SFE under lock-abort; drops cannot push gamma+fair vectors past the "
      "Theorem 3 bound, and donate utility exactly when g00 > g11.";
  s.protocol = "Opt2SFE / Pi1 / Pi2 over lossy channels";
  s.attack = "strict lock-abort under FaultPlan drop/crash schedules";
  s.tags = {"smoke", "two-party", "fault"};
  s.gamma = rpd::PayoffVector::standard();
  s.default_runs = 2000;
  s.base_seed = 1800;
  s.fault = sim::fault::FaultPlan::uniform_drop(0.15);
  // x = p (per-message drop rate): the closed-form drop curve derived above.
  s.bound = [](const rpd::PayoffVector& g, double p) {
    return g.two_party_opt_bound() + p * (g.g00 - g.g11) / 2.0;
  };
  s.bound_note = "u(p) = (g10+g11)/2 + p(g00-g11)/2";
  s.attacks = {{"lock-abort strict (corrupt p1)", opt2_lock_abort_strict(0)}};
  s.run = run;
  r.add(std::move(s));
}

}  // namespace fairsfe::experiments
