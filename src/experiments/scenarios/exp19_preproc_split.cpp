// E19 — offline/online phase split (DESIGN.md §10): moving the OT
// correlations of the GMW substrate into a preprocessing phase — whether
// dealt by a trusted dealer (offline_ideal) or produced by running the real
// OT rounds up front (offline_ot) — leaves every measured utility and
// fairness verdict bit-identical to the classic inline OT-hybrid execution.
//
// This is the composition claim of E12 applied to the *phase structure* of
// the protocol rather than the hybrid box: the paper's utilities are
// functions of who learns what, so substituting when the correlated
// randomness is produced must be invisible to the estimator. The scenario
// runs the same rushing lock-abort attack under all three PreprocModes with
// the same seeds and demands exact (not statistical) agreement.
#include <chrono>
#include <cmath>
#include <cstdio>
#include <string>

#include "adversary/lock_abort.h"
#include "circuit/builder.h"
#include "experiments/registry.h"
#include "experiments/report.h"
#include "experiments/scenarios/scenarios.h"
#include "experiments/setups.h"
#include "mpc/gmw.h"
#include "mpc/preproc/provider.h"

namespace fairsfe::experiments {
namespace {

using mpc::preproc::PreprocMode;

// Rushing lock-abort against a GMW execution under `cfg` (any PreprocMode):
// corrupt p1, extract y at the output round, abort. The factory body is
// mode-independent, so the setup_rng draws — inputs and share randomness —
// are consumed identically under every mode; only the AND-layer mechanics
// differ.
rpd::SetupFactory gmw_lock_abort(std::shared_ptr<const mpc::GmwConfig> cfg) {
  return [cfg](Rng& rng) {
    rpd::RunSetup s;
    std::vector<std::vector<bool>> inputs;
    for (std::size_t p = 0; p < cfg->circuit.num_parties(); ++p) {
      const Bytes x = rng.bytes((cfg->circuit.input_width(p) + 7) / 8);
      inputs.push_back(circuit::bytes_to_bits(x, cfg->circuit.input_width(p)));
    }
    const Bytes y = circuit::bits_to_bytes(cfg->circuit.eval(inputs));
    s.parties = mpc::make_gmw_parties(cfg, inputs, rng);
    s.functionality = mpc::make_gmw_functionality(*cfg);
    s.adversary =
        std::make_unique<adversary::LockAbortAdversary>(std::set<sim::PartyId>{0}, y);
    s.bind_run = mpc::make_gmw_run_binder(s.parties);
    s.engine.max_rounds = 128;
    return s;
  };
}

bool bit_identical(const rpd::UtilityEstimate& a, const rpd::UtilityEstimate& b) {
  return a.utility == b.utility && a.std_error == b.std_error &&
         a.event_freq == b.event_freq && a.run_events == b.run_events;
}

void run(ScenarioContext& ctx) {
  bench::Reporter& rep = ctx.rep;
  const rpd::PayoffVector gamma = ctx.spec.gamma;
  rep.gamma(gamma);

  // One offline batch per (mode, circuit), sized for the whole sweep. The
  // driver-amortized ctx.batch covers the registered budget (2-party
  // millionaires) when fairbench ran with the matching --preproc mode; every
  // other batch is generated — and its offline cost reported — here.
  auto batch_for = [&](PreprocMode mode, const circuit::Circuit& c,
                       std::size_t parties, std::size_t triples_per_run) {
    const std::size_t triples = rep.runs() * triples_per_run;
    if (mode == ctx.preproc && ctx.batch && ctx.batch->num_parties() == parties &&
        ctx.batch->num_triples() >= triples) {
      return ctx.batch;  // the driver already timed this one
    }
    (void)c;
    mpc::preproc::PreprocRequest req;
    req.parties = parties;
    req.triples = triples;
    Rng rng(ctx.spec.base_seed);
    const auto t0 = std::chrono::steady_clock::now();
    auto batch = mpc::preproc::generate_batch(mode, req, rng);
    const auto t1 = std::chrono::steady_clock::now();
    rep.offline_batch(std::string(mpc::preproc::to_string(mode)), triples,
                      std::chrono::duration<double>(t1 - t0).count());
    return batch;
  };

  auto estimate_mode = [&](const circuit::Circuit& c, PreprocMode mode,
                           std::uint64_t seed) {
    mpc::GmwConfigBuilder b = mpc::GmwConfig::for_circuit(c);
    if (mpc::preproc::is_offline(mode)) {
      auto probe = mpc::GmwConfig::public_output(c);
      b.with_preproc(mode, batch_for(mode, c, c.num_parties(), probe.triples_per_run()));
    }
    // Same seed for every mode: run i sees identical inputs and share
    // randomness, so agreement can be demanded exactly.
    return rpd::estimate_utility(gmw_lock_abort(b.build_shared()), gamma,
                                 rep.opts(seed));
  };

  rep.row_header();

  // 2-party millionaires: the full three-way split.
  {
    const circuit::Circuit mill = circuit::make_millionaires_circuit(8);
    const std::uint64_t seed = ctx.spec.base_seed;
    const auto inl = estimate_mode(mill, PreprocMode::kInline, seed);
    const auto ideal = estimate_mode(mill, PreprocMode::kOfflineIdeal, seed);
    const auto ot = estimate_mode(mill, PreprocMode::kOfflineOt, seed);
    rep.row("millionaires-8 [inline]", inl, "g10 (rushing lock-abort)");
    rep.row("millionaires-8 [offline_ideal]", ideal, "identical to inline");
    rep.row("millionaires-8 [offline_ot]", ot, "identical to inline");
    rep.check(bit_identical(inl, ideal),
              "millionaires-8: offline_ideal bit-identical to inline");
    rep.check(bit_identical(inl, ot),
              "millionaires-8: offline_ot bit-identical to inline");
    rep.check(std::abs(inl.utility - gamma.g10) < inl.margin() + 0.02,
              "millionaires-8: lock-abort earns g10 regardless of phase split");
  }

  // 4-party max: the multi-party Beaver path (pairwise shares across all
  // n(n-1)/2 pairs), inline vs dealer.
  {
    const circuit::Circuit max4 = circuit::make_max_circuit(4, 8);
    const std::uint64_t seed = ctx.spec.base_seed + 100;
    const auto inl = estimate_mode(max4, PreprocMode::kInline, seed);
    const auto ideal = estimate_mode(max4, PreprocMode::kOfflineIdeal, seed);
    rep.row("max-4party-8 [inline]", inl, "g10 (rushing lock-abort)");
    rep.row("max-4party-8 [offline_ideal]", ideal, "identical to inline");
    rep.check(bit_identical(inl, ideal),
              "max-4party-8: offline_ideal bit-identical to inline");
  }

  std::printf(
      "\nNote: the offline batch is a pure function of (seed, budget) — the\n"
      "dealer derives it from Rng forks, the OT-driven provider replays the\n"
      "real OtHub rounds — so the online phase (one broadcast per AND layer,\n"
      "zero kFunc traffic) is a drop-in substitution. See DESIGN.md §10.\n");
}

}  // namespace

void register_exp19(Registry& r) {
  ScenarioSpec s;
  s.id = "exp19_preproc_split";
  s.title = "E19: offline/online split — preprocessing leaves utilities unchanged";
  s.claim =
      "Claim: producing the GMW OT correlations offline (trusted dealer or\n"
      "up-front OT rounds) yields bit-identical utilities and verdicts.";
  s.protocol = "GMW (inline OT / offline_ideal / offline_ot)";
  s.attack = "rushing lock-abort";
  s.tags = {"smoke", "gmw", "preproc", "mpc", "composition"};
  s.gamma = rpd::PayoffVector::standard();
  s.default_runs = 300;
  s.base_seed = 1900;
  // The driver-amortized budget: 2-party millionaires, one triple per AND
  // gate per run (the 4-party leg sizes its own batch in the body).
  s.preproc = PreprocBudget{
      .parties = 2,
      .triples_per_run =
          mpc::GmwConfig::public_output(circuit::make_millionaires_circuit(8))
              .triples_per_run(),
      .rots_per_run = 0};
  s.bound = [](const rpd::PayoffVector& g, double) { return g.g10; };
  s.bound_note = "g10 under every PreprocMode";
  // Canonical family stays inline so assess_protocol callers with arbitrary
  // run counts never outrun a pre-sized batch.
  s.attacks = {{"lock-abort [inline]",
                gmw_lock_abort(mpc::GmwConfigBuilder(
                                   circuit::make_millionaires_circuit(8))
                                   .build_shared())}};
  s.run = run;
  r.add(std::move(s));
}

}  // namespace fairsfe::experiments
