// E20 — bit-sliced transposed execution (DESIGN.md §11): packing 64
// Monte-Carlo runs into the lanes of a machine word and advancing all of
// them with one walk over the compiled circuit plan changes throughput only.
// Estimates — utilities, standard errors, event frequencies, and the per-run
// event trace — stay bit-identical to the scalar engine, under the inline OT
// algebra and under Beaver triples from the preprocessing store alike, and
// crash-divergent runs are masked out of the lane set without perturbing
// their 63 lane-mates.
//
// The scenario also exercises CI-driven sequential stopping
// (EstimatorOptions::target_ci): the estimator halts at the first lane-width
// batch whose cumulative 95% CI half-width meets the target, at a stop point
// that is a pure function of (seed, target) — invariant under the thread
// count — so adaptive run counts stay inside the determinism contract.
#include <chrono>
#include <cmath>
#include <cstdio>
#include <optional>
#include <string>

#include "circuit/builder.h"
#include "experiments/registry.h"
#include "experiments/report.h"
#include "experiments/scenarios/scenarios.h"
#include "experiments/setups.h"
#include "mpc/preproc/provider.h"

namespace fairsfe::experiments {
namespace {

using mpc::preproc::PreprocMode;

// Deterministic crash schedule: every 8th run crashes one party right before
// an AND layer (cycling over the whole depth, including the output
// exchange). The run mix then contains both full runs (E01) and all-⊥ runs
// (E00), giving the payoff variance the stopping rule needs to be
// non-trivial — an all-honest scenario would stop after two batches with a
// zero standard error.
mpc::CrashScheduleFn crash_schedule(std::size_t layers) {
  return [layers](std::size_t i) -> std::optional<mpc::CrashPlan> {
    if (i % 8 != 0) return std::nullopt;
    return mpc::CrashPlan{.party = (i / 8) % 2, .layer = (i / 8) % (layers + 1)};
  };
}

bool bit_identical(const rpd::UtilityEstimate& a, const rpd::UtilityEstimate& b) {
  return a.utility == b.utility && a.std_error == b.std_error &&
         a.event_freq == b.event_freq && a.run_events == b.run_events;
}

void run(ScenarioContext& ctx) {
  bench::Reporter& rep = ctx.rep;
  const rpd::PayoffVector gamma = ctx.spec.gamma;
  rep.gamma(gamma);

  const circuit::Circuit mill = circuit::make_millionaires_circuit(8);
  const mpc::GmwConfig probe = mpc::GmwConfig::public_output(mill);
  const std::size_t layers = probe.plan->num_and_layers();
  const mpc::CrashScheduleFn crashes = crash_schedule(layers);
  const std::uint64_t seed = ctx.spec.base_seed;

  auto config_for = [&](PreprocMode mode) {
    mpc::GmwConfigBuilder b = mpc::GmwConfig::for_circuit(mill);
    if (mpc::preproc::is_offline(mode)) {
      const std::size_t triples = rep.runs() * probe.triples_per_run();
      std::shared_ptr<const mpc::preproc::CorrelatedRandomness> batch;
      if (mode == ctx.preproc && ctx.batch && ctx.batch->num_parties() == 2 &&
          ctx.batch->num_triples() >= triples) {
        batch = ctx.batch;  // the driver already timed this one
      } else {
        mpc::preproc::PreprocRequest req;
        req.parties = 2;
        req.triples = triples;
        Rng rng(ctx.spec.base_seed);
        const auto t0 = std::chrono::steady_clock::now();
        batch = mpc::preproc::generate_batch(mode, req, rng);
        const auto t1 = std::chrono::steady_clock::now();
        rep.offline_batch(std::string(mpc::preproc::to_string(mode)), triples,
                          std::chrono::duration<double>(t1 - t0).count());
      }
      b.with_preproc(mode, batch);
    }
    return b.build_shared();
  };

  // The schedule crashes exactly the runs with index ≡ 0 (mod 8), so the
  // utility is a deterministic mixture — an exact reference, not a bound.
  auto expected_utility = [&](std::size_t runs) {
    const auto crashed = static_cast<double>((runs + 7) / 8);
    const auto total = static_cast<double>(runs);
    return (crashed * gamma.g00 + (total - crashed) * gamma.g01) / total;
  };

  rep.row_header();

  // Inline OT algebra: scalar engine vs 64 runs per word, same seed.
  {
    const GmwHonestPair pair = gmw_honest_pair(config_for(PreprocMode::kInline), crashes);
    const rpd::EstimationTarget target{pair.factory, pair.sliced, pair.parties};
    const auto scalar = rpd::estimate_utility(
        target, gamma, rep.opts(seed).with_lanes(1).with_target_ci(0.0));
    const auto sliced = rpd::estimate_utility(
        target, gamma, rep.opts(seed).with_lanes(64).with_target_ci(0.0));
    rep.row("mill-8 crash/8 [scalar]", scalar, "engine, one run at a time");
    rep.row("mill-8 crash/8 [sliced]", sliced, "64 runs/word, identical");
    rep.check(bit_identical(scalar, sliced),
              "inline: sliced estimate bit-identical to the scalar engine");
    rep.check(scalar.lanes == 1 && sliced.lanes == 64,
              "lane width recorded in the estimates");
    rep.check(std::abs(scalar.utility - expected_utility(scalar.runs)) < 1e-9,
              "crash schedule yields the exact deterministic event mixture");
  }

  // Beaver path: the sliced AND layers spend 64 preprocessed triples per
  // word-op from the same store slices the scalar tapes would read.
  {
    const GmwHonestPair pair =
        gmw_honest_pair(config_for(PreprocMode::kOfflineIdeal), crashes);
    const rpd::EstimationTarget target{pair.factory, pair.sliced, pair.parties};
    const auto scalar = rpd::estimate_utility(
        target, gamma, rep.opts(seed).with_lanes(1).with_target_ci(0.0));
    const auto sliced = rpd::estimate_utility(
        target, gamma, rep.opts(seed).with_lanes(64).with_target_ci(0.0));
    rep.row("mill-8 beaver [scalar]", scalar, "offline_ideal store");
    rep.row("mill-8 beaver [sliced]", sliced, "64 triples per word-op");
    rep.check(bit_identical(scalar, sliced),
              "beaver: sliced estimate bit-identical to the scalar engine");
  }

  // Sequential stopping: halt at the target CI half-width, deterministically.
  {
    const GmwHonestPair pair = gmw_honest_pair(config_for(PreprocMode::kInline), crashes);
    const rpd::EstimationTarget target{pair.factory, pair.sliced, pair.parties};
    const double target_ci = 0.05;
    const rpd::EstimatorOptions o =
        rep.opts(seed).with_lanes(64).with_target_ci(target_ci);
    rpd::EstimatorOptions o2 = o;
    o2.threads = o.threads == 2 ? 4 : 2;
    const auto stop = rpd::estimate_utility(target, gamma, o);
    const auto stop2 = rpd::estimate_utility(target, gamma, o2);
    rep.row("mill-8 stop@0.05 [sliced]", stop, "halts at 95% CI half-width");
    rep.check(stop.runs <= stop.requested_runs,
              "stopping never exceeds the requested run count");
    rep.check(!stop.stopped_early || stop.ci_halfwidth() <= target_ci,
              "an early stop certifies the 95% CI half-width target");
    rep.check(stop.utility == stop2.utility && stop.std_error == stop2.std_error &&
                  stop.runs == stop2.runs && stop.stopped_early == stop2.stopped_early,
              "stop point and estimate invariant under the thread count");
    if (stop.stopped_early) {
      std::printf("  stopped after %zu of %zu runs (ci_halfwidth %.5f <= %.5f)\n",
                  stop.runs, stop.requested_runs, stop.ci_halfwidth(), target_ci);
    }
  }

  std::printf(
      "\nNote: lane l of every wire word carries run l's bit, so one word op\n"
      "advances 64 executions; per-run rng streams are forked exactly as the\n"
      "scalar engine forks them, which is why agreement is exact. See\n"
      "DESIGN.md §11 for the lane layout and the stopping-rule determinism\n"
      "argument.\n");
}

}  // namespace

void register_exp20(Registry& r) {
  const circuit::Circuit mill = circuit::make_millionaires_circuit(8);
  const auto cfg =
      std::make_shared<const mpc::GmwConfig>(mpc::GmwConfig::public_output(mill));
  const GmwHonestPair pair =
      gmw_honest_pair(cfg, crash_schedule(cfg->plan->num_and_layers()));

  ScenarioSpec s;
  s.id = "exp20_bitslice";
  s.title = "E20: bit-sliced execution — 64 Monte-Carlo runs per machine word";
  s.claim =
      "Claim: transposed bit-sliced GMW execution and CI-driven sequential\n"
      "stopping change throughput only — estimates stay bit-identical.";
  s.protocol = "GMW (scalar engine / bit-sliced words)";
  s.attack = "honest runs + deterministic crash schedule";
  s.tags = {"smoke", "gmw", "bitslice", "perf", "mpc"};
  s.gamma = rpd::PayoffVector::standard();
  s.default_runs = 256;
  s.base_seed = 2000;
  s.preproc = PreprocBudget{
      .parties = 2, .triples_per_run = cfg->triples_per_run(), .rots_per_run = 0};
  // One run in eight ends all-⊥ (E00), the rest complete honestly (E01).
  s.bound = [](const rpd::PayoffVector& g, double) {
    return g.g01 + (g.g00 - g.g01) / 8.0;
  };
  s.bound_note = "g01 + (g00 - g01)/8 (one crash in eight runs)";
  s.attacks = {{"honest + crash/8 [scalar]", pair.factory}};
  s.sliced = pair.sliced;
  s.sliced_parties = pair.parties;
  s.run = run;
  r.add(std::move(s));
}

}  // namespace fairsfe::experiments
