// E21 — round-sampling 1/p partial fairness (Beimel–Omri–Orlov style) vs the
// paper's 1/p comparison (Lemma 25 / Theorems 23-24). The round-sampling
// dealer fixes the iteration count to EXACTLY p and draws the switch round
// uniform over [1, p]; every abort strategy then hits i* with probability
// 1/p, so under ~γ = (0, 0, 1, 0) each attack earns γ10/p. The harness
// sweeps p, fields the rushing attack family, verifies the fixed-j strategy
// SATURATES the bound (u = γ10/p, not merely ≤), and plots the measured
// crossover against GK: identical 1/p guarantee, p iterations instead of
// GK's ~8·p·|Y| geometric cap.
#include <algorithm>
#include <cstdio>
#include <string>

#include "experiments/registry.h"
#include "experiments/report.h"
#include "experiments/scenarios/scenarios.h"
#include "experiments/setups.h"

namespace fairsfe::experiments {
namespace {

void run(ScenarioContext& ctx) {
  bench::Reporter& rep = ctx.rep;
  const rpd::PayoffVector gamma = ctx.spec.gamma;
  rep.gamma(gamma);

  std::uint64_t seed = ctx.spec.base_seed;
  std::printf("--- round-sampling exchange (AND, |Y| = 2), uniform i* in [1, p] ---\n");
  for (const std::size_t p : {2u, 3u, 4u, 6u, 8u}) {
    const fair::Partial1pParams params = fair::make_partial_1p_and_params(p);
    const double bound = ctx.spec.bound(gamma, 1.0 / static_cast<double>(p));
    std::printf("p = %zu  (exactly %zu exchange iterations)\n", p, params.rounds());
    rep.row_header();
    double best = 0.0;
    for (const auto& attack : partial_1p_attack_family(params)) {
      const auto est = rpd::estimate_utility(attack.factory, gamma, rep.opts(seed++));
      char buf[32];
      std::snprintf(buf, sizeof(buf), "<= g10/p = %.4f", bound);
      rep.row(attack.name, est, buf);
      best = std::max(best, est.utility);
      rep.check(est.utility <= bound + est.margin() + 0.02,
                "p=" + std::to_string(p) + " " + attack.name + " <= g10/p");
      // Fixed-j aborts don't just respect the bound, they SATURATE it: the
      // uniform switch round makes every deterministic abort a 1/p gamble.
      if (attack.name == "abort@1" || attack.name == "abort@p") {
        rep.check(est.utility >= bound - est.margin() - 0.03,
                  "p=" + std::to_string(p) + " " + attack.name + " saturates g10/p");
      }
    }
    std::printf("best attack: %.4f vs bound %.4f\n\n", best, bound);

    // Measured crossover vs GK at the same p: equal 1/p cap, but the
    // round-sampling schedule is p iterations against GK's geometric cap.
    const fair::GkParams gk = fair::make_gk_and_params(p);
    std::printf("round budget: round-sampling %zu vs GK cap %zu (%.1fx shorter)\n\n",
                params.rounds(), gk.cap(),
                static_cast<double>(gk.cap()) / static_cast<double>(params.rounds()));
  }

  std::printf("Crossover: at p = 2 the 1/p cap equals Theorem 3's general-function\n"
              "optimum (g10+g11)/2 = 0.5 — round-sampling only beats the general\n"
              "bound for p > 2, exactly like GK, but at a fraction of the rounds.\n");
}

}  // namespace

void register_exp21(Registry& r) {
  ScenarioSpec s;
  s.id = "exp21_partial_1p";
  s.title = "E21: round-sampling 1/p partial fairness (BOO)";
  s.claim =
      "Claim: every abort strategy earns exactly g10/p (uniform switch\n"
      "round); the schedule is p iterations vs GK's ~8*p*|Y| cap.";
  s.protocol = "round-sampling 1/p exchange";
  s.attack = "rushing abort family";
  s.tags = {"smoke", "two-party", "partial-fairness", "zoo"};
  s.gamma = rpd::payoff::partial_fairness();
  s.default_runs = 2500;
  s.base_seed = 2100;
  // x = 1/p: the round-sampling cap is g10/p (g10 = 1 under ~gamma).
  s.bound = [](const rpd::PayoffVector& g, double x) { return g.g10 * x; };
  s.bound_note = "u_A = g10/p for fixed-j aborts (pass x = 1/p)";
  s.attacks = partial_1p_attack_family(fair::make_partial_1p_and_params(4));
  s.run = run;
  r.add(std::move(s));
}

}  // namespace fairsfe::experiments
