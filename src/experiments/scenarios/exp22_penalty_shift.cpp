// E22 — the economic-fairness flip. Γfair alone cannot price an abort: under
// the standard ~γ the learn-then-withhold strategy earns γ10 = 1 and no
// plain-model protocol pushes it below (γ10+γ11)/2. The penalty model
// changes the GAME: both parties escrow a deposit d, and a withhold proven
// by the escrow forfeits it, so the strategy's payoff drops to γ10 − d.
// The sweep shows the rational adversary flipping from withholding to
// honesty exactly past d* = γ10 − γ11, and the zoo section orders every
// two-party family of the repo — dummy, FullSec(dummy), Opt2SFE, contract,
// GK, round-sampling 1/p, escrowed exchange — under at_least_as_fair in one
// run.
#include <algorithm>
#include <cstdio>
#include <string>
#include <utility>
#include <vector>

#include "experiments/registry.h"
#include "experiments/report.h"
#include "experiments/scenarios/scenarios.h"
#include "experiments/setups.h"
#include "rpd/payoff_model.h"

namespace fairsfe::experiments {
namespace {

void run(ScenarioContext& ctx) {
  bench::Reporter& rep = ctx.rep;
  const rpd::PayoffVector gamma = ctx.spec.gamma;
  rep.gamma(gamma);

  std::uint64_t seed = ctx.spec.base_seed;
  const auto family = penalty_attack_family();

  std::printf("--- deposit sweep: u(withhold) = g10 - d vs u(honest) = g11 ---\n");
  std::string best_at_zero, best_at_full;
  for (const double d : {0.0, 0.2, 0.4, 0.6, 0.8, 1.0}) {
    rpd::CollateralTerms terms;
    terms.deposit = d;
    const rpd::CollateralModel model(gamma, terms);
    const double bound = ctx.spec.bound(gamma, d);
    std::printf("deposit d = %.1f  (model %s)\n", d, model.name().c_str());
    rep.row_header();
    const auto assess = rpd::assess_protocol(family, model, rep.opts(seed++));
    for (const auto& a : assess.attacks) {
      char buf[40];
      std::snprintf(buf, sizeof(buf), "<= max(g10-d, g11) = %.2f", bound);
      rep.row(a.name, a.estimate, buf);
    }
    rep.check(assess.best_utility() <= bound + assess.best_margin() + 0.02,
              "d=" + std::to_string(d).substr(0, 3) + " best <= max(g10-d, g11)");
    if (d == 0.0) best_at_zero = assess.best_attack_name();
    if (d == 1.0) best_at_full = assess.best_attack_name();
    std::printf("best strategy: %s (%.4f)\n\n", assess.best_attack_name().c_str(),
                assess.best_utility());
  }
  rep.check(best_at_zero == "withhold-claim",
            "d=0: learn-then-withhold is the rational strategy");
  rep.check(best_at_full == "honest",
            "d=1: honesty is the rational strategy (flip past d* = g10 - g11)");

  // --- protocol zoo: one at_least_as_fair ordering over every family -------
  std::printf("--- protocol zoo under standard gamma (fairest first) ---\n");
  std::vector<std::pair<std::string, rpd::ProtocolAssessment>> zoo;
  const rpd::VectorModel vector_model(gamma);
  const std::vector<std::pair<std::string, std::vector<rpd::NamedAttack>>> families = {
      {"dummy Phi^Fsfe", two_party_attack_family(dummy2_lock_abort)},
      {"FullSec(Phi)", full_security_attack_family()},
      {"Opt2SFE", two_party_attack_family(opt2_lock_abort)},
      {"contract Pi1",
       two_party_attack_family([](sim::PartyId c) {
         return contract_attack(fair::ContractVariant::kPi1, c);
       })},
      {"GK(p=4)", gk_attack_family(fair::make_gk_and_params(4))},
      {"1/p-sampling(p=4)", partial_1p_attack_family(fair::make_partial_1p_and_params(4))},
  };
  for (const auto& [name, attacks] : families) {
    zoo.emplace_back(name, rpd::assess_protocol(attacks, vector_model, rep.opts(seed++)));
  }
  rpd::CollateralTerms unit;
  unit.deposit = 1.0;
  zoo.emplace_back("penalty(d=1)", rpd::assess_protocol(
                                       family, rpd::CollateralModel(gamma, unit),
                                       rep.opts(seed++)));

  std::stable_sort(zoo.begin(), zoo.end(), [](const auto& a, const auto& b) {
    return a.second.best_utility() < b.second.best_utility();
  });
  rep.row_header();
  std::size_t chain = 1;  // a single protocol is trivially a chain
  for (std::size_t i = 0; i < zoo.size(); ++i) {
    const auto& [name, assess] = zoo[i];
    rep.row(name + " | " + assess.best_attack_name(),
            assess.attacks[assess.best_index].estimate, "zoo sup_A u_A");
    if (i > 0 && rpd::at_least_as_fair(zoo[i - 1].second, assess)) ++chain;
  }
  rep.check(chain >= 6, "at_least_as_fair orders >= 6 protocol families (chain = " +
                            std::to_string(chain) + ")");
  std::printf("ordered chain length: %zu of %zu families\n", chain, zoo.size());
}

}  // namespace

void register_exp22(Registry& r) {
  ScenarioSpec s;
  s.id = "exp22_penalty_shift";
  s.title = "E22: deposit sweep — the economic fairness flip";
  s.claim =
      "Claim: escrowed deposits reprice the withhold strategy to g10 - d;\n"
      "past d* = g10 - g11 the rational adversary plays honestly.";
  s.protocol = "escrowed exchange (penalty model)";
  s.attack = "deposit-game family";
  s.tags = {"smoke", "two-party", "penalty", "zoo"};
  s.gamma = rpd::payoff::standard();
  // The canonical model for ScenarioSpec consumers: the full-deposit point
  // (the interesting end of the sweep; the body re-anchors per deposit).
  rpd::CollateralTerms unit;
  unit.deposit = 1.0;
  s.model = rpd::make_collateral_model(s.gamma, unit);
  s.default_runs = 2500;
  s.base_seed = 2200;
  // x = d: the deposit level of the sweep point.
  s.bound = [](const rpd::PayoffVector& g, double x) {
    return std::max(g.g10 - x, g.g11);
  };
  s.bound_note = "u_A <= max(g10 - d, g11) (pass x = d)";
  s.attacks = penalty_attack_family();
  s.run = run;
  r.add(std::move(s));
}

}  // namespace fairsfe::experiments
