// Registration hooks for the built-in scenario table. One function per
// scenario translation unit; setups.cpp calls them all from
// register_builtin_scenarios(). Adding experiment E19: create
// scenarios/exp19_*.cpp defining register_exp19(Registry&), declare it here,
// call it in setups.cpp — done, fairbench and the tests pick it up.
#pragma once

namespace fairsfe::experiments {

class Registry;

void register_exp01(Registry& r);
void register_exp02(Registry& r);
void register_exp03(Registry& r);
void register_exp04(Registry& r);
void register_exp05(Registry& r);
void register_exp06(Registry& r);
void register_exp07(Registry& r);
void register_exp08(Registry& r);
void register_exp09(Registry& r);
void register_exp10(Registry& r);
void register_exp11(Registry& r);
void register_exp12(Registry& r);
void register_exp13(Registry& r);
void register_exp14(Registry& r);
void register_exp15(Registry& r);
void register_exp16(Registry& r);
void register_exp17(Registry& r);
void register_exp18(Registry& r);
void register_exp19(Registry& r);
void register_exp20(Registry& r);
void register_exp21(Registry& r);
void register_exp22(Registry& r);

}  // namespace fairsfe::experiments
