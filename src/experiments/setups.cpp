#include "experiments/setups.h"

#include "adversary/gk_adversary.h"
#include "adversary/lock_abort.h"
#include "adversary/mixed.h"
#include "adversary/partial_1p_attack.h"
#include "adversary/strategies.h"
#include "experiments/registry.h"
#include "experiments/scenarios/scenarios.h"
#include "fair/dummy_ideal.h"
#include "fair/full_security.h"
#include "fair/gk_multi.h"
#include "fair/lemma18.h"
#include "fair/opt2sfe.h"
#include "rpd/payoff_model.h"

namespace fairsfe::experiments {

using adversary::AbortFunctionality;
using adversary::GkAborter;
using adversary::HalfGmwCoalition;
using adversary::Lemma18Deviator;
using adversary::LockAbortAdversary;
using adversary::MixedAdversary;
using adversary::NoCorruption;
using adversary::PassiveObserver;

namespace {
constexpr std::size_t kValueBytes = 8;

std::set<sim::PartyId> prefix_set(std::size_t t) {
  std::set<sim::PartyId> s;
  for (std::size_t i = 0; i < t; ++i) s.insert(static_cast<sim::PartyId>(i));
  return s;
}

std::set<sim::PartyId> all_but(std::size_t n, std::size_t keep) {
  std::set<sim::PartyId> s;
  for (std::size_t i = 0; i < n; ++i) {
    if (i != keep) s.insert(static_cast<sim::PartyId>(i));
  }
  return s;
}
}  // namespace

mpc::SfeSpec two_party_spec() { return mpc::make_concat_spec(2, kValueBytes); }

mpc::SfeSpec nparty_spec(std::size_t n) { return mpc::make_concat_spec(n, kValueBytes); }

std::vector<Bytes> random_inputs(std::size_t n, Rng& rng) {
  std::vector<Bytes> xs;
  xs.reserve(n);
  for (std::size_t i = 0; i < n; ++i) xs.push_back(rng.bytes(kValueBytes));
  return xs;
}

// ---------------------------------------------------------------- two-party

rpd::SetupFactory contract_attack(fair::ContractVariant variant, sim::PartyId corrupt) {
  return [variant, corrupt](Rng& rng) {
    rpd::RunSetup s;
    const auto xs = random_inputs(2, rng);
    const Bytes y = xs[0] + xs[1];
    s.parties = fair::make_contract_parties(variant, xs[0], xs[1], rng);
    s.adversary = std::make_unique<LockAbortAdversary>(std::set<sim::PartyId>{corrupt}, y);
    s.engine.max_rounds = 12;
    return s;
  };
}

namespace {
rpd::RunSetup opt2_setup(Rng& rng, std::unique_ptr<sim::IAdversary> adv) {
  rpd::RunSetup s;
  const mpc::SfeSpec spec = two_party_spec();
  const auto xs = random_inputs(2, rng);
  s.parties = fair::make_opt2_parties(spec, xs[0], xs[1], rng);
  s.functionality = std::make_unique<fair::Opt2ShareFunc>(spec);
  s.adversary = std::move(adv);
  s.engine.max_rounds = 12;
  return s;
}

Bytes opt2_expected_y(const std::vector<Bytes>& xs) { return xs[0] + xs[1]; }
}  // namespace

rpd::SetupFactory opt2_lock_abort(sim::PartyId corrupt) {
  return [corrupt](Rng& rng) {
    const auto xs = random_inputs(2, rng);
    rpd::RunSetup s;
    const mpc::SfeSpec spec = two_party_spec();
    s.parties = fair::make_opt2_parties(spec, xs[0], xs[1], rng);
    s.functionality = std::make_unique<fair::Opt2ShareFunc>(spec);
    s.adversary = std::make_unique<LockAbortAdversary>(std::set<sim::PartyId>{corrupt},
                                                       opt2_expected_y(xs));
    s.engine.max_rounds = 12;
    return s;
  };
}

rpd::SetupFactory opt2_lock_abort_strict(sim::PartyId corrupt) {
  return [corrupt](Rng& rng) {
    const auto xs = random_inputs(2, rng);
    const Bytes y = opt2_expected_y(xs);
    rpd::RunSetup s;
    const mpc::SfeSpec spec = two_party_spec();
    s.parties = fair::make_opt2_parties(spec, xs[0], xs[1], rng);
    s.functionality =
        std::make_unique<fair::Opt2ShareFunc>(spec, nullptr, /*patience=*/8);
    s.adversary = std::make_unique<LockAbortAdversary>(std::set<sim::PartyId>{corrupt}, y);
    s.engine.max_rounds = 64;
    rpd::strict_output_mapping(y, 2).install(s);
    return s;
  };
}

rpd::SetupFactory contract_attack_strict(fair::ContractVariant variant,
                                         sim::PartyId corrupt) {
  return [variant, corrupt](Rng& rng) {
    rpd::RunSetup s;
    const auto xs = random_inputs(2, rng);
    const Bytes y = xs[0] + xs[1];
    s.parties = fair::make_contract_parties(variant, xs[0], xs[1], rng);
    s.adversary = std::make_unique<LockAbortAdversary>(std::set<sim::PartyId>{corrupt}, y);
    s.engine.max_rounds = 64;
    rpd::strict_output_mapping(y, 2).install(s);
    return s;
  };
}

rpd::SetupFactory opt2_agen() {
  return [](Rng& rng) {
    const auto xs = random_inputs(2, rng);
    const Bytes y = opt2_expected_y(xs);
    rpd::RunSetup s;
    const mpc::SfeSpec spec = two_party_spec();
    s.parties = fair::make_opt2_parties(spec, xs[0], xs[1], rng);
    s.functionality = std::make_unique<fair::Opt2ShareFunc>(spec);
    std::vector<adversary::AdversaryFactory> choices;
    for (sim::PartyId c : {0, 1}) {
      choices.push_back([c, y](Rng&) {
        return std::make_unique<LockAbortAdversary>(std::set<sim::PartyId>{c}, y);
      });
    }
    s.adversary = std::make_unique<MixedAdversary>(std::move(choices));
    s.engine.max_rounds = 12;
    return s;
  };
}

rpd::SetupFactory opt2_abort_phase1() {
  return [](Rng& rng) {
    return opt2_setup(rng, std::make_unique<AbortFunctionality>(std::set<sim::PartyId>{0}));
  };
}

rpd::SetupFactory opt2_passive() {
  return [](Rng& rng) {
    const auto xs = random_inputs(2, rng);
    rpd::RunSetup s;
    const mpc::SfeSpec spec = two_party_spec();
    s.parties = fair::make_opt2_parties(spec, xs[0], xs[1], rng);
    s.functionality = std::make_unique<fair::Opt2ShareFunc>(spec);
    s.adversary = std::make_unique<PassiveObserver>(std::set<sim::PartyId>{0},
                                                    opt2_expected_y(xs));
    s.engine.max_rounds = 12;
    return s;
  };
}

rpd::SetupFactory opt2_no_corruption() {
  return [](Rng& rng) {
    return opt2_setup(rng, std::make_unique<NoCorruption>());
  };
}

rpd::SetupFactory opt2_corrupt_all() {
  return [](Rng& rng) {
    const auto xs = random_inputs(2, rng);
    return opt2_setup(rng, std::make_unique<PassiveObserver>(std::set<sim::PartyId>{0, 1},
                                                             opt2_expected_y(xs)));
  };
}

rpd::SetupFactory dummy2_lock_abort(sim::PartyId corrupt) {
  return [corrupt](Rng& rng) {
    rpd::RunSetup s;
    const auto xs = random_inputs(2, rng);
    s.parties = fair::make_dummy_parties(xs);
    s.functionality = std::make_unique<mpc::SfeFunc>(two_party_spec(), mpc::SfeMode::kFair);
    s.adversary = std::make_unique<LockAbortAdversary>(std::set<sim::PartyId>{corrupt},
                                                       xs[0] + xs[1]);
    s.engine.max_rounds = 8;
    return s;
  };
}

rpd::SetupFactory dummy2_abort_gate(sim::PartyId corrupt) {
  return [corrupt](Rng& rng) {
    rpd::RunSetup s;
    const auto xs = random_inputs(2, rng);
    s.parties = fair::make_dummy_parties(xs);
    s.functionality = std::make_unique<mpc::SfeFunc>(two_party_spec(), mpc::SfeMode::kFair);
    s.adversary = std::make_unique<AbortFunctionality>(std::set<sim::PartyId>{corrupt});
    s.engine.max_rounds = 8;
    return s;
  };
}

std::vector<rpd::NamedAttack> two_party_attack_family(
    const std::function<rpd::SetupFactory(sim::PartyId)>& lock_abort_for) {
  return {
      {"lock-abort(p1)", lock_abort_for(0)},
      {"lock-abort(p2)", lock_abort_for(1)},
  };
}

// --------------------------------------------------------------- multi-party

namespace {
Bytes concat_all(const std::vector<Bytes>& xs) {
  Bytes y;
  for (const Bytes& x : xs) y = y + x;
  return y;
}

rpd::RunSetup nparty_setup(std::size_t n, Rng& rng,
                           const std::function<fair::ProtocolInstance(
                               const mpc::SfeSpec&, const std::vector<Bytes>&, Rng&)>& make,
                           std::unique_ptr<sim::IAdversary> adv, int max_rounds = 16) {
  rpd::RunSetup s;
  const mpc::SfeSpec spec = nparty_spec(n);
  const auto xs = random_inputs(n, rng);
  fair::ProtocolInstance inst = make(spec, xs, rng);
  s.parties = std::move(inst.parties);
  s.functionality = std::move(inst.functionality);
  s.adversary = std::move(adv);
  s.engine.max_rounds = max_rounds;
  return s;
}
}  // namespace

rpd::SetupFactory optn_lock_abort(std::size_t n, std::size_t t) {
  return [n, t](Rng& rng) {
    const auto xs = random_inputs(n, rng);
    rpd::RunSetup s;
    const mpc::SfeSpec spec = nparty_spec(n);
    fair::ProtocolInstance inst = fair::make_optn_instance(spec, xs, rng);
    s.parties = std::move(inst.parties);
    s.functionality = std::move(inst.functionality);
    s.adversary = std::make_unique<LockAbortAdversary>(prefix_set(t), concat_all(xs));
    s.engine.max_rounds = 16;
    return s;
  };
}

rpd::SetupFactory optn_a_ibar_mixed(std::size_t n) {
  return [n](Rng& rng) {
    const auto xs = random_inputs(n, rng);
    const Bytes y = concat_all(xs);
    rpd::RunSetup s;
    const mpc::SfeSpec spec = nparty_spec(n);
    fair::ProtocolInstance inst = fair::make_optn_instance(spec, xs, rng);
    s.parties = std::move(inst.parties);
    s.functionality = std::move(inst.functionality);
    std::vector<adversary::AdversaryFactory> choices;
    for (std::size_t keep = 0; keep < n; ++keep) {
      choices.push_back([n, keep, y](Rng&) {
        return std::make_unique<LockAbortAdversary>(all_but(n, keep), y);
      });
    }
    s.adversary = std::make_unique<MixedAdversary>(std::move(choices));
    s.engine.max_rounds = 16;
    return s;
  };
}

rpd::SetupFactory optn_abort_phase1(std::size_t n, std::size_t t) {
  return [n, t](Rng& rng) {
    return nparty_setup(n, rng,
                        [](const mpc::SfeSpec& spec, const std::vector<Bytes>& xs, Rng& r) {
                          return fair::make_optn_instance(spec, xs, r);
                        },
                        std::make_unique<AbortFunctionality>(prefix_set(t)));
  };
}

rpd::SetupFactory optn_passive(std::size_t n, std::size_t t) {
  return [n, t](Rng& rng) {
    const auto xs = random_inputs(n, rng);
    rpd::RunSetup s;
    const mpc::SfeSpec spec = nparty_spec(n);
    fair::ProtocolInstance inst = fair::make_optn_instance(spec, xs, rng);
    s.parties = std::move(inst.parties);
    s.functionality = std::move(inst.functionality);
    s.adversary = std::make_unique<PassiveObserver>(prefix_set(t), concat_all(xs));
    s.engine.max_rounds = 16;
    return s;
  };
}

rpd::SetupFactory half_gmw_coalition(std::size_t n, std::size_t t) {
  return [n, t](Rng& rng) {
    return nparty_setup(n, rng,
                        [](const mpc::SfeSpec& spec, const std::vector<Bytes>& xs, Rng& r) {
                          return fair::make_half_gmw_instance(spec, xs, r);
                        },
                        std::make_unique<HalfGmwCoalition>(prefix_set(t), n));
  };
}

rpd::SetupFactory half_gmw_lock_abort(std::size_t n, std::size_t t) {
  return [n, t](Rng& rng) {
    const auto xs = random_inputs(n, rng);
    rpd::RunSetup s;
    const mpc::SfeSpec spec = nparty_spec(n);
    fair::ProtocolInstance inst = fair::make_half_gmw_instance(spec, xs, rng);
    s.parties = std::move(inst.parties);
    s.functionality = std::move(inst.functionality);
    s.adversary = std::make_unique<LockAbortAdversary>(prefix_set(t), concat_all(xs));
    s.engine.max_rounds = 16;
    return s;
  };
}

rpd::SetupFactory lemma18_deviator(std::size_t n) {
  return [n](Rng& rng) {
    auto setup = nparty_setup(n, rng,
                              [](const mpc::SfeSpec& spec, const std::vector<Bytes>& xs,
                                 Rng& r) { return fair::make_lemma18_instance(spec, xs, r); },
                              std::make_unique<Lemma18Deviator>(static_cast<sim::PartyId>(0)));
    return setup;
  };
}

rpd::SetupFactory lemma18_lock_abort(std::size_t n, std::size_t t) {
  return [n, t](Rng& rng) {
    const auto xs = random_inputs(n, rng);
    rpd::RunSetup s;
    const mpc::SfeSpec spec = nparty_spec(n);
    fair::ProtocolInstance inst = fair::make_lemma18_instance(spec, xs, rng);
    s.parties = std::move(inst.parties);
    s.functionality = std::move(inst.functionality);
    s.adversary = std::make_unique<LockAbortAdversary>(prefix_set(t), concat_all(xs));
    s.engine.max_rounds = 16;
    return s;
  };
}

rpd::SetupFactory mixed_best_attack(std::size_t n, std::size_t t) {
  if (n % 2 == 1) {
    return [n, t](Rng& rng) {
      return nparty_setup(n, rng,
                          [](const mpc::SfeSpec& spec, const std::vector<Bytes>& xs, Rng& r) {
                            return fair::make_mixed_instance(spec, xs, r);
                          },
                          std::make_unique<HalfGmwCoalition>(prefix_set(t), n));
    };
  }
  return [n, t](Rng& rng) {
    const auto xs = random_inputs(n, rng);
    rpd::RunSetup s;
    const mpc::SfeSpec spec = nparty_spec(n);
    fair::ProtocolInstance inst = fair::make_mixed_instance(spec, xs, rng);
    s.parties = std::move(inst.parties);
    s.functionality = std::move(inst.functionality);
    s.adversary = std::make_unique<LockAbortAdversary>(prefix_set(t), concat_all(xs));
    s.engine.max_rounds = 16;
    return s;
  };
}

rpd::SetupFactory dummyn_lock_abort(std::size_t n, std::size_t t) {
  return [n, t](Rng& rng) {
    rpd::RunSetup s;
    const auto xs = random_inputs(n, rng);
    s.parties = fair::make_dummy_parties(xs);
    s.functionality = std::make_unique<mpc::SfeFunc>(nparty_spec(n), mpc::SfeMode::kFair);
    s.adversary = std::make_unique<LockAbortAdversary>(prefix_set(t), concat_all(xs));
    s.engine.max_rounds = 8;
    return s;
  };
}

rpd::SetupFactory dummyn_abort_gate(std::size_t n, std::size_t t) {
  return [n, t](Rng& rng) {
    rpd::RunSetup s;
    const auto xs = random_inputs(n, rng);
    s.parties = fair::make_dummy_parties(xs);
    s.functionality = std::make_unique<mpc::SfeFunc>(nparty_spec(n), mpc::SfeMode::kFair);
    s.adversary = std::make_unique<AbortFunctionality>(prefix_set(t));
    s.engine.max_rounds = 8;
    return s;
  };
}

std::vector<rpd::NamedAttack> nparty_attack_family(NPartyProtocol protocol, std::size_t n,
                                                   std::size_t t) {
  switch (protocol) {
    case NPartyProtocol::kOptN:
      return {{"lock-abort", optn_lock_abort(n, t)},
              {"abort-phase1", optn_abort_phase1(n, t)},
              {"passive", optn_passive(n, t)}};
    case NPartyProtocol::kHalfGmw:
      return {{"coalition", half_gmw_coalition(n, t)},
              {"lock-abort", half_gmw_lock_abort(n, t)}};
    case NPartyProtocol::kLemma18: {
      std::vector<rpd::NamedAttack> out = {{"lock-abort", lemma18_lock_abort(n, t)}};
      if (t == 1) out.push_back({"deviator", lemma18_deviator(n)});
      return out;
    }
    case NPartyProtocol::kMixed:
      return {{"best-attack", mixed_best_attack(n, t)}};
    case NPartyProtocol::kDummy:
      return {{"lock-abort", dummyn_lock_abort(n, t)},
              {"abort-gate", dummyn_abort_gate(n, t)}};
  }
  return {};
}

// ---------------------------------------------------------------- GK / Π̃

rpd::SetupFactory gk_attack(const fair::GkParams& params, GkAttack attack) {
  return [params, attack](Rng& rng) {
    rpd::RunSetup s;
    auto notes = std::make_shared<mpc::Notes>();
    const Bytes x0 = params.sample_x1(rng);
    const Bytes x1 = params.sample_x2(rng);
    s.parties = fair::make_gk_parties(params, x0, x1, rng);
    s.functionality = std::make_unique<fair::ShareGenFunc>(params, notes);

    adversary::GkAbortRule rule;
    switch (attack) {
      case GkAttack::kAbortAt1:
        rule = adversary::gk_rule_abort_at(1);
        break;
      case GkAttack::kAbortMid:
        rule = adversary::gk_rule_abort_at(std::max<std::size_t>(1, params.cap() / 2));
        break;
      case GkAttack::kGeometric:
        rule = adversary::gk_rule_geometric(1.0 / static_cast<double>(params.p));
        break;
      case GkAttack::kMatchTarget: {
        // The adversary knows its own input x0 and guesses the peer's.
        const Bytes target = params.spec.eval({x0, params.sample_x2(rng)});
        rule = adversary::gk_rule_match_target(target);
        break;
      }
      case GkAttack::kRepeatDetector:
        rule = adversary::gk_rule_repeat_detector();
        break;
    }
    s.adversary = std::make_unique<GkAborter>(std::move(rule), notes);
    s.engine.max_rounds = static_cast<int>(2 * params.cap() + 10);

    // F^{f,$} accounting ([GK10, Lemma 2] / Theorem 23's simulator): the only
    // unsimulatable outcome is an abort exactly at the switch round i* — the
    // adversary then holds the real y while the honest output was replaced by
    // a fake draw. Aborts before i* are simulated by a random-input abort;
    // aborts after i* (and full runs) deliver the correct output to both.
    rpd::notes_switch_round_mapping(notes).install(s);
    return s;
  };
}

namespace {
adversary::GkAbortRule gk_rule_for(GkAttack attack, std::size_t p, std::size_t cap,
                                   const Bytes& target) {
  switch (attack) {
    case GkAttack::kAbortAt1:
      return adversary::gk_rule_abort_at(1);
    case GkAttack::kAbortMid:
      return adversary::gk_rule_abort_at(std::max<std::size_t>(1, cap / 2));
    case GkAttack::kGeometric:
      return adversary::gk_rule_geometric(1.0 / static_cast<double>(p));
    case GkAttack::kMatchTarget:
      return adversary::gk_rule_match_target(target);
    case GkAttack::kRepeatDetector:
      return adversary::gk_rule_repeat_detector();
  }
  return adversary::gk_rule_abort_at(1);
}
}  // namespace

rpd::SetupFactory gk_multi_attack(std::size_t n, std::size_t t, std::size_t p,
                                  GkAttack attack) {
  return [n, t, p, attack](Rng& rng) {
    rpd::RunSetup s;
    auto notes = std::make_shared<mpc::Notes>();
    const fair::GkMultiParams params = fair::make_gk_multi_and_params(n, p);
    const auto xs = params.sample_inputs(rng);
    s.parties = fair::make_gk_multi_parties(params, xs, rng);
    s.functionality = std::make_unique<fair::MultiShareGenFunc>(params, notes);
    // The coalition's best output guess: evaluate f on its own inputs and a
    // random completion.
    auto guess_inputs = params.sample_inputs(rng);
    for (std::size_t i = 0; i < t; ++i) guess_inputs[i] = xs[i];
    const Bytes target = params.spec.eval(guess_inputs);
    s.adversary = std::make_unique<adversary::GkMultiAborter>(
        prefix_set(t), n, gk_rule_for(attack, p, params.cap(), target), notes);
    s.engine.max_rounds = static_cast<int>(params.cap() + 10);
    rpd::notes_switch_round_mapping(notes).install(s);
    return s;
  };
}

std::vector<rpd::NamedAttack> gk_multi_attack_family(std::size_t n, std::size_t t,
                                                     std::size_t p) {
  return {
      {"abort@1", gk_multi_attack(n, t, p, GkAttack::kAbortAt1)},
      {"geometric(1/p)", gk_multi_attack(n, t, p, GkAttack::kGeometric)},
      {"match-target", gk_multi_attack(n, t, p, GkAttack::kMatchTarget)},
      {"repeat-detector", gk_multi_attack(n, t, p, GkAttack::kRepeatDetector)},
  };
}

// --------------------------------------------------- 1/p round-sampling (E21)

rpd::SetupFactory partial_1p_attack(const fair::Partial1pParams& params,
                                    Partial1pAttack attack) {
  return [params, attack](Rng& rng) {
    rpd::RunSetup s;
    auto notes = std::make_shared<mpc::Notes>();
    const Bytes x0 = params.sample_x1(rng);
    const Bytes x1 = params.sample_x2(rng);
    s.parties = fair::make_partial_1p_parties(params, x0, x1, rng);
    s.functionality = std::make_unique<fair::Partial1pShareGenFunc>(params, notes);

    adversary::Partial1pPolicy policy;
    switch (attack) {
      case Partial1pAttack::kAbortAt1:
        policy = adversary::partial_1p_policy_abort_at(1);
        break;
      case Partial1pAttack::kAbortMid:
        policy =
            adversary::partial_1p_policy_abort_at(std::max<std::size_t>(1, params.p / 2));
        break;
      case Partial1pAttack::kAbortAtP:
        policy = adversary::partial_1p_policy_abort_at(params.p);
        break;
      case Partial1pAttack::kMatchTarget: {
        // The adversary knows its own input x0 and guesses the peer's.
        const Bytes target = params.spec.eval({x0, params.sample_x2(rng)});
        policy = adversary::partial_1p_policy_match(target);
        break;
      }
      case Partial1pAttack::kHonest:
        policy = adversary::partial_1p_policy_honest();
        break;
    }
    s.adversary = std::make_unique<adversary::Partial1pAborter>(std::move(policy), notes);
    s.engine.max_rounds = static_cast<int>(params.rounds() + 10);
    // Same F^{f,$} accounting as GK: unfair exactly when the abort lands on
    // the uniform switch round i* — probability 1/p for every abort rule.
    rpd::notes_switch_round_mapping(notes).install(s);
    return s;
  };
}

std::vector<rpd::NamedAttack> partial_1p_attack_family(const fair::Partial1pParams& params) {
  return {
      {"abort@1", partial_1p_attack(params, Partial1pAttack::kAbortAt1)},
      {"abort@mid", partial_1p_attack(params, Partial1pAttack::kAbortMid)},
      {"abort@p", partial_1p_attack(params, Partial1pAttack::kAbortAtP)},
      {"match-target", partial_1p_attack(params, Partial1pAttack::kMatchTarget)},
      {"honest", partial_1p_attack(params, Partial1pAttack::kHonest)},
  };
}

// ------------------------------------------------ deposit-based exchange (E22)

rpd::SetupFactory penalty_attack(adversary::PenaltyMode mode) {
  return [mode](Rng& rng) {
    rpd::RunSetup s;
    auto notes = std::make_shared<mpc::Notes>();
    const auto xs = random_inputs(2, rng);
    s.parties = fair::make_penalty_parties(xs[0], xs[1]);
    s.functionality =
        std::make_unique<fair::EscrowFunc>(fair::make_penalty_params(two_party_spec()), notes);
    s.adversary = std::make_unique<adversary::PenaltyAdversary>(mode);
    s.engine.max_rounds = 16;
    // Monetary trail (deposit posted / withheld after learning) flows from
    // the escrow's notes into RunOutcome for rpd::CollateralModel scoring.
    rpd::notes_collateral_mapping(notes).install(s);
    return s;
  };
}

std::vector<rpd::NamedAttack> penalty_attack_family() {
  return {
      {"withhold-claim", penalty_attack(adversary::PenaltyMode::kWithholdClaim)},
      {"no-show", penalty_attack(adversary::PenaltyMode::kNoShow)},
      {"honest", penalty_attack(adversary::PenaltyMode::kHonest)},
  };
}

// ------------------------------------------------- full-security wrapper (zoo)

rpd::SetupFactory full_security_dummy2(sim::PartyId corrupt) {
  return [corrupt](Rng& rng) {
    rpd::RunSetup s;
    const mpc::SfeSpec spec = two_party_spec();
    const auto xs = random_inputs(2, rng);
    s.parties = fair::wrap_full_security(fair::make_dummy_parties(xs), spec, xs);
    s.functionality = std::make_unique<mpc::SfeFunc>(spec, mpc::SfeMode::kFair);
    s.adversary = std::make_unique<LockAbortAdversary>(std::set<sim::PartyId>{corrupt},
                                                       xs[0] + xs[1]);
    s.engine.max_rounds = 8;
    return s;
  };
}

rpd::SetupFactory full_security_dummy2_gate(sim::PartyId corrupt) {
  return [corrupt](Rng& rng) {
    rpd::RunSetup s;
    const mpc::SfeSpec spec = two_party_spec();
    const auto xs = random_inputs(2, rng);
    s.parties = fair::wrap_full_security(fair::make_dummy_parties(xs), spec, xs);
    s.functionality = std::make_unique<mpc::SfeFunc>(spec, mpc::SfeMode::kFair);
    s.adversary = std::make_unique<AbortFunctionality>(std::set<sim::PartyId>{corrupt});
    s.engine.max_rounds = 8;
    return s;
  };
}

std::vector<rpd::NamedAttack> full_security_attack_family() {
  return {
      {"lock-abort(p1)", full_security_dummy2(0)},
      {"lock-abort(p2)", full_security_dummy2(1)},
      {"abort-gate", full_security_dummy2_gate(0)},
  };
}

std::vector<rpd::NamedAttack> gk_attack_family(const fair::GkParams& params) {
  return {
      {"abort@1", gk_attack(params, GkAttack::kAbortAt1)},
      {"abort@mid", gk_attack(params, GkAttack::kAbortMid)},
      {"geometric(1/p)", gk_attack(params, GkAttack::kGeometric)},
      {"match-target", gk_attack(params, GkAttack::kMatchTarget)},
      {"repeat-detector", gk_attack(params, GkAttack::kRepeatDetector)},
  };
}

GmwHonestPair gmw_honest_pair(std::shared_ptr<const mpc::GmwConfig> cfg,
                              mpc::CrashScheduleFn crashes) {
  GmwHonestPair pair;
  pair.parties = cfg->circuit.num_parties();
  // ONE input drawer shared by both paths: the scalar factory and the sliced
  // runner must consume the setup stream identically for bit-identity.
  mpc::SlicedGmwRunner::InputsFn draw = [cfg](Rng& rng) {
    std::vector<std::vector<bool>> inputs;
    for (std::size_t p = 0; p < cfg->circuit.num_parties(); ++p) {
      const std::size_t width = cfg->circuit.input_width(p);
      const Bytes x = rng.bytes((width + 7) / 8);
      inputs.push_back(circuit::bytes_to_bits(x, width));
    }
    return inputs;
  };
  pair.factory = [cfg, draw, crashes](Rng& rng) {
    rpd::RunSetup s;
    const auto inputs = draw(rng);
    s.parties = mpc::make_gmw_parties(cfg, inputs, rng);
    s.functionality = mpc::make_gmw_functionality(*cfg);
    // The tape binder needs the unwrapped GmwParty pointers, so build it
    // before any crash wrapping.
    auto tape_bind = mpc::make_gmw_run_binder(s.parties);
    if (!crashes) {
      s.bind_run = std::move(tape_bind);
    } else {
      std::vector<mpc::CrashAtParty*> wrapped;
      wrapped.reserve(s.parties.size());
      for (auto& p : s.parties) {
        auto w = std::make_unique<mpc::CrashAtParty>(std::move(p));
        wrapped.push_back(w.get());
        p = std::move(w);
      }
      // Raw pointers stay valid: bind_run fires before the engine starts and
      // the wrappers are heap-stable under vector moves.
      s.bind_run = [tape_bind = std::move(tape_bind), wrapped, crashes,
                    cfg](std::size_t i) {
        if (tape_bind) tape_bind(i);
        if (const auto cp = crashes(i)) {
          wrapped[cp->party]->set_crash_round(mpc::crash_round_of(*cfg, cp->layer));
        }
      };
    }
    s.engine.max_rounds = 256;
    return s;
  };
  auto runner = std::make_shared<mpc::SlicedGmwRunner>(cfg, draw, crashes);
  pair.sliced = [runner](std::size_t lo, std::size_t count, std::uint64_t seed,
                         std::span<sim::ExecutionResult> out) {
    runner->run_batch(lo, count, seed, out);
  };
  return pair;
}

// The manifest that populates Registry::instance(): every scenario
// translation unit under scenarios/ hooks in here (see
// scenarios/scenarios.h for the E19 recipe). An explicit call list — rather
// than static-initializer self-registration — keeps the scenarios alive
// inside a static library, where the linker would otherwise drop
// translation units nothing references.
void register_builtin_scenarios(Registry& r) {
  register_exp01(r);
  register_exp02(r);
  register_exp03(r);
  register_exp04(r);
  register_exp05(r);
  register_exp06(r);
  register_exp07(r);
  register_exp08(r);
  register_exp09(r);
  register_exp10(r);
  register_exp11(r);
  register_exp12(r);
  register_exp13(r);
  register_exp14(r);
  register_exp15(r);
  register_exp16(r);
  register_exp17(r);
  register_exp18(r);
  register_exp19(r);
  register_exp20(r);
  register_exp21(r);
  register_exp22(r);
}

}  // namespace fairsfe::experiments
