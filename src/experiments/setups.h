// Ready-made experiment setups: protocol × attack-strategy factories for the
// Monte-Carlo utility estimator. Shared by the test suite and the bench
// harnesses so that both measure exactly the same configurations.
//
// Every factory draws fresh random inputs per run (uniform, so they differ
// from the all-zero default inputs almost surely), builds the protocol
// bundle and the adversary, and installs the event-classification
// predicates. See DESIGN.md §4 for the classification semantics.
#pragma once

#include <string>

#include "adversary/penalty_attack.h"
#include "fair/contract.h"
#include "fair/gk.h"
#include "fair/mixed.h"
#include "fair/partial_1p.h"
#include "fair/penalty.h"
#include "mpc/gmw_sliced.h"
#include "rpd/fairness_relation.h"

namespace fairsfe::experiments {

// ---------------------------------------------------------------- two-party

/// Π₁/Π₂ under the lock-abort adversary corrupting `corrupt` (E01).
rpd::SetupFactory contract_attack(fair::ContractVariant variant, sim::PartyId corrupt);

/// ΠOpt2SFE (on the two-party concat ≅ swap function) under:
rpd::SetupFactory opt2_lock_abort(sim::PartyId corrupt);  ///< A₁ / A₂
rpd::SetupFactory opt2_agen();                            ///< Agen (Theorem 4)
rpd::SetupFactory opt2_abort_phase1();                    ///< gate abort (E01 path)
rpd::SetupFactory opt2_passive();                         ///< run to completion
rpd::SetupFactory opt2_no_corruption();
rpd::SetupFactory opt2_corrupt_all();

/// Strict-correctness variants for the fault-tolerance experiment (E18):
/// same protocol and lock-abort attack as above, but the j-bit demands every
/// honest output equal the true y = f(x1, x2) — a default-input fallback or
/// garbled reconstruction no longer counts as "honest got output". The round
/// budget accommodates fault-induced stalls (max_rounds = 64) and the share
/// functionality waits out late inputs (patience), so crash-restarted or
/// delay-hit parties can still join phase 1.
rpd::SetupFactory opt2_lock_abort_strict(sim::PartyId corrupt);
rpd::SetupFactory contract_attack_strict(fair::ContractVariant variant,
                                         sim::PartyId corrupt);

/// The two-party dummy protocol Φ^Fsfe under lock-abort / gate-abort.
rpd::SetupFactory dummy2_lock_abort(sim::PartyId corrupt);
rpd::SetupFactory dummy2_abort_gate(sim::PartyId corrupt);

/// The canonical attack family against a two-party protocol (used for the
/// sup over adversaries in the fairness relation).
std::vector<rpd::NamedAttack> two_party_attack_family(
    const std::function<rpd::SetupFactory(sim::PartyId)>& lock_abort_for);

// --------------------------------------------------------------- multi-party

/// ΠOptnSFE (n-party concat) under a lock-abort t-coalition {0..t-1}.
rpd::SetupFactory optn_lock_abort(std::size_t n, std::size_t t);
/// Lemma 13's mixed adversary: corrupt all but one party, chosen at random.
rpd::SetupFactory optn_a_ibar_mixed(std::size_t n);
/// Phase-1 gate abort (multi-party: honest parties end with ⊥, event E00).
rpd::SetupFactory optn_abort_phase1(std::size_t n, std::size_t t);
/// Passive full run with a t-coalition.
rpd::SetupFactory optn_passive(std::size_t n, std::size_t t);

/// Π½GMW under the Lemma 17 coalition attack with t parties.
rpd::SetupFactory half_gmw_coalition(std::size_t n, std::size_t t);
/// Π½GMW under lock-abort (sanity: single probes cannot reconstruct).
rpd::SetupFactory half_gmw_lock_abort(std::size_t n, std::size_t t);

/// Lemma 18 protocol: the single-corruption deviator and the standard
/// t-coalition lock-abort.
rpd::SetupFactory lemma18_deviator(std::size_t n);
rpd::SetupFactory lemma18_lock_abort(std::size_t n, std::size_t t);

/// Π′ (mixed protocol) under the coalition/lock-abort attack matching its
/// branch (used for the balance-vs-optimality separation, E08).
rpd::SetupFactory mixed_best_attack(std::size_t n, std::size_t t);

/// n-party dummy protocol Φ^Fsfe attacks (ideal benchmark s(t), E09).
rpd::SetupFactory dummyn_lock_abort(std::size_t n, std::size_t t);
rpd::SetupFactory dummyn_abort_gate(std::size_t n, std::size_t t);

/// Attack family per corruption budget t for a given protocol kind, used by
/// the balance profiles of E06-E09.
enum class NPartyProtocol { kOptN, kHalfGmw, kLemma18, kMixed, kDummy };
std::vector<rpd::NamedAttack> nparty_attack_family(NPartyProtocol protocol, std::size_t n,
                                                   std::size_t t);

// ---------------------------------------------------------------- GK / Π̃

/// GK protocol runs under the named abort rule. `rule_target_real_y`: the
/// match-target rule aims at the actual y (legitimately computable by the
/// adversary from x1 for AND-like functions).
enum class GkAttack { kAbortAt1, kAbortMid, kGeometric, kMatchTarget, kRepeatDetector };
rpd::SetupFactory gk_attack(const fair::GkParams& params, GkAttack attack);

/// All GK attack strategies as a named family.
std::vector<rpd::NamedAttack> gk_attack_family(const fair::GkParams& params);

/// Multi-party partial fairness (Beimel et al., E16): a t-coalition running
/// the named abort rule against the n-party GK protocol.
rpd::SetupFactory gk_multi_attack(std::size_t n, std::size_t t, std::size_t p,
                                  GkAttack attack);
std::vector<rpd::NamedAttack> gk_multi_attack_family(std::size_t n, std::size_t t,
                                                     std::size_t p);

// --------------------------------------------------- 1/p round-sampling (E21)

/// Round-sampling 1/p protocol runs under the named rushing-abort policy.
/// kMatchTarget aims at the adversary's best output guess (its own input plus
/// a random peer completion), mirroring GkAttack::kMatchTarget.
enum class Partial1pAttack { kAbortAt1, kAbortMid, kAbortAtP, kMatchTarget, kHonest };
rpd::SetupFactory partial_1p_attack(const fair::Partial1pParams& params,
                                    Partial1pAttack attack);

/// All round-sampling attack strategies as a named family.
std::vector<rpd::NamedAttack> partial_1p_attack_family(const fair::Partial1pParams& params);

// ------------------------------------------------ deposit-based exchange (E22)

/// Escrowed exchange under the named deposit-game strategy. The monetary
/// trail lands in mpc::Notes and is scored by rpd::CollateralModel — the
/// same factory serves every deposit level in the E22 sweep.
rpd::SetupFactory penalty_attack(adversary::PenaltyMode mode);

/// {withhold-claim, no-show, honest} as a named family.
std::vector<rpd::NamedAttack> penalty_attack_family();

// ------------------------------------------------- full-security wrapper (zoo)

/// FullSec(Φ): the two-party dummy protocol behind the CHOR-style
/// guaranteed-output wrapper (fair/full_security.h), under lock-abort /
/// gate-abort. The honest side always terminates with output, so the abort
/// events collapse to E11/E01 — strictly better for the honest party.
rpd::SetupFactory full_security_dummy2(sim::PartyId corrupt);
rpd::SetupFactory full_security_dummy2_gate(sim::PartyId corrupt);
std::vector<rpd::NamedAttack> full_security_attack_family();

// ------------------------------------------------------- bit-sliced twins

/// Scalar + bit-sliced twin pair over honest GMW runs of one circuit,
/// optionally with a deterministic per-run crash schedule (DESIGN.md §11).
/// Both members derive identical per-run randomness from the estimator's
/// (seed, run index) contract, so their estimates agree bit-for-bit:
/// `factory` drives the real engine (crashes via mpc::CrashAtParty, peers
/// abort to all-⊥), `sliced` the word-parallel runner (crashes via lane
/// masking). Wire them into an rpd::EstimationTarget or a ScenarioSpec's
/// attacks.front() + sliced slots.
struct GmwHonestPair {
  rpd::SetupFactory factory;
  rpd::SlicedBatchFn sliced;
  std::size_t parties = 0;
};
GmwHonestPair gmw_honest_pair(std::shared_ptr<const mpc::GmwConfig> cfg,
                              mpc::CrashScheduleFn crashes = nullptr);

// ---------------------------------------------------------- misc helpers

/// The standard two-party spec used across experiments: 8-byte concat.
mpc::SfeSpec two_party_spec();
/// The n-party spec: 8-byte-each concat (Lemma 12's function).
mpc::SfeSpec nparty_spec(std::size_t n);
/// Draw uniform inputs for a spec (8 bytes each).
std::vector<Bytes> random_inputs(std::size_t n, Rng& rng);

}  // namespace fairsfe::experiments
