#include "fair/coinflip.h"

#include "util/check.h"

namespace fairsfe::fair {

using sim::Message;
using sim::MsgView;

namespace {
constexpr std::uint8_t kTagCoinCommit = 90;
constexpr std::uint8_t kTagCoinOpen = 91;

Bytes enc_coin_commit(ByteView com) {
  Writer w;
  w.u8(kTagCoinCommit).blob(com);
  return w.take();
}

std::optional<Bytes> dec_coin_commit(ByteView payload) {
  Reader r(payload);
  const auto tag = r.u8();
  if (!tag || *tag != kTagCoinCommit) return std::nullopt;
  const auto com = r.blob();
  if (!com || !r.at_end()) return std::nullopt;
  return com;
}

Bytes enc_coin_open(bool bit, ByteView opening) {
  Writer w;
  w.u8(kTagCoinOpen).u8(bit ? 1 : 0).blob(opening);
  return w.take();
}

std::optional<std::pair<bool, Bytes>> dec_coin_open(ByteView payload) {
  Reader r(payload);
  const auto tag = r.u8();
  if (!tag || *tag != kTagCoinOpen) return std::nullopt;
  const auto bit = r.u8();
  const auto opening = r.blob();
  if (!bit || !opening || !r.at_end()) return std::nullopt;
  return std::make_pair(*bit != 0, *opening);
}
}  // namespace

CoinFlipParty::CoinFlipParty(sim::PartyId id, std::size_t rounds, Rng rng)
    : PartyBase(id), rounds_(rounds), rng_(std::move(rng)) {
  FAIRSFE_CHECK(rounds_ % 2 == 1, "coinflip: round count must be odd");
}

void CoinFlipParty::finish_majority() {
  std::size_t ones = 0;
  for (const bool f : flips_) ones += f ? 1 : 0;
  // Cleve's model: always output a bit — missing flips become private coins.
  for (std::size_t f = flips_.size(); f < rounds_; ++f) ones += rng_.bit() ? 1 : 0;
  finish(Bytes{static_cast<std::uint8_t>(2 * ones > rounds_ ? 1 : 0)});
}

std::vector<Message> CoinFlipParty::on_round(int /*round*/, MsgView in) {
  switch (step_) {
    case Step::kCommit: {
      if (k_ > flips_.size()) {
        // The peer's opening of the previous flip is due now.
        const Message* om = first_from(in, 1 - id_);
        const auto open = om ? dec_coin_open(om->payload) : std::nullopt;
        const bool valid = open && commit_verify(peer_commitment_,
                                                 Bytes{static_cast<std::uint8_t>(
                                                     open->first ? 1 : 0)},
                                                 open->second);
        if (!valid) {
          finish_majority();
          return {};
        }
        flips_.push_back(my_bit_ != open->first);
      }
      if (flips_.size() == rounds_) {
        finish_majority();  // all flips completed honestly
        return {};
      }
      my_bit_ = rng_.bit();
      my_commitment_ = commit(Bytes{static_cast<std::uint8_t>(my_bit_ ? 1 : 0)}, rng_);
      ++k_;
      step_ = Step::kOpen;
      return {Message{id_, 1 - id_, enc_coin_commit(my_commitment_.com)}};
    }
    case Step::kOpen: {
      const Message* cm = first_from(in, 1 - id_);
      const auto com = cm ? dec_coin_commit(cm->payload) : std::nullopt;
      if (!com) {
        finish_majority();
        return {};
      }
      peer_commitment_ = *com;
      step_ = Step::kCommit;
      return {Message{id_, 1 - id_, enc_coin_open(my_bit_, my_commitment_.opening)}};
    }
    case Step::kDone:
      return {};
  }
  return {};
}

void CoinFlipParty::on_abort() {
  if (!done()) finish_majority();
}

std::vector<std::unique_ptr<sim::IParty>> make_coinflip_parties(std::size_t rounds,
                                                                Rng& rng) {
  std::vector<std::unique_ptr<sim::IParty>> parties;
  parties.push_back(std::make_unique<CoinFlipParty>(0, rounds, rng.fork("coin-p0")));
  parties.push_back(std::make_unique<CoinFlipParty>(1, rounds, rng.fork("coin-p1")));
  return parties;
}

CoinBiasAdversary::CoinBiasAdversary(sim::PartyId corrupt, bool target, bool eager)
    : pid_(corrupt), target_(target), eager_(eager) {}

void CoinBiasAdversary::setup(sim::AdvContext& ctx) { ctx.corrupt(pid_); }

std::vector<Message> CoinBiasAdversary::on_round(sim::AdvContext& ctx,
                                                 const sim::AdvView& view) {
  if (aborted_) return {};
  std::vector<Message> out = ctx.honest_step(pid_, addressed_to(view.delivered, pid_));

  // Are we about to release an opening? If so, rush: read the honest opening
  // of the same flip first and decide.
  bool releasing_opening = false;
  for (const Message& m : out) {
    if (dec_coin_open(m.payload)) releasing_opening = true;
  }
  if (!releasing_opening) return out;

  std::optional<bool> peer_bit;
  for (const Message& m : view.rushed) {
    const auto open = dec_coin_open(m.payload);
    if (open) peer_bit = open->first;
  }
  if (!peer_bit) return out;  // honest opening not visible (yet): play on

  const auto& party = dynamic_cast<const CoinFlipParty&>(ctx.party(pid_));
  const bool outcome = party.my_bit() != *peer_bit;
  if (outcome == target_) return out;

  if (eager_) {
    aborted_ = true;
    return {};
  }
  // Tally rule: keep playing while we are ahead; abort once a bad flip would
  // erase the lead.
  int lead = 0;
  for (const bool f : party.flips()) lead += (f == target_) ? 1 : -1;
  if (lead <= 0) {
    aborted_ = true;
    return {};
  }
  return out;
}

}  // namespace fairsfe::fair
