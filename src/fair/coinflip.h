// Collective coin flipping — the problem behind Cleve's impossibility
// theorem (STOC'86, the paper's starting point [10]).
//
// The protocol runs r sequential Blum flips: per flip both parties commit to
// a random bit, then open simultaneously; the flip outcome is the XOR. The
// final output is the majority of the r flips (r odd). In Cleve's model an
// honest party must always output *some* bit, so on any deviation it
// replaces the current and all remaining flips with fresh private coins and
// outputs the majority.
//
// A rushing adversary reads the honest opening before releasing its own and
// can abort whenever the flip displeases it, converting that flip (and the
// rest) into uniform noise. Cleve: some party can always bias the outcome by
// Ω(1/r); the classic single-flip bias is exactly 1/4, decaying roughly like
// 1/√r for the majority protocol. Experiment E17 measures the decay.
#pragma once

#include <memory>
#include <vector>

#include "crypto/commitment.h"
#include "crypto/rng.h"
#include "sim/adversary.h"
#include "sim/party.h"

namespace fairsfe::fair {

class CoinFlipParty final : public sim::PartyBase<CoinFlipParty> {
 public:
  /// `rounds` must be odd (majority of r flips).
  CoinFlipParty(sim::PartyId id, std::size_t rounds, Rng rng);

  std::vector<sim::Message> on_round(int round, sim::MsgView in) override;
  void on_abort() override;

  // Adversary-visible state (the adversary owns corrupted parties).
  [[nodiscard]] std::size_t flip_index() const { return k_; }
  [[nodiscard]] const std::vector<bool>& flips() const { return flips_; }
  [[nodiscard]] bool my_bit() const { return my_bit_; }

 private:
  enum class Step { kCommit, kOpen, kDone };

  /// Majority over completed flips + private coins for the missing ones.
  void finish_majority();

  std::size_t rounds_;
  Rng rng_;

  Step step_ = Step::kCommit;
  std::size_t k_ = 0;  // current flip
  bool my_bit_ = false;
  Commitment my_commitment_;
  Bytes peer_commitment_;
  std::vector<bool> flips_;
};

std::vector<std::unique_ptr<sim::IParty>> make_coinflip_parties(std::size_t rounds,
                                                                Rng& rng);

/// Greedy bias attack: corrupt one party, rush every opening, withhold the
/// moment the flip outcome (or the projected majority) disfavors `target`.
/// `eager` aborts on the first bad flip; otherwise the rule aborts only when
/// the running tally would fall behind.
class CoinBiasAdversary final : public sim::IAdversary {
 public:
  CoinBiasAdversary(sim::PartyId corrupt, bool target, bool eager);

  void setup(sim::AdvContext& ctx) override;
  std::vector<sim::Message> on_round(sim::AdvContext& ctx,
                                     const sim::AdvView& view) override;
  [[nodiscard]] bool learned_output() const override { return false; }

 private:
  sim::PartyId pid_;
  bool target_;
  bool eager_;
  bool aborted_ = false;
};

}  // namespace fairsfe::fair
