#include "fair/contract.h"

#include "crypto/commitment.h"

namespace fairsfe::fair {

namespace {

using sim::Message;
using sim::MsgView;

constexpr std::uint8_t kTagCommit = 1;
constexpr std::uint8_t kTagCoinCommit = 2;
constexpr std::uint8_t kTagCoinOpen = 3;
constexpr std::uint8_t kTagOpen = 4;

Bytes enc_commit(std::uint8_t tag, ByteView com) {
  Writer w;
  w.u8(tag).blob(com);
  return w.take();
}

Bytes enc_open(std::uint8_t tag, ByteView msg, ByteView opening) {
  Writer w;
  w.u8(tag).blob(msg).blob(opening);
  return w.take();
}

struct Opened {
  Bytes msg;
  Bytes opening;
};

std::optional<Bytes> find_tagged(MsgView in, sim::PartyId from,
                                 std::uint8_t tag) {
  for (const Message& m : in) {
    if (m.from != from) continue;
    Reader r(m.payload);
    const auto t = r.u8();
    if (t && *t == tag) return m.payload;
  }
  return std::nullopt;
}

std::optional<Bytes> read_commit(const Bytes& payload) {
  Reader r(payload);
  r.u8();
  const auto com = r.blob();
  if (!com || !r.at_end()) return std::nullopt;
  return com;
}

std::optional<Opened> read_open(const Bytes& payload) {
  Reader r(payload);
  r.u8();
  const auto msg = r.blob();
  const auto opening = r.blob();
  if (!msg || !opening || !r.at_end()) return std::nullopt;
  return Opened{*msg, *opening};
}

// Shared machinery of Π₁/Π₂. The state machine is driven by call count, not
// absolute engine rounds, so clones probed by the adversary behave correctly.
class ContractParty final : public sim::PartyBase<ContractParty> {
 public:
  ContractParty(sim::PartyId id, ContractVariant variant, Bytes contract, Rng rng)
      : PartyBase(id),
        variant_(variant),
        contract_(std::move(contract)),
        rng_(std::move(rng)) {}

  std::vector<Message> on_round(int /*round*/, MsgView in) override {
    switch (step_) {
      case Step::kSendCommit: {
        my_commit_ = commit(contract_, rng_);
        std::vector<Message> out;
        out.push_back(Message{id_, peer(), enc_commit(kTagCommit, my_commit_.com)});
        if (variant_ == ContractVariant::kPi2) {
          coin_ = rng_.bit();
          Bytes bit{static_cast<std::uint8_t>(coin_ ? 1 : 0)};
          my_coin_commit_ = commit(bit, rng_);
          out.push_back(Message{id_, peer(), enc_commit(kTagCoinCommit, my_coin_commit_.com)});
        }
        step_ = Step::kAwaitCommit;
        return out;
      }
      case Step::kAwaitCommit: {
        const auto c = find_tagged(in, peer(), kTagCommit);
        const auto com = c ? read_commit(*c) : std::nullopt;
        if (!com) {
          finish_bot();
          return {};
        }
        peer_commit_ = *com;
        if (variant_ == ContractVariant::kPi2) {
          const auto cc = find_tagged(in, peer(), kTagCoinCommit);
          const auto ccom = cc ? read_commit(*cc) : std::nullopt;
          if (!ccom) {
            finish_bot();
            return {};
          }
          peer_coin_commit_ = *ccom;
          // Single simultaneous round of coin openings.
          step_ = Step::kAwaitCoinOpen;
          Bytes bit{static_cast<std::uint8_t>(coin_ ? 1 : 0)};
          return {Message{id_, peer(),
                          enc_open(kTagCoinOpen, bit, my_coin_commit_.opening)}};
        }
        // Π₁: p0 opens first.
        if (id_ == 0) {
          step_ = Step::kIdleBeforeFinal;
          return {Message{id_, peer(), enc_open(kTagOpen, contract_, my_commit_.opening)}};
        }
        step_ = Step::kAwaitFirstOpen;
        return {};
      }
      case Step::kAwaitCoinOpen: {
        const auto o = find_tagged(in, peer(), kTagCoinOpen);
        const auto opened = o ? read_open(*o) : std::nullopt;
        if (!opened || opened->msg.size() != 1 ||
            !commit_verify(peer_coin_commit_, opened->msg, opened->opening)) {
          finish_bot();
          return {};
        }
        const bool peer_coin = opened->msg[0] != 0;
        const bool b = coin_ != peer_coin;
        // b selects the first opener: party 0 if b == false, party 1 if true.
        first_opener_ = b ? 1 : 0;
        if (id_ == first_opener_) {
          step_ = Step::kIdleBeforeFinal;
          return {Message{id_, peer(), enc_open(kTagOpen, contract_, my_commit_.opening)}};
        }
        step_ = Step::kAwaitFirstOpen;
        return {};
      }
      case Step::kIdleBeforeFinal: {
        // The peer is processing my opening this round; its reply arrives next
        // round (or this one, if it rushed).
        if (const auto o = find_tagged(in, peer(), kTagOpen)) {
          const auto opened = read_open(*o);
          if (opened && commit_verify(peer_commit_, opened->msg, opened->opening)) {
            finish(result(opened->msg));
          } else {
            finish_bot();
          }
          return {};
        }
        step_ = Step::kAwaitFinalOpen;
        return {};
      }
      case Step::kAwaitFirstOpen: {
        // I open second: receive the peer's contract, then reveal mine.
        const auto o = find_tagged(in, peer(), kTagOpen);
        const auto opened = o ? read_open(*o) : std::nullopt;
        if (!opened || !commit_verify(peer_commit_, opened->msg, opened->opening)) {
          finish_bot();
          return {};
        }
        peer_contract_ = opened->msg;
        std::vector<Message> out;
        out.push_back(Message{id_, peer(), enc_open(kTagOpen, contract_, my_commit_.opening)});
        finish(result(*peer_contract_));
        return out;
      }
      case Step::kAwaitFinalOpen: {
        const auto o = find_tagged(in, peer(), kTagOpen);
        const auto opened = o ? read_open(*o) : std::nullopt;
        if (!opened || !commit_verify(peer_commit_, opened->msg, opened->opening)) {
          finish_bot();  // opened my contract, got nothing back: unfair abort
          return {};
        }
        finish(result(opened->msg));
        return {};
      }
    }
    return {};
  }

  void on_abort() override {
    if (done()) return;
    if (peer_contract_) {
      finish(result(*peer_contract_));
    } else {
      finish_bot();
    }
  }

 private:
  enum class Step {
    kSendCommit,
    kAwaitCommit,
    kAwaitCoinOpen,
    kAwaitFirstOpen,
    kIdleBeforeFinal,
    kAwaitFinalOpen,
  };

  [[nodiscard]] sim::PartyId peer() const { return 1 - id_; }

  /// Output is x0 ‖ x1 regardless of which side we are.
  [[nodiscard]] Bytes result(const Bytes& peer_contract) const {
    return id_ == 0 ? contract_ + peer_contract : peer_contract + contract_;
  }

  ContractVariant variant_;
  Bytes contract_;
  Rng rng_;

  Step step_ = Step::kSendCommit;
  bool coin_ = false;
  sim::PartyId first_opener_ = 0;
  Commitment my_commit_;
  Commitment my_coin_commit_;
  Bytes peer_commit_;
  Bytes peer_coin_commit_;
  std::optional<Bytes> peer_contract_;
};

}  // namespace

std::vector<std::unique_ptr<sim::IParty>> make_contract_parties(ContractVariant variant,
                                                                const Bytes& x0,
                                                                const Bytes& x1, Rng& rng) {
  std::vector<std::unique_ptr<sim::IParty>> parties;
  parties.push_back(std::make_unique<ContractParty>(0, variant, x0, rng.fork("contract-p0")));
  parties.push_back(std::make_unique<ContractParty>(1, variant, x1, rng.fork("contract-p1")));
  return parties;
}

mpc::SfeSpec contract_spec(std::size_t contract_size) {
  return mpc::make_concat_spec(2, contract_size);
}

}  // namespace fairsfe::fair
