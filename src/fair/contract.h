// The two contract-signing protocols of the paper's introduction.
//
// Both compute the exchange f(x1, x2) = x1 ‖ x2 of the parties' (signed)
// contracts over commitments:
//
//   Π₁ — commit-then-open, fixed order: parties exchange commitments, then
//        p1 opens, then p2 opens. The party opening second can always take
//        the other's contract and abort — the best attacker gets γ10 with
//        probability 1.
//   Π₂ — like Π₁, but a Blum coin toss (commit/open of random bits, XOR)
//        decides who opens first. The cheating window halves: the best
//        attacker gets (γ10 + γ11)/2.
//
// These are the protocols the comparative fairness relation is motivated
// with: Π₂ ≻γ Π₁ ("twice as fair"). Experiment E01.
#pragma once

#include <memory>
#include <vector>

#include "crypto/rng.h"
#include "mpc/sfe_functionalities.h"
#include "sim/party.h"

namespace fairsfe::fair {

enum class ContractVariant { kPi1, kPi2 };

/// Build the two parties of Π₁/Π₂ for contracts x0, x1 (fixed width).
std::vector<std::unique_ptr<sim::IParty>> make_contract_parties(ContractVariant variant,
                                                                const Bytes& x0,
                                                                const Bytes& x1, Rng& rng);

/// The function both protocols evaluate: concat of the two contracts.
mpc::SfeSpec contract_spec(std::size_t contract_size);

}  // namespace fairsfe::fair
