#include "fair/dummy_ideal.h"

namespace fairsfe::fair {

using sim::Message;
using sim::MsgView;

DummyIdealParty::DummyIdealParty(sim::PartyId id, Bytes input)
    : PartyBase(id), input_(std::move(input)) {}

std::vector<Message> DummyIdealParty::on_round(int /*round*/,
                                               MsgView in) {
  if (!sent_) {
    sent_ = true;
    return {Message{id_, sim::kFunc, sim::encode_func_input(input_)}};
  }
  const Message* fm = first_from(in, sim::kFunc);
  if (fm == nullptr) return {};
  const auto y = sim::decode_func_output(fm->payload);
  if (y) {
    finish(*y);
  } else {
    finish_bot();
  }
  return {};
}

void DummyIdealParty::on_abort() {
  if (!done()) finish_bot();
}

std::vector<std::unique_ptr<sim::IParty>> make_dummy_parties(const std::vector<Bytes>& inputs) {
  std::vector<std::unique_ptr<sim::IParty>> parties;
  parties.reserve(inputs.size());
  for (std::size_t p = 0; p < inputs.size(); ++p) {
    parties.push_back(
        std::make_unique<DummyIdealParty>(static_cast<sim::PartyId>(p), inputs[p]));
  }
  return parties;
}

}  // namespace fairsfe::fair
