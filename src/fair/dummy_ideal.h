// Φ^Fsfe — the dummy protocol in the fully fair Fsfe-hybrid model
// (Definition 19 and Appendix B.2).
//
// Parties forward their inputs to the fair functionality and output whatever
// it returns. Against Φ the best t-adversary (0 < t < n) gets
// max(γ00, γ11): abort before anything is computed (E00) or let the
// evaluation complete (E11). Φ is the benchmark for "ideal γ^C-fairness".
#pragma once

#include <memory>
#include <vector>

#include "crypto/rng.h"
#include "mpc/sfe_functionalities.h"
#include "sim/party.h"

namespace fairsfe::fair {

class DummyIdealParty final : public sim::PartyBase<DummyIdealParty> {
 public:
  DummyIdealParty(sim::PartyId id, Bytes input);

  std::vector<sim::Message> on_round(int round, sim::MsgView in) override;
  void on_abort() override;

 private:
  Bytes input_;
  bool sent_ = false;
};

/// Build the dummy parties; pair with SfeFunc(spec, SfeMode::kFair).
std::vector<std::unique_ptr<sim::IParty>> make_dummy_parties(const std::vector<Bytes>& inputs);

}  // namespace fairsfe::fair
