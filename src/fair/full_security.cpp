#include "fair/full_security.h"

#include "util/check.h"

namespace fairsfe::fair {

std::vector<std::unique_ptr<sim::IParty>> wrap_full_security(
    std::vector<std::unique_ptr<sim::IParty>> parties, const mpc::SfeSpec& spec,
    const std::vector<Bytes>& inputs) {
  FAIRSFE_CHECK(parties.size() == inputs.size(),
                "wrap_full_security: one input per party required");
  for (auto& p : parties) {
    const auto idx = static_cast<std::size_t>(p->id());
    FAIRSFE_CHECK(idx < inputs.size(), "wrap_full_security: party id out of range");
    std::vector<Bytes> xs = spec.default_inputs;
    xs[idx] = inputs[idx];
    p = std::make_unique<FullSecurityParty>(std::move(p), spec.eval(xs));
  }
  return parties;
}

}  // namespace fairsfe::fair
