// Fairness → full security, after Cohen–Haitner–Omri–Rotem (PAPERS.md):
// a fair protocol (no party learns the output unless everyone can) is turned
// into a FULLY secure one (guaranteed output delivery) by eliminating the
// ⊥ outcome — whenever the fair subroutine ends in ⊥, the party falls back
// to a canonical default evaluation f(x_i, defaults) it can compute locally.
// Unfairness cannot be reintroduced: the wrapped run reaches "adversary
// learned, honest did not" only if the subroutine itself was unfair, so the
// wrapper's utility is bounded by the subroutine's. What changes is the
// failure mode — an abort now costs the adversary the E00/E01 events (the
// honest side always terminates WITH output), which is why the zoo orders
// FullSec(Φ) at least as fair as Φ under every ~γ ∈ Γfair with γ00 ≤ γ11.
//
// The wrapper is protocol-agnostic: it decorates any zoo member's IParty
// bundle (dummy/Opt2SFE/GK/partial-1p/...), forwarding rounds verbatim and
// rewriting only the final output. It is a sketch of the CHOR compiler, not
// a reproduction — the real transformation runs the fair protocol on a
// SHARED default-completion so all fallbacks agree; here each party falls
// back to f evaluated on its own input and the spec's default inputs, which
// coincides for the concat-style functions the zoo measures.
#pragma once

#include <memory>
#include <vector>

#include "mpc/sfe_functionalities.h"
#include "sim/party.h"

namespace fairsfe::fair {

/// Decorator turning a fair party into a guaranteed-output one: rounds and
/// abort handling are the inner party's, but a ⊥ output is replaced by the
/// precomputed fallback evaluation. Implements IParty directly (clone goes
/// through the inner party's clone).
class FullSecurityParty final : public sim::IParty {
 public:
  FullSecurityParty(std::unique_ptr<sim::IParty> inner, Bytes fallback)
      : inner_(std::move(inner)), fallback_(std::move(fallback)) {}

  std::vector<sim::Message> on_round(int round, sim::MsgView in) override {
    return inner_->on_round(round, in);
  }
  void on_abort() override { inner_->on_abort(); }
  [[nodiscard]] bool done() const override { return inner_->done(); }
  [[nodiscard]] std::optional<Bytes> output() const override {
    const auto out = inner_->output();
    return out ? out : std::optional<Bytes>(fallback_);
  }
  [[nodiscard]] std::unique_ptr<sim::IParty> clone() const override {
    return std::make_unique<FullSecurityParty>(inner_->clone(), fallback_);
  }
  [[nodiscard]] sim::PartyId id() const override { return inner_->id(); }

 private:
  std::unique_ptr<sim::IParty> inner_;
  Bytes fallback_;
};

/// Wrap every party of a fair protocol instance. `inputs[i]` is party i's
/// input; the fallback for party i is spec.eval(defaults with inputs[i] at
/// position i) — the output a guaranteed-delivery ideal world would hand it
/// when everyone else is replaced by defaults.
std::vector<std::unique_ptr<sim::IParty>> wrap_full_security(
    std::vector<std::unique_ptr<sim::IParty>> parties, const mpc::SfeSpec& spec,
    const std::vector<Bytes>& inputs);

}  // namespace fairsfe::fair
