#include "fair/gk.h"

#include "util/check.h"

namespace fairsfe::fair {

using sim::Message;
using sim::MsgView;

namespace {
constexpr std::uint8_t kTagGkOpening = 60;
}  // namespace

double GkParams::alpha() const {
  const double base = static_cast<double>(p) * static_cast<double>(domain_size);
  if (variant == Variant::kPolyRange) {
    return 1.0 / (static_cast<double>(p) * base);
  }
  return 1.0 / base;
}

std::size_t GkParams::cap() const {
  if (rounds != 0) return rounds;
  // Pr[i* > cap] = (1-α)^cap ≈ e^{-8}: negligible against 1/p for our sweeps.
  return static_cast<std::size_t>(8.0 / alpha()) + 1;
}

GkParams make_gk_and_params(std::size_t p) {
  GkParams params;
  params.spec = mpc::make_and_spec();
  params.p = p;
  params.variant = GkParams::Variant::kPolyDomain;
  params.sample_x1 = [](Rng& rng) { return Bytes{static_cast<std::uint8_t>(rng.bit())}; };
  params.sample_x2 = [](Rng& rng) { return Bytes{static_cast<std::uint8_t>(rng.bit())}; };
  params.domain_size = 2;
  return params;
}

Bytes encode_gk_opening(std::size_t j, ByteView opening) {
  Writer w;
  w.u8(kTagGkOpening).u32(static_cast<std::uint32_t>(j)).blob(opening);
  return w.take();
}

std::optional<std::pair<std::size_t, Bytes>> decode_gk_opening(ByteView payload) {
  Reader r(payload);
  const auto tag = r.u8();
  if (!tag || *tag != kTagGkOpening) return std::nullopt;
  const auto j = r.u32();
  const auto body = r.blob();
  if (!j || !body || !r.at_end()) return std::nullopt;
  return std::make_pair(static_cast<std::size_t>(*j), *body);
}

ShareGenFunc::ShareGenFunc(GkParams params, mpc::NotesPtr notes)
    : params_(std::move(params)), notes_(std::move(notes)) {}

std::vector<Message> ShareGenFunc::on_round(sim::FuncContext& ctx, int /*round*/,
                                            MsgView in) {
  if (fired_ || in.empty()) return {};
  fired_ = true;

  std::array<std::optional<Bytes>, 2> inputs;
  for (const Message& m : in) {
    if (m.from != 0 && m.from != 1) continue;
    const auto x = sim::decode_func_input(m.payload);
    if (x && !inputs[static_cast<std::size_t>(m.from)]) {
      inputs[static_cast<std::size_t>(m.from)] = *x;
    }
  }

  std::vector<Message> out;
  if (!inputs[0] || !inputs[1]) {
    if (notes_) notes_->vals["phase1_aborted"] = 1;
    out.push_back(Message{sim::kFunc, 0, sim::encode_func_abort()});
    out.push_back(Message{sim::kFunc, 1, sim::encode_func_abort()});
    return out;
  }

  Rng& rng = ctx.rng();
  const Bytes y = params_.spec.eval({*inputs[0], *inputs[1]});

  // i* ~ Geometric(alpha), truncated at the cap.
  const std::size_t cap = params_.cap();
  const double alpha = params_.alpha();
  std::size_t i_star = 1;
  while (i_star < cap && rng.uniform() >= alpha) ++i_star;
  if (notes_) {
    notes_->blobs["y"] = y;
    notes_->vals["i_star"] = i_star;
  }

  auto fake_a = [&]() {
    if (params_.variant == GkParams::Variant::kPolyRange) return params_.sample_range(rng);
    return params_.spec.eval({*inputs[0], params_.sample_x2(rng)});
  };
  auto fake_b = [&]() {
    if (params_.variant == GkParams::Variant::kPolyRange) return params_.sample_range(rng);
    return params_.spec.eval({params_.sample_x1(rng), *inputs[1]});
  };

  Writer w1, w2;
  w1.u32(static_cast<std::uint32_t>(cap)).blob(fake_a());  // a_0 fallback for p1
  w2.u32(static_cast<std::uint32_t>(cap)).blob(fake_b());  // b_0 fallback for p2
  for (std::size_t j = 1; j <= cap; ++j) {
    const Bytes a_j = (j < i_star) ? fake_a() : y;
    const Bytes b_j = (j < i_star) ? fake_b() : y;
    const AuthSharing2 sa = auth_share2(a_j, rng);
    const AuthSharing2 sb = auth_share2(b_j, rng);
    w1.blob(sa.share1.to_bytes()).blob(sb.share1.to_bytes());
    w2.blob(sa.share2.to_bytes()).blob(sb.share2.to_bytes());
  }

  std::vector<Message> deliveries = {
      Message{sim::kFunc, 0, sim::encode_func_output(w1.bytes())},
      Message{sim::kFunc, 1, sim::encode_func_output(w2.bytes())},
  };
  std::vector<Message> corrupted_outputs;
  for (const Message& m : deliveries) {
    if (ctx.corrupted().count(m.to)) corrupted_outputs.push_back(m);
  }
  const bool abort = ctx.adversary_abort_gate(corrupted_outputs);
  if (notes_) notes_->vals["phase1_aborted"] = abort ? 1 : 0;
  for (Message& m : deliveries) {
    if (abort && !ctx.corrupted().count(m.to)) m.payload = sim::encode_func_abort();
    out.push_back(std::move(m));
  }
  return out;
}

GkParty::GkParty(sim::PartyId id, GkParams params, Bytes input, Rng rng)
    : PartyBase(id), params_(std::move(params)), input_(std::move(input)),
      rng_(std::move(rng)) {
  FAIRSFE_CHECK(id == 0 || id == 1, "GkParty: protocol is 2-party");
}

void GkParty::finish_with_default() {
  std::vector<Bytes> xs = params_.spec.default_inputs;
  xs[static_cast<std::size_t>(id_)] = input_;
  finish(params_.spec.eval(xs));
}

std::vector<Message> GkParty::make_opening(std::size_t j) const {
  if (j == 0 || j > outgoing_shares_.size()) return {};
  const AuthShare2& share = outgoing_shares_[j - 1];
  return {Message{id_, static_cast<sim::PartyId>(1 - id_),
                  encode_gk_opening(j, share.opening_to_bytes())}};
}

std::vector<Message> GkParty::on_round(int /*round*/, MsgView in) {
  switch (step_) {
    case Step::kSendInput: {
      step_ = Step::kAwaitShares;
      return {Message{id_, sim::kFunc, sim::encode_func_input(input_)}};
    }
    case Step::kAwaitShares: {
      const Message* fm = first_from(in, sim::kFunc);
      if (fm == nullptr) return {};
      const auto body = sim::decode_func_output(fm->payload);
      if (!body) {
        finish_with_default();
        return {};
      }
      Reader r(*body);
      const auto cap = r.u32();
      const auto fallback = r.blob();
      if (!cap || !fallback) {
        finish_with_default();
        return {};
      }
      rounds_ = *cap;
      last_value_ = *fallback;
      for (std::size_t j = 1; j <= rounds_; ++j) {
        const auto sa = r.blob();
        const auto sb = r.blob();
        const auto share_a = sa ? AuthShare2::from_bytes(*sa) : std::nullopt;
        const auto share_b = sb ? AuthShare2::from_bytes(*sb) : std::nullopt;
        if (!share_a || !share_b) {
          finish_with_default();
          return {};
        }
        // p1 reads the a-stream and opens the b-stream; p2 vice versa.
        if (id_ == 0) {
          incoming_shares_.push_back(*share_a);
          outgoing_shares_.push_back(*share_b);
        } else {
          incoming_shares_.push_back(*share_b);
          outgoing_shares_.push_back(*share_a);
        }
      }
      step_ = Step::kIterate;
      j_ = 1;
      if (id_ == 1) {
        // p2 opens a_1 immediately; p1 waits for it.
        expecting_ = false;
        return make_opening(1);
      }
      expecting_ = true;
      return {};
    }
    case Step::kIterate: {
      // Find the opening for the current iteration of my incoming stream.
      std::optional<Bytes> body;
      for (const Message& m : in) {
        if (m.from != 1 - id_) continue;
        const auto dec = decode_gk_opening(m.payload);
        if (dec && dec->first == j_) {
          body = dec->second;
          break;
        }
      }
      if (!expecting_) {
        // My own opening went out last round; now it is my turn to receive
        // (p2 after opening a_j waits a round for b_j).
        expecting_ = true;
        return {};
      }
      const auto value = body ? auth_reconstruct2(incoming_shares_[j_ - 1], *body)
                              : std::nullopt;
      if (!value) {
        // Peer aborted (or cheated): output the last reconstructed value —
        // the randomized-abort guarantee.
        finish(last_value_);
        return {};
      }
      last_value_ = *value;
      if (id_ == 0) {
        // p1 reconstructs a_j, then opens b_j. After the final iteration its
        // value is a_r = y. The round after sending is a gap round (the peer
        // is processing), so expecting_ flips off.
        std::vector<Message> out = make_opening(j_);
        if (j_ == rounds_) {
          finish(last_value_);
        } else {
          ++j_;
          expecting_ = false;
        }
        return out;
      }
      // p2 reconstructed b_j; move to iteration j+1 and open a_{j+1}.
      if (j_ == rounds_) {
        finish(last_value_);
        return {};
      }
      ++j_;
      expecting_ = false;
      return make_opening(j_);
    }
  }
  return {};
}

void GkParty::on_abort() {
  if (done()) return;
  if (step_ == Step::kIterate) {
    finish(last_value_);
  } else {
    finish_with_default();
  }
}

std::vector<std::unique_ptr<sim::IParty>> make_gk_parties(const GkParams& params,
                                                          const Bytes& x0, const Bytes& x1,
                                                          Rng& rng) {
  std::vector<std::unique_ptr<sim::IParty>> parties;
  parties.push_back(std::make_unique<GkParty>(0, params, x0, rng.fork("gk-p0")));
  parties.push_back(std::make_unique<GkParty>(1, params, x1, rng.fork("gk-p1")));
  return parties;
}

}  // namespace fairsfe::fair
