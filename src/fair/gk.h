// The Gordon–Katz partially fair ("1/p-secure") two-party protocols
// [GK, Eurocrypt'10], analysed by the paper in Section 5 / Appendix C.
//
// Structure (ShareGen-hybrid): the functionality picks a switch round
// i* ~ Geometric(α) (truncated at the round cap) and prepares two value
// streams of authenticated sharings,
//     a_j = fake for j < i*, a_j = y for j ≥ i*   (delivered to p1),
//     b_j = fake for j < i*, b_j = y for j ≥ i*   (delivered to p2),
// plus unshared fallback values a_0 / b_0. Reconstruction alternates: in
// iteration j, p2 first opens a_j towards p1, then p1 opens b_j towards p2.
// On abort, a party outputs the last value it reconstructed — which is the
// randomized-abort guarantee F^{f,$}_sfe (Appendix C.2): an early abort
// replaces the honest output by a fresh fake draw.
//
// Variants: kPolyDomain fakes a_j = f(x1, ŷ) with ŷ uniform over p2's
// (polynomial-size) input domain, α = 1/(p·|Y|) (Theorem 23, O(p·|Y|)
// rounds); kPolyRange fakes uniform range elements, α = 1/(p²·|Z|)
// (Theorem 24, O(p²·|Z|) rounds).
//
// Utility shape (experiment E10): under ~γ = (0, 0, 1, 0) the best attacker
// aborts exactly at i* and earns ≤ 1/p.
#pragma once

#include <memory>
#include <vector>

#include "crypto/auth_share.h"
#include "crypto/rng.h"
#include "mpc/sfe_functionalities.h"
#include "sim/party.h"

namespace fairsfe::fair {

struct GkParams {
  enum class Variant { kPolyDomain, kPolyRange };

  mpc::SfeSpec spec;  ///< must be two-party
  std::size_t p = 2;  ///< the 1/p-security target
  Variant variant = Variant::kPolyDomain;
  std::function<Bytes(Rng&)> sample_x1;     ///< uniform element of p1's domain
  std::function<Bytes(Rng&)> sample_x2;     ///< uniform element of p2's domain
  std::function<Bytes(Rng&)> sample_range;  ///< uniform range element (kPolyRange)
  std::size_t domain_size = 2;  ///< |Y| (kPolyDomain) or |Z| (kPolyRange)
  std::size_t rounds = 0;       ///< explicit round cap; 0 = auto

  [[nodiscard]] double alpha() const;
  [[nodiscard]] std::size_t cap() const;
};

/// Ready-made parameters for the single-bit AND function (Section 5's
/// example; with p = 4 this is the "standard 1/4-secure protocol").
GkParams make_gk_and_params(std::size_t p);

/// ShareGen functionality. Unfair abort gate. Records "y" (blob), "i_star".
class ShareGenFunc final : public sim::IFunctionality {
 public:
  explicit ShareGenFunc(GkParams params, mpc::NotesPtr notes = nullptr);

  std::vector<sim::Message> on_round(sim::FuncContext& ctx, int round,
                                     sim::MsgView in) override;

 private:
  GkParams params_;
  mpc::NotesPtr notes_;
  bool fired_ = false;
};

class GkParty final : public sim::PartyBase<GkParty> {
 public:
  GkParty(sim::PartyId id, GkParams params, Bytes input, Rng rng);

  std::vector<sim::Message> on_round(int round, sim::MsgView in) override;
  void on_abort() override;

  /// Adversary-visible state (the adversary owns corrupted parties): the last
  /// reconstructed value and the current iteration. Used by the GK attack
  /// strategies in src/adversary/gk_adversary.h.
  [[nodiscard]] const Bytes& last_value() const { return last_value_; }
  [[nodiscard]] std::size_t iteration() const { return j_; }
  [[nodiscard]] bool stream_started() const { return step_ == Step::kIterate; }

  /// The opening message this party would send for iteration j of its
  /// outgoing stream (used by attack strategies that deviate selectively).
  [[nodiscard]] std::vector<sim::Message> make_opening(std::size_t j) const;

 private:
  enum class Step { kSendInput, kAwaitShares, kIterate };

  void finish_with_default();

  GkParams params_;
  Bytes input_;
  Rng rng_;

  Step step_ = Step::kSendInput;
  std::size_t rounds_ = 0;
  std::size_t j_ = 1;           // current iteration
  bool expecting_ = false;       // p1: waiting for a_j; p2: waiting for b_j
  Bytes last_value_;             // a_{j-1} / b_{j-1} fallback
  std::vector<AuthShare2> incoming_shares_;  // my halves of the stream I read
  std::vector<AuthShare2> outgoing_shares_;  // my halves of the stream I open
};

/// Build the two GK parties for inputs (x1, x2); pair with ShareGenFunc.
std::vector<std::unique_ptr<sim::IParty>> make_gk_parties(const GkParams& params,
                                                          const Bytes& x0, const Bytes& x1,
                                                          Rng& rng);

/// Wire helpers (shared with the Π̃ wrapper in fair/leaky_and.h).
Bytes encode_gk_opening(std::size_t j, ByteView opening);
std::optional<std::pair<std::size_t, Bytes>> decode_gk_opening(ByteView payload);

}  // namespace fairsfe::fair
