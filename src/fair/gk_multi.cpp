#include "fair/gk_multi.h"

#include "crypto/secret_sharing.h"
#include "crypto/sha256.h"

namespace fairsfe::fair {

using sim::Message;
using sim::MsgView;

namespace {
constexpr std::uint8_t kTagMultiShare = 65;
}  // namespace

GkMultiParams make_gk_multi_and_params(std::size_t n, std::size_t p) {
  GkMultiParams params;
  params.spec.n = n;
  params.spec.eval = [](const std::vector<Bytes>& xs) {
    std::uint8_t acc = 1;
    for (const Bytes& x : xs) {
      acc = static_cast<std::uint8_t>(acc & (x.empty() ? 0 : (x[0] & 1)));
    }
    return Bytes{acc};
  };
  params.spec.default_inputs.assign(n, Bytes{0});
  params.p = p;
  params.sample_inputs = [n](Rng& rng) {
    std::vector<Bytes> xs;
    xs.reserve(n);
    for (std::size_t i = 0; i < n; ++i) xs.push_back(Bytes{static_cast<std::uint8_t>(rng.bit())});
    return xs;
  };
  params.domain_size = 2;
  return params;
}

Bytes encode_gk_multi_share(std::size_t j, ByteView summand, ByteView nonce) {
  Writer w;
  w.u8(kTagMultiShare).u32(static_cast<std::uint32_t>(j)).blob(summand).blob(nonce);
  return w.take();
}

std::optional<GkMultiShare> decode_gk_multi_share(ByteView payload) {
  Reader r(payload);
  const auto tag = r.u8();
  if (!tag || *tag != kTagMultiShare) return std::nullopt;
  const auto j = r.u32();
  const auto summand = r.blob();
  const auto nonce = r.blob();
  if (!j || !summand || !nonce || !r.at_end()) return std::nullopt;
  return GkMultiShare{static_cast<std::size_t>(*j), *summand, *nonce};
}

Bytes gk_multi_share_hash(std::size_t j, ByteView nonce, ByteView summand) {
  Writer w;
  w.u64(j).blob(nonce).blob(summand);
  return sha256_labeled("gk-multi", w.bytes());
}

MultiShareGenFunc::MultiShareGenFunc(GkMultiParams params, mpc::NotesPtr notes)
    : params_(std::move(params)), notes_(std::move(notes)) {}

std::vector<Message> MultiShareGenFunc::on_round(sim::FuncContext& ctx, int /*round*/,
                                                 MsgView in) {
  if (fired_ || in.empty()) return {};
  fired_ = true;

  const std::size_t n = params_.spec.n;
  std::vector<std::optional<Bytes>> inputs(n);
  for (const Message& m : in) {
    if (m.from < 0 || m.from >= static_cast<sim::PartyId>(n)) continue;
    const auto x = sim::decode_func_input(m.payload);
    if (x && !inputs[static_cast<std::size_t>(m.from)]) {
      inputs[static_cast<std::size_t>(m.from)] = *x;
    }
  }

  std::vector<Message> out;
  bool complete = true;
  for (const auto& x : inputs) {
    if (!x) complete = false;
  }
  if (!complete) {
    if (notes_) notes_->vals["phase1_aborted"] = 1;
    for (std::size_t p = 0; p < n; ++p) {
      out.push_back(Message{sim::kFunc, static_cast<sim::PartyId>(p),
                            sim::encode_func_abort()});
    }
    return out;
  }

  Rng& rng = ctx.rng();
  std::vector<Bytes> xs(n);
  for (std::size_t i = 0; i < n; ++i) xs[i] = *inputs[i];
  const Bytes y = params_.spec.eval(xs);

  const std::size_t cap = params_.cap();
  const double alpha = params_.alpha();
  std::size_t i_star = 1;
  while (i_star < cap && rng.uniform() >= alpha) ++i_star;
  if (notes_) {
    notes_->blobs["y"] = y;
    notes_->vals["i_star"] = i_star;
  }

  auto fake = [&]() { return params_.spec.eval(params_.sample_inputs(rng)); };

  // Per-party output blobs.
  std::vector<Writer> blobs(n);
  for (std::size_t p = 0; p < n; ++p) {
    blobs[p].u32(static_cast<std::uint32_t>(cap));
    blobs[p].blob(fake());  // independent v_0 fallback per party
  }
  for (std::size_t j = 1; j <= cap; ++j) {
    const Bytes v = (j < i_star) ? fake() : y;
    const auto summands = xor_share(v, n, rng);
    std::vector<Bytes> nonces(n);
    std::vector<Bytes> hashes(n);
    for (std::size_t p = 0; p < n; ++p) {
      nonces[p] = rng.bytes(16);
      hashes[p] = gk_multi_share_hash(j, nonces[p], summands[p]);
    }
    for (std::size_t p = 0; p < n; ++p) {
      blobs[p].blob(summands[p]).blob(nonces[p]);
      for (const Bytes& h : hashes) blobs[p].blob(h);
    }
  }

  std::vector<Message> deliveries;
  for (std::size_t p = 0; p < n; ++p) {
    deliveries.push_back(Message{sim::kFunc, static_cast<sim::PartyId>(p),
                                 sim::encode_func_output(blobs[p].bytes())});
  }
  std::vector<Message> corrupted_outputs;
  for (const Message& m : deliveries) {
    if (ctx.corrupted().count(m.to)) corrupted_outputs.push_back(m);
  }
  const bool abort = ctx.adversary_abort_gate(corrupted_outputs);
  if (notes_) notes_->vals["phase1_aborted"] = abort ? 1 : 0;
  for (Message& m : deliveries) {
    if (abort && !ctx.corrupted().count(m.to)) m.payload = sim::encode_func_abort();
    out.push_back(std::move(m));
  }
  return out;
}

GkMultiParty::GkMultiParty(sim::PartyId id, GkMultiParams params, Bytes input, Rng rng)
    : PartyBase(id), params_(std::move(params)), input_(std::move(input)),
      rng_(std::move(rng)) {}

void GkMultiParty::finish_with_default() {
  std::vector<Bytes> xs = params_.spec.default_inputs;
  xs[static_cast<std::size_t>(id_)] = input_;
  finish(params_.spec.eval(xs));
}

std::vector<Message> GkMultiParty::on_round(int /*round*/, MsgView in) {
  const std::size_t n = params_.spec.n;
  switch (step_) {
    case Step::kSendInput: {
      step_ = Step::kAwaitShares;
      return {Message{id_, sim::kFunc, sim::encode_func_input(input_)}};
    }
    case Step::kAwaitShares: {
      const Message* fm = first_from(in, sim::kFunc);
      if (fm == nullptr) return {};
      const auto body = sim::decode_func_output(fm->payload);
      if (!body) {
        finish_with_default();
        return {};
      }
      Reader r(*body);
      const auto cap = r.u32();
      const auto fallback = r.blob();
      if (!cap || !fallback) {
        finish_with_default();
        return {};
      }
      rounds_ = *cap;
      last_value_ = *fallback;
      for (std::size_t j = 1; j <= rounds_; ++j) {
        const auto summand = r.blob();
        const auto nonce = r.blob();
        if (!summand || !nonce) {
          finish_with_default();
          return {};
        }
        my_summands_.push_back(*summand);
        my_nonces_.push_back(*nonce);
        std::vector<Bytes> hs(n);
        for (std::size_t p = 0; p < n; ++p) {
          const auto h = r.blob();
          if (!h) {
            finish_with_default();
            return {};
          }
          hs[p] = *h;
        }
        hashes_.push_back(std::move(hs));
      }
      step_ = Step::kIterate;
      j_ = 1;
      return {Message{id_, sim::kBroadcast,
                      encode_gk_multi_share(1, my_summands_[0], my_nonces_[0])}};
    }
    case Step::kIterate: {
      // Collect everyone's round-j_ summands (my own broadcast loops back).
      std::vector<std::optional<Bytes>> summands(n);
      for (const Message& m : in) {
        if (m.from < 0 || m.from >= static_cast<sim::PartyId>(n)) continue;
        const auto sh = decode_gk_multi_share(m.payload);
        if (!sh || sh->j != j_) continue;
        const std::size_t p = static_cast<std::size_t>(m.from);
        if (gk_multi_share_hash(j_, sh->nonce, sh->summand) != hashes_[j_ - 1][p]) continue;
        if (!summands[p]) summands[p] = sh->summand;
      }
      std::vector<Bytes> pool;
      for (const auto& s : summands) {
        if (s) pool.push_back(*s);
      }
      if (pool.size() != n) {
        // Someone withheld or forged: end with the last reconstructed value.
        finish(last_value_);
        return {};
      }
      last_value_ = xor_reconstruct(pool);
      if (j_ == rounds_) {
        finish(last_value_);
        return {};
      }
      ++j_;
      return {Message{id_, sim::kBroadcast,
                      encode_gk_multi_share(j_, my_summands_[j_ - 1], my_nonces_[j_ - 1])}};
    }
  }
  return {};
}

void GkMultiParty::on_abort() {
  if (done()) return;
  if (step_ == Step::kIterate) {
    finish(last_value_);
  } else {
    finish_with_default();
  }
}

std::vector<std::unique_ptr<sim::IParty>> make_gk_multi_parties(
    const GkMultiParams& params, const std::vector<Bytes>& inputs, Rng& rng) {
  std::vector<std::unique_ptr<sim::IParty>> parties;
  parties.reserve(inputs.size());
  for (std::size_t p = 0; p < inputs.size(); ++p) {
    parties.push_back(std::make_unique<GkMultiParty>(static_cast<sim::PartyId>(p), params,
                                                     inputs[p], rng.fork("gk-multi")));  // LINT-ALLOW(rng-fork-in-loop): fork counter is the party index (parent enters at 0); callers fork this parent afterwards, so re-indexing would re-seed pinned goldens
  }
  return parties;
}

}  // namespace fairsfe::fair
