// Multi-party partial fairness — the Beimel–Lindell–Omri–Orlov extension of
// 1/p-security to n parties ([3] in the paper, CRYPTO'11), in the simplified
// one-stream form that preserves the headline shape.
//
// ShareGen picks i* ~ Geometric(α) and prepares values v_0, v_1, ..., v_r
// (fake draws before i*, the true y from i* on). Each v_j (j ≥ 1) is dealt
// as an n-of-n XOR sharing with hash commitments binding every summand.
// Reconstruction runs one broadcast round per j: all parties announce their
// round-j summands; if any share is missing or fails its commitment the
// protocol ends and everyone outputs the *last reconstructed* value — the
// randomized-abort guarantee of F^{f,$}, now multi-party.
//
// A rushing coalition reads the honest round-j summands before deciding
// whether to withhold its own, so it always holds v_j while honest parties
// hold v_{j-1}: the abort is unfair exactly when j = i*, and the truncated
// geometric keeps that probability at most ≈ 1/p for *any* coalition size
// 1 ≤ t ≤ n-1 (the full [3] construction additionally improves parameters
// below the 2n/3 corruption threshold — see DESIGN.md §6).
#pragma once

#include <memory>

#include "fair/gk.h"

namespace fairsfe::fair {

struct GkMultiParams {
  mpc::SfeSpec spec;  ///< n-party, global output
  std::size_t p = 2;
  /// Fresh uniform inputs for the fake draws v_j = f(sample()).
  std::function<std::vector<Bytes>(Rng&)> sample_inputs;
  std::size_t domain_size = 2;  ///< effective output-guessing domain
  std::size_t rounds = 0;       ///< 0 = auto cap

  [[nodiscard]] double alpha() const {
    return 1.0 / (static_cast<double>(p) * static_cast<double>(domain_size));
  }
  [[nodiscard]] std::size_t cap() const {
    return rounds != 0 ? rounds : static_cast<std::size_t>(8.0 / alpha()) + 1;
  }
};

/// n-party AND of single-bit inputs, the small-domain workload of E16.
GkMultiParams make_gk_multi_and_params(std::size_t n, std::size_t p);

/// The multi-party ShareGen functionality. Records "y", "i_star" into notes.
class MultiShareGenFunc final : public sim::IFunctionality {
 public:
  explicit MultiShareGenFunc(GkMultiParams params, mpc::NotesPtr notes = nullptr);

  std::vector<sim::Message> on_round(sim::FuncContext& ctx, int round,
                                     sim::MsgView in) override;

 private:
  GkMultiParams params_;
  mpc::NotesPtr notes_;
  bool fired_ = false;
};

class GkMultiParty final : public sim::PartyBase<GkMultiParty> {
 public:
  GkMultiParty(sim::PartyId id, GkMultiParams params, Bytes input, Rng rng);

  std::vector<sim::Message> on_round(int round, sim::MsgView in) override;
  void on_abort() override;

 private:
  enum class Step { kSendInput, kAwaitShares, kIterate };

  void finish_with_default();

  GkMultiParams params_;
  Bytes input_;
  Rng rng_;

  Step step_ = Step::kSendInput;
  std::size_t rounds_ = 0;
  std::size_t j_ = 1;
  Bytes last_value_;
  /// my_summands_[j-1], my_nonces_[j-1]: my XOR summand of v_j + its nonce.
  std::vector<Bytes> my_summands_;
  std::vector<Bytes> my_nonces_;
  /// hashes_[j-1][party]: commitment of each party's round-j summand.
  std::vector<std::vector<Bytes>> hashes_;
};

std::vector<std::unique_ptr<sim::IParty>> make_gk_multi_parties(
    const GkMultiParams& params, const std::vector<Bytes>& inputs, Rng& rng);

/// Round-j summand broadcast wire format.
Bytes encode_gk_multi_share(std::size_t j, ByteView summand, ByteView nonce);
struct GkMultiShare {
  std::size_t j = 0;
  Bytes summand;
  Bytes nonce;
};
std::optional<GkMultiShare> decode_gk_multi_share(ByteView payload);
/// The commitment binding a summand: H("gk-multi" ‖ j ‖ nonce ‖ summand).
Bytes gk_multi_share_hash(std::size_t j, ByteView nonce, ByteView summand);

}  // namespace fairsfe::fair
