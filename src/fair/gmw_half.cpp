#include "fair/gmw_half.h"

#include "crypto/sha256.h"

namespace fairsfe::fair {

using sim::Message;
using sim::MsgView;

namespace {
constexpr std::uint8_t kTagShare = 40;
}  // namespace

Bytes half_gmw_share_hash(ByteView nonce, const ShamirShare& share) {
  Writer w;
  w.blob(nonce).blob(share.to_bytes());
  return sha256_labeled("half-gmw-share", w.bytes());
}

Bytes encode_share_broadcast(const ShamirShare& share, ByteView nonce) {
  Writer w;
  w.u8(kTagShare).blob(share.to_bytes()).blob(nonce);
  return w.take();
}

std::optional<std::pair<ShamirShare, Bytes>> decode_share_broadcast(ByteView payload) {
  Reader r(payload);
  const auto tag = r.u8();
  if (!tag || *tag != kTagShare) return std::nullopt;
  const auto share_bytes = r.blob();
  const auto nonce = r.blob();
  if (!share_bytes || !nonce || !r.at_end()) return std::nullopt;
  const auto share = ShamirShare::from_bytes(*share_bytes);
  if (!share) return std::nullopt;
  return std::make_pair(*share, *nonce);
}

ShamirDealFunc::ShamirDealFunc(mpc::SfeSpec spec, mpc::NotesPtr notes)
    : spec_(std::move(spec)), notes_(std::move(notes)) {}

std::vector<Message> ShamirDealFunc::on_round(sim::FuncContext& ctx, int /*round*/,
                                              MsgView in) {
  if (fired_ || in.empty()) return {};
  fired_ = true;

  std::vector<std::optional<Bytes>> inputs(spec_.n);
  for (const Message& m : in) {
    if (m.from < 0 || m.from >= static_cast<sim::PartyId>(spec_.n)) continue;
    const auto x = sim::decode_func_input(m.payload);
    if (x && !inputs[static_cast<std::size_t>(m.from)]) {
      inputs[static_cast<std::size_t>(m.from)] = *x;
    }
  }

  std::vector<Message> out;
  bool complete = true;
  for (const auto& x : inputs) {
    if (!x) complete = false;
  }
  if (!complete) {
    if (notes_) notes_->vals["phase1_aborted"] = 1;
    for (std::size_t p = 0; p < spec_.n; ++p) {
      out.push_back(Message{sim::kFunc, static_cast<sim::PartyId>(p),
                            sim::encode_func_abort()});
    }
    return out;
  }

  std::vector<Bytes> xs(spec_.n);
  for (std::size_t i = 0; i < spec_.n; ++i) xs[i] = *inputs[i];
  const Bytes y = spec_.eval(xs);
  if (notes_) notes_->blobs["y"] = y;

  const std::size_t threshold = half_gmw_threshold(spec_.n);
  const auto shares = shamir_share_bytes(y, threshold, spec_.n, ctx.rng());
  std::vector<Bytes> nonces(spec_.n);
  std::vector<Bytes> hashes(spec_.n);
  for (std::size_t p = 0; p < spec_.n; ++p) {
    nonces[p] = ctx.rng().bytes(16);
    hashes[p] = half_gmw_share_hash(nonces[p], shares[p]);
  }

  std::vector<Message> deliveries;
  for (std::size_t p = 0; p < spec_.n; ++p) {
    Writer w;
    w.blob(shares[p].to_bytes()).blob(nonces[p]);
    w.u32(static_cast<std::uint32_t>(spec_.n));
    for (const Bytes& h : hashes) w.blob(h);
    deliveries.push_back(Message{sim::kFunc, static_cast<sim::PartyId>(p),
                                 sim::encode_func_output(w.bytes())});
  }

  std::vector<Message> corrupted_outputs;
  for (const Message& m : deliveries) {
    if (ctx.corrupted().count(m.to)) corrupted_outputs.push_back(m);
  }
  const bool abort = ctx.adversary_abort_gate(corrupted_outputs);
  if (notes_) notes_->vals["phase1_aborted"] = abort ? 1 : 0;
  for (Message& m : deliveries) {
    if (abort && !ctx.corrupted().count(m.to)) m.payload = sim::encode_func_abort();
    out.push_back(std::move(m));
  }
  return out;
}

HalfGmwParty::HalfGmwParty(sim::PartyId id, mpc::SfeSpec spec, Bytes input, Rng rng)
    : PartyBase(id), spec_(std::move(spec)), input_(std::move(input)), rng_(std::move(rng)) {}

std::vector<Message> HalfGmwParty::on_round(int /*round*/, MsgView in) {
  switch (step_) {
    case Step::kSendInput: {
      step_ = Step::kAwaitShare;
      return {Message{id_, sim::kFunc, sim::encode_func_input(input_)}};
    }
    case Step::kAwaitShare: {
      const Message* fm = first_from(in, sim::kFunc);
      if (fm == nullptr) return {};
      const auto body = sim::decode_func_output(fm->payload);
      if (!body) {
        finish_bot();
        return {};
      }
      Reader r(*body);
      const auto share_bytes = r.blob();
      const auto nonce = r.blob();
      const auto count = r.u32();
      if (!share_bytes || !nonce || !count || *count != spec_.n) {
        finish_bot();
        return {};
      }
      const auto share = ShamirShare::from_bytes(*share_bytes);
      if (!share) {
        finish_bot();
        return {};
      }
      my_share_ = *share;
      my_nonce_ = *nonce;
      share_hashes_.clear();
      for (std::size_t p = 0; p < spec_.n; ++p) {
        const auto h = r.blob();
        if (!h) {
          finish_bot();
          return {};
        }
        share_hashes_.push_back(*h);
      }
      step_ = Step::kAwaitBroadcasts;
      return {Message{id_, sim::kBroadcast, encode_share_broadcast(my_share_, my_nonce_)}};
    }
    case Step::kAwaitBroadcasts: {
      std::vector<ShamirShare> valid;
      valid.push_back(my_share_);
      for (const Message& m : in) {
        if (m.from < 0 || m.from >= static_cast<sim::PartyId>(spec_.n)) continue;
        if (m.from == id_) continue;
        const auto sb = decode_share_broadcast(m.payload);
        if (!sb) continue;
        const std::size_t p = static_cast<std::size_t>(m.from);
        // A share is valid only if it matches the dealer's commitment for
        // that party (binding: wrong shares are rejected, as with VSS).
        if (sb->first.x != p + 1) continue;
        if (half_gmw_share_hash(sb->second, sb->first) != share_hashes_[p]) continue;
        valid.push_back(sb->first);
      }
      const auto y = shamir_reconstruct_bytes(valid, half_gmw_threshold(spec_.n));
      if (y) {
        finish(*y);
      } else {
        finish_bot();
      }
      return {};
    }
  }
  return {};
}

void HalfGmwParty::on_abort() {
  // A single party's share never suffices on its own (threshold > 1).
  if (!done()) finish_bot();
}

std::vector<std::unique_ptr<sim::IParty>> make_half_gmw_parties(
    const mpc::SfeSpec& spec, const std::vector<Bytes>& inputs, Rng& rng) {
  std::vector<std::unique_ptr<sim::IParty>> parties;
  parties.reserve(inputs.size());
  for (std::size_t p = 0; p < inputs.size(); ++p) {
    parties.push_back(std::make_unique<HalfGmwParty>(static_cast<sim::PartyId>(p), spec,
                                                     inputs[p], rng.fork("half-gmw")));  // LINT-ALLOW(rng-fork-in-loop): fork counter is the party index (parent enters at 0); callers fork this parent afterwards, so re-indexing would re-seed pinned goldens
  }
  return parties;
}

}  // namespace fairsfe::fair
