// Π½GMW — the honest-majority (threshold) SFE protocol of Lemma 17.
//
// Phase 1 (unfair SFE, modeled by the dealer functionality ShamirDealFunc)
// computes y and deals a verifiable ⌊n/2⌋+1-out-of-n Shamir sharing of it;
// phase 2 publicly reconstructs by broadcasting shares. Shares are bound by
// hash commitments distributed with the dealing, so a corrupted party cannot
// inject a wrong share.
//
// Fairness profile (Lemma 17): a rushing coalition always learns y at the
// broadcast round; honest parties reconstruct iff n − t ≥ ⌊n/2⌋+1. Hence for
// even n the utility jumps from γ11 (t < n/2) to γ10 (t ≥ n/2) — the
// protocol is fully fair for honest majorities and *not utility-balanced*.
#pragma once

#include <memory>
#include <vector>

#include "crypto/rng.h"
#include "crypto/shamir.h"
#include "mpc/sfe_functionalities.h"
#include "sim/party.h"

namespace fairsfe::fair {

/// Reconstruction threshold used by Π½GMW.
inline std::size_t half_gmw_threshold(std::size_t n) { return n / 2 + 1; }

/// Dealer functionality: computes y, Shamir-shares it, hands party i its
/// share + a nonce + the hash commitments of all shares. Unfair abort gate.
/// Records "y" into notes.
class ShamirDealFunc final : public sim::IFunctionality {
 public:
  explicit ShamirDealFunc(mpc::SfeSpec spec, mpc::NotesPtr notes = nullptr);

  std::vector<sim::Message> on_round(sim::FuncContext& ctx, int round,
                                     sim::MsgView in) override;

 private:
  mpc::SfeSpec spec_;
  mpc::NotesPtr notes_;
  bool fired_ = false;
};

class HalfGmwParty final : public sim::PartyBase<HalfGmwParty> {
 public:
  HalfGmwParty(sim::PartyId id, mpc::SfeSpec spec, Bytes input, Rng rng);

  std::vector<sim::Message> on_round(int round, sim::MsgView in) override;
  void on_abort() override;

 private:
  enum class Step { kSendInput, kAwaitShare, kAwaitBroadcasts };

  mpc::SfeSpec spec_;
  Bytes input_;
  Rng rng_;

  Step step_ = Step::kSendInput;
  ShamirShare my_share_;
  Bytes my_nonce_;
  std::vector<Bytes> share_hashes_;  // commitment of every party's share
};

std::vector<std::unique_ptr<sim::IParty>> make_half_gmw_parties(
    const mpc::SfeSpec& spec, const std::vector<Bytes>& inputs, Rng& rng);

/// Hash binding a share to its dealing: H("half-gmw-share" ‖ nonce ‖ share).
Bytes half_gmw_share_hash(ByteView nonce, const ShamirShare& share);

/// Wire format of the broadcast (share, nonce) pair.
Bytes encode_share_broadcast(const ShamirShare& share, ByteView nonce);
std::optional<std::pair<ShamirShare, Bytes>> decode_share_broadcast(ByteView payload);

}  // namespace fairsfe::fair
