#include "fair/gradual.h"

namespace fairsfe::fair {

using sim::Message;
using sim::MsgView;

namespace {
constexpr std::uint8_t kTagCommitVec = 80;
constexpr std::uint8_t kTagBitOpen = 81;

Bytes enc_commit_vec(const std::vector<Commitment>& cs) {
  Writer w;
  w.u8(kTagCommitVec).u32(static_cast<std::uint32_t>(cs.size()));
  for (const Commitment& c : cs) w.blob(c.com);
  return w.take();
}

std::optional<std::vector<Bytes>> dec_commit_vec(ByteView payload, std::size_t expect) {
  Reader r(payload);
  const auto tag = r.u8();
  if (!tag || *tag != kTagCommitVec) return std::nullopt;
  const auto count = r.u32();
  if (!count || *count != expect) return std::nullopt;
  std::vector<Bytes> out;
  for (std::size_t i = 0; i < expect; ++i) {
    const auto c = r.blob();
    if (!c) return std::nullopt;
    out.push_back(*c);
  }
  if (!r.at_end()) return std::nullopt;
  return out;
}

Bytes enc_bit_open(std::size_t i, bool bit, ByteView opening) {
  Writer w;
  w.u8(kTagBitOpen).u32(static_cast<std::uint32_t>(i)).u8(bit ? 1 : 0).blob(opening);
  return w.take();
}

struct BitOpen {
  std::size_t index;
  bool bit;
  Bytes opening;
};

std::optional<BitOpen> dec_bit_open(ByteView payload) {
  Reader r(payload);
  const auto tag = r.u8();
  if (!tag || *tag != kTagBitOpen) return std::nullopt;
  const auto i = r.u32();
  const auto b = r.u8();
  const auto o = r.blob();
  if (!i || !b || !o || !r.at_end()) return std::nullopt;
  return BitOpen{*i, *b != 0, *o};
}
}  // namespace

GradualParty::GradualParty(sim::PartyId id, GradualConfig cfg, Bytes secret,
                           Bytes peer_secret, Rng rng)
    : PartyBase(id),
      cfg_(cfg),
      secret_(std::move(secret)),
      peer_secret_(std::move(peer_secret)),
      rng_(std::move(rng)) {}

bool GradualParty::bit_of(const Bytes& s, std::size_t i) const {
  const std::size_t byte = i / 8;
  if (byte >= s.size()) return false;
  return ((s[byte] >> (i % 8)) & 1) != 0;
}

std::vector<Message> GradualParty::open_bit(std::size_t i) {
  const bool b = bit_of(secret_, i);
  return {Message{id_, 1 - id_, enc_bit_open(i, b, my_commitments_[i].opening)}};
}

Bytes GradualParty::result() const {
  return id_ == 0 ? secret_ + peer_secret_ : peer_secret_ + secret_;
}

void GradualParty::finalize() {
  const std::size_t missing = cfg_.secret_bits - peer_bits_;
  if (missing <= cfg_.budget_bits[static_cast<std::size_t>(id_)]) {
    // Brute force the remaining bits against the binding commitments.
    finish(result());
  } else {
    finish_bot();
  }
}

std::vector<Message> GradualParty::on_round(int /*round*/, MsgView in) {
  switch (step_) {
    case Step::kSendCommitments: {
      my_commitments_.reserve(cfg_.secret_bits);
      for (std::size_t i = 0; i < cfg_.secret_bits; ++i) {
        const Bytes bit{static_cast<std::uint8_t>(bit_of(secret_, i) ? 1 : 0)};
        my_commitments_.push_back(commit(bit, rng_));
      }
      step_ = Step::kAwaitCommitments;
      return {Message{id_, 1 - id_, enc_commit_vec(my_commitments_)}};
    }
    case Step::kAwaitCommitments: {
      const Message* cm = first_from(in, 1 - id_);
      const auto vec = cm ? dec_commit_vec(cm->payload, cfg_.secret_bits) : std::nullopt;
      if (!vec) {
        finish_bot();
        return {};
      }
      peer_commitments_ = *vec;
      step_ = Step::kExchange;
      // p0 opens bit 0 first; p1 expects that opening next round. After p0's
      // send, the next round is a gap (the peer is processing).
      if (id_ == 0) {
        my_turn_ = false;  // gap round follows my send
        return open_bit(next_bit_++);
      }
      my_turn_ = true;  // an opening is due next round
      return {};
    }
    case Step::kExchange: {
      // Expect the peer's opening of bit `peer_bits_` whenever it is due.
      const Message* om = first_from(in, 1 - id_);
      if (om == nullptr && !my_turn_) {
        // Gap round: my own opening is in flight; the reply is due next round.
        my_turn_ = true;
        return {};
      }
      if (om != nullptr) {
        const auto open = dec_bit_open(om->payload);
        const bool valid =
            open && open->index == peer_bits_ && open->index < cfg_.secret_bits &&
            commit_verify(peer_commitments_[open->index],
                          Bytes{static_cast<std::uint8_t>(open->bit ? 1 : 0)},
                          open->opening);
        if (!valid) {
          finalize();  // peer deviated: fall back on brute force or ⊥
          return {};
        }
        ++peer_bits_;
        if (peer_bits_ == cfg_.secret_bits && next_bit_ == cfg_.secret_bits) {
          // Everything revealed; all openings verified against commitments.
          finish(result());
          return {};
        }
        // My reply: open my next bit; a gap round follows.
        if (next_bit_ < cfg_.secret_bits) {
          std::vector<Message> out = open_bit(next_bit_++);
          if (peer_bits_ == cfg_.secret_bits && next_bit_ == cfg_.secret_bits) {
            finish(result());
          } else {
            my_turn_ = false;
          }
          return out;
        }
        return {};
      }
      // The opening was due this round and did not arrive: the peer aborted.
      finalize();
      return {};
    }
  }
  return {};
}

void GradualParty::on_abort() {
  if (!done()) finalize();
}

std::vector<std::unique_ptr<sim::IParty>> make_gradual_parties(const GradualConfig& cfg,
                                                               const Bytes& x0,
                                                               const Bytes& x1, Rng& rng) {
  std::vector<std::unique_ptr<sim::IParty>> parties;
  parties.push_back(std::make_unique<GradualParty>(0, cfg, x0, x1, rng.fork("grad-p0")));
  parties.push_back(std::make_unique<GradualParty>(1, cfg, x1, x0, rng.fork("grad-p1")));
  return parties;
}

}  // namespace fairsfe::fair
