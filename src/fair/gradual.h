// Bit-by-bit gradual release — the classical fair-exchange approach of
// Blum / Beaver–Goldwasser / Damgård ([4, 2, 11] in the paper), implemented
// as an ablation subject.
//
// Both parties commit to every bit of their secret, exchange the commitment
// vectors, and then alternately open one bit at a time (p1 opens bit i, then
// p2 opens bit i). An aborting party is at most one bit ahead. Whether that
// single bit matters depends on *computational budgets*: a party that is
// missing k bits of the peer's secret can brute-force the remaining 2^k
// candidates against the (binding) commitments iff k ≤ its budget.
//
// The simulation models the brute-force step with an oracle: the party is
// handed the true peer secret at construction and "recovers" it exactly when
// its number of unknown bits is within budget — a faithful stand-in for
// enumerating openings against the commitment vector.
//
// Utility-based verdict (experiment E13): fairness of gradual release is a
// knife-edge function of the budget gap — the adversary earns γ10 whenever
// its budget is not strictly smaller than the honest party's, and γ11
// otherwise — while ΠOpt2SFE's (γ10+γ11)/2 is budget-independent. This is
// the paper's point that resource-style fairness and utility-based fairness
// measure different things.
#pragma once

#include <memory>
#include <vector>

#include "crypto/commitment.h"
#include "crypto/rng.h"
#include "sim/party.h"

namespace fairsfe::fair {

struct GradualConfig {
  std::size_t secret_bits = 16;
  /// Brute-force budget, in bits, of each party (index = PartyId): a party
  /// missing at most budget_bits[i] peer bits can still recover the secret.
  std::array<std::size_t, 2> budget_bits = {0, 0};
};

class GradualParty final : public sim::PartyBase<GradualParty> {
 public:
  /// `peer_secret` is the brute-force oracle value (see header comment).
  GradualParty(sim::PartyId id, GradualConfig cfg, Bytes secret, Bytes peer_secret,
               Rng rng);

  std::vector<sim::Message> on_round(int round, sim::MsgView in) override;
  void on_abort() override;

  [[nodiscard]] std::size_t revealed_peer_bits() const { return peer_bits_; }

 private:
  enum class Step { kSendCommitments, kAwaitCommitments, kExchange };

  [[nodiscard]] bool bit_of(const Bytes& s, std::size_t i) const;
  std::vector<sim::Message> open_bit(std::size_t i);
  /// Final output x0 ‖ x1 (orders the two secrets by party id).
  [[nodiscard]] Bytes result() const;
  void finalize();

  GradualConfig cfg_;
  Bytes secret_;
  Bytes peer_secret_;  // oracle; only consulted for the brute-force rule
  Rng rng_;

  Step step_ = Step::kSendCommitments;
  std::vector<Commitment> my_commitments_;
  std::vector<Bytes> peer_commitments_;
  std::size_t next_bit_ = 0;    ///< next index I will open
  std::size_t peer_bits_ = 0;   ///< peer bits revealed to me so far
  bool my_turn_ = false;        ///< true iff a peer opening is due this round
};

std::vector<std::unique_ptr<sim::IParty>> make_gradual_parties(const GradualConfig& cfg,
                                                               const Bytes& x0,
                                                               const Bytes& x1, Rng& rng);

}  // namespace fairsfe::fair
