#include "fair/leaky_and.h"

namespace fairsfe::fair {

using sim::Message;
using sim::MsgView;

namespace {
constexpr std::uint8_t kTagPreamble = 61;
constexpr std::uint8_t kTagLeak = 62;

// Messages Π̃ handles itself; everything else is the embedded GK protocol's.
bool is_wrapper_message(const Message& m) {
  if (m.from == sim::kFunc) return false;
  Reader r(m.payload);
  const auto tag = r.u8();
  return tag && (*tag == kTagPreamble || *tag == kTagLeak);
}
}  // namespace

Bytes encode_preamble(std::uint8_t bit) {
  Writer w;
  w.u8(kTagPreamble).u8(bit);
  return w.take();
}

std::optional<std::uint8_t> decode_preamble(ByteView payload) {
  Reader r(payload);
  const auto tag = r.u8();
  if (!tag || *tag != kTagPreamble) return std::nullopt;
  const auto bit = r.u8();
  if (!bit || !r.at_end()) return std::nullopt;
  return bit;
}

Bytes encode_leak(const std::optional<Bytes>& input) {
  Writer w;
  w.u8(kTagLeak);
  if (input) {
    w.u8(1).blob(*input);
  } else {
    w.u8(0);
  }
  return w.take();
}

std::optional<std::optional<Bytes>> decode_leak(ByteView payload) {
  Reader r(payload);
  const auto tag = r.u8();
  if (!tag || *tag != kTagLeak) return std::nullopt;
  const auto flag = r.u8();
  if (!flag) return std::nullopt;
  if (*flag == 0) return std::optional<Bytes>{};
  const auto body = r.blob();
  if (!body || !r.at_end()) return std::nullopt;
  return std::optional<Bytes>{*body};
}

LeakyAndParty::LeakyAndParty(sim::PartyId id, Bytes input, Rng rng)
    : PartyBase(id),
      input_(input),
      rng_(std::move(rng)),
      inner_(id, make_gk_and_params(4), input, rng_.fork("inner-gk")) {}

std::vector<Message> LeakyAndParty::on_round(int round, MsgView in) {
  std::vector<Message> inner_in;
  std::vector<Message> wrapper_in;
  for (const Message& m : in) {
    (is_wrapper_message(m) ? wrapper_in : inner_in).push_back(m);
  }

  std::vector<Message> out;
  if (calls_ == 0 && id_ == 1) {
    // Honest p2 opens with the 0-bit.
    out.push_back(Message{id_, 0, encode_preamble(0)});
  }
  if (id_ == 0 && !preamble_done_) {
    for (const Message& m : wrapper_in) {
      const auto bit = decode_preamble(m.payload);
      if (!bit) continue;
      preamble_done_ = true;
      if (*bit == 1) {
        // Biased coin: Pr[C = 1] = 1/4 -> reveal x1.
        const bool c = rng_.below(4) == 0;
        out.push_back(Message{id_, 1, encode_leak(c ? std::optional<Bytes>(input_)
                                                    : std::optional<Bytes>{})});
      }
      break;
    }
  }
  ++calls_;

  // Drive the embedded 1/4-secure GK protocol.
  if (!inner_.done()) {
    std::vector<Message> inner_out = inner_.on_round(round, inner_in);
    out.insert(out.end(), inner_out.begin(), inner_out.end());
  }
  if (inner_.done() && !done()) {
    if (const auto y = inner_.output()) {
      finish(*y);
    } else {
      finish_bot();
    }
  }
  return out;
}

void LeakyAndParty::on_abort() {
  if (done()) return;
  inner_.on_abort();
  if (const auto y = inner_.output()) {
    finish(*y);
  } else {
    finish_bot();
  }
}

std::vector<std::unique_ptr<sim::IParty>> make_leaky_and_parties(const Bytes& x0,
                                                                 const Bytes& x1, Rng& rng) {
  std::vector<std::unique_ptr<sim::IParty>> parties;
  parties.push_back(std::make_unique<LeakyAndParty>(0, x0, rng.fork("leaky-p0")));
  parties.push_back(std::make_unique<LeakyAndParty>(1, x1, rng.fork("leaky-p1")));
  return parties;
}

std::unique_ptr<sim::IFunctionality> make_leaky_and_functionality(mpc::NotesPtr notes) {
  return std::make_unique<ShareGenFunc>(make_gk_and_params(4), std::move(notes));
}

}  // namespace fairsfe::fair
