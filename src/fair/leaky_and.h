// Π̃ — the intuitively insecure protocol of Section 5 / Appendix C.5 that
// separates 1/p-security from the paper's utility-based notion.
//
// Computing x1 ∧ x2:
//   * the first message is a 0-bit from p2 to p1;
//   * if p2 sent a 1-bit instead (only a corrupted p2 does), p1 tosses a
//     biased coin C with Pr[C=1] = 1/4 and sends its *input* x1 to p2 when
//     C = 1 (otherwise an empty message);
//   * then both run the standard 1/4-secure protocol (GK with p = 4).
//
// Π̃ is provably 1/2-secure and fully private in the sense of [GK10]
// (Lemma 27) yet leaks the honest input with probability 1/4 — it does not
// realize F^{f,$}_sfe (Lemma 26). Experiment E11 measures the leak and the
// distinguishing gap.
#pragma once

#include "fair/gk.h"

namespace fairsfe::fair {

class LeakyAndParty final : public sim::PartyBase<LeakyAndParty> {
 public:
  LeakyAndParty(sim::PartyId id, Bytes input, Rng rng);

  std::vector<sim::Message> on_round(int round, sim::MsgView in) override;
  void on_abort() override;

 private:
  Bytes input_;
  Rng rng_;
  GkParty inner_;
  bool preamble_done_ = false;
  int calls_ = 0;
};

/// The preamble bit message (p2 -> p1) and the leak message (p1 -> p2).
Bytes encode_preamble(std::uint8_t bit);
std::optional<std::uint8_t> decode_preamble(ByteView payload);
Bytes encode_leak(const std::optional<Bytes>& input);
/// Returns the leaked input if the message carries one; an engaged optional
/// holding std::nullopt-like empty marker is encoded as flag 0.
std::optional<std::optional<Bytes>> decode_leak(ByteView payload);

std::vector<std::unique_ptr<sim::IParty>> make_leaky_and_parties(const Bytes& x0,
                                                                 const Bytes& x1, Rng& rng);

/// The ShareGen functionality Π̃'s embedded GK protocol expects.
std::unique_ptr<sim::IFunctionality> make_leaky_and_functionality(mpc::NotesPtr notes);

}  // namespace fairsfe::fair
