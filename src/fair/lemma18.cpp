#include "fair/lemma18.h"

namespace fairsfe::fair {

using sim::Message;
using sim::MsgView;

namespace {
constexpr std::uint8_t kTagFlag = 50;
}  // namespace

Bytes encode_flag(std::uint8_t flag) {
  Writer w;
  w.u8(kTagFlag).u8(flag);
  return w.take();
}

std::optional<std::uint8_t> decode_flag(ByteView payload) {
  Reader r(payload);
  const auto tag = r.u8();
  if (!tag || *tag != kTagFlag) return std::nullopt;
  const auto flag = r.u8();
  if (!flag || !r.at_end()) return std::nullopt;
  return flag;
}

Lemma18Party::Lemma18Party(sim::PartyId id, mpc::SfeSpec spec, Bytes input, Rng rng)
    : PartyBase(id), spec_(std::move(spec)), input_(std::move(input)), rng_(std::move(rng)) {}

std::vector<Message> Lemma18Party::on_round(int /*round*/, MsgView in) {
  switch (step_) {
    case Step::kSendInput: {
      step_ = Step::kAwaitFuncOutput;
      return {Message{id_, sim::kFunc, sim::encode_func_input(input_)}};
    }
    case Step::kAwaitFuncOutput: {
      const Message* fm = first_from(in, sim::kFunc);
      if (fm == nullptr) return {};
      const auto body = sim::decode_func_output(fm->payload);
      const auto priv = body ? decode_priv_output(*body) : std::nullopt;
      if (!priv) {
        finish_bot();
        return {};
      }
      vk_ = priv->vk;
      if (priv->has_value && lamport_verify(vk_, priv->y, priv->sig)) {
        my_value_ = std::make_pair(priv->y, priv->sig);
      }
      // Step 2: send "0" to all other parties.
      step_ = Step::kAwaitFlags;
      std::vector<Message> out;
      for (std::size_t p = 0; p < spec_.n; ++p) {
        if (p == static_cast<std::size_t>(id_)) continue;
        out.push_back(Message{id_, static_cast<sim::PartyId>(p), encode_flag(0)});
      }
      return out;
    }
    case Step::kAwaitFlags: {
      if (!my_value_) {
        // Not p_{i*}: flags are irrelevant; wait for a value (which a rushing
        // corrupted p_{i*} might even have sent a round early).
        for (const Message& m : in) {
          const auto ann = decode_announcement(m.payload);
          if (ann && lamport_verify(vk_, ann->first, ann->second)) {
            finish(ann->first);
            return {};
          }
        }
        step_ = Step::kAwaitValue;
        return {};
      }
      // Step 3: decide how to distribute the value.
      std::vector<char> sent_zero(spec_.n, 0);
      sent_zero[static_cast<std::size_t>(id_)] = 1;  // self counts as compliant
      for (const Message& m : in) {
        if (m.from < 0 || m.from >= static_cast<sim::PartyId>(spec_.n)) continue;
        const auto flag = decode_flag(m.payload);
        if (flag && *flag == 0) sent_zero[static_cast<std::size_t>(m.from)] = 1;
      }
      bool all_zero = true;
      for (const char z : sent_zero) {
        if (!z) all_zero = false;
      }
      std::vector<Message> out;
      if (all_zero || rng_.bit()) {
        out.push_back(Message{id_, sim::kBroadcast, encode_announcement(my_value_)});
      } else {
        // Tails: reveal only to the deviators.
        for (std::size_t p = 0; p < spec_.n; ++p) {
          if (sent_zero[p]) continue;
          out.push_back(Message{id_, static_cast<sim::PartyId>(p),
                                encode_announcement(my_value_)});
        }
      }
      finish(my_value_->first);
      return out;
    }
    case Step::kAwaitValue: {
      for (const Message& m : in) {
        const auto ann = decode_announcement(m.payload);
        if (ann && lamport_verify(vk_, ann->first, ann->second)) {
          finish(ann->first);
          return {};
        }
      }
      finish_bot();
      return {};
    }
  }
  return {};
}

void Lemma18Party::on_abort() {
  if (done()) return;
  if (my_value_) {
    finish(my_value_->first);
  } else {
    finish_bot();
  }
}

std::vector<std::unique_ptr<sim::IParty>> make_lemma18_parties(
    const mpc::SfeSpec& spec, const std::vector<Bytes>& inputs, Rng& rng) {
  std::vector<std::unique_ptr<sim::IParty>> parties;
  parties.reserve(inputs.size());
  for (std::size_t p = 0; p < inputs.size(); ++p) {
    parties.push_back(std::make_unique<Lemma18Party>(static_cast<sim::PartyId>(p), spec,
                                                     inputs[p], rng.fork("lemma18")));  // LINT-ALLOW(rng-fork-in-loop): fork counter is the party index (parent enters at 0); callers fork this parent afterwards, so re-indexing would re-seed pinned goldens
  }
  return parties;
}

}  // namespace fairsfe::fair
