// The artificial protocol of Lemma 18: optimally γ-fair but *not*
// utility-balanced.
//
// Phase 1 is ΠOptnSFE's private-output evaluation (PrivOutputFunc): p_{i*}
// holds (y, σ). Then:
//   step 2 — every party sends the flag "0" to all others;
//   step 3 — if p_{i*} received only 0s it broadcasts (y, σ); otherwise it
//            tosses a fair coin: heads → broadcast, tails → send (y, σ) only
//            to the parties that did NOT send a 0;
//   step 4 — every party that received a validly signed value outputs it.
//
// A single corrupted party that sends "1" in step 2 receives the output
// point-to-point on tails while the other honest parties get nothing:
// u(A₁) = γ10/n + (n-1)/n · (γ10+γ11)/2, which together with the standard
// (n-1)-adversary breaks the balance bound of Lemma 14 — yet the best
// attacker still cannot beat ((n-1)γ10 + γ11)/n, so the protocol stays
// optimally fair. Experiment E08.
#pragma once

#include <memory>
#include <vector>

#include "fair/optnsfe.h"

namespace fairsfe::fair {

class Lemma18Party final : public sim::PartyBase<Lemma18Party> {
 public:
  Lemma18Party(sim::PartyId id, mpc::SfeSpec spec, Bytes input, Rng rng);

  std::vector<sim::Message> on_round(int round, sim::MsgView in) override;
  void on_abort() override;

 private:
  enum class Step { kSendInput, kAwaitFuncOutput, kAwaitFlags, kAwaitValue };

  mpc::SfeSpec spec_;
  Bytes input_;
  Rng rng_;

  Step step_ = Step::kSendInput;
  Bytes vk_;
  std::optional<std::pair<Bytes, Bytes>> my_value_;
};

/// The step-2 flag message ("0" when honest, "1" for the Lemma 18 deviator).
Bytes encode_flag(std::uint8_t flag);
std::optional<std::uint8_t> decode_flag(ByteView payload);

std::vector<std::unique_ptr<sim::IParty>> make_lemma18_parties(
    const mpc::SfeSpec& spec, const std::vector<Bytes>& inputs, Rng& rng);

}  // namespace fairsfe::fair
