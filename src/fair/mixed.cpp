#include "fair/mixed.h"

#include "fair/lemma18.h"

namespace fairsfe::fair {

ProtocolInstance make_optn_instance(const mpc::SfeSpec& spec,
                                    const std::vector<Bytes>& inputs, Rng& rng,
                                    mpc::NotesPtr notes) {
  ProtocolInstance inst;
  inst.parties = make_optn_parties(spec, inputs, rng);
  inst.functionality = std::make_unique<PrivOutputFunc>(spec, std::move(notes));
  return inst;
}

ProtocolInstance make_half_gmw_instance(const mpc::SfeSpec& spec,
                                        const std::vector<Bytes>& inputs, Rng& rng,
                                        mpc::NotesPtr notes) {
  ProtocolInstance inst;
  inst.parties = make_half_gmw_parties(spec, inputs, rng);
  inst.functionality = std::make_unique<ShamirDealFunc>(spec, std::move(notes));
  return inst;
}

ProtocolInstance make_lemma18_instance(const mpc::SfeSpec& spec,
                                       const std::vector<Bytes>& inputs, Rng& rng,
                                       mpc::NotesPtr notes) {
  ProtocolInstance inst;
  inst.parties = make_lemma18_parties(spec, inputs, rng);
  inst.functionality = std::make_unique<PrivOutputFunc>(spec, std::move(notes));
  return inst;
}

ProtocolInstance make_mixed_instance(const mpc::SfeSpec& spec,
                                     const std::vector<Bytes>& inputs, Rng& rng,
                                     mpc::NotesPtr notes) {
  if (spec.n % 2 == 1) {
    return make_half_gmw_instance(spec, inputs, rng, std::move(notes));
  }
  return make_optn_instance(spec, inputs, rng, std::move(notes));
}

}  // namespace fairsfe::fair
