// Protocol bundles and the mixed protocol Π′ of Appendix B.1.
//
// `ProtocolInstance` packages a protocol's parties with the hybrid
// functionality they expect — the unit the estimator's setup factories and
// the benches construct.
//
// Π′ dispatches on the number of parties: for odd n it runs the fully fair
// honest-majority protocol Π½GMW (whose per-t utilities meet the balance sum
// exactly when n is odd), and for even n it runs ΠOptnSFE. Π′ is
// utility-balanced for every n but *not* optimally fair (a ⌈n/2⌉-coalition
// against the odd-n branch earns γ10 > ((n-1)γ10+γ11)/n) — one half of the
// separation shown in Appendix B.1.
#pragma once

#include <memory>
#include <vector>

#include "fair/gmw_half.h"
#include "fair/optnsfe.h"

namespace fairsfe::fair {

struct ProtocolInstance {
  std::vector<std::unique_ptr<sim::IParty>> parties;
  std::unique_ptr<sim::IFunctionality> functionality;
};

/// ΠOptnSFE bundle (parties + PrivOutputFunc).
ProtocolInstance make_optn_instance(const mpc::SfeSpec& spec,
                                    const std::vector<Bytes>& inputs, Rng& rng,
                                    mpc::NotesPtr notes = nullptr);

/// Π½GMW bundle (parties + ShamirDealFunc).
ProtocolInstance make_half_gmw_instance(const mpc::SfeSpec& spec,
                                        const std::vector<Bytes>& inputs, Rng& rng,
                                        mpc::NotesPtr notes = nullptr);

/// Lemma 18 bundle (parties + PrivOutputFunc).
ProtocolInstance make_lemma18_instance(const mpc::SfeSpec& spec,
                                       const std::vector<Bytes>& inputs, Rng& rng,
                                       mpc::NotesPtr notes = nullptr);

/// Π′: Π½GMW for odd n, ΠOptnSFE for even n.
ProtocolInstance make_mixed_instance(const mpc::SfeSpec& spec,
                                     const std::vector<Bytes>& inputs, Rng& rng,
                                     mpc::NotesPtr notes = nullptr);

}  // namespace fairsfe::fair
