#include "fair/opt2_compiled.h"

#include "util/check.h"

namespace fairsfe::fair {

using circuit::Gate;
using circuit::GateType;
using sim::Message;
using sim::MsgView;

namespace {
constexpr std::uint8_t kTagSummand = 21;
constexpr int kOpeningDeadline = 5;

Bytes enc_summand(const std::vector<bool>& bits) {
  Writer w;
  w.u8(kTagSummand).u32(static_cast<std::uint32_t>(bits.size()));
  w.blob(circuit::bits_to_bytes(bits));
  return w.take();
}

std::optional<std::vector<bool>> dec_summand(ByteView payload, std::size_t expect) {
  Reader r(payload);
  const auto tag = r.u8();
  if (!tag || *tag != kTagSummand) return std::nullopt;
  const auto count = r.u32();
  const auto blob = r.blob();
  if (!count || !blob || *count != expect || !r.at_end()) return std::nullopt;
  return circuit::bytes_to_bits(*blob, expect);
}

bool is_inner_traffic(const Message& m) {
  if (m.from == sim::kFunc) return true;
  Reader r(m.payload);
  const auto tag = r.u8();
  return tag && *tag != kTagSummand;
}
}  // namespace

mpc::YaoConfig make_opt2_fprime(const circuit::Circuit& base) {
  FAIRSFE_CHECK(base.num_parties() == 2, "opt2: base circuit must be 2-party");
  const std::size_t m = base.outputs().size();
  const std::size_t w0 = base.input_width(0);
  const std::size_t w1 = base.input_width(1);

  std::vector<Gate> gates = base.gates();
  std::vector<std::size_t> widths = {w0 + m + 1, w1 + 1};

  auto push_input = [&gates](std::uint32_t party, std::size_t index) {
    Gate g;
    g.type = GateType::kInput;
    g.party = party;
    g.input_index = static_cast<std::uint32_t>(index);
    gates.push_back(g);
    return static_cast<circuit::Wire>(gates.size() - 1);
  };
  auto push_xor = [&gates](circuit::Wire a, circuit::Wire b) {
    Gate g;
    g.type = GateType::kXor;
    g.a = a;
    g.b = b;
    gates.push_back(g);
    return static_cast<circuit::Wire>(gates.size() - 1);
  };

  // p0 extra inputs: mask (m bits) then coin; p1 extra input: coin.
  std::vector<circuit::Wire> mask;
  mask.reserve(m);
  for (std::size_t i = 0; i < m; ++i) mask.push_back(push_input(0, w0 + i));
  const circuit::Wire coin0 = push_input(0, w0 + m);
  const circuit::Wire coin1 = push_input(1, w1);

  std::vector<circuit::Wire> outputs;
  outputs.reserve(m + 1);
  for (std::size_t i = 0; i < m; ++i) {
    outputs.push_back(push_xor(base.outputs()[i], mask[i]));  // y_i ^ mask_i
  }
  outputs.push_back(push_xor(coin0, coin1));  // î

  mpc::YaoConfig cfg;
  cfg.circuit = std::make_shared<const circuit::Circuit>(2, std::move(gates),
                                                         std::move(widths),
                                                         std::move(outputs));
  // p1 learns its (blinded) summand and î; p0 learns only î.
  cfg.output_map[0] = {m};
  cfg.output_map[1].resize(m + 1);
  for (std::size_t i = 0; i <= m; ++i) cfg.output_map[1][i] = i;
  return cfg;
}

std::shared_ptr<const Opt2CompiledPlan> Opt2CompiledPlan::build(
    std::shared_ptr<const circuit::Circuit> base) {
  auto plan = std::make_shared<Opt2CompiledPlan>();
  plan->fprime = make_opt2_fprime(*base);
  plan->base = std::move(base);
  return plan;
}

Opt2CompiledParty::Opt2CompiledParty(sim::PartyId id,
                                     std::shared_ptr<const Opt2CompiledPlan> plan,
                                     std::vector<bool> input, Rng rng)
    : PartyBase(id), plan_(std::move(plan)), input_(std::move(input)),
      rng_(std::move(rng)) {
  FAIRSFE_CHECK(id == 0 || id == 1, "Opt2Party: protocol is 2-party");
  const mpc::YaoConfig& cfg = plan_->fprime;
  const std::size_t m = plan_->base->outputs().size();
  std::vector<bool> padded = input_;
  if (id == 0) {
    mask_.reserve(m);
    for (std::size_t i = 0; i < m; ++i) mask_.push_back(rng_.bit());
    padded.insert(padded.end(), mask_.begin(), mask_.end());
    padded.push_back(rng_.bit());  // coin0
    inner_ = std::make_unique<mpc::YaoGarbler>(cfg, padded, rng_.fork("inner-yao"));
  } else {
    padded.push_back(rng_.bit());  // coin1 — LINT-ALLOW(rng-draw-after-fork): id==0 forks inner-yao, id==1 draws coin1; the branches are disjoint so no party both forks and then draws
    inner_ = std::make_unique<mpc::YaoEvaluator>(cfg, padded);
  }
}

Opt2CompiledParty::Opt2CompiledParty(sim::PartyId id,
                                     std::shared_ptr<const circuit::Circuit> base,
                                     std::vector<bool> input, Rng rng)
    : Opt2CompiledParty(id, Opt2CompiledPlan::build(std::move(base)), std::move(input),
                        std::move(rng)) {}

Opt2CompiledParty::Opt2CompiledParty(const Opt2CompiledParty& other)
    : PartyBase(other),
      plan_(other.plan_),
      input_(other.input_),
      rng_(other.rng_),
      inner_(other.inner_->clone()),
      mask_(other.mask_),
      phase_(other.phase_),
      i_hat_(other.i_hat_),
      my_summand_(other.my_summand_),
      wait_(other.wait_) {}

void Opt2CompiledParty::finish_with_default() {
  // Evaluate the base circuit on my input and the peer's default (all-zero)
  // input.
  std::vector<std::vector<bool>> xs = {
      std::vector<bool>(plan_->base->input_width(0), false),
      std::vector<bool>(plan_->base->input_width(1), false)};
  xs[static_cast<std::size_t>(id_)] = input_;
  finish(circuit::bits_to_bytes(plan_->base->eval(xs)));
}

bool Opt2CompiledParty::absorb_inner_output() {
  const auto out = inner_->output();
  if (!out) return false;
  const std::size_t m = plan_->base->outputs().size();
  if (id_ == 0) {
    // Output = [î] (1 bit); my summand is the mask I chose.
    const auto bits = circuit::bytes_to_bits(*out, 1);
    i_hat_ = bits[0] ? 1 : 0;
    my_summand_ = mask_;
  } else {
    // Output = [blinded y (m bits), î].
    const auto bits = circuit::bytes_to_bits(*out, m + 1);
    my_summand_.assign(bits.begin(), bits.begin() + static_cast<std::ptrdiff_t>(m));
    i_hat_ = bits[m] ? 1 : 0;
  }
  return true;
}

std::vector<Message> Opt2CompiledParty::on_round(int round, MsgView in) {
  std::vector<Message> inner_in;
  std::vector<Message> wrapper_in;
  for (const Message& m : in) {
    (is_inner_traffic(m) ? inner_in : wrapper_in).push_back(m);
  }

  std::vector<Message> out;
  if (phase_ == Phase::kInner) {
    if (!inner_->done()) {
      std::vector<Message> io = inner_->on_round(round, inner_in);
      out.insert(out.end(), io.begin(), io.end());
    }
    if (inner_->done()) {
      if (!absorb_inner_output()) {
        // Phase 1 aborted: default-input local evaluation.
        finish_with_default();
        return out;
      }
      wait_ = 0;
      if (i_hat_ == id_) {
        phase_ = Phase::kAwaitOpening;
      } else {
        // I open first — but one round later, so both parties (whose inner
        // protocols finish one round apart) are past phase 1.
        phase_ = Phase::kOpen;
      }
    }
    return out;
  }

  switch (phase_) {
    case Phase::kInner:
      return out;  // unreachable
    case Phase::kOpen: {
      phase_ = Phase::kAwaitFinal;
      wait_ = 0;
      out.push_back(Message{id_, 1 - id_, enc_summand(my_summand_)});
      return out;
    }
    case Phase::kAwaitOpening: {
      const std::size_t m = plan_->base->outputs().size();
      for (const Message& msg : wrapper_in) {
        if (msg.from != 1 - id_) continue;
        const auto peer = dec_summand(msg.payload, m);
        if (!peer) continue;
        std::vector<bool> y(m);
        for (std::size_t i = 0; i < m; ++i) y[i] = my_summand_[i] != (*peer)[i];
        finish(circuit::bits_to_bytes(y));
        out.push_back(Message{id_, 1 - id_, enc_summand(my_summand_)});
        return out;
      }
      if (++wait_ > kOpeningDeadline) finish_with_default();
      return out;
    }
    case Phase::kAwaitFinal: {
      const std::size_t m = plan_->base->outputs().size();
      for (const Message& msg : wrapper_in) {
        if (msg.from != 1 - id_) continue;
        const auto peer = dec_summand(msg.payload, m);
        if (!peer) continue;
        std::vector<bool> y(m);
        for (std::size_t i = 0; i < m; ++i) y[i] = my_summand_[i] != (*peer)[i];
        finish(circuit::bits_to_bytes(y));
        return out;
      }
      if (++wait_ > kOpeningDeadline) finish_bot();  // the unfair abort
      return out;
    }
  }
  return out;
}

void Opt2CompiledParty::on_abort() {
  if (done()) return;
  switch (phase_) {
    case Phase::kInner:
    case Phase::kAwaitOpening:
      finish_with_default();
      return;
    case Phase::kOpen:
    case Phase::kAwaitFinal:
      finish_bot();
      return;
  }
}

std::vector<std::unique_ptr<sim::IParty>> make_opt2_compiled_parties(
    std::shared_ptr<const Opt2CompiledPlan> plan,
    const std::vector<std::vector<bool>>& inputs, Rng& rng) {
  FAIRSFE_CHECK(inputs.size() == 2, "make_opt2_parties: protocol is 2-party");
  std::vector<std::unique_ptr<sim::IParty>> parties;
  parties.push_back(
      std::make_unique<Opt2CompiledParty>(0, plan, inputs[0], rng.fork("opt2c-p0")));
  parties.push_back(
      std::make_unique<Opt2CompiledParty>(1, std::move(plan), inputs[1],
                                          rng.fork("opt2c-p1")));
  return parties;
}

std::vector<std::unique_ptr<sim::IParty>> make_opt2_compiled_parties(
    std::shared_ptr<const circuit::Circuit> base,
    const std::vector<std::vector<bool>>& inputs, Rng& rng) {
  return make_opt2_compiled_parties(Opt2CompiledPlan::build(std::move(base)), inputs,
                                    rng);
}

}  // namespace fairsfe::fair
