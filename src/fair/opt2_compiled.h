// ΠOpt2SFE compiled end-to-end: phase 1 instantiated with the Yao
// garbled-circuit substrate instead of the ideal F^{f′,⊥} box.
//
// The f′ circuit extends the base circuit C for f with
//   * an m-bit mask input for p0 (its XOR summand of y = C(x0, x1)),
//   * one coin bit per party (î = coin0 ⊕ coin1),
// and outputs [y ⊕ mask]  — visible to p1 only (its summand) — plus î,
// visible to both. Phase 2 then opens the two summands towards p_î first,
// exactly as in the hybrid ΠOpt2SFE (fair/opt2sfe.h): a phase-1 failure or a
// first-opening failure falls back to the default-input local evaluation; a
// failure of the closing opening is the unavoidable unfair abort.
//
// Difference from the hybrid version: the sharing is *unauthenticated* (MACs
// inside a garbled circuit would be disproportionate); against the
// honest-but-aborting adversaries of the paper's bounds this changes
// nothing — deviations are detected as missing messages, never as forged
// ones — and experiment E12 confirms the measured utility is identical to
// the hybrid protocol's, which is the RPD composition claim in action.
#pragma once

#include "circuit/builder.h"
#include "mpc/yao.h"

namespace fairsfe::fair {

/// Build the f′ circuit and Yao output visibility for a base 2-party circuit.
mpc::YaoConfig make_opt2_fprime(const circuit::Circuit& base);

/// Precompiled protocol plan: the f′ YaoConfig is a pure function of the base
/// circuit, so it is built once per circuit family and shared read-only
/// across all Monte-Carlo runs and both parties (a party's setup is then a
/// pointer grab instead of an O(gates) circuit rebuild).
struct Opt2CompiledPlan {
  std::shared_ptr<const circuit::Circuit> base;
  mpc::YaoConfig fprime;

  [[nodiscard]] static std::shared_ptr<const Opt2CompiledPlan> build(
      std::shared_ptr<const circuit::Circuit> base);
};

class Opt2CompiledParty final : public sim::PartyBase<Opt2CompiledParty> {
 public:
  /// Shared-plan constructor: the hot path for repeated runs.
  Opt2CompiledParty(sim::PartyId id, std::shared_ptr<const Opt2CompiledPlan> plan,
                    std::vector<bool> input, Rng rng);
  /// Compatibility: builds a private plan from `base` (one-off runs).
  Opt2CompiledParty(sim::PartyId id, std::shared_ptr<const circuit::Circuit> base,
                    std::vector<bool> input, Rng rng);

  Opt2CompiledParty(const Opt2CompiledParty& other);
  Opt2CompiledParty& operator=(const Opt2CompiledParty&) = delete;

  std::vector<sim::Message> on_round(int round, sim::MsgView in) override;
  void on_abort() override;

 private:
  enum class Phase { kInner, kOpen, kAwaitOpening, kAwaitFinal };

  void finish_with_default();
  /// Parse the inner Yao output into (my summand, î).
  bool absorb_inner_output();

  std::shared_ptr<const Opt2CompiledPlan> plan_;
  std::vector<bool> input_;
  Rng rng_;

  std::unique_ptr<sim::IParty> inner_;
  std::vector<bool> mask_;  // p0 only: its summand
  Phase phase_ = Phase::kInner;
  sim::PartyId i_hat_ = 0;
  std::vector<bool> my_summand_;
  int wait_ = 0;
};

/// Build both parties (p0 garbles). Run with an OtHub functionality.
std::vector<std::unique_ptr<sim::IParty>> make_opt2_compiled_parties(
    std::shared_ptr<const Opt2CompiledPlan> plan,
    const std::vector<std::vector<bool>>& inputs, Rng& rng);
/// Compatibility overload: compiles the plan, then builds both parties.
std::vector<std::unique_ptr<sim::IParty>> make_opt2_compiled_parties(
    std::shared_ptr<const circuit::Circuit> base,
    const std::vector<std::vector<bool>>& inputs, Rng& rng);

}  // namespace fairsfe::fair
