#include "fair/opt2sfe.h"

namespace fairsfe::fair {

using sim::Message;
using sim::MsgView;

namespace {
constexpr std::uint8_t kTagOpening = 20;

Bytes enc_opening(const AuthShare2& share) {
  Writer w;
  w.u8(kTagOpening).blob(share.opening_to_bytes());
  return w.take();
}

std::optional<Bytes> find_opening(MsgView in, sim::PartyId from) {
  for (const Message& m : in) {
    if (m.from != from) continue;
    Reader r(m.payload);
    const auto t = r.u8();
    if (!t || *t != kTagOpening) continue;
    const auto body = r.blob();
    if (body && r.at_end()) return body;
  }
  return std::nullopt;
}
}  // namespace

Opt2ShareFunc::Opt2ShareFunc(mpc::SfeSpec spec, mpc::NotesPtr notes, int patience)
    : spec_(std::move(spec)), notes_(std::move(notes)), patience_(patience) {}

std::vector<Message> Opt2ShareFunc::on_round(sim::FuncContext& ctx, int /*round*/,
                                             MsgView in) {
  if (fired_) return {};
  // Inputs accumulate across rounds so that a late (delayed / post-restart)
  // sender can still contribute within the patience window.
  for (const Message& m : in) {
    if (m.from != 0 && m.from != 1) continue;
    const auto x = sim::decode_func_input(m.payload);
    if (x && !inputs_[static_cast<std::size_t>(m.from)]) {
      inputs_[static_cast<std::size_t>(m.from)] = *x;
    }
  }
  seen_traffic_ = seen_traffic_ || !in.empty();
  if (!seen_traffic_) return {};
  if ((!inputs_[0] || !inputs_[1]) && waited_ < patience_) {
    ++waited_;
    return {};
  }
  fired_ = true;

  const std::array<std::optional<Bytes>, 2>& inputs = inputs_;

  std::vector<Message> out;
  if (!inputs[0] || !inputs[1]) {
    if (notes_) notes_->vals["phase1_aborted"] = 1;
    out.push_back(Message{sim::kFunc, 0, sim::encode_func_abort()});
    out.push_back(Message{sim::kFunc, 1, sim::encode_func_abort()});
    return out;
  }

  const Bytes y = spec_.eval({*inputs[0], *inputs[1]});
  const AuthSharing2 sharing = auth_share2(y, ctx.rng());
  const auto i_hat = static_cast<sim::PartyId>(ctx.rng().below(2));
  if (notes_) {
    notes_->blobs["y"] = y;
    notes_->vals["i_hat"] = static_cast<std::uint64_t>(i_hat);
  }

  auto encode_out = [i_hat](const AuthShare2& share) {
    Writer w;
    w.blob(share.to_bytes()).u8(static_cast<std::uint8_t>(i_hat));
    return sim::encode_func_output(w.bytes());
  };
  std::vector<Message> deliveries = {
      Message{sim::kFunc, 0, encode_out(sharing.share1)},
      Message{sim::kFunc, 1, encode_out(sharing.share2)},
  };

  std::vector<Message> corrupted_outputs;
  for (const Message& m : deliveries) {
    if (ctx.corrupted().count(m.to)) corrupted_outputs.push_back(m);
  }
  const bool abort = ctx.adversary_abort_gate(corrupted_outputs);
  if (notes_) notes_->vals["phase1_aborted"] = abort ? 1 : 0;
  for (Message& m : deliveries) {
    if (abort && !ctx.corrupted().count(m.to)) m.payload = sim::encode_func_abort();
    out.push_back(std::move(m));
  }
  return out;
}

Opt2Party::Opt2Party(sim::PartyId id, mpc::SfeSpec spec, Bytes input, Rng rng)
    : PartyBase(id), spec_(std::move(spec)), input_(std::move(input)), rng_(std::move(rng)) {}

void Opt2Party::finish_with_default() {
  std::vector<Bytes> xs = spec_.default_inputs;
  xs[static_cast<std::size_t>(id_)] = input_;
  finish(spec_.eval(xs));
}

std::vector<Message> Opt2Party::on_round(int /*round*/, MsgView in) {
  switch (step_) {
    case Step::kSendInput: {
      step_ = Step::kAwaitShare;
      return {Message{id_, sim::kFunc, sim::encode_func_input(input_)}};
    }
    case Step::kAwaitShare: {
      const Message* fm = first_from(in, sim::kFunc);
      if (fm == nullptr) return {};  // functionality still working
      const auto body = sim::decode_func_output(fm->payload);
      if (!body) {
        // Phase 1 aborted: default-input local evaluation.
        finish_with_default();
        return {};
      }
      Reader r(*body);
      const auto share_bytes = r.blob();
      const auto idx = r.u8();
      const auto share = share_bytes ? AuthShare2::from_bytes(*share_bytes) : std::nullopt;
      if (!share || !idx || *idx > 1 || !r.at_end()) {
        finish_with_default();
        return {};
      }
      share_ = *share;
      i_hat_ = static_cast<sim::PartyId>(*idx);
      if (i_hat_ == id_) {
        // Reconstruction comes to me first; the peer opens next round.
        step_ = Step::kAwaitOpening;
        return {};
      }
      // I open towards p_î now and expect the closing opening in two rounds.
      step_ = Step::kIdleOneRound;
      return {Message{id_, peer(), enc_opening(share_)}};
    }
    case Step::kAwaitOpening: {
      const auto body = find_opening(in, peer());
      const auto y = body ? auth_reconstruct2(share_, *body) : std::nullopt;
      if (!y) {
        // First reconstruction round failed: default-input local evaluation.
        finish_with_default();
        return {};
      }
      finish(*y);
      return {Message{id_, peer(), enc_opening(share_)}};
    }
    case Step::kIdleOneRound: {
      // The closing opening may arrive early if the peer rushes; accept it.
      const auto body = find_opening(in, peer());
      if (body) {
        const auto y = auth_reconstruct2(share_, *body);
        if (y) {
          finish(*y);
        } else {
          finish_bot();
        }
        return {};
      }
      step_ = Step::kAwaitFinal;
      return {};
    }
    case Step::kAwaitFinal: {
      const auto body = find_opening(in, peer());
      const auto y = body ? auth_reconstruct2(share_, *body) : std::nullopt;
      if (!y) {
        // Second reconstruction round failed: the unfair abort. Output ⊥.
        finish_bot();
        return {};
      }
      finish(*y);
      return {};
    }
  }
  return {};
}

void Opt2Party::on_abort() {
  if (done()) return;
  switch (step_) {
    case Step::kSendInput:
    case Step::kAwaitShare:
    case Step::kAwaitOpening:
      // Phase 1 (or the first reconstruction round) failed.
      finish_with_default();
      return;
    case Step::kIdleOneRound:
    case Step::kAwaitFinal:
      finish_bot();
      return;
  }
}

std::vector<std::unique_ptr<sim::IParty>> make_opt2_parties(const mpc::SfeSpec& spec,
                                                            const Bytes& x0, const Bytes& x1,
                                                            Rng& rng) {
  std::vector<std::unique_ptr<sim::IParty>> parties;
  parties.push_back(std::make_unique<Opt2Party>(0, spec, x0, rng.fork("opt2-p0")));
  parties.push_back(std::make_unique<Opt2Party>(1, spec, x1, rng.fork("opt2-p1")));
  return parties;
}

}  // namespace fairsfe::fair
