// ΠOpt2SFE — the optimally γ-fair two-party SFE protocol (paper Section 4.1).
//
// Phase 1 evaluates, via unfair SFE, the function f′ that outputs an
// authenticated 2-of-2 sharing ⟨y⟩ of y = f(x1, x2) together with a uniform
// index î ∈ {1, 2}. Here phase 1 is the hybrid functionality
// `Opt2ShareFunc` (F^{f′,⊥}_sfe); the RPD composition theorem lets any
// secure-with-abort protocol (e.g. the GMW substrate) replace it without
// changing the utility — experiment E12 checks this empirically.
//
// Phase 2 reconstructs the sharing towards p_î first, then towards p_{¬î}:
//   * if phase 1 aborts, the honest party substitutes the default input for
//     its peer and computes f locally;
//   * if the *first* reconstruction round fails, p_î does the same;
//   * if the *second* round fails, p_{¬î} outputs ⊥ — this is the unfair
//     abort the adversary can force with probability 1/2 (event E10),
//     matching the tight bound (γ10 + γ11)/2 of Theorems 3 and 4.
#pragma once

#include <array>
#include <memory>
#include <optional>
#include <vector>

#include "crypto/auth_share.h"
#include "crypto/rng.h"
#include "mpc/sfe_functionalities.h"
#include "sim/party.h"

namespace fairsfe::fair {

/// The f′ functionality: authenticated sharing of y plus the index î.
/// Unfair (abort gate after corrupted outputs). Records "y" (blob) and
/// "i_hat" into notes.
///
/// `patience`: how many extra rounds to wait for a still-missing input after
/// phase-1 traffic first arrives, accumulating inputs across rounds. The
/// default 0 keeps the historical semantics — fire on the first round with
/// any traffic, aborting if an input is absent. Fault runs (E18) raise it so
/// a crash-restarted or delay-hit party can still join phase 1.
class Opt2ShareFunc final : public sim::IFunctionality {
 public:
  explicit Opt2ShareFunc(mpc::SfeSpec spec, mpc::NotesPtr notes = nullptr,
                         int patience = 0);

  std::vector<sim::Message> on_round(sim::FuncContext& ctx, int round,
                                     sim::MsgView in) override;

 private:
  mpc::SfeSpec spec_;
  mpc::NotesPtr notes_;
  int patience_ = 0;
  int waited_ = 0;
  bool seen_traffic_ = false;
  bool fired_ = false;
  std::array<std::optional<Bytes>, 2> inputs_;
};

class Opt2Party final : public sim::PartyBase<Opt2Party> {
 public:
  Opt2Party(sim::PartyId id, mpc::SfeSpec spec, Bytes input, Rng rng);

  std::vector<sim::Message> on_round(int round, sim::MsgView in) override;
  void on_abort() override;

 private:
  enum class Step {
    kSendInput,
    kAwaitShare,     // waiting for f′ output (share, î)
    kAwaitOpening,   // î == me: peer opens towards me first
    kIdleOneRound,   // î == peer: my opening is out; peer's reply is 2 rounds away
    kAwaitFinal,     // î == peer: expect the closing opening now
  };

  [[nodiscard]] sim::PartyId peer() const { return 1 - id_; }
  /// Local fallback: f on my input and the peer's default input.
  void finish_with_default();

  mpc::SfeSpec spec_;
  Bytes input_;
  Rng rng_;

  Step step_ = Step::kSendInput;
  AuthShare2 share_;
  sim::PartyId i_hat_ = 0;
};

/// Build the two ΠOpt2SFE parties plus the matching f′ hybrid functionality.
std::vector<std::unique_ptr<sim::IParty>> make_opt2_parties(const mpc::SfeSpec& spec,
                                                            const Bytes& x0, const Bytes& x1,
                                                            Rng& rng);

}  // namespace fairsfe::fair
