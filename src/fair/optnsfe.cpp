#include "fair/optnsfe.h"

namespace fairsfe::fair {

using sim::Message;
using sim::MsgView;

namespace {
constexpr std::uint8_t kTagAnnounce = 30;
}  // namespace

Bytes encode_announcement(const std::optional<std::pair<Bytes, Bytes>>& value) {
  Writer w;
  w.u8(kTagAnnounce);
  if (value) {
    w.u8(1).blob(value->first).blob(value->second);
  } else {
    w.u8(0);
  }
  return w.take();
}

std::optional<std::pair<Bytes, Bytes>> decode_announcement(ByteView payload) {
  Reader r(payload);
  const auto tag = r.u8();
  if (!tag || *tag != kTagAnnounce) return std::nullopt;
  const auto flag = r.u8();
  if (!flag || *flag == 0) return std::nullopt;
  const auto y = r.blob();
  const auto sig = r.blob();
  if (!y || !sig || !r.at_end()) return std::nullopt;
  return std::make_pair(*y, *sig);
}

std::optional<PrivOutput> decode_priv_output(ByteView body) {
  Reader r(body);
  const auto flag = r.u8();
  if (!flag) return std::nullopt;
  PrivOutput out;
  out.has_value = (*flag != 0);
  if (out.has_value) {
    const auto y = r.blob();
    const auto sig = r.blob();
    if (!y || !sig) return std::nullopt;
    out.y = *y;
    out.sig = *sig;
  }
  const auto vk = r.blob();
  if (!vk || !r.at_end()) return std::nullopt;
  out.vk = *vk;
  return out;
}

PrivOutputFunc::PrivOutputFunc(mpc::SfeSpec spec, mpc::NotesPtr notes)
    : spec_(std::move(spec)), notes_(std::move(notes)) {}

std::vector<Message> PrivOutputFunc::on_round(sim::FuncContext& ctx, int /*round*/,
                                              MsgView in) {
  if (fired_ || in.empty()) return {};
  fired_ = true;

  std::vector<std::optional<Bytes>> inputs(spec_.n);
  for (const Message& m : in) {
    if (m.from < 0 || m.from >= static_cast<sim::PartyId>(spec_.n)) continue;
    const auto x = sim::decode_func_input(m.payload);
    if (x && !inputs[static_cast<std::size_t>(m.from)]) {
      inputs[static_cast<std::size_t>(m.from)] = *x;
    }
  }

  std::vector<Message> out;
  bool complete = true;
  for (const auto& x : inputs) {
    if (!x) complete = false;
  }
  if (!complete) {
    if (notes_) notes_->vals["phase1_aborted"] = 1;
    for (std::size_t p = 0; p < spec_.n; ++p) {
      out.push_back(Message{sim::kFunc, static_cast<sim::PartyId>(p),
                            sim::encode_func_abort()});
    }
    return out;
  }

  std::vector<Bytes> xs(spec_.n);
  for (std::size_t i = 0; i < spec_.n; ++i) xs[i] = *inputs[i];
  const Bytes y = spec_.eval(xs);
  const LamportKeyPair kp = lamport_gen(ctx.rng());
  const Bytes sig = lamport_sign(kp.signing_key, y);
  const std::size_t i_star = ctx.rng().below(spec_.n);
  if (notes_) {
    notes_->blobs["y"] = y;
    notes_->vals["i_star"] = i_star;
  }

  std::vector<Message> deliveries;
  for (std::size_t p = 0; p < spec_.n; ++p) {
    // Hand-rolled writer for the body decode_priv_output() parses.
    // ANALYZE-EMITS(priv_output)
    Writer w;
    if (p == i_star) {
      w.u8(1).blob(y).blob(sig);
    } else {
      w.u8(0);
    }
    w.blob(kp.verification_key);
    deliveries.push_back(Message{sim::kFunc, static_cast<sim::PartyId>(p),
                                 sim::encode_func_output(w.bytes())});
  }

  std::vector<Message> corrupted_outputs;
  for (const Message& m : deliveries) {
    if (ctx.corrupted().count(m.to)) corrupted_outputs.push_back(m);
  }
  const bool abort = ctx.adversary_abort_gate(corrupted_outputs);
  if (notes_) notes_->vals["phase1_aborted"] = abort ? 1 : 0;
  for (Message& m : deliveries) {
    if (abort && !ctx.corrupted().count(m.to)) m.payload = sim::encode_func_abort();
    out.push_back(std::move(m));
  }
  return out;
}

OptNParty::OptNParty(sim::PartyId id, mpc::SfeSpec spec, Bytes input, Rng rng)
    : PartyBase(id), spec_(std::move(spec)), input_(std::move(input)), rng_(std::move(rng)) {}

std::vector<Message> OptNParty::on_round(int /*round*/, MsgView in) {
  switch (step_) {
    case Step::kSendInput: {
      step_ = Step::kAwaitFuncOutput;
      return {Message{id_, sim::kFunc, sim::encode_func_input(input_)}};
    }
    case Step::kAwaitFuncOutput: {
      const Message* fm = first_from(in, sim::kFunc);
      if (fm == nullptr) return {};
      const auto body = sim::decode_func_output(fm->payload);
      const auto priv = body ? decode_priv_output(*body) : std::nullopt;
      if (!priv) {
        // Phase-1 abort: the whole protocol aborts (paper, App. B).
        finish_bot();
        return {};
      }
      vk_ = priv->vk;
      if (priv->has_value && lamport_verify(vk_, priv->y, priv->sig)) {
        my_value_ = std::make_pair(priv->y, priv->sig);
      }
      step_ = Step::kAwaitBroadcasts;
      return {Message{id_, sim::kBroadcast, encode_announcement(my_value_)}};
    }
    case Step::kAwaitBroadcasts: {
      if (my_value_) {
        // p_{i*} broadcast a validly signed value itself and can adopt it
        // regardless of what anyone else announced.
        finish(my_value_->first);
        return {};
      }
      for (const Message& m : in) {
        const auto ann = decode_announcement(m.payload);
        if (ann && lamport_verify(vk_, ann->first, ann->second)) {
          finish(ann->first);
          return {};
        }
      }
      finish_bot();  // nobody announced a validly signed value
      return {};
    }
  }
  return {};
}

void OptNParty::on_abort() {
  if (done()) return;
  if (my_value_) {
    // p_{i*} can always adopt its own value.
    finish(my_value_->first);
  } else {
    finish_bot();
  }
}

std::vector<std::unique_ptr<sim::IParty>> make_optn_parties(const mpc::SfeSpec& spec,
                                                            const std::vector<Bytes>& inputs,
                                                            Rng& rng) {
  std::vector<std::unique_ptr<sim::IParty>> parties;
  parties.reserve(inputs.size());
  for (std::size_t p = 0; p < inputs.size(); ++p) {
    parties.push_back(std::make_unique<OptNParty>(static_cast<sim::PartyId>(p), spec,
                                                  inputs[p], rng.fork("optn-party")));  // LINT-ALLOW(rng-fork-in-loop): fork counter is the party index (parent enters at 0); callers fork this parent afterwards, so re-indexing would re-seed pinned goldens
  }
  return parties;
}

}  // namespace fairsfe::fair
