// ΠOptnSFE — the optimally γ-fair multi-party SFE protocol (paper §4.2,
// Appendix B).
//
// Phase 1 evaluates, via unfair SFE, the private-output functionality
// F^{f,⊥}_priv-sfe: it computes y = f(x₁..xₙ), signs it (one-time Lamport
// key pair generated inside the functionality), picks a uniform i* ∈ [n],
// and privately hands (y, σ) to p_{i*} and ⊥ to everyone else; every party
// receives the verification key vk. Phase 2 is a single broadcast round:
// everyone announces its phase-1 value, and any validly signed y is adopted.
//
// A t-adversary learns y early only by having corrupted p_{i*} (probability
// t/n); withholding the broadcast then yields E10. Otherwise the honest
// p_{i*}'s broadcast reaches everyone (once it is out, rushing does not help)
// and the best event is E11 — giving the tight bound
// (t·γ10 + (n−t)·γ11)/n of Lemma 11 and the optimum of Lemma 13.
#pragma once

#include <memory>
#include <vector>

#include "crypto/lamport.h"
#include "crypto/rng.h"
#include "mpc/sfe_functionalities.h"
#include "sim/party.h"

namespace fairsfe::fair {

/// F^{f,⊥}_priv-sfe. Unfair (abort gate after corrupted outputs). Records
/// "y" (blob) and "i_star" into notes.
class PrivOutputFunc final : public sim::IFunctionality {
 public:
  explicit PrivOutputFunc(mpc::SfeSpec spec, mpc::NotesPtr notes = nullptr);

  std::vector<sim::Message> on_round(sim::FuncContext& ctx, int round,
                                     sim::MsgView in) override;

 private:
  mpc::SfeSpec spec_;
  mpc::NotesPtr notes_;
  bool fired_ = false;
};

class OptNParty final : public sim::PartyBase<OptNParty> {
 public:
  OptNParty(sim::PartyId id, mpc::SfeSpec spec, Bytes input, Rng rng);

  std::vector<sim::Message> on_round(int round, sim::MsgView in) override;
  void on_abort() override;

 private:
  enum class Step { kSendInput, kAwaitFuncOutput, kAwaitBroadcasts };

  mpc::SfeSpec spec_;
  Bytes input_;
  Rng rng_;

  Step step_ = Step::kSendInput;
  Bytes vk_;
  std::optional<std::pair<Bytes, Bytes>> my_value_;  // (y, σ) if I am p_{i*}
};

/// Build the n ΠOptnSFE parties for the given inputs.
std::vector<std::unique_ptr<sim::IParty>> make_optn_parties(const mpc::SfeSpec& spec,
                                                            const std::vector<Bytes>& inputs,
                                                            Rng& rng);

/// Wire helpers shared with the Lemma 18 protocol.
Bytes encode_announcement(const std::optional<std::pair<Bytes, Bytes>>& value);
/// Returns (y, σ) if the payload announces a value, std::nullopt otherwise.
std::optional<std::pair<Bytes, Bytes>> decode_announcement(ByteView payload);
/// Parse a PrivOutputFunc per-party output body: (has_value, y, σ, vk).
struct PrivOutput {
  bool has_value = false;
  Bytes y;
  Bytes sig;
  Bytes vk;
};
std::optional<PrivOutput> decode_priv_output(ByteView body);

}  // namespace fairsfe::fair
