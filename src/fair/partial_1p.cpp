#include "fair/partial_1p.h"

#include "fair/gk.h"
#include "util/check.h"

namespace fairsfe::fair {

using sim::Message;
using sim::MsgView;

Partial1pParams make_partial_1p_and_params(std::size_t p) {
  Partial1pParams params;
  params.spec = mpc::make_and_spec();
  params.p = p;
  params.sample_x1 = [](Rng& rng) { return Bytes{static_cast<std::uint8_t>(rng.bit())}; };
  params.sample_x2 = [](Rng& rng) { return Bytes{static_cast<std::uint8_t>(rng.bit())}; };
  return params;
}

Partial1pShareGenFunc::Partial1pShareGenFunc(Partial1pParams params, mpc::NotesPtr notes)
    : params_(std::move(params)), notes_(std::move(notes)) {
  FAIRSFE_CHECK(params_.p >= 1, "Partial1pShareGenFunc: p must be >= 1");
}

std::vector<Message> Partial1pShareGenFunc::on_round(sim::FuncContext& ctx, int /*round*/,
                                                     MsgView in) {
  if (fired_ || in.empty()) return {};
  fired_ = true;

  std::array<std::optional<Bytes>, 2> inputs;
  for (const Message& m : in) {
    if (m.from != 0 && m.from != 1) continue;
    const auto x = sim::decode_func_input(m.payload);
    if (x && !inputs[static_cast<std::size_t>(m.from)]) {
      inputs[static_cast<std::size_t>(m.from)] = *x;
    }
  }

  std::vector<Message> out;
  if (!inputs[0] || !inputs[1]) {
    if (notes_) notes_->vals["phase1_aborted"] = 1;
    out.push_back(Message{sim::kFunc, 0, sim::encode_func_abort()});
    out.push_back(Message{sim::kFunc, 1, sim::encode_func_abort()});
    return out;
  }

  Rng& rng = ctx.rng();
  const Bytes y = params_.spec.eval({*inputs[0], *inputs[1]});

  // The round-sampling trick: i* uniform over [1, p] — no geometric tail,
  // exactly p iterations, unfair-window probability exactly 1/p.
  const std::size_t p = params_.p;
  const std::size_t i_star = 1 + static_cast<std::size_t>(rng.below(p));
  if (notes_) {
    notes_->blobs["y"] = y;
    notes_->vals["i_star"] = i_star;
  }

  // Both fakes resampled from the function's output distribution on a fresh
  // peer input (the kPolyDomain shape, on both sides).
  auto fake_a = [&]() { return params_.spec.eval({*inputs[0], params_.sample_x2(rng)}); };
  auto fake_b = [&]() { return params_.spec.eval({params_.sample_x1(rng), *inputs[1]}); };

  Writer w1, w2;
  w1.u32(static_cast<std::uint32_t>(p)).blob(fake_a());  // a_0 fallback for p1
  w2.u32(static_cast<std::uint32_t>(p)).blob(fake_b());  // b_0 fallback for p2
  for (std::size_t j = 1; j <= p; ++j) {
    const Bytes a_j = (j < i_star) ? fake_a() : y;
    const Bytes b_j = (j < i_star) ? fake_b() : y;
    const AuthSharing2 sa = auth_share2(a_j, rng);
    const AuthSharing2 sb = auth_share2(b_j, rng);
    w1.blob(sa.share1.to_bytes()).blob(sb.share1.to_bytes());
    w2.blob(sa.share2.to_bytes()).blob(sb.share2.to_bytes());
  }

  std::vector<Message> deliveries = {
      Message{sim::kFunc, 0, sim::encode_func_output(w1.bytes())},
      Message{sim::kFunc, 1, sim::encode_func_output(w2.bytes())},
  };
  std::vector<Message> corrupted_outputs;
  for (const Message& m : deliveries) {
    if (ctx.corrupted().count(m.to)) corrupted_outputs.push_back(m);
  }
  const bool abort = ctx.adversary_abort_gate(corrupted_outputs);
  if (notes_) notes_->vals["phase1_aborted"] = abort ? 1 : 0;
  for (Message& m : deliveries) {
    if (abort && !ctx.corrupted().count(m.to)) m.payload = sim::encode_func_abort();
    out.push_back(std::move(m));
  }
  return out;
}

Partial1pParty::Partial1pParty(sim::PartyId id, Partial1pParams params, Bytes input,
                               Rng rng)
    : PartyBase(id), params_(std::move(params)), input_(std::move(input)),
      rng_(std::move(rng)) {
  FAIRSFE_CHECK(id == 0 || id == 1, "Partial1pParty: protocol is 2-party");
}

void Partial1pParty::finish_with_default() {
  std::vector<Bytes> xs = params_.spec.default_inputs;
  xs[static_cast<std::size_t>(id_)] = input_;
  finish(params_.spec.eval(xs));
}

std::vector<Message> Partial1pParty::make_opening(std::size_t j) const {
  if (j == 0 || j > outgoing_shares_.size()) return {};
  const AuthShare2& share = outgoing_shares_[j - 1];
  return {Message{id_, static_cast<sim::PartyId>(1 - id_),
                  encode_gk_opening(j, share.opening_to_bytes())}};
}

std::vector<Message> Partial1pParty::on_round(int /*round*/, MsgView in) {
  switch (step_) {
    case Step::kSendInput: {
      step_ = Step::kAwaitShares;
      return {Message{id_, sim::kFunc, sim::encode_func_input(input_)}};
    }
    case Step::kAwaitShares: {
      const Message* fm = first_from(in, sim::kFunc);
      if (fm == nullptr) return {};
      const auto body = sim::decode_func_output(fm->payload);
      if (!body) {
        finish_with_default();
        return {};
      }
      Reader r(*body);
      const auto cap = r.u32();
      const auto fallback = r.blob();
      if (!cap || !fallback) {
        finish_with_default();
        return {};
      }
      rounds_ = *cap;
      last_value_ = *fallback;
      for (std::size_t j = 1; j <= rounds_; ++j) {
        const auto sa = r.blob();
        const auto sb = r.blob();
        const auto share_a = sa ? AuthShare2::from_bytes(*sa) : std::nullopt;
        const auto share_b = sb ? AuthShare2::from_bytes(*sb) : std::nullopt;
        if (!share_a || !share_b) {
          finish_with_default();
          return {};
        }
        // p1 reads the a-stream and opens the b-stream; p2 vice versa.
        if (id_ == 0) {
          incoming_shares_.push_back(*share_a);
          outgoing_shares_.push_back(*share_b);
        } else {
          incoming_shares_.push_back(*share_b);
          outgoing_shares_.push_back(*share_a);
        }
      }
      // Simultaneous schedule: BOTH parties open iteration 1 in the same
      // round (they received the dealer output in the same round).
      step_ = Step::kIterate;
      j_ = 1;
      return make_opening(1);
    }
    case Step::kIterate: {
      // My opening of iteration j_ went out last round; the peer's opening
      // of the same iteration must be in this round's input.
      std::optional<Bytes> body;
      for (const Message& m : in) {
        if (m.from != 1 - id_) continue;
        const auto dec = decode_gk_opening(m.payload);
        if (dec && dec->first == j_) {
          body = dec->second;
          break;
        }
      }
      const auto value = body ? auth_reconstruct2(incoming_shares_[j_ - 1], *body)
                              : std::nullopt;
      if (!value) {
        // Peer withheld its opening (or cheated): output the last
        // reconstructed value — the randomized-abort guarantee.
        finish(last_value_);
        return {};
      }
      last_value_ = *value;
      if (j_ == rounds_) {
        // v_p = y by construction (i* ≤ p always).
        finish(last_value_);
        return {};
      }
      ++j_;
      return make_opening(j_);
    }
  }
  return {};
}

void Partial1pParty::on_abort() {
  if (done()) return;
  if (step_ == Step::kIterate) {
    finish(last_value_);
  } else {
    finish_with_default();
  }
}

std::vector<std::unique_ptr<sim::IParty>> make_partial_1p_parties(
    const Partial1pParams& params, const Bytes& x0, const Bytes& x1, Rng& rng) {
  std::vector<std::unique_ptr<sim::IParty>> parties;
  parties.push_back(std::make_unique<Partial1pParty>(0, params, x0, rng.fork("p1p-p0")));
  parties.push_back(std::make_unique<Partial1pParty>(1, params, x1, rng.fork("p1p-p1")));
  return parties;
}

}  // namespace fairsfe::fair
