// Beimel–Omri–Orlov style 1/p-secure partial fairness with the
// round-sampling trick (PAPERS.md; compared against the paper's 1/p section
// in experiment E21).
//
// Where Gordon–Katz draw the switch round i* ~ Geometric(1/(p·|Y|)) over a
// long stream (~8·p·|Y| iterations for a negligible truncation tail), the
// round-sampling construction fixes the iteration count to EXACTLY p and
// draws i* uniform over [1, p]: the dealer prepares value streams
//     a_j = fake for j < i*, a_j = y for j ≥ i*   (reconstructed by p1),
//     b_j = fake for j < i*, b_j = y for j ≥ i*   (reconstructed by p2),
// both fakes resampled from the function's output distribution, and the
// parties open one iteration per round SIMULTANEOUSLY (both send their
// opening of iteration j in the same round). A rushing adversary still gets
// a one-iteration head start — it sees the peer's opening j before deciding
// whether to release its own — but any abort strategy hits j = i* with
// probability exactly 1/p, so under ~γ = (0, 0, 1, 0) every attack earns
// ≤ γ10/p. The price of the short schedule is the coarser guarantee: GK's
// geometric draw gives 1/p against a *noticeability* threshold, while
// round-sampling gives plain 1/p — the measured crossover E21 plots.
//
// Reuses the GK wire pieces: AuthShare2 authenticated sharings and the
// encode_gk_opening / decode_gk_opening framing (fair/gk.h).
#pragma once

#include <memory>
#include <vector>

#include "crypto/auth_share.h"
#include "crypto/rng.h"
#include "mpc/sfe_functionalities.h"
#include "sim/party.h"

namespace fairsfe::fair {

struct Partial1pParams {
  mpc::SfeSpec spec;  ///< must be two-party
  std::size_t p = 2;  ///< the 1/p-security target == the exact iteration count
  std::function<Bytes(Rng&)> sample_x1;  ///< uniform element of p1's domain
  std::function<Bytes(Rng&)> sample_x2;  ///< uniform element of p2's domain

  /// Exchange iterations — exactly p (the round-sampling trick), against
  /// GK's ~8·p·|Y| geometric cap.
  [[nodiscard]] std::size_t rounds() const { return p; }
};

/// Ready-made parameters for the single-bit AND function (the same example
/// function as make_gk_and_params, so E21's crossover compares like with
/// like).
Partial1pParams make_partial_1p_and_params(std::size_t p);

/// The round-sampling dealer. One-shot on first input round: draws i*
/// uniform over [1, p], prepares both authenticated streams, and delivers
/// each party its halves. Unfair abort gate. Records "y" (blob), "i_star",
/// "phase1_aborted" in `notes` — consumed by rpd::notes_switch_round_mapping
/// for the F^{f,$} accounting.
class Partial1pShareGenFunc final : public sim::IFunctionality {
 public:
  explicit Partial1pShareGenFunc(Partial1pParams params, mpc::NotesPtr notes = nullptr);

  std::vector<sim::Message> on_round(sim::FuncContext& ctx, int round,
                                     sim::MsgView in) override;

 private:
  Partial1pParams params_;
  mpc::NotesPtr notes_;
  bool fired_ = false;
};

/// One of the two exchange parties. Simultaneous schedule: after parsing its
/// streams the party sends its opening of iteration 1; each later round it
/// reconstructs the peer's opening j and (if j < p) sends its own opening
/// j+1 — a missing expected opening means the peer aborted, and the party
/// outputs the last value it reconstructed (the randomized-abort guarantee).
class Partial1pParty final : public sim::PartyBase<Partial1pParty> {
 public:
  Partial1pParty(sim::PartyId id, Partial1pParams params, Bytes input, Rng rng);

  std::vector<sim::Message> on_round(int round, sim::MsgView in) override;
  void on_abort() override;

  /// Adversary-visible state (the adversary owns corrupted parties), mirrors
  /// GkParty: used by adversary/partial_1p_attack.h.
  [[nodiscard]] const Bytes& last_value() const { return last_value_; }
  [[nodiscard]] std::size_t iteration() const { return j_; }
  [[nodiscard]] bool stream_started() const { return step_ == Step::kIterate; }

  /// The opening message this party would send for iteration j of its
  /// outgoing stream.
  [[nodiscard]] std::vector<sim::Message> make_opening(std::size_t j) const;

 private:
  enum class Step { kSendInput, kAwaitShares, kIterate };

  void finish_with_default();

  Partial1pParams params_;
  Bytes input_;
  Rng rng_;

  Step step_ = Step::kSendInput;
  std::size_t rounds_ = 0;
  std::size_t j_ = 1;  // iteration whose peer opening is awaited
  Bytes last_value_;   // fallback: the last reconstructed value
  std::vector<AuthShare2> incoming_shares_;  // my halves of the stream I read
  std::vector<AuthShare2> outgoing_shares_;  // my halves of the stream I open
};

/// Build the two exchange parties for inputs (x1, x2); pair with
/// Partial1pShareGenFunc.
std::vector<std::unique_ptr<sim::IParty>> make_partial_1p_parties(
    const Partial1pParams& params, const Bytes& x0, const Bytes& x1, Rng& rng);

}  // namespace fairsfe::fair
