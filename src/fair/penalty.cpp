#include "fair/penalty.h"

#include "util/check.h"

namespace fairsfe::fair {

using sim::Message;
using sim::MsgView;

PenaltyParams make_penalty_params(mpc::SfeSpec spec) {
  PenaltyParams params;
  params.spec = std::move(spec);
  return params;
}

EscrowFunc::EscrowFunc(PenaltyParams params, mpc::NotesPtr notes)
    : params_(std::move(params)), notes_(std::move(notes)) {
  FAIRSFE_CHECK(params_.patience >= 1, "EscrowFunc: patience must be >= 1");
  FAIRSFE_CHECK(params_.claim_deadline >= 1, "EscrowFunc: claim_deadline must be >= 1");
}

std::vector<Message> EscrowFunc::on_round(sim::FuncContext& ctx, int round, MsgView in) {
  std::vector<Message> out;
  switch (state_) {
    case State::kAwaitInputs: {
      for (const Message& m : in) {
        if (m.from != 0 && m.from != 1) continue;
        const auto x = sim::decode_func_input(m.payload);
        if (x && !inputs_[static_cast<std::size_t>(m.from)]) {
          inputs_[static_cast<std::size_t>(m.from)] = *x;
        }
      }
      if (!inputs_[0] || !inputs_[1]) {
        if (round >= params_.patience) {
          // A no-show within patience: nothing was computed, deposits are
          // returned, everyone aborts — a money-neutral failure.
          if (notes_) notes_->vals["phase1_aborted"] = 1;
          state_ = State::kDone;
          out.push_back(Message{sim::kFunc, 0, sim::encode_func_abort()});
          out.push_back(Message{sim::kFunc, 1, sim::encode_func_abort()});
        }
        return out;
      }
      // Both inputs (and hence both deposits) are in: compute y and deliver
      // it to p1 first, starting the claim deadline.
      y_ = params_.spec.eval({*inputs_[0], *inputs_[1]});
      if (notes_) {
        notes_->vals["deposit_posted"] = 1;
        notes_->blobs["y"] = y_;
      }
      std::vector<Message> deliveries = {
          Message{sim::kFunc, 0, sim::encode_func_output(y_)}};
      std::vector<Message> corrupted_outputs;
      for (const Message& m : deliveries) {
        if (ctx.corrupted().count(m.to)) corrupted_outputs.push_back(m);
      }
      if (ctx.adversary_abort_gate(corrupted_outputs)) {
        // The adversary saw y at the gate and aborted the escrow anyway:
        // that IS a withhold-after-learning, and the deposit is forfeit.
        if (notes_) notes_->vals["withheld_after_learning"] = 1;
        state_ = State::kDone;
        out.push_back(Message{sim::kFunc, 0, sim::encode_func_abort()});
        out.push_back(Message{sim::kFunc, 1, sim::encode_func_abort()});
        return out;
      }
      deliver_round_ = round;
      state_ = State::kAwaitAck;
      for (Message& m : deliveries) out.push_back(std::move(m));
      return out;
    }
    case State::kAwaitAck: {
      bool acked = false;
      for (const Message& m : in) {
        if (m.from == 0) acked = true;
      }
      if (acked) {
        // Clean run: release y to p2 and refund the deposits.
        if (notes_) notes_->vals["refunded"] = 1;
        state_ = State::kDone;
        out.push_back(Message{sim::kFunc, 1, sim::encode_func_output(y_)});
        return out;
      }
      if (round >= deliver_round_ + params_.claim_deadline) {
        // p1 has y and sat on it past the deadline: forfeiture. p2 gets a
        // compensation notice — monetarily whole, but no protocol output.
        if (notes_) notes_->vals["withheld_after_learning"] = 1;
        state_ = State::kDone;
        out.push_back(Message{sim::kFunc, 1, sim::encode_func_abort()});
      }
      return out;
    }
    case State::kDone:
      return out;
  }
  return out;
}

PenaltyParty::PenaltyParty(sim::PartyId id, Bytes input)
    : PartyBase(id), input_(std::move(input)) {
  FAIRSFE_CHECK(id == 0 || id == 1, "PenaltyParty: protocol is 2-party");
}

std::vector<Message> PenaltyParty::on_round(int /*round*/, MsgView in) {
  if (!sent_input_) {
    sent_input_ = true;
    return {Message{id_, sim::kFunc, sim::encode_func_input(input_)}};
  }
  const Message* fm = first_from(in, sim::kFunc);
  if (fm == nullptr) return {};
  const auto y = sim::decode_func_output(fm->payload);
  if (!y) {
    // Abort / compensation notice: no protocol output (the monetary side is
    // the payoff model's business, not the party's).
    finish_bot();
    return {};
  }
  finish(*y);
  if (id_ == 0) {
    // Acknowledge receipt so the escrow releases y to the peer.
    return {Message{id_, sim::kFunc, sim::encode_func_input(Bytes{1})}};
  }
  return {};
}

void PenaltyParty::on_abort() {
  if (done()) return;
  finish_bot();
}

std::vector<std::unique_ptr<sim::IParty>> make_penalty_parties(const Bytes& x0,
                                                               const Bytes& x1) {
  std::vector<std::unique_ptr<sim::IParty>> parties;
  parties.push_back(std::make_unique<PenaltyParty>(0, x0));
  parties.push_back(std::make_unique<PenaltyParty>(1, x1));
  return parties;
}

}  // namespace fairsfe::fair
