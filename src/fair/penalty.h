// Deposit-based fair exchange in the spirit of penalty-model fairness
// ("Cryptographic and Financial Fairness", PAPERS.md; experiment E22).
//
// Γfair alone cannot price an abort: under ~γ = (0.25, 0, 1, 0.5) the
// learn-then-withhold strategy earns γ10 = 1 and no protocol in the plain
// model can push it below (γ10+γ11)/2. The penalty model changes the GAME
// instead of the protocol: both parties escrow a deposit d with the exchange
// functionality; an adversary caught withholding after learning the output
// forfeits its deposit (plus an optional penalty), so its payoff for the
// formerly-optimal strategy drops to γ10 − d. Fairness becomes an economic
// statement — for d > γ10 − γ11 the rational adversary plays honestly — and
// the measured flip point is exactly the paper-style crossover E22 sweeps.
//
// Mechanics (escrow-hybrid, 2 parties):
//   1. both parties submit their inputs to the escrow (posting deposits);
//      a missing input within `patience` rounds aborts everyone (deposits
//      returned — nothing was learned);
//   2. the escrow computes y and delivers it to p1 FIRST, starting a claim
//      deadline;
//   3. honest p1 acknowledges receipt; the escrow then releases y to p2 and
//      refunds the deposits (a clean run);
//   4. if p1 never acknowledges (the withhold attack: it has y, p2 does
//      not), the deadline expires: the escrow records the forfeiture and
//      notifies p2 with a compensation notice (p2's protocol output is still
//      ⊥ — the money, not the output, is what it gets).
//
// The estimator sees the monetary layer through mpc::Notes
// ("deposit_posted", "withheld_after_learning", "refunded") via
// rpd::notes_collateral_mapping, and rpd::CollateralModel turns those flags
// into payoff shifts. The protocol layer itself never touches payoffs.
#pragma once

#include <memory>
#include <vector>

#include "crypto/rng.h"
#include "mpc/sfe_functionalities.h"
#include "sim/party.h"

namespace fairsfe::fair {

struct PenaltyParams {
  mpc::SfeSpec spec;        ///< must be two-party
  int patience = 4;         ///< rounds the escrow waits for both inputs
  int claim_deadline = 3;   ///< rounds p1 has to acknowledge before forfeiture
};

/// Ready-made parameters over the standard two-party concat spec.
PenaltyParams make_penalty_params(mpc::SfeSpec spec);

/// The escrow functionality: input collection with deposit posting, ordered
/// delivery (p1 first), acknowledgement deadline, forfeiture accounting.
/// Records in `notes`: "deposit_posted", "withheld_after_learning",
/// "refunded", "phase1_aborted", and blob "y".
class EscrowFunc final : public sim::IFunctionality {
 public:
  explicit EscrowFunc(PenaltyParams params, mpc::NotesPtr notes = nullptr);

  std::vector<sim::Message> on_round(sim::FuncContext& ctx, int round,
                                     sim::MsgView in) override;

 private:
  enum class State { kAwaitInputs, kAwaitAck, kDone };

  PenaltyParams params_;
  mpc::NotesPtr notes_;
  State state_ = State::kAwaitInputs;
  std::array<std::optional<Bytes>, 2> inputs_;
  Bytes y_;
  int deliver_round_ = 0;  ///< round y went to p1 (deadline anchor)
};

/// An exchange party. p1 (id 0) receives y first and must acknowledge; p2
/// (id 1) receives y on release, or a compensation notice (protocol output
/// ⊥) on forfeiture.
class PenaltyParty final : public sim::PartyBase<PenaltyParty> {
 public:
  PenaltyParty(sim::PartyId id, Bytes input);

  std::vector<sim::Message> on_round(int round, sim::MsgView in) override;
  void on_abort() override;

 private:
  Bytes input_;
  bool sent_input_ = false;
};

/// Build the two exchange parties for inputs (x1, x2); pair with EscrowFunc.
std::vector<std::unique_ptr<sim::IParty>> make_penalty_parties(const Bytes& x0,
                                                               const Bytes& x1);

}  // namespace fairsfe::fair
