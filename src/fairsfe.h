// fairsfe — utility-based fairness for secure function evaluation.
//
// Umbrella header for the public API. A reproduction of Garay, Katz,
// Tackmann, Zikas: "How Fair is Your Protocol? A Utility-based Approach to
// Protocol Optimality" (PODC 2015). See README.md for a tour and DESIGN.md
// for the system inventory and experiment index.
//
// Layering (each header is usable on its own):
//   crypto/    hashes, PRG, commitments, MACs, secret sharing, signatures
//   circuit/   boolean circuit IR + builder + reference evaluator
//   sim/       synchronous execution engine, adversary & functionality model
//   mpc/       GMW (unfair SFE substrate), OT hub, ideal SFE functionalities
//   rpd/       fairness events, payoff vectors Γfair, utility estimation,
//              the fairness partial order, utility balance, corruption costs
//   fair/      the paper's protocols: Π₁/Π₂, ΠOpt2SFE, ΠOptnSFE, Φ^Fsfe,
//              Π½GMW, the Lemma 18 protocol, Π′, Gordon–Katz 1/p, Π̃
//   adversary/ the constructive attack strategies from the proofs
#pragma once

#include "adversary/base.h"
#include "adversary/gk_adversary.h"
#include "adversary/lock_abort.h"
#include "adversary/mixed.h"
#include "adversary/strategies.h"
#include "circuit/builder.h"
#include "circuit/circuit.h"
#include "crypto/auth_share.h"
#include "crypto/bytes.h"
#include "crypto/chacha20.h"
#include "crypto/commitment.h"
#include "crypto/field.h"
#include "crypto/hmac.h"
#include "crypto/lamport.h"
#include "crypto/mac.h"
#include "crypto/rng.h"
#include "crypto/secret_sharing.h"
#include "crypto/sha256.h"
#include "crypto/shamir.h"
#include "fair/contract.h"
#include "fair/dummy_ideal.h"
#include "fair/gk.h"
#include "fair/gk_multi.h"
#include "fair/gmw_half.h"
#include "fair/gradual.h"
#include "fair/leaky_and.h"
#include "fair/lemma18.h"
#include "fair/mixed.h"
#include "fair/opt2_compiled.h"
#include "fair/opt2sfe.h"
#include "fair/optnsfe.h"
#include "mpc/gmw.h"
#include "mpc/ot.h"
#include "mpc/sfe_functionalities.h"
#include "mpc/yao.h"
#include "rpd/balance.h"
#include "rpd/cost.h"
#include "rpd/estimator.h"
#include "rpd/events.h"
#include "rpd/fairness_relation.h"
#include "rpd/payoff.h"
#include "sim/engine.h"
