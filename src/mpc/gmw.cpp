#include "mpc/gmw.h"

#include <stdexcept>

#include "mpc/ot.h"
#include "util/check.h"

namespace fairsfe::mpc {

using circuit::Gate;
using circuit::GateType;
using sim::Message;
using sim::MsgView;

GmwConfigBuilder GmwConfig::for_circuit(circuit::Circuit c) {
  return GmwConfigBuilder(std::move(c));
}

GmwConfig GmwConfig::public_output(circuit::Circuit c) {
  return GmwConfigBuilder(std::move(c)).build();
}

GmwConfigBuilder::GmwConfigBuilder(circuit::Circuit c) : cfg_{std::move(c)} {}

GmwConfigBuilder& GmwConfigBuilder::with_output_map(
    std::vector<std::vector<std::size_t>> m) {
  cfg_.output_map = std::move(m);
  have_output_map_ = true;
  return *this;
}

GmwConfigBuilder& GmwConfigBuilder::with_plan(
    std::shared_ptr<const circuit::CompiledCircuit> plan) {
  cfg_.plan = std::move(plan);
  return *this;
}

GmwConfigBuilder& GmwConfigBuilder::with_preproc(
    preproc::PreprocMode mode,
    std::shared_ptr<const preproc::CorrelatedRandomness> store) {
  cfg_.preproc_mode = mode;
  cfg_.preproc = std::move(store);
  return *this;
}

GmwConfig GmwConfigBuilder::build() {
  GmwConfig cfg = std::move(cfg_);
  if (!have_output_map_) {
    std::vector<std::size_t> all(cfg.circuit.outputs().size());
    for (std::size_t i = 0; i < all.size(); ++i) all[i] = i;
    cfg.output_map.assign(cfg.circuit.num_parties(), all);
  }
  if (!cfg.plan) {
    cfg.plan = std::make_shared<const circuit::CompiledCircuit>(
        circuit::CompiledCircuit::build(cfg.circuit));
  }
  FAIRSFE_CHECK(cfg.output_map.size() == cfg.circuit.num_parties(),
                "GmwConfig: one output-index list per party");
  FAIRSFE_CHECK(!preproc::is_offline(cfg.preproc_mode) || cfg.preproc != nullptr,
                "GmwConfig: offline preproc mode needs a CorrelatedRandomness store");
  return cfg;
}

std::shared_ptr<const GmwConfig> GmwConfigBuilder::build_shared() {
  return std::make_shared<const GmwConfig>(build());
}

GmwParty::GmwParty(sim::PartyId id, std::shared_ptr<const GmwConfig> cfg,
                   std::vector<bool> input, Rng rng)
    : PartyBase(id), cfg_(std::move(cfg)), input_(std::move(input)), rng_(std::move(rng)) {
  const auto& c = cfg_->circuit;
  if (c.num_parties() < 2) throw std::invalid_argument("GMW needs >= 2 parties");
  if (input_.size() != c.input_width(static_cast<std::size_t>(id))) {
    throw std::invalid_argument("GmwParty: wrong input width");
  }
  plan_ = cfg_->plan;
  if (!plan_) {
    plan_ = std::make_shared<const circuit::CompiledCircuit>(
        circuit::CompiledCircuit::build(c));
  }
  // Plan/circuit shape agreement: a cached plan built for a different circuit
  // would silently evaluate the wrong gate schedule. The compiled layout
  // pins one resolve step per AND layer plus the input step, and exactly the
  // circuit's AND gates.
  FAIRSFE_CHECK(plan_->num_and_gates() == c.and_count(),
                "compiled plan does not match the circuit's AND gates");
  FAIRSFE_CHECK(plan_->num_resolve_steps() == plan_->num_and_layers() + 1,
                "compiled plan resolve schedule is malformed");
  FAIRSFE_CHECK(plan_->inputs_of(static_cast<std::size_t>(id)).size() ==
                    c.input_width(static_cast<std::size_t>(id)),
                "compiled plan input wire map does not match the circuit");
  offline_ = preproc::is_offline(cfg_->preproc_mode);
  if (offline_) {
    FAIRSFE_CHECK(cfg_->preproc != nullptr,
                  "GmwParty: offline preproc mode without a store");
    FAIRSFE_CHECK(cfg_->preproc->num_parties() == c.num_parties(),
                  "GmwParty: preproc store sized for a different party count");
    tape_ = preproc::TripleTape(cfg_->preproc, static_cast<std::size_t>(id));
  }
  share_.assign(c.num_wires(), 0);
  and_state_.assign(c.num_wires(), -1);
}

void GmwParty::bind_preproc_slice(std::size_t run_index) {
  if (!offline_) return;
  tape_.seek(run_index * plan_->num_and_gates());
}

namespace {
// Unique OT label for (gate, sender, receiver).
std::uint64_t ot_label(std::size_t gate, std::size_t sender, std::size_t receiver,
                       std::size_t n) {
  return (static_cast<std::uint64_t>(gate) * n + sender) * n + receiver;
}
}  // namespace

std::vector<Message> GmwParty::on_round(int /*round*/, MsgView in) {
  switch (phase_) {
    case Phase::kSendInputShares: {
      phase_ = Phase::kAwaitInputShares;
      return send_input_shares();
    }
    case Phase::kAwaitInputShares: {
      if (!absorb_input_shares(in)) {
        finish_bot();
        return {};
      }
      propagate();
      return start_and_layer();
    }
    case Phase::kOtRoundTrip: {
      if (--ot_wait_ > 0) return {};  // hub is pairing; nothing due yet
      if (!absorb_ot_results(in)) {
        finish_bot();
        return {};
      }
      propagate();
      ++layer_;
      return start_and_layer();
    }
    case Phase::kBeaverOpen: {
      if (!absorb_beaver(in)) {
        finish_bot();
        return {};
      }
      propagate();
      ++layer_;
      return start_and_layer();
    }
    case Phase::kAwaitOutputs: {
      if (!absorb_output_shares(in)) finish_bot();
      return {};
    }
  }
  return {};
}

void GmwParty::on_abort() {
  if (!done()) finish_bot();
}

std::vector<Message> GmwParty::send_input_shares() {
  const auto& c = cfg_->circuit;
  const std::size_t n = c.num_parties();
  // shares[j][k] = party j's share of my k-th input bit.
  std::vector<std::vector<bool>> shares(n, std::vector<bool>(input_.size()));
  for (std::size_t k = 0; k < input_.size(); ++k) {
    bool acc = input_[k];
    for (std::size_t j = 0; j < n; ++j) {
      if (j == static_cast<std::size_t>(id_)) continue;
      const bool r = rng_.bit();
      shares[j][k] = r;
      acc = acc != r;
    }
    shares[static_cast<std::size_t>(id_)][k] = acc;
  }
  // Record my own shares on my input wires (precomputed wire map).
  {
    const auto my_wires = plan_->inputs_of(static_cast<std::size_t>(id_));
    for (std::size_t k = 0; k < my_wires.size(); ++k) {
      const std::uint32_t w = my_wires[k];
      share_[w] = shares[static_cast<std::size_t>(id_)][k] ? 1 : 0;
    }
  }
  std::vector<Message> out;
  for (std::size_t j = 0; j < n; ++j) {
    if (j == static_cast<std::size_t>(id_)) continue;
    Writer w;
    w.blob(circuit::bits_to_bytes(shares[j]));
    w.u32(static_cast<std::uint32_t>(input_.size()));
    out.push_back(Message{id_, static_cast<sim::PartyId>(j), w.take()});
  }
  return out;
}

bool GmwParty::absorb_input_shares(MsgView in) {
  const auto& c = cfg_->circuit;
  const std::size_t n = c.num_parties();
  std::vector<std::vector<bool>> from(n);
  for (const Message& m : in) {
    if (m.from < 0 || m.from >= static_cast<sim::PartyId>(n)) continue;
    Reader r(m.payload);
    const auto blob = r.blob();
    const auto count = r.u32();
    if (!blob || !count || !r.at_end()) continue;
    if (*count != c.input_width(static_cast<std::size_t>(m.from))) continue;
    from[static_cast<std::size_t>(m.from)] = circuit::bytes_to_bits(*blob, *count);
  }
  for (std::size_t j = 0; j < n; ++j) {
    if (j == static_cast<std::size_t>(id_)) continue;
    if (from[j].size() != c.input_width(j)) return false;  // missing/invalid
  }
  for (std::size_t j = 0; j < n; ++j) {
    if (j == static_cast<std::size_t>(id_)) continue;  // already set
    const auto wires = plan_->inputs_of(j);
    for (std::size_t k = 0; k < wires.size(); ++k) {
      const std::uint32_t w = wires[k];
      share_[w] = from[j][k] ? 1 : 0;
    }
  }
  return true;
}

void GmwParty::propagate() {
  // Called exactly once after the input exchange and once after each
  // completed AND layer, so step k's gates always have known operands —
  // no known_ scan over the whole circuit.
  if (step_ >= plan_->num_resolve_steps()) return;
  const auto& gates = cfg_->circuit.gates();
  for (const std::uint32_t w : plan_->resolve_step(step_)) {
    const Gate& g = gates[w];
    switch (g.type) {
      case GateType::kConst:
        // Only party 0 contributes the constant so the XOR over parties is it.
        share_[w] = (id_ == 0 && g.const_value) ? 1 : 0;
        break;
      case GateType::kXor:
        share_[w] = share_[g.a] ^ share_[g.b];
        break;
      case GateType::kNot:
        // Negation flips exactly one party's share.
        share_[w] = (id_ == 0) ? (share_[g.a] ^ 1) : share_[g.a];
        break;
      case GateType::kAnd:
        share_[w] = and_state_[w] > 0 ? 1 : 0;
        and_state_[w] = -1;
        break;
      case GateType::kInput:
        break;  // excluded from the schedule
    }
  }
  ++step_;
}

std::vector<Message> GmwParty::send_layer_ots() {
  const std::size_t n = cfg_->circuit.num_parties();
  const std::size_t me = static_cast<std::size_t>(id_);
  const auto& gates = cfg_->circuit.gates();
  std::vector<Message> out;
  out.reserve(plan_->and_layer(layer_).size() * 2 * (n - 1));
  expected_ot_results_ = 0;
  for (const std::uint32_t g : plan_->and_layer(layer_)) {
    const bool x = share_[gates[g].a] != 0;
    const bool y = share_[gates[g].b] != 0;
    bool acc = x && y;
    for (std::size_t j = 0; j < n; ++j) {
      if (j == me) continue;
      // As sender to j: offer (r, r ^ x); j selects with its y-share.
      const bool r = rng_.bit();
      acc = acc != r;
      out.push_back(Message{id_, sim::kFunc,
                            encode_ot_send(ot_label(g, me, j, n), r, r != x)});
      // As receiver from j: choose with my y-share.
      out.push_back(Message{id_, sim::kFunc,
                            encode_ot_choose(ot_label(g, j, me, n), y)});
      ++expected_ot_results_;
    }
    and_state_[g] = acc ? 1 : 0;
  }
  return out;
}

bool GmwParty::absorb_ot_results(MsgView in) {
  const std::size_t n = cfg_->circuit.num_parties();
  const std::size_t me = static_cast<std::size_t>(id_);
  std::size_t got = 0;
  for (const Message& m : in) {
    if (m.from != sim::kFunc) continue;
    const auto res = decode_ot_result(m.payload);
    if (!res) continue;
    const std::size_t gate = static_cast<std::size_t>(res->label / (n * n));
    const std::size_t recv = static_cast<std::size_t>(res->label % n);
    if (recv != me) continue;
    if (gate >= and_state_.size() || and_state_[gate] < 0) continue;
    and_state_[gate] = (and_state_[gate] != 0) != res->value ? 1 : 0;
    ++got;
  }
  if (got != expected_ot_results_) return false;
  expected_ot_results_ = 0;
  return true;
}

std::vector<Message> GmwParty::start_and_layer() {
  if (layer_ < plan_->num_and_layers()) {
    if (offline_) {
      phase_ = Phase::kBeaverOpen;
      return send_layer_beaver();
    }
    phase_ = Phase::kOtRoundTrip;
    ot_wait_ = 2;
    return send_layer_ots();
  }
  phase_ = Phase::kAwaitOutputs;
  return send_output_shares();
}

std::vector<Message> GmwParty::send_layer_beaver() {
  const auto& gates = cfg_->circuit.gates();
  const auto layer = plan_->and_layer(layer_);
  const std::size_t len = layer.size();
  pending_triples_.clear();
  pending_triples_.reserve(len);
  // Packed payload: d-shares for the layer, then e-shares.
  std::vector<bool> bits(2 * len);
  for (std::size_t k = 0; k < len; ++k) {
    const std::uint32_t g = layer[k];
    const bool x = share_[gates[g].a] != 0;
    const bool y = share_[gates[g].b] != 0;
    const preproc::BeaverTriple tr = tape_.next();
    bits[k] = x != tr.a;
    bits[len + k] = y != tr.b;
    pending_triples_.push_back(tr);
  }
  Writer w;
  w.blob(circuit::bits_to_bytes(bits));
  w.u32(static_cast<std::uint32_t>(bits.size()));
  return {Message{id_, sim::kBroadcast, w.take()}};
}

bool GmwParty::absorb_beaver(MsgView in) {
  const std::size_t n = cfg_->circuit.num_parties();
  const auto layer = plan_->and_layer(layer_);
  const std::size_t len = layer.size();
  // Reconstruct d = ⊕_p d_p and e = ⊕_p e_p from everyone's broadcast. The
  // engine loops a party's own broadcast back to it, so "all n present"
  // includes our own masked shares exactly once.
  std::vector<bool> d(len, false), e(len, false);
  std::vector<char> have(n, 0);
  for (const Message& m : in) {
    if (m.from < 0 || m.from >= static_cast<sim::PartyId>(n)) continue;
    if (have[static_cast<std::size_t>(m.from)]) continue;
    Reader r(m.payload);
    const auto blob = r.blob();
    const auto count = r.u32();
    if (!blob || !count || !r.at_end()) continue;
    if (*count != 2 * len) continue;
    const auto bits = circuit::bytes_to_bits(*blob, *count);
    for (std::size_t k = 0; k < len; ++k) {
      d[k] = d[k] != bits[k];
      e[k] = e[k] != bits[len + k];
    }
    have[static_cast<std::size_t>(m.from)] = 1;
  }
  for (std::size_t j = 0; j < n; ++j) {
    if (!have[j]) return false;  // a party withheld its opening: abort
  }
  // z_p = c_p ⊕ d·b_p ⊕ e·a_p ⊕ [p = 0]·d·e  (⊕_p z_p = x & y).
  for (std::size_t k = 0; k < len; ++k) {
    const preproc::BeaverTriple& tr = pending_triples_[k];
    bool z = tr.c;
    if (d[k]) z = z != tr.b;
    if (e[k]) z = z != tr.a;
    if (id_ == 0 && d[k] && e[k]) z = !z;
    and_state_[layer[k]] = z ? 1 : 0;
  }
  pending_triples_.clear();
  return true;
}

std::vector<Message> GmwParty::send_output_shares() {
  const auto& c = cfg_->circuit;
  const std::size_t n = c.num_parties();
  std::vector<Message> out;
  for (std::size_t p = 0; p < n; ++p) {
    if (p == static_cast<std::size_t>(id_)) continue;
    std::vector<bool> bits;
    bits.reserve(cfg_->output_map[p].size());
    for (const std::size_t oi : cfg_->output_map[p]) {
      bits.push_back(share_[c.outputs()[oi]] != 0);
    }
    Writer w;
    w.blob(circuit::bits_to_bytes(bits));
    w.u32(static_cast<std::uint32_t>(bits.size()));
    out.push_back(Message{id_, static_cast<sim::PartyId>(p), w.take()});
  }
  return out;
}

bool GmwParty::absorb_output_shares(MsgView in) {
  const auto& c = cfg_->circuit;
  const std::size_t n = c.num_parties();
  const std::size_t me = static_cast<std::size_t>(id_);
  const auto& my_outputs = cfg_->output_map[me];

  std::vector<bool> acc(my_outputs.size());
  for (std::size_t k = 0; k < my_outputs.size(); ++k) {
    acc[k] = share_[c.outputs()[my_outputs[k]]] != 0;
  }
  std::vector<char> have(n, 0);
  have[me] = 1;
  for (const Message& m : in) {
    if (m.from < 0 || m.from >= static_cast<sim::PartyId>(n)) continue;
    if (have[static_cast<std::size_t>(m.from)]) continue;
    Reader r(m.payload);
    const auto blob = r.blob();
    const auto count = r.u32();
    if (!blob || !count || !r.at_end()) continue;
    if (*count != my_outputs.size()) continue;
    const auto bits = circuit::bytes_to_bits(*blob, *count);
    for (std::size_t k = 0; k < acc.size(); ++k) acc[k] = acc[k] != bits[k];
    have[static_cast<std::size_t>(m.from)] = 1;
  }
  for (std::size_t j = 0; j < n; ++j) {
    if (!have[j]) return false;
  }
  finish(circuit::bits_to_bytes(acc));
  return true;
}

std::vector<std::unique_ptr<sim::IParty>> make_gmw_parties(
    std::shared_ptr<const GmwConfig> cfg, const std::vector<std::vector<bool>>& inputs,
    Rng& rng) {
  FAIRSFE_CHECK(inputs.size() == cfg->circuit.num_parties(),
                "make_gmw_parties: one input vector per party");
  std::vector<std::unique_ptr<sim::IParty>> parties;
  parties.reserve(inputs.size());
  for (std::size_t p = 0; p < inputs.size(); ++p) {
    parties.push_back(std::make_unique<GmwParty>(static_cast<sim::PartyId>(p), cfg,
                                                 inputs[p], rng.fork("gmw-party")));  // LINT-ALLOW(rng-fork-in-loop): fork counter is the party index (parent enters at 0); callers fork this parent afterwards, so re-indexing would re-seed pinned goldens
  }
  return parties;
}

std::unique_ptr<sim::IFunctionality> make_gmw_functionality(const GmwConfig& cfg) {
  if (preproc::is_offline(cfg.preproc_mode)) return nullptr;  // pure broadcast online
  return std::make_unique<OtHub>();
}

std::function<void(std::size_t)> make_gmw_run_binder(
    const std::vector<std::unique_ptr<sim::IParty>>& parties) {
  // Raw pointers are heap-stable even if the owning vector moves (RunSetup is
  // moved into the engine); the binder must not capture the vector itself.
  std::vector<GmwParty*> gmw;
  gmw.reserve(parties.size());
  for (const auto& p : parties) {
    if (auto* g = dynamic_cast<GmwParty*>(p.get())) gmw.push_back(g);
  }
  return [gmw](std::size_t run_index) {
    for (GmwParty* g : gmw) g->bind_preproc_slice(run_index);
  };
}

}  // namespace fairsfe::mpc
