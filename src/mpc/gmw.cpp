#include "mpc/gmw.h"

#include <stdexcept>

#include "mpc/ot.h"
#include "util/check.h"

namespace fairsfe::mpc {

using circuit::Gate;
using circuit::GateType;
using sim::Message;
using sim::MsgView;

GmwConfig GmwConfig::public_output(circuit::Circuit c) {
  GmwConfig cfg{std::move(c), {}, nullptr};
  std::vector<std::size_t> all(cfg.circuit.outputs().size());
  for (std::size_t i = 0; i < all.size(); ++i) all[i] = i;
  cfg.output_map.assign(cfg.circuit.num_parties(), all);
  cfg.plan = std::make_shared<const circuit::CompiledCircuit>(
      circuit::CompiledCircuit::build(cfg.circuit));
  return cfg;
}

GmwParty::GmwParty(sim::PartyId id, std::shared_ptr<const GmwConfig> cfg,
                   std::vector<bool> input, Rng rng)
    : PartyBase(id), cfg_(std::move(cfg)), input_(std::move(input)), rng_(std::move(rng)) {
  const auto& c = cfg_->circuit;
  if (c.num_parties() < 2) throw std::invalid_argument("GMW needs >= 2 parties");
  if (input_.size() != c.input_width(static_cast<std::size_t>(id))) {
    throw std::invalid_argument("GmwParty: wrong input width");
  }
  plan_ = cfg_->plan;
  if (!plan_) {
    plan_ = std::make_shared<const circuit::CompiledCircuit>(
        circuit::CompiledCircuit::build(c));
  }
  // Plan/circuit shape agreement: a cached plan built for a different circuit
  // would silently evaluate the wrong gate schedule. The compiled layout
  // pins one resolve step per AND layer plus the input step, and exactly the
  // circuit's AND gates.
  FAIRSFE_CHECK(plan_->num_and_gates() == c.and_count(),
                "compiled plan does not match the circuit's AND gates");
  FAIRSFE_CHECK(plan_->num_resolve_steps() == plan_->num_and_layers() + 1,
                "compiled plan resolve schedule is malformed");
  FAIRSFE_CHECK(plan_->inputs_of(static_cast<std::size_t>(id)).size() ==
                    c.input_width(static_cast<std::size_t>(id)),
                "compiled plan input wire map does not match the circuit");
  share_.assign(c.num_wires(), 0);
  and_state_.assign(c.num_wires(), -1);
}

namespace {
// Unique OT label for (gate, sender, receiver).
std::uint64_t ot_label(std::size_t gate, std::size_t sender, std::size_t receiver,
                       std::size_t n) {
  return (static_cast<std::uint64_t>(gate) * n + sender) * n + receiver;
}
}  // namespace

std::vector<Message> GmwParty::on_round(int /*round*/, MsgView in) {
  switch (phase_) {
    case Phase::kSendInputShares: {
      phase_ = Phase::kAwaitInputShares;
      return send_input_shares();
    }
    case Phase::kAwaitInputShares: {
      if (!absorb_input_shares(in)) {
        finish_bot();
        return {};
      }
      propagate();
      if (layer_ < plan_->num_and_layers()) {
        phase_ = Phase::kOtRoundTrip;
        ot_wait_ = 2;
        return send_layer_ots();
      }
      phase_ = Phase::kAwaitOutputs;
      return send_output_shares();
    }
    case Phase::kOtRoundTrip: {
      if (--ot_wait_ > 0) return {};  // hub is pairing; nothing due yet
      if (!absorb_ot_results(in)) {
        finish_bot();
        return {};
      }
      propagate();
      ++layer_;
      if (layer_ < plan_->num_and_layers()) {
        ot_wait_ = 2;
        return send_layer_ots();
      }
      phase_ = Phase::kAwaitOutputs;
      return send_output_shares();
    }
    case Phase::kAwaitOutputs: {
      if (!absorb_output_shares(in)) finish_bot();
      return {};
    }
  }
  return {};
}

void GmwParty::on_abort() {
  if (!done()) finish_bot();
}

std::vector<Message> GmwParty::send_input_shares() {
  const auto& c = cfg_->circuit;
  const std::size_t n = c.num_parties();
  // shares[j][k] = party j's share of my k-th input bit.
  std::vector<std::vector<bool>> shares(n, std::vector<bool>(input_.size()));
  for (std::size_t k = 0; k < input_.size(); ++k) {
    bool acc = input_[k];
    for (std::size_t j = 0; j < n; ++j) {
      if (j == static_cast<std::size_t>(id_)) continue;
      const bool r = rng_.bit();
      shares[j][k] = r;
      acc = acc != r;
    }
    shares[static_cast<std::size_t>(id_)][k] = acc;
  }
  // Record my own shares on my input wires (precomputed wire map).
  {
    const auto my_wires = plan_->inputs_of(static_cast<std::size_t>(id_));
    for (std::size_t k = 0; k < my_wires.size(); ++k) {
      const std::uint32_t w = my_wires[k];
      share_[w] = shares[static_cast<std::size_t>(id_)][k] ? 1 : 0;
    }
  }
  std::vector<Message> out;
  for (std::size_t j = 0; j < n; ++j) {
    if (j == static_cast<std::size_t>(id_)) continue;
    Writer w;
    w.blob(circuit::bits_to_bytes(shares[j]));
    w.u32(static_cast<std::uint32_t>(input_.size()));
    out.push_back(Message{id_, static_cast<sim::PartyId>(j), w.take()});
  }
  return out;
}

bool GmwParty::absorb_input_shares(MsgView in) {
  const auto& c = cfg_->circuit;
  const std::size_t n = c.num_parties();
  std::vector<std::vector<bool>> from(n);
  for (const Message& m : in) {
    if (m.from < 0 || m.from >= static_cast<sim::PartyId>(n)) continue;
    Reader r(m.payload);
    const auto blob = r.blob();
    const auto count = r.u32();
    if (!blob || !count || !r.at_end()) continue;
    if (*count != c.input_width(static_cast<std::size_t>(m.from))) continue;
    from[static_cast<std::size_t>(m.from)] = circuit::bytes_to_bits(*blob, *count);
  }
  for (std::size_t j = 0; j < n; ++j) {
    if (j == static_cast<std::size_t>(id_)) continue;
    if (from[j].size() != c.input_width(j)) return false;  // missing/invalid
  }
  for (std::size_t j = 0; j < n; ++j) {
    if (j == static_cast<std::size_t>(id_)) continue;  // already set
    const auto wires = plan_->inputs_of(j);
    for (std::size_t k = 0; k < wires.size(); ++k) {
      const std::uint32_t w = wires[k];
      share_[w] = from[j][k] ? 1 : 0;
    }
  }
  return true;
}

void GmwParty::propagate() {
  // Called exactly once after the input exchange and once after each
  // completed AND layer, so step k's gates always have known operands —
  // no known_ scan over the whole circuit.
  if (step_ >= plan_->num_resolve_steps()) return;
  const auto& gates = cfg_->circuit.gates();
  for (const std::uint32_t w : plan_->resolve_step(step_)) {
    const Gate& g = gates[w];
    switch (g.type) {
      case GateType::kConst:
        // Only party 0 contributes the constant so the XOR over parties is it.
        share_[w] = (id_ == 0 && g.const_value) ? 1 : 0;
        break;
      case GateType::kXor:
        share_[w] = share_[g.a] ^ share_[g.b];
        break;
      case GateType::kNot:
        // Negation flips exactly one party's share.
        share_[w] = (id_ == 0) ? (share_[g.a] ^ 1) : share_[g.a];
        break;
      case GateType::kAnd:
        share_[w] = and_state_[w] > 0 ? 1 : 0;
        and_state_[w] = -1;
        break;
      case GateType::kInput:
        break;  // excluded from the schedule
    }
  }
  ++step_;
}

std::vector<Message> GmwParty::send_layer_ots() {
  const std::size_t n = cfg_->circuit.num_parties();
  const std::size_t me = static_cast<std::size_t>(id_);
  const auto& gates = cfg_->circuit.gates();
  std::vector<Message> out;
  out.reserve(plan_->and_layer(layer_).size() * 2 * (n - 1));
  expected_ot_results_ = 0;
  for (const std::uint32_t g : plan_->and_layer(layer_)) {
    const bool x = share_[gates[g].a] != 0;
    const bool y = share_[gates[g].b] != 0;
    bool acc = x && y;
    for (std::size_t j = 0; j < n; ++j) {
      if (j == me) continue;
      // As sender to j: offer (r, r ^ x); j selects with its y-share.
      const bool r = rng_.bit();
      acc = acc != r;
      out.push_back(Message{id_, sim::kFunc,
                            encode_ot_send(ot_label(g, me, j, n), r, r != x)});
      // As receiver from j: choose with my y-share.
      out.push_back(Message{id_, sim::kFunc,
                            encode_ot_choose(ot_label(g, j, me, n), y)});
      ++expected_ot_results_;
    }
    and_state_[g] = acc ? 1 : 0;
  }
  return out;
}

bool GmwParty::absorb_ot_results(MsgView in) {
  const std::size_t n = cfg_->circuit.num_parties();
  const std::size_t me = static_cast<std::size_t>(id_);
  std::size_t got = 0;
  for (const Message& m : in) {
    if (m.from != sim::kFunc) continue;
    const auto res = decode_ot_result(m.payload);
    if (!res) continue;
    const std::size_t gate = static_cast<std::size_t>(res->label / (n * n));
    const std::size_t recv = static_cast<std::size_t>(res->label % n);
    if (recv != me) continue;
    if (gate >= and_state_.size() || and_state_[gate] < 0) continue;
    and_state_[gate] = (and_state_[gate] != 0) != res->value ? 1 : 0;
    ++got;
  }
  if (got != expected_ot_results_) return false;
  expected_ot_results_ = 0;
  return true;
}

std::vector<Message> GmwParty::send_output_shares() {
  const auto& c = cfg_->circuit;
  const std::size_t n = c.num_parties();
  std::vector<Message> out;
  for (std::size_t p = 0; p < n; ++p) {
    if (p == static_cast<std::size_t>(id_)) continue;
    std::vector<bool> bits;
    bits.reserve(cfg_->output_map[p].size());
    for (const std::size_t oi : cfg_->output_map[p]) {
      bits.push_back(share_[c.outputs()[oi]] != 0);
    }
    Writer w;
    w.blob(circuit::bits_to_bytes(bits));
    w.u32(static_cast<std::uint32_t>(bits.size()));
    out.push_back(Message{id_, static_cast<sim::PartyId>(p), w.take()});
  }
  return out;
}

bool GmwParty::absorb_output_shares(MsgView in) {
  const auto& c = cfg_->circuit;
  const std::size_t n = c.num_parties();
  const std::size_t me = static_cast<std::size_t>(id_);
  const auto& my_outputs = cfg_->output_map[me];

  std::vector<bool> acc(my_outputs.size());
  for (std::size_t k = 0; k < my_outputs.size(); ++k) {
    acc[k] = share_[c.outputs()[my_outputs[k]]] != 0;
  }
  std::vector<char> have(n, 0);
  have[me] = 1;
  for (const Message& m : in) {
    if (m.from < 0 || m.from >= static_cast<sim::PartyId>(n)) continue;
    if (have[static_cast<std::size_t>(m.from)]) continue;
    Reader r(m.payload);
    const auto blob = r.blob();
    const auto count = r.u32();
    if (!blob || !count || !r.at_end()) continue;
    if (*count != my_outputs.size()) continue;
    const auto bits = circuit::bytes_to_bits(*blob, *count);
    for (std::size_t k = 0; k < acc.size(); ++k) acc[k] = acc[k] != bits[k];
    have[static_cast<std::size_t>(m.from)] = 1;
  }
  for (std::size_t j = 0; j < n; ++j) {
    if (!have[j]) return false;
  }
  finish(circuit::bits_to_bytes(acc));
  return true;
}

std::vector<std::unique_ptr<sim::IParty>> make_gmw_parties(
    std::shared_ptr<const GmwConfig> cfg, const std::vector<std::vector<bool>>& inputs,
    Rng& rng) {
  FAIRSFE_CHECK(inputs.size() == cfg->circuit.num_parties(),
                "make_gmw_parties: one input vector per party");
  std::vector<std::unique_ptr<sim::IParty>> parties;
  parties.reserve(inputs.size());
  for (std::size_t p = 0; p < inputs.size(); ++p) {
    parties.push_back(std::make_unique<GmwParty>(static_cast<sim::PartyId>(p), cfg,
                                                 inputs[p], rng.fork("gmw-party")));
  }
  return parties;
}

}  // namespace fairsfe::mpc
