// The GMW protocol (Goldreich–Micali–Wigderson '87) over boolean circuits,
// in the OT-hybrid model — the paper's "unfair SFE" substrate ΠGMW.
//
// Each wire is XOR-shared among the n parties. XOR/NOT gates are local; each
// AND layer is evaluated with one batch of pairwise OTs (cross terms
// x_i·y_j); outputs are opened by exchanging output-wire shares according to
// a per-party output map (supporting private outputs).
//
// Adversary model: this implementation provides passive security plus abort
// (an aborting or deviating party causes honest parties to output ⊥, never a
// wrong value for honest-but-aborting adversaries). That is exactly the
// power the paper's lower-bound adversaries use — they run corrupted parties
// honestly until aborting — and active security for the fairness phase is
// modeled by the ideal-hybrid mode (see DESIGN.md §6). The protocol is
// adaptively secure in this setting because channels are ideally private.
#pragma once

#include <memory>

#include "circuit/circuit.h"
#include "circuit/compiled.h"
#include "crypto/rng.h"
#include "sim/party.h"

namespace fairsfe::mpc {

struct GmwConfig {
  circuit::Circuit circuit;
  /// output_map[p] lists the indices (into circuit.outputs()) that party p
  /// learns. Use public_output() for the everyone-learns-everything case.
  std::vector<std::vector<std::size_t>> output_map;
  /// Shared execution plan (AND-layer schedule + input wire maps), built once
  /// per circuit family and reused read-only by every party in every run.
  /// public_output() fills it; a null plan makes each GmwParty build its own.
  std::shared_ptr<const circuit::CompiledCircuit> plan;

  static GmwConfig public_output(circuit::Circuit c);
};

class GmwParty final : public sim::PartyBase<GmwParty> {
 public:
  /// `input` must have cfg->circuit.input_width(id) bits.
  GmwParty(sim::PartyId id, std::shared_ptr<const GmwConfig> cfg,
           std::vector<bool> input, Rng rng);

  std::vector<sim::Message> on_round(int round, sim::MsgView in) override;
  void on_abort() override;

 private:
  enum class Phase {
    kSendInputShares,
    kAwaitInputShares,
    kOtRoundTrip,   // OT requests in flight (2-round latency)
    kAwaitOutputs,  // output shares in flight
  };

  std::vector<sim::Message> send_input_shares();
  bool absorb_input_shares(sim::MsgView in);
  /// Evaluate the gates of the next resolution step (local gates + the ANDs
  /// whose OT layer just completed); consumes plan_->resolve_step(step_).
  void propagate();
  /// Emit OT traffic for AND layer `layer_`; empty if no layers remain.
  std::vector<sim::Message> send_layer_ots();
  bool absorb_ot_results(sim::MsgView in);
  std::vector<sim::Message> send_output_shares();
  bool absorb_output_shares(sim::MsgView in);

  std::shared_ptr<const GmwConfig> cfg_;
  /// The shared plan (cfg_->plan, or a privately built fallback).
  std::shared_ptr<const circuit::CompiledCircuit> plan_;
  std::vector<bool> input_;
  Rng rng_;

  Phase phase_ = Phase::kSendInputShares;
  int ot_wait_ = 0;

  std::size_t layer_ = 0;
  std::size_t step_ = 0;  ///< next resolution step for propagate()

  // Per-wire share state.
  std::vector<char> share_;
  // Partial AND accumulators, indexed by gate: -1 = no OT batch pending,
  // else the current XOR of local term + r_ij + o_ji (0/1).
  std::vector<signed char> and_state_;
  std::size_t expected_ot_results_ = 0;
};

/// Build one GmwParty per party for the given inputs (inputs[p] = bit vector).
std::vector<std::unique_ptr<sim::IParty>> make_gmw_parties(
    std::shared_ptr<const GmwConfig> cfg, const std::vector<std::vector<bool>>& inputs,
    Rng& rng);

}  // namespace fairsfe::mpc
