// The GMW protocol (Goldreich–Micali–Wigderson '87) over boolean circuits,
// in the OT-hybrid model — the paper's "unfair SFE" substrate ΠGMW.
//
// Each wire is XOR-shared among the n parties. XOR/NOT gates are local; each
// AND layer is evaluated either with one batch of pairwise OTs (cross terms
// x_i·y_j; PreprocMode::kInline) or, when an offline batch is installed, by
// spending one preprocessed Beaver triple per gate — a single broadcast of
// masked shares per layer with zero kFunc traffic (DESIGN.md §10). Outputs
// are opened by exchanging output-wire shares according to a per-party output
// map (supporting private outputs).
//
// Adversary model: this implementation provides passive security plus abort
// (an aborting or deviating party causes honest parties to output ⊥, never a
// wrong value for honest-but-aborting adversaries). That is exactly the
// power the paper's lower-bound adversaries use — they run corrupted parties
// honestly until aborting — and active security for the fairness phase is
// modeled by the ideal-hybrid mode (see DESIGN.md §6). The protocol is
// adaptively secure in this setting because channels are ideally private.
#pragma once

#include <functional>
#include <memory>

#include "circuit/circuit.h"
#include "circuit/compiled.h"
#include "crypto/rng.h"
#include "mpc/preproc/mode.h"
#include "mpc/preproc/store.h"
#include "sim/functionality.h"
#include "sim/party.h"

namespace fairsfe::mpc {

class GmwConfigBuilder;

struct GmwConfig {
  circuit::Circuit circuit;
  /// output_map[p] lists the indices (into circuit.outputs()) that party p
  /// learns. Use public_output() for the everyone-learns-everything case.
  std::vector<std::vector<std::size_t>> output_map;
  /// Shared execution plan (AND-layer schedule + input wire maps), built once
  /// per circuit family and reused read-only by every party in every run.
  /// public_output() fills it; a null plan makes each GmwParty build its own.
  std::shared_ptr<const circuit::CompiledCircuit> plan;
  /// How AND layers obtain their OT correlations. kInline keeps the classic
  /// per-layer ideal-OT round trips; the offline modes consume `preproc`.
  preproc::PreprocMode preproc_mode = preproc::PreprocMode::kInline;
  /// The offline batch, shared read-only across all parties/runs/threads of
  /// a scenario. Required (non-null, matching party count) when preproc_mode
  /// is an offline mode; ignored under kInline.
  std::shared_ptr<const preproc::CorrelatedRandomness> preproc;

  /// Fluent construction: GmwConfig::for_circuit(c).with_plan(p)
  /// .with_preproc(mode, store).build(). Replaces aggregate-initialization
  /// order traps as optional slots accumulate.
  static GmwConfigBuilder for_circuit(circuit::Circuit c);
  /// Thin wrapper: for_circuit(c).build() (public outputs, compiled plan).
  static GmwConfig public_output(circuit::Circuit c);

  /// Beaver triples one run consumes per party: one per AND gate.
  [[nodiscard]] std::size_t triples_per_run() const {
    return plan ? plan->num_and_gates() : circuit.and_count();
  }
};

/// Builder for GmwConfig's optional slots. build() fills what was not set:
/// everyone-learns-everything output map and a freshly compiled plan.
class GmwConfigBuilder {
 public:
  explicit GmwConfigBuilder(circuit::Circuit c);

  GmwConfigBuilder& with_output_map(std::vector<std::vector<std::size_t>> m);
  GmwConfigBuilder& with_plan(std::shared_ptr<const circuit::CompiledCircuit> plan);
  GmwConfigBuilder& with_preproc(
      preproc::PreprocMode mode,
      std::shared_ptr<const preproc::CorrelatedRandomness> store = nullptr);

  [[nodiscard]] GmwConfig build();
  /// build(), boxed for the shared-across-parties use every caller has.
  [[nodiscard]] std::shared_ptr<const GmwConfig> build_shared();

 private:
  GmwConfig cfg_;
  bool have_output_map_ = false;
};

class GmwParty final : public sim::PartyBase<GmwParty> {
 public:
  /// `input` must have cfg->circuit.input_width(id) bits.
  GmwParty(sim::PartyId id, std::shared_ptr<const GmwConfig> cfg,
           std::vector<bool> input, Rng rng);

  std::vector<sim::Message> on_round(int round, sim::MsgView in) override;
  void on_abort() override;

  /// Position this party's triple tape on run `run_index`'s slice of the
  /// shared offline batch (offset run_index × triples-per-run). No-op under
  /// kInline. The estimator invokes this through RunSetup::bind_run so the
  /// slice assignment is a pure function of the run index — identical across
  /// thread counts.
  void bind_preproc_slice(std::size_t run_index);

 private:
  enum class Phase {
    kSendInputShares,
    kAwaitInputShares,
    kOtRoundTrip,   // inline: OT requests in flight (2-round latency)
    kBeaverOpen,    // offline: masked d/e broadcast in flight (1 round)
    kAwaitOutputs,  // output shares in flight
  };

  std::vector<sim::Message> send_input_shares();
  bool absorb_input_shares(sim::MsgView in);
  /// Evaluate the gates of the next resolution step (local gates + the ANDs
  /// whose OT layer just completed); consumes plan_->resolve_step(step_).
  void propagate();
  /// Emit OT traffic for AND layer `layer_`; empty if no layers remain.
  std::vector<sim::Message> send_layer_ots();
  bool absorb_ot_results(sim::MsgView in);
  /// Offline path: spend one triple per gate of layer `layer_` and broadcast
  /// the masked shares d_p = x_p ⊕ a_p, e_p = y_p ⊕ b_p for the whole layer.
  std::vector<sim::Message> send_layer_beaver();
  bool absorb_beaver(sim::MsgView in);
  /// Start AND layer `layer_` on whichever path the config selects.
  std::vector<sim::Message> start_and_layer();
  std::vector<sim::Message> send_output_shares();
  bool absorb_output_shares(sim::MsgView in);

  std::shared_ptr<const GmwConfig> cfg_;
  /// The shared plan (cfg_->plan, or a privately built fallback).
  std::shared_ptr<const circuit::CompiledCircuit> plan_;
  std::vector<bool> input_;
  Rng rng_;

  Phase phase_ = Phase::kSendInputShares;
  int ot_wait_ = 0;
  bool offline_ = false;
  /// Cursor into the shared batch (copyable, so clone() keeps working for
  /// the adversary's lock-detection probes).
  preproc::TripleTape tape_;
  /// Triples spent on the in-flight Beaver layer, in and_layer order.
  std::vector<preproc::BeaverTriple> pending_triples_;

  std::size_t layer_ = 0;
  std::size_t step_ = 0;  ///< next resolution step for propagate()

  // Per-wire share state.
  std::vector<char> share_;
  // Partial AND accumulators, indexed by gate: -1 = no OT batch pending,
  // else the current XOR of local term + r_ij + o_ji (0/1).
  std::vector<signed char> and_state_;
  std::size_t expected_ot_results_ = 0;
};

/// Build one GmwParty per party for the given inputs (inputs[p] = bit vector).
std::vector<std::unique_ptr<sim::IParty>> make_gmw_parties(
    std::shared_ptr<const GmwConfig> cfg, const std::vector<std::vector<bool>>& inputs,
    Rng& rng);

/// The hybrid slot a GMW execution needs under `cfg`: the ideal-OT hub for
/// kInline, nullptr for the offline modes (their AND layers are pure
/// broadcast — zero kFunc traffic). Callers outside src/mpc/ must use this
/// instead of naming OtHub (lint rule direct-ot-access).
std::unique_ptr<sim::IFunctionality> make_gmw_functionality(const GmwConfig& cfg);

/// RunSetup::bind_run hook for a GMW party vector: returns a callable that
/// points every GmwParty's triple tape at run_index's slice of the shared
/// batch. Captures raw party pointers (heap-stable), so the vector may move.
std::function<void(std::size_t)> make_gmw_run_binder(
    const std::vector<std::unique_ptr<sim::IParty>>& parties);

}  // namespace fairsfe::mpc
