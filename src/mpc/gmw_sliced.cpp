#include "mpc/gmw_sliced.h"

#include <array>

#include "circuit/sliced.h"
#include "util/check.h"

namespace fairsfe::mpc {

using circuit::Gate;
using circuit::GateType;
using util::kLaneWidth;
using util::LaneWord;

int crash_round_of(const GmwConfig& cfg, std::size_t layer) {
  // AND layer L's traffic goes out at round 1 + 2L inline (each layer is an
  // OT round trip) and 1 + L offline (one broadcast per layer); layer ==
  // num_and_layers() addresses the output-share round after the last layer.
  const bool offline = preproc::is_offline(cfg.preproc_mode);
  return static_cast<int>(1 + (offline ? layer : 2 * layer));
}

CrashAtParty::CrashAtParty(std::unique_ptr<sim::IParty> inner)
    : PartyBase(inner->id()), inner_(std::move(inner)) {}

CrashAtParty::CrashAtParty(const CrashAtParty& other)
    : PartyBase(other),
      inner_(other.inner_ ? other.inner_->clone() : nullptr),
      crash_round_(other.crash_round_),
      crashed_(other.crashed_) {}

std::vector<sim::Message> CrashAtParty::on_round(int round, sim::MsgView in) {
  if (!crashed_ && crash_round_ >= 0 && round >= crash_round_) {
    crashed_ = true;
    finish_bot();
    return {};
  }
  std::vector<sim::Message> out = inner_->on_round(round, in);
  if (inner_->done()) {
    if (auto y = inner_->output()) {
      finish(std::move(*y));
    } else {
      finish_bot();
    }
  }
  return out;
}

void CrashAtParty::on_abort() {
  if (done_) return;
  if (inner_ && !inner_->done()) inner_->on_abort();
  if (inner_ && inner_->done() && inner_->output()) {
    finish(*inner_->output());
  } else {
    finish_bot();
  }
}

namespace {

// Burst-read `draws` sequential rng bits from every lane and transpose them:
// word t's lane l is the t-th bit lane l's rng would produce. Rng::bit()
// consumes exactly one keystream byte (its LSB), so one fill(draws) per lane
// observes the same stream as `draws` sequential bit() calls — the scalar
// GmwParty's draw pattern, read as one burst.
std::vector<LaneWord> draw_lane_bits(std::vector<Rng>& lanes, std::size_t draws) {
  std::vector<LaneWord> words(draws, 0);
  if (draws == 0) return words;
  Bytes buf(draws);
  for (std::size_t l = 0; l < lanes.size(); ++l) {
    lanes[l].fill(buf);
    const LaneWord bit = LaneWord{1} << l;
    for (std::size_t t = 0; t < draws; ++t) {
      if (buf[t] & 1) words[t] |= bit;
    }
  }
  return words;
}

}  // namespace

SlicedGmwRunner::SlicedGmwRunner(std::shared_ptr<const GmwConfig> cfg,
                                 InputsFn draw_inputs, CrashScheduleFn crashes)
    : cfg_(std::move(cfg)),
      draw_inputs_(std::move(draw_inputs)),
      crashes_(std::move(crashes)) {
  FAIRSFE_CHECK(cfg_ != nullptr, "SlicedGmwRunner: null config");
  FAIRSFE_CHECK(draw_inputs_ != nullptr, "SlicedGmwRunner: null input drawer");
  const auto& c = cfg_->circuit;
  FAIRSFE_CHECK(c.num_parties() >= 2 && c.num_parties() <= kLaneWidth,
                "SlicedGmwRunner: party count out of range");
  plan_ = cfg_->plan;
  if (!plan_) {
    plan_ = std::make_shared<const circuit::CompiledCircuit>(
        circuit::CompiledCircuit::build(c));
  }
  FAIRSFE_CHECK(plan_->num_and_gates() == c.and_count(),
                "compiled plan does not match the circuit's AND gates");
  offline_ = preproc::is_offline(cfg_->preproc_mode);
  if (offline_) {
    FAIRSFE_CHECK(cfg_->preproc != nullptr,
                  "SlicedGmwRunner: offline preproc mode without a store");
    FAIRSFE_CHECK(cfg_->preproc->num_parties() == c.num_parties(),
                  "SlicedGmwRunner: preproc store sized for a different party count");
  }
}

void SlicedGmwRunner::run_batch(std::size_t lo, std::size_t count, std::uint64_t seed,
                                std::span<sim::ExecutionResult> out) const {
  FAIRSFE_CHECK(count >= 1 && count <= kLaneWidth,
                "SlicedGmwRunner: batch must fit the lane width");
  FAIRSFE_CHECK(out.size() >= count, "SlicedGmwRunner: output span too small");
  const auto& c = cfg_->circuit;
  const std::size_t n = c.num_parties();
  const std::size_t layers = plan_->num_and_layers();
  const std::size_t and_gates = plan_->num_and_gates();
  const auto& gates = c.gates();

  // Per-lane setup, mirroring the estimator + scalar factory draw order:
  // run_rng = Rng(seed).fork_at("run", i), setup = run_rng.fork("setup"),
  // inputs drawn from setup, then one fork("gmw-party") per party in order.
  const Rng master(seed);
  std::vector<std::vector<std::vector<bool>>> lane_inputs;  // [lane][party][bit]
  lane_inputs.reserve(count);
  std::vector<std::vector<Rng>> party_rng(n);  // [party][lane]
  for (std::size_t p = 0; p < n; ++p) party_rng[p].reserve(count);
  for (std::size_t l = 0; l < count; ++l) {
    Rng run_rng = master.fork_at("run", lo + l);
    Rng setup_rng = run_rng.fork("setup");
    lane_inputs.push_back(draw_inputs_(setup_rng));
    FAIRSFE_CHECK(lane_inputs.back().size() == n,
                  "SlicedGmwRunner: input drawer returned wrong party count");
    for (std::size_t p = 0; p < n; ++p) {
      FAIRSFE_CHECK(lane_inputs.back()[p].size() == c.input_width(p),
                    "SlicedGmwRunner: input drawer returned wrong input width");
      party_rng[p].push_back(setup_rng.fork("gmw-party"));  // LINT-ALLOW(rng-fork-in-loop): must mirror make_gmw_parties' counter-derived per-party streams bit-for-bit (scalar/sliced equivalence)
    }
  }

  // Each party's full bit-draw tape for one run, read as one burst per lane
  // and transposed into lane words. The scalar order is: input masks
  // (k-outer, j-inner), then — inline only — one OT mask per (gate, peer) in
  // (g-outer, j-inner) layer-walk order; Beaver layers draw nothing.
  std::vector<std::vector<LaneWord>> rdraw(n);
  std::vector<std::size_t> cursor(n, 0);
  for (std::size_t p = 0; p < n; ++p) {
    const std::size_t draws =
        (c.input_width(p) + (offline_ ? 0 : and_gates)) * (n - 1);
    rdraw[p] = draw_lane_bits(party_rng[p], draws);
  }

  // Transpose the per-run input bits into per-bit lane words.
  std::vector<std::vector<LaneWord>> in_word(n);
  {
    std::vector<std::vector<bool>> rows(count);
    for (std::size_t p = 0; p < n; ++p) {
      for (std::size_t l = 0; l < count; ++l) rows[l] = lane_inputs[l][p];
      in_word[p] = util::transpose_to_words(rows);
    }
  }

  // Input sharing (the scalar round 0): party p splits bit k by drawing one
  // mask per peer in j order; peer j's share is the mask, p keeps the fold.
  std::vector<std::vector<LaneWord>> share(n, std::vector<LaneWord>(c.num_wires(), 0));
  std::vector<std::vector<LaneWord>> and_word(n,
                                              std::vector<LaneWord>(c.num_wires(), 0));
  for (std::size_t p = 0; p < n; ++p) {
    const auto wires = plan_->inputs_of(p);
    for (std::size_t k = 0; k < wires.size(); ++k) {
      LaneWord acc = in_word[p][k];
      for (std::size_t j = 0; j < n; ++j) {
        if (j == p) continue;
        const LaneWord r = rdraw[p][cursor[p]++];
        share[j][wires[k]] = r;
        acc ^= r;
      }
      share[p][wires[k]] = acc;
    }
  }

  // GmwParty::propagate, word-wide for all parties at once.
  auto propagate = [&](std::size_t step) {
    for (const std::uint32_t w : plan_->resolve_step(step)) {
      const Gate& g = gates[w];
      switch (g.type) {
        case GateType::kConst:
          // Only party 0 contributes the constant (all lanes alike).
          share[0][w] = g.const_value ? ~LaneWord{0} : 0;
          for (std::size_t p = 1; p < n; ++p) share[p][w] = 0;
          break;
        case GateType::kXor:
          for (std::size_t p = 0; p < n; ++p) {
            share[p][w] = share[p][g.a] ^ share[p][g.b];
          }
          break;
        case GateType::kNot:
          share[0][w] = ~share[0][g.a];
          for (std::size_t p = 1; p < n; ++p) share[p][w] = share[p][g.a];
          break;
        case GateType::kAnd:
          for (std::size_t p = 0; p < n; ++p) share[p][w] = and_word[p][w];
          break;
        case GateType::kInput:
          break;  // excluded from the schedule
      }
    }
  };
  propagate(0);

  // Crash-divergent lanes leave the active set at their crash layer; the
  // words still carry their (discarded) bits, so lane-mates never notice.
  LaneWord active =
      count == kLaneWidth ? ~LaneWord{0} : (LaneWord{1} << count) - 1;
  std::vector<std::size_t> crash_at(count, layers + 1);  // layers + 1 = never
  if (crashes_) {
    for (std::size_t l = 0; l < count; ++l) {
      if (const auto cp = crashes_(lo + l)) {
        FAIRSFE_CHECK(cp->party < n && cp->layer <= layers,
                      "SlicedGmwRunner: crash plan out of range");
        crash_at[l] = cp->layer;
      }
    }
  }

  if (offline_ && and_gates > 0) {
    FAIRSFE_CHECK((lo + count) * and_gates <= cfg_->preproc->num_triples(),
                  "preprocessed Beaver triples exhausted — offline budget too small");
  }

  std::vector<LaneWord> x_word(n), y_word(n), z_word(n);
  std::vector<LaneWord> ta(n), tb(n), tc(n);
  std::size_t ordinal = 0;  // AND-gate ordinal within one run (= tape order)
  for (std::size_t layer = 0; layer < layers; ++layer) {
    for (std::size_t l = 0; l < count; ++l) {
      if (crash_at[l] == layer) active &= ~(LaneWord{1} << l);
    }
    for (const std::uint32_t g : plan_->and_layer(layer)) {
      for (std::size_t p = 0; p < n; ++p) {
        x_word[p] = share[p][gates[g].a];
        y_word[p] = share[p][gates[g].b];
      }
      if (!offline_) {
        // Inline OT algebra: z_s starts x_s & y_s; as sender to j, s draws
        // mask r and folds it in; receiver j folds r ⊕ (x_s & y_j) — the
        // 1-of-2 OT result — so ⊕_p z_p telescopes to x & y.
        for (std::size_t p = 0; p < n; ++p) z_word[p] = x_word[p] & y_word[p];
        for (std::size_t s = 0; s < n; ++s) {
          for (std::size_t j = 0; j < n; ++j) {
            if (j == s) continue;
            const LaneWord r = rdraw[s][cursor[s]++];
            z_word[s] ^= r;
            z_word[j] ^= r ^ (x_word[s] & y_word[j]);
          }
        }
      } else {
        // Beaver path: 64 triples per word-op. Lane l's triple for this gate
        // sits at index (lo + l)·triples_per_run + ordinal — exactly where
        // the scalar tape (bind_preproc_slice) would read it.
        const preproc::CorrelatedRandomness& store = *cfg_->preproc;
        for (std::size_t p = 0; p < n; ++p) {
          ta[p] = tb[p] = tc[p] = 0;
          for (std::size_t l = 0; l < count; ++l) {
            const std::size_t t = (lo + l) * and_gates + ordinal;
            const LaneWord bit = LaneWord{1} << l;
            if (store.triple_a(p, t)) ta[p] |= bit;
            if (store.triple_b(p, t)) tb[p] |= bit;
            if (store.triple_c(p, t)) tc[p] |= bit;
          }
        }
        LaneWord d = 0;
        LaneWord e = 0;
        for (std::size_t p = 0; p < n; ++p) {
          d ^= x_word[p] ^ ta[p];
          e ^= y_word[p] ^ tb[p];
        }
        // z_p = c_p ⊕ d·b_p ⊕ e·a_p ⊕ [p = 0]·d·e.
        for (std::size_t p = 0; p < n; ++p) {
          z_word[p] = tc[p] ^ (d & tb[p]) ^ (e & ta[p]);
        }
        z_word[0] ^= d & e;
      }
      for (std::size_t p = 0; p < n; ++p) and_word[p][g] = z_word[p];
      ++ordinal;
    }
    propagate(layer + 1);
  }
  for (std::size_t l = 0; l < count; ++l) {
    if (crash_at[l] == layers) active &= ~(LaneWord{1} << l);
  }

  // Open the outputs: the reconstructed wire value is the XOR over all
  // parties' shares (every party broadcasts its output-wire shares).
  const auto& outs = c.outputs();
  std::vector<LaneWord> recon(outs.size(), 0);
  for (std::size_t oi = 0; oi < outs.size(); ++oi) {
    for (std::size_t p = 0; p < n; ++p) recon[oi] ^= share[p][outs[oi]];
  }
#if FAIRSFE_DCHECKS_ENABLED
  {
    const auto ref = circuit::eval_sliced(c, in_word);
    for (std::size_t oi = 0; oi < outs.size(); ++oi) {
      FAIRSFE_DCHECK(((recon[oi] ^ ref[oi]) & active) == 0,
                     "sliced GMW reconstruction disagrees with plaintext eval");
    }
  }
#endif

  const int full_rounds = static_cast<int>(2 + (offline_ ? layers : 2 * layers));
  for (std::size_t l = 0; l < count; ++l) {
    sim::ExecutionResult r;
    r.outputs.resize(n);
    if (((active >> l) & 1) != 0) {
      for (std::size_t p = 0; p < n; ++p) {
        std::vector<bool> bits;
        bits.reserve(cfg_->output_map[p].size());
        for (const std::size_t oi : cfg_->output_map[p]) {
          bits.push_back(((recon[oi] >> l) & 1) != 0);
        }
        r.outputs[p] = circuit::bits_to_bytes(bits);
      }
      r.rounds = full_rounds;
    } else {
      // All parties end ⊥: a crashed lane's peers observe the missing layer
      // message and abort (the scalar twin is CrashAtParty).
      r.rounds = crash_round_of(*cfg_, crash_at[l]) + 2;
    }
    out[l] = std::move(r);
  }
}

}  // namespace fairsfe::mpc
