// Bit-sliced GMW execution: 64 Monte-Carlo runs per machine word.
//
// Honest GMW runs under the utility estimator are structurally identical —
// they differ only in the input bits and share randomness derived from
// Rng(seed).fork_at("run", i). SlicedGmwRunner exploits that: it packs 64
// runs into the lanes of LaneWords (util/bitmat.h) and advances all of them
// with ONE walk over the cached CompiledCircuit plan, evaluating XOR/NOT
// layers as single word ops and AND layers on whole words — either with the
// inline OT algebra (every per-(gate, peer) mask drawn as a burst from the
// same per-party rng streams the scalar GmwParty would consume) or with
// Beaver triples from the PR-6 preprocessing store, 64 triples per word-op.
//
// The contract that makes it useful (DESIGN.md §11): for every run index i,
// the lane reproduces the scalar execution's observable result bit-for-bit —
// same inputs, same share randomness, same outputs — because it derives the
// identical rng streams (fork_at("run", i) → fork("setup") → input draws →
// one fork("gmw-party") per party) and consumes each party's bit draws in
// the scalar order (input masks k-outer/j-inner, OT masks g-outer/j-inner,
// Beaver layers drawing nothing). Estimates from the sliced path are
// therefore bit-identical to the scalar engine's, not statistically close.
//
// Crash-divergent runs are masked out of the lane set rather than forcing a
// scalar fallback: a lane whose run crashes before AND layer L is removed
// from the active mask at L and every party of that lane outputs ⊥ (in the
// synchronous model a missing layer message aborts all peers), while its 63
// lane-mates are unaffected — their streams are independent by fork_at.
// CrashAtParty is the scalar twin of that semantics, used by the
// sliced-vs-scalar equivalence tests and scenario checks.
#pragma once

#include <functional>
#include <memory>
#include <optional>
#include <span>
#include <vector>

#include "mpc/gmw.h"
#include "sim/engine.h"
#include "util/bitmat.h"

namespace fairsfe::mpc {

/// A scheduled crash: the party stops sending right before AND layer `layer`
/// (layer == num_and_layers() means right before the output exchange).
struct CrashPlan {
  std::size_t party = 0;
  std::size_t layer = 0;
};

/// Deterministic crash schedule over run indices: pure function of the run
/// index (never of scheduling), so sliced and scalar paths agree exactly.
using CrashScheduleFn = std::function<std::optional<CrashPlan>(std::size_t run_index)>;

/// The engine round at which a party crashing "before AND layer `layer`"
/// falls silent: the round that layer's traffic (OT requests inline, the
/// Beaver broadcast offline) would have been sent.
int crash_round_of(const GmwConfig& cfg, std::size_t layer);

/// Scalar crash twin: delegates to the wrapped party until `crash_round`,
/// then falls permanently silent with output ⊥. Peers observe the missing
/// layer message and abort, so the whole run ends all-⊥ — exactly the
/// masked-lane semantics of SlicedGmwRunner. A negative crash round (the
/// default) never fires; RunSetup::bind_run sets it per run index.
class CrashAtParty final : public sim::PartyBase<CrashAtParty> {
 public:
  explicit CrashAtParty(std::unique_ptr<sim::IParty> inner);
  CrashAtParty(const CrashAtParty& other);
  CrashAtParty& operator=(const CrashAtParty&) = delete;

  void set_crash_round(int round) { crash_round_ = round; }

  std::vector<sim::Message> on_round(int round, sim::MsgView in) override;
  void on_abort() override;

 private:
  std::unique_ptr<sim::IParty> inner_;
  int crash_round_ = -1;
  bool crashed_ = false;
};

/// Evaluates batches of up to kLaneWidth honest GMW runs bit-sliced. The
/// runner is immutable and shared read-only across estimator worker threads.
class SlicedGmwRunner {
 public:
  /// Draws one run's inputs from the setup rng — must be the SAME callable
  /// (or at least the same draw sequence) the scalar factory uses, so both
  /// paths consume the setup stream identically.
  using InputsFn = std::function<std::vector<std::vector<bool>>(Rng&)>;

  SlicedGmwRunner(std::shared_ptr<const GmwConfig> cfg, InputsFn draw_inputs,
                  CrashScheduleFn crashes = nullptr);

  /// Evaluate runs [lo, lo+count) — count <= kLaneWidth — against master
  /// `seed` (run lo+l's randomness is Rng(seed).fork_at("run", lo+l), exactly
  /// the estimator's derivation) and write run lo+l's ExecutionResult to
  /// out[l]. Crashed lanes yield all-⊥ outputs; surviving lanes carry every
  /// party's opened output bytes.
  void run_batch(std::size_t lo, std::size_t count, std::uint64_t seed,
                 std::span<sim::ExecutionResult> out) const;

  [[nodiscard]] std::size_t num_parties() const { return cfg_->circuit.num_parties(); }

 private:
  std::shared_ptr<const GmwConfig> cfg_;
  std::shared_ptr<const circuit::CompiledCircuit> plan_;
  InputsFn draw_inputs_;
  CrashScheduleFn crashes_;
  bool offline_ = false;
};

}  // namespace fairsfe::mpc
