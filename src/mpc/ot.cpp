#include "mpc/ot.h"

namespace fairsfe::mpc {

namespace {
constexpr std::uint8_t kTagSend = 10;
constexpr std::uint8_t kTagChoose = 11;
constexpr std::uint8_t kTagResult = 12;
constexpr std::uint8_t kTagSendStr = 13;
constexpr std::uint8_t kTagChooseStr = 14;
constexpr std::uint8_t kTagResultStr = 15;
}  // namespace

Bytes encode_ot_send(std::uint64_t label, bool m0, bool m1) {
  Writer w;
  w.u8(kTagSend).u64(label).u8(m0 ? 1 : 0).u8(m1 ? 1 : 0);
  return w.take();
}

Bytes encode_ot_choose(std::uint64_t label, bool c) {
  Writer w;
  w.u8(kTagChoose).u64(label).u8(c ? 1 : 0);
  return w.take();
}

Bytes encode_ot_result(std::uint64_t label, bool mc) {
  Writer w;
  w.u8(kTagResult).u64(label).u8(mc ? 1 : 0);
  return w.take();
}

std::optional<OtResult> decode_ot_result(ByteView payload) {
  Reader r(payload);
  const auto tag = r.u8();
  if (!tag || *tag != kTagResult) return std::nullopt;
  const auto label = r.u64();
  const auto v = r.u8();
  if (!label || !v || !r.at_end()) return std::nullopt;
  return OtResult{*label, *v != 0};
}

Bytes encode_ot_send_str(std::uint64_t label, ByteView m0, ByteView m1) {
  Writer w;
  w.u8(kTagSendStr).u64(label).blob(m0).blob(m1);
  return w.take();
}

Bytes encode_ot_choose_str(std::uint64_t label, bool c) {
  Writer w;
  w.u8(kTagChooseStr).u64(label).u8(c ? 1 : 0);
  return w.take();
}

Bytes encode_ot_result_str(std::uint64_t label, ByteView mc) {
  Writer w;
  w.u8(kTagResultStr).u64(label).blob(mc);
  return w.take();
}

std::optional<OtStrResult> decode_ot_result_str(ByteView payload) {
  Reader r(payload);
  const auto tag = r.u8();
  if (!tag || *tag != kTagResultStr) return std::nullopt;
  const auto label = r.u64();
  const auto v = r.blob();
  if (!label || !v || !r.at_end()) return std::nullopt;
  return OtStrResult{*label, *v};
}

std::vector<sim::Message> OtHub::on_round(sim::FuncContext& /*ctx*/, int /*round*/,
                                          sim::MsgView in) {
  // Completion is detected as submissions land: the message that supplies the
  // second half of a pair pushes its label onto ready_. Guards keep
  // first-submission-wins semantics (a duplicate half never sets the field,
  // so it never enqueues).
  for (const sim::Message& m : in) {
    Reader r(m.payload);
    const auto tag = r.u8();
    if (!tag) continue;
    if (*tag == kTagSend) {
      // ANALYZE-HANDLES(ot_send)
      const auto label = r.u64();
      const auto m0 = r.u8();
      const auto m1 = r.u8();
      if (!label || !m0 || !m1 || !r.at_end()) continue;
      Pending& p = pending_[*label];
      if (!p.messages) {
        p.messages = std::make_pair(Bytes{*m0}, Bytes{*m1});
        if (p.choice && !p.delivered) ready_.push_back(*label);
      }
    } else if (*tag == kTagSendStr) {
      // ANALYZE-HANDLES(ot_send_str)
      const auto label = r.u64();
      const auto m0 = r.blob();
      const auto m1 = r.blob();
      if (!label || !m0 || !m1 || !r.at_end()) continue;
      Pending& p = pending_[*label];
      if (!p.messages) {
        p.messages = std::make_pair(*m0, *m1);
        p.is_string = true;
        if (p.choice && !p.delivered) ready_.push_back(*label);
      }
    } else if (*tag == kTagChoose || *tag == kTagChooseStr) {
      // ANALYZE-HANDLES(ot_choose) ANALYZE-HANDLES(ot_choose_str)
      const auto label = r.u64();
      const auto c = r.u8();
      if (!label || !c || !r.at_end()) continue;
      Pending& p = pending_[*label];
      if (!p.choice) {
        p.choice = (*c != 0);
        p.receiver = m.from;
        if (p.messages && !p.delivered) ready_.push_back(*label);
      }
    }
  }

  std::vector<sim::Message> out;
  out.reserve(ready_.size());
  for (const std::uint64_t label : ready_) {
    Pending& p = pending_[label];
    const Bytes& mc = *p.choice ? p.messages->second : p.messages->first;
    if (p.is_string) {
      out.push_back(sim::Message{sim::kFunc, p.receiver, encode_ot_result_str(label, mc)});
    } else {
      out.push_back(
          sim::Message{sim::kFunc, p.receiver, encode_ot_result(label, mc[0] != 0)});
    }
    p.delivered = true;
  }
  ready_.clear();
  return out;
}

std::unique_ptr<sim::IFunctionality> make_ot_functionality() {
  return std::make_unique<OtHub>();
}

}  // namespace fairsfe::mpc
