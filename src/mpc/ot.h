// Ideal 1-out-of-2 bit oblivious transfer, as a hybrid functionality hub.
//
// GMW evaluates AND gates via pairwise OTs; the protocol is designed in the
// OT-hybrid model (standard since GMW87). The hub multiplexes arbitrarily
// many logical OT instances per round, keyed by a caller-chosen label:
// the sender submits (label, m0, m1), the receiver submits (label, c), and
// one round later the receiver gets (label, m_c). The sender learns nothing
// about c; the receiver learns nothing about m_{1-c} — trivially true here
// because the hub simply never emits them.
#pragma once

#include <memory>
#include <optional>
#include <unordered_map>
#include <vector>

#include "sim/functionality.h"

namespace fairsfe::mpc {

/// Wire formats for bit-OT traffic (party -> kFunc and kFunc -> party).
Bytes encode_ot_send(std::uint64_t label, bool m0, bool m1);
Bytes encode_ot_choose(std::uint64_t label, bool c);
Bytes encode_ot_result(std::uint64_t label, bool mc);

struct OtResult {
  std::uint64_t label = 0;
  bool value = false;
};
/// Parse a kFunc->receiver OT result; nullopt if payload is something else.
std::optional<OtResult> decode_ot_result(ByteView payload);

/// String-OT variants (used by the Yao garbled-circuit substrate to transfer
/// wire labels). Same pairing semantics, byte-string messages.
Bytes encode_ot_send_str(std::uint64_t label, ByteView m0, ByteView m1);
Bytes encode_ot_choose_str(std::uint64_t label, bool c);
Bytes encode_ot_result_str(std::uint64_t label, ByteView mc);

struct OtStrResult {
  std::uint64_t label = 0;
  Bytes value;
};
std::optional<OtStrResult> decode_ot_result_str(ByteView payload);

/// The hub functionality. Pairs sender/receiver submissions by label; replies
/// to the receiver next round. Unmatched submissions persist (a late
/// counterpart still completes the transfer).
class OtHub final : public sim::IFunctionality {
 public:
  std::vector<sim::Message> on_round(sim::FuncContext& ctx, int round,
                                     sim::MsgView in) override;

 private:
  struct Pending {
    std::optional<std::pair<Bytes, Bytes>> messages;  // m0, m1 (1 byte for bit-OT)
    std::optional<bool> choice;
    sim::PartyId receiver = 0;
    bool is_string = false;
    bool delivered = false;
  };
  // Never iterated: accessed only by label lookup, and delivery drains the
  // ordered ready_ vector below, so hash order is never protocol-visible.
  std::unordered_map<std::uint64_t, Pending> pending_;  // LINT-ALLOW(unordered-container): lookup-only; delivery order comes from ready_
  /// Labels whose pair completed this round, in completion order. Delivery
  /// drains this list instead of rescanning every instance the hub has ever
  /// seen; delivered entries stay in pending_ as replay tombstones.
  std::vector<std::uint64_t> ready_;
};

/// Sanctioned way to install the ideal-OT hub as an execution's hybrid slot.
/// Code outside src/mpc/ must call this (or mpc::make_gmw_functionality)
/// rather than naming OtHub directly — lint rule direct-ot-access keeps the
/// online phase from minting its own correlations behind the
/// PreprocessingProvider API's back.
std::unique_ptr<sim::IFunctionality> make_ot_functionality();

}  // namespace fairsfe::mpc
