// PreprocMode: how a protocol execution obtains its OT correlations.
//
// The paper analyzes protocols in the OT-hybrid model, so utilities and
// fairness verdicts must be invariant under substituting *how* the
// correlations are produced (the RPD composition claim, DESIGN.md §10).
// This enum names the three sanctioned substitutions:
//
//   kInline        — ideal OT calls inside the measured run (the classic
//                    OT-hybrid execution; bit-identical to the pre-split
//                    engine and the default everywhere).
//   kOfflineIdeal  — a trusted dealer (preproc::IdealDealer) hands out Beaver
//                    triples and random-OT pairs before the run; the online
//                    phase is XORs plus one broadcast per AND layer.
//   kOfflineOt     — the same offline batch, but produced by running the real
//                    OtHub rounds up front (preproc::OtDrivenProvider),
//                    proving the dealer substitution is faithful.
//
// This header is include-anywhere: no dependencies, so sim/engine.h and
// rpd/estimator.h can carry a PreprocMode without layering cycles.
#pragma once

#include <optional>
#include <string_view>

namespace fairsfe::mpc::preproc {

enum class PreprocMode {
  kInline,
  kOfflineIdeal,
  kOfflineOt,
};

constexpr std::string_view to_string(PreprocMode m) {
  switch (m) {
    case PreprocMode::kInline: return "inline";
    case PreprocMode::kOfflineIdeal: return "offline_ideal";
    case PreprocMode::kOfflineOt: return "offline_ot";
  }
  return "inline";
}

/// Parse a command-line spelling; nullopt on anything unrecognized.
constexpr std::optional<PreprocMode> parse_preproc_mode(std::string_view s) {
  if (s == "inline") return PreprocMode::kInline;
  if (s == "offline_ideal" || s == "ideal") return PreprocMode::kOfflineIdeal;
  if (s == "offline_ot" || s == "ot") return PreprocMode::kOfflineOt;
  return std::nullopt;
}

/// True for the modes that consume a CorrelatedRandomness batch.
constexpr bool is_offline(PreprocMode m) { return m != PreprocMode::kInline; }

}  // namespace fairsfe::mpc::preproc
