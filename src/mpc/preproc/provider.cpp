#include "mpc/preproc/provider.h"

#include <algorithm>
#include <stdexcept>
#include <utility>

#include "circuit/circuit.h"
#include "mpc/ot.h"
#include "sim/party.h"
#include "util/check.h"

namespace fairsfe::mpc::preproc {

using sim::Message;
using sim::MsgView;

// ---------------------------------------------------------------------------
// IdealDealer
// ---------------------------------------------------------------------------

CorrelatedRandomness IdealDealer::generate(const PreprocRequest& req, Rng& rng) {
  const std::size_t n = req.parties;
  const std::size_t T = req.triples;
  const std::size_t R = req.rots;
  CorrelatedRandomness out(n, T, R);

  // Fixed fork labels (documented in DESIGN.md §10): the dealer stream is
  // fork("preproc-dealer"), and party p's material comes from the pure
  // derivation fork_at("party", p) of it — so the batch is a function of
  // (seed, request) alone, independent of call order elsewhere.
  Rng dealer = rng.fork("preproc-dealer");
  std::vector<Rng> pr;
  pr.reserve(n);
  for (std::size_t p = 0; p < n; ++p) pr.push_back(dealer.fork_at("party", p));

  // Beaver triples: every party draws uniform a/b shares; parties 0..n-2 draw
  // uniform c shares and the last share is forced so that ⊕c = ⊕a & ⊕b.
  std::vector<std::vector<bool>> a(n), b(n), c(n);
  for (std::size_t p = 0; p < n; ++p) {
    a[p].resize(T);
    b[p].resize(T);
    c[p].resize(T);
    for (std::size_t t = 0; t < T; ++t) a[p][t] = pr[p].bit();
    for (std::size_t t = 0; t < T; ++t) b[p][t] = pr[p].bit();
    if (p + 1 < n) {
      for (std::size_t t = 0; t < T; ++t) c[p][t] = pr[p].bit();
    }
  }
  for (std::size_t t = 0; t < T; ++t) {
    bool A = false, B = false, acc = false;
    for (std::size_t p = 0; p < n; ++p) {
      A = A != a[p][t];
      B = B != b[p][t];
      if (p + 1 < n) acc = acc != c[p][t];
    }
    c[n - 1][t] = (A && B) != acc;
    for (std::size_t p = 0; p < n; ++p) out.set_triple(p, t, a[p][t], b[p][t], c[p][t]);
  }

  // Random-OT pairs: sender draws (m0, m1), receiver draws choice; the dealer
  // (who sees both sides) records mc = m_choice.
  for (std::size_t s = 0; s < n; ++s) {
    for (std::size_t r = 0; r < n; ++r) {
      if (s == r) continue;
      for (std::size_t t = 0; t < R; ++t) {
        RotPair x;
        x.m0 = pr[s].bit();
        x.m1 = pr[s].bit();
        x.choice = pr[r].bit();
        x.mc = x.choice ? x.m1 : x.m0;
        out.set_rot(s, r, t, x);
      }
    }
  }
  out.check_consistent();
  return out;
}

// ---------------------------------------------------------------------------
// OtDrivenProvider
// ---------------------------------------------------------------------------

namespace {

// OT labels: triple t, ordered pair (s, r) -> t·n² + s·n + r, matching GMW's
// per-gate labeling; ROT t uses the label space above the triples.
std::uint64_t triple_label(std::size_t t, std::size_t s, std::size_t r,
                           std::size_t n) {
  return (static_cast<std::uint64_t>(t) * n + s) * n + r;
}
std::uint64_t rot_label(std::size_t t, std::size_t s, std::size_t r, std::size_t n,
                        std::size_t num_triples) {
  return (static_cast<std::uint64_t>(num_triples + t) * n + s) * n + r;
}

// One party of the offline protocol. Round 0: draw random a/b shares for
// every requested triple and run the GMW cross-term pattern (as OT sender
// offer (r, r ⊕ a_me); as receiver choose with b_me) for all triples in ONE
// batched layer — plus one random OT per requested ROT. Then wait for the
// hub's result round (recognised by arrival, so the machine also works under
// fault-injection engines where empty-mailbox rounds stall the party):
// absorb results and output all share material packed as bits. The whole
// batch costs ~4 engine rounds regardless of size.
class RotGenParty final : public sim::PartyBase<RotGenParty> {
 public:
  RotGenParty(sim::PartyId id, std::size_t n, std::size_t triples, std::size_t rots,
              Rng rng)
      : PartyBase(id), n_(n), triples_(triples), rots_(rots), rng_(std::move(rng)) {}

  std::vector<Message> on_round(int /*round*/, MsgView in) override {
    switch (phase_) {
      case Phase::kEmit: {
        phase_ = Phase::kAwait;
        return emit_requests();
      }
      case Phase::kAwait: {
        // Activation-driven, not round-counted: under a fault-injection
        // engine a party with an empty mailbox stalls instead of stepping,
        // so the hub's results are recognised by arrival (any kFunc message
        // in the mailbox), never by assuming "results are due this round".
        const bool results_round =
            std::any_of(in.begin(), in.end(),
                        [](const Message& m) { return m.from == sim::kFunc; });
        if (!results_round) return {};  // hub still pairing; keep waiting
        if (!absorb_results(in)) {
          finish_bot();
          return {};
        }
        finish(pack_output());
        return {};
      }
    }
    return {};
  }

  void on_abort() override {
    if (!done()) finish_bot();
  }

 private:
  enum class Phase { kEmit, kAwait };

  std::vector<Message> emit_requests() {
    const std::size_t me = static_cast<std::size_t>(id_);
    a_.resize(triples_);
    b_.resize(triples_);
    c_.resize(triples_);
    rot_m0_.assign(n_, std::vector<bool>(rots_));
    rot_m1_.assign(n_, std::vector<bool>(rots_));
    rot_choice_.assign(n_, std::vector<bool>(rots_));
    rot_mc_.assign(n_, std::vector<bool>(rots_));
    std::vector<Message> out;
    out.reserve((triples_ + rots_) * 2 * (n_ - 1));
    for (std::size_t t = 0; t < triples_; ++t) {
      a_[t] = rng_.bit();
      b_[t] = rng_.bit();
      bool acc = a_[t] && b_[t];
      for (std::size_t j = 0; j < n_; ++j) {
        if (j == me) continue;
        const bool r = rng_.bit();
        acc = acc != r;
        out.push_back(Message{id_, sim::kFunc,
                              encode_ot_send(triple_label(t, me, j, n_), r, r != a_[t])});
        out.push_back(Message{id_, sim::kFunc,
                              encode_ot_choose(triple_label(t, j, me, n_), b_[t])});
        ++expected_;
      }
      c_[t] = acc;
    }
    for (std::size_t t = 0; t < rots_; ++t) {
      for (std::size_t j = 0; j < n_; ++j) {
        if (j == me) continue;
        const bool m0 = rng_.bit();
        const bool m1 = rng_.bit();
        rot_m0_[j][t] = m0;
        rot_m1_[j][t] = m1;
        out.push_back(Message{id_, sim::kFunc,
                              encode_ot_send(rot_label(t, me, j, n_, triples_), m0, m1)});
        const bool ch = rng_.bit();
        rot_choice_[j][t] = ch;
        out.push_back(Message{id_, sim::kFunc,
                              encode_ot_choose(rot_label(t, j, me, n_, triples_), ch)});
        ++expected_;
      }
    }
    return out;
  }

  bool absorb_results(MsgView in) {
    const std::size_t me = static_cast<std::size_t>(id_);
    std::size_t got = 0;
    for (const Message& m : in) {
      if (m.from != sim::kFunc) continue;
      const auto res = decode_ot_result(m.payload);
      if (!res) continue;
      const std::size_t idx = static_cast<std::size_t>(res->label / (n_ * n_));
      const std::size_t sender = static_cast<std::size_t>((res->label / n_) % n_);
      const std::size_t recv = static_cast<std::size_t>(res->label % n_);
      if (recv != me || sender >= n_ || sender == me) continue;
      if (idx < triples_) {
        c_[idx] = c_[idx] != res->value;
      } else if (idx < triples_ + rots_) {
        rot_mc_[sender][idx - triples_] = res->value;
      } else {
        continue;
      }
      ++got;
    }
    return got == expected_;
  }

  Bytes pack_output() const {
    const std::size_t me = static_cast<std::size_t>(id_);
    std::vector<bool> bits;
    bits.reserve(3 * triples_ + 4 * rots_ * (n_ - 1));
    for (std::size_t t = 0; t < triples_; ++t) bits.push_back(a_[t]);
    for (std::size_t t = 0; t < triples_; ++t) bits.push_back(b_[t]);
    for (std::size_t t = 0; t < triples_; ++t) bits.push_back(c_[t]);
    for (std::size_t j = 0; j < n_; ++j) {
      if (j == me) continue;
      for (std::size_t t = 0; t < rots_; ++t) {
        bits.push_back(rot_m0_[j][t]);
        bits.push_back(rot_m1_[j][t]);
      }
    }
    for (std::size_t j = 0; j < n_; ++j) {
      if (j == me) continue;
      for (std::size_t t = 0; t < rots_; ++t) {
        bits.push_back(rot_choice_[j][t]);
        bits.push_back(rot_mc_[j][t]);
      }
    }
    Writer w;
    w.blob(circuit::bits_to_bytes(bits));
    w.u32(static_cast<std::uint32_t>(bits.size()));
    return w.take();
  }

  std::size_t n_;
  std::size_t triples_;
  std::size_t rots_;
  Rng rng_;
  Phase phase_ = Phase::kEmit;
  std::size_t expected_ = 0;
  std::vector<bool> a_, b_, c_;
  // ROT material, indexed [peer][t] (the me slot stays unused).
  std::vector<std::vector<bool>> rot_m0_, rot_m1_, rot_choice_, rot_mc_;
};

}  // namespace

CorrelatedRandomness OtDrivenProvider::generate(const PreprocRequest& req,
                                                Rng& rng) {
  const std::size_t n = req.parties;
  const std::size_t T = req.triples;
  const std::size_t R = req.rots;
  FAIRSFE_CHECK(n >= 2, "OtDrivenProvider: need >= 2 parties");

  std::vector<std::unique_ptr<sim::IParty>> parties;
  parties.reserve(n);
  for (std::size_t p = 0; p < n; ++p) {
    parties.push_back(std::make_unique<RotGenParty>(static_cast<sim::PartyId>(p), n,
                                                    T, R, rng.fork("rotgen-party")));  // LINT-ALLOW(rng-fork-in-loop): fork counter is the party index; the offline-engine fork below depends on the advanced counter
  }
  sim::Engine engine(std::move(parties), std::make_unique<OtHub>(), nullptr,
                     rng.fork("offline-engine"), engine_opts_);
  sim::ExecutionResult res = engine.run();

  CorrelatedRandomness out(n, T, R);
  for (std::size_t p = 0; p < n; ++p) {
    if (!res.outputs[p].has_value()) {
      throw std::runtime_error(
          "OtDrivenProvider: offline phase aborted (party " + std::to_string(p) +
          " output bot); no batch produced");
    }
    Reader rd(*res.outputs[p]);
    const auto blob = rd.blob();
    const auto count = rd.u32();
    const std::size_t want = 3 * T + 4 * R * (n - 1);
    if (!blob || !count || *count != want) {
      throw std::runtime_error("OtDrivenProvider: malformed offline output");
    }
    const auto bits = circuit::bytes_to_bits(*blob, *count);
    std::size_t k = 0;
    for (std::size_t t = 0; t < T; ++t) {
      out.set_triple(p, t, bits[t], bits[T + t], bits[2 * T + t]);
    }
    k = 3 * T;
    for (std::size_t j = 0; j < n; ++j) {
      if (j == p) continue;
      for (std::size_t t = 0; t < R; ++t) {
        RotPair x = out.rot(p, j, t);
        x.m0 = bits[k++];
        x.m1 = bits[k++];
        out.set_rot(p, j, t, x);
      }
    }
    for (std::size_t j = 0; j < n; ++j) {
      if (j == p) continue;
      for (std::size_t t = 0; t < R; ++t) {
        RotPair x = out.rot(j, p, t);
        x.choice = bits[k++];
        x.mc = bits[k++];
        out.set_rot(j, p, t, x);
      }
    }
  }
  // A faithful offline run must have produced exactly the Beaver/ROT
  // correlations the dealer would have; this aborts on any corruption the
  // per-party framing checks above could not see.
  out.check_consistent();
  return out;
}

std::unique_ptr<PreprocessingProvider> make_provider(PreprocMode mode) {
  switch (mode) {
    case PreprocMode::kInline: return nullptr;
    case PreprocMode::kOfflineIdeal: return std::make_unique<IdealDealer>();
    case PreprocMode::kOfflineOt: return std::make_unique<OtDrivenProvider>();
  }
  return nullptr;
}

std::shared_ptr<const CorrelatedRandomness> generate_batch(PreprocMode mode,
                                                           const PreprocRequest& req,
                                                           Rng& rng) {
  auto provider = make_provider(mode);
  if (!provider) return nullptr;
  return std::make_shared<const CorrelatedRandomness>(provider->generate(req, rng));
}

}  // namespace fairsfe::mpc::preproc
