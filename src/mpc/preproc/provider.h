// PreprocessingProvider: where CorrelatedRandomness batches come from.
//
// Two implementations, one per offline PreprocMode:
//
//   IdealDealer — a trusted dealer. Every bit is a pure function of the
//   caller's Rng via fixed fork labels ("preproc-dealer", then fork_at
//   ("party", p) per party), so a batch is reproducible independently of
//   thread interleaving — the same determinism contract the estimator's
//   fork_at("run", i) gives per-run randomness. This is the estimator's
//   provider of choice: fast and dependency-free.
//
//   OtDrivenProvider — produces the *same kind* of batch by actually running
//   the OtHub functionality rounds up front on a sim::Engine: each party
//   draws random a/b shares and evaluates the cross terms with exactly the
//   pairwise-OT pattern GMW uses per AND gate (one batched layer for the
//   whole request), then outputs its share material. Substituting this
//   provider for the dealer and getting byte-identical utilities is the
//   paper's composition claim made executable (DESIGN.md §10).
//
// An aborted offline run (e.g. fault injection dropped OT traffic) throws —
// the online phase never starts from a partially-filled store.
#pragma once

#include <memory>
#include <string_view>

#include "crypto/rng.h"
#include "mpc/preproc/mode.h"
#include "mpc/preproc/store.h"
#include "sim/engine.h"

namespace fairsfe::mpc::preproc {

/// Shape of an offline batch: how many parties it serves, how many Beaver
/// triples and (optionally) ROT pairs per ordered party pair it must hold.
struct PreprocRequest {
  std::size_t parties = 2;
  std::size_t triples = 0;
  std::size_t rots = 0;
};

class PreprocessingProvider {
 public:
  virtual ~PreprocessingProvider() = default;

  /// Produce a batch satisfying `req`. Deterministic in (req, rng state).
  /// Throws std::runtime_error if the offline phase aborts.
  virtual CorrelatedRandomness generate(const PreprocRequest& req, Rng& rng) = 0;

  [[nodiscard]] virtual std::string_view name() const = 0;
};

class IdealDealer final : public PreprocessingProvider {
 public:
  CorrelatedRandomness generate(const PreprocRequest& req, Rng& rng) override;
  [[nodiscard]] std::string_view name() const override { return "ideal_dealer"; }
};

class OtDrivenProvider final : public PreprocessingProvider {
 public:
  /// `engine_opts` lets tests run the offline phase under fault injection;
  /// the default is the reliable engine.
  explicit OtDrivenProvider(sim::ExecutionOptions engine_opts = {})
      : engine_opts_(std::move(engine_opts)) {}

  CorrelatedRandomness generate(const PreprocRequest& req, Rng& rng) override;
  [[nodiscard]] std::string_view name() const override { return "ot_driven"; }

 private:
  sim::ExecutionOptions engine_opts_;
};

/// Provider for a mode; nullptr for kInline (no offline phase).
std::unique_ptr<PreprocessingProvider> make_provider(PreprocMode mode);

/// One-call batch generation: nullptr for kInline, otherwise the mode's
/// provider run on `rng`. This is what scenarios and fairbench call.
std::shared_ptr<const CorrelatedRandomness> generate_batch(PreprocMode mode,
                                                           const PreprocRequest& req,
                                                           Rng& rng);

}  // namespace fairsfe::mpc::preproc
