#include "mpc/preproc/store.h"

namespace fairsfe::mpc::preproc {

CorrelatedRandomness::CorrelatedRandomness(std::size_t num_parties,
                                           std::size_t num_triples,
                                           std::size_t num_rots)
    : parties_(num_parties), triples_(num_triples), rots_(num_rots) {
  FAIRSFE_CHECK(parties_ >= 2, "CorrelatedRandomness needs >= 2 parties");
  a_.assign(parties_, BitVec(triples_));
  b_.assign(parties_, BitVec(triples_));
  c_.assign(parties_, BitVec(triples_));
  const std::size_t pairs = parties_ * (parties_ - 1);
  m0_.assign(pairs, BitVec(rots_));
  m1_.assign(pairs, BitVec(rots_));
  choice_.assign(pairs, BitVec(rots_));
  mc_.assign(pairs, BitVec(rots_));
}

void CorrelatedRandomness::set_triple(std::size_t party, std::size_t t, bool a,
                                      bool b, bool c) {
  a_[party].set(t, a);
  b_[party].set(t, b);
  c_[party].set(t, c);
}

std::size_t CorrelatedRandomness::pair_index(std::size_t sender,
                                             std::size_t receiver) const {
  FAIRSFE_CHECK(sender != receiver && sender < parties_ && receiver < parties_,
                "ROT pair index out of range");
  // Dense index over ordered pairs: receiver slots skip the diagonal.
  return sender * (parties_ - 1) + (receiver < sender ? receiver : receiver - 1);
}

RotPair CorrelatedRandomness::rot(std::size_t sender, std::size_t receiver,
                                  std::size_t t) const {
  const std::size_t p = pair_index(sender, receiver);
  return RotPair{m0_[p].get(t), m1_[p].get(t), choice_[p].get(t), mc_[p].get(t)};
}

void CorrelatedRandomness::set_rot(std::size_t sender, std::size_t receiver,
                                   std::size_t t, const RotPair& r) {
  const std::size_t p = pair_index(sender, receiver);
  m0_[p].set(t, r.m0);
  m1_[p].set(t, r.m1);
  choice_[p].set(t, r.choice);
  mc_[p].set(t, r.mc);
}

void CorrelatedRandomness::check_consistent() const {
  for (std::size_t t = 0; t < triples_; ++t) {
    bool a = false, b = false, c = false;
    for (std::size_t p = 0; p < parties_; ++p) {
      a = a != a_[p].get(t);
      b = b != b_[p].get(t);
      c = c != c_[p].get(t);
    }
    FAIRSFE_CHECK(c == (a && b),
                  "CorrelatedRandomness: Beaver triple violates c = a & b");
  }
  for (std::size_t s = 0; s < parties_; ++s) {
    for (std::size_t r = 0; r < parties_; ++r) {
      if (s == r) continue;
      for (std::size_t t = 0; t < rots_; ++t) {
        const RotPair x = rot(s, r, t);
        FAIRSFE_CHECK(x.mc == (x.choice ? x.m1 : x.m0),
                      "CorrelatedRandomness: ROT violates mc = m_choice");
      }
    }
  }
}

CorrelatedRandomness triples_from_rots(const CorrelatedRandomness& store,
                                       std::size_t count) {
  FAIRSFE_CHECK(store.num_parties() == 2,
                "triples_from_rots: the pairwise reduction is two-party");
  FAIRSFE_CHECK(count <= store.num_rots(),
                "triples_from_rots: not enough ROTs in the store");
  CorrelatedRandomness out(2, count, 0);
  for (std::size_t t = 0; t < count; ++t) {
    // ROT A: party 0 sends, party 1 receives; ROT B: the reverse.
    const RotPair A = store.rot(0, 1, t);
    const RotPair B = store.rot(1, 0, t);
    // a_p = choice of the ROT p received; b_p = m0 ⊕ m1 of the ROT p sent.
    // Cross terms: a_1·b_0 = A.choice·(A.m0 ⊕ A.m1) = A.m0 ⊕ A.mc, shared as
    // (A.m0 at party 0, A.mc at party 1); symmetrically for a_0·b_1 via B.
    const bool a0 = B.choice, b0 = A.m0 != A.m1;
    const bool a1 = A.choice, b1 = B.m0 != B.m1;
    const bool c0 = (a0 && b0) != A.m0 != B.mc;
    const bool c1 = (a1 && b1) != A.mc != B.m0;
    out.set_triple(0, t, a0, b0, c0);
    out.set_triple(1, t, a1, b1, c1);
  }
  out.check_consistent();
  return out;
}

}  // namespace fairsfe::mpc::preproc
