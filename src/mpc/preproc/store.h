// CorrelatedRandomness: the offline phase's product.
//
// The store holds, for n parties, two kinds of correlation (DESIGN.md §10):
//
//   Beaver bit triples — per party p, bit vectors a_p, b_p, c_p of equal
//   length with ⊕_p c_p = (⊕_p a_p) & (⊕_p b_p) at every index. The GMW
//   online phase spends one triple per AND gate: broadcast d_p = x_p ⊕ a_p
//   and e_p = y_p ⊕ b_p, reconstruct d and e, output share
//   z_p = c_p ⊕ d·b_p ⊕ e·a_p ⊕ [p = 0]·d·e.
//
//   Random-OT pairs — per ordered (sender s, receiver r) pair, the sender
//   holds uniform (m0, m1) and the receiver uniform choice c with m_c.
//   A ROT derandomizes a chosen-input OT with two correction bits (Beaver
//   '95), and two ROTs in opposite directions yield one two-party triple
//   (triples_from_rots below), which is how the store's two sections relate.
//
// The store is immutable after the provider fills it and shared read-only
// across every run and thread of a scenario; parties consume their own slice
// through a TripleTape cursor, so the batch is written once and never copied.
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "util/check.h"

namespace fairsfe::mpc::preproc {

/// Packed bit vector (64-bit words). The store's components are bits, and a
/// scenario batch is runs × AND-gates of them per party per component, so the
/// 8× over byte-per-bit storage matters at Monte-Carlo scale.
class BitVec {
 public:
  BitVec() = default;
  explicit BitVec(std::size_t n) : size_(n), words_((n + 63) / 64, 0) {}

  [[nodiscard]] std::size_t size() const { return size_; }

  [[nodiscard]] bool get(std::size_t i) const {
    FAIRSFE_DCHECK(i < size_, "BitVec::get out of range");
    return (words_[i >> 6] >> (i & 63)) & 1;
  }

  void set(std::size_t i, bool v) {
    FAIRSFE_DCHECK(i < size_, "BitVec::set out of range");
    const std::uint64_t mask = std::uint64_t{1} << (i & 63);
    if (v) {
      words_[i >> 6] |= mask;
    } else {
      words_[i >> 6] &= ~mask;
    }
  }

 private:
  std::size_t size_ = 0;
  std::vector<std::uint64_t> words_;
};

/// One Beaver bit triple share as handed to the online phase.
// TAINT-SOURCE(triple-tape): correlated-randomness share; leaking it unmasks the online AND gates
struct BeaverTriple {
  bool a = false;
  bool b = false;
  bool c = false;
};

/// One random-OT instance, both endpoints' views (the store is the trusted
/// setup, so it holds both; each party only ever reads its own side).
// TAINT-SOURCE(triple-tape): ROT endpoint views; the receiver must not learn m_{1-c}, the sender must not learn c
struct RotPair {
  bool m0 = false;
  bool m1 = false;
  bool choice = false;
  bool mc = false;  ///< invariant: mc == (choice ? m1 : m0)
};

class CorrelatedRandomness {
 public:
  /// Storage for `num_parties` parties, `num_triples` Beaver triples (shared
  /// index space across parties) and `num_rots` ROT pairs per ordered
  /// (sender, receiver) pair. All bits start zero; the provider fills them.
  CorrelatedRandomness(std::size_t num_parties, std::size_t num_triples,
                       std::size_t num_rots = 0);

  [[nodiscard]] std::size_t num_parties() const { return parties_; }
  [[nodiscard]] std::size_t num_triples() const { return triples_; }
  [[nodiscard]] std::size_t num_rots() const { return rots_; }

  // --- Beaver triple section -------------------------------------------
  [[nodiscard]] bool triple_a(std::size_t party, std::size_t t) const {
    return a_[party].get(t);
  }
  [[nodiscard]] bool triple_b(std::size_t party, std::size_t t) const {
    return b_[party].get(t);
  }
  [[nodiscard]] bool triple_c(std::size_t party, std::size_t t) const {
    return c_[party].get(t);
  }
  void set_triple(std::size_t party, std::size_t t, bool a, bool b, bool c);

  // --- Random-OT section -----------------------------------------------
  /// The ROT at index `t` between ordered pair (sender, receiver).
  /// Precondition: sender != receiver.
  [[nodiscard]] RotPair rot(std::size_t sender, std::size_t receiver,
                            std::size_t t) const;
  void set_rot(std::size_t sender, std::size_t receiver, std::size_t t,
               const RotPair& r);

  /// FAIRSFE_CHECK every stored correlation: ⊕c = ⊕a & ⊕b per triple and
  /// mc = m_choice per ROT. Providers run this after filling the store, so a
  /// buggy or aborted offline phase dies loudly instead of skewing utilities.
  void check_consistent() const;

 private:
  [[nodiscard]] std::size_t pair_index(std::size_t sender,
                                       std::size_t receiver) const;

  std::size_t parties_ = 0;
  std::size_t triples_ = 0;
  std::size_t rots_ = 0;
  std::vector<BitVec> a_, b_, c_;  ///< [party] -> triples_ bits each
  // ROT storage: [pair_index] -> rots_ bits per component.
  std::vector<BitVec> m0_, m1_, choice_, mc_;
};

/// A party's cursor into the store's triple section. Copyable (GmwParty must
/// stay cloneable for adversary probes); copies share the store and advance
/// independent cursors.
// TAINT-SOURCE(triple-tape): cursor over the correlated-randomness store
class TripleTape {
 public:
  TripleTape() = default;  ///< unbound; next() is a contract violation
  TripleTape(std::shared_ptr<const CorrelatedRandomness> store, std::size_t party)
      : store_(std::move(store)), party_(party) {}

  /// Reposition the cursor (slice binding: run i reads from offset
  /// i × triples-per-run). Seeking past the end is caught by next(), not here,
  /// so an exactly-consumed tape is still valid.
  void seek(std::size_t offset) { cursor_ = offset; }

  /// Consume one triple. Running out of preprocessed material is a protocol
  /// configuration bug (the budget was undersized), never a silent fallback:
  /// FAIRSFE_CHECK aborts the process.
  BeaverTriple next() {
    FAIRSFE_CHECK(store_ != nullptr, "TripleTape::next on an unbound tape");
    FAIRSFE_CHECK(cursor_ < store_->num_triples(),
                  "preprocessed Beaver triples exhausted — offline budget too small");
    const std::size_t t = cursor_++;
    return BeaverTriple{store_->triple_a(party_, t), store_->triple_b(party_, t),
                        store_->triple_c(party_, t)};
  }

  [[nodiscard]] bool bound() const { return store_ != nullptr; }
  [[nodiscard]] std::size_t cursor() const { return cursor_; }

 private:
  std::shared_ptr<const CorrelatedRandomness> store_;
  std::size_t party_ = 0;
  std::size_t cursor_ = 0;
};

/// The classic ROT → Beaver reduction for two parties (DESIGN.md §10): from
/// one ROT in each direction, party 0 sets a_0 = choice of its received ROT
/// and b_0 = m0 ⊕ m1 of its sent ROT (symmetrically for party 1); the ROT
/// identity m_c ⊕ m0 = c·(m0 ⊕ m1) makes (m0, m_c) additive shares of each
/// cross term. Consumes ROTs [0, count) of both directions of `store` and
/// returns a fresh two-party triple store. Precondition: store has exactly 2
/// parties and count <= store.num_rots().
CorrelatedRandomness triples_from_rots(const CorrelatedRandomness& store,
                                       std::size_t count);

}  // namespace fairsfe::mpc::preproc
