#include "mpc/sfe_functionalities.h"

#include <set>

#include "circuit/builder.h"

namespace fairsfe::mpc {

Bytes SfeSpec::eval_with_defaults(const std::vector<Bytes>& inputs,
                                  const std::set<std::size_t>& actual_from) const {
  std::vector<Bytes> xs(n);
  for (std::size_t i = 0; i < n; ++i) {
    xs[i] = actual_from.count(i) ? inputs[i] : default_inputs[i];
  }
  return eval(xs);
}

SfeSpec make_concat_spec(std::size_t n, std::size_t bytes_each) {
  SfeSpec spec;
  spec.n = n;
  spec.eval = [n, bytes_each](const std::vector<Bytes>& xs) {
    Bytes out;
    out.reserve(n * bytes_each);
    for (const Bytes& x : xs) {
      Bytes part = x;
      part.resize(bytes_each, 0);
      out.insert(out.end(), part.begin(), part.end());
    }
    return out;
  };
  spec.default_inputs.assign(n, Bytes(bytes_each, 0));
  return spec;
}

SfeSpec make_and_spec() {
  SfeSpec spec;
  spec.n = 2;
  spec.eval = [](const std::vector<Bytes>& xs) {
    const std::uint8_t a = xs[0].empty() ? 0 : (xs[0][0] & 1);
    const std::uint8_t b = xs[1].empty() ? 0 : (xs[1][0] & 1);
    return Bytes{static_cast<std::uint8_t>(a & b)};
  };
  spec.default_inputs.assign(2, Bytes{0});
  return spec;
}

namespace {
std::uint64_t u64_of(const Bytes& b) {
  Reader r(b);
  return r.u64().value_or(0);
}
Bytes u64_bytes(std::uint64_t v) {
  Writer w;
  w.u64(v);
  return w.take();
}
}  // namespace

SfeSpec make_millionaires_spec() {
  SfeSpec spec;
  spec.n = 2;
  spec.eval = [](const std::vector<Bytes>& xs) {
    return Bytes{static_cast<std::uint8_t>(u64_of(xs[0]) > u64_of(xs[1]) ? 1 : 0)};
  };
  spec.default_inputs.assign(2, u64_bytes(0));
  return spec;
}

SfeSpec make_max_spec(std::size_t n) {
  SfeSpec spec;
  spec.n = n;
  spec.eval = [](const std::vector<Bytes>& xs) {
    std::uint64_t best = 0;
    for (const Bytes& x : xs) best = std::max(best, u64_of(x));
    return u64_bytes(best);
  };
  spec.default_inputs.assign(n, u64_bytes(0));
  return spec;
}

SfeSpec make_circuit_spec(const circuit::Circuit& c) {
  SfeSpec spec;
  spec.n = c.num_parties();
  // Copy the circuit into the closure (shared, immutable).
  auto shared = std::make_shared<const circuit::Circuit>(c);
  spec.eval = [shared](const std::vector<Bytes>& xs) {
    std::vector<std::vector<bool>> bits(shared->num_parties());
    for (std::size_t p = 0; p < bits.size(); ++p) {
      bits[p] = circuit::bytes_to_bits(xs[p], shared->input_width(p));
    }
    return circuit::bits_to_bytes(shared->eval(bits));
  };
  for (std::size_t p = 0; p < spec.n; ++p) {
    spec.default_inputs.push_back(Bytes((c.input_width(p) + 7) / 8, 0));
  }
  return spec;
}

SfeFunc::SfeFunc(SfeSpec spec, SfeMode mode, NotesPtr notes)
    : spec_(std::move(spec)), mode_(mode), notes_(std::move(notes)) {}

std::vector<sim::Message> SfeFunc::on_round(sim::FuncContext& ctx, int /*round*/,
                                            sim::MsgView in) {
  if (fired_ || in.empty()) return {};
  fired_ = true;

  std::vector<std::optional<Bytes>> inputs(spec_.n);
  for (const sim::Message& m : in) {
    if (m.from < 0 || m.from >= static_cast<sim::PartyId>(spec_.n)) continue;
    const auto x = sim::decode_func_input(m.payload);
    if (x && !inputs[static_cast<std::size_t>(m.from)]) {
      inputs[static_cast<std::size_t>(m.from)] = *x;
    }
  }

  std::vector<sim::Message> out;
  bool complete = true;
  for (const auto& x : inputs) {
    if (!x) complete = false;
  }
  if (!complete) {
    // A party failed to provide input: the evaluation aborts for everyone
    // before anything is computed.
    if (notes_) notes_->vals["sfe_aborted_pre"] = 1;
    for (std::size_t p = 0; p < spec_.n; ++p) {
      out.push_back(sim::Message{sim::kFunc, static_cast<sim::PartyId>(p),
                                 sim::encode_func_abort()});
    }
    return out;
  }

  std::vector<Bytes> xs(spec_.n);
  for (std::size_t i = 0; i < spec_.n; ++i) xs[i] = *inputs[i];
  const Bytes y = spec_.eval(xs);
  if (notes_) notes_->blobs["sfe_y"] = y;

  if (mode_ == SfeMode::kFair) {
    // The adversary may abort without having seen anything.
    const bool abort = ctx.adversary_abort_gate({});
    if (notes_) notes_->vals["sfe_aborted"] = abort ? 1 : 0;
    for (std::size_t p = 0; p < spec_.n; ++p) {
      out.push_back(sim::Message{sim::kFunc, static_cast<sim::PartyId>(p),
                                 abort ? sim::encode_func_abort()
                                       : sim::encode_func_output(y)});
    }
    return out;
  }

  // Unfair: show corrupted outputs, then let the adversary decide.
  std::vector<sim::Message> corrupted_outputs;
  for (const sim::PartyId pid : ctx.corrupted()) {
    if (pid < 0 || pid >= static_cast<sim::PartyId>(spec_.n)) continue;
    corrupted_outputs.push_back(sim::Message{sim::kFunc, pid, sim::encode_func_output(y)});
  }
  const bool abort = ctx.adversary_abort_gate(corrupted_outputs);
  if (notes_) notes_->vals["sfe_aborted"] = abort ? 1 : 0;
  for (std::size_t p = 0; p < spec_.n; ++p) {
    const auto pid = static_cast<sim::PartyId>(p);
    const bool is_corrupted = ctx.corrupted().count(pid) > 0;
    const bool deliver = !abort || is_corrupted;
    out.push_back(sim::Message{sim::kFunc, pid,
                               deliver ? sim::encode_func_output(y)
                                       : sim::encode_func_abort()});
  }
  return out;
}

}  // namespace fairsfe::mpc
