// Function specifications and the generic SFE ideal functionalities.
//
// `SfeSpec` is the function-under-evaluation description shared by every
// protocol and functionality in src/fair: n parties, a global public output
// (the paper's wlog normal form), and per-party default inputs used by the
// "on abort, substitute a default input and compute locally" rule.
//
// `SfeFunc` implements both of the paper's ideal boxes over it:
//   * unfair mode — F^{f,⊥}_sfe: the adversary sees corrupted outputs first
//     and may then abort, leaving honest parties with ⊥;
//   * fair mode — Fsfe: the adversary may abort only before outputs exist;
//     otherwise all parties receive the output simultaneously.
//
// `Notes` is a ground-truth side channel: functionalities record hidden
// per-run values (the computed y, the random index i*, abort flags) that the
// experiment harness uses to classify events — it is never visible to
// parties or the adversary.
#pragma once

#include <functional>
#include <map>
#include <memory>
#include <set>

#include "circuit/circuit.h"
#include "sim/functionality.h"

namespace fairsfe::mpc {

struct Notes {
  std::map<std::string, std::uint64_t> vals;
  std::map<std::string, Bytes> blobs;
};
using NotesPtr = std::shared_ptr<Notes>;

struct SfeSpec {
  std::size_t n = 2;
  /// Global public output y = f(x_1, ..., x_n).
  std::function<Bytes(const std::vector<Bytes>&)> eval;
  /// Default input substituted for an aborting party.
  std::vector<Bytes> default_inputs;

  /// y under substitution of defaults for every party not in `actual_from`.
  [[nodiscard]] Bytes eval_with_defaults(const std::vector<Bytes>& inputs,
                                         const std::set<std::size_t>& actual_from) const;
};

/// f(x1, ..., xn) = x1 ‖ ... ‖ xn with fixed-width inputs (Lemma 12's
/// function; for n = 2 this subsumes the swap function of Theorem 4).
SfeSpec make_concat_spec(std::size_t n, std::size_t bytes_each);
/// Two-party single-bit AND (the Section 5 function). Inputs are 1 byte 0/1.
SfeSpec make_and_spec();
/// Millionaires: 1 iff x1 > x2, inputs little-endian u64.
SfeSpec make_millionaires_spec();
/// n-party max of little-endian u64 inputs.
SfeSpec make_max_spec(std::size_t n);
/// Wrap a boolean circuit as a spec (inputs are packed bit vectors).
SfeSpec make_circuit_spec(const circuit::Circuit& c);

enum class SfeMode {
  kUnfairAbort,  ///< F^{f,⊥}_sfe — abort allowed after corrupted outputs
  kFair,         ///< Fsfe — simultaneous delivery, abort only before outputs
};

/// Generic one-shot SFE functionality: collects one input per party in the
/// round the first input arrives, computes, and delivers (global output).
/// Missing or malformed inputs abort the evaluation for everyone.
class SfeFunc final : public sim::IFunctionality {
 public:
  SfeFunc(SfeSpec spec, SfeMode mode, NotesPtr notes = nullptr);

  std::vector<sim::Message> on_round(sim::FuncContext& ctx, int round,
                                     sim::MsgView in) override;

 private:
  SfeSpec spec_;
  SfeMode mode_;
  NotesPtr notes_;
  bool fired_ = false;
};

}  // namespace fairsfe::mpc
