#include "mpc/yao.h"

#include <map>

#include "crypto/sha256.h"
#include "mpc/ot.h"
#include "util/check.h"

namespace fairsfe::mpc {

using circuit::Gate;
using circuit::GateType;
using sim::Message;
using sim::MsgView;

namespace {

constexpr std::uint8_t kTagTables = 70;
constexpr std::uint8_t kTagOutputLabels = 71;

/// Select bit of a label (point-and-permute).
inline bool select_bit(const Bytes& label) {
  return (label[kYaoLabelSize - 1] & 1) != 0;
}

/// Encryption pad for one gate row, derived from the active input labels.
Bytes row_pad(const Bytes& ka, const Bytes& kb, std::size_t gate, int row) {
  Writer w;
  w.blob(ka).blob(kb).u64(gate).u8(static_cast<std::uint8_t>(row));
  Bytes h = sha256_labeled("yao-row", w.bytes());
  h.resize(kYaoLabelSize);
  return h;
}

Bytes unary_pad(const Bytes& ka, std::size_t gate, int row) {
  return row_pad(ka, Bytes{}, gate, row);
}

bool eval_gate(GateType t, bool a, bool b) {
  switch (t) {
    case GateType::kXor: return a != b;
    case GateType::kAnd: return a && b;
    default: return false;
  }
}

}  // namespace

YaoConfig YaoConfig::public_output(std::shared_ptr<const circuit::Circuit> circuit) {
  YaoConfig cfg;
  std::vector<std::size_t> all(circuit->outputs().size());
  for (std::size_t i = 0; i < all.size(); ++i) all[i] = i;
  cfg.output_map = {all, all};
  cfg.circuit = std::move(circuit);
  return cfg;
}

YaoGarbler::YaoGarbler(YaoConfig cfg, std::vector<bool> input, Rng rng)
    : PartyBase(0), cfg_(std::move(cfg)), input_(std::move(input)), rng_(std::move(rng)) {
  FAIRSFE_CHECK(cfg_.circuit->num_parties() == 2, "YaoGarbler: circuit must be 2-party");
  FAIRSFE_CHECK(input_.size() == cfg_.circuit->input_width(0),
                "YaoGarbler: input width mismatch for party 0");
}

YaoGarbler::YaoGarbler(std::shared_ptr<const circuit::Circuit> circuit,
                       std::vector<bool> input, Rng rng)
    : YaoGarbler(YaoConfig::public_output(std::move(circuit)), std::move(input),
                 std::move(rng)) {}

std::vector<Message> YaoGarbler::garble() {
  const auto& gates = cfg_.circuit->gates();
  labels_.resize(gates.size());
  // Fresh labels with random select bits for every wire.
  for (auto& pair : labels_) {
    pair[0] = rng_.bytes(kYaoLabelSize);
    pair[1] = rng_.bytes(kYaoLabelSize);
    // Ensure complementary select bits.
    pair[1][kYaoLabelSize - 1] =
        static_cast<std::uint8_t>((pair[1][kYaoLabelSize - 1] & ~1) |
                                  (select_bit(pair[0]) ? 0 : 1));
  }

  Writer blob;
  blob.u8(kTagTables);
  blob.u32(static_cast<std::uint32_t>(gates.size()));
  std::vector<Message> out;

  for (std::size_t g = 0; g < gates.size(); ++g) {
    const Gate& gate = gates[g];
    switch (gate.type) {
      case GateType::kInput: {
        if (gate.party == 0) {
          // Garbler input: ship the active label directly.
          blob.blob(labels_[g][input_[gate.input_index] ? 1 : 0]);
        } else {
          // Evaluator input: offer both labels via string-OT.
          out.push_back(Message{id_, sim::kFunc,
                                encode_ot_send_str(g, labels_[g][0], labels_[g][1])});
        }
        break;
      }
      case GateType::kConst:
        blob.blob(labels_[g][gate.const_value ? 1 : 0]);
        break;
      case GateType::kNot: {
        // Two rows indexed by the input label's select bit.
        std::array<Bytes, 2> rows;
        for (int va = 0; va <= 1; ++va) {
          const Bytes& ka = labels_[gate.a][va];
          rows[select_bit(ka) ? 1 : 0] =
              xor_bytes(unary_pad(ka, g, select_bit(ka) ? 1 : 0), labels_[g][va ? 0 : 1]);
        }
        blob.blob(rows[0]).blob(rows[1]);
        break;
      }
      case GateType::kXor:
      case GateType::kAnd: {
        std::array<Bytes, 4> rows;
        for (int va = 0; va <= 1; ++va) {
          for (int vb = 0; vb <= 1; ++vb) {
            const Bytes& ka = labels_[gate.a][va];
            const Bytes& kb = labels_[gate.b][vb];
            const int row = (select_bit(ka) ? 2 : 0) | (select_bit(kb) ? 1 : 0);
            const bool v = eval_gate(gate.type, va != 0, vb != 0);
            rows[row] = xor_bytes(row_pad(ka, kb, g, row), labels_[g][v ? 1 : 0]);
          }
        }
        for (const Bytes& r : rows) blob.blob(r);
        break;
      }
    }
  }
  // Output decode map: (output index, permute bit) for every output the
  // evaluator is allowed to learn.
  blob.u32(static_cast<std::uint32_t>(cfg_.output_map[1].size()));
  for (const std::size_t oi : cfg_.output_map[1]) {
    const auto w = cfg_.circuit->outputs()[oi];
    blob.u32(static_cast<std::uint32_t>(oi));
    blob.u8(select_bit(labels_[w][0]) ? 1 : 0);
  }
  out.push_back(Message{id_, 1, blob.take()});
  return out;
}

std::vector<Message> YaoGarbler::on_round(int /*round*/, MsgView in) {
  switch (step_) {
    case Step::kGarble:
      step_ = Step::kAwaitOutputLabels;
      return garble();
    case Step::kAwaitOutputLabels: {
      for (const Message& m : in) {
        if (m.from != 1) continue;
        Reader r(m.payload);
        if (r.u8() != std::optional<std::uint8_t>{kTagOutputLabels}) continue;
        // Verify each claimed output label and decode (my visible outputs).
        std::vector<bool> bits;
        bool ok = true;
        for (const std::size_t oi : cfg_.output_map[0]) {
          const auto w = cfg_.circuit->outputs()[oi];
          const auto label = r.blob();
          if (!label) {
            ok = false;
            break;
          }
          if (*label == labels_[w][0]) {
            bits.push_back(false);
          } else if (*label == labels_[w][1]) {
            bits.push_back(true);
          } else {
            ok = false;  // forged label
            break;
          }
        }
        if (ok && r.at_end()) {
          finish(circuit::bits_to_bytes(bits));
        } else {
          finish_bot();
        }
        return {};
      }
      // The evaluator replies in engine round 2 (delivered round 3); anything
      // later means it aborted.
      if (++waited_ >= 3) finish_bot();
      return {};
    }
  }
  return {};
}

void YaoGarbler::on_abort() {
  if (!done()) finish_bot();
}

YaoEvaluator::YaoEvaluator(YaoConfig cfg, std::vector<bool> input)
    : PartyBase(1), cfg_(std::move(cfg)), input_(std::move(input)) {
  FAIRSFE_CHECK(cfg_.circuit->num_parties() == 2, "YaoEvaluator: circuit must be 2-party");
  FAIRSFE_CHECK(input_.size() == cfg_.circuit->input_width(1),
                "YaoEvaluator: input width mismatch for party 1");
}

YaoEvaluator::YaoEvaluator(std::shared_ptr<const circuit::Circuit> circuit,
                           std::vector<bool> input)
    : YaoEvaluator(YaoConfig::public_output(std::move(circuit)), std::move(input)) {}

std::vector<Message> YaoEvaluator::on_round(int /*round*/, MsgView in) {
  switch (step_) {
    case Step::kSendChoices: {
      step_ = Step::kAwaitTables;
      std::vector<Message> out;
      const auto& gates = cfg_.circuit->gates();
      for (std::size_t g = 0; g < gates.size(); ++g) {
        if (gates[g].type == GateType::kInput && gates[g].party == 1) {
          out.push_back(Message{id_, sim::kFunc,
                                encode_ot_choose_str(g, input_[gates[g].input_index])});
        }
      }
      return out;
    }
    case Step::kAwaitTables: {
      const Message* tm = nullptr;
      for (const Message& m : in) {
        Reader r(m.payload);
        if (m.from == 0 && r.u8() == std::optional<std::uint8_t>{kTagTables}) tm = &m;
      }
      if (tm == nullptr) {
        finish_bot();
        return {};
      }
      tables_ = tm->payload;
      step_ = Step::kAwaitOtResults;
      return {};
    }
    case Step::kAwaitOtResults: {
      // Collect my input-wire labels from the hub.
      std::map<std::size_t, Bytes> my_labels;
      for (const Message& m : in) {
        if (m.from != sim::kFunc) continue;
        const auto res = decode_ot_result_str(m.payload);
        if (res) my_labels[static_cast<std::size_t>(res->label)] = res->value;
      }

      const auto& gates = cfg_.circuit->gates();
      Reader r(tables_);
      r.u8();  // tag
      const auto count = r.u32();
      if (!count || *count != gates.size()) {
        finish_bot();
        return {};
      }
      std::vector<Bytes> active(gates.size());
      bool ok = true;
      for (std::size_t g = 0; g < gates.size() && ok; ++g) {
        const Gate& gate = gates[g];
        switch (gate.type) {
          case GateType::kInput: {
            if (gate.party == 0) {
              const auto label = r.blob();
              ok = label.has_value();
              if (ok) active[g] = *label;
            } else {
              const auto it = my_labels.find(g);
              ok = (it != my_labels.end() && it->second.size() == kYaoLabelSize);
              if (ok) active[g] = it->second;
            }
            break;
          }
          case GateType::kConst: {
            const auto label = r.blob();
            ok = label.has_value();
            if (ok) active[g] = *label;
            break;
          }
          case GateType::kNot: {
            std::array<Bytes, 2> rows;
            for (auto& row : rows) {
              const auto b = r.blob();
              if (!b) {
                ok = false;
                break;
              }
              row = *b;
            }
            if (!ok) break;
            const Bytes& ka = active[gate.a];
            const int row = select_bit(ka) ? 1 : 0;
            active[g] = xor_bytes(unary_pad(ka, g, row), rows[static_cast<std::size_t>(row)]);
            break;
          }
          case GateType::kXor:
          case GateType::kAnd: {
            std::array<Bytes, 4> rows;
            for (auto& row : rows) {
              const auto b = r.blob();
              if (!b) {
                ok = false;
                break;
              }
              row = *b;
            }
            if (!ok) break;
            const Bytes& ka = active[gate.a];
            const Bytes& kb = active[gate.b];
            const int row = (select_bit(ka) ? 2 : 0) | (select_bit(kb) ? 1 : 0);
            active[g] =
                xor_bytes(row_pad(ka, kb, g, row), rows[static_cast<std::size_t>(row)]);
            break;
          }
        }
      }
      if (!ok) {
        finish_bot();
        return {};
      }
      // Decode my visible outputs from the permute bits; return the labels
      // of the garbler's visible outputs as proof.
      const auto out_count = r.u32();
      if (!out_count || *out_count != cfg_.output_map[1].size()) {
        finish_bot();
        return {};
      }
      std::map<std::size_t, bool> perms;
      for (std::size_t k = 0; k < *out_count; ++k) {
        const auto oi = r.u32();
        const auto perm = r.u8();
        if (!oi || !perm) {
          finish_bot();
          return {};
        }
        perms[*oi] = (*perm != 0);
      }
      std::vector<bool> bits;
      for (const std::size_t oi : cfg_.output_map[1]) {
        const auto it = perms.find(oi);
        if (it == perms.end()) {
          finish_bot();
          return {};
        }
        const auto w = cfg_.circuit->outputs()[oi];
        bits.push_back(select_bit(active[w]) != it->second);
      }
      Writer proof;
      proof.u8(kTagOutputLabels);
      for (const std::size_t oi : cfg_.output_map[0]) {
        proof.blob(active[cfg_.circuit->outputs()[oi]]);
      }
      finish(circuit::bits_to_bytes(bits));
      return {Message{id_, 0, proof.take()}};
    }
  }
  return {};
}

void YaoEvaluator::on_abort() {
  if (!done()) finish_bot();
}

std::vector<std::unique_ptr<sim::IParty>> make_yao_parties(
    std::shared_ptr<const circuit::Circuit> circuit,
    const std::vector<std::vector<bool>>& inputs, Rng& rng) {
  return make_yao_parties(YaoConfig::public_output(std::move(circuit)), inputs, rng);
}

std::vector<std::unique_ptr<sim::IParty>> make_yao_parties(
    const YaoConfig& cfg, const std::vector<std::vector<bool>>& inputs, Rng& rng) {
  FAIRSFE_CHECK(inputs.size() == 2, "make_yao_parties: Yao is 2-party");
  std::vector<std::unique_ptr<sim::IParty>> parties;
  parties.push_back(std::make_unique<YaoGarbler>(cfg, inputs[0], rng.fork("yao-garbler")));
  parties.push_back(std::make_unique<YaoEvaluator>(cfg, inputs[1]));
  return parties;
}

}  // namespace fairsfe::mpc
