// Yao's garbled-circuit protocol — the classical two-party unfair-SFE
// substrate (Lindell–Pinkas, J. Cryptology 2009; the paper's reference [22]
// for two-party SFE techniques).
//
// Party 0 (the garbler) assigns two random 16-byte labels per wire with
// point-and-permute select bits, encrypts each gate's truth table under the
// input labels (pads derived from SHA-256), and sends the tables, its own
// input labels, and the output permute bits to party 1 (the evaluator). The
// evaluator obtains labels for its own input bits via string-OT (the
// OT-hybrid `OtHub`), decrypts gate by gate, decodes the outputs, and
// returns the output *labels* to the garbler — a corrupted evaluator cannot
// announce a wrong output without forging a label.
//
// Adversary model: passive + abort, matching the GMW substrate (see
// mpc/gmw.h) — the power the paper's lower-bound adversaries need.
// Round structure: 4 engine rounds (garble/choose, OT pairing, evaluate,
// decode).
#pragma once

#include <array>
#include <memory>

#include "circuit/circuit.h"
#include "crypto/rng.h"
#include "sim/party.h"

namespace fairsfe::mpc {

inline constexpr std::size_t kYaoLabelSize = 16;

/// Per-party output visibility: output_map[p] lists indices into
/// circuit.outputs() that party p learns. The garbler ships permute bits only
/// for evaluator-visible outputs; the evaluator returns labels only for
/// garbler-visible outputs (it cannot decode the rest without the permute
/// bits — the labels alone are uniform).
struct YaoConfig {
  std::shared_ptr<const circuit::Circuit> circuit;
  std::array<std::vector<std::size_t>, 2> output_map;

  static YaoConfig public_output(std::shared_ptr<const circuit::Circuit> circuit);
};

class YaoGarbler final : public sim::PartyBase<YaoGarbler> {
 public:
  YaoGarbler(YaoConfig cfg, std::vector<bool> input, Rng rng);
  YaoGarbler(std::shared_ptr<const circuit::Circuit> circuit, std::vector<bool> input,
             Rng rng);

  std::vector<sim::Message> on_round(int round, sim::MsgView in) override;
  void on_abort() override;

 private:
  enum class Step { kGarble, kAwaitOutputLabels };

  std::vector<sim::Message> garble();

  YaoConfig cfg_;
  std::vector<bool> input_;
  Rng rng_;
  Step step_ = Step::kGarble;
  int waited_ = 0;
  /// labels_[w][b] = label of wire w carrying value b.
  std::vector<std::array<Bytes, 2>> labels_;
};

class YaoEvaluator final : public sim::PartyBase<YaoEvaluator> {
 public:
  YaoEvaluator(YaoConfig cfg, std::vector<bool> input);
  YaoEvaluator(std::shared_ptr<const circuit::Circuit> circuit, std::vector<bool> input);

  std::vector<sim::Message> on_round(int round, sim::MsgView in) override;
  void on_abort() override;

 private:
  enum class Step { kSendChoices, kAwaitTables, kAwaitOtResults };

  YaoConfig cfg_;
  std::vector<bool> input_;
  Step step_ = Step::kSendChoices;
  Bytes tables_;  // raw garbler blob, parsed during evaluation
};

/// Build the (garbler, evaluator) pair; run with an OtHub functionality.
std::vector<std::unique_ptr<sim::IParty>> make_yao_parties(
    std::shared_ptr<const circuit::Circuit> circuit,
    const std::vector<std::vector<bool>>& inputs, Rng& rng);
std::vector<std::unique_ptr<sim::IParty>> make_yao_parties(
    const YaoConfig& cfg, const std::vector<std::vector<bool>>& inputs, Rng& rng);

}  // namespace fairsfe::mpc
