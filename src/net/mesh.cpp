#include "net/mesh.h"

#include <algorithm>
#include <stdexcept>
#include <utility>

namespace fairsfe::net {

namespace {

/// Mesh handshake magic, distinct from the transport relay's so a fairparty
/// process dialed by the wrong peer kind fails closed at the hello.
const Bytes kMeshMagic = {'f', 's', 'f', 'e', 'm'};

[[noreturn]] void fail(const std::string& what) {
  throw std::runtime_error("MeshNode: " + what);
}

}  // namespace

MeshNode::MeshNode(MeshConfig cfg) : cfg_(std::move(cfg)) {
  if (cfg_.self < 0 || static_cast<std::size_t>(cfg_.self) >= cfg_.parties) {
    fail("self pid out of range");
  }
  if (!cfg_.hosts.empty() && cfg_.hosts.size() != cfg_.parties) {
    fail("hosts list must name every party");
  }
  listener_ = TcpListener::bind(
      cfg_.listen_host,
      static_cast<std::uint16_t>(cfg_.base_port + cfg_.self));
}

MeshNode::~MeshNode() {
  for (Peer& p : peers_) {
    try {
      if (p.stream.valid()) {
        Frame bye;
        bye.kind = FrameKind::kBye;
        bye.from = cfg_.self;
        bye.to = p.pid;
        bye.rcpt = p.pid;
        bye.seq = send_seq_.next(cfg_.self, p.pid);
        p.stream.write_all(encode_frame(bye));
        p.stream.shutdown_write();
      }
    } catch (const std::exception&) {
      // Teardown is best-effort; the peer observes EOF either way.
    }
  }
}

MeshNode::Peer* MeshNode::peer_for(sim::PartyId pid) {
  for (Peer& p : peers_) {
    if (p.pid == pid) return &p;
  }
  return nullptr;
}

void MeshNode::connect() {
  const auto n = static_cast<sim::PartyId>(cfg_.parties);
  // Dial every lower pid, announcing ourselves with a Hello. The dial
  // succeeds as soon as the peer's listener is bound (MeshNode ctor), so the
  // only race is process startup — absorbed by tcp_connect_retry's budget.
  for (sim::PartyId j = 0; j < cfg_.self; ++j) {
    const std::string& host = cfg_.hosts.empty() ? cfg_.host : cfg_.hosts[j];
    ConnectResult c = tcp_connect_retry(
        host, static_cast<std::uint16_t>(cfg_.base_port + j),
        cfg_.connect_attempts);
    stats_.reconnects += static_cast<std::uint64_t>(c.retries);
    Peer peer;
    peer.pid = j;
    peer.stream = std::move(c.stream);
    Frame hello;
    hello.kind = FrameKind::kHello;
    hello.from = cfg_.self;
    hello.to = j;
    hello.rcpt = j;
    hello.seq = send_seq_.next(cfg_.self, j);
    hello.payload = kMeshMagic;
    peer.stream.write_all(encode_frame(hello));
    peers_.push_back(std::move(peer));
  }
  // Accept every higher pid; the Hello identifies which one dialed us.
  for (sim::PartyId j = cfg_.self + 1; j < n; ++j) {
    Peer peer;
    peer.stream = listener_.accept();
    const Frame hello = read_frame(peer);
    if (hello.kind != FrameKind::kHello || hello.payload != kMeshMagic) {
      fail("bad hello from dialer");
    }
    if (hello.from <= cfg_.self || hello.from >= n ||
        peer_for(hello.from) != nullptr) {
      fail("hello claims an impossible pid " + std::to_string(hello.from));
    }
    if (!recv_seq_.accept(hello.from, cfg_.self, hello.seq)) {
      fail("hello out of sequence");
    }
    peer.pid = hello.from;
    peers_.push_back(std::move(peer));
  }
  std::sort(peers_.begin(), peers_.end(),
            [](const Peer& a, const Peer& b) { return a.pid < b.pid; });
}

Frame MeshNode::read_frame(Peer& peer) {
  Frame f;
  std::uint8_t chunk[4096];
  for (;;) {
    const auto st = peer.reader.poll(f);
    if (st == FrameReader::Status::kFrame) return f;
    if (st == FrameReader::Status::kBad) {
      fail("malformed frame from peer " + std::to_string(peer.pid));
    }
    const std::size_t got = peer.stream.read_some(chunk);
    if (got == 0) {
      fail("peer " + std::to_string(peer.pid) + " closed mid-round");
    }
    peer.reader.feed(ByteView(chunk, got));
  }
}

MeshNode::RoundResult MeshNode::exchange(int round,
                                         const std::vector<sim::Message>& out,
                                         bool self_done) {
  // Phase 1: one framed batch per peer — this party's round-r legs for that
  // peer (broadcast legs fan out to every peer) followed by the round mark.
  for (Peer& peer : peers_) {
    Bytes wire;
    for (const sim::Message& m : out) {
      if (m.to == sim::kFunc) fail("kFunc traffic is unsupported on a mesh");
      if (m.to != sim::kBroadcast && m.to != peer.pid) continue;
      Frame f;
      f.kind = FrameKind::kMsg;
      f.seq = send_seq_.next(cfg_.self, peer.pid);
      f.round = static_cast<std::uint32_t>(round);
      f.from = m.from;
      f.to = m.to;
      f.rcpt = peer.pid;
      f.payload = m.payload;
      const Bytes enc = encode_frame(f);
      wire.insert(wire.end(), enc.begin(), enc.end());
      stats_.frames += 1;
    }
    Frame mark;
    mark.kind = FrameKind::kRoundMark;
    mark.seq = send_seq_.next(cfg_.self, peer.pid);
    mark.round = static_cast<std::uint32_t>(round);
    mark.from = cfg_.self;
    mark.to = peer.pid;
    mark.rcpt = peer.pid;
    mark.payload = Bytes{static_cast<std::uint8_t>(self_done ? 1 : 0)};
    const Bytes enc = encode_frame(mark);
    wire.insert(wire.end(), enc.begin(), enc.end());
    stats_.frames += 1;
    stats_.wire_bytes += wire.size();
    peer.stream.write_all(wire);
  }

  // Phase 2: drain every peer's batch up to its round mark. Everything is
  // validated before use: round number, per-link sequence, claimed sender,
  // delivery target — a deviating peer fails the run closed, it never
  // perturbs it silently.
  std::vector<std::vector<sim::Message>> from_peer(cfg_.parties);
  std::size_t done_count = self_done ? 1 : 0;
  for (Peer& peer : peers_) {
    for (;;) {
      const Frame f = read_frame(peer);
      if (!recv_seq_.accept(peer.pid, cfg_.self, f.seq)) {
        fail("frame out of sequence from peer " + std::to_string(peer.pid));
      }
      if (f.round != static_cast<std::uint32_t>(round)) {
        fail("peer " + std::to_string(peer.pid) + " is in round " +
             std::to_string(f.round) + ", expected " + std::to_string(round));
      }
      if (f.kind == FrameKind::kRoundMark) {
        if (!f.payload.empty() && f.payload[0] != 0) ++done_count;
        break;
      }
      if (f.kind != FrameKind::kMsg) fail("unexpected control frame mid-round");
      if (f.from != peer.pid) fail("peer forged a sender id");
      if (f.rcpt != cfg_.self) fail("misdelivered leg");
      from_peer[static_cast<std::size_t>(peer.pid)].push_back(
          sim::Message{f.from, f.to, f.payload});
    }
  }

  // Phase 3: merge into the engine's canonical mailbox order — senders by
  // pid, each sender's legs in emission order, own broadcast/self legs
  // delivered locally (the engine delivers a broadcast to its sender too).
  RoundResult res;
  for (std::size_t p = 0; p < cfg_.parties; ++p) {
    if (static_cast<sim::PartyId>(p) == cfg_.self) {
      for (const sim::Message& m : out) {
        if (m.to == sim::kBroadcast || m.to == cfg_.self) res.inbox.push_back(m);
      }
    } else {
      for (sim::Message& m : from_peer[p]) res.inbox.push_back(std::move(m));
    }
  }
  stats_.rounds += 1;
  res.all_done = done_count == cfg_.parties;
  return res;
}

}  // namespace fairsfe::net
