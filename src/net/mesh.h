// Full-mesh lockstep message exchange for multi-process protocol runs.
//
// fairparty (bench/fairparty.cpp) hosts ONE sim::IParty per OS process; a
// MeshNode gives that process the synchronous channel model the in-process
// engine provides: in round r every party writes its outgoing messages to
// each peer (framed with the src/net/wire.h codec, per-link sequence
// numbers) followed by a RoundMark carrying its done bit, then reads every
// peer's round-r batch up to the peer's RoundMark. exchange() returns the
// merged inbox in the engine's canonical mailbox order — legs concatenated
// by sender PartyId, each sender's legs in emission order, own broadcasts
// included — so a mesh run of deterministic parties computes exactly what
// the single-process engine computes.
//
// Topology/setup: party i listens on (listen_host, base_port + i); the mesh
// is established by accept-from-higher / dial-lower — party i accepts a
// connection from every j > i and dials every j < i with
// tcp_connect_retry(), which absorbs the process-startup race (a dial
// succeeds as soon as the peer's listener is bound; the kernel backlog
// covers the window before its accept loop runs). The dialer identifies
// itself with a Hello frame; spoofed or replayed identities fail closed via
// the magic payload and per-link SeqTracker.
//
// Termination: exchange() reports all_done once every party's round mark
// carried done=1 in the same round. Done flags travel symmetrically, so all
// parties observe all_done in the same round and stop in lockstep.
//
// Scope: this is the demo/deployment substrate (scripts/run_parties.sh, the
// compose file), not the Monte-Carlo hot path — the estimator keeps the
// in-process engine. Writes for a round happen before reads, so per-round
// traffic must fit the kernel socket buffers; protocol rounds here are KBs.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "net/socket.h"
#include "net/wire.h"
#include "sim/message.h"
#include "sim/transport.h"

namespace fairsfe::net {

struct MeshConfig {
  sim::PartyId self = 0;
  std::size_t parties = 2;
  /// Where to dial peer j when `hosts` is empty (single-machine default).
  std::string host = "127.0.0.1";
  /// Per-party hostnames for multi-machine/compose deployments (size must be
  /// `parties` when non-empty; hosts[j] is dialed for peer j).
  std::vector<std::string> hosts;
  /// Local bind address ("0.0.0.0" for cross-container meshes).
  std::string listen_host = "127.0.0.1";
  std::uint16_t base_port = 9100;  ///< party i listens on base_port + i
  int connect_attempts = 120;      ///< retry budget for the startup race
};

class MeshNode {
 public:
  /// Binds this party's listener (so peers can dial immediately); the mesh
  /// itself is established by connect().
  explicit MeshNode(MeshConfig cfg);
  ~MeshNode();
  MeshNode(const MeshNode&) = delete;
  MeshNode& operator=(const MeshNode&) = delete;

  /// Establish the full mesh: dial every lower pid, accept every higher one.
  /// Throws std::runtime_error on timeout/handshake failure.
  void connect();

  struct RoundResult {
    std::vector<sim::Message> inbox;  ///< round-r messages, mailbox order
    bool all_done = false;  ///< every party (self included) reported done
  };

  /// One lockstep round: send `out` (own broadcast/self legs are delivered
  /// locally; kFunc traffic is unsupported and throws), read every peer's
  /// batch, return the merged inbox. `self_done` is this party's done bit
  /// for the round mark.
  RoundResult exchange(int round, const std::vector<sim::Message>& out,
                       bool self_done);

  [[nodiscard]] const sim::TransportStats& stats() const { return stats_; }
  [[nodiscard]] std::uint16_t port() const { return listener_.port(); }

 private:
  struct Peer {
    sim::PartyId pid = 0;
    Stream stream;
    FrameReader reader;
  };

  /// Next complete, checksum-valid frame from the peer; throws on EOF or a
  /// malformed stream (fail closed — no resync).
  Frame read_frame(Peer& peer);
  Peer* peer_for(sim::PartyId pid);

  MeshConfig cfg_;
  TcpListener listener_;
  std::vector<Peer> peers_;  ///< every pid != self, sorted by pid
  SeqTracker send_seq_;
  SeqTracker recv_seq_;
  sim::TransportStats stats_;
};

}  // namespace fairsfe::net
