// Raw-socket audit (enforced by fairsfe-lint rule `raw-socket-access`):
// this translation unit is the complete list of raw socket call sites in the
// repository. Everything else goes through the wrappers it defines.
//
//   socket()   — make_tcp_socket(), make_unix_socket()
//   bind()     — TcpListener::bind(), UnixListener::bind()
//   listen()   — TcpListener::bind(), UnixListener::bind()
//   accept()   — accept_fd() (serving TcpListener/UnixListener::accept[_for])
//   connect()  — tcp_connect(), unix_connect()
//
// Anything outside src/net/ that needs a socket takes a net::Stream /
// net::*Listener; the lint rule fails the build otherwise.

#include "net/socket.h"

#include <arpa/inet.h>
#include <netdb.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <stdexcept>
#include <thread>
#include <utility>

namespace fairsfe::net {

namespace {

[[noreturn]] void throw_errno(const std::string& what) {
  throw std::runtime_error(what + ": " + std::strerror(errno));
}

Fd make_tcp_socket() {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) throw_errno("socket(AF_INET)");
  return Fd(fd);
}

Fd make_unix_socket() {
  const int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
  if (fd < 0) throw_errno("socket(AF_UNIX)");
  return Fd(fd);
}

sockaddr_in tcp_addr(const std::string& host, std::uint16_t port) {
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  if (::inet_pton(AF_INET, host.c_str(), &addr.sin_addr) == 1) return addr;
  // Not a dotted quad: resolve it (compose meshes dial peers by service
  // hostname). IPv4 only — the mesh and daemon bind AF_INET listeners.
  addrinfo hints{};
  hints.ai_family = AF_INET;
  hints.ai_socktype = SOCK_STREAM;
  addrinfo* res = nullptr;
  const int rc = ::getaddrinfo(host.c_str(), nullptr, &hints, &res);
  if (rc != 0 || res == nullptr) {
    throw std::runtime_error("getaddrinfo('" + host +
                             "'): " + ::gai_strerror(rc));
  }
  addr.sin_addr = reinterpret_cast<const sockaddr_in*>(res->ai_addr)->sin_addr;
  ::freeaddrinfo(res);
  return addr;
}

sockaddr_un unix_addr(const std::string& path) {
  sockaddr_un addr{};
  addr.sun_family = AF_UNIX;
  if (path.size() + 1 > sizeof(addr.sun_path)) {
    throw std::runtime_error("unix socket path too long: " + path);
  }
  std::memcpy(addr.sun_path, path.c_str(), path.size() + 1);
  return addr;
}

/// Shared accept body for both listener flavors. A timeout of -1 blocks.
std::optional<Stream> accept_fd(int listen_fd, int timeout_ms) {
  if (timeout_ms >= 0) {
    pollfd pfd{listen_fd, POLLIN, 0};
    for (;;) {
      const int rc = ::poll(&pfd, 1, timeout_ms);
      if (rc == 0) return std::nullopt;
      if (rc > 0) break;
      if (errno == EINTR) continue;
      throw_errno("poll(listener)");
    }
  }
  for (;;) {
    const int fd = ::accept(listen_fd, nullptr, nullptr);
    if (fd >= 0) return Stream(Fd(fd));
    if (errno == EINTR) continue;
    throw_errno("accept");
  }
}

void set_nodelay(int fd) {
  // Round-trip latency dominates the lockstep round barrier; never batch.
  const int one = 1;
  (void)::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
}

}  // namespace

Fd::~Fd() { reset(); }

Fd& Fd::operator=(Fd&& o) noexcept {
  if (this != &o) {
    reset();
    fd_ = o.fd_;
    o.fd_ = -1;
  }
  return *this;
}

void Fd::reset() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
}

void Stream::write_all(ByteView data) {
  if (!fd_.valid()) throw std::runtime_error("write on closed stream");
  std::size_t off = 0;
  while (off < data.size()) {
    const ssize_t n =
        ::send(fd_.get(), data.data() + off, data.size() - off, MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR) continue;
      throw_errno("send");
    }
    off += static_cast<std::size_t>(n);
  }
}

bool Stream::read_exact(std::span<std::uint8_t> out) {
  std::size_t off = 0;
  while (off < out.size()) {
    const ssize_t n = ::recv(fd_.get(), out.data() + off, out.size() - off, 0);
    if (n < 0) {
      if (errno == EINTR) continue;
      throw_errno("recv");
    }
    if (n == 0) {
      if (off == 0) return false;  // clean EOF at a frame boundary
      throw std::runtime_error("recv: EOF mid-frame after " +
                               std::to_string(off) + " bytes");
    }
    off += static_cast<std::size_t>(n);
  }
  return true;
}

std::size_t Stream::read_some(std::span<std::uint8_t> out) {
  for (;;) {
    const ssize_t n = ::recv(fd_.get(), out.data(), out.size(), 0);
    if (n >= 0) return static_cast<std::size_t>(n);
    if (errno == EINTR) continue;
    throw_errno("recv");
  }
}

bool Stream::readable_for(std::chrono::milliseconds timeout) {
  pollfd pfd{fd_.get(), POLLIN, 0};
  for (;;) {
    const int rc = ::poll(&pfd, 1, static_cast<int>(timeout.count()));
    if (rc > 0) return true;
    if (rc == 0) return false;
    if (errno == EINTR) continue;
    throw_errno("poll(stream)");
  }
}

void Stream::shutdown_write() {
  if (fd_.valid()) (void)::shutdown(fd_.get(), SHUT_WR);
}

TcpListener TcpListener::bind(const std::string& host, std::uint16_t port) {
  TcpListener l;
  l.fd_ = make_tcp_socket();
  const int one = 1;
  (void)::setsockopt(l.fd_.get(), SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  sockaddr_in addr = tcp_addr(host, port);
  if (::bind(l.fd_.get(), reinterpret_cast<const sockaddr*>(&addr),
             sizeof(addr)) != 0) {
    throw_errno("bind(" + host + ":" + std::to_string(port) + ")");
  }
  if (::listen(l.fd_.get(), 64) != 0) throw_errno("listen");
  socklen_t len = sizeof(addr);
  if (::getsockname(l.fd_.get(), reinterpret_cast<sockaddr*>(&addr), &len) != 0) {
    throw_errno("getsockname");
  }
  l.port_ = ntohs(addr.sin_port);
  return l;
}

Stream TcpListener::accept() {
  auto s = accept_fd(fd_.get(), -1);
  set_nodelay(s->native_handle());
  return std::move(*s);
}

std::optional<Stream> TcpListener::accept_for(std::chrono::milliseconds timeout) {
  auto s = accept_fd(fd_.get(), static_cast<int>(timeout.count()));
  if (s) set_nodelay(s->native_handle());
  return s;
}

UnixListener::~UnixListener() {
  if (!path_.empty()) (void)::unlink(path_.c_str());
}

UnixListener::UnixListener(UnixListener&& o) noexcept
    : fd_(std::move(o.fd_)), path_(std::move(o.path_)) {
  o.path_.clear();
}

UnixListener& UnixListener::operator=(UnixListener&& o) noexcept {
  if (this != &o) {
    if (!path_.empty()) (void)::unlink(path_.c_str());
    fd_ = std::move(o.fd_);
    path_ = std::move(o.path_);
    o.path_.clear();
  }
  return *this;
}

UnixListener UnixListener::bind(const std::string& path) {
  UnixListener l;
  l.fd_ = make_unix_socket();
  (void)::unlink(path.c_str());  // stale socket file from a crashed daemon
  sockaddr_un addr = unix_addr(path);
  if (::bind(l.fd_.get(), reinterpret_cast<const sockaddr*>(&addr),
             sizeof(addr)) != 0) {
    throw_errno("bind(" + path + ")");
  }
  if (::listen(l.fd_.get(), 64) != 0) throw_errno("listen");
  l.path_ = path;
  return l;
}

Stream UnixListener::accept() { return std::move(*accept_fd(fd_.get(), -1)); }

std::optional<Stream> UnixListener::accept_for(std::chrono::milliseconds timeout) {
  return accept_fd(fd_.get(), static_cast<int>(timeout.count()));
}

Stream tcp_connect(const std::string& host, std::uint16_t port) {
  Fd fd = make_tcp_socket();
  sockaddr_in addr = tcp_addr(host, port);
  for (;;) {
    if (::connect(fd.get(), reinterpret_cast<const sockaddr*>(&addr),
                  sizeof(addr)) == 0) {
      break;
    }
    if (errno == EINTR) continue;
    throw_errno("connect(" + host + ":" + std::to_string(port) + ")");
  }
  set_nodelay(fd.get());
  return Stream(std::move(fd));
}

Stream unix_connect(const std::string& path) {
  Fd fd = make_unix_socket();
  sockaddr_un addr = unix_addr(path);
  for (;;) {
    if (::connect(fd.get(), reinterpret_cast<const sockaddr*>(&addr),
                  sizeof(addr)) == 0) {
      return Stream(std::move(fd));
    }
    if (errno == EINTR) continue;
    throw_errno("connect(" + path + ")");
  }
}

ConnectResult tcp_connect_retry(const std::string& host, std::uint16_t port,
                                int attempts, std::chrono::milliseconds backoff) {
  std::chrono::milliseconds wait = backoff;
  const std::chrono::milliseconds cap = backoff * 32;
  for (int attempt = 0;; ++attempt) {
    try {
      return ConnectResult{tcp_connect(host, port), attempt};
    } catch (const std::runtime_error&) {
      if (attempt + 1 >= attempts) throw;
    }
    std::this_thread::sleep_for(wait);
    wait = std::min(wait * 2, cap);
  }
}

}  // namespace fairsfe::net
