// Thin RAII wrappers over the POSIX socket API.
//
// This directory is the only place in the tree allowed to touch raw socket
// syscalls — the fairsfe-lint rule `raw-socket-access` confines
// socket()/bind()/listen()/accept()/connect() and the <sys/socket.h> family
// of includes to src/net/. Everything above (sim::Transport implementations,
// the fairbenchd service, the fairparty mesh runner) speaks through these
// wrappers, so auditing the process's network surface means auditing
// src/net/socket.cpp.
//
// Determinism contract: wrappers never consult ambient randomness or
// wall-clock time; the only clock used is std::chrono::steady_clock, and only
// for connect/accept timeouts — values that never feed protocol state.
#pragma once

#include <chrono>
#include <cstddef>
#include <cstdint>
#include <optional>
#include <string>
#include <string_view>

#include "crypto/bytes.h"

namespace fairsfe::net {

/// Owning file descriptor. Closes on destruction; moveable, not copyable.
class Fd {
 public:
  Fd() = default;
  explicit Fd(int fd) : fd_(fd) {}
  ~Fd();
  Fd(Fd&& o) noexcept : fd_(o.fd_) { o.fd_ = -1; }
  Fd& operator=(Fd&& o) noexcept;
  Fd(const Fd&) = delete;
  Fd& operator=(const Fd&) = delete;

  [[nodiscard]] bool valid() const { return fd_ >= 0; }
  [[nodiscard]] int get() const { return fd_; }
  void reset();

 private:
  int fd_ = -1;
};

/// Connected byte stream (TCP or unix-domain). Blocking I/O with whole-buffer
/// write/read helpers; short reads/writes are looped internally.
class Stream {
 public:
  Stream() = default;
  explicit Stream(Fd fd) : fd_(std::move(fd)) {}

  [[nodiscard]] bool valid() const { return fd_.valid(); }

  /// Write the whole buffer. Throws std::runtime_error on error/EPIPE.
  void write_all(ByteView data);

  /// Read exactly `out.size()` bytes into `out`. Returns false on clean EOF
  /// at a message boundary (zero bytes read); throws on mid-buffer EOF or
  /// error.
  bool read_exact(std::span<std::uint8_t> out);

  /// Read up to `out.size()` bytes; returns the count, 0 on EOF.
  std::size_t read_some(std::span<std::uint8_t> out);

  /// True once the stream is readable (data or EOF) within the timeout.
  /// Lets read loops wake up periodically to observe shutdown flags.
  bool readable_for(std::chrono::milliseconds timeout);

  /// Half-close the write side (delivers EOF to the peer's reads).
  void shutdown_write();

  void close() { fd_.reset(); }
  [[nodiscard]] int native_handle() const { return fd_.get(); }

 private:
  Fd fd_;
};

/// Listening TCP socket. Binds to `host:port` (port 0 picks an ephemeral
/// port, readable via port()).
class TcpListener {
 public:
  TcpListener() = default;
  static TcpListener bind(const std::string& host, std::uint16_t port);

  [[nodiscard]] bool valid() const { return fd_.valid(); }
  [[nodiscard]] std::uint16_t port() const { return port_; }

  /// Block until a connection arrives.
  Stream accept();
  /// Accept with a poll timeout; std::nullopt on timeout. Used by accept
  /// loops that must wake up to observe shutdown flags.
  std::optional<Stream> accept_for(std::chrono::milliseconds timeout);

 private:
  Fd fd_;
  std::uint16_t port_ = 0;
};

/// Listening unix-domain socket at a filesystem path. The path is unlinked
/// before bind (stale socket files from a crashed daemon) and on destruction.
class UnixListener {
 public:
  UnixListener() = default;
  ~UnixListener();
  UnixListener(UnixListener&&) noexcept;
  UnixListener& operator=(UnixListener&&) noexcept;
  UnixListener(const UnixListener&) = delete;
  UnixListener& operator=(const UnixListener&) = delete;

  static UnixListener bind(const std::string& path);

  [[nodiscard]] bool valid() const { return fd_.valid(); }
  [[nodiscard]] const std::string& path() const { return path_; }

  Stream accept();
  std::optional<Stream> accept_for(std::chrono::milliseconds timeout);

 private:
  Fd fd_;
  std::string path_;
};

/// Connect to a TCP endpoint. Throws std::runtime_error on failure.
Stream tcp_connect(const std::string& host, std::uint16_t port);

/// Connect to a unix-domain socket path. Throws on failure.
Stream unix_connect(const std::string& path);

/// Connect with bounded retry/backoff: up to `attempts` tries, sleeping
/// `backoff` (doubled each retry, capped at 32×) between failures. Returns
/// the stream plus how many retries were needed (0 = first try). Throws once
/// the budget is exhausted. This is the peer-startup race absorber for the
/// multi-process mesh: party i may connect before party j has bound its
/// listener.
struct ConnectResult {
  Stream stream;
  int retries = 0;
};
ConnectResult tcp_connect_retry(const std::string& host, std::uint16_t port,
                                int attempts = 40,
                                std::chrono::milliseconds backoff =
                                    std::chrono::milliseconds(25));

}  // namespace fairsfe::net
