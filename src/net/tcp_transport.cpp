#include "net/tcp_transport.h"

#include <memory>
#include <stdexcept>
#include <string>
#include <utility>

namespace fairsfe::net {

namespace {

/// Channel id for control frames (RoundMark/Hello/Bye): outside the PartyId
/// range, so control traffic has its own sequence stream.
constexpr std::int32_t kControlChannel = -9;

const Bytes kHelloMagic = {'f', 's', 'f', 'e', '1'};

Frame control_frame(FrameKind kind, int round) {
  Frame f;
  f.kind = kind;
  f.round = static_cast<std::uint32_t>(round);
  f.from = kControlChannel;
  f.to = kControlChannel;
  f.rcpt = kControlChannel;
  return f;
}

}  // namespace

TcpTransport::TcpTransport() {
  TcpListener listener = TcpListener::bind("127.0.0.1", 0);
  port_ = listener.port();
  relay_ = std::thread([this, l = std::make_shared<TcpListener>(std::move(listener))] {
    relay_main(l->accept());
  });
  auto conn = tcp_connect_retry("127.0.0.1", port_);
  stats_.reconnects += static_cast<std::uint64_t>(conn.retries);
  engine_side_ = std::move(conn.stream);

  // Handshake: the relay must echo the hello (magic included) before any
  // round traffic flows.
  Frame hello = control_frame(FrameKind::kHello, 0);
  hello.seq = send_seq_.next(kControlChannel, kControlChannel);
  hello.payload = kHelloMagic;
  engine_side_.write_all(encode_frame(hello));
  Frame echo;
  std::uint8_t chunk[512];
  for (;;) {
    const auto st = reader_.poll(echo);
    if (st == FrameReader::Status::kFrame) break;
    if (st == FrameReader::Status::kBad) {
      throw std::runtime_error("TcpTransport: malformed hello echo");
    }
    const std::size_t n = engine_side_.read_some(chunk);
    if (n == 0) throw std::runtime_error("TcpTransport: relay closed during hello");
    reader_.feed(ByteView(chunk, n));
  }
  if (echo.kind != FrameKind::kHello || echo.payload != kHelloMagic ||
      !recv_seq_.accept(kControlChannel, kControlChannel, echo.seq)) {
    throw std::runtime_error("TcpTransport: bad hello echo");
  }
}

TcpTransport::~TcpTransport() {
  try {
    if (engine_side_.valid()) {
      Frame bye = control_frame(FrameKind::kBye, 0);
      bye.seq = send_seq_.next(kControlChannel, kControlChannel);
      engine_side_.write_all(encode_frame(bye));
      engine_side_.shutdown_write();
    }
  } catch (...) {
    // Relay already gone: nothing to tear down gracefully.
  }
  if (relay_.joinable()) relay_.join();
}

void TcpTransport::ship(sim::PartyId rcpt, const sim::Message& m, int round) {
  // Buffered, not written: the round's batch goes out in collect(), keeping
  // the engine/relay phase alternation deadlock-free by construction.
  outbox_.push_back(Pending{round, rcpt, m});
}

std::vector<sim::Delivery> TcpTransport::collect(int round) {
  Bytes wire;
  std::size_t sent = 0;
  for (Pending& p : outbox_) {
    // Legs of other rounds are stale (a finished execution's final round):
    // discarded, exactly as the in-process engine drops its last round buffer.
    if (p.round != round) continue;
    Frame f;
    f.kind = FrameKind::kMsg;
    f.round = static_cast<std::uint32_t>(round);
    f.from = p.msg.from;
    f.to = p.msg.to;
    f.rcpt = p.rcpt;
    f.payload = std::move(p.msg.payload);
    f.seq = send_seq_.next(f.from, f.rcpt);
    const Bytes enc = encode_frame(f);
    wire.insert(wire.end(), enc.begin(), enc.end());
    ++sent;
  }
  outbox_.clear();
  Frame mark = control_frame(FrameKind::kRoundMark, round);
  mark.seq = send_seq_.next(kControlChannel, kControlChannel);
  const Bytes enc = encode_frame(mark);
  wire.insert(wire.end(), enc.begin(), enc.end());

  engine_side_.write_all(wire);
  stats_.frames += sent;
  stats_.wire_bytes += wire.size();
  stats_.rounds += 1;

  // Read the relay's echo of the whole round, fail-closed on anything that
  // is not byte-for-byte a well-formed, in-sequence rendition of what was
  // shipped.
  std::vector<sim::Delivery> out;
  out.reserve(sent);
  std::uint8_t chunk[4096];
  for (;;) {
    Frame f;
    const auto st = reader_.poll(f);
    if (st == FrameReader::Status::kNeedMore) {
      const std::size_t n = engine_side_.read_some(chunk);
      if (n == 0) {
        throw std::runtime_error("TcpTransport: relay closed mid-round");
      }
      reader_.feed(ByteView(chunk, n));
      continue;
    }
    if (st == FrameReader::Status::kBad) {
      throw std::runtime_error("TcpTransport: malformed frame on the wire");
    }
    if (f.round != static_cast<std::uint32_t>(round)) {
      throw std::runtime_error("TcpTransport: frame for round " +
                               std::to_string(f.round) + " inside round " +
                               std::to_string(round));
    }
    if (f.kind == FrameKind::kRoundMark) {
      if (!recv_seq_.accept(kControlChannel, kControlChannel, f.seq)) {
        throw std::runtime_error("TcpTransport: round mark out of sequence");
      }
      break;
    }
    if (f.kind != FrameKind::kMsg) {
      throw std::runtime_error("TcpTransport: unexpected control frame mid-round");
    }
    if (!recv_seq_.accept(f.from, f.rcpt, f.seq)) {
      throw std::runtime_error("TcpTransport: duplicate or out-of-order frame");
    }
    out.push_back(sim::Delivery{
        f.rcpt, sim::Message{f.from, f.to, std::move(f.payload)}});
  }
  if (out.size() != sent) {
    throw std::runtime_error("TcpTransport: round echoed " +
                             std::to_string(out.size()) + " legs, shipped " +
                             std::to_string(sent));
  }
  return out;
}

void TcpTransport::relay_main(Stream conn) {
  // Dumb wire reflector: no knowledge of the simulation, just framing. It
  // buffers a round's frames and flushes them on the RoundMark, which is what
  // makes the engine's write-whole-round-then-read pattern deadlock-free.
  try {
    FrameReader rd;
    Bytes batch;
    std::uint8_t chunk[4096];
    for (;;) {
      Frame f;
      const auto st = rd.poll(f);
      if (st == FrameReader::Status::kBad) return;  // poisoned stream: hang up
      if (st == FrameReader::Status::kNeedMore) {
        const std::size_t n = conn.read_some(chunk);
        if (n == 0) return;  // engine side gone
        rd.feed(ByteView(chunk, n));
        continue;
      }
      switch (f.kind) {
        case FrameKind::kHello:
          conn.write_all(encode_frame(f));
          break;
        case FrameKind::kBye:
          return;
        case FrameKind::kMsg: {
          const Bytes enc = encode_frame(f);
          batch.insert(batch.end(), enc.begin(), enc.end());
          break;
        }
        case FrameKind::kRoundMark: {
          const Bytes enc = encode_frame(f);
          batch.insert(batch.end(), enc.begin(), enc.end());
          conn.write_all(batch);
          batch.clear();
          break;
        }
      }
    }
  } catch (...) {
    // I/O error: drop the connection; the engine side fails closed on EOF.
  }
}

sim::Transport* thread_local_transport(sim::TransportKind kind) {
  if (kind == sim::TransportKind::kInProc) return nullptr;
  thread_local std::unique_ptr<TcpTransport> transport;
  if (!transport) transport = std::make_unique<TcpTransport>();
  return transport.get();
}

}  // namespace fairsfe::net
