// sim::Transport over a real TCP socket pair.
//
// Topology: the transport owns a loopback listener plus a relay thread. The
// engine side ships delivery legs during round r; collect(r) encodes each
// leg as a wire frame (per-channel seq, FNV checksum), writes the batch plus
// a RoundMark through the kernel TCP stack, and reads the relay's echo back,
// re-framing, decoding, and seq-validating every leg before it reaches a
// mailbox. Phases strictly alternate — the engine writes a whole round, the
// relay buffers until the RoundMark and only then echoes — so neither side
// ever blocks on a peer that is also writing.
//
// Determinism: TCP preserves byte order on one stream, the relay preserves
// frame order within a round, and collect() returns legs in ship order —
// the exact order the in-process engine appends mailbox indices. Executions
// over this transport are therefore bit-identical to InProc runs (pinned by
// tests/test_net.cpp and the exp scenarios under --transport tcp).
//
// Legs shipped for a round that is never collected (the final round of an
// execution: its mailboxes have no consumer) are discarded at the next
// collect or at destruction — they never touch the wire, mirroring the
// in-process engine, whose final round buffer is simply dropped.
//
// One instance serves many sequential executions but is not thread-safe;
// the estimator keeps one per worker thread (see rpd/estimator.cpp).
#pragma once

#include <cstdint>
#include <thread>
#include <vector>

#include "net/socket.h"
#include "net/wire.h"
#include "sim/transport.h"

namespace fairsfe::net {

class TcpTransport final : public sim::Transport {
 public:
  TcpTransport();
  ~TcpTransport() override;

  TcpTransport(const TcpTransport&) = delete;
  TcpTransport& operator=(const TcpTransport&) = delete;

  [[nodiscard]] sim::TransportKind kind() const override {
    return sim::TransportKind::kTcp;
  }
  void ship(sim::PartyId rcpt, const sim::Message& m, int round) override;
  [[nodiscard]] std::vector<sim::Delivery> collect(int round) override;
  [[nodiscard]] sim::TransportStats stats() const override { return stats_; }

  /// The loopback port the relay listens on (tests).
  [[nodiscard]] std::uint16_t port() const { return port_; }

 private:
  struct Pending {
    int round;
    sim::PartyId rcpt;
    sim::Message msg;
  };

  void relay_main(Stream conn);

  std::vector<Pending> outbox_;
  Stream engine_side_;
  std::thread relay_;
  std::uint16_t port_ = 0;
  SeqTracker send_seq_;
  SeqTracker recv_seq_;
  FrameReader reader_;
  sim::TransportStats stats_;
};

/// Per-worker-thread transport of the requested kind, constructed lazily and
/// reused across every execution that worker runs (TCP handshakes are paid
/// once per thread, not once per Monte-Carlo run). Returns nullptr for
/// kInProc — the engine's native path needs no transport object.
sim::Transport* thread_local_transport(sim::TransportKind kind);

}  // namespace fairsfe::net
