#include "net/wire.h"

#include <cstring>

namespace fairsfe::net {

std::uint32_t fnv1a(ByteView data) {
  std::uint32_t h = 0x811c9dc5u;
  for (const std::uint8_t b : data) {
    h ^= b;
    h *= 0x01000193u;
  }
  return h;
}

namespace {

bool kind_valid(std::uint8_t k) {
  return k >= static_cast<std::uint8_t>(FrameKind::kMsg) &&
         k <= static_cast<std::uint8_t>(FrameKind::kBye);
}

}  // namespace

Bytes encode_frame(const Frame& f) {
  Writer body;
  body.u8(static_cast<std::uint8_t>(f.kind))
      .u32(f.seq)
      .u32(f.round)
      .u32(static_cast<std::uint32_t>(f.from))
      .u32(static_cast<std::uint32_t>(f.to))
      .u32(static_cast<std::uint32_t>(f.rcpt))
      .blob(f.payload);
  body.u32(fnv1a(body.bytes()));

  Writer out;
  out.u32(static_cast<std::uint32_t>(body.bytes().size()));
  out.raw(body.bytes());
  return out.take();
}

std::optional<Frame> decode_frame_body(ByteView body) {
  if (body.size() > kMaxFrameBody || body.size() < 4) return std::nullopt;
  // The checksum covers every byte before it.
  const ByteView covered = body.subspan(0, body.size() - 4);
  Reader tail(body.subspan(body.size() - 4));
  const auto checksum = tail.u32();
  if (!checksum || *checksum != fnv1a(covered)) return std::nullopt;

  Reader r(covered);
  const auto kind = r.u8();
  const auto seq = r.u32();
  const auto round = r.u32();
  const auto from = r.u32();
  const auto to = r.u32();
  const auto rcpt = r.u32();
  auto payload = r.blob();
  if (!kind || !seq || !round || !from || !to || !rcpt || !payload) {
    return std::nullopt;
  }
  if (!r.at_end()) return std::nullopt;  // trailing bytes: not a valid frame
  if (!kind_valid(*kind)) return std::nullopt;

  Frame f;
  f.kind = static_cast<FrameKind>(*kind);
  f.seq = *seq;
  f.round = *round;
  f.from = static_cast<std::int32_t>(*from);
  f.to = static_cast<std::int32_t>(*to);
  f.rcpt = static_cast<std::int32_t>(*rcpt);
  f.payload = std::move(*payload);
  return f;
}

FrameReader::Status FrameReader::poll(Frame& out) {
  if (poisoned_) return Status::kBad;
  // Compact lazily: drop consumed bytes once they dominate the buffer.
  if (pos_ > 4096 && pos_ * 2 > buf_.size()) {
    buf_.erase(buf_.begin(), buf_.begin() + static_cast<std::ptrdiff_t>(pos_));
    pos_ = 0;
  }
  const std::size_t avail = buf_.size() - pos_;
  if (avail < 4) return Status::kNeedMore;
  std::uint32_t len = 0;
  std::memcpy(&len, buf_.data() + pos_, 4);  // canonical encoding is LE; so is every supported target
  if (len > kMaxFrameBody || len < 4) {
    // A hostile length prefix is rejected *before* any allocation or read of
    // that size — fail closed, do not buffer toward it.
    poisoned_ = true;
    return Status::kBad;
  }
  if (avail < 4u + len) return Status::kNeedMore;
  auto frame = decode_frame_body(ByteView(buf_.data() + pos_ + 4, len));
  if (!frame) {
    poisoned_ = true;
    return Status::kBad;
  }
  pos_ += 4u + len;
  out = std::move(*frame);
  return Status::kFrame;
}

bool SeqTracker::accept(std::int32_t from, std::int32_t to, std::uint32_t seq) {
  std::uint32_t& last = last_[{from, to}];
  if (seq != last + 1) return false;
  last = seq;
  return true;
}

std::uint32_t SeqTracker::next(std::int32_t from, std::int32_t to) {
  return ++last_[{from, to}];
}

}  // namespace fairsfe::net
