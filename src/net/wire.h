// Deterministic wire codec for transported simulation messages.
//
// Every frame is a u32 little-endian length prefix followed by a body in the
// repo's canonical crypto/bytes.h encoding:
//
//   u8  kind        kMsg | kRoundMark | kHello | kBye
//   u32 seq         per-(from,to)-channel sequence number, starts at 1
//   u32 round       engine round the frame belongs to
//   u32 from        sim::PartyId as two's-complement u32 (kFunc is negative)
//   u32 to          original addressing (kBroadcast survives the wire)
//   u32 rcpt        mailbox owner of this delivery leg
//   blob payload    message payload (u32 length prefix)
//   u32 checksum    FNV-1a over every body byte above
//
// Decoding fails closed: a bad kind, an oversized length prefix, a checksum
// mismatch, trailing bytes, or a truncated body all yield "malformed", never
// a partially-trusted frame (tests/test_net.cpp fuzzes this). Sequence
// numbers are validated separately by SeqTracker — exactly-once, in-order
// per channel — so a duplicated, dropped, or reordered frame on a transport
// stream is detected rather than silently perturbing an execution.
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <utility>

#include "crypto/bytes.h"

namespace fairsfe::net {

enum class FrameKind : std::uint8_t {
  kMsg = 1,        ///< one delivery leg of a simulation message
  kRoundMark = 2,  ///< round barrier; payload carries the sender's done bit
  kHello = 3,      ///< connection handshake (payload: sender PartyId, magic)
  kBye = 4,        ///< orderly teardown
};

/// Hard cap on a frame body. Protocol messages are tiny (shares, OT rows);
/// anything near this size is an attack or a bug, and the cap is what makes
/// a hostile length prefix unable to trigger a huge allocation.
inline constexpr std::size_t kMaxFrameBody = 1u << 20;

struct Frame {
  FrameKind kind = FrameKind::kMsg;
  std::uint32_t seq = 0;
  std::uint32_t round = 0;
  std::int32_t from = 0;
  std::int32_t to = 0;
  std::int32_t rcpt = 0;
  Bytes payload;
};

/// FNV-1a 32-bit over `data` (the frame-body checksum).
[[nodiscard]] std::uint32_t fnv1a(ByteView data);

/// Encode a frame, length prefix included.
[[nodiscard]] Bytes encode_frame(const Frame& f);

/// Decode one frame body (the bytes after the length prefix). std::nullopt on
/// any malformation.
[[nodiscard]] std::optional<Frame> decode_frame_body(ByteView body);

/// Incremental frame extractor over an untrusted byte stream. Feed bytes in
/// arbitrary chunk sizes; poll() yields complete frames. Once kBad is
/// returned the reader is poisoned (a framing error desynchronizes the
/// stream; there is no resync).
class FrameReader {
 public:
  enum class Status { kFrame, kNeedMore, kBad };

  void feed(ByteView data) { buf_.insert(buf_.end(), data.begin(), data.end()); }

  /// Extract the next complete frame into `out`.
  Status poll(Frame& out);

  [[nodiscard]] std::size_t buffered() const { return buf_.size(); }

 private:
  Bytes buf_;
  std::size_t pos_ = 0;
  bool poisoned_ = false;
};

/// Exactly-once in-order validator for per-channel sequence numbers. The
/// first frame on channel (from, to) must carry seq 1, and each subsequent
/// frame the previous seq + 1.
class SeqTracker {
 public:
  /// Returns true iff `seq` is the next expected value for the channel (and
  /// records it). False = duplicate, gap, or reordering — callers fail closed.
  bool accept(std::int32_t from, std::int32_t to, std::uint32_t seq);

  /// Next seq to assign for an outgoing frame on the channel.
  std::uint32_t next(std::int32_t from, std::int32_t to);

 private:
  std::map<std::pair<std::int32_t, std::int32_t>, std::uint32_t> last_;
};

}  // namespace fairsfe::net
