#include "rpd/balance.h"

namespace fairsfe::rpd {

double BalanceProfile::sum() const {
  double s = 0.0;
  for (const AttackResult& r : best_per_t) s += r.estimate.utility;
  return s;
}

double BalanceProfile::sum_margin() const {
  double m = 0.0;
  for (const AttackResult& r : best_per_t) m += r.estimate.margin();
  return m;
}

BalanceProfile balance_profile(
    std::size_t n,
    const std::function<std::vector<NamedAttack>(std::size_t t)>& attacks_for_t,
    const PayoffVector& payoff, const EstimatorOptions& opts) {
  BalanceProfile profile;
  profile.n = n;
  std::uint64_t s = opts.seed;
  for (std::size_t t = 1; t <= n - 1; ++t) {
    const ProtocolAssessment a = assess_protocol(attacks_for_t(t), payoff, opts.with_seed(s));
    s += a.attacks.size();
    profile.best_per_t.push_back(a.attacks[a.best_index]);
  }
  return profile;
}

bool is_utility_balanced(const BalanceProfile& profile, const PayoffVector& payoff) {
  return profile.sum() <= payoff.balance_bound(profile.n) + profile.sum_margin();
}

}  // namespace fairsfe::rpd
