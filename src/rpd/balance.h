// Utility-balanced fairness (Definition 5) and φ-fairness (Definition 21).
//
// A protocol is utility-balanced γ-fair if the sum over t = 1..n-1 of the
// best t-adversary's utility is (negligibly close to) minimal; Lemma 14/16
// pin this minimum at (n-1)(γ10+γ11)/2 for ΠOptnSFE-style protocols.
#pragma once

#include <vector>

#include "rpd/estimator.h"
#include "rpd/fairness_relation.h"

namespace fairsfe::rpd {

/// Per-corruption-budget assessment: entry t-1 holds the best utility a
/// t-adversary achieves (t = 1..n-1). This is the function φ of Def. 21.
struct BalanceProfile {
  std::size_t n = 0;
  std::vector<AttackResult> best_per_t;  ///< index t-1

  [[nodiscard]] double phi(std::size_t t) const {
    return best_per_t[t - 1].estimate.utility;
  }
  [[nodiscard]] double sum() const;
  /// Total 3-sigma margin on the sum.
  [[nodiscard]] double sum_margin() const;
};

/// For each t in 1..n-1 run every strategy in `attacks_for_t(t)` and keep the
/// best; `attacks_for_t` lets the caller tailor the family per budget. Budget
/// t's family is assessed with seed opts.seed advanced by the number of
/// attacks already consumed, matching the historical sequential seeding.
BalanceProfile balance_profile(
    std::size_t n,
    const std::function<std::vector<NamedAttack>(std::size_t t)>& attacks_for_t,
    const PayoffVector& payoff, const EstimatorOptions& opts);

/// Definition 5 check, one-sided: does the profile sum stay within the
/// Lemma 14 optimum (n-1)(γ10+γ11)/2 up to its statistical margin?
bool is_utility_balanced(const BalanceProfile& profile, const PayoffVector& payoff);

}  // namespace fairsfe::rpd
