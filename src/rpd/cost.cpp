#include "rpd/cost.h"

namespace fairsfe::rpd {

double ideal_payoff(const PayoffVector& payoff, std::size_t t, std::size_t n) {
  if (t == 0) return payoff.g01;
  if (t >= n) return payoff.g11;
  // Against the fully fair Fsfe the adversary chooses between aborting before
  // outputs (γ00) and letting the evaluation complete (γ11); for Γ+fair the
  // latter is at least as good.
  return std::max(payoff.g00, payoff.g11);
}

CostFunction cost_from_profile(const BalanceProfile& profile, const PayoffVector& payoff) {
  CostFunction cost;
  cost.c.reserve(profile.best_per_t.size());
  for (std::size_t t = 1; t <= profile.best_per_t.size(); ++t) {
    cost.c.push_back(profile.phi(t) - ideal_payoff(payoff, t, profile.n));
  }
  return cost;
}

bool weakly_dominates(const CostFunction& a, const CostFunction& b, double tol) {
  if (a.c.size() != b.c.size()) return false;
  for (std::size_t i = 0; i < a.c.size(); ++i) {
    if (a.c[i] < b.c[i] - tol) return false;
  }
  return true;
}

bool strictly_dominates(const CostFunction& a, const CostFunction& b, double tol) {
  if (a.c.size() != b.c.size()) return false;
  for (std::size_t i = 0; i < a.c.size(); ++i) {
    if (a.c[i] <= b.c[i] + tol) return false;
  }
  return true;
}

}  // namespace fairsfe::rpd
