// Corruption costs and ideal γ^C-fairness (Section 4.2 / Appendix B.2).
//
// The payoff is extended with a cost -C(I) for corrupting set I; for
// symmetric protocols C(I) = c(|I|). `s(t)` is the best payoff a
// t-adversary extracts from the *dummy* Fsfe-hybrid protocol Φ (full
// fairness): with γ ∈ Γ+fair that is γ11 for 1 ≤ t ≤ n-1 — the adversary's
// best move against an ideally fair protocol is to let it complete.
//
// Lemma 22 links the notions: Π is φ-fair  ⟺  Π is ideally γ^C-fair with
// c(t) = φ(t) - s(t). Theorem 6 then says a utility-balanced protocol's
// cost function cannot be strictly dominated.
#pragma once

#include <vector>

#include "rpd/balance.h"
#include "rpd/payoff.h"

namespace fairsfe::rpd {

/// Symmetric corruption-cost function c : [n-1] -> R (index t-1 holds c(t)).
struct CostFunction {
  std::vector<double> c;

  [[nodiscard]] double of(std::size_t t) const { return c[t - 1]; }
  [[nodiscard]] std::size_t max_t() const { return c.size(); }
};

/// The ideal benchmark s(t): best t-adversary payoff against the dummy
/// protocol Φ^Fsfe, for γ ∈ Γ+fair. (Equals γ11 for every 1 ≤ t ≤ n-1: the
/// fully fair functionality either aborts before anyone learns anything —
/// worth γ00 ≤ γ11 — or delivers to everyone.)
double ideal_payoff(const PayoffVector& payoff, std::size_t t, std::size_t n);

/// Lemma 22: the cost function under which a φ-fair protocol is ideally
/// γ^C-fair, c(t) = φ(t) - s(t).
CostFunction cost_from_profile(const BalanceProfile& profile, const PayoffVector& payoff);

/// Definition 20: does `a` weakly dominate `b` (a(t) >= b(t) for all t)?
bool weakly_dominates(const CostFunction& a, const CostFunction& b, double tol = 0.0);
/// Strict domination: a(t) > b(t) for all t (beyond tolerance).
bool strictly_dominates(const CostFunction& a, const CostFunction& b, double tol = 0.0);

/// Utility net of corruption cost for a t-adversary with raw utility u.
inline double net_utility(double u, const CostFunction& cost, std::size_t t) {
  return u - cost.of(t);
}

}  // namespace fairsfe::rpd
