#include "rpd/estimator.h"

#include <chrono>
#include <cmath>
#include <limits>
#include <mutex>

#include "experiments/registry.h"
#include "util/thread_pool.h"

namespace fairsfe::rpd {

sim::ExecutionResult execute(RunSetup&& setup, Rng&& rng) {
  sim::Engine engine(std::move(setup.parties), std::move(setup.functionality),
                     std::move(setup.adversary), std::move(rng), setup.engine);
  return engine.run();
}

namespace {

// Fixed shard width, independent of the thread count: shard s always covers
// runs [s*kShardRuns, (s+1)*kShardRuns). Accumulators are produced per shard
// and merged in shard order, so the floating-point summation tree — and hence
// the returned estimate — does not depend on how shards map to threads.
constexpr std::size_t kShardRuns = 64;

struct ShardAccumulator {
  double sum = 0.0;
  double sum_sq = 0.0;
  std::array<std::size_t, 4> counts{};
  std::size_t capped = 0;
  std::size_t first_capped = std::numeric_limits<std::size_t>::max();
  sim::fault::FaultStats fault_stats;
};

}  // namespace

UtilityEstimate estimate_utility(const SetupFactory& factory, const PayoffVector& payoff,
                                 const EstimatorOptions& opts) {
  const std::size_t runs = opts.runs;
  UtilityEstimate est;
  est.runs = runs;
  if (runs == 0) return est;
  est.run_events.resize(runs);

  const std::size_t n_shards = (runs + kShardRuns - 1) / kShardRuns;
  std::vector<ShardAccumulator> shards(n_shards);

  std::mutex progress_mu;
  std::size_t progress_done = 0;

  const auto t0 = std::chrono::steady_clock::now();
  util::parallel_for(n_shards, opts.threads, [&](std::size_t s) {
    const std::size_t lo = s * kShardRuns;
    const std::size_t hi = std::min(runs, lo + kShardRuns);
    // Cheap per-shard master: run i's stream is a pure function of (seed, i).
    const Rng master(opts.seed);
    ShardAccumulator& acc = shards[s];
    for (std::size_t i = lo; i < hi; ++i) {
      Rng run_rng = master.fork_at("run", i);
      Rng setup_rng = run_rng.fork("setup");
      RunSetup setup = factory(setup_rng);
      // Offline slice binding by run index — before the engine starts, and a
      // pure function of i, so thread scheduling cannot perturb which slice
      // of the preprocessed batch a run consumes.
      if (setup.bind_run) setup.bind_run(i);
      if (opts.fault) setup.engine.fault = *opts.fault;
      if (opts.round_timeout >= 0) setup.engine.round_timeout = opts.round_timeout;
      const std::size_t n = setup.parties.size();
      auto j_predicate = setup.honest_got_output;
      auto i_predicate = setup.adversary_learned;
      sim::ExecutionResult result = execute(std::move(setup), run_rng.fork("engine"));

      const bool j_bit = j_predicate ? j_predicate(result) : all_honest_nonbot(result, n);
      Outcome o = outcome_of(result, n, j_bit);
      if (i_predicate) o.adversary_learned = i_predicate(result);
      const FairnessEvent e = classify(o);
      est.run_events[i] = e;
      acc.fault_stats += result.fault_stats;
      if (result.hit_round_cap) {
        // Hard per-run error: the protocol never reached a verdict. Keep the
        // classification trace aligned but exclude the run from the average.
        acc.capped += 1;
        acc.first_capped = std::min(acc.first_capped, i);
        continue;
      }
      acc.counts[static_cast<std::size_t>(e)]++;
      const double pay = payoff.of(e);
      acc.sum += pay;
      acc.sum_sq += pay * pay;
    }
    if (opts.progress) {
      std::unique_lock<std::mutex> lock(progress_mu);
      progress_done += hi - lo;
      opts.progress(progress_done, runs);
    }
  });
  est.wall_seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0).count();

  double sum = 0.0;
  double sum_sq = 0.0;
  std::array<std::size_t, 4> counts{};
  std::size_t first_capped = std::numeric_limits<std::size_t>::max();
  for (const ShardAccumulator& acc : shards) {  // merge in index order
    sum += acc.sum;
    sum_sq += acc.sum_sq;
    for (std::size_t k = 0; k < 4; ++k) counts[k] += acc.counts[k];
    est.round_cap_hits += acc.capped;
    first_capped = std::min(first_capped, acc.first_capped);
    est.fault_stats += acc.fault_stats;
  }
  est.valid_runs = runs - est.round_cap_hits;
  est.first_round_cap_run = est.round_cap_hits > 0 ? first_capped : runs;

  const auto valid = static_cast<double>(est.valid_runs);
  if (est.valid_runs > 0) {
    const double mean = sum / valid;
    est.utility = mean;
    if (est.valid_runs > 1) {
      const double var = (sum_sq - valid * mean * mean) / (valid - 1.0);
      est.std_error = std::sqrt(std::max(0.0, var) / valid);
    }
    for (std::size_t k = 0; k < 4; ++k) {
      est.event_freq[k] = static_cast<double>(counts[k]) / valid;
    }
  }
  return est;
}

UtilityEstimate estimate_utility(const experiments::ScenarioSpec& scenario,
                                 const EstimatorOptions& opts) {
  EstimatorOptions o = opts;
  if (!o.fault && scenario.fault) o.fault = *scenario.fault;
  return estimate_utility(scenario.attacks.front().factory, scenario.gamma, o);
}

}  // namespace fairsfe::rpd
