#include "rpd/estimator.h"

#include <cmath>

namespace fairsfe::rpd {

sim::ExecutionResult execute(RunSetup setup, Rng rng) {
  const std::size_t n = setup.parties.size();
  sim::Engine engine(std::move(setup.parties), std::move(setup.functionality),
                     std::move(setup.adversary), std::move(rng), setup.engine);
  sim::ExecutionResult result = engine.run();
  (void)n;
  return result;
}

UtilityEstimate estimate_utility(const SetupFactory& factory, const PayoffVector& payoff,
                                 std::size_t runs, std::uint64_t seed) {
  UtilityEstimate est;
  est.runs = runs;
  Rng master(seed);
  double sum = 0.0;
  double sum_sq = 0.0;
  std::array<std::size_t, 4> counts{};

  for (std::size_t i = 0; i < runs; ++i) {
    Rng run_rng = master.fork("run");
    Rng setup_rng = run_rng.fork("setup");
    RunSetup setup = factory(setup_rng);
    const std::size_t n = setup.parties.size();
    auto j_predicate = setup.honest_got_output;
    auto i_predicate = setup.adversary_learned;
    sim::ExecutionResult result = execute(std::move(setup), run_rng.fork("engine"));

    const bool j_bit = j_predicate ? j_predicate(result) : all_honest_nonbot(result, n);
    Outcome o = outcome_of(result, n, j_bit);
    if (i_predicate) o.adversary_learned = i_predicate(result);
    const FairnessEvent e = classify(o);
    counts[static_cast<std::size_t>(e)]++;
    const double pay = payoff.of(e);
    sum += pay;
    sum_sq += pay * pay;
  }

  const double mean = sum / static_cast<double>(runs);
  est.utility = mean;
  if (runs > 1) {
    const double var =
        (sum_sq - static_cast<double>(runs) * mean * mean) / static_cast<double>(runs - 1);
    est.std_error = std::sqrt(std::max(0.0, var) / static_cast<double>(runs));
  }
  for (std::size_t k = 0; k < 4; ++k) {
    est.event_freq[k] = static_cast<double>(counts[k]) / static_cast<double>(runs);
  }
  return est;
}

}  // namespace fairsfe::rpd
