#include "rpd/estimator.h"

#include <array>
#include <chrono>
#include <cmath>
#include <limits>
#include <mutex>

#include "experiments/registry.h"
#include "net/tcp_transport.h"
#include "util/bitmat.h"
#include "util/check.h"
#include "util/thread_pool.h"

namespace fairsfe::rpd {

sim::ExecutionResult execute(RunSetup&& setup, Rng&& rng) {
  sim::Engine engine(std::move(setup.parties), std::move(setup.functionality),
                     std::move(setup.adversary), std::move(rng), setup.engine);
  return engine.run();
}

namespace {

// Fixed shard width, independent of the thread count: shard s always covers
// runs [s*kShardRuns, (s+1)*kShardRuns). Accumulators are produced per shard
// and merged in shard order, so the floating-point summation tree — and hence
// the returned estimate — does not depend on how shards map to threads. The
// width deliberately equals the bit-sliced lane width: one shard is exactly
// one word-sliced batch, so both strategies share the shard machinery.
constexpr std::size_t kShardRuns = 64;
static_assert(kShardRuns == util::kLaneWidth,
              "shards must align with the bit-sliced lane width");

struct ShardAccumulator {
  double sum = 0.0;
  double sum_sq = 0.0;
  std::array<std::size_t, 4> counts{};
  std::size_t capped = 0;
  std::size_t first_capped = std::numeric_limits<std::size_t>::max();
  sim::fault::FaultStats fault_stats;

  [[nodiscard]] std::size_t valid() const {
    return counts[0] + counts[1] + counts[2] + counts[3];
  }
};

}  // namespace

UtilityEstimate estimate_utility(const EstimationTarget& target, const PayoffModel& model,
                                 const EstimatorOptions& opts) {
  FAIRSFE_CHECK(opts.lanes == 1 || opts.lanes == util::kLaneWidth,
                "EstimatorOptions::lanes must be 1 or the machine lane width");
  // The sliced path runs honest protocol code directly, so a fault-plan
  // override (which perturbs the engine's delivery) or a remote transport
  // (which needs message routing to exist) forces the real engine.
  const bool use_sliced =
      opts.lanes == util::kLaneWidth && target.sliced != nullptr && !opts.fault &&
      opts.transport == sim::TransportKind::kInProc;
  FAIRSFE_CHECK(use_sliced || target.factory != nullptr,
                "estimate_utility: no scalar factory for the scalar path");
  if (use_sliced) {
    FAIRSFE_CHECK(target.sliced_parties >= 2,
                  "EstimationTarget::sliced_parties required for classification");
  }

  const std::size_t runs = opts.runs;
  UtilityEstimate est;
  est.runs = runs;
  est.requested_runs = runs;
  est.lanes = use_sliced ? util::kLaneWidth : 1;
  if (runs == 0) return est;
  est.run_events.resize(runs);

  const std::size_t n_shards = (runs + kShardRuns - 1) / kShardRuns;
  std::vector<ShardAccumulator> shards(n_shards);

  // Fill shards[s] from runs [s*64, min(runs, (s+1)*64)). Safe to call
  // concurrently for distinct s: each invocation touches only its own shard
  // accumulator and its own slice of run_events.
  const auto compute_shard = [&](std::size_t s) {
    const std::size_t lo = s * kShardRuns;
    const std::size_t hi = std::min(runs, lo + kShardRuns);
    ShardAccumulator& acc = shards[s];
    if (use_sliced) {
      std::array<sim::ExecutionResult, kShardRuns> results;
      target.sliced(lo, hi - lo, opts.seed,
                    std::span<sim::ExecutionResult>(results.data(), hi - lo));
      for (std::size_t i = lo; i < hi; ++i) {
        const sim::ExecutionResult& result = results[i - lo];
        const bool j_bit = all_honest_nonbot(result, target.sliced_parties);
        const Outcome o = outcome_of(result, target.sliced_parties, j_bit);
        const FairnessEvent e = classify(o);
        est.run_events[i] = e;
        acc.fault_stats += result.fault_stats;
        if (result.hit_round_cap) {
          acc.capped += 1;
          acc.first_capped = std::min(acc.first_capped, i);
          continue;
        }
        acc.counts[static_cast<std::size_t>(e)]++;
        // The sliced path runs honest protocol code with the default
        // predicates, so the RunOutcome carries no annotations: score sees
        // the bare (event, outcome) pair. For a VectorModel this is exactly
        // the pre-model payoff.of(e).
        RunOutcome ro;
        ro.event = e;
        ro.outcome = o;
        const double pay = model.score(ro);
        acc.sum += pay;
        acc.sum_sq += pay * pay;
      }
      return;
    }
    // Cheap per-shard master: run i's stream is a pure function of (seed, i).
    const Rng master(opts.seed);
    for (std::size_t i = lo; i < hi; ++i) {
      Rng run_rng = master.fork_at("run", i);
      Rng setup_rng = run_rng.fork("setup");
      RunSetup setup = target.factory(setup_rng);
      // Offline slice binding by run index — before the engine starts, and a
      // pure function of i, so thread scheduling cannot perturb which slice
      // of the preprocessed batch a run consumes.
      if (setup.bind_run) setup.bind_run(i);
      if (opts.fault) setup.engine.fault = *opts.fault;
      if (opts.round_timeout >= 0) setup.engine.round_timeout = opts.round_timeout;
      if (opts.transport != sim::TransportKind::kInProc) {
        // One lazily-built transport per worker thread, reused across every
        // run this worker executes (sockets outlive the run, not the shard).
        setup.engine.transport = net::thread_local_transport(opts.transport);
      }
      const std::size_t n = setup.parties.size();
      auto j_predicate = setup.honest_got_output;
      auto i_predicate = setup.adversary_learned;
      auto annotate = setup.annotate;
      sim::ExecutionResult result = execute(std::move(setup), run_rng.fork("engine"));

      const bool j_bit = j_predicate ? j_predicate(result) : all_honest_nonbot(result, n);
      Outcome o = outcome_of(result, n, j_bit);
      if (i_predicate) o.adversary_learned = i_predicate(result);
      const FairnessEvent e = classify(o);
      est.run_events[i] = e;
      acc.fault_stats += result.fault_stats;
      if (result.hit_round_cap) {
        // Hard per-run error: the protocol never reached a verdict. Keep the
        // classification trace aligned but exclude the run from the average.
        acc.capped += 1;
        acc.first_capped = std::min(acc.first_capped, i);
        continue;
      }
      acc.counts[static_cast<std::size_t>(e)]++;
      RunOutcome ro;
      ro.event = e;
      ro.outcome = o;
      if (annotate) annotate(result, ro);
      const double pay = model.score(ro);
      acc.sum += pay;
      acc.sum_sq += pay * pay;
    }
  };

  const auto t0 = std::chrono::steady_clock::now();
  std::size_t used_shards = n_shards;
  bool stopped = false;
  if (opts.target_ci > 0.0) {
    // Sequential stopping: compute shards in waves of one per worker, then
    // merge the wave's shards IN INDEX ORDER against the cumulative moments
    // and test the stopping rule after each shard. The rule fires at a shard
    // boundary determined only by (seed, target_ci) — shards past the stop
    // point (computed speculatively by the rest of the wave) are discarded —
    // so the stop point and the estimate are invariant under `threads`.
    const std::size_t wave =
        std::max<std::size_t>(1, util::ThreadPool::resolve(opts.threads));
    double csum = 0.0;
    double csum_sq = 0.0;
    std::size_t cvalid = 0;
    std::size_t next = 0;
    while (next < n_shards && !stopped) {
      const std::size_t batch = std::min(wave, n_shards - next);
      util::parallel_for(batch, opts.threads,
                         [&](std::size_t k) { compute_shard(next + k); });
      for (std::size_t k = 0; k < batch && !stopped; ++k) {
        const std::size_t s = next + k;
        const ShardAccumulator& acc = shards[s];
        csum += acc.sum;
        csum_sq += acc.sum_sq;
        cvalid += acc.valid();
        used_shards = s + 1;
        if (opts.progress) {
          opts.progress(std::min(runs, used_shards * kShardRuns), runs);
        }
        // Require at least two shards and two valid runs so a degenerate
        // first batch (e.g. all-identical payoffs) cannot stop at once.
        if (s >= 1 && cvalid > 1) {
          const auto v = static_cast<double>(cvalid);
          const double mean = csum / v;
          const double var = (csum_sq - v * mean * mean) / (v - 1.0);
          const double se = std::sqrt(std::max(0.0, var) / v);
          if (1.96 * se <= opts.target_ci) stopped = true;
        }
      }
      next += batch;
    }
  } else {
    std::mutex progress_mu;
    std::size_t progress_done = 0;
    util::parallel_for(n_shards, opts.threads, [&](std::size_t s) {
      compute_shard(s);
      if (opts.progress) {
        const std::size_t lo = s * kShardRuns;
        const std::size_t hi = std::min(runs, lo + kShardRuns);
        std::unique_lock<std::mutex> lock(progress_mu);
        progress_done += hi - lo;
        opts.progress(progress_done, runs);
      }
    });
  }
  est.wall_seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0).count();

  est.stopped_early = stopped && used_shards < n_shards;
  est.runs = std::min(runs, used_shards * kShardRuns);
  est.run_events.resize(est.runs);
  if (est.stopped_early && opts.progress) {
    // Progress contract: the final call always has done == total, even when
    // stopping halted before the requested run count (sinks keyed on
    // done == total must terminate, not hang at the stopped fraction).
    opts.progress(est.runs, est.runs);
  }

  double sum = 0.0;
  double sum_sq = 0.0;
  std::array<std::size_t, 4> counts{};
  std::size_t first_capped = std::numeric_limits<std::size_t>::max();
  for (std::size_t s = 0; s < used_shards; ++s) {  // merge in index order
    const ShardAccumulator& acc = shards[s];
    sum += acc.sum;
    sum_sq += acc.sum_sq;
    for (std::size_t k = 0; k < 4; ++k) counts[k] += acc.counts[k];
    est.round_cap_hits += acc.capped;
    first_capped = std::min(first_capped, acc.first_capped);
    est.fault_stats += acc.fault_stats;
  }
  est.valid_runs = est.runs - est.round_cap_hits;
  est.first_round_cap_run = est.round_cap_hits > 0 ? first_capped : est.runs;

  const auto valid = static_cast<double>(est.valid_runs);
  if (est.valid_runs > 0) {
    const double mean = sum / valid;
    est.utility = mean;
    if (est.valid_runs > 1) {
      const double var = (sum_sq - valid * mean * mean) / (valid - 1.0);
      est.std_error = std::sqrt(std::max(0.0, var) / valid);
    }
    for (std::size_t k = 0; k < 4; ++k) {
      est.event_freq[k] = static_cast<double>(counts[k]) / valid;
    }
  }
  return est;
}

UtilityEstimate estimate_utility(const EstimationTarget& target,
                                 const PayoffVector& payoff,
                                 const EstimatorOptions& opts) {
  return estimate_utility(target, VectorModel(payoff), opts);
}

UtilityEstimate estimate_utility(const SetupFactory& factory, const PayoffVector& payoff,
                                 const EstimatorOptions& opts) {
  EstimationTarget target;
  target.factory = factory;
  return estimate_utility(target, VectorModel(payoff), opts);
}

UtilityEstimate estimate_utility(const experiments::ScenarioSpec& scenario,
                                 const EstimatorOptions& opts) {
  EstimatorOptions o = opts;
  if (!o.fault && scenario.fault) o.fault = *scenario.fault;
  EstimationTarget target;
  target.factory = scenario.attacks.front().factory;
  target.sliced = scenario.sliced;
  target.sliced_parties = scenario.sliced_parties;
  if (scenario.model) return estimate_utility(target, *scenario.model, o);
  return estimate_utility(target, VectorModel(scenario.gamma), o);
}

}  // namespace fairsfe::rpd
