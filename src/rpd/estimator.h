// Monte-Carlo estimation of the attacker's utility u_A(Π, A).
//
// The paper defines u_A(Π, A) as the ideal-world expected payoff of the best
// simulator for A under the least favorable environment. For the
// constructive adversaries analysed in the paper (and implemented in
// src/adversary), the simulator's event is determined by two observable
// predicates of the real execution (see DESIGN.md §4); the estimator repeats
// the execution with fresh randomness, classifies each run into E_ij, and
// returns the empirical payoff with its standard error.
//
// Estimation is parallel and scheduling-independent: run i's randomness is
// derived as Rng(seed).fork_at("run", i), a pure function of (seed, i), and
// runs are accumulated in fixed-size index shards merged in index order, so
// the returned estimate is bit-identical for every `threads` setting
// (including the per-run event classifications in `run_events`).
//
// Two execution strategies share that contract: the scalar engine (one
// simulated execution per run) and the bit-sliced path (64 runs advanced per
// machine word through EstimationTarget::sliced; DESIGN.md §11). CI-driven
// sequential stopping (EstimatorOptions::target_ci) halts either path at a
// deterministic, thread-invariant lane-width batch boundary.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <optional>
#include <span>
#include <string>
#include <vector>

#include "rpd/events.h"
#include "rpd/payoff.h"
#include "rpd/payoff_model.h"
#include "sim/engine.h"
#include "sim/transport.h"

namespace fairsfe::experiments {
struct ScenarioSpec;
}  // namespace fairsfe::experiments

namespace fairsfe::rpd {

/// Everything needed to execute one protocol run and classify it.
struct RunSetup {
  std::vector<std::unique_ptr<sim::IParty>> parties;
  std::unique_ptr<sim::IFunctionality> functionality;  // may be null
  std::unique_ptr<sim::IAdversary> adversary;          // may be null
  sim::EngineConfig engine;
  /// j-bit of the event: did honest parties learn their (correct) output?
  /// Defaults to all_honest_nonbot if unset. The factory captures the run's
  /// inputs, so the predicate can check actual correctness.
  std::function<bool(const sim::ExecutionResult&)> honest_got_output;
  /// i-bit override: did the adversary learn the actual output? Defaults to
  /// the adversary's own report. Experiments with ground truth (e.g. the GK
  /// runs, where the attacker cannot tell a fake from the real value) compare
  /// result.adversary_output against the recorded y instead.
  std::function<bool(const sim::ExecutionResult&)> adversary_learned;
  /// RunOutcome annotation hook: invoked once per run after classification
  /// with the finished execution and the already-classified RunOutcome, so
  /// protocol families can surface model-specific facts (escrow collateral
  /// flags, ground-truth notes) to PayoffModel::score without widening the
  /// event predicates. Null for every vector-scored setup — the estimator
  /// then scores the bare (event, outcome) pair. Install via
  /// OutcomeMapping::install (payoff_model.h) rather than by hand.
  std::function<void(const sim::ExecutionResult&, RunOutcome&)> annotate;
  /// Offline-phase slice binding: when set, the estimator invokes
  /// bind_run(i) right after the factory builds run i's setup, before the
  /// engine starts. Protocols consuming a shared CorrelatedRandomness batch
  /// use this (mpc::make_gmw_run_binder) to point each party's tape at run
  /// i's slice — a pure function of the run index, so the assignment is
  /// identical across thread counts. Leave empty for inline protocols.
  std::function<void(std::size_t run_index)> bind_run;
};

/// A factory producing a fresh RunSetup from per-run randomness. Factories
/// are invoked concurrently from estimator worker threads and must be
/// re-entrant: build fresh objects per call and do not mutate captured state.
/// (Every factory in src/experiments satisfies this by construction.)
using SetupFactory = std::function<RunSetup(Rng&)>;

/// Bit-sliced batch executor (DESIGN.md §11): evaluate runs [lo, lo+count)
/// against master `seed` — run lo+l's randomness derived exactly as the
/// scalar path's Rng(seed).fork_at("run", lo+l) — and write run lo+l's
/// ExecutionResult to out[l]. `count` never exceeds one machine word of
/// lanes (64). Implementations must be const-callable from concurrent
/// estimator workers and bit-identical to the scalar engine per run index
/// (mpc::SlicedGmwRunner::run_batch is the canonical one).
using SlicedBatchFn = std::function<void(std::size_t lo, std::size_t count,
                                         std::uint64_t seed,
                                         std::span<sim::ExecutionResult> out)>;

/// What to estimate: the scalar per-run factory plus, optionally, a sliced
/// batch executor over the same run-index space. When `sliced` is set and the
/// options ask for lanes = 64 (and no fault-plan override forces the real
/// engine), the estimator advances 64 runs per machine word; otherwise it
/// falls back to the scalar factory. Both paths classify runs with the
/// default predicates, so a target with a sliced hook must be an
/// honest-execution setup whose events are determined by the run outputs.
struct EstimationTarget {
  SetupFactory factory;              ///< scalar path (may be null if sliced-only)
  SlicedBatchFn sliced;              ///< optional bit-sliced fast path
  std::size_t sliced_parties = 0;    ///< party count for sliced classification
};

/// How to run an estimation. Replaces the old positional
/// (factory, payoff, runs, seed) signatures across the library.
struct EstimatorOptions {
  std::size_t runs = 1000;  ///< Monte-Carlo executions
  std::uint64_t seed = 0;   ///< master seed; run i is a pure function of (seed, i)
  /// Worker threads: 1 = run inline on the caller's thread, 0 = one per
  /// hardware thread, N = exactly N. Results are bit-identical for every
  /// setting.
  std::size_t threads = 1;
  /// Optional progress sink, invoked as progress(done_runs, total_runs) after
  /// each completed shard. Calls are serialized (an internal mutex) but may
  /// come from worker threads; `done_runs` is monotone and the FINAL call
  /// always has done == total. Under sequential stopping (target_ci) the
  /// estimation may halt before the requested run count: earlier calls report
  /// total = requested runs, and one last call reports (stopped, stopped) so
  /// sinks keyed on done == total terminate instead of hanging at 98%.
  std::function<void(std::size_t done, std::size_t total)> progress;
  /// Fault-plan override: when set, it replaces each run's
  /// `setup.engine.fault` after the factory builds it, so one factory can be
  /// swept across fault severities (exp18) without rebuilding setups.
  std::optional<sim::fault::FaultPlan> fault;
  /// `ExecutionOptions::round_timeout` override; < 0 keeps the factory's
  /// value.
  int round_timeout = -1;
  /// How runs obtain OT correlations (mpc/preproc/mode.h). The estimator core
  /// is protocol-agnostic; scenario bodies and setup factories read this to
  /// build parties against an offline batch (binding slices via
  /// RunSetup::bind_run) instead of the inline hybrid. Default kInline is
  /// bit-identical to the pre-split estimator.
  mpc::preproc::PreprocMode preproc = mpc::preproc::PreprocMode::kInline;
  /// Lane width: 1 = scalar engine per run (the default), 64 = bit-sliced
  /// execution (one machine word advances 64 runs) when the target provides a
  /// sliced hook. Any other value is a contract violation. Lanes NEVER change
  /// the estimate: sliced and scalar are bit-identical per run index, so this
  /// only selects the execution strategy.
  std::size_t lanes = 1;
  /// Sequential stopping (CI-driven): when > 0, stop after the first
  /// lane-width batch whose cumulative 95% CI half-width (1.96 standard
  /// errors, >= 2 batches, >= 2 valid runs) is <= target_ci, instead of
  /// always performing `runs` executions. The stop point is a pure function
  /// of (seed, target_ci): batches are merged in index order and batches
  /// beyond the stop point are discarded, so the estimate is bit-identical
  /// for every `threads` setting. 0 disables stopping.
  double target_ci = 0.0;
  /// Delivery-leg transport for every run's engine (sim/transport.h).
  /// kInProc (the default) is the native zero-copy path, bit-identical to
  /// the pre-transport estimator. kTcp routes every mailbox leg through a
  /// per-worker-thread net::TcpTransport — real kernel sockets, framed wire
  /// codec — and forces the scalar engine (the sliced path does no message
  /// routing). Transports NEVER change the estimate: mailbox order is
  /// preserved, so utilities are bit-identical across transports.
  sim::TransportKind transport = sim::TransportKind::kInProc;

  [[nodiscard]] EstimatorOptions with_transport(sim::TransportKind t) const {
    EstimatorOptions o = *this;
    o.transport = t;
    return o;
  }
  [[nodiscard]] EstimatorOptions with_lanes(std::size_t l) const {
    EstimatorOptions o = *this;
    o.lanes = l;
    return o;
  }
  [[nodiscard]] EstimatorOptions with_target_ci(double ci) const {
    EstimatorOptions o = *this;
    o.target_ci = ci;
    return o;
  }
  [[nodiscard]] EstimatorOptions with_seed(std::uint64_t s) const {
    EstimatorOptions o = *this;
    o.seed = s;
    return o;
  }
  [[nodiscard]] EstimatorOptions with_runs(std::size_t r) const {
    EstimatorOptions o = *this;
    o.runs = r;
    return o;
  }
  [[nodiscard]] EstimatorOptions with_fault(sim::fault::FaultPlan p) const {
    EstimatorOptions o = *this;
    o.fault = std::move(p);
    return o;
  }
  [[nodiscard]] EstimatorOptions with_preproc(mpc::preproc::PreprocMode m) const {
    EstimatorOptions o = *this;
    o.preproc = m;
    return o;
  }
};

struct UtilityEstimate {
  double utility = 0.0;       ///< empirical mean payoff (over valid runs)
  double std_error = 0.0;     ///< standard error of the mean
  std::array<double, 4> event_freq{};  ///< empirical Pr[E_ij] over valid runs
  /// Executions performed (= run_events.size()). Equal to requested_runs
  /// unless sequential stopping halted early.
  std::size_t runs = 0;
  /// Executions requested (EstimatorOptions::runs).
  std::size_t requested_runs = 0;
  /// True iff sequential stopping (target_ci) halted before requested_runs.
  bool stopped_early = false;
  /// Lane width the estimation actually used: 1 (scalar) or 64 (sliced).
  std::size_t lanes = 1;
  /// Executions that terminated on their own. A run that hits
  /// ExecutionOptions::max_rounds is a hard per-run error — the protocol
  /// never reached a verdict — so it is excluded from utility / std_error /
  /// event_freq instead of silently folding its truncated state into the
  /// average.
  std::size_t valid_runs = 0;
  std::size_t round_cap_hits = 0;  ///< runs excluded for hitting max_rounds
  /// Lowest run index that hit the cap (== runs when none did). Reproduce it
  /// directly: the offending execution's randomness is
  /// Rng(opts.seed).fork_at("run", first_round_cap_run).
  std::size_t first_round_cap_run = 0;
  /// Per-run event classification, index = run index (deterministic in the
  /// seed, independent of `threads`). Capped runs are still classified here
  /// so the trace stays index-aligned.
  std::vector<FairnessEvent> run_events;
  /// Fault-injection counters summed over all runs (all zero when no
  /// FaultPlan is active).
  sim::fault::FaultStats fault_stats;
  /// Wall-clock duration of the estimation (metadata; not deterministic).
  double wall_seconds = 0.0;
  /// Wall-clock cost of generating the offline CorrelatedRandomness batch
  /// the runs consumed (metadata; 0 under kInline or when the caller
  /// amortized a pre-generated batch across estimations).
  double offline_seconds = 0.0;

  [[nodiscard]] double freq(FairnessEvent e) const {
    return event_freq[static_cast<std::size_t>(e)];
  }
  /// True iff every run terminated before the round cap.
  [[nodiscard]] bool clean() const { return round_cap_hits == 0; }
  /// Conservative high-probability half-width (3 standard errors).
  [[nodiscard]] double margin() const { return 3.0 * std_error; }
  /// 95% CI half-width (1.96 standard errors) — the sequential-stopping gauge.
  [[nodiscard]] double ci_halfwidth() const { return 1.96 * std_error; }
  /// Monte-Carlo throughput of this estimation.
  [[nodiscard]] double runs_per_sec() const {
    return wall_seconds > 0.0 ? static_cast<double>(runs) / wall_seconds : 0.0;
  }
};

/// The estimation core: estimate u_A(Π, A) over opts.runs independent
/// executions seeded from opts.seed, sharded across opts.threads workers,
/// scoring every run through model.score(RunOutcome) — the scalar engine and
/// the bit-sliced fast path (EstimationTarget::sliced + lanes = 64) both
/// funnel through this one scoring call. CI-driven sequential stopping via
/// EstimatorOptions::target_ci.
UtilityEstimate estimate_utility(const EstimationTarget& target, const PayoffModel& model,
                                 const EstimatorOptions& opts);

/// Legacy-vector convenience: scores through a VectorModel wrapping `payoff`,
/// which returns exactly payoff.of(event) — bit-identical to the pre-model
/// estimator for every committed golden.
UtilityEstimate estimate_utility(const SetupFactory& factory, const PayoffVector& payoff,
                                 const EstimatorOptions& opts);

/// Same, with an optional bit-sliced fast path and CI-driven sequential
/// stopping (see EstimationTarget and EstimatorOptions::lanes / target_ci).
UtilityEstimate estimate_utility(const EstimationTarget& target,
                                 const PayoffVector& payoff,
                                 const EstimatorOptions& opts);

/// Estimate a registered scenario's canonical (first-registered) attack
/// under the scenario's own payoff model (ScenarioSpec::model when set,
/// otherwise a VectorModel over ScenarioSpec::gamma). `opts` supplies
/// runs/seed/threads
/// (start from `scenario.default_options()` for the registered defaults);
/// when `opts` carries no fault plan the scenario's default plan applies.
/// Tests and benches that go through this overload provably measure the
/// same configuration.
UtilityEstimate estimate_utility(const experiments::ScenarioSpec& scenario,
                                 const EstimatorOptions& opts);

/// Run a single execution from a setup (used by tests needing transcripts).
/// Takes the setup and rng by rvalue reference: execution consumes the
/// parties, functionality, adversary, and rng state, so the caller must
/// std::move both in and must not reuse them afterwards.
sim::ExecutionResult execute(RunSetup&& setup, Rng&& rng);

}  // namespace fairsfe::rpd
