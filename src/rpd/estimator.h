// Monte-Carlo estimation of the attacker's utility u_A(Π, A).
//
// The paper defines u_A(Π, A) as the ideal-world expected payoff of the best
// simulator for A under the least favorable environment. For the
// constructive adversaries analysed in the paper (and implemented in
// src/adversary), the simulator's event is determined by two observable
// predicates of the real execution (see DESIGN.md §4); the estimator repeats
// the execution with fresh randomness, classifies each run into E_ij, and
// returns the empirical payoff with its standard error.
#pragma once

#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "rpd/events.h"
#include "rpd/payoff.h"
#include "sim/engine.h"

namespace fairsfe::rpd {

/// Everything needed to execute one protocol run and classify it.
struct RunSetup {
  std::vector<std::unique_ptr<sim::IParty>> parties;
  std::unique_ptr<sim::IFunctionality> functionality;  // may be null
  std::unique_ptr<sim::IAdversary> adversary;          // may be null
  sim::EngineConfig engine;
  /// j-bit of the event: did honest parties learn their (correct) output?
  /// Defaults to all_honest_nonbot if unset. The factory captures the run's
  /// inputs, so the predicate can check actual correctness.
  std::function<bool(const sim::ExecutionResult&)> honest_got_output;
  /// i-bit override: did the adversary learn the actual output? Defaults to
  /// the adversary's own report. Experiments with ground truth (e.g. the GK
  /// runs, where the attacker cannot tell a fake from the real value) compare
  /// result.adversary_output against the recorded y instead.
  std::function<bool(const sim::ExecutionResult&)> adversary_learned;
};

/// A factory producing a fresh RunSetup from per-run randomness.
using SetupFactory = std::function<RunSetup(Rng&)>;

struct UtilityEstimate {
  double utility = 0.0;       ///< empirical mean payoff
  double std_error = 0.0;     ///< standard error of the mean
  std::array<double, 4> event_freq{};  ///< empirical Pr[E_ij], indexed by event
  std::size_t runs = 0;

  [[nodiscard]] double freq(FairnessEvent e) const {
    return event_freq[static_cast<std::size_t>(e)];
  }
  /// Conservative high-probability half-width (3 standard errors).
  [[nodiscard]] double margin() const { return 3.0 * std_error; }
};

/// Estimate u_A(Π, A) over `runs` independent executions seeded from `seed`.
UtilityEstimate estimate_utility(const SetupFactory& factory, const PayoffVector& payoff,
                                 std::size_t runs, std::uint64_t seed);

/// Run a single execution from a setup (used by tests needing transcripts).
sim::ExecutionResult execute(RunSetup setup, Rng rng);

}  // namespace fairsfe::rpd
