#include "rpd/events.h"

namespace fairsfe::rpd {

std::string to_string(FairnessEvent e) {
  switch (e) {
    case FairnessEvent::kE00: return "E00";
    case FairnessEvent::kE01: return "E01";
    case FairnessEvent::kE10: return "E10";
    case FairnessEvent::kE11: return "E11";
  }
  return "E??";
}

FairnessEvent classify(const Outcome& o) {
  // Paper conventions: all parties corrupted => E11 (no one to be unfair to);
  // no corruption at all falls out of the i=0 branch as E01.
  if (o.all_corrupted) return FairnessEvent::kE11;
  if (o.adversary_learned) {
    return o.honest_got_output ? FairnessEvent::kE11 : FairnessEvent::kE10;
  }
  return o.honest_got_output ? FairnessEvent::kE01 : FairnessEvent::kE00;
}

Outcome outcome_of(const sim::ExecutionResult& r, std::size_t n, bool honest_got_output) {
  Outcome o;
  o.all_corrupted = (r.corrupted.size() == n);
  o.any_honest = (r.corrupted.size() < n);
  o.adversary_learned = r.adversary_learned;
  o.honest_got_output = honest_got_output;
  return o;
}

bool all_honest_nonbot(const sim::ExecutionResult& r, std::size_t n) {
  for (std::size_t pid = 0; pid < n; ++pid) {
    const auto id = static_cast<sim::PartyId>(pid);
    if (r.corrupted.count(id)) continue;
    if (!r.outputs[pid].has_value()) return false;
  }
  return true;
}

}  // namespace fairsfe::rpd
