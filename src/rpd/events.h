// The fairness events of the paper's Step 2 (Section 3).
//
// E_ij is indexed by i = "did the adversary learn (noticeable information
// about) the corrupted parties' output?" and j = "did the honest parties
// learn their output?". Two boundary conventions from the paper:
//   * if no party is corrupted, the event is E01 (honest learn, adversary
//     has nothing to learn);
//   * if every party is corrupted, the event is E11 (no one to be unfair to).
#pragma once

#include <array>
#include <string>

#include "sim/engine.h"

namespace fairsfe::rpd {

enum class FairnessEvent : int { kE00 = 0, kE01 = 1, kE10 = 2, kE11 = 3 };

inline constexpr std::array<FairnessEvent, 4> kAllEvents = {
    FairnessEvent::kE00, FairnessEvent::kE01, FairnessEvent::kE10, FairnessEvent::kE11};

std::string to_string(FairnessEvent e);

/// The observable predicates of one execution that determine the event.
struct Outcome {
  bool any_honest = true;         ///< at least one party stayed honest
  bool all_corrupted = false;     ///< the adversary corrupted everyone
  bool adversary_learned = false; ///< i-bit
  bool honest_got_output = false; ///< j-bit
};

/// Map an execution outcome to its fairness event (paper Section 3, Step 2).
FairnessEvent classify(const Outcome& o);

/// Build the outcome of an engine execution. `honest_got_output` is supplied
/// by the experiment (it knows the inputs, hence the correct value); the
/// default predicate `all_honest_nonbot` is exported for the common case.
Outcome outcome_of(const sim::ExecutionResult& r, std::size_t n, bool honest_got_output);

/// Default j-bit: every honest party terminated with a non-⊥ output.
bool all_honest_nonbot(const sim::ExecutionResult& r, std::size_t n);

}  // namespace fairsfe::rpd
