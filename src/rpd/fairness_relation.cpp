#include "rpd/fairness_relation.h"

#include <algorithm>
#include <mutex>

#include "experiments/registry.h"
#include "util/thread_pool.h"

namespace fairsfe::rpd {

ProtocolAssessment assess_protocol(const std::vector<NamedAttack>& attacks,
                                   const PayoffModel& model,
                                   const EstimatorOptions& opts) {
  ProtocolAssessment out;
  out.attacks.resize(attacks.size());

  // Split the thread budget: sweep up to `threads` attacks concurrently, and
  // give each estimation the leftover parallelism. Determinism does not
  // depend on the split (estimates are bit-identical for any thread count).
  const std::size_t threads = util::ThreadPool::resolve(opts.threads);
  const std::size_t outer = std::min<std::size_t>(std::max<std::size_t>(1, threads),
                                                  std::max<std::size_t>(1, attacks.size()));
  const std::size_t inner = std::max<std::size_t>(1, threads / outer);

  // Aggregate per-attack progress into one (done, total) stream over the
  // whole family.
  std::mutex progress_mu;
  std::size_t family_done = 0;
  std::vector<std::size_t> per_attack_done(attacks.size(), 0);
  const std::size_t family_total = opts.runs * attacks.size();

  util::parallel_for(attacks.size(), outer, [&](std::size_t k) {
    EstimatorOptions attack_opts = opts.with_seed(opts.seed + k);
    attack_opts.threads = inner;
    if (opts.progress) {
      attack_opts.progress = [&, k](std::size_t done, std::size_t) {
        std::unique_lock<std::mutex> lock(progress_mu);
        family_done += done - per_attack_done[k];
        per_attack_done[k] = done;
        opts.progress(family_done, family_total);
      };
    }
    EstimationTarget target;
    target.factory = attacks[k].factory;
    out.attacks[k] = {attacks[k].name, estimate_utility(target, model, attack_opts)};
  });

  for (std::size_t i = 1; i < out.attacks.size(); ++i) {
    if (out.attacks[i].estimate.utility > out.attacks[out.best_index].estimate.utility) {
      out.best_index = i;
    }
  }
  return out;
}

ProtocolAssessment assess_protocol(const std::vector<NamedAttack>& attacks,
                                   const PayoffVector& payoff,
                                   const EstimatorOptions& opts) {
  return assess_protocol(attacks, VectorModel(payoff), opts);
}

ProtocolAssessment assess_protocol(const experiments::ScenarioSpec& scenario,
                                   const EstimatorOptions& opts) {
  EstimatorOptions o = opts;
  if (!o.fault && scenario.fault) o.fault = *scenario.fault;
  if (scenario.model) return assess_protocol(scenario.attacks, *scenario.model, o);
  return assess_protocol(scenario.attacks, VectorModel(scenario.gamma), o);
}

bool at_least_as_fair(const ProtocolAssessment& a, const ProtocolAssessment& b) {
  return a.best_utility() <= b.best_utility() + a.best_margin() + b.best_margin();
}

}  // namespace fairsfe::rpd
