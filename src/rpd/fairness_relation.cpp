#include "rpd/fairness_relation.h"

namespace fairsfe::rpd {

ProtocolAssessment assess_protocol(const std::vector<NamedAttack>& attacks,
                                   const PayoffVector& payoff, std::size_t runs,
                                   std::uint64_t seed) {
  ProtocolAssessment out;
  out.attacks.reserve(attacks.size());
  std::uint64_t s = seed;
  for (const NamedAttack& a : attacks) {
    AttackResult r;
    r.name = a.name;
    r.estimate = estimate_utility(a.factory, payoff, runs, s++);
    out.attacks.push_back(std::move(r));
  }
  for (std::size_t i = 1; i < out.attacks.size(); ++i) {
    if (out.attacks[i].estimate.utility > out.attacks[out.best_index].estimate.utility) {
      out.best_index = i;
    }
  }
  return out;
}

bool at_least_as_fair(const ProtocolAssessment& a, const ProtocolAssessment& b) {
  return a.best_utility() <= b.best_utility() + a.best_margin() + b.best_margin();
}

}  // namespace fairsfe::rpd
