// The relative-fairness partial order (Definition 1) and protocol assessment.
//
// Π ⪰γ Π′ ("Π is at least as γ-fair as Π′") iff
//     sup_A u_A(Π, A)  ≤negl  sup_A u_A(Π′, A).
// Operationally the supremum is taken over a finite family of named attack
// strategies (which for the protocols studied here includes the provably
// optimal attacker), estimated by Monte Carlo. Attacks in the family are
// estimated in parallel (attack k reseeded as opts.seed + k), so the
// assessment is deterministic in opts.seed for every thread count.
#pragma once

#include <string>
#include <vector>

#include "rpd/estimator.h"

namespace fairsfe::rpd {

/// A named attack strategy against a fixed protocol: the factory builds the
/// full run (protocol parties + this adversary).
struct NamedAttack {
  std::string name;
  SetupFactory factory;
};

struct AttackResult {
  std::string name;
  UtilityEstimate estimate;
};

/// Utility of the best attacker in the family: sup_A u_A(Π, A).
struct ProtocolAssessment {
  std::vector<AttackResult> attacks;  ///< one per strategy, input order
  std::size_t best_index = 0;

  [[nodiscard]] double best_utility() const { return attacks[best_index].estimate.utility; }
  [[nodiscard]] const std::string& best_attack_name() const { return attacks[best_index].name; }
  [[nodiscard]] double best_margin() const { return attacks[best_index].estimate.margin(); }
};

/// Assess every attack in the family (attack k with seed opts.seed + k) and
/// pick the best, scoring runs through the payoff model. With
/// opts.threads > 1 the family is swept concurrently and the thread budget is
/// split between attacks and runs within each attack.
ProtocolAssessment assess_protocol(const std::vector<NamedAttack>& attacks,
                                   const PayoffModel& model,
                                   const EstimatorOptions& opts);

/// Legacy-vector convenience: assess under a VectorModel over `payoff`
/// (bit-identical to the pre-model assessment).
ProtocolAssessment assess_protocol(const std::vector<NamedAttack>& attacks,
                                   const PayoffVector& payoff,
                                   const EstimatorOptions& opts);

/// Assess a registered scenario's canonical attack family under the
/// scenario's own payoff model — ScenarioSpec::model when set, otherwise a
/// VectorModel over ScenarioSpec::gamma (see the ScenarioSpec overload of
/// estimate_utility for the merge semantics of `opts`).
ProtocolAssessment assess_protocol(const experiments::ScenarioSpec& scenario,
                                   const EstimatorOptions& opts);

/// Definition 1, empirically: is `a` at least as fair as `b`? Statistical
/// noise is absorbed by both margins (the analogue of the negligible slack).
bool at_least_as_fair(const ProtocolAssessment& a, const ProtocolAssessment& b);

}  // namespace fairsfe::rpd
