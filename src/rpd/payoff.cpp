#include "rpd/payoff.h"

#include <algorithm>
#include <sstream>

namespace fairsfe::rpd {

double PayoffVector::of(FairnessEvent e) const {
  switch (e) {
    case FairnessEvent::kE00: return g00;
    case FairnessEvent::kE01: return g01;
    case FairnessEvent::kE10: return g10;
    case FairnessEvent::kE11: return g11;
  }
  return 0.0;
}

bool PayoffVector::in_gamma_fair() const {
  return g01 == 0.0 && g01 <= std::min(g00, g11) && std::max(g00, g11) < g10;
}

bool PayoffVector::in_gamma_fair_plus() const {
  return in_gamma_fair() && g00 <= g11;
}

PayoffVector PayoffVector::normalized() const {
  return PayoffVector{g00 - g01, 0.0, g10 - g01, g11 - g01};
}

std::string PayoffVector::to_string() const {
  std::ostringstream os;
  os << "(" << g00 << ", " << g01 << ", " << g10 << ", " << g11 << ")";
  return os.str();
}

PayoffVector PayoffVector::standard() {
  return PayoffVector{0.25, 0.0, 1.0, 0.5};
}

PayoffVector PayoffVector::partial_fairness() {
  return PayoffVector{0.0, 0.0, 1.0, 0.0};
}

namespace payoff {

PayoffVector standard() { return PayoffVector::standard(); }

PayoffVector swap_standard() { return PayoffVector::standard(); }

PayoffVector contract_gamma() { return PayoffVector::standard(); }

PayoffVector partial_fairness() { return PayoffVector::partial_fairness(); }

PayoffVector spiteful() { return PayoffVector{0.6, 0.0, 1.0, 0.5}; }

PayoffVector sensitivity(double g11) { return PayoffVector{g11 / 2, 0.0, 1.0, g11}; }

PayoffVector shifted_standard() { return PayoffVector{0.5, 0.25, 1.25, 0.75}; }

}  // namespace payoff

}  // namespace fairsfe::rpd
