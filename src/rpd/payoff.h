// Payoff vectors ~γ = (γ00, γ01, γ10, γ11) and the natural classes Γfair /
// Γ+fair of the paper (Section 3 and Section 4.2).
//
//   Γfair :  γ01 = min γ (canonically 0),  γ01 ≤ min{γ00, γ11},
//            max{γ00, γ11} < γ10.
//   Γ+fair:  additionally γ00 ≤ γ11 (the attacker prefers learning the
//            output over nobody learning it).
#pragma once

#include <array>
#include <string>

#include "rpd/events.h"

namespace fairsfe::rpd {

struct PayoffVector {
  double g00 = 0.0;
  double g01 = 0.0;
  double g10 = 1.0;
  double g11 = 0.0;

  [[nodiscard]] double of(FairnessEvent e) const;

  /// Membership in Γfair (γ01 must equal 0; see normalized()).
  [[nodiscard]] bool in_gamma_fair() const;
  /// Membership in Γ+fair ⊆ Γfair.
  [[nodiscard]] bool in_gamma_fair_plus() const;

  /// Shift so that γ01 = 0 (utilities are translation-invariant per the
  /// paper's wlog argument).
  [[nodiscard]] PayoffVector normalized() const;

  [[nodiscard]] std::string to_string() const;

  // Closed-form bounds from the paper, used by benches and tests.

  /// Theorem 3 / Theorem 4: optimal two-party utility (γ10 + γ11)/2.
  [[nodiscard]] double two_party_opt_bound() const { return (g10 + g11) / 2.0; }
  /// Lemma 11: utility bound for a t-adversary against ΠOptnSFE.
  [[nodiscard]] double nparty_bound(std::size_t t, std::size_t n) const {
    return (static_cast<double>(t) * g10 + static_cast<double>(n - t) * g11) /
           static_cast<double>(n);
  }
  /// Lemma 13: optimal multi-party utility ((n-1)γ10 + γ11)/n.
  [[nodiscard]] double nparty_opt_bound(std::size_t n) const {
    return nparty_bound(n - 1, n);
  }
  /// Lemma 14 / 16: utility-balance bound (n-1)(γ10 + γ11)/2.
  [[nodiscard]] double balance_bound(std::size_t n) const {
    return static_cast<double>(n - 1) * (g10 + g11) / 2.0;
  }

  /// The canonical vector used throughout the benches:
  /// (γ00, γ01, γ10, γ11) = (0.25, 0, 1, 0.5) ∈ Γ+fair.
  static PayoffVector standard();
  /// The vector (0, 0, 1, 0) used in the 1/p-security comparison (Lemma 25).
  static PayoffVector partial_fairness();
};

/// Named Γ presets — the single definition point for every γ the experiment
/// and bench layers use. Scenario TUs reference these by name; raw
/// `PayoffVector{...}` brace-literals outside src/rpd and tests are banned by
/// the fairsfe-lint `gamma-literal` rule, so a vector's value can never drift
/// between the TUs that share it.
namespace payoff {

/// The canonical Γ+fair vector (0.25, 0, 1, 0.5) — alias of
/// PayoffVector::standard() for symmetric-by-name call sites.
PayoffVector standard();
/// The standard vector as used by the two-party swap/exchange experiments
/// (identical values to standard(); named for the workload).
PayoffVector swap_standard();
/// The standard vector as used by the contract-signing experiments Π₁/Π₂
/// (identical values to standard(); named for the workload).
PayoffVector contract_gamma();
/// (0, 0, 1, 0): only the unfair event pays — the 1/p-security comparison
/// vector (Lemma 25 and the BOO partial-fairness scenarios).
PayoffVector partial_fairness();
/// (0.6, 0, 1, 0.5) ∈ Γfair \ Γ+fair: the adversary prefers mutual failure
/// over a fair outcome (the exp18 "spiteful" accounting).
PayoffVector spiteful();
/// (g11/2, 0, 1, g11): the exp15 sensitivity family, parameterized by the
/// fair-outcome payoff g11 ∈ (0, 1).
PayoffVector sensitivity(double g11);
/// (0.5, 0.25, 1.25, 0.75): a shifted (γ01 ≠ 0) vector whose normalized()
/// form equals standard() — exercises the translation-invariance wlog.
PayoffVector shifted_standard();

}  // namespace payoff

}  // namespace fairsfe::rpd
