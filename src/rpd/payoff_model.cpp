#include "rpd/payoff_model.h"

#include <cmath>
#include <sstream>
#include <utility>

#include "rpd/estimator.h"
#include "util/check.h"

namespace fairsfe::rpd {

void CollateralTerms::validate() const {
  FAIRSFE_CHECK(std::isfinite(deposit) && deposit >= 0.0,
                "CollateralTerms::deposit must be finite and >= 0");
  FAIRSFE_CHECK(std::isfinite(penalty) && penalty >= 0.0,
                "CollateralTerms::penalty must be finite and >= 0");
  FAIRSFE_CHECK(std::isfinite(refund) && refund >= 0.0 && refund <= 1.0,
                "CollateralTerms::refund must be a fraction in [0, 1]");
}

CollateralModel::CollateralModel(PayoffVector gamma, CollateralTerms terms)
    : gamma_(gamma), terms_(terms) {
  terms_.validate();
}

double CollateralModel::score(const RunOutcome& o) const {
  double pay = gamma_.of(o.event);
  if (!o.deposit_posted) return pay;  // escrow never engaged: pure Γfair run
  if (o.adversary_withheld) {
    // Proven withhold-after-learning: the escrow keeps the whole deposit and
    // levies the penalty on top — the monetary price of the E10 gamble.
    pay -= terms_.deposit + terms_.penalty;
  } else {
    // Clean run: the refund schedule returns refund·deposit, so the
    // adversary is out the unrefunded remainder (0 under full refund).
    pay -= (1.0 - terms_.refund) * terms_.deposit;
  }
  return pay;
}

std::string CollateralModel::name() const {
  std::ostringstream os;
  os << "collateral" << gamma_.to_string() << "{d=" << terms_.deposit
     << ", pen=" << terms_.penalty << ", refund=" << terms_.refund << "}";
  return os.str();
}

std::shared_ptr<const PayoffModel> make_vector_model(const PayoffVector& gamma) {
  return std::make_shared<VectorModel>(gamma);
}

std::shared_ptr<const PayoffModel> make_collateral_model(const PayoffVector& gamma,
                                                         const CollateralTerms& terms) {
  return std::make_shared<CollateralModel>(gamma, terms);
}

// ------------------------------------------------------- outcome mappings

void OutcomeMapping::install(RunSetup& s) const {
  if (honest_got_output) s.honest_got_output = honest_got_output;
  if (adversary_learned) s.adversary_learned = adversary_learned;
  if (annotate) s.annotate = annotate;
}

OutcomeMapping strict_output_mapping(Bytes y, std::size_t n) {
  OutcomeMapping m;
  m.honest_got_output = [y = std::move(y), n](const sim::ExecutionResult& r) {
    for (std::size_t pid = 0; pid < n; ++pid) {
      if (r.corrupted.count(static_cast<sim::PartyId>(pid))) continue;
      const auto& out = r.outputs[pid];
      if (!out || *out != y) return false;
    }
    return true;
  };
  return m;
}

OutcomeMapping notes_switch_round_mapping(mpc::NotesPtr notes) {
  OutcomeMapping m;
  const auto unfair_abort = [notes = std::move(notes)](const sim::ExecutionResult&) {
    const auto j = notes->vals.find("abort_iteration");
    const auto istar = notes->vals.find("i_star");
    return j != notes->vals.end() && istar != notes->vals.end() &&
           j->second == istar->second;
  };
  m.adversary_learned = unfair_abort;
  m.honest_got_output = [unfair_abort](const sim::ExecutionResult& r) {
    return !unfair_abort(r);
  };
  return m;
}

OutcomeMapping notes_collateral_mapping(mpc::NotesPtr notes) {
  OutcomeMapping m;
  m.annotate = [notes = std::move(notes)](const sim::ExecutionResult&, RunOutcome& o) {
    const auto posted = notes->vals.find("deposit_posted");
    o.deposit_posted = posted != notes->vals.end() && posted->second != 0;
    const auto withheld = notes->vals.find("withheld_after_learning");
    o.adversary_withheld = withheld != notes->vals.end() && withheld->second != 0;
  };
  return m;
}

}  // namespace fairsfe::rpd
